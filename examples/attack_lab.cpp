// Attack lab: a configurable command-line driver for exploring the full
// attack/defence matrix — choose the collusion model, colluder behaviour,
// population sizes, counterattacks, and the defending system, and get the
// reputation outcome and request-share leakage.
//
//   $ ./attack_lab --model MMM --b 0.6 --colluders 30 --system ...
//     (see flag list below)
//   $ ./attack_lab --model PCM --b 0.2 --compromised 7 --falsify
//   $ ./attack_lab --list
//
// Flags:
//   --model PCM|MCM|MMM      collusion model (default PCM)
//   --system <name>          defending system (default: compare all four)
//   --b <p>                  colluder authentic-service probability (0.6)
//   --colluders <n>          colluder count (30)
//   --pretrusted <n>         pretrusted count (9)
//   --compromised <n>        compromised pretrusted nodes (0)
//   --falsify                colluders falsify social information
//   --rate <n>               fake ratings per query cycle (20)
//   --distance <1-3>         conspirator social distance (1)
//   --cycles <n>, --runs <n>, --seed <u64>

#include <iostream>

#include "collusion/models.hpp"
#include "sim/experiment.hpp"
#include "sim/factories.hpp"
#include "stats/summary.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

st::sim::SystemFactory system_by_name(const std::string& name) {
  if (name == "eBay") return st::sim::make_ebay_factory();
  if (name == "EigenTrust") return st::sim::make_paper_eigentrust_factory();
  if (name == "eBay+SocialTrust")
    return st::sim::make_socialtrust_factory(st::sim::make_ebay_factory());
  if (name == "EigenTrust+SocialTrust")
    return st::sim::make_socialtrust_factory(
        st::sim::make_paper_eigentrust_factory());
  throw std::invalid_argument("unknown system '" + name +
                              "' (try --list)");
}

}  // namespace

int main(int argc, char** argv) {
  st::util::CliArgs args(argc, argv);
  if (args.has("list")) {
    std::cout << "models:  PCM MCM MMM\n"
              << "systems: eBay EigenTrust eBay+SocialTrust "
                 "EigenTrust+SocialTrust\n";
    return 0;
  }

  std::string model = args.get_or("model", "PCM");
  st::collusion::CollusionOptions options;
  options.ratings_per_query_cycle =
      static_cast<std::size_t>(args.get_int("rate", 20));
  options.compromised_pretrusted =
      static_cast<std::size_t>(args.get_int("compromised", 0));
  options.falsify_social_info = args.has("falsify");
  options.conspirator_distance =
      static_cast<std::size_t>(args.get_int("distance", 1));

  st::sim::ExperimentConfig config;
  config.sim.colluder_authentic = args.get_double("b", 0.6);
  config.sim.colluder_count =
      static_cast<std::size_t>(args.get_int("colluders", 30));
  config.sim.pretrusted_count =
      static_cast<std::size_t>(args.get_int("pretrusted", 9));
  config.sim.simulation_cycles =
      static_cast<std::size_t>(args.get_int("cycles", 50));
  config.runs = static_cast<std::size_t>(args.get_int("runs", 3));
  config.base_seed = args.get_u64("seed", 42);

  st::sim::StrategyFactory strategy =
      [&]() -> st::sim::StrategyFactory {
    if (model == "PCM")
      return [options] {
        return std::make_unique<st::collusion::PairwiseCollusion>(options);
      };
    if (model == "MCM")
      return [options] {
        return std::make_unique<st::collusion::MultiNodeCollusion>(options);
      };
    if (model == "MMM")
      return [options] {
        return std::make_unique<st::collusion::MutualMultiNodeCollusion>(
            options);
      };
    throw std::invalid_argument("unknown model '" + model + "'");
  }();

  std::cout << "attack lab: " << model
            << " (B=" << config.sim.colluder_authentic << ", "
            << config.sim.colluder_count << " colluders";
  if (options.compromised_pretrusted)
    std::cout << ", " << options.compromised_pretrusted
              << " compromised pretrusted";
  if (options.falsify_social_info) std::cout << ", falsified social info";
  if (options.conspirator_distance > 1)
    std::cout << ", conspirator distance " << options.conspirator_distance;
  std::cout << ")\n\n";

  std::vector<std::string> systems;
  if (auto chosen = args.get("system"); chosen && !chosen->empty()) {
    systems.push_back(*chosen);
  } else {
    systems = {"eBay", "EigenTrust", "eBay+SocialTrust",
               "EigenTrust+SocialTrust"};
  }

  st::util::Table table({"system", "colluders (boosted)", "normal mean",
                         "pretrusted", "% requests to colluders",
                         "median cycles to suppress"});
  for (const std::string& name : systems) {
    auto agg = run_experiment(config, system_by_name(name), strategy);
    st::stats::Accumulator boosted;
    for (const auto& run : agg.per_run) boosted.add(run.boosted_final_mean);
    table.add_row(
        {name, st::util::fmt(boosted.mean(), 6),
         st::util::fmt(agg.normal_mean.mean(), 6),
         st::util::fmt(agg.pretrusted_mean.mean(), 6),
         st::util::fmt(agg.colluder_share.mean() * 100.0, 2) + "%",
         st::util::fmt(
             st::stats::percentile(agg.pooled_convergence_cycles, 50), 0)});
  }
  table.print(std::cout);
  std::cout << "\n(suppression cycles of "
            << config.sim.simulation_cycles + 1
            << " mean the colluder never fell below 0.001)\n";
  return 0;
}
