// Attack lab: a configurable command-line driver for exploring the full
// attack/defence matrix — choose the collusion model, colluder behaviour,
// population sizes, counterattacks, and the defending system, and get the
// reputation outcome and request-share leakage.
//
//   $ ./attack_lab --model MMM --b 0.6 --colluders 30 --system ...
//     (see flag list below)
//   $ ./attack_lab --model PCM --b 0.2 --compromised 7 --falsify
//   $ ./attack_lab --list
//
// Flags:
//   --model PCM|MCM|MMM      collusion model (default PCM)
//   --system <name>          defending system (default: compare all four)
//   --b <p>                  colluder authentic-service probability (0.6)
//   --colluders <n>          colluder count (30)
//   --pretrusted <n>         pretrusted count (9)
//   --compromised <n>        compromised pretrusted nodes (0)
//   --falsify                colluders falsify social information
//   --rate <n>               fake ratings per query cycle (20)
//   --distance <1-3>         conspirator social distance (1)
//   --cycles <n>, --runs <n>, --seed <u64>
//
// Sharded placement study (`--sharded`, DESIGN.md §16): does it matter
// whether the colluders land in one shard or are split across shards?
//   $ ./attack_lab --sharded --shards 4 --seed-scan 64
// Scans shard seeds for the partitions that concentrate / scatter the
// colluder clique the most, then runs the identical attack stream through
// the centralized pipeline and through both placements under the
// synchronous and gossip exchanges, reporting detection precision/recall
// per placement.
//   --sharded                run the placement study instead of the matrix
//   --shards <n>             shard count (default 4)
//   --seed-scan <n>          shard seeds scanned for extremes (default 64)

#include <algorithm>
#include <iostream>
#include <set>
#include <utility>

#include "collusion/models.hpp"
#include "core/socialtrust.hpp"
#include "graph/generators.hpp"
#include "reputation/paper_eigentrust.hpp"
#include "shard/partitioner.hpp"
#include "shard/sharded_aggregator.hpp"
#include "sim/experiment.hpp"
#include "sim/factories.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

st::sim::SystemFactory system_by_name(const std::string& name) {
  if (name == "eBay") return st::sim::make_ebay_factory();
  if (name == "EigenTrust") return st::sim::make_paper_eigentrust_factory();
  if (name == "eBay+SocialTrust")
    return st::sim::make_socialtrust_factory(st::sim::make_ebay_factory());
  if (name == "EigenTrust+SocialTrust")
    return st::sim::make_socialtrust_factory(
        st::sim::make_paper_eigentrust_factory());
  throw std::invalid_argument("unknown system '" + name +
                              "' (try --list)");
}

// --- sharded placement study (DESIGN.md §16) -------------------------------

using PairSet = std::set<std::pair<st::reputation::NodeId,
                                   st::reputation::NodeId>>;

struct ShardedLab {
  std::size_t nodes = 200;
  std::size_t colluders = 30;     // partner pairs (10,11), (12,13), ...
  std::size_t first_colluder = 10;
  std::size_t intervals = 20;
  std::size_t rate = 20;          // fake ratings per partner per interval
  std::uint64_t seed = 42;

  st::graph::SocialGraph graph{0};
  st::core::InterestProfiles profiles{0, 16};
  PairSet truth;  // ordered colluding (rater, ratee) pairs

  bool is_colluder(std::size_t v) const {
    return v >= first_colluder && v < first_colluder + colluders;
  }
  std::size_t partner_of(std::size_t v) const {
    return first_colluder + ((v - first_colluder) ^ 1u);
  }

  /// Builds the substrate once; every pipeline run replays the same
  /// seeded stream against a fresh plugin over this graph.
  void build() {
    st::stats::Rng rng(seed);
    graph = st::graph::watts_strogatz(nodes, 10, 0.1, rng);
    profiles = st::core::InterestProfiles(nodes, 16);
    for (st::graph::NodeId v = 0; v < nodes; ++v) {
      const st::reputation::InterestId ints[] = {
          static_cast<st::reputation::InterestId>(v % 16),
          static_cast<st::reputation::InterestId>((v + 5) % 16)};
      profiles.set_interests(v, ints);
    }
    for (std::size_t c = first_colluder; c < first_colluder + colluders;
         c += 2) {
      // PCM partners know each other — the tie the detectors key on.
      graph.add_relationship(static_cast<st::graph::NodeId>(c),
                             static_cast<st::graph::NodeId>(c + 1),
                             st::graph::Relationship::kFriendship);
      truth.insert({static_cast<st::reputation::NodeId>(c),
                    static_cast<st::reputation::NodeId>(c + 1)});
      truth.insert({static_cast<st::reputation::NodeId>(c + 1),
                    static_cast<st::reputation::NodeId>(c)});
    }
  }

  /// One interval of the attack stream: background honest traffic plus
  /// the pairwise boost flood. Pure function of the rng stream.
  std::vector<st::reputation::Rating> interval(st::stats::Rng& rng) {
    std::vector<st::reputation::Rating> ratings;
    const std::size_t honest = 150 + rng.index(100);
    for (std::size_t q = 0; q < honest; ++q) {
      const auto rater =
          static_cast<st::reputation::NodeId>(rng.index(nodes));
      auto ratee = static_cast<st::reputation::NodeId>(rng.index(nodes));
      if (ratee == rater) ratee = (ratee + 1) % nodes;
      const auto interest =
          static_cast<st::reputation::InterestId>(rng.index(16));
      ratings.push_back({rater, ratee, rng.bernoulli(0.8) ? 1.0 : -1.0, 0,
                         0, interest});
      if (rng.bernoulli(0.3)) graph.record_interaction(rater, ratee);
    }
    for (std::size_t c = first_colluder; c < first_colluder + colluders;
         ++c) {
      const auto rater = static_cast<st::reputation::NodeId>(c);
      const auto ratee =
          static_cast<st::reputation::NodeId>(partner_of(c));
      for (std::size_t k = 0; k < rate; ++k) {
        ratings.push_back({rater, ratee, 1.0, 0, 0,
                           static_cast<st::reputation::InterestId>(c % 16)});
      }
    }
    return ratings;
  }
};

struct LabOutcome {
  PairSet flagged;       // unique flagged (rater, ratee) pairs, final interval
  double precision = 0.0;
  double recall = 0.0;
  double residual_ppm = 0.0;  // gossip baseline drift vs exact (ppm)
  bool converged = true;
};

LabOutcome run_lab(const ShardedLab& lab,
                   const st::core::SocialTrustConfig& cfg) {
  // The stream mutates interaction history; replay against a copy so every
  // pipeline variant sees the identical substrate evolution.
  ShardedLab replay = lab;
  st::core::SocialTrustPlugin plugin(
      std::make_unique<st::reputation::PaperEigenTrust>(
          replay.nodes, std::vector<st::reputation::NodeId>{1, 2, 3}),
      replay.graph, replay.profiles, cfg);
  st::stats::Rng rng(lab.seed + 1);
  LabOutcome out;
  for (std::size_t t = 0; t < lab.intervals; ++t) {
    plugin.update(replay.interval(rng));
  }
  for (const auto& f : plugin.last_report().flagged) {
    out.flagged.insert({f.rater, f.ratee});
  }
  std::size_t hits = 0;
  for (const auto& p : out.flagged) hits += lab.truth.count(p);
  out.precision = out.flagged.empty()
                      ? 1.0
                      : static_cast<double>(hits) /
                            static_cast<double>(out.flagged.size());
  out.recall = static_cast<double>(hits) /
               static_cast<double>(lab.truth.size());
  if (const st::shard::ShardStats* ss = plugin.last_shard_stats()) {
    out.residual_ppm = ss->baseline_residual * 1e6;
    out.converged = ss->exchange.converged;
  }
  return out;
}

/// Max share of the colluder clique landing in any single shard.
double colluder_concentration(const ShardedLab& lab,
                              const st::shard::Partition& part) {
  std::vector<std::size_t> per_shard(part.shards, 0);
  for (std::size_t c = lab.first_colluder;
       c < lab.first_colluder + lab.colluders; ++c) {
    ++per_shard[part.owner[c]];
  }
  return static_cast<double>(
             *std::max_element(per_shard.begin(), per_shard.end())) /
         static_cast<double>(lab.colluders);
}

int run_sharded_lab(const st::util::CliArgs& args) {
  ShardedLab lab;
  lab.colluders = static_cast<std::size_t>(args.get_int("colluders", 30));
  lab.rate = static_cast<std::size_t>(args.get_int("rate", 20));
  lab.intervals = static_cast<std::size_t>(args.get_int("cycles", 20));
  lab.seed = args.get_u64("seed", 42);
  const auto shards = static_cast<std::size_t>(args.get_int("shards", 4));
  const auto scan = static_cast<std::size_t>(args.get_int("seed-scan", 64));
  lab.build();

  // Scan shard seeds for the placement extremes: the partition that packs
  // the most colluders into one shard, and the one that scatters them.
  std::uint64_t packed_seed = 0, split_seed = 0;
  double packed = -1.0, split = 2.0;
  std::size_t packed_cut = 0, split_cut = 0;
  for (std::uint64_t s = 0; s < scan; ++s) {
    const auto part = st::shard::partition_graph(lab.graph, shards, s);
    const double conc = colluder_concentration(lab, part);
    if (conc > packed) { packed = conc; packed_seed = s;
                         packed_cut = part.cut_edges; }
    if (conc < split) { split = conc; split_seed = s;
                        split_cut = part.cut_edges; }
  }
  std::cout << "sharded placement study: " << lab.colluders
            << " colluders, " << shards << " shards, " << scan
            << " shard seeds scanned\n"
            << "  packed placement: seed " << packed_seed << " ("
            << st::util::fmt(packed * 100.0, 1)
            << "% of colluders in one shard, cut " << packed_cut << ")\n"
            << "  split placement:  seed " << split_seed << " ("
            << st::util::fmt(split * 100.0, 1)
            << "% max per shard, cut " << split_cut << ")\n\n";

  st::core::SocialTrustConfig base;
  const LabOutcome oracle = run_lab(lab, base);

  st::util::Table table({"pipeline", "placement", "precision", "recall",
                         "flagged", "identical to centralized",
                         "baseline residual (ppm)"});
  table.add_row({"centralized", "-", st::util::fmt(oracle.precision, 3),
                 st::util::fmt(oracle.recall, 3),
                 std::to_string(oracle.flagged.size()), "-", "-"});
  bool sync_identical = true;
  for (const bool gossip : {false, true}) {
    for (const auto& [label, shard_seed] :
         {std::pair<const char*, std::uint64_t>{"packed", packed_seed},
          std::pair<const char*, std::uint64_t>{"split", split_seed}}) {
      st::core::SocialTrustConfig cfg;
      cfg.aggregation = st::core::AggregationMode::kSharded;
      cfg.shards = shards;
      cfg.shard_seed = shard_seed;
      cfg.exchange = gossip ? st::core::ExchangeSchedule::kGossip
                            : st::core::ExchangeSchedule::kSynchronous;
      const LabOutcome got = run_lab(lab, cfg);
      const bool identical = got.flagged == oracle.flagged;
      if (!gossip) sync_identical &= identical;
      table.add_row({gossip ? "sharded/gossip" : "sharded/sync", label,
                     st::util::fmt(got.precision, 3),
                     st::util::fmt(got.recall, 3),
                     std::to_string(got.flagged.size()),
                     identical ? "yes" : "no",
                     gossip ? st::util::fmt(got.residual_ppm, 2) : "0.00"});
    }
  }
  table.print(std::cout);
  std::cout << "\nSynchronous exchange is placement-invariant: the flagged"
            << " set is bit-identical to the\ncentralized oracle whether"
            << " the clique shares a shard or is split (hard-gated by\n"
            << "tests/sharded_aggregation_test.cpp); gossip trades that"
            << " exactness for sketch-sized\nboundary traffic.\n";
  return sync_identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  st::util::CliArgs args(argc, argv);
  if (args.has("sharded")) return run_sharded_lab(args);
  if (args.has("list")) {
    std::cout << "models:  PCM MCM MMM\n"
              << "systems: eBay EigenTrust eBay+SocialTrust "
                 "EigenTrust+SocialTrust\n";
    return 0;
  }

  std::string model = args.get_or("model", "PCM");
  st::collusion::CollusionOptions options;
  options.ratings_per_query_cycle =
      static_cast<std::size_t>(args.get_int("rate", 20));
  options.compromised_pretrusted =
      static_cast<std::size_t>(args.get_int("compromised", 0));
  options.falsify_social_info = args.has("falsify");
  options.conspirator_distance =
      static_cast<std::size_t>(args.get_int("distance", 1));

  st::sim::ExperimentConfig config;
  config.sim.colluder_authentic = args.get_double("b", 0.6);
  config.sim.colluder_count =
      static_cast<std::size_t>(args.get_int("colluders", 30));
  config.sim.pretrusted_count =
      static_cast<std::size_t>(args.get_int("pretrusted", 9));
  config.sim.simulation_cycles =
      static_cast<std::size_t>(args.get_int("cycles", 50));
  config.runs = static_cast<std::size_t>(args.get_int("runs", 3));
  config.base_seed = args.get_u64("seed", 42);

  st::sim::StrategyFactory strategy =
      [&]() -> st::sim::StrategyFactory {
    if (model == "PCM")
      return [options] {
        return std::make_unique<st::collusion::PairwiseCollusion>(options);
      };
    if (model == "MCM")
      return [options] {
        return std::make_unique<st::collusion::MultiNodeCollusion>(options);
      };
    if (model == "MMM")
      return [options] {
        return std::make_unique<st::collusion::MutualMultiNodeCollusion>(
            options);
      };
    throw std::invalid_argument("unknown model '" + model + "'");
  }();

  std::cout << "attack lab: " << model
            << " (B=" << config.sim.colluder_authentic << ", "
            << config.sim.colluder_count << " colluders";
  if (options.compromised_pretrusted)
    std::cout << ", " << options.compromised_pretrusted
              << " compromised pretrusted";
  if (options.falsify_social_info) std::cout << ", falsified social info";
  if (options.conspirator_distance > 1)
    std::cout << ", conspirator distance " << options.conspirator_distance;
  std::cout << ")\n\n";

  std::vector<std::string> systems;
  if (auto chosen = args.get("system"); chosen && !chosen->empty()) {
    systems.push_back(*chosen);
  } else {
    systems = {"eBay", "EigenTrust", "eBay+SocialTrust",
               "EigenTrust+SocialTrust"};
  }

  st::util::Table table({"system", "colluders (boosted)", "normal mean",
                         "pretrusted", "% requests to colluders",
                         "median cycles to suppress"});
  for (const std::string& name : systems) {
    auto agg = run_experiment(config, system_by_name(name), strategy);
    st::stats::Accumulator boosted;
    for (const auto& run : agg.per_run) boosted.add(run.boosted_final_mean);
    table.add_row(
        {name, st::util::fmt(boosted.mean(), 6),
         st::util::fmt(agg.normal_mean.mean(), 6),
         st::util::fmt(agg.pretrusted_mean.mean(), 6),
         st::util::fmt(agg.colluder_share.mean() * 100.0, 2) + "%",
         st::util::fmt(
             st::stats::percentile(agg.pooled_convergence_cycles, 50), 0)});
  }
  table.print(std::cout);
  std::cout << "\n(suppression cycles of "
            << config.sim.simulation_cycles + 1
            << " mean the colluder never fell below 0.001)\n";
  return 0;
}
