// Maze-style P2P file-sharing scenario (the system the paper names as the
// motivating deployment).
//
// A 200-peer unstructured file-sharing overlay runs interest-driven
// queries. A clique of colluders floods mutual positive ratings (MMM) to
// hijack the reputation ranking. The example measures what a *user*
// experiences — the fraction of downloads that turn out inauthentic — with
// the bare reputation system and with the SocialTrust plugin.
//
//   $ ./file_sharing [--b 0.2] [--seed 42] [--cycles 40]

#include <iostream>

#include "collusion/models.hpp"
#include "sim/experiment.hpp"
#include "sim/factories.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  st::util::CliArgs args(argc, argv);

  st::sim::ExperimentConfig config;  // Section 5.1 defaults: 200 peers
  config.sim.colluder_authentic = args.get_double("b", 0.2);
  config.sim.simulation_cycles =
      static_cast<std::size_t>(args.get_int("cycles", 40));
  config.runs = 3;
  config.base_seed = args.get_u64("seed", 42);

  std::cout << "P2P file sharing under a mutual-collusion ring (MMM)\n"
            << "  peers: " << config.sim.node_count
            << ", colluders: " << config.sim.colluder_count
            << " (authentic-file probability B="
            << config.sim.colluder_authentic << ")\n\n";

  auto strategy = [] {
    return std::make_unique<st::collusion::MutualMultiNodeCollusion>();
  };

  st::util::Table table({"reputation system", "% inauthentic downloads",
                         "% downloads from colluders",
                         "colluder mean reputation"});
  auto measure = [&](const char* label, const st::sim::SystemFactory& f) {
    auto agg = run_experiment(config, f, strategy);
    table.add_row(
        {label,
         st::util::fmt(agg.inauthentic_share.mean() * 100.0, 2) + "%",
         st::util::fmt(agg.colluder_share.mean() * 100.0, 2) + "%",
         st::util::fmt(agg.colluder_mean.mean(), 6)});
  };

  measure("EigenTrust", st::sim::make_paper_eigentrust_factory());
  measure("EigenTrust+SocialTrust",
          st::sim::make_socialtrust_factory(
              st::sim::make_paper_eigentrust_factory()));
  measure("eBay-style", st::sim::make_ebay_factory());
  measure("eBay-style+SocialTrust",
          st::sim::make_socialtrust_factory(st::sim::make_ebay_factory()));

  table.print(std::cout);
  std::cout << "\nSocialTrust recognises the ring's high-frequency "
               "low-similarity rating pattern (B1/B3),\nre-weights those "
               "ratings, and the colluders stop winning downloads.\n";
  return 0;
}
