// Overstock-style marketplace walkthrough: generates a synthetic auction
// trace with the library's marketplace model, re-runs the paper's
// Section 3 analysis on it, and then demonstrates the B4 pattern —
// a competitor bad-mouthing a rival seller with frequent negative ratings
// — being detected and neutralised by SocialTrust.
//
//   $ ./marketplace [--users 5000] [--transactions 30000] [--seed 42]

#include <iostream>

#include "core/socialtrust.hpp"
#include "reputation/ebay.hpp"
#include "trace/analysis.hpp"
#include "trace/marketplace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using st::core::InterestProfiles;
using st::core::SocialTrustPlugin;
using st::graph::NodeId;
using st::reputation::Rating;

namespace {

/// Part 2: a minimal marketplace reputation scenario with a bad-mouthing
/// competitor, run directly against the public plugin API.
void competitor_demo() {
  std::cout << "\n=== Part 2: competitor bad-mouthing (behaviour B4) ===\n";
  const std::size_t kUsers = 30;
  st::graph::SocialGraph graph(kUsers);
  InterestProfiles profiles(kUsers, 6);

  // Two rival sellers (0 and 1) sell in the same categories; buyers 2..29
  // share those interests too.
  std::vector<st::reputation::InterestId> electronics{0, 1};
  profiles.set_interests(0, electronics);
  profiles.set_interests(1, electronics);
  for (NodeId buyer = 2; buyer < kUsers; ++buyer) {
    profiles.set_interests(buyer, electronics);
    profiles.record_request(buyer, 0, 5.0);
    profiles.record_request(buyer, 1, 2.0);
  }
  // The rivals' own purchase behaviour is also in-category.
  profiles.record_request(0, 0, 10.0);
  profiles.record_request(1, 0, 10.0);

  SocialTrustPlugin guarded(
      std::make_unique<st::reputation::EbayReputation>(kUsers), graph,
      profiles, st::core::SocialTrustConfig{});
  st::reputation::EbayReputation bare(kUsers);

  // Each "week": honest buyers rate both sellers +1 per purchase, and
  // seller 0 floods seller 1 with negative ratings (20 per week).
  for (int week = 0; week < 12; ++week) {
    std::vector<Rating> ratings;
    for (NodeId buyer = 2; buyer < kUsers; ++buyer) {
      Rating r;
      r.rater = buyer;
      r.interest = 0;
      r.ratee = 0;
      r.value = 1.0;
      ratings.push_back(r);
      graph.record_interaction(buyer, 0);
      r.ratee = 1;
      ratings.push_back(r);
      graph.record_interaction(buyer, 1);
    }
    for (int k = 0; k < 20; ++k) {
      Rating smear;
      smear.rater = 0;
      smear.ratee = 1;
      smear.value = -1.0;
      smear.interest = 0;
      ratings.push_back(smear);
      graph.record_interaction(0, 1);
    }
    guarded.update(ratings);
    bare.update(ratings);
  }

  st::util::Table table(
      {"system", "seller 0 (attacker)", "seller 1 (victim)"});
  table.add_row({"eBay (bare)", st::util::fmt(bare.reputation(0), 4),
                 st::util::fmt(bare.reputation(1), 4)});
  table.add_row({"eBay+SocialTrust", st::util::fmt(guarded.reputation(0), 4),
                 st::util::fmt(guarded.reputation(1), 4)});
  table.print(std::cout);

  const auto& report = guarded.last_report();
  std::cout << "last week's detector report: " << report.pairs_flagged
            << " flagged pair(s), B4 hits: " << report.b4 << "\n"
            << "With SocialTrust, the high-frequency negative ratings "
               "between high-similarity rivals are\nrecognised as "
               "competitor suppression (B4) and attenuated, so the victim "
               "keeps its standing.\n";
}

}  // namespace

int main(int argc, char** argv) {
  st::util::CliArgs args(argc, argv);

  std::cout << "=== Part 1: synthetic Overstock trace and Section 3 "
               "statistics ===\n";
  st::trace::TraceConfig config;
  config.user_count =
      static_cast<std::size_t>(args.get_int("users", 5000));
  config.transaction_count =
      static_cast<std::size_t>(args.get_int("transactions", 30000));
  st::stats::Rng rng(args.get_u64("seed", 42));
  auto trace = st::trace::generate_trace(config, rng);
  auto analysis = st::trace::analyze_trace(trace);

  st::util::Table table({"observation", "paper (crawl)", "this trace"});
  table.add_row({"C(reputation, business network) [O1]", "0.996",
                 st::util::fmt(analysis.reputation_business_correlation, 3)});
  table.add_row({"C(reputation, personal network) [O2]", "0.092",
                 st::util::fmt(analysis.reputation_personal_correlation, 3)});
  table.add_row({"top-3 category share [O5]", "88%",
                 st::util::fmt(analysis.top3_share * 100.0, 1) + "%"});
  table.add_row(
      {"transactions above 0.3 similarity [O6]", "60%",
       st::util::fmt(analysis.fraction_above_03 * 100.0, 1) + "%"});
  table.print(std::cout);

  competitor_demo();
  return 0;
}
