// Quickstart: build a small P2P network, attack it with pair-wise
// collusion, and compare EigenTrust with and without the SocialTrust
// plugin.
//
//   $ ./quickstart [--seed 42] [--colluder-b 0.6]
//
// Expected outcome (the paper's Fig. 8 in miniature): plain EigenTrust
// lets the colluding clique reach the top of the reputation ranking;
// EigenTrust+SocialTrust pushes the same clique to the bottom.

#include <iostream>

#include "collusion/models.hpp"
#include "sim/experiment.hpp"
#include "sim/factories.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  st::util::CliArgs args(argc, argv);

  st::sim::ExperimentConfig config;
  config.sim.node_count = 100;
  config.sim.pretrusted_count = 5;
  config.sim.colluder_count = 16;
  config.sim.simulation_cycles = 20;
  config.sim.colluder_authentic = args.get_double("colluder-b", 0.6);
  config.runs = 3;
  config.base_seed = args.get_u64("seed", 42);

  auto strategy = [] {
    return std::make_unique<st::collusion::PairwiseCollusion>();
  };

  std::cout << "SocialTrust quickstart: " << config.sim.node_count
            << " peers, " << config.sim.colluder_count
            << " pair-wise colluders (B=" << config.sim.colluder_authentic
            << ")\n\n";

  st::util::Table table({"system", "colluder mean rep", "normal mean rep",
                         "pretrusted mean rep", "% requests to colluders"});

  auto report = [&](const char* name, const st::sim::AggregateResult& agg) {
    table.add_row({name, st::util::fmt(agg.colluder_mean.mean(), 5),
                   st::util::fmt(agg.normal_mean.mean(), 5),
                   st::util::fmt(agg.pretrusted_mean.mean(), 5),
                   st::util::fmt(agg.colluder_share.mean() * 100.0, 1) + "%"});
  };

  auto eigentrust = st::sim::make_paper_eigentrust_factory();
  report("EigenTrust", run_experiment(config, eigentrust, strategy));
  report("EigenTrust+SocialTrust",
         run_experiment(config,
                        st::sim::make_socialtrust_factory(eigentrust),
                        strategy));

  table.print(std::cout);
  std::cout << "\nWith SocialTrust the colluders' mutual high-frequency "
               "ratings are detected (behaviours B1-B3)\nand re-weighted by "
               "the Gaussian filter, so their reputations collapse.\n";
  return 0;
}
