// Tests for the extension components: Beta reputation, the bad-mouthing
// (negative-rating) collusion flavour, and graph serialisation.

#include <gtest/gtest.h>

#include <sstream>

#include "collusion/badmouthing.hpp"
#include "core/socialtrust.hpp"
#include "graph/io.hpp"
#include "reputation/beta.hpp"
#include "sim/experiment.hpp"
#include "sim/factories.hpp"

namespace st {
namespace {

using reputation::BetaReputation;
using reputation::NodeId;
using reputation::Rating;

Rating make(NodeId rater, NodeId ratee, double value) {
  Rating r;
  r.rater = rater;
  r.ratee = ratee;
  r.value = value;
  return r;
}

// --- BetaReputation ------------------------------------------------------------

TEST(Beta, PriorExpectationIsHalf) {
  BetaReputation beta(4);
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_DOUBLE_EQ(beta.beta_expectation(v), 0.5);
  }
}

TEST(Beta, HandComputedExpectation) {
  BetaReputation beta(3);
  beta.update(std::vector<Rating>{make(0, 1, 1.0), make(2, 1, 1.0),
                                  make(0, 2, -1.0)});
  // Node 1: p=2, n=0 -> 3/4. Node 2: p=0, n=1 -> 1/3.
  EXPECT_DOUBLE_EQ(beta.beta_expectation(1), 0.75);
  EXPECT_DOUBLE_EQ(beta.beta_expectation(2), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(beta.positive_mass(1), 2.0);
  EXPECT_DOUBLE_EQ(beta.negative_mass(2), 1.0);
}

TEST(Beta, PublishedVectorNormalized) {
  BetaReputation beta(3);
  beta.update(std::vector<Rating>{make(0, 1, 1.0)});
  double sum = 0.0;
  for (double r : beta.reputations()) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Beta, ForgettingDiscountsOldEvidence) {
  reputation::BetaReputationConfig config;
  config.forgetting = 0.5;
  BetaReputation beta(2, config);
  beta.update(std::vector<Rating>{make(0, 1, 1.0)});
  EXPECT_DOUBLE_EQ(beta.positive_mass(1), 1.0);
  beta.update({});  // a quiet interval halves the evidence
  EXPECT_DOUBLE_EQ(beta.positive_mass(1), 0.5);
}

TEST(Beta, FractionalValuesAccumulate) {
  BetaReputation beta(2);
  std::vector<Rating> tiny(10, make(0, 1, 0.1));
  beta.update(tiny);
  EXPECT_NEAR(beta.positive_mass(1), 1.0, 1e-12);
}

TEST(Beta, Validation) {
  EXPECT_THROW(BetaReputation(0), std::invalid_argument);
  reputation::BetaReputationConfig bad;
  bad.forgetting = 0.0;
  EXPECT_THROW(BetaReputation(2, bad), std::invalid_argument);
  bad.forgetting = 1.5;
  EXPECT_THROW(BetaReputation(2, bad), std::invalid_argument);
}

TEST(Beta, WorksUnderSocialTrustPlugin) {
  graph::SocialGraph g(10);
  core::InterestProfiles p(10, 4);
  core::SocialTrustPlugin plugin(std::make_unique<BetaReputation>(10), g, p);
  EXPECT_EQ(plugin.name(), "Beta+SocialTrust");
  plugin.update(std::vector<Rating>{make(0, 1, 1.0)});
  EXPECT_GT(plugin.reputation(1), plugin.reputation(2));
}

// --- BadMouthingCollusion --------------------------------------------------------

sim::SimConfig bm_config() {
  sim::SimConfig cfg;
  cfg.node_count = 80;
  cfg.pretrusted_count = 4;
  cfg.colluder_count = 8;
  cfg.simulation_cycles = 8;
  cfg.query_cycles_per_cycle = 10;
  return cfg;
}

TEST(BadMouthing, AssignsVictimsSharingInterests) {
  auto strategy = std::make_unique<collusion::BadMouthingCollusion>();
  auto* raw = strategy.get();
  sim::Simulator sim(bm_config(), sim::make_paper_eigentrust_factory(),
                     std::move(strategy), 3);
  EXPECT_FALSE(raw->assignments().empty());
  for (const auto& [attacker, victim] : raw->assignments()) {
    EXPECT_EQ(sim.node_type(attacker), sim::NodeType::kColluder);
    EXPECT_EQ(sim.node_type(victim), sim::NodeType::kNormal);
  }
}

TEST(BadMouthing, TargetPretrustedOption) {
  collusion::BadMouthingOptions options;
  options.target_pretrusted = true;
  auto strategy =
      std::make_unique<collusion::BadMouthingCollusion>(options);
  auto* raw = strategy.get();
  sim::Simulator sim(bm_config(), sim::make_paper_eigentrust_factory(),
                     std::move(strategy), 3);
  for (const auto& [attacker, victim] : raw->assignments()) {
    EXPECT_EQ(sim.node_type(victim), sim::NodeType::kPretrusted);
  }
}

TEST(BadMouthing, EmitsNegativeFakeRatings) {
  collusion::BadMouthingOptions options;
  options.ratings_per_query_cycle = 5;
  options.victims_per_colluder = 1;
  auto strategy =
      std::make_unique<collusion::BadMouthingCollusion>(options);
  auto* raw = strategy.get();
  sim::Simulator sim(bm_config(), sim::make_paper_eigentrust_factory(),
                     std::move(strategy), 3);
  auto result = sim.run();
  EXPECT_EQ(result.fake_ratings,
            raw->assignments().size() * 5u * 10u * 8u);
}

TEST(BadMouthing, SocialTrustProtectsVictims) {
  // Victims keep (more of) their reputation when SocialTrust attenuates
  // the high-frequency negative ratings (behaviour B4 at system level).
  sim::ExperimentConfig config;
  config.sim = bm_config();
  config.sim.simulation_cycles = 15;
  config.runs = 2;
  config.base_seed = 77;
  sim::StrategyFactory strategy = [] {
    collusion::BadMouthingOptions options;
    options.target_pretrusted = true;
    return std::make_unique<collusion::BadMouthingCollusion>(options);
  };
  auto plain = run_experiment(config, sim::make_ebay_factory(), strategy);
  auto guarded = run_experiment(
      config, sim::make_socialtrust_factory(sim::make_ebay_factory()),
      strategy);
  EXPECT_GT(guarded.pretrusted_mean.mean(),
            plain.pretrusted_mean.mean() * 0.99);
}

// --- graph serialisation -----------------------------------------------------------

graph::SocialGraph sample_graph() {
  graph::SocialGraph g(5);
  g.add_relationship(0, 1, graph::Relationship::kFriendship);
  g.add_relationship(0, 1, graph::Relationship::kKinship);
  g.add_relationship(2, 3, graph::Relationship::kBusiness);
  g.record_interaction(0, 1, 3.5);
  g.record_interaction(1, 4, 2.0);
  return g;
}

TEST(GraphIo, EdgeListRoundTrip) {
  graph::SocialGraph original = sample_graph();
  std::stringstream buffer;
  graph::write_edge_list(buffer, original);
  graph::SocialGraph copy = graph::read_edge_list(buffer);
  ASSERT_EQ(copy.size(), original.size());
  for (graph::NodeId a = 0; a < original.size(); ++a) {
    for (graph::NodeId b = 0; b < original.size(); ++b) {
      EXPECT_EQ(copy.relationship_count(a, b),
                original.relationship_count(a, b));
      EXPECT_DOUBLE_EQ(copy.interaction(a, b), original.interaction(a, b));
    }
  }
}

TEST(GraphIo, DotOutputContainsEdgesAndHighlights) {
  graph::SocialGraph g = sample_graph();
  std::stringstream buffer;
  std::vector<graph::NodeId> marked{2};
  graph::write_dot(buffer, g, marked);
  std::string dot = buffer.str();
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("n2 -- n3"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=red"), std::string::npos);
  EXPECT_EQ(dot.find("n1 -- n0"), std::string::npos);  // each edge once
}

TEST(GraphIo, ReadRejectsGarbage) {
  std::stringstream bad1("nonsense 5");
  EXPECT_THROW(graph::read_edge_list(bad1), std::runtime_error);
  std::stringstream bad2("socialgraph 3\nx 1 2 3");
  EXPECT_THROW(graph::read_edge_list(bad2), std::runtime_error);
}

TEST(GraphIo, RelationshipNames) {
  EXPECT_EQ(graph::relationship_name(graph::Relationship::kKinship),
            "kinship");
  EXPECT_EQ(graph::relationship_name(graph::Relationship::kBusiness),
            "business");
}

}  // namespace
}  // namespace st
