#!/usr/bin/env python3
"""Unit suite for tools/st_lint.py.

Runs the linter as a subprocess (the same way ctest and CI invoke it)
against fixture snippets written to a temp tree that mirrors the repo
layout (src/core/..., src/stats/..., tests/...), asserting that:

  * every rule fires on its known-bad snippet and names its rule ID,
  * a seeded fixture tree with one violation per rule exits non-zero,
  * clean code and out-of-scope code pass,
  * same-line and preceding-line ``st-lint: allow(RULE reason)``
    suppress, and reason-less / unknown-rule suppressions are SUP-1
    under ``--strict``,
  * ``--json`` emits well-formed output.

Invoked by ctest as ``st_lint_unit`` (see tests/CMakeLists.txt); also
runs under plain ``python3 tests/st_lint_test.py`` or pytest.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
import tempfile
import time
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
LINTER = REPO_ROOT / "tools" / "st_lint.py"

# The whole-program layer (index / call graph) is also exercised
# in-process: resolution assertions are much sharper against the real
# data structures than against rendered findings.
sys.path.insert(0, str(REPO_ROOT / "tools"))

from stlint.callgraph import CallGraph  # noqa: E402
from stlint.core import load_file  # noqa: E402
from stlint.index import ProjectIndex, build_facts  # noqa: E402
from stlint.scopes import collect_aliases  # noqa: E402


def run_lint(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(LINTER), *args],
        capture_output=True, text=True, check=False)


class LintFixtureCase(unittest.TestCase):
    """Base: a temp tree mirroring the repo layout, one file per test."""

    def setUp(self) -> None:
        self._tmp = tempfile.TemporaryDirectory(prefix="st_lint_test_")
        self.root = Path(self._tmp.name)
        self.addCleanup(self._tmp.cleanup)

    def write(self, rel: str, content: str) -> Path:
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content, encoding="utf-8")
        return path

    def lint(self, *paths: Path, strict: bool = False,
             as_json: bool = False) -> subprocess.CompletedProcess:
        args = []
        if strict:
            args.append("--strict")
        if as_json:
            args.append("--json")
        args += [str(p) for p in paths]
        return run_lint(*args)

    def assert_fires(self, proc: subprocess.CompletedProcess,
                     rule: str) -> None:
        self.assertEqual(proc.returncode, 1, proc.stderr + proc.stdout)
        self.assertIn(rule, proc.stderr)

    def assert_clean(self, proc: subprocess.CompletedProcess) -> None:
        self.assertEqual(proc.returncode, 0, proc.stderr + proc.stdout)


class RuleFiringTests(LintFixtureCase):
    def test_det1_rand(self) -> None:
        f = self.write("src/core/bad.cpp",
                       "int f() { return rand() % 7; }\n")
        self.assert_fires(self.lint(f), "DET-1")

    def test_det1_random_device(self) -> None:
        f = self.write("src/sim/bad.cpp",
                       "auto s = std::random_device{}();\n")
        self.assert_fires(self.lint(f), "DET-1")

    def test_det1_clock_as_seed(self) -> None:
        f = self.write(
            "bench/bad.cpp",
            "auto seed = std::chrono::steady_clock::now()"
            ".time_since_epoch().count();\n")
        self.assert_fires(self.lint(f), "DET-1")

    def test_det1_timing_clock_is_fine(self) -> None:
        f = self.write(
            "bench/ok.cpp",
            "auto start = std::chrono::steady_clock::now();\n")
        self.assert_clean(self.lint(f))

    def test_det1_allowed_in_rng(self) -> None:
        f = self.write("src/stats/rng.cpp",
                       "auto d = std::random_device{};\n")
        self.assert_clean(self.lint(f))

    def test_det2_range_for(self) -> None:
        f = self.write("src/core/bad.cpp", """
#include <unordered_map>
double sum(const std::unordered_map<int, double>& unused) {
  std::unordered_map<int, double> m;
  double total = 0.0;
  for (const auto& [k, v] : m) total += v;
  return total;
}
""")
        self.assert_fires(self.lint(f), "DET-2")

    def test_det2_iterator_loop(self) -> None:
        f = self.write("src/reputation/bad.cpp", """
#include <unordered_set>
int count() {
  std::unordered_set<int> s;
  int n = 0;
  for (auto it = s.begin(); it != s.end(); ++it) ++n;
  return n;
}
""")
        self.assert_fires(self.lint(f), "DET-2")

    def test_det2_alias_aware(self) -> None:
        f = self.write("src/sim/bad.cpp", """
#include <unordered_map>
using PairMap = std::unordered_map<int, double>;
double g() {
  PairMap pairs;
  double t = 0.0;
  for (const auto& [k, v] : pairs) t += v;
  return t;
}
""")
        self.assert_fires(self.lint(f), "DET-2")

    def test_det2_member_declared_in_own_header(self) -> None:
        self.write("src/core/widget.hpp", """
#pragma once
#include <unordered_map>
struct Widget {
  std::unordered_map<int, double> counts_;
  double total() const;
};
""")
        cpp = self.write("src/core/widget.cpp", """
#include "widget.hpp"
double Widget::total() const {
  double t = 0.0;
  for (const auto& [k, v] : counts_) t += v;
  return t;
}
""")
        proc = self.lint(self.root / "src")
        self.assert_fires(proc, "DET-2")
        self.assertIn(str(cpp.name), proc.stderr)

    def test_det2_out_of_scope_dir_passes(self) -> None:
        f = self.write("src/trace/ok.cpp", """
#include <unordered_map>
double sum() {
  std::unordered_map<int, double> m;
  double t = 0.0;
  for (const auto& [k, v] : m) t += v;
  return t;
}
""")
        self.assert_clean(self.lint(f))

    def test_det2_hash_order_csr_rebuild_fires(self) -> None:
        # A CSR rebuild that walks an unordered_map of pending rows emits
        # edges in hash order — the epoch snapshot then differs run to run.
        f = self.write("src/graph/bad_rebuild.cpp", """
#include <cstdint>
#include <unordered_map>
#include <vector>
void rebuild(const std::unordered_map<std::uint32_t,
                                      std::vector<std::uint32_t>>& delta,
             std::vector<std::uint64_t>& offsets,
             std::vector<std::uint32_t>& targets) {
  offsets.clear();
  targets.clear();
  for (const auto& [node, row] : delta) {
    offsets.push_back(targets.size());
    targets.insert(targets.end(), row.begin(), row.end());
  }
  offsets.push_back(targets.size());
}
""")
        self.assert_fires(self.lint(f), "DET-2")

    def test_det2_node_ordered_csr_rebuild_passes(self) -> None:
        # The shipped shape: sweep dense node ids in order, sort each row
        # before emitting — deterministic regardless of mutation history.
        f = self.write("src/graph/ok_rebuild.cpp", """
#include <algorithm>
#include <cstdint>
#include <vector>
void rebuild(std::vector<std::vector<std::uint32_t>>& rows,
             std::vector<std::uint64_t>& offsets,
             std::vector<std::uint32_t>& targets) {
  offsets.clear();
  targets.clear();
  for (std::size_t node = 0; node < rows.size(); ++node) {
    std::sort(rows[node].begin(), rows[node].end());
    offsets.push_back(targets.size());
    targets.insert(targets.end(), rows[node].begin(), rows[node].end());
  }
  offsets.push_back(targets.size());
}
""")
        self.assert_clean(self.lint(f))

    def test_det2_hash_order_shard_iteration_fires(self) -> None:
        # Building a shard exchange schedule by walking an unordered_map
        # of per-shard summaries emits boundary messages in hash order —
        # the gossip transcript then differs run to run. src/shard/ is in
        # DET2_SCOPE_PREFIXES for exactly this shape.
        f = self.write("src/shard/bad_exchange.cpp", """
#include <cstdint>
#include <unordered_map>
#include <vector>
std::vector<std::uint32_t> schedule(
    const std::unordered_map<std::uint32_t, std::uint64_t>& summaries) {
  std::vector<std::uint32_t> order;
  for (const auto& [shard, bytes] : summaries) {
    order.push_back(shard);
  }
  return order;
}
""")
        self.assert_fires(self.lint(f), "DET-2")

    def test_det1_rand_seeded_shard_pairing_fires(self) -> None:
        # Pairing shards off rand() makes the exchange schedule a
        # function of the process, not of (seed, round).
        f = self.write("src/shard/bad_pairing.cpp", """
#include <cstdint>
#include <cstdlib>
#include <vector>
std::vector<std::uint32_t> pairing(std::size_t shards) {
  std::vector<std::uint32_t> order(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    order[i] = static_cast<std::uint32_t>(rand() % shards);
  }
  return order;
}
""")
        self.assert_fires(self.lint(f), "DET-1")

    def test_det_sorted_round_robin_pairing_passes(self) -> None:
        # The shipped shape (gossip_exchange.cpp): a seeded splitmix
        # Fisher-Yates over dense shard ids — pure function of
        # (seed, round), no hash order, no process entropy.
        f = self.write("src/shard/ok_pairing.cpp", """
#include <cstdint>
#include <utility>
#include <vector>
namespace {
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}
}  // namespace
std::vector<std::uint32_t> pairing(std::size_t shards, std::uint64_t seed,
                                   std::size_t round) {
  std::vector<std::uint32_t> order(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    order[s] = static_cast<std::uint32_t>(s);
  }
  std::uint64_t state = mix64(seed ^ (round + 1));
  for (std::size_t i = shards; i > 1; --i) {
    state = mix64(state);
    std::swap(order[i - 1], order[state % i]);
  }
  return order;
}
""")
        self.assert_clean(self.lint(f))

    def test_det2_accumulate_over_begin(self) -> None:
        f = self.write("src/core/bad.cpp", """
#include <numeric>
#include <unordered_map>
double total() {
  std::unordered_map<int, double> weights;
  return std::accumulate(weights.begin(), weights.end(), 0.0,
                         [](double t, const auto& kv) {
                           return t + kv.second;
                         });
}
""")
        self.assert_fires(self.lint(f), "DET-2")

    def test_det2_iterator_pair_insert(self) -> None:
        f = self.write("src/reputation/bad.cpp", """
#include <unordered_set>
#include <vector>
std::vector<int> flatten() {
  std::unordered_set<int> flagged;
  std::vector<int> out;
  out.insert(out.end(), flagged.begin(), flagged.end());
  return out;
}
""")
        self.assert_fires(self.lint(f), "DET-2")

    def test_det2_iterator_pair_assign(self) -> None:
        f = self.write("src/sim/bad.cpp", """
#include <unordered_map>
#include <vector>
void snapshot() {
  std::unordered_map<int, double> totals;
  std::vector<std::pair<int, double>> out;
  out.assign(totals.cbegin(), totals.cend());
}
""")
        self.assert_fires(self.lint(f), "DET-2")

    def test_det2_ranges_for_each(self) -> None:
        f = self.write("src/core/bad.cpp", """
#include <algorithm>
#include <unordered_map>
double total() {
  std::unordered_map<int, double> weights;
  double t = 0.0;
  std::ranges::for_each(weights, [&](const auto& kv) { t += kv.second; });
  return t;
}
""")
        self.assert_fires(self.lint(f), "DET-2")

    def test_det2_algorithms_over_vector_pass(self) -> None:
        f = self.write("src/core/ok.cpp", """
#include <algorithm>
#include <numeric>
#include <vector>
double total() {
  std::vector<double> values;
  std::vector<double> out;
  out.insert(out.end(), values.begin(), values.end());
  std::ranges::for_each(values, [](double) {});
  return std::accumulate(values.begin(), values.end(), 0.0);
}
""")
        self.assert_clean(self.lint(f))

    def test_det2_find_over_unordered_passes(self) -> None:
        # Order-insensitive algorithms are fine: the result does not
        # depend on traversal order.
        f = self.write("src/core/ok.cpp", """
#include <algorithm>
#include <unordered_set>
bool has(int x) {
  std::unordered_set<int> s;
  return std::find(s.begin(), s.end(), x) != s.end();
}
""")
        self.assert_clean(self.lint(f))

    def test_det2_vector_loop_passes(self) -> None:
        f = self.write("src/core/ok.cpp", """
#include <vector>
double sum() {
  std::vector<double> values;
  double t = 0.0;
  for (double v : values) t += v;
  return t;
}
""")
        self.assert_clean(self.lint(f))

    def test_con1_thread(self) -> None:
        f = self.write("src/sim/bad.cpp",
                       "#include <thread>\n"
                       "void f() { std::thread t([] {}); t.join(); }\n")
        self.assert_fires(self.lint(f), "CON-1")

    def test_con1_detach(self) -> None:
        f = self.write("tests/bad.cpp", "void f(auto& t) { t.detach(); }\n")
        self.assert_fires(self.lint(f), "CON-1")

    def test_con1_static_members_pass(self) -> None:
        f = self.write(
            "src/core/ok.cpp",
            "#include <thread>\n"
            "auto n = std::thread::hardware_concurrency();\n")
        self.assert_clean(self.lint(f))

    def test_con1_allowed_in_pool(self) -> None:
        f = self.write("src/util/thread_pool.cpp",
                       "#include <thread>\nstd::thread worker;\n")
        self.assert_clean(self.lint(f))

    def test_con2_new_delete(self) -> None:
        f = self.write("src/core/bad.cpp",
                       "int* f() { return new int(3); }\n"
                       "void g(int* p) { delete p; }\n")
        self.assert_fires(self.lint(f), "CON-2")

    def test_con2_deleted_function_passes(self) -> None:
        f = self.write("src/core/ok.hpp",
                       "struct S { S(const S&) = delete; };\n")
        self.assert_clean(self.lint(f))

    def test_con2_comment_mention_passes(self) -> None:
        f = self.write("src/core/ok.cpp",
                       "// each new node attaches m edges\nint x = 0;\n")
        self.assert_clean(self.lint(f))

    def test_hyg1_wrong_first_include(self) -> None:
        self.write("src/core/thing.hpp", "#pragma once\n")
        f = self.write("src/core/thing.cpp",
                       "#include <vector>\n#include \"core/thing.hpp\"\n")
        self.assert_fires(self.lint(f), "HYG-1")

    def test_hyg1_own_header_first_passes(self) -> None:
        self.write("src/core/thing.hpp", "#pragma once\n")
        f = self.write("src/core/thing.cpp",
                       "#include \"core/thing.hpp\"\n#include <vector>\n")
        self.assert_clean(self.lint(f))

    def test_hyg1_no_own_header_passes(self) -> None:
        f = self.write("tests/some_test.cpp", "#include <vector>\n")
        self.assert_clean(self.lint(f))

    def test_hyg2_using_namespace_in_header(self) -> None:
        f = self.write("src/core/bad.hpp", "using namespace std;\n")
        self.assert_fires(self.lint(f), "HYG-2")

    def test_hyg2_in_cpp_passes(self) -> None:
        f = self.write("bench/ok.cpp", "using namespace std;\n")
        self.assert_clean(self.lint(f))


class SeededTreeTest(LintFixtureCase):
    """Acceptance: one violation per rule, all named, non-zero exit."""

    def test_one_violation_per_rule(self) -> None:
        self.write("src/core/det.hpp", "#pragma once\n")
        self.write("src/core/det.cpp", """
#include <unordered_map>
#include "core/det.hpp"
int seed_source() { return rand(); }
double reduce() {
  std::unordered_map<int, double> m;
  double t = 0.0;
  for (const auto& [k, v] : m) t += v;
  return t;
}
""")
        self.write("src/core/con.hpp",
                   "#pragma once\nusing namespace std;\n")
        self.write("src/sim/con.cpp", """
#include <thread>
void f() { std::thread t([] {}); t.detach(); }
int* g() { return new int(1); }
""")
        proc = self.lint(self.root / "src", strict=True)
        self.assertNotEqual(proc.returncode, 0)
        for rule in ("DET-1", "DET-2", "CON-1", "CON-2", "HYG-1", "HYG-2"):
            self.assertIn(rule, proc.stderr,
                          f"{rule} missing from:\n{proc.stderr}")


class SuppressionTests(LintFixtureCase):
    BAD_LOOP = ("  for (const auto& [k, v] : m) t += v;")

    def file_with(self, loop_line: str, prefix: str = "") -> Path:
        return self.write("src/core/f.cpp", f"""
#include <unordered_map>
double reduce() {{
  std::unordered_map<int, double> m;
  double t = 0.0;
{prefix}{loop_line}
  return t;
}}
""")

    def test_same_line_allow(self) -> None:
        f = self.file_with(self.BAD_LOOP +
                           "  // st-lint: allow(DET-2 integer sum)")
        self.assert_clean(self.lint(f, strict=True))

    def test_preceding_line_allow(self) -> None:
        f = self.file_with(
            self.BAD_LOOP,
            prefix="  // st-lint: allow(DET-2 sorted downstream)\n")
        self.assert_clean(self.lint(f, strict=True))

    def test_allow_without_reason_is_sup1_in_strict(self) -> None:
        f = self.file_with(self.BAD_LOOP + "  // st-lint: allow(DET-2)")
        proc = self.lint(f, strict=True)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("SUP-1", proc.stderr)

    def test_allow_unknown_rule_is_sup1(self) -> None:
        f = self.write("src/core/f.cpp",
                       "int x = 0;  // st-lint: allow(FOO-9 whatever)\n")
        proc = self.lint(f, strict=True)
        self.assert_fires(proc, "SUP-1")
        self.assert_clean(self.lint(f))  # non-strict tolerates it

    def test_allow_for_wrong_rule_does_not_suppress(self) -> None:
        f = self.file_with(self.BAD_LOOP +
                           "  // st-lint: allow(CON-1 wrong rule)")
        self.assert_fires(self.lint(f), "DET-2")

    def test_bare_nolint_is_sup1_in_strict(self) -> None:
        f = self.write("src/core/f.cpp", "int x = 0;  // NOLINT\n")
        proc = self.lint(f, strict=True)
        self.assert_fires(proc, "SUP-1")

    def test_nolint_without_reason_is_sup1_in_strict(self) -> None:
        f = self.write("src/core/f.cpp",
                       "int x = 0;  // NOLINT(some-check)\n")
        proc = self.lint(f, strict=True)
        self.assert_fires(proc, "SUP-1")

    def test_nolint_with_check_and_reason_passes(self) -> None:
        f = self.write(
            "src/core/f.cpp",
            "int x = 0;  // NOLINT(some-check): documented reason\n")
        self.assert_clean(self.lint(f, strict=True))


class Det3AccessorTests(LintFixtureCase):
    """DET-3: iterating an accessor that returns a reference into an
    unordered container."""

    def test_range_for_over_ref_accessor_fires(self) -> None:
        f = self.write("src/core/bad.cpp", """
#include <unordered_map>
struct Ledger {
  std::unordered_map<int, double> counts_;
  const std::unordered_map<int, double>& last_counts() const {
    return counts_;
  }
};
double sum(const Ledger& l) {
  double t = 0.0;
  for (const auto& [k, v] : l.last_counts()) t += v;
  return t;
}
""")
        self.assert_fires(self.lint(f), "DET-3")

    def test_accessor_declared_in_own_header_fires(self) -> None:
        self.write("src/core/ledger2.hpp", """
#pragma once
#include <unordered_map>
struct Ledger2 {
  std::unordered_map<int, double> counts_;
  const std::unordered_map<int, double>& last_counts() const;
  double total() const;
};
""")
        self.write("src/core/ledger2.cpp", """
#include "core/ledger2.hpp"
double Ledger2::total() const {
  double t = 0.0;
  for (const auto& [k, v] : last_counts()) t += v;
  return t;
}
""")
        self.assert_fires(self.lint(self.root / "src"), "DET-3")

    def test_sorted_copy_accessor_passes(self) -> None:
        f = self.write("src/core/ok.cpp", """
#include <vector>
struct Ledger {
  std::vector<std::pair<int, double>> sorted_counts() const;
};
double sum(const Ledger& l) {
  double t = 0.0;
  for (const auto& kv : l.sorted_counts()) t += kv.second;
  return t;
}
""")
        self.assert_clean(self.lint(f))


class FlattenThenSortTests(LintFixtureCase):
    """The sanctioned flatten-then-sort idiom needs no allow() under the
    token engine: a range-for body that only push_backs into one vector,
    followed by a sort of that vector, is recognised as order-pinned."""

    TEMPLATE = """
#include <algorithm>
#include <unordered_map>
#include <vector>
std::vector<std::pair<int, double>> flatten() {{
  std::unordered_map<int, double> m;
  std::vector<std::pair<int, double>> work;
  work.reserve(m.size());
  for (const auto& kv : m) {{
    work.push_back(kv);
  }}
{sort_line}
  return work;
}}
"""

    def test_flatten_then_sort_passes_without_allow(self) -> None:
        f = self.write("src/core/ok.cpp", self.TEMPLATE.format(
            sort_line="  std::sort(work.begin(), work.end());"))
        self.assert_clean(self.lint(f, strict=True))

    def test_flatten_without_sort_still_fires(self) -> None:
        f = self.write("src/core/bad.cpp",
                       self.TEMPLATE.format(sort_line=""))
        self.assert_fires(self.lint(f), "DET-2")


class LockDisciplineTests(LintFixtureCase):
    def test_lock1_nested_guards_fire(self) -> None:
        f = self.write("src/core/bad.cpp", """
#include <mutex>
std::mutex a_m, b_m;
void f() {
  std::lock_guard<std::mutex> la(a_m);
  std::lock_guard<std::mutex> lb(b_m);
}
""")
        self.assert_fires(self.lint(f), "LOCK-1")

    def test_lock1_sequential_scopes_pass(self) -> None:
        f = self.write("src/core/ok.cpp", """
#include <mutex>
std::mutex a_m, b_m;
void f() {
  { std::lock_guard<std::mutex> la(a_m); }
  { std::lock_guard<std::mutex> lb(b_m); }
  std::scoped_lock both(a_m, b_m);
}
""")
        self.assert_clean(self.lint(f))

    def test_lock1_guard_in_lambda_passes(self) -> None:
        # A guard inside a nested lambda body may run on another thread;
        # only same-function lexical nesting is the deadlock shape.
        f = self.write("src/core/ok.cpp", """
#include <mutex>
std::mutex a_m, b_m;
void f(auto& pool) {
  std::lock_guard<std::mutex> la(a_m);
  pool.submit([&] { std::lock_guard<std::mutex> lb(b_m); });
}
""")
        self.assert_clean(self.lint(f))

    def test_lock2_manual_lock_unlock_fires(self) -> None:
        f = self.write("src/core/bad.cpp", """
#include <mutex>
std::mutex m;
void f() {
  m.lock();
  m.unlock();
}
""")
        self.assert_fires(self.lint(f), "LOCK-2")

    def test_lock2_raii_guard_passes(self) -> None:
        f = self.write("src/core/ok.cpp", """
#include <mutex>
std::mutex m;
void f() { std::lock_guard lock(m); }
""")
        self.assert_clean(self.lint(f))

    def test_lock3_expensive_call_under_lock_fires(self) -> None:
        f = self.write("src/core/bad.cpp", """
#include <mutex>
std::mutex m;
int shortest_path(int, int);
int f() {
  std::lock_guard lock(m);
  return shortest_path(1, 2);
}
""")
        self.assert_fires(self.lint(f), "LOCK-3")

    def test_lock3_allocating_loop_under_lock_fires(self) -> None:
        f = self.write("src/core/bad.cpp", """
#include <mutex>
#include <vector>
std::mutex m;
void f(std::vector<int>& out) {
  std::lock_guard lock(m);
  for (int i = 0; i < 8; ++i) out.push_back(i);
}
""")
        self.assert_fires(self.lint(f), "LOCK-3")

    def test_lock3_compute_outside_publish_under_lock_passes(self) -> None:
        f = self.write("src/core/ok.cpp", """
#include <mutex>
#include <vector>
std::mutex m;
int shortest_path(int, int);
std::vector<int> g_out;
void f() {
  std::vector<int> staged;
  for (int i = 0; i < 8; ++i) staged.push_back(i);
  int hops = shortest_path(1, 2);
  std::lock_guard lock(m);
  g_out = std::move(staged);
  g_out.push_back(hops);
}
""")
        self.assert_clean(self.lint(f))


class WorklistShapeTests(LintFixtureCase):
    """The dirty-pair worklist shapes (DESIGN.md §14): the cache sweep
    walks index refs and erases stale entries under a shard lock, staging
    swept keys into a pre-sized buffer; index rebuilds flatten-and-sort
    the unordered map's keys before re-emitting refs. These fixtures pin
    that the engine accepts exactly those shapes and still rejects their
    naive variants."""

    def test_staged_sweep_walk_passes(self) -> None:
        # The collect_dirty shape: find/erase under the lock are fine, the
        # swept keys land in a pre-sized buffer (no allocation in-loop)
        # and are bulk-appended in a single statement.
        f = self.write("src/core/ok.cpp", """
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>
std::mutex m;
std::unordered_map<std::uint64_t, int> entries;
std::vector<std::uint64_t> refs;
void sweep(std::vector<std::uint64_t>& out) {
  std::vector<std::uint64_t> staged;
  std::lock_guard lock(m);
  if (staged.size() < refs.size()) staged.resize(refs.size());
  std::size_t n_staged = 0;
  std::size_t keep = 0;
  for (const std::uint64_t key : refs) {
    auto it = entries.find(key);
    if (it == entries.end()) continue;
    if (it->second > 0) {
      refs[keep++] = key;
      continue;
    }
    staged[n_staged++] = key;
    entries.erase(it);
  }
  refs.resize(keep);
  out.insert(out.end(), staged.begin(), staged.begin() + n_staged);
}
""")
        self.assert_clean(self.lint(f))

    def test_allocating_sweep_walk_fires(self) -> None:
        # Same walk, but the swept keys are pushed straight into the
        # output under the lock — the allocating-loop shape LOCK-3 exists
        # to reject.
        f = self.write("src/core/bad.cpp", """
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>
std::mutex m;
std::unordered_map<std::uint64_t, int> entries;
std::vector<std::uint64_t> refs;
void sweep(std::vector<std::uint64_t>& out) {
  std::lock_guard lock(m);
  for (const std::uint64_t key : refs) {
    auto it = entries.find(key);
    if (it == entries.end()) continue;
    out.push_back(key);
    entries.erase(it);
  }
}
""")
        self.assert_fires(self.lint(f), "LOCK-3")

    def test_sorted_index_rebuild_passes(self) -> None:
        # The compaction shape: flatten the unordered map's keys, sort,
        # then rebuild the ref list from the sorted keys — the sanctioned
        # flatten-then-sort idiom, no DET-2.
        f = self.write("src/core/ok.cpp", """
#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>
std::unordered_map<std::uint64_t, int> entries;
std::vector<std::pair<int, std::uint64_t>> refs;
void compact() {
  std::vector<std::uint64_t> keys;
  keys.reserve(entries.size());
  for (const auto& kv : entries) keys.push_back(kv.first);
  std::sort(keys.begin(), keys.end());
  refs.clear();
  for (const std::uint64_t key : keys) {
    refs.emplace_back(entries.find(key)->second, key);
  }
}
""")
        self.assert_clean(self.lint(f))

    def test_hash_order_index_rebuild_fires(self) -> None:
        # Rebuilding the ref list straight off the unordered map bakes
        # hash order into the index — DET-2.
        f = self.write("src/core/bad.cpp", """
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>
std::unordered_map<std::uint64_t, int> entries;
std::vector<std::pair<int, std::uint64_t>> refs;
void compact() {
  refs.clear();
  for (const auto& kv : entries) {
    refs.emplace_back(kv.second, kv.first);
  }
}
""")
        self.assert_fires(self.lint(f), "DET-2")


class ObsDocsTests(LintFixtureCase):
    """OBS-1/OBS-2: metric names vs the Metric reference tables. Fixture
    trees opt in with --obs-doc (by default the doc diff only runs when
    the scan covers the repo's real src/ tree)."""

    DOC = """# Observability

## Metric reference

### Counters

| Metric | Meaning |
| --- | --- |
| `social_cache.hits` | value-layer cache hits |
"""

    REG = """
struct Registry {{ struct C {{ }}; C& counter(const char*); }};
void wire(Registry& r) {{
  r.counter("{name}");
}}
"""

    def lint_with_doc(self, *extra: str) -> subprocess.CompletedProcess:
        doc = self.write("docs/OBSERVABILITY.md", self.DOC)
        return run_lint("--obs-doc", str(doc), str(self.root / "src"),
                        *extra)

    def test_documented_metric_passes(self) -> None:
        self.write("src/core/metrics.cpp",
                   self.REG.format(name="social_cache.hits"))
        self.assert_clean(self.lint_with_doc())

    def test_rename_in_code_fails_both_directions(self) -> None:
        # Metric renamed in code but not in the doc: the new name is
        # undocumented (OBS-1) and the old doc row is dead (OBS-2).
        self.write("src/core/metrics.cpp",
                   self.REG.format(name="social_cache.hitz"))
        proc = self.lint_with_doc()
        self.assertEqual(proc.returncode, 1, proc.stderr)
        self.assertIn("OBS-1", proc.stderr)
        self.assertIn("OBS-2", proc.stderr)

    def test_non_snake_case_fires(self) -> None:
        self.write("src/core/metrics.cpp",
                   self.REG.format(name="SocialCache.Hits"))
        proc = self.lint_with_doc()
        self.assert_fires(proc, "OBS-1")
        self.assertIn("snake_case", proc.stderr)

    def test_duplicate_registration_fires(self) -> None:
        self.write("src/core/metrics_a.cpp",
                   self.REG.format(name="social_cache.hits"))
        self.write("src/core/metrics_b.cpp",
                   self.REG.format(name="social_cache.hits"))
        proc = self.lint_with_doc()
        self.assert_fires(proc, "OBS-1")
        self.assertIn("already registered", proc.stderr)

    def test_doc_checks_off_for_fixture_trees_by_default(self) -> None:
        # Without --obs-doc a fixture scan never diffs against the
        # repo's own documentation.
        self.write("src/core/metrics.cpp",
                   self.REG.format(name="not.in.any.doc"))
        self.assert_clean(self.lint(self.root / "src"))


class BudgetTests(LintFixtureCase):
    """SUP-2: the checked-in allow() budget."""

    def seeded(self) -> Path:
        self.write("src/core/f.cpp", """
#include <unordered_map>
double reduce() {
  std::unordered_map<int, double> m;
  double t = 0.0;
  for (const auto& [k, v] : m) t += v;  // st-lint: allow(DET-2 integer sum)
  return t;
}
""")
        return self.write("budget.json", '{"max_allow_sites": 0}\n')

    def test_over_budget_fires_sup2_in_strict(self) -> None:
        budget = self.seeded()
        proc = run_lint("--strict", "--budget", str(budget),
                        str(self.root / "src"))
        self.assertEqual(proc.returncode, 1, proc.stderr)
        self.assertIn("SUP-2", proc.stderr)

    def test_within_budget_passes(self) -> None:
        self.seeded()
        budget = self.write("budget_ok.json", '{"max_allow_sites": 1}\n')
        proc = run_lint("--strict", "--budget", str(budget),
                        str(self.root / "src"))
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_budget_not_enforced_without_strict(self) -> None:
        budget = self.seeded()
        proc = run_lint("--budget", str(budget), str(self.root / "src"))
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_real_budget_matches_tree(self) -> None:
        # The repo's own budget file must stay in sync with the tree:
        # exactly max_allow_sites allow() comments, no slack to grow into.
        budget = json.loads(
            (REPO_ROOT / "tools" / "lint_budget.json").read_text())
        proc = run_lint("--json", "--strict",
                        *(str(REPO_ROOT / d)
                          for d in ("src", "bench", "tests", "examples")))
        payload = json.loads(proc.stdout)
        self.assertEqual(payload["allow_sites"], budget["max_allow_sites"])


class LexerRegressionTests(LintFixtureCase):
    """Rule-triggering text inside comments and string literals must
    never fire under the token engine."""

    def test_rule_text_in_comments_passes(self) -> None:
        f = self.write("src/core/ok.cpp", """
// rand() here, and std::thread there, and for (auto& kv : m) too
/* delete p; m.lock(); shortest_path(a, b);
   for (auto it = m.begin(); it != m.end(); ++it) {} */
int x = 0;
""")
        self.assert_clean(self.lint(f, strict=True))

    def test_rule_text_in_string_literals_passes(self) -> None:
        f = self.write("src/core/ok.cpp", """
const char* a = "std::thread t; t.detach(); rand();";
const char* b = "for (const auto& [k, v] : counts) {}";
int x = 0;
""")
        self.assert_clean(self.lint(f, strict=True))

    def test_rule_text_in_raw_string_passes(self) -> None:
        f = self.write("src/core/ok.cpp", """
const char* doc = R"(new int(3); delete p; malloc(8);
std::unordered_map<int, int> m; for (auto& kv : m) {})";
int x = 0;
""")
        self.assert_clean(self.lint(f, strict=True))

    def test_code_after_comment_still_fires(self) -> None:
        # The inverse guard: stripping comments must not eat real code.
        f = self.write("src/core/bad.cpp",
                       "int f() { /* benign */ return rand(); }\n")
        self.assert_fires(self.lint(f), "DET-1")


class ScopeResolutionTests(LintFixtureCase):
    """Declaration resolution is scope-aware: names no longer inherit
    guilt from unrelated declarations elsewhere in the file."""

    def test_vector_shadowing_other_functions_unordered_passes(self) -> None:
        f = self.write("src/core/ok.cpp", """
#include <unordered_map>
#include <vector>
double a() {
  std::unordered_map<int, double> counts;
  return static_cast<double>(counts.size());
}
double b() {
  std::vector<double> counts;
  double t = 0.0;
  for (double v : counts) t += v;
  return t;
}
""")
        self.assert_clean(self.lint(f))

    def test_same_function_unordered_still_fires(self) -> None:
        f = self.write("src/core/bad.cpp", """
#include <unordered_map>
double a() {
  std::unordered_map<int, double> counts;
  double t = 0.0;
  for (const auto& [k, v] : counts) t += v;
  return t;
}
""")
        self.assert_fires(self.lint(f), "DET-2")

    def test_hyg2_function_local_using_in_header_passes(self) -> None:
        f = self.write("src/core/ok.hpp", """
#pragma once
inline int f() {
  using namespace std;
  return 0;
}
""")
        self.assert_clean(self.lint(f))

    def test_hyg2_namespace_scope_in_header_still_fires(self) -> None:
        f = self.write("src/core/bad.hpp", """
#pragma once
namespace st {
using namespace std;
}
""")
        self.assert_fires(self.lint(f), "HYG-2")


class OutputAndCliTests(LintFixtureCase):
    def test_json_output(self) -> None:
        f = self.write("src/core/bad.cpp", "int f() { return rand(); }\n")
        proc = self.lint(f, as_json=True)
        self.assertEqual(proc.returncode, 1)
        payload = json.loads(proc.stdout)
        self.assertEqual(payload["files_scanned"], 1)
        self.assertEqual(len(payload["findings"]), 1)
        self.assertEqual(payload["findings"][0]["rule"], "DET-1")
        self.assertIn("line", payload["findings"][0])

    def test_list_rules(self) -> None:
        proc = run_lint("--list-rules")
        self.assertEqual(proc.returncode, 0)
        for rule in ("DET-1", "DET-2", "CON-1", "CON-2",
                     "HYG-1", "HYG-2", "SUP-1"):
            self.assertIn(rule, proc.stdout)

    def test_missing_path_is_usage_error(self) -> None:
        proc = run_lint(str(self.root / "no_such_dir"))
        self.assertEqual(proc.returncode, 2)

    def test_real_tree_is_clean_under_strict(self) -> None:
        proc = run_lint("--strict",
                        str(REPO_ROOT / "src"),
                        str(REPO_ROOT / "bench"),
                        str(REPO_ROOT / "tests"),
                        str(REPO_ROOT / "examples"))
        self.assertEqual(proc.returncode, 0, proc.stderr)


class CallGraphCase(LintFixtureCase):
    """Base for in-process assertions against the v3 index/call graph."""

    def build_graph(self, files: dict[str, str]
                    ) -> tuple[ProjectIndex, CallGraph]:
        index = ProjectIndex()
        sources = {}
        aliases: set[str] = set()
        for rel, content in files.items():
            sources[rel] = load_file(self.write(rel, content))
            aliases |= collect_aliases(sources[rel].code)
        for rel, sf in sources.items():
            index.add_file(rel, build_facts(sf, aliases))
        index.finalize()
        return index, CallGraph(index)

    def fn_by_qname(self, index: ProjectIndex, qname: str) -> dict:
        gids = index.by_qname.get(qname, [])
        self.assertTrue(gids, f"no function {qname!r} in the index")
        return index.functions[gids[0]]

    def call_named(self, fn: dict, name: str) -> dict:
        for call in fn["calls"]:
            if call["name"] == name:
                return call
        self.fail(f"{fn['qname']} records no call to {name!r}")


class CallGraphResolutionTests(CallGraphCase):
    """Name+scope call resolution: overloads, virtual dispatch through a
    base pointer, recursion, qualified and typed-receiver calls."""

    def test_free_function_overloads_fan_out(self) -> None:
        index, graph = self.build_graph({"src/core/a.cpp": """
int scale(int x) { return x + 1; }
double scale(double x) { return x * 2.0; }
int use(int v) { return scale(v); }
"""})
        self.assertEqual(len(index.by_qname["scale"]), 2)
        fn = self.fn_by_qname(index, "use")
        targets = graph.resolve(fn, self.call_named(fn, "scale"))
        self.assertEqual(sorted(targets), sorted(index.by_qname["scale"]))

    def test_method_via_base_pointer_reaches_derived(self) -> None:
        index, graph = self.build_graph({"src/core/shapes.cpp": """
class Base {
 public:
  virtual void step() { ticks_ = ticks_ + 1; }
 protected:
  int ticks_ = 0;
};
class Derived : public Base {
 public:
  void step() { ticks_ = ticks_ + 2; }
};
void drive(Base* b) { b->step(); }
"""})
        fn = self.fn_by_qname(index, "drive")
        targets = graph.resolve(fn, self.call_named(fn, "step"))
        qnames = sorted(index.functions[g]["qname"] for g in targets)
        self.assertEqual(qnames, ["Base::step", "Derived::step"])

    def test_recursion_keeps_node_skips_self_edge(self) -> None:
        index, graph = self.build_graph({"src/core/rec.cpp": """
int fact(int n) {
  if (n <= 1) return 1;
  return n * fact(n - 1);
}
"""})
        gid = index.by_qname["fact"][0]
        self.assertEqual(graph.callees(gid), [])

    def test_qualified_call_resolves_exactly(self) -> None:
        index, graph = self.build_graph({"src/core/q.cpp": """
struct Helper {
  static int run() { return 3; }
};
struct Other {
  static int run() { return 4; }
};
int use2() { return Helper::run(); }
"""})
        fn = self.fn_by_qname(index, "use2")
        targets = graph.resolve(fn, self.call_named(fn, "run"))
        self.assertEqual([index.functions[g]["qname"] for g in targets],
                         ["Helper::run"])

    def test_typed_local_receiver_resolves_one_class(self) -> None:
        index, graph = self.build_graph({"src/core/recv.cpp": """
class Alpha {
 public:
  void go() {}
};
class Beta {
 public:
  void go() {}
};
void f() {
  Alpha a;
  a.go();
}
"""})
        fn = self.fn_by_qname(index, "f")
        targets = graph.resolve(fn, self.call_named(fn, "go"))
        self.assertEqual([index.functions[g]["qname"] for g in targets],
                         ["Alpha::go"])


class Con3WorkerContextTests(LintFixtureCase):
    """CON-3: unlocked shared writes reachable from a worker body."""

    ACC_HPP = """#pragma once
class Pool;
class Accumulator {
 public:
  void run(Pool& pool);
 private:
  void helper(double v);
  double sum_ = 0.0;
};
"""

    def test_shared_write_through_helper_hop_fires(self) -> None:
        self.write("src/core/acc.hpp", self.ACC_HPP)
        f = self.write("src/core/acc.cpp", """
#include "core/acc.hpp"
void Accumulator::helper(double v) { sum_ += v; }
void Accumulator::run(Pool& pool) {
  pool.parallel_for(8, [this](unsigned long i) { helper(2.0); });
}
""")
        proc = self.lint(self.root / "src")
        self.assert_fires(proc, "CON-3")
        self.assertIn("sum_", proc.stderr)
        self.assertIn("parallel_for", proc.stderr)
        del f

    def test_disjoint_slot_write_passes(self) -> None:
        self.write("src/core/slots.hpp", """#pragma once
#include <vector>
class Pool;
class SlotFiller {
 public:
  void run(Pool& pool);
 private:
  std::vector<double> slots_;
};
""")
        self.write("src/core/slots.cpp", """
#include "core/slots.hpp"
void SlotFiller::run(Pool& pool) {
  pool.parallel_for(8, [this](unsigned long i) { slots_[i] = 1.0; });
}
""")
        self.assert_clean(self.lint(self.root / "src"))

    def test_write_under_raii_guard_passes(self) -> None:
        self.write("src/core/guarded.hpp", """#pragma once
#include <mutex>
class Pool;
class Guarded {
 public:
  void run(Pool& pool);
 private:
  void helper(double v);
  std::mutex mu_;
  double sum_ = 0.0;
};
""")
        self.write("src/core/guarded.cpp", """
#include "core/guarded.hpp"
void Guarded::helper(double v) {
  std::lock_guard lk(mu_);
  sum_ += v;
}
void Guarded::run(Pool& pool) {
  pool.parallel_for(8, [this](unsigned long i) { helper(2.0); });
}
""")
        self.assert_clean(self.lint(self.root / "src"))

    def test_atomic_member_write_passes(self) -> None:
        self.write("src/core/atomics.hpp", """#pragma once
#include <atomic>
class Pool;
class Counter {
 public:
  void run(Pool& pool);
 private:
  std::atomic<long> count_{0};
};
""")
        self.write("src/core/atomics.cpp", """
#include "core/atomics.hpp"
void Counter::run(Pool& pool) {
  pool.parallel_for(8, [this](unsigned long i) { count_ = count_ + 1; });
}
""")
        self.assert_clean(self.lint(self.root / "src"))


class Lock4OrderTests(LintFixtureCase):
    """LOCK-4: the lock-order graph lifted across function boundaries."""

    def test_cross_function_cycle_fires_with_both_chains(self) -> None:
        self.write("src/core/order.hpp", """#pragma once
#include <mutex>
class B;
class A {
 public:
  void f();
  void k();
 private:
  std::mutex ma_;
  B* b_ = nullptr;
};
class B {
 public:
  void g();
  void h();
 private:
  std::mutex mb_;
  A* a_ = nullptr;
};
""")
        f = self.write("src/core/order.cpp", """
#include "core/order.hpp"
void A::f() {
  std::lock_guard lk(ma_);
  b_->g();
}
void A::k() { std::lock_guard lk(ma_); }
void B::g() { std::lock_guard lk(mb_); }
void B::h() {
  std::lock_guard lk(mb_);
  a_->k();
}
""")
        proc = self.lint(self.root / "src")
        self.assert_fires(proc, "LOCK-4")
        # Both acquisition chains are named in the report.
        self.assertIn("A::f", proc.stderr)
        self.assertIn("B::h", proc.stderr)
        self.assertIn("A::ma_", proc.stderr)
        self.assertIn("B::mb_", proc.stderr)
        del f

    def test_consistent_global_order_passes(self) -> None:
        self.write("src/core/order2.hpp", """#pragma once
#include <mutex>
class B2;
class A2 {
 public:
  void f();
 private:
  std::mutex ma_;
  B2* b_ = nullptr;
};
class B2 {
 public:
  void g();
 private:
  std::mutex mb_;
};
""")
        self.write("src/core/order2.cpp", """
#include "core/order2.hpp"
void A2::f() {
  std::lock_guard lk(ma_);
  b_->g();
}
void B2::g() { std::lock_guard lk(mb_); }
""")
        self.assert_clean(self.lint(self.root / "src"))

    def test_mutexlock_counts_as_guard_for_lock1(self) -> None:
        # The annotated RAII guard (src/util/thread_annotations.hpp) is a
        # first-class guard type for the whole LOCK family.
        f = self.write("src/core/annotated_guard.cpp", """
#include "util/thread_annotations.hpp"
void f(st::util::Mutex& a, st::util::Mutex& b) {
  st::util::MutexLock la(a);
  st::util::MutexLock lb(b);
}
""")
        self.assert_fires(self.lint(f), "LOCK-1")


class Det4TaintTests(LintFixtureCase):
    """DET-4: hash-order taint crossing translation-unit boundaries."""

    STORE_HPP = """#pragma once
#include <unordered_map>
class PairStore {
 public:
  const std::unordered_map<unsigned, double>& pair_sums() const;
 private:
  std::unordered_map<unsigned, double> sums_;
};
"""
    STORE_CPP = """
#include "core/pair_store.hpp"
const std::unordered_map<unsigned, double>& PairStore::pair_sums() const {
  return sums_;
}
"""

    def test_cross_tu_unordered_accessor_fires(self) -> None:
        self.write("src/core/pair_store.hpp", self.STORE_HPP)
        self.write("src/core/pair_store.cpp", self.STORE_CPP)
        self.write("src/core/reducer.cpp", """
#include "core/pair_store.hpp"
double reduce(const PairStore& store) {
  double total = 0.0;
  for (const auto& kv : store.pair_sums()) {
    total += kv.second;
  }
  return total;
}
""")
        proc = self.lint(self.root / "src")
        self.assert_fires(proc, "DET-4")
        self.assertIn("pair_sums", proc.stderr)
        # The per-file families cannot see the accessor's return type
        # from reducer.cpp — exactly the gap DET-4 covers.
        self.assertNotIn("DET-2", proc.stderr)
        self.assertNotIn("DET-3", proc.stderr)

    def test_sorted_copy_accessor_passes(self) -> None:
        self.write("src/core/pair_store2.hpp", """#pragma once
#include <unordered_map>
#include <utility>
#include <vector>
class PairStore2 {
 public:
  std::vector<std::pair<unsigned, double>> sorted_pairs() const;
 private:
  std::unordered_map<unsigned, double> sums_;
};
""")
        self.write("src/core/pair_store2.cpp", """
#include "core/pair_store2.hpp"
#include <algorithm>
std::vector<std::pair<unsigned, double>> PairStore2::sorted_pairs() const {
  std::vector<std::pair<unsigned, double>> out(sums_.begin(), sums_.end());
  std::sort(out.begin(), out.end());
  return out;
}
""")
        self.write("src/core/reducer2.cpp", """
#include "core/pair_store2.hpp"
double reduce2(const PairStore2& store) {
  double total = 0.0;
  for (const auto& kv : store.sorted_pairs()) {
    total += kv.second;
  }
  return total;
}
""")
        self.assert_clean(self.lint(self.root / "src"))


class Api2RevisionTests(LintFixtureCase):
    """API-2: SocialGraph/InterestProfiles mutation-path discipline."""

    def test_mutation_without_bump_fires(self) -> None:
        f = self.write("src/graph/sg.cpp", """
class SocialGraph {
 public:
  void add_edge(unsigned a, unsigned b) { edges_ = edges_ + 1; }
  void remove_edge(unsigned a, unsigned b) {
    edges_ = edges_ - 1;
    bump();
  }
  unsigned revision() const { return rev_; }
 private:
  void bump() { rev_ = rev_ + 1; }
  unsigned edges_ = 0;
  unsigned rev_ = 0;
};
""")
        proc = self.lint(f)
        self.assert_fires(proc, "API-2")
        self.assertIn("add_edge", proc.stderr)
        self.assertNotIn("remove_edge", proc.stderr)

    def test_mutation_reaching_bump_passes(self) -> None:
        f = self.write("src/graph/sg2.cpp", """
class SocialGraph {
 public:
  void remove_edge(unsigned a, unsigned b) {
    edges_ = edges_ - 1;
    note();
  }
 private:
  void note() { bump(); }
  void bump() { rev_ = rev_ + 1; }
  unsigned edges_ = 0;
  unsigned rev_ = 0;
};
""")
        self.assert_clean(self.lint(f))

    def test_rebuild_calling_public_accessor_fires(self) -> None:
        f = self.write("src/graph/sg3.cpp", """
class SocialGraph {
 public:
  void rebuild() {
    bump();
    cached_ = revision();
  }
  unsigned revision() const { return rev_; }
 private:
  void bump() { rev_ = rev_ + 1; }
  unsigned rev_ = 0;
  unsigned cached_ = 0;
};
""")
        proc = self.lint(f)
        self.assert_fires(proc, "API-2")
        self.assertIn("revision", proc.stderr)
        self.assertIn("rebuild", proc.stderr)


class SeededBugAuditTests(LintFixtureCase):
    """The PR-3 seeded-bug audit: ebay.cpp's original hash-order
    reduction, re-introduced behind a fixture copy with the unordered
    accessor one helper hop away in another TU. The v2 per-file families
    (DET-2/DET-3) are blind to it; DET-4 must catch it."""

    def test_det4_catches_ebay_hash_order_across_tu(self) -> None:
        self.write("src/reputation/pair_ledger.hpp", """#pragma once
#include <unordered_map>
namespace st::reputation {
class PairLedger {
 public:
  /// Collapsed (rater, ratee) -> summed vote for the current cycle.
  const std::unordered_map<unsigned long, double>& pair_sums() const;
 private:
  std::unordered_map<unsigned long, double> sums_;
};
}  // namespace st::reputation
""")
        self.write("src/reputation/pair_ledger.cpp", """
#include "reputation/pair_ledger.hpp"
namespace st::reputation {
const std::unordered_map<unsigned long, double>&
PairLedger::pair_sums() const {
  return sums_;
}
}  // namespace st::reputation
""")
        self.write("src/reputation/ebay_seeded.hpp", """#pragma once
#include <vector>
namespace st::reputation {
class PairLedger;
class EbaySeeded {
 public:
  void update(const PairLedger& ledger);
 private:
  void collapse(const PairLedger& ledger);
  std::vector<double> raw_;
};
}  // namespace st::reputation
""")
        self.write("src/reputation/ebay_seeded.cpp", """
#include "reputation/ebay_seeded.hpp"
#include "reputation/pair_ledger.hpp"
namespace st::reputation {
void EbaySeeded::update(const PairLedger& ledger) { collapse(ledger); }
void EbaySeeded::collapse(const PairLedger& ledger) {
  for (const auto& kv : ledger.pair_sums()) {
    raw_[kv.first] += kv.second;
  }
}
}  // namespace st::reputation
""")
        proc = self.lint(self.root / "src")
        self.assert_fires(proc, "DET-4")
        self.assertIn("ebay_seeded.cpp", proc.stderr)
        self.assertIn("pair_sums", proc.stderr)
        # v2's families stay silent: the unordered return type is only
        # declared in pair_ledger.hpp, which is neither the iterating
        # file nor its own header.
        self.assertNotIn("DET-2", proc.stderr)
        self.assertNotIn("DET-3", proc.stderr)


class IndexCacheTests(LintFixtureCase):
    """The content-hash-keyed index cache behind --index-cache."""

    def _lint_cached(self, cache: Path, *paths: Path
                     ) -> subprocess.CompletedProcess:
        return run_lint("--index-cache", str(cache),
                        *[str(p) for p in paths])

    def test_single_file_edit_invalidates_only_that_file(self) -> None:
        self.write("src/core/pair_store.hpp", Det4TaintTests.STORE_HPP)
        self.write("src/core/pair_store.cpp", Det4TaintTests.STORE_CPP)
        reducer = self.write("src/core/reducer.cpp", """
#include "core/pair_store.hpp"
double reduce(const PairStore& store) {
  double total = 0.0;
  for (const auto& kv : store.pair_sums()) {
    total += kv.second;
  }
  return total;
}
""")
        cache = self.root / "cache.json"
        proc = self._lint_cached(cache, self.root / "src")
        self.assert_fires(proc, "DET-4")
        before = json.loads(cache.read_text(encoding="utf-8"))["files"]
        store_rel = next(r for r in before if r.endswith("pair_store.cpp"))
        reducer_rel = next(r for r in before if r.endswith("reducer.cpp"))

        # Edit only the iterating file: one comment line shifts the
        # finding down by one.
        reducer.write_text("// touched\n" + reducer.read_text(
            encoding="utf-8"), encoding="utf-8")
        proc = self._lint_cached(cache, self.root / "src")
        self.assert_fires(proc, "DET-4")
        after = json.loads(cache.read_text(encoding="utf-8"))["files"]

        # The untouched TU's cache entry is byte-identical (symbols
        # served from cache); the edited TU was re-indexed.
        self.assertEqual(before[store_rel], after[store_rel])
        self.assertNotEqual(before[reducer_rel]["hash"],
                            after[reducer_rel]["hash"])
        old_line = next(f["line"] for f in before[reducer_rel].get(
            "findings", []) if True) if before[reducer_rel].get(
            "findings") else None
        # Cross-file diagnostic stays correct: the DET-4 line moved with
        # the edit.
        old_fns = {f["qname"]: f["line"]
                   for f in before[reducer_rel]["facts"]["functions"]}
        new_fns = {f["qname"]: f["line"]
                   for f in after[reducer_rel]["facts"]["functions"]}
        self.assertEqual(new_fns["reduce"], old_fns["reduce"] + 1)
        del old_line

    def test_warm_relint_is_fraction_of_cold(self) -> None:
        """Acceptance: warm re-lint after touching one src/ file is a
        small fraction of the cold whole-repo wall-clock. The hard bound
        asserted here is generous (50%) to survive loaded CI runners;
        the exact measured numbers are printed."""
        for d in ("src", "bench", "tests", "examples"):
            shutil.copytree(REPO_ROOT / d, self.root / d,
                            ignore=shutil.ignore_patterns("*.py"))
        cache = self.root / "cache.json"
        paths = [str(self.root / d)
                 for d in ("src", "bench", "tests", "examples")]

        t0 = time.perf_counter()
        proc = run_lint("--index-cache", str(cache), *paths)
        cold = time.perf_counter() - t0
        self.assertEqual(proc.returncode, 0, proc.stderr + proc.stdout)

        touched = self.root / "src" / "reputation" / "ledger.cpp"
        touched.write_text(touched.read_text(encoding="utf-8")
                           + "\n// touched by the cache test\n",
                           encoding="utf-8")
        t0 = time.perf_counter()
        proc = run_lint("--index-cache", str(cache), *paths)
        warm = time.perf_counter() - t0
        self.assertEqual(proc.returncode, 0, proc.stderr + proc.stdout)

        ratio = warm / cold
        print(f"\n[index-cache] cold whole-repo: {cold:.3f}s, warm after "
              f"one-file edit: {warm:.3f}s, ratio {ratio:.1%}")
        self.assertLess(
            ratio, 0.50,
            f"warm re-lint took {warm:.3f}s vs cold {cold:.3f}s "
            f"({ratio:.1%}); the index cache should make warm runs a "
            f"small fraction of cold")


class ChangedOnlyTests(LintFixtureCase):
    """--changed-only: per-file findings filtered to the git change set
    while the index stays whole-program."""

    def test_unchanged_file_findings_filtered(self) -> None:
        f = self.write("src/core/bad.cpp", "int f() { return rand(); }\n")
        self.assert_fires(self.lint(f), "DET-1")
        # The fixture lives outside the repo's change set, so its
        # per-file findings are filtered under --changed-only.
        proc = run_lint("--changed-only", str(f))
        self.assertEqual(proc.returncode, 0, proc.stderr + proc.stdout)

    def test_changed_files_helper_returns_paths(self) -> None:
        from stlint.cli import changed_files
        changed = changed_files()
        self.assertIsInstance(changed, set)
        for rel in changed:
            self.assertNotIn("\n", rel)


class SarifOutputTests(LintFixtureCase):
    def test_sarif_document_shape(self) -> None:
        f = self.write("src/core/bad.cpp", "int f() { return rand(); }\n")
        proc = run_lint("--sarif", str(f))
        self.assertEqual(proc.returncode, 1)
        doc = json.loads(proc.stdout)
        self.assertEqual(doc["version"], "2.1.0")
        run = doc["runs"][0]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        for rule in ("DET-4", "CON-3", "LOCK-4", "API-2"):
            self.assertIn(rule, rule_ids)
        result = run["results"][0]
        self.assertEqual(result["ruleId"], "DET-1")
        self.assertEqual(
            result["locations"][0]["physicalLocation"]["region"]
            ["startLine"], 1)


class CfgCase(CallGraphCase):
    """Base for in-process assertions against the v4 per-function CFGs
    serialised into the fact records."""

    def cfg_of(self, src: str, qname: str) -> tuple[dict, list[dict]]:
        index, _ = self.build_graph({"src/core/cfg_fix.cpp": src})
        fn = self.fn_by_qname(index, qname)
        blocks = fn["cfg"]["blocks"]
        self.assertGreaterEqual(len(blocks), 3)  # entry/exit/raise
        return fn, blocks

    @staticmethod
    def kinds(blocks: list[dict]) -> list[str]:
        return [b["k"] for b in blocks]

    @staticmethod
    def by_kind(blocks: list[dict], kind: str) -> list[int]:
        return [i for i, b in enumerate(blocks) if b["k"] == kind]


class CfgBuilderTests(CfgCase):
    """Shape of the basic-block graphs build_cfg produces."""

    def test_if_else_splits_then_else_join(self) -> None:
        _, blocks = self.cfg_of("""
struct C {
  void f(int x) {
    if (x) { a_ = 1; } else { a_ = 2; }
    a_ = 3;
  }
  int a_ = 0;
};
""", "C::f")
        ks = self.kinds(blocks)
        self.assertIn("then", ks)
        self.assertIn("else", ks)
        self.assertIn("join", ks)
        # both arms carry exactly one write event and meet at the join
        then_b = blocks[self.by_kind(blocks, "then")[0]]
        else_b = blocks[self.by_kind(blocks, "else")[0]]
        self.assertEqual(len(then_b["ev"]), 1)
        self.assertEqual(len(else_b["ev"]), 1)
        self.assertEqual(then_b["s"], else_b["s"])

    def test_early_return_records_line_and_exits(self) -> None:
        from stlint.cfg import EXIT
        _, blocks = self.cfg_of("""
struct C {
  int f(int x) {
    if (x) return 0;
    a_ = 1;
    return a_;
  }
  int a_ = 0;
};
""", "C::f")
        then_id = self.by_kind(blocks, "then")[0]
        self.assertIn(EXIT, blocks[then_id]["s"])
        self.assertIn("r", blocks[then_id])

    def test_while_loop_has_back_edge(self) -> None:
        _, blocks = self.cfg_of("""
struct C {
  void f(int n) {
    while (n > 0) { a_ = a_ + 1; n = n - 1; }
  }
  int a_ = 0;
};
""", "C::f")
        hdr = self.by_kind(blocks, "loop")[0]
        # some block downstream of the body points back at the header
        self.assertTrue(any(hdr in b["s"] and i != hdr
                            for i, b in enumerate(blocks) if i > hdr),
                        f"no back edge to loop header in {blocks}")

    def test_classic_for_gets_step_block(self) -> None:
        _, blocks = self.cfg_of("""
struct C {
  void f(int n) {
    for (int i = 0; i < n; i = i + 1) { a_ = a_ + i; }
  }
  int a_ = 0;
};
""", "C::f")
        steps = self.by_kind(blocks, "step")
        self.assertEqual(len(steps), 1)
        hdr = self.by_kind(blocks, "loop")[0]
        self.assertIn(hdr, blocks[steps[0]]["s"])

    def test_range_for_has_no_step_block(self) -> None:
        _, blocks = self.cfg_of("""
struct C {
  void f() {
    for (int v : items_) { a_ = a_ + v; }
  }
  int a_ = 0;
  int items_[4] = {0, 1, 2, 3};
};
""", "C::f")
        self.assertEqual(self.by_kind(blocks, "step"), [])
        self.assertTrue(self.by_kind(blocks, "loop"))

    def test_do_while_body_precedes_condition(self) -> None:
        from stlint.cfg import ENTRY
        _, blocks = self.cfg_of("""
struct C {
  void f(int n) {
    do { a_ = a_ + 1; } while (n > a_);
  }
  int a_ = 0;
};
""", "C::f")
        body = self.by_kind(blocks, "body")[0]
        loop = self.by_kind(blocks, "loop")[0]
        self.assertIn(body, blocks[ENTRY]["s"])  # body runs first
        self.assertIn(body, blocks[loop]["s"])   # and again on true

    def test_switch_fallthrough_edges_between_arms(self) -> None:
        _, blocks = self.cfg_of("""
struct C {
  void f(int x) {
    switch (x) {
      case 0:
        a_ = 1;          // falls through
      case 1:
        a_ = 2;
        break;
      default:
        a_ = 3;
    }
  }
  int a_ = 0;
};
""", "C::f")
        cases = self.by_kind(blocks, "case")
        self.assertEqual(len(cases), 3)
        self.assertIn(cases[1], blocks[cases[0]]["s"],
                      "case 0 must fall through into case 1")
        self.assertNotIn(cases[2], blocks[cases[1]]["s"],
                         "break must stop the case-1 arm falling through")

    def test_switch_without_default_may_skip_all_arms(self) -> None:
        _, blocks = self.cfg_of("""
struct C {
  void f(int x) {
    switch (x) {
      case 0: a_ = 1; break;
    }
    a_ = 2;
  }
  int a_ = 0;
};
""", "C::f")
        case_b = self.by_kind(blocks, "case")[0]
        dispatch = next(i for i, b in enumerate(blocks)
                        if case_b in b["s"])
        # the dispatching block also jumps straight past the arms
        self.assertGreaterEqual(len(blocks[dispatch]["s"]), 2)

    def test_break_leaves_loop_not_function(self) -> None:
        from stlint.cfg import EXIT
        _, blocks = self.cfg_of("""
struct C {
  void f(int n) {
    while (n > 0) {
      if (n == 3) break;
      n = n - 1;
    }
    a_ = 1;
  }
  int a_ = 0;
};
""", "C::f")
        then_b = blocks[self.by_kind(blocks, "then")[0]]
        self.assertNotIn(EXIT, then_b["s"])
        hdr = self.by_kind(blocks, "loop")[0]
        # break target is also a successor of the loop header (its exit)
        self.assertTrue(set(then_b["s"]) & set(blocks[hdr]["s"]))

    def test_continue_jumps_to_step_block(self) -> None:
        _, blocks = self.cfg_of("""
struct C {
  void f(int n) {
    for (int i = 0; i < n; i = i + 1) {
      if (i == 2) continue;
      a_ = a_ + i;
    }
  }
  int a_ = 0;
};
""", "C::f")
        step = self.by_kind(blocks, "step")[0]
        then_b = blocks[self.by_kind(blocks, "then")[0]]
        self.assertIn(step, then_b["s"])

    def test_try_blocks_point_at_catch_head(self) -> None:
        _, blocks = self.cfg_of("""
struct C {
  void f() {
    try {
      a_ = 1;
    } catch (...) {
      a_ = 0;
    }
  }
  int a_ = 0;
};
""", "C::f")
        catches = self.by_kind(blocks, "catch")
        self.assertEqual(len(catches), 1)
        try_bodies = [b for b in blocks
                      if b["k"] == "body" and catches[0] in b["s"]]
        self.assertTrue(try_bodies, "try body must edge into the handler")
        self.assertEqual(try_bodies[0].get("c"), catches)

    def test_uncaught_throw_edges_to_raise_sink(self) -> None:
        from stlint.cfg import RAISE
        _, blocks = self.cfg_of("""
struct C {
  void f(int x) {
    if (x < 0) throw x;
    a_ = x;
  }
  int a_ = 0;
};
""", "C::f")
        self.assertTrue(any(RAISE in b["s"] for b in blocks))

    def test_ternary_with_writes_splits_arms(self) -> None:
        _, blocks = self.cfg_of("""
struct C {
  void f(bool c) {
    c ? (a_ = 1) : (a_ = 2);
  }
  int a_ = 0;
};
""", "C::f")
        self.assertIn("then", self.kinds(blocks))
        self.assertIn("else", self.kinds(blocks))

    def test_guard_idents_recorded_on_branch(self) -> None:
        _, blocks = self.cfg_of("""
struct C {
  void f(bool added) {
    if (added) a_ = 1;
  }
  int a_ = 0;
};
""", "C::f")
        then_b = blocks[self.by_kind(blocks, "then")[0]]
        self.assertEqual(then_b.get("g"), ["added"])


class DataflowTests(unittest.TestCase):
    """The worklist framework itself, over hand-built graphs."""

    #      0 -> 3 -> {4, 5} -> 6 -> 1      (2 = raise, unused)
    DIAMOND = [
        {"s": [3], "ev": []}, {"s": [], "ev": []}, {"s": [], "ev": []},
        {"s": [4, 5], "ev": []}, {"s": [6], "ev": []},
        {"s": [6], "ev": []}, {"s": [1], "ev": []},
    ]

    @staticmethod
    def _transfer(gen: dict[int, str]):
        from stlint import dataflow

        def transfer(bid: int, state: dataflow.State) -> dataflow.State:
            if bid in gen:
                return state | {gen[bid]}
            return state
        return transfer

    def test_union_meet_keeps_one_path_facts(self) -> None:
        from stlint import dataflow
        ins = dataflow.solve(self.DIAMOND, 0, dataflow.EMPTY,
                             self._transfer({4: "x"}))
        self.assertEqual(ins[6], frozenset({"x"}))

    def test_intersect_meet_requires_every_path(self) -> None:
        from stlint import dataflow
        ins = dataflow.solve(self.DIAMOND, 0, dataflow.EMPTY,
                             self._transfer({4: "x"}), meet="intersect")
        self.assertEqual(ins[6], frozenset())
        ins = dataflow.solve(self.DIAMOND, 0, dataflow.EMPTY,
                             self._transfer({4: "x", 5: "x"}),
                             meet="intersect")
        self.assertEqual(ins[6], frozenset({"x"}))

    def test_find_trace_returns_shortest_witness(self) -> None:
        from stlint import dataflow
        transfer = self._transfer({4: "x"})
        path = dataflow.find_trace(
            self.DIAMOND, 0, dataflow.EMPTY, transfer,
            lambda bid, state: bid == 6 and "x" in state)
        self.assertEqual(path, [0, 3, 4, 6])
        clean = dataflow.find_trace(
            self.DIAMOND, 0, dataflow.EMPTY, transfer,
            lambda bid, state: bid == 6 and "y" in state)
        self.assertEqual(clean, [])


class Rev1PathSensitivityTests(LintFixtureCase):
    """REV-1: per-path revision-protocol enforcement, including the
    seeded early-return bug API-2's whole-closure boolean cannot see."""

    EARLY_RETURN = """
class SocialGraph {
 public:
  bool set_weight(unsigned a, unsigned w) {
    weight_ = w;
    if (w == 0) return false;
    bump_value(a);
    return true;
  }
 private:
  void bump_value(unsigned a) { rev_ = rev_ + 1; }
  unsigned weight_ = 0;
  unsigned rev_ = 0;
};
"""

    def test_early_return_skipping_bump_fires_with_witness(self) -> None:
        f = self.write("src/graph/sg_rev.cpp", self.EARLY_RETURN)
        proc = self.lint(f)
        self.assert_fires(proc, "REV-1")
        self.assertIn("set_weight", proc.stderr)
        # the offending path is printed as a block-level chain ending in
        # the early return
        self.assertIn("entry@L", proc.stderr)
        self.assertIn("return@L", proc.stderr)

    def test_seeded_audit_api2_is_blind_to_the_same_bug(self) -> None:
        """The mandated differential: the closure DOES reach bump_value,
        so API-2's whole-closure boolean is satisfied; only the
        path-sensitive analysis reports the unbumped early return."""
        f = self.write("src/graph/sg_rev2.cpp", self.EARLY_RETURN)
        proc = self.lint(f)
        self.assert_fires(proc, "REV-1")
        self.assertNotIn("API-2", proc.stderr + proc.stdout)

    def test_bump_on_every_path_is_clean(self) -> None:
        f = self.write("src/graph/sg_ok.cpp", """
class SocialGraph {
 public:
  void set_weight(unsigned a, unsigned w) {
    if (w == 0) {
      weight_ = 0;
      bump_value(a);
      return;
    }
    weight_ = w;
    bump_value(a);
  }
 private:
  void bump_value(unsigned a) { rev_ = rev_ + 1; }
  unsigned weight_ = 0;
  unsigned rev_ = 0;
};
""")
        self.assert_clean(self.lint(f))

    GUARDED = """
class SocialGraph {
 public:
  bool link(unsigned a, unsigned b) {
    const bool added = insert_half(a, b);
    const bool added_rev = insert_half(b, a);
    if (added || added_rev) bump_structure(a, b);
    return added;
  }
 private:
  bool insert_half(unsigned f, unsigned t) {
    edges_ = edges_ + 1;
    return true;
  }
  void bump_structure(unsigned a, unsigned b) { rev_ = rev_ + 1; }
  unsigned edges_ = 0;
  unsigned rev_ = 0;
};
"""

    def test_guarded_commit_idiom_is_clean(self) -> None:
        f = self.write("src/graph/sg_guard.cpp", self.GUARDED)
        self.assert_clean(self.lint(f))

    def test_discarded_helper_result_fires(self) -> None:
        """The real-tree bug shape: the second half-edge insert's result
        is dropped, so that commit is not covered by the guarded bump."""
        f = self.write("src/graph/sg_drop.cpp", self.GUARDED.replace(
            "const bool added_rev = insert_half(b, a);",
            "insert_half(b, a);").replace(
            "if (added || added_rev)", "if (added)"))
        proc = self.lint(f)
        self.assert_fires(proc, "REV-1")
        self.assertIn("insert_half", proc.stderr)

    def test_representation_fields_are_not_observable(self) -> None:
        f = self.write("src/graph/sg_repr.cpp", """
class SocialGraph {
 public:
  void compact(unsigned n) {
    overlay_count_ = n;
    tombstones_ = 0;
  }
 private:
  unsigned overlay_count_ = 0;
  unsigned tombstones_ = 0;
};
""")
        self.assert_clean(self.lint(f))

    def test_epoch_counter_write_counts_as_bump(self) -> None:
        f = self.write("src/graph/sg_epoch.cpp", """
class SocialGraph {
 public:
  void grow(unsigned n) {
    nodes_ = n;
    epoch_ = epoch_ + 1;
  }
 private:
  unsigned nodes_ = 0;
  unsigned epoch_ = 0;
};
""")
        self.assert_clean(self.lint(f))


class Rev2RepresentationTests(LintFixtureCase):
    """REV-2: representation-only entry points must not advance
    revision witnesses."""

    def test_rebuild_reaching_bump_fires(self) -> None:
        f = self.write("src/graph/sg_rb.cpp", """
class SocialGraph {
 public:
  void rebuild() { compact(); }
 private:
  void compact() {
    packed_ = 1;
    bump();
  }
  void bump() { rev_ = rev_ + 1; }
  unsigned packed_ = 0;
  unsigned rev_ = 0;
};
""")
        proc = self.lint(f)
        self.assert_fires(proc, "REV-2")
        self.assertIn("rebuild", proc.stderr)

    def test_rebuild_without_bump_is_clean(self) -> None:
        f = self.write("src/graph/sg_rb_ok.cpp", """
class SocialGraph {
 public:
  void rebuild() { packed_ = 1; }
 private:
  unsigned packed_ = 0;
};
""")
        self.assert_clean(self.lint(f))


class Exc1ExceptionSafetyTests(LintFixtureCase):
    """EXC-1: committed writes may not precede throwing work unless
    rolled back or the method is noexcept."""

    def test_write_before_allocating_call_fires(self) -> None:
        f = self.write("src/graph/sg_exc.cpp", """
#include <vector>
class SocialGraph {
 public:
  void add(unsigned v) {
    count_ = count_ + 1;
    log_.push_back(v);
    bump();
  }
 private:
  void bump() { rev_ = rev_ + 1; }
  unsigned count_ = 0;
  unsigned rev_ = 0;
  std::vector<unsigned> log_;
};
""")
        proc = self.lint(f)
        self.assert_fires(proc, "EXC-1")
        self.assertIn("push_back", proc.stderr)

    def test_noexcept_method_is_exempt(self) -> None:
        f = self.write("src/graph/sg_noexc.cpp", """
#include <vector>
class SocialGraph {
 public:
  void add(unsigned v) noexcept {
    count_ = count_ + 1;
    log_.push_back(v);
    bump();
  }
 private:
  void bump() { rev_ = rev_ + 1; }
  unsigned count_ = 0;
  unsigned rev_ = 0;
  std::vector<unsigned> log_;
};
""")
        self.assert_clean(self.lint(f))

    def test_validate_before_mutate_is_clean(self) -> None:
        f = self.write("src/graph/sg_val.cpp", """
#include <vector>
class SocialGraph {
 public:
  void add(unsigned v) {
    log_.push_back(v);
    count_ = count_ + 1;
    bump();
  }
 private:
  void bump() { rev_ = rev_ + 1; }
  unsigned count_ = 0;
  unsigned rev_ = 0;
  std::vector<unsigned> log_;
};
""")
        self.assert_clean(self.lint(f))

    def test_catch_rollback_discharges(self) -> None:
        f = self.write("src/graph/sg_rb2.cpp", """
#include <vector>
class SocialGraph {
 public:
  void add(unsigned v) {
    count_ = count_ + 1;
    try {
      log_.push_back(v);
    } catch (...) {
      count_ = count_ - 1;
      throw;
    }
    bump();
  }
 private:
  void bump() { rev_ = rev_ + 1; }
  unsigned count_ = 0;
  unsigned rev_ = 0;
  std::vector<unsigned> log_;
};
""")
        proc = self.lint(f)
        self.assertNotIn("EXC-1", proc.stderr + proc.stdout)

    def test_catch_without_rollback_fires(self) -> None:
        f = self.write("src/graph/sg_norb.cpp", """
#include <vector>
class SocialGraph {
 public:
  void add(unsigned v) {
    count_ = count_ + 1;
    try {
      log_.push_back(v);
    } catch (...) {
      dropped_ = dropped_ + 1;
    }
    bump();
  }
 private:
  void bump() { rev_ = rev_ + 1; }
  unsigned count_ = 0;
  unsigned rev_ = 0;
  unsigned dropped_ = 0;
  std::vector<unsigned> log_;
};
""")
        proc = self.lint(f)
        self.assert_fires(proc, "EXC-1")


class Shd1PhaseDisciplineTests(LintFixtureCase):
    """SHD-1: ShardState ownership and boundary-state discipline."""

    def test_boundary_write_outside_exchange_fires(self) -> None:
        f = self.write("src/shard/agg.cpp", """
#include <vector>
struct ShardSummary { unsigned long pair_count = 0; };
class ShardedAggregator {
 public:
  void tally(unsigned long s) {
    shards_[s]->summary = ShardSummary{};
  }
 private:
  struct ShardState {
    unsigned long seq = 0;
    ShardSummary summary;
  };
  std::vector<ShardState*> shards_;
};
""")
        proc = self.lint(f)
        self.assert_fires(proc, "SHD-1")
        self.assertIn("summary", proc.stderr)

    def test_boundary_write_in_build_summary_is_clean(self) -> None:
        f = self.write("src/shard/agg_ok.cpp", """
#include <vector>
struct ShardSummary { unsigned long pair_count = 0; };
class ShardedAggregator {
 public:
  void build_summary(unsigned long s) {
    shards_[s]->summary = ShardSummary{};
  }
 private:
  struct ShardState {
    unsigned long seq = 0;
    ShardSummary summary;
  };
  std::vector<ShardState*> shards_;
};
""")
        self.assert_clean(self.lint(f))

    WORKER = """
#include <vector>
class Pool;
class ShardedAggregator {
 public:
  void update(Pool& pool);
 private:
  struct ShardState { unsigned long seq = 0; };
  void %s(unsigned long s) { shards_[s]->seq = 1; }
  std::vector<ShardState*> shards_;
};
void ShardedAggregator::update(Pool& pool) {
  pool.parallel_for(4, [this](unsigned long s) { %s(s); });
}
"""

    def test_worker_write_outside_phase_closure_fires(self) -> None:
        f = self.write("src/shard/agg_w.cpp",
                       self.WORKER % ("poke", "poke"))
        proc = self.lint(f)
        self.assert_fires(proc, "SHD-1")
        self.assertIn("seq", proc.stderr)
        self.assertIn("parallel_for", proc.stderr)  # worker witness chain

    def test_worker_write_inside_phase_closure_is_clean(self) -> None:
        f = self.write("src/shard/agg_p.cpp",
                       self.WORKER % ("shard_phase_a", "shard_phase_a"))
        proc = self.lint(f)
        self.assertNotIn("SHD-1", proc.stderr + proc.stdout)


class ChangedOnlyRenameTests(LintFixtureCase):
    """--changed-only follows git renames: the new path is re-linted."""

    def _git(self, *args: str) -> str:
        proc = subprocess.run(["git", "-C", str(self.root), *args],
                              capture_output=True, text=True, check=False)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        return proc.stdout

    def test_changed_files_follows_renames(self) -> None:
        from stlint.cli import changed_files
        self._git("init", "-q")
        self._git("config", "user.email", "test@example.invalid")
        self._git("config", "user.name", "test")
        # several lines so the one-line edit stays above git's 50%
        # rename-similarity threshold (a fully-rewritten 1-liner would
        # surface as A + D, which is exactly the case we must not hit)
        body = ("int f() {{ return {0}; }}\n"
                "int g() {{ return 10; }}\n"
                "int h() {{ return 20; }}\n"
                "int k() {{ return 30; }}\n")
        self.write("src/core/old_name.cpp", body.format(1))
        self._git("add", "-A")
        self._git("commit", "-q", "-m", "base")
        base = self._git("rev-parse", "HEAD").strip()

        # rename + small edit: shows up as an R0xx row, not A/D
        old = self.root / "src" / "core" / "old_name.cpp"
        new = self.root / "src" / "core" / "new_name.cpp"
        old.rename(new)
        new.write_text(body.format(2), encoding="utf-8")
        self._git("add", "-A")
        self._git("commit", "-q", "-m", "rename")
        status = self._git("diff", "--name-status", "--find-renames", base)
        self.assertIn("R", status.split()[0])

        changed = changed_files(merge_ref=base, repo_root=self.root)
        self.assertIn("src/core/new_name.cpp", changed)
        self.assertNotIn("src/core/old_name.cpp", changed)


class SarifHelpUriTests(LintFixtureCase):
    def test_rules_link_to_catalogue_anchors(self) -> None:
        f = self.write("src/core/bad.cpp", "int f() { return rand(); }\n")
        proc = run_lint("--sarif", str(f))
        doc = json.loads(proc.stdout)
        rules = {r["id"]: r for r in
                 doc["runs"][0]["tool"]["driver"]["rules"]}
        for rule in ("REV-1", "REV-2", "EXC-1", "SHD-1"):
            self.assertIn(rule, rules)
            self.assertEqual(rules[rule]["helpUri"],
                             f"docs/STATIC_ANALYSIS.md#{rule.lower()}")


if __name__ == "__main__":
    unittest.main(verbosity=2)
