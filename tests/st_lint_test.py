#!/usr/bin/env python3
"""Unit suite for tools/st_lint.py.

Runs the linter as a subprocess (the same way ctest and CI invoke it)
against fixture snippets written to a temp tree that mirrors the repo
layout (src/core/..., src/stats/..., tests/...), asserting that:

  * every rule fires on its known-bad snippet and names its rule ID,
  * a seeded fixture tree with one violation per rule exits non-zero,
  * clean code and out-of-scope code pass,
  * same-line and preceding-line ``st-lint: allow(RULE reason)``
    suppress, and reason-less / unknown-rule suppressions are SUP-1
    under ``--strict``,
  * ``--json`` emits well-formed output.

Invoked by ctest as ``st_lint_unit`` (see tests/CMakeLists.txt); also
runs under plain ``python3 tests/st_lint_test.py`` or pytest.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
LINTER = REPO_ROOT / "tools" / "st_lint.py"


def run_lint(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(LINTER), *args],
        capture_output=True, text=True, check=False)


class LintFixtureCase(unittest.TestCase):
    """Base: a temp tree mirroring the repo layout, one file per test."""

    def setUp(self) -> None:
        self._tmp = tempfile.TemporaryDirectory(prefix="st_lint_test_")
        self.root = Path(self._tmp.name)
        self.addCleanup(self._tmp.cleanup)

    def write(self, rel: str, content: str) -> Path:
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content, encoding="utf-8")
        return path

    def lint(self, *paths: Path, strict: bool = False,
             as_json: bool = False) -> subprocess.CompletedProcess:
        args = []
        if strict:
            args.append("--strict")
        if as_json:
            args.append("--json")
        args += [str(p) for p in paths]
        return run_lint(*args)

    def assert_fires(self, proc: subprocess.CompletedProcess,
                     rule: str) -> None:
        self.assertEqual(proc.returncode, 1, proc.stderr + proc.stdout)
        self.assertIn(rule, proc.stderr)

    def assert_clean(self, proc: subprocess.CompletedProcess) -> None:
        self.assertEqual(proc.returncode, 0, proc.stderr + proc.stdout)


class RuleFiringTests(LintFixtureCase):
    def test_det1_rand(self) -> None:
        f = self.write("src/core/bad.cpp",
                       "int f() { return rand() % 7; }\n")
        self.assert_fires(self.lint(f), "DET-1")

    def test_det1_random_device(self) -> None:
        f = self.write("src/sim/bad.cpp",
                       "auto s = std::random_device{}();\n")
        self.assert_fires(self.lint(f), "DET-1")

    def test_det1_clock_as_seed(self) -> None:
        f = self.write(
            "bench/bad.cpp",
            "auto seed = std::chrono::steady_clock::now()"
            ".time_since_epoch().count();\n")
        self.assert_fires(self.lint(f), "DET-1")

    def test_det1_timing_clock_is_fine(self) -> None:
        f = self.write(
            "bench/ok.cpp",
            "auto start = std::chrono::steady_clock::now();\n")
        self.assert_clean(self.lint(f))

    def test_det1_allowed_in_rng(self) -> None:
        f = self.write("src/stats/rng.cpp",
                       "auto d = std::random_device{};\n")
        self.assert_clean(self.lint(f))

    def test_det2_range_for(self) -> None:
        f = self.write("src/core/bad.cpp", """
#include <unordered_map>
double sum(const std::unordered_map<int, double>& unused) {
  std::unordered_map<int, double> m;
  double total = 0.0;
  for (const auto& [k, v] : m) total += v;
  return total;
}
""")
        self.assert_fires(self.lint(f), "DET-2")

    def test_det2_iterator_loop(self) -> None:
        f = self.write("src/reputation/bad.cpp", """
#include <unordered_set>
int count() {
  std::unordered_set<int> s;
  int n = 0;
  for (auto it = s.begin(); it != s.end(); ++it) ++n;
  return n;
}
""")
        self.assert_fires(self.lint(f), "DET-2")

    def test_det2_alias_aware(self) -> None:
        f = self.write("src/sim/bad.cpp", """
#include <unordered_map>
using PairMap = std::unordered_map<int, double>;
double g() {
  PairMap pairs;
  double t = 0.0;
  for (const auto& [k, v] : pairs) t += v;
  return t;
}
""")
        self.assert_fires(self.lint(f), "DET-2")

    def test_det2_member_declared_in_own_header(self) -> None:
        self.write("src/core/widget.hpp", """
#pragma once
#include <unordered_map>
struct Widget {
  std::unordered_map<int, double> counts_;
  double total() const;
};
""")
        cpp = self.write("src/core/widget.cpp", """
#include "widget.hpp"
double Widget::total() const {
  double t = 0.0;
  for (const auto& [k, v] : counts_) t += v;
  return t;
}
""")
        proc = self.lint(self.root / "src")
        self.assert_fires(proc, "DET-2")
        self.assertIn(str(cpp.name), proc.stderr)

    def test_det2_out_of_scope_dir_passes(self) -> None:
        f = self.write("src/trace/ok.cpp", """
#include <unordered_map>
double sum() {
  std::unordered_map<int, double> m;
  double t = 0.0;
  for (const auto& [k, v] : m) t += v;
  return t;
}
""")
        self.assert_clean(self.lint(f))

    def test_det2_accumulate_over_begin(self) -> None:
        f = self.write("src/core/bad.cpp", """
#include <numeric>
#include <unordered_map>
double total() {
  std::unordered_map<int, double> weights;
  return std::accumulate(weights.begin(), weights.end(), 0.0,
                         [](double t, const auto& kv) {
                           return t + kv.second;
                         });
}
""")
        self.assert_fires(self.lint(f), "DET-2")

    def test_det2_iterator_pair_insert(self) -> None:
        f = self.write("src/reputation/bad.cpp", """
#include <unordered_set>
#include <vector>
std::vector<int> flatten() {
  std::unordered_set<int> flagged;
  std::vector<int> out;
  out.insert(out.end(), flagged.begin(), flagged.end());
  return out;
}
""")
        self.assert_fires(self.lint(f), "DET-2")

    def test_det2_iterator_pair_assign(self) -> None:
        f = self.write("src/sim/bad.cpp", """
#include <unordered_map>
#include <vector>
void snapshot() {
  std::unordered_map<int, double> totals;
  std::vector<std::pair<int, double>> out;
  out.assign(totals.cbegin(), totals.cend());
}
""")
        self.assert_fires(self.lint(f), "DET-2")

    def test_det2_ranges_for_each(self) -> None:
        f = self.write("src/core/bad.cpp", """
#include <algorithm>
#include <unordered_map>
double total() {
  std::unordered_map<int, double> weights;
  double t = 0.0;
  std::ranges::for_each(weights, [&](const auto& kv) { t += kv.second; });
  return t;
}
""")
        self.assert_fires(self.lint(f), "DET-2")

    def test_det2_algorithms_over_vector_pass(self) -> None:
        f = self.write("src/core/ok.cpp", """
#include <algorithm>
#include <numeric>
#include <vector>
double total() {
  std::vector<double> values;
  std::vector<double> out;
  out.insert(out.end(), values.begin(), values.end());
  std::ranges::for_each(values, [](double) {});
  return std::accumulate(values.begin(), values.end(), 0.0);
}
""")
        self.assert_clean(self.lint(f))

    def test_det2_find_over_unordered_passes(self) -> None:
        # Order-insensitive algorithms are fine: the result does not
        # depend on traversal order.
        f = self.write("src/core/ok.cpp", """
#include <algorithm>
#include <unordered_set>
bool has(int x) {
  std::unordered_set<int> s;
  return std::find(s.begin(), s.end(), x) != s.end();
}
""")
        self.assert_clean(self.lint(f))

    def test_det2_vector_loop_passes(self) -> None:
        f = self.write("src/core/ok.cpp", """
#include <vector>
double sum() {
  std::vector<double> values;
  double t = 0.0;
  for (double v : values) t += v;
  return t;
}
""")
        self.assert_clean(self.lint(f))

    def test_con1_thread(self) -> None:
        f = self.write("src/sim/bad.cpp",
                       "#include <thread>\n"
                       "void f() { std::thread t([] {}); t.join(); }\n")
        self.assert_fires(self.lint(f), "CON-1")

    def test_con1_detach(self) -> None:
        f = self.write("tests/bad.cpp", "void f(auto& t) { t.detach(); }\n")
        self.assert_fires(self.lint(f), "CON-1")

    def test_con1_static_members_pass(self) -> None:
        f = self.write(
            "src/core/ok.cpp",
            "#include <thread>\n"
            "auto n = std::thread::hardware_concurrency();\n")
        self.assert_clean(self.lint(f))

    def test_con1_allowed_in_pool(self) -> None:
        f = self.write("src/util/thread_pool.cpp",
                       "#include <thread>\nstd::thread worker;\n")
        self.assert_clean(self.lint(f))

    def test_con2_new_delete(self) -> None:
        f = self.write("src/core/bad.cpp",
                       "int* f() { return new int(3); }\n"
                       "void g(int* p) { delete p; }\n")
        self.assert_fires(self.lint(f), "CON-2")

    def test_con2_deleted_function_passes(self) -> None:
        f = self.write("src/core/ok.hpp",
                       "struct S { S(const S&) = delete; };\n")
        self.assert_clean(self.lint(f))

    def test_con2_comment_mention_passes(self) -> None:
        f = self.write("src/core/ok.cpp",
                       "// each new node attaches m edges\nint x = 0;\n")
        self.assert_clean(self.lint(f))

    def test_hyg1_wrong_first_include(self) -> None:
        self.write("src/core/thing.hpp", "#pragma once\n")
        f = self.write("src/core/thing.cpp",
                       "#include <vector>\n#include \"core/thing.hpp\"\n")
        self.assert_fires(self.lint(f), "HYG-1")

    def test_hyg1_own_header_first_passes(self) -> None:
        self.write("src/core/thing.hpp", "#pragma once\n")
        f = self.write("src/core/thing.cpp",
                       "#include \"core/thing.hpp\"\n#include <vector>\n")
        self.assert_clean(self.lint(f))

    def test_hyg1_no_own_header_passes(self) -> None:
        f = self.write("tests/some_test.cpp", "#include <vector>\n")
        self.assert_clean(self.lint(f))

    def test_hyg2_using_namespace_in_header(self) -> None:
        f = self.write("src/core/bad.hpp", "using namespace std;\n")
        self.assert_fires(self.lint(f), "HYG-2")

    def test_hyg2_in_cpp_passes(self) -> None:
        f = self.write("bench/ok.cpp", "using namespace std;\n")
        self.assert_clean(self.lint(f))


class SeededTreeTest(LintFixtureCase):
    """Acceptance: one violation per rule, all named, non-zero exit."""

    def test_one_violation_per_rule(self) -> None:
        self.write("src/core/det.hpp", "#pragma once\n")
        self.write("src/core/det.cpp", """
#include <unordered_map>
#include "core/det.hpp"
int seed_source() { return rand(); }
double reduce() {
  std::unordered_map<int, double> m;
  double t = 0.0;
  for (const auto& [k, v] : m) t += v;
  return t;
}
""")
        self.write("src/core/con.hpp",
                   "#pragma once\nusing namespace std;\n")
        self.write("src/sim/con.cpp", """
#include <thread>
void f() { std::thread t([] {}); t.detach(); }
int* g() { return new int(1); }
""")
        proc = self.lint(self.root / "src", strict=True)
        self.assertNotEqual(proc.returncode, 0)
        for rule in ("DET-1", "DET-2", "CON-1", "CON-2", "HYG-1", "HYG-2"):
            self.assertIn(rule, proc.stderr,
                          f"{rule} missing from:\n{proc.stderr}")


class SuppressionTests(LintFixtureCase):
    BAD_LOOP = ("  for (const auto& [k, v] : m) t += v;")

    def file_with(self, loop_line: str, prefix: str = "") -> Path:
        return self.write("src/core/f.cpp", f"""
#include <unordered_map>
double reduce() {{
  std::unordered_map<int, double> m;
  double t = 0.0;
{prefix}{loop_line}
  return t;
}}
""")

    def test_same_line_allow(self) -> None:
        f = self.file_with(self.BAD_LOOP +
                           "  // st-lint: allow(DET-2 integer sum)")
        self.assert_clean(self.lint(f, strict=True))

    def test_preceding_line_allow(self) -> None:
        f = self.file_with(
            self.BAD_LOOP,
            prefix="  // st-lint: allow(DET-2 sorted downstream)\n")
        self.assert_clean(self.lint(f, strict=True))

    def test_allow_without_reason_is_sup1_in_strict(self) -> None:
        f = self.file_with(self.BAD_LOOP + "  // st-lint: allow(DET-2)")
        proc = self.lint(f, strict=True)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("SUP-1", proc.stderr)

    def test_allow_unknown_rule_is_sup1(self) -> None:
        f = self.write("src/core/f.cpp",
                       "int x = 0;  // st-lint: allow(FOO-9 whatever)\n")
        proc = self.lint(f, strict=True)
        self.assert_fires(proc, "SUP-1")
        self.assert_clean(self.lint(f))  # non-strict tolerates it

    def test_allow_for_wrong_rule_does_not_suppress(self) -> None:
        f = self.file_with(self.BAD_LOOP +
                           "  // st-lint: allow(CON-1 wrong rule)")
        self.assert_fires(self.lint(f), "DET-2")

    def test_bare_nolint_is_sup1_in_strict(self) -> None:
        f = self.write("src/core/f.cpp", "int x = 0;  // NOLINT\n")
        proc = self.lint(f, strict=True)
        self.assert_fires(proc, "SUP-1")

    def test_nolint_without_reason_is_sup1_in_strict(self) -> None:
        f = self.write("src/core/f.cpp",
                       "int x = 0;  // NOLINT(some-check)\n")
        proc = self.lint(f, strict=True)
        self.assert_fires(proc, "SUP-1")

    def test_nolint_with_check_and_reason_passes(self) -> None:
        f = self.write(
            "src/core/f.cpp",
            "int x = 0;  // NOLINT(some-check): documented reason\n")
        self.assert_clean(self.lint(f, strict=True))


class OutputAndCliTests(LintFixtureCase):
    def test_json_output(self) -> None:
        f = self.write("src/core/bad.cpp", "int f() { return rand(); }\n")
        proc = self.lint(f, as_json=True)
        self.assertEqual(proc.returncode, 1)
        payload = json.loads(proc.stdout)
        self.assertEqual(payload["files_scanned"], 1)
        self.assertEqual(len(payload["findings"]), 1)
        self.assertEqual(payload["findings"][0]["rule"], "DET-1")
        self.assertIn("line", payload["findings"][0])

    def test_list_rules(self) -> None:
        proc = run_lint("--list-rules")
        self.assertEqual(proc.returncode, 0)
        for rule in ("DET-1", "DET-2", "CON-1", "CON-2",
                     "HYG-1", "HYG-2", "SUP-1"):
            self.assertIn(rule, proc.stdout)

    def test_missing_path_is_usage_error(self) -> None:
        proc = run_lint(str(self.root / "no_such_dir"))
        self.assertEqual(proc.returncode, 2)

    def test_real_tree_is_clean_under_strict(self) -> None:
        proc = run_lint("--strict",
                        str(REPO_ROOT / "src"),
                        str(REPO_ROOT / "bench"),
                        str(REPO_ROOT / "tests"),
                        str(REPO_ROOT / "examples"))
        self.assertEqual(proc.returncode, 0, proc.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
