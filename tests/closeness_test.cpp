// Unit tests for the social-closeness model (Eqs. 2, 3, 4, 10) against
// hand-computed values.

#include <gtest/gtest.h>

#include <cmath>

#include "core/closeness.hpp"

namespace st::core {
namespace {

using graph::NodeId;
using graph::Relationship;
using graph::SocialGraph;

SocialGraph chain_graph() {
  SocialGraph g(5);
  for (NodeId v = 0; v + 1 < 5; ++v)
    g.add_relationship(v, v + 1, Relationship::kFriendship);
  return g;
}

// --- Eq. (2): adjacent, unweighted ---------------------------------------

TEST(Closeness, AdjacentEq2HandComputed) {
  SocialGraph g(4);
  g.add_relationship(0, 1, Relationship::kFriendship);
  g.add_relationship(0, 1, Relationship::kColleague);  // m(0,1) = 2
  g.add_relationship(0, 2, Relationship::kFriendship); // m(0,2) = 1
  g.record_interaction(0, 1, 6.0);
  g.record_interaction(0, 2, 4.0);  // total f(0,*) = 10

  ClosenessModel model(/*weighted=*/false);
  EXPECT_DOUBLE_EQ(model.adjacent_closeness(g, 0, 1), 2.0 * 6.0 / 10.0);
  EXPECT_DOUBLE_EQ(model.adjacent_closeness(g, 0, 2), 1.0 * 4.0 / 10.0);
}

TEST(Closeness, AdjacentIsDirectional) {
  // Omega_c(i,j) normalises by *i's* interactions, so it is asymmetric.
  SocialGraph g(3);
  g.add_relationship(0, 1, Relationship::kFriendship);
  g.record_interaction(0, 1, 2.0);
  g.record_interaction(0, 2, 8.0);
  g.record_interaction(1, 0, 5.0);  // 1's only interactions

  ClosenessModel model(false);
  EXPECT_DOUBLE_EQ(model.adjacent_closeness(g, 0, 1), 0.2);
  EXPECT_DOUBLE_EQ(model.adjacent_closeness(g, 1, 0), 1.0);
}

TEST(Closeness, AdjacentZeroWithoutInteractions) {
  SocialGraph g(2);
  g.add_relationship(0, 1, Relationship::kFriendship);
  ClosenessModel model(false);
  EXPECT_DOUBLE_EQ(model.adjacent_closeness(g, 0, 1), 0.0);
}

TEST(Closeness, NonAdjacentAdjacentClosenessIsZero) {
  SocialGraph g(3);
  ClosenessModel model(false);
  EXPECT_DOUBLE_EQ(model.adjacent_closeness(g, 0, 2), 0.0);
}

// --- Eq. (10): adjacent, relationship-weighted ----------------------------

TEST(Closeness, WeightedRelationshipMassEq10) {
  SocialGraph g(3);
  g.add_relationship(0, 1, Relationship::kKinship);     // weight 2.0
  g.add_relationship(0, 1, Relationship::kFriendship);  // weight 1.0
  g.add_relationship(0, 1, Relationship::kBusiness);    // weight 0.8
  g.record_interaction(0, 1, 1.0);  // share = 1

  const double lambda = 0.5;
  ClosenessModel model(/*weighted=*/true, lambda);
  // Sorted descending: 2.0, 1.0, 0.8 decayed by lambda^(l-1):
  double expected = 2.0 + 0.5 * 1.0 + 0.25 * 0.8;
  EXPECT_DOUBLE_EQ(model.closeness(g, 0, 1), expected);
}

TEST(Closeness, AddingWeakRelationshipsBarelyMoves) {
  // Section 4.4: colluders adding low-weight relationships only slightly
  // change the closeness under Eq. (10).
  SocialGraph base(3);
  base.add_relationship(0, 1, Relationship::kKinship);
  base.record_interaction(0, 1, 1.0);
  ClosenessModel model(true, 0.5);
  double before = model.closeness(base, 0, 1);
  base.add_relationship(0, 1, Relationship::kBusiness);
  base.add_relationship(0, 1, Relationship::kFriendship);
  double after = model.closeness(base, 0, 1);
  EXPECT_LT(after - before, 0.8);  // far less than the raw added mass 1.8
  // Contrast with the unweighted count of Eq. (2): +2 whole units.
  ClosenessModel unweighted(false);
  SocialGraph g2(3);
  g2.add_relationship(0, 1, Relationship::kKinship);
  g2.record_interaction(0, 1, 1.0);
  double u_before = unweighted.closeness(g2, 0, 1);
  g2.add_relationship(0, 1, Relationship::kBusiness);
  g2.add_relationship(0, 1, Relationship::kFriendship);
  double u_after = unweighted.closeness(g2, 0, 1);
  EXPECT_DOUBLE_EQ(u_after - u_before, 2.0);
}

TEST(Closeness, CustomRelationshipWeightFunction) {
  SocialGraph g(2);
  g.add_relationship(0, 1, Relationship::kFriendship);
  g.record_interaction(0, 1, 1.0);
  ClosenessModel model(true, 0.8, [](graph::Relationship) { return 7.0; });
  EXPECT_DOUBLE_EQ(model.closeness(g, 0, 1), 7.0);
}

// --- Eq. (3): friend-of-friend ---------------------------------------------

TEST(Closeness, FofAverageOverCommonFriends) {
  // 0-2-1 and 0-3-1: two common friends.
  SocialGraph g(4);
  g.add_relationship(0, 2, Relationship::kFriendship);
  g.add_relationship(2, 1, Relationship::kFriendship);
  g.add_relationship(0, 3, Relationship::kFriendship);
  g.add_relationship(3, 1, Relationship::kFriendship);
  g.record_interaction(0, 2, 3.0);
  g.record_interaction(0, 3, 1.0);  // f(0,*) = 4
  g.record_interaction(2, 1, 2.0);  // f(2,*) = 2
  g.record_interaction(3, 1, 5.0);  // f(3,*) = 5

  ClosenessModel model(false);
  double c02 = 1.0 * 3.0 / 4.0;   // 0.75
  double c21 = 1.0 * 2.0 / 2.0;   // 1.0
  double c03 = 1.0 * 1.0 / 4.0;   // 0.25
  double c31 = 1.0 * 5.0 / 5.0;   // 1.0
  double expected = (c02 + c21) / 2.0 + (c03 + c31) / 2.0;
  EXPECT_DOUBLE_EQ(model.closeness(g, 0, 1), expected);
}

// --- Eq. (4): bottleneck fallback -------------------------------------------

TEST(Closeness, BottleneckOnChainWithoutCommonFriends) {
  SocialGraph g = chain_graph();  // 0-1-2-3-4
  g.record_interaction(0, 1, 1.0);
  g.record_interaction(1, 2, 4.0);
  g.record_interaction(1, 0, 1.0);  // f(1,*) = 5 -> c(1,2) = 0.8
  g.record_interaction(2, 3, 1.0);

  ClosenessModel model(false);
  // Path 0-1-2-3: adjacent closenesses c(0,1)=1, c(1,2)=0.8, c(2,3)=1.
  EXPECT_DOUBLE_EQ(model.closeness(g, 0, 3), 0.8);
}

TEST(Closeness, UnreachablePairIsZero) {
  SocialGraph g(4);
  g.add_relationship(0, 1, Relationship::kFriendship);
  g.add_relationship(2, 3, Relationship::kFriendship);
  g.record_interaction(0, 1, 1.0);
  ClosenessModel model(false);
  EXPECT_DOUBLE_EQ(model.closeness(g, 0, 3), 0.0);
}

TEST(Closeness, SelfClosenessIsZero) {
  SocialGraph g = chain_graph();
  ClosenessModel model(false);
  EXPECT_DOUBLE_EQ(model.closeness(g, 2, 2), 0.0);
}

TEST(Closeness, HopCapLimitsBottleneckSearch) {
  SocialGraph g = chain_graph();
  for (NodeId v = 0; v + 1 < 5; ++v) g.record_interaction(v, v + 1, 1.0);
  ClosenessModel model(false);
  EXPECT_GT(model.closeness(g, 0, 4, /*max_hops=*/4), 0.0);
  EXPECT_DOUBLE_EQ(model.closeness(g, 0, 4, /*max_hops=*/3), 0.0);
}

// --- behavioural properties -------------------------------------------------

TEST(Closeness, ConcentratedInteractionRaisesCloseness) {
  // The colluder signature: routing nearly all interactions to one partner
  // makes that pair's closeness dwarf the rater's other pairs.
  SocialGraph g(10);
  for (NodeId v = 1; v < 10; ++v) {
    g.add_relationship(0, v, Relationship::kFriendship);
    g.record_interaction(0, v, 1.0);
  }
  g.record_interaction(0, 1, 99.0);  // partner gets 100 of 108
  ClosenessModel model(false);
  double partner = model.closeness(g, 0, 1);
  for (NodeId v = 2; v < 10; ++v) {
    EXPECT_GT(partner, 10.0 * model.closeness(g, 0, v));
  }
}

class ClosenessLambdaProperty : public ::testing::TestWithParam<double> {};

TEST_P(ClosenessLambdaProperty, WeightedMassBoundedByUndecayedSum) {
  SocialGraph g(2);
  g.add_relationship(0, 1, Relationship::kKinship);
  g.add_relationship(0, 1, Relationship::kColleague);
  g.add_relationship(0, 1, Relationship::kFriendship);
  g.record_interaction(0, 1, 1.0);
  ClosenessModel model(true, GetParam());
  double mass = model.closeness(g, 0, 1);
  double undecayed = 2.0 + 1.2 + 1.0;
  EXPECT_GT(mass, 0.0);
  EXPECT_LE(mass, undecayed + 1e-12);
  // The top-weighted relationship always contributes fully.
  EXPECT_GE(mass, 2.0);
}

INSTANTIATE_TEST_SUITE_P(Lambdas, ClosenessLambdaProperty,
                         ::testing::Values(0.5, 0.6, 0.8, 1.0));

}  // namespace
}  // namespace st::core
