// Tests for the synthetic Overstock trace generator and the Section 3
// analysis pipelines: structural invariants, determinism, and — the point
// of the substitution — that the generated trace reproduces the paper's
// observed statistical shapes (O1-O6).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "stats/rng.hpp"
#include "trace/analysis.hpp"
#include "trace/marketplace.hpp"

namespace st::trace {
namespace {

TraceConfig small_config() {
  TraceConfig cfg;
  cfg.user_count = 1500;
  cfg.transaction_count = 12000;
  cfg.category_count = 20;
  return cfg;
}

const MarketplaceTrace& shared_trace() {
  static MarketplaceTrace trace = [] {
    stats::Rng rng(2024);
    return generate_trace(small_config(), rng);
  }();
  return trace;
}

// --- structural invariants ------------------------------------------------------

TEST(Trace, GeneratesRequestedVolume) {
  const auto& t = shared_trace();
  // A few transactions are dropped (no eligible seller); most survive.
  EXPECT_GT(t.transactions.size(), t.config.transaction_count * 9 / 10);
  EXPECT_LE(t.transactions.size(), t.config.transaction_count);
}

TEST(Trace, TransactionsAreWellFormed) {
  const auto& t = shared_trace();
  for (const Transaction& tx : t.transactions) {
    EXPECT_LT(tx.buyer, t.config.user_count);
    EXPECT_LT(tx.seller, t.config.user_count);
    EXPECT_NE(tx.buyer, tx.seller);
    EXPECT_LT(tx.category, t.config.category_count);
    // Overstock rating range [-2, +2].
    EXPECT_GE(tx.buyer_rating, -2.0);
    EXPECT_LE(tx.buyer_rating, 2.0);
    EXPECT_GE(tx.seller_rating, -2.0);
    EXPECT_LE(tx.seller_rating, 2.0);
    EXPECT_LE(tx.social_distance, 3);
    // Buyers buy within their declared interests.
    auto declared = t.profiles.declared(tx.buyer);
    EXPECT_TRUE(std::binary_search(declared.begin(), declared.end(),
                                   tx.category));
  }
}

TEST(Trace, BusinessNetworkMatchesDistinctPartners) {
  const auto& t = shared_trace();
  std::vector<std::set<graph::NodeId>> partners(t.config.user_count);
  for (const Transaction& tx : t.transactions) {
    partners[tx.buyer].insert(tx.seller);
    partners[tx.seller].insert(tx.buyer);
  }
  for (std::size_t u = 0; u < t.config.user_count; ++u) {
    EXPECT_EQ(t.business_network_size[u], partners[u].size()) << "u=" << u;
  }
}

TEST(Trace, ReputationEqualsAccumulatedRatings) {
  const auto& t = shared_trace();
  std::vector<double> rep(t.config.user_count, 0.0);
  for (const Transaction& tx : t.transactions) {
    rep[tx.seller] += tx.buyer_rating;
    rep[tx.buyer] += tx.seller_rating;
  }
  for (std::size_t u = 0; u < t.config.user_count; ++u) {
    EXPECT_NEAR(rep[u], t.reputation[u], 1e-9);
  }
}

TEST(Trace, SellerTransactionCountsConsistent) {
  const auto& t = shared_trace();
  std::vector<std::uint32_t> sold(t.config.user_count, 0);
  for (const Transaction& tx : t.transactions) ++sold[tx.seller];
  for (std::size_t u = 0; u < t.config.user_count; ++u) {
    EXPECT_EQ(sold[u], t.transactions_as_seller[u]);
  }
}

TEST(Trace, DeterministicPerSeed) {
  stats::Rng a(7), b(7);
  TraceConfig cfg = small_config();
  cfg.user_count = 400;
  cfg.transaction_count = 2000;
  MarketplaceTrace t1 = generate_trace(cfg, a);
  MarketplaceTrace t2 = generate_trace(cfg, b);
  ASSERT_EQ(t1.transactions.size(), t2.transactions.size());
  for (std::size_t i = 0; i < t1.transactions.size(); ++i) {
    EXPECT_EQ(t1.transactions[i].buyer, t2.transactions[i].buyer);
    EXPECT_EQ(t1.transactions[i].seller, t2.transactions[i].seller);
    EXPECT_EQ(t1.transactions[i].buyer_rating, t2.transactions[i].buyer_rating);
  }
}

// --- Section 3 shape reproduction -------------------------------------------------

TEST(TraceShapes, O1ReputationBusinessNetworkStronglyCoupled) {
  // Fig. 1(a): the crawl showed C = 0.996. The generator couples them
  // mechanically; we require a strong correlation.
  auto analysis = analyze_trace(shared_trace());
  EXPECT_GT(analysis.reputation_business_correlation, 0.7);
}

TEST(TraceShapes, O1TransactionsProportionalToReputation) {
  auto analysis = analyze_trace(shared_trace());
  EXPECT_GT(analysis.reputation_transactions_correlation, 0.55);
}

TEST(TraceShapes, O2PersonalNetworkWeaklyCoupled) {
  // Fig. 2: C = 0.092 in the crawl — the friendship graph is generated
  // independently of commerce, so the coupling must be far weaker than
  // the business-network coupling.
  auto analysis = analyze_trace(shared_trace());
  EXPECT_LT(analysis.reputation_personal_correlation,
            0.5 * analysis.reputation_business_correlation);
}

TEST(TraceShapes, O3O4RatingsDecayWithSocialDistance) {
  // Fig. 3(a): average rating value decreases with distance;
  // Fig. 3(b): average per-pair rating count decreases with distance.
  auto analysis = analyze_trace(shared_trace());
  ASSERT_EQ(analysis.by_distance.size(), 4u);
  const auto& rows = analysis.by_distance;
  EXPECT_GT(rows[0].average_rating, rows[2].average_rating);
  EXPECT_GT(rows[0].average_frequency, rows[3].average_frequency);
  // Most high-rated transactions occur within 3 hops (O3): the 1-3 hop
  // rows carry a clear majority of transactions.
  std::uint64_t near = rows[0].transactions + rows[1].transactions +
                       rows[2].transactions;
  std::uint64_t far = rows[3].transactions;
  EXPECT_GT(near, far);
}

TEST(TraceShapes, O5TopCategoriesDominate) {
  // Fig. 4(a): "the top 3 categories of products constitute about 88% of
  // the total number of products a user bought".
  auto analysis = analyze_trace(shared_trace());
  ASSERT_GE(analysis.category_rank_cdf.size(), 3u);
  EXPECT_GT(analysis.top3_share, 0.75);
  EXPECT_LE(analysis.top3_share, 1.0);
  // Shares decrease with rank (power-law-like).
  for (std::size_t r = 1; r < analysis.category_rank_share.size(); ++r) {
    EXPECT_LE(analysis.category_rank_share[r],
              analysis.category_rank_share[r - 1] + 1e-9);
  }
}

TEST(TraceShapes, O6TransactionsSkewTowardSimilarInterests) {
  // Fig. 4(b): ~10% of transactions at <= 0.2 similarity, ~60% above 0.3.
  auto analysis = analyze_trace(shared_trace());
  EXPECT_LT(analysis.fraction_low_similarity, 0.35);
  EXPECT_GT(analysis.fraction_above_03, 0.45);
  EXPECT_GT(analysis.mean_pair_similarity, 0.3);
}

TEST(TraceShapes, SimilarityCdfIsMonotone) {
  auto analysis = analyze_trace(shared_trace());
  ASSERT_FALSE(analysis.similarity_cdf.empty());
  double prev_x = -1.0, prev_y = 0.0;
  for (const auto& p : analysis.similarity_cdf) {
    EXPECT_GT(p.similarity, prev_x);
    EXPECT_GE(p.cumulative_fraction, prev_y);
    prev_x = p.similarity;
    prev_y = p.cumulative_fraction;
  }
  EXPECT_NEAR(analysis.similarity_cdf.back().cumulative_fraction, 1.0,
              1e-9);
}

TEST(TraceShapes, CategoryRankCdfReachesOne) {
  auto analysis = analyze_trace(shared_trace(), /*rank_limit=*/20);
  EXPECT_NEAR(analysis.category_rank_cdf.back(), 1.0, 0.02);
}

class TraceSeedProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceSeedProperty, ShapesHoldAcrossSeeds) {
  stats::Rng rng(GetParam());
  TraceConfig cfg = small_config();
  cfg.user_count = 800;
  cfg.transaction_count = 6000;
  MarketplaceTrace trace = generate_trace(cfg, rng);
  auto analysis = analyze_trace(trace);
  EXPECT_GT(analysis.reputation_business_correlation, 0.6);
  EXPECT_LT(analysis.reputation_personal_correlation,
            analysis.reputation_business_correlation);
  EXPECT_GT(analysis.top3_share, 0.7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceSeedProperty,
                         ::testing::Values(1u, 99u, 777u));

}  // namespace
}  // namespace st::trace
