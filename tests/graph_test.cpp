// Unit tests for st::graph — SocialGraph invariants, BFS distances/paths
// against brute force, interaction accounting, and the random generators'
// structural properties.

#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <cmath>
#include <set>

#include "graph/generators.hpp"
#include "graph/social_graph.hpp"
#include "stats/rng.hpp"

namespace st::graph {
namespace {

TEST(SocialGraph, StartsEmpty) {
  SocialGraph g(5);
  EXPECT_EQ(g.size(), 5u);
  EXPECT_EQ(g.edge_count(), 0u);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(g.degree(v), 0u);
    EXPECT_TRUE(g.neighbors(v).empty());
  }
}

TEST(SocialGraph, AddRelationshipIsUndirected) {
  SocialGraph g(4);
  EXPECT_TRUE(g.add_relationship(0, 1, Relationship::kFriendship));
  EXPECT_TRUE(g.adjacent(0, 1));
  EXPECT_TRUE(g.adjacent(1, 0));
  EXPECT_EQ(g.relationship_count(0, 1), 1u);
  EXPECT_EQ(g.relationship_count(1, 0), 1u);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(SocialGraph, DuplicateRelationshipIsNoOp) {
  SocialGraph g(3);
  EXPECT_TRUE(g.add_relationship(0, 1, Relationship::kKinship));
  EXPECT_FALSE(g.add_relationship(0, 1, Relationship::kKinship));
  EXPECT_EQ(g.relationship_count(0, 1), 1u);
}

TEST(SocialGraph, ParallelRelationshipTypesAccumulate) {
  SocialGraph g(3);
  g.add_relationship(0, 1, Relationship::kFriendship);
  g.add_relationship(0, 1, Relationship::kColleague);
  g.add_relationship(0, 1, Relationship::kKinship);
  EXPECT_EQ(g.relationship_count(0, 1), 3u);
  auto rels = g.relationships(0, 1);
  std::set<Relationship> expected{Relationship::kFriendship,
                                  Relationship::kColleague,
                                  Relationship::kKinship};
  EXPECT_EQ(std::set<Relationship>(rels.begin(), rels.end()), expected);
  EXPECT_EQ(g.edge_count(), 1u);  // still one edge
}

TEST(SocialGraph, SelfRelationshipRejected) {
  SocialGraph g(3);
  EXPECT_FALSE(g.add_relationship(1, 1, Relationship::kFriendship));
  EXPECT_FALSE(g.adjacent(1, 1));
}

TEST(SocialGraph, OutOfRangeThrows) {
  SocialGraph g(3);
  EXPECT_THROW(g.add_relationship(0, 7, Relationship::kFriendship),
               std::out_of_range);
  EXPECT_THROW(g.distance(0, 9), std::out_of_range);
  EXPECT_THROW(g.record_interaction(9, 0), std::out_of_range);
}

TEST(SocialGraph, RemoveRelationship) {
  SocialGraph g(3);
  g.add_relationship(0, 1, Relationship::kFriendship);
  g.add_relationship(0, 1, Relationship::kColleague);
  EXPECT_TRUE(g.remove_relationship(0, 1, Relationship::kFriendship));
  EXPECT_TRUE(g.adjacent(0, 1));
  EXPECT_EQ(g.relationship_count(0, 1), 1u);
  // Removing the last relationship removes the edge itself.
  EXPECT_TRUE(g.remove_relationship(1, 0, Relationship::kColleague));
  EXPECT_FALSE(g.adjacent(0, 1));
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_FALSE(g.remove_relationship(0, 1, Relationship::kColleague));
}

TEST(SocialGraph, NeighborsSortedAndConsistent) {
  SocialGraph g(6);
  g.add_relationship(3, 5, Relationship::kFriendship);
  g.add_relationship(3, 0, Relationship::kFriendship);
  g.add_relationship(3, 4, Relationship::kFriendship);
  auto n = g.neighbors(3);
  ASSERT_EQ(n.size(), 3u);
  EXPECT_TRUE(std::is_sorted(n.begin(), n.end()));
  EXPECT_EQ(g.degree(3), 3u);
}

TEST(SocialGraph, InteractionAccounting) {
  SocialGraph g(4);
  g.record_interaction(0, 1);
  g.record_interaction(0, 1, 2.0);
  g.record_interaction(0, 2, 5.0);
  EXPECT_DOUBLE_EQ(g.interaction(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(g.interaction(0, 2), 5.0);
  EXPECT_DOUBLE_EQ(g.interaction(1, 0), 0.0);  // directed
  EXPECT_DOUBLE_EQ(g.total_interactions(0), 8.0);
  EXPECT_DOUBLE_EQ(g.total_interactions(1), 0.0);
}

TEST(SocialGraph, InteractionIgnoresSelfAndNonPositive) {
  SocialGraph g(3);
  g.record_interaction(0, 0, 5.0);
  g.record_interaction(0, 1, 0.0);
  g.record_interaction(0, 1, -3.0);
  EXPECT_DOUBLE_EQ(g.total_interactions(0), 0.0);
}

TEST(SocialGraph, InteractionsDoNotRequireAdjacency) {
  SocialGraph g(3);
  g.record_interaction(0, 2, 4.0);
  EXPECT_FALSE(g.adjacent(0, 2));
  EXPECT_DOUBLE_EQ(g.interaction(0, 2), 4.0);
}

TEST(SocialGraph, CommonFriends) {
  SocialGraph g(6);
  // 0-2, 1-2, 0-3, 1-3, 0-1 (triangle edge should not list endpoints)
  g.add_relationship(0, 2, Relationship::kFriendship);
  g.add_relationship(1, 2, Relationship::kFriendship);
  g.add_relationship(0, 3, Relationship::kFriendship);
  g.add_relationship(1, 3, Relationship::kFriendship);
  g.add_relationship(0, 1, Relationship::kFriendship);
  auto common = g.common_friends(0, 1);
  EXPECT_EQ(common, (std::vector<NodeId>{2, 3}));
  EXPECT_TRUE(g.common_friends(2, 3).size() == 2);  // {0, 1}
}

TEST(SocialGraph, DistanceChain) {
  SocialGraph g(5);
  for (NodeId v = 0; v + 1 < 5; ++v)
    g.add_relationship(v, v + 1, Relationship::kFriendship);
  EXPECT_EQ(g.distance(0, 0).value(), 0u);
  EXPECT_EQ(g.distance(0, 1).value(), 1u);
  EXPECT_EQ(g.distance(0, 4).value(), 4u);
  EXPECT_EQ(g.distance(4, 0).value(), 4u);
}

TEST(SocialGraph, DistanceRespectsHopCap) {
  SocialGraph g(5);
  for (NodeId v = 0; v + 1 < 5; ++v)
    g.add_relationship(v, v + 1, Relationship::kFriendship);
  EXPECT_FALSE(g.distance(0, 4, 3).has_value());
  EXPECT_TRUE(g.distance(0, 3, 3).has_value());
}

TEST(SocialGraph, DistanceUnreachable) {
  SocialGraph g(4);
  g.add_relationship(0, 1, Relationship::kFriendship);
  g.add_relationship(2, 3, Relationship::kFriendship);
  EXPECT_FALSE(g.distance(0, 3).has_value());
}

TEST(SocialGraph, ShortestPathEndpointsAndAdjacency) {
  SocialGraph g(6);
  g.add_relationship(0, 1, Relationship::kFriendship);
  g.add_relationship(1, 2, Relationship::kFriendship);
  g.add_relationship(2, 5, Relationship::kFriendship);
  g.add_relationship(0, 3, Relationship::kFriendship);
  g.add_relationship(3, 5, Relationship::kFriendship);
  auto path = g.shortest_path(0, 5);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->front(), 0u);
  EXPECT_EQ(path->back(), 5u);
  EXPECT_EQ(path->size(), 3u);  // 0-3-5 is the 2-hop route
  for (std::size_t i = 0; i + 1 < path->size(); ++i) {
    EXPECT_TRUE(g.adjacent((*path)[i], (*path)[i + 1]));
  }
}

TEST(SocialGraph, ShortestPathSelf) {
  SocialGraph g(2);
  auto path = g.shortest_path(1, 1);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, std::vector<NodeId>{1});
}

/// Brute-force BFS oracle for the randomized distance comparison.
std::optional<std::size_t> bfs_oracle(const SocialGraph& g, NodeId a,
                                      NodeId b, std::size_t cap) {
  if (a == b) return 0;
  std::vector<int> dist(g.size(), -1);
  std::queue<NodeId> q;
  q.push(a);
  dist[a] = 0;
  while (!q.empty()) {
    NodeId v = q.front();
    q.pop();
    if (static_cast<std::size_t>(dist[v]) >= cap) continue;
    for (NodeId n : g.neighbors(v)) {
      if (dist[n] != -1) continue;
      dist[n] = dist[v] + 1;
      if (n == b) return static_cast<std::size_t>(dist[n]);
      q.push(n);
    }
  }
  return std::nullopt;
}

TEST(SocialGraph, DistanceMatchesOracleOnRandomGraphs) {
  stats::Rng rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    SocialGraph g = erdos_renyi(40, 0.08, rng);
    for (NodeId a = 0; a < 40; a += 3) {
      for (NodeId b = 0; b < 40; b += 5) {
        auto got = g.distance(a, b, 4);
        auto want = bfs_oracle(g, a, b, 4);
        EXPECT_EQ(got, want) << "a=" << a << " b=" << b;
      }
    }
  }
}

TEST(RelationshipWeights, KinshipStrongest) {
  EXPECT_GT(default_relationship_weight(Relationship::kKinship),
            default_relationship_weight(Relationship::kFriendship));
  EXPECT_GT(default_relationship_weight(Relationship::kFriendship),
            default_relationship_weight(Relationship::kBusiness));
}

// --- generators --------------------------------------------------------------

TEST(Generators, ErdosRenyiEdgeCountNearExpectation) {
  stats::Rng rng(1);
  const std::size_t n = 100;
  const double p = 0.1;
  SocialGraph g = erdos_renyi(n, p, rng);
  double expected = p * static_cast<double>(n * (n - 1) / 2);
  EXPECT_NEAR(static_cast<double>(g.edge_count()), expected,
              4.0 * std::sqrt(expected));
}

TEST(Generators, ErdosRenyiZeroProbabilityIsEmpty) {
  stats::Rng rng(2);
  SocialGraph g = erdos_renyi(50, 0.0, rng);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Generators, WattsStrogatzDegreePreservedAtBetaZero) {
  stats::Rng rng(3);
  SocialGraph g = watts_strogatz(30, 4, 0.0, rng);
  for (NodeId v = 0; v < 30; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_EQ(g.edge_count(), 60u);
}

TEST(Generators, WattsStrogatzRewiredKeepsEdgeCount) {
  stats::Rng rng(4);
  SocialGraph g = watts_strogatz(60, 6, 0.3, rng);
  // Rewiring moves endpoints but never creates or destroys edges (modulo
  // rare rejection exhaustion, which keeps the original edge).
  EXPECT_EQ(g.edge_count(), 180u);
}

TEST(Generators, WattsStrogatzValidation) {
  stats::Rng rng(5);
  EXPECT_THROW(watts_strogatz(10, 3, 0.1, rng), std::invalid_argument);
  EXPECT_THROW(watts_strogatz(4, 4, 0.1, rng), std::invalid_argument);
}

TEST(Generators, BarabasiAlbertDegreeSumAndConnectivity) {
  stats::Rng rng(6);
  const std::size_t n = 200, m = 3;
  SocialGraph g = barabasi_albert(n, m, rng);
  // Every non-seed node attaches m edges.
  std::size_t expected_min = (n - m - 1) * m;  // plus the seed clique
  EXPECT_GE(g.edge_count(), expected_min);
  // Preferential attachment yields a connected graph.
  std::size_t reachable = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (g.distance(0, v, n).has_value()) ++reachable;
  }
  EXPECT_EQ(reachable, n);
}

TEST(Generators, BarabasiAlbertHubsExist) {
  stats::Rng rng(7);
  SocialGraph g = barabasi_albert(500, 2, rng);
  std::size_t max_degree = 0;
  for (NodeId v = 0; v < 500; ++v)
    max_degree = std::max(max_degree, g.degree(v));
  // Power-law degree: the biggest hub far exceeds the mean degree (4).
  EXPECT_GT(max_degree, 20u);
}

TEST(Generators, BarabasiAlbertValidation) {
  stats::Rng rng(8);
  EXPECT_THROW(barabasi_albert(3, 3, rng), std::invalid_argument);
  EXPECT_THROW(barabasi_albert(5, 0, rng), std::invalid_argument);
}

class GeneratorSeedProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(GeneratorSeedProperty, GraphsAreDeterministicPerSeed) {
  stats::Rng rng1(GetParam()), rng2(GetParam());
  SocialGraph a = barabasi_albert(80, 2, rng1);
  SocialGraph b = barabasi_albert(80, 2, rng2);
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (NodeId v = 0; v < 80; ++v) {
    auto na = a.neighbors(v);
    auto nb = b.neighbors(v);
    ASSERT_EQ(std::vector<NodeId>(na.begin(), na.end()),
              std::vector<NodeId>(nb.begin(), nb.end()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedProperty,
                         ::testing::Values(1u, 7u, 42u, 31337u));

// Revision counters back the SocialStateCache validity checks
// (DESIGN.md §13): they must tick on every actual state change and only
// on actual state changes.

TEST(SocialGraphRevisions, EdgeMutationsBumpBothEndpointsStructurally) {
  SocialGraph g(4);
  EXPECT_EQ(g.epoch(), 0U);
  EXPECT_EQ(g.structure_epoch(), 0U);

  g.add_relationship(0, 1, Relationship::kFriendship);
  EXPECT_EQ(g.structure_revision(0), 1U);
  EXPECT_EQ(g.structure_revision(1), 1U);
  EXPECT_EQ(g.structure_revision(2), 0U);
  // A structural change is also a full change (Eq. 2 reads m(i,j)).
  EXPECT_EQ(g.revision(0), 1U);
  EXPECT_EQ(g.revision(1), 1U);
  EXPECT_EQ(g.structure_epoch(), 1U);
  EXPECT_EQ(g.epoch(), 1U);

  // Re-adding an existing edge changes nothing and must not bump.
  g.add_relationship(1, 0, Relationship::kFriendship);
  EXPECT_EQ(g.structure_revision(0), 1U);
  EXPECT_EQ(g.structure_epoch(), 1U);

  g.remove_relationship(0, 1, Relationship::kFriendship);
  EXPECT_EQ(g.structure_revision(0), 2U);
  EXPECT_EQ(g.structure_revision(1), 2U);
  EXPECT_EQ(g.structure_epoch(), 2U);

  // Removing a non-edge is a no-op.
  g.remove_relationship(0, 2, Relationship::kFriendship);
  EXPECT_EQ(g.structure_epoch(), 2U);
}

TEST(SocialGraphRevisions, InteractionsBumpOnlyTheRaterAndOnlyFully) {
  SocialGraph g(3);
  g.add_relationship(0, 1, Relationship::kFriendship);
  const auto sepoch = g.structure_epoch();
  const auto srev0 = g.structure_revision(0);

  g.record_interaction(0, 1, 2.0);
  // Interaction counts live in the rater's row; the ratee's state is
  // untouched and the topology did not change.
  EXPECT_EQ(g.revision(0), srev0 + 1);
  EXPECT_EQ(g.revision(1), g.structure_revision(1));
  EXPECT_EQ(g.structure_revision(0), srev0);
  EXPECT_EQ(g.structure_epoch(), sepoch);
  EXPECT_GT(g.epoch(), sepoch);
}

TEST(SocialGraphRevisions, ClearNodeBumpsEveryRaterWhoseRowShrank) {
  SocialGraph g(4);
  g.add_relationship(0, 1, Relationship::kFriendship);
  g.record_interaction(0, 1, 1.0);  // 0's row mentions 1
  g.record_interaction(2, 1, 1.0);  // 2's row mentions 1
  g.record_interaction(2, 3, 1.0);  // unrelated entry in 2's row
  const auto rev0 = g.revision(0);
  const auto rev2 = g.revision(2);
  const auto rev3 = g.revision(3);

  g.clear_node(1);
  // Raters whose incoming rows were trimmed changed observable state
  // (their Eq. 2 denominators shrink); bystanders did not.
  EXPECT_GT(g.revision(0), rev0);
  EXPECT_GT(g.revision(2), rev2);
  EXPECT_EQ(g.revision(3), rev3);
}

TEST(SocialGraphRevisions, EpochIsMonotoneOverAMixedWorkload) {
  stats::Rng rng(99);
  SocialGraph g = barabasi_albert(30, 2, rng);
  auto last = g.epoch();
  for (int step = 0; step < 50; ++step) {
    const auto a = static_cast<NodeId>(rng.index(30));
    auto b = static_cast<NodeId>(rng.index(30));
    if (b == a) b = (b + 1) % 30;
    if (rng.bernoulli(0.3)) {
      g.add_relationship(a, b, Relationship::kColleague);
    } else {
      g.record_interaction(a, b);
    }
    EXPECT_GE(g.epoch(), last);
    last = g.epoch();
  }
}

}  // namespace
}  // namespace st::graph
