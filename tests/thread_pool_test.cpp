// Stress coverage for st::util::ThreadPool — the substrate the parallel
// update interval fans out on — and for the LooAggregate leave-one-out
// statistics whose min2/max2 bookkeeping the parallel reduction depends on.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/socialtrust.hpp"
#include "util/thread_pool.hpp"

namespace st::util {
namespace {

// --- blocked parallel_for ---------------------------------------------------

TEST(ThreadPoolGrain, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000, kGrain = 64;
  std::vector<std::atomic<int>> hits(kN);
  std::atomic<bool> bad_block{false};
  pool.parallel_for(kN, kGrain, [&](std::size_t begin, std::size_t end) {
    if (begin % kGrain != 0 || end <= begin ||
        (end - begin != kGrain && end != kN)) {
      bad_block = true;
    }
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_FALSE(bad_block) << "block boundaries must be multiples of grain";
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolGrain, SingleBlockRunsInlineOnCaller) {
  ThreadPool pool(4);
  std::thread::id executed_on;
  pool.parallel_for(10, 64, [&](std::size_t begin, std::size_t end) {
    executed_on = std::this_thread::get_id();
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
  });
  EXPECT_EQ(executed_on, std::this_thread::get_id());
}

TEST(ThreadPoolGrain, EmptyRangeNeverInvokes) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, 16, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolGrain, ZeroGrainDegeneratesToPerIndexBlocks) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(9);
  pool.parallel_for(9, 0, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(end, begin + 1);
    ++hits[begin];
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolGrain, ExceptionPropagatesAfterAllBlocksFinish) {
  ThreadPool pool(4);
  std::atomic<int> blocks_run{0};
  try {
    pool.parallel_for(512, 32, [&](std::size_t begin, std::size_t) {
      ++blocks_run;
      if (begin == 128) throw std::runtime_error("block128");
    });
    FAIL() << "expected propagation";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "block128");
  }
  // Every block still executed: a failing block must not strand the rest
  // of the interval half-processed.
  EXPECT_EQ(blocks_run.load(), 512 / 32);
}

// --- exception ordering / shutdown ------------------------------------------

TEST(ThreadPoolTest, ParallelForFirstExceptionWins) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  try {
    pool.parallel_for(64, [&](std::size_t i) {
      ++ran;
      throw std::runtime_error("task" + std::to_string(i));
    });
    FAIL() << "expected propagation";
  } catch (const std::runtime_error& e) {
    // Futures are drained in index order, so the surviving exception is
    // the lowest-index one regardless of scheduling.
    EXPECT_STREQ(e.what(), "task0");
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
  EXPECT_THROW(pool.parallel_for(4, [](std::size_t) {}),
               std::runtime_error);
  // Multi-block ranges go through submit and must throw too.
  EXPECT_THROW(
      pool.parallel_for(128, 16, [](std::size_t, std::size_t) {}),
      std::runtime_error);
}

TEST(ThreadPoolTest, ShutdownDrainsAndIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  pool.shutdown();
  EXPECT_EQ(counter.load(), 100);
  pool.shutdown();  // no-op
  for (auto& f : futures) f.get();
}

TEST(ThreadPoolTest, TenThousandTaskChurn) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(10000, [&sum](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 10000ULL * 9999ULL / 2ULL);
  // And the same churn through the blocked overload.
  std::atomic<std::uint64_t> sum2{0};
  pool.parallel_for(10000, 7, [&sum2](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) sum2 += i;
  });
  EXPECT_EQ(sum2.load(), 10000ULL * 9999ULL / 2ULL);
}

}  // namespace
}  // namespace st::util

// --- LooAggregate -----------------------------------------------------------

namespace st::core {
namespace {

using Loo = SocialTrustPlugin::LooAggregate;

TEST(LooAggregate, EmptyAndSingletonHaveNoLeaveOneOut) {
  Loo agg;
  CoefficientStats out;
  EXPECT_FALSE(agg.without(1.0, out));
  agg.add(3.0);
  EXPECT_FALSE(agg.without(3.0, out));
  CoefficientStats full = agg.full();
  EXPECT_DOUBLE_EQ(full.mean, 3.0);
  EXPECT_DOUBLE_EQ(full.min, 3.0);
  EXPECT_DOUBLE_EQ(full.max, 3.0);
  EXPECT_DOUBLE_EQ(full.stddev, 0.0);
}

TEST(LooAggregate, TwoElements) {
  Loo agg;
  agg.add(2.0);
  agg.add(7.0);
  CoefficientStats out;
  ASSERT_TRUE(agg.without(2.0, out));
  EXPECT_DOUBLE_EQ(out.mean, 7.0);
  EXPECT_DOUBLE_EQ(out.min, 7.0);
  EXPECT_DOUBLE_EQ(out.max, 7.0);
  EXPECT_DOUBLE_EQ(out.stddev, 0.0);
  ASSERT_TRUE(agg.without(7.0, out));
  EXPECT_DOUBLE_EQ(out.min, 2.0);
  EXPECT_DOUBLE_EQ(out.max, 2.0);
}

TEST(LooAggregate, DuplicateExtremesSurviveRemoval) {
  // {1, 1, 5, 5}: removing one copy of an extreme must keep the other.
  Loo agg;
  for (double v : {1.0, 1.0, 5.0, 5.0}) agg.add(v);
  CoefficientStats out;
  ASSERT_TRUE(agg.without(1.0, out));
  EXPECT_DOUBLE_EQ(out.min, 1.0);
  EXPECT_DOUBLE_EQ(out.max, 5.0);
  EXPECT_DOUBLE_EQ(out.mean, 11.0 / 3.0);
  ASSERT_TRUE(agg.without(5.0, out));
  EXPECT_DOUBLE_EQ(out.min, 1.0);
  EXPECT_DOUBLE_EQ(out.max, 5.0);
}

TEST(LooAggregate, LoneExtremeRemovalFallsBackToSecond) {
  Loo agg;
  for (double v : {1.0, 2.0, 5.0}) agg.add(v);
  CoefficientStats out;
  ASSERT_TRUE(agg.without(5.0, out));
  EXPECT_DOUBLE_EQ(out.max, 2.0);
  EXPECT_DOUBLE_EQ(out.min, 1.0);
  ASSERT_TRUE(agg.without(1.0, out));
  EXPECT_DOUBLE_EQ(out.min, 2.0);
  EXPECT_DOUBLE_EQ(out.max, 5.0);
  ASSERT_TRUE(agg.without(2.0, out));
  EXPECT_DOUBLE_EQ(out.min, 1.0);
  EXPECT_DOUBLE_EQ(out.max, 5.0);
}

TEST(LooAggregate, MatchesDirectRecomputation) {
  // Pseudo-random multiset; leave-one-out via the aggregate must match a
  // from-scratch recomputation over the remaining values.
  std::vector<double> values;
  std::uint64_t state = 12345;
  for (int i = 0; i < 50; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    values.push_back(static_cast<double>(state >> 40U) / 1e6);
  }
  Loo agg;
  for (double v : values) agg.add(v);
  for (double removed : values) {
    CoefficientStats out;
    ASSERT_TRUE(agg.without(removed, out));
    std::vector<double> rest = values;
    rest.erase(std::find(rest.begin(), rest.end(), removed));
    double sum = 0.0;
    for (double v : rest) sum += v;
    double mean = sum / static_cast<double>(rest.size());
    double var = 0.0;
    for (double v : rest) var += (v - mean) * (v - mean);
    var /= static_cast<double>(rest.size());
    EXPECT_NEAR(out.mean, mean, 1e-9);
    EXPECT_NEAR(out.stddev, std::sqrt(var), 1e-6);
    EXPECT_DOUBLE_EQ(out.min, *std::min_element(rest.begin(), rest.end()));
    EXPECT_DOUBLE_EQ(out.max, *std::max_element(rest.begin(), rest.end()));
  }
}

}  // namespace
}  // namespace st::core
