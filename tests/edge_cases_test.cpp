// Failure-injection and boundary-condition tests across modules: degenerate
// populations, saturated capacity, single-category worlds, hostile rating
// streams, and configuration extremes. These guard the public API against
// the inputs a downstream user will eventually throw at it.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "collusion/models.hpp"
#include "core/socialtrust.hpp"
#include "reputation/ebay.hpp"
#include "reputation/eigentrust.hpp"
#include "reputation/paper_eigentrust.hpp"
#include "sim/experiment.hpp"
#include "sim/factories.hpp"

namespace st {
namespace {

using reputation::NodeId;
using reputation::Rating;

Rating make(NodeId rater, NodeId ratee, double value) {
  Rating r;
  r.rater = rater;
  r.ratee = ratee;
  r.value = value;
  return r;
}

// --- degenerate populations -----------------------------------------------------

TEST(EdgeSim, NoColludersNoPretrusted) {
  sim::SimConfig cfg;
  cfg.node_count = 30;
  cfg.pretrusted_count = 0;
  cfg.colluder_count = 0;
  cfg.simulation_cycles = 3;
  cfg.query_cycles_per_cycle = 5;
  sim::Simulator simulator(cfg, sim::make_paper_eigentrust_factory(),
                           nullptr, 1);
  auto result = simulator.run();
  EXPECT_GT(result.total_requests, 0u);
  EXPECT_EQ(result.requests_to_colluders, 0u);
  EXPECT_TRUE(result.colluder_history.empty());
}

TEST(EdgeSim, AllNodesAreColluders) {
  sim::SimConfig cfg;
  cfg.node_count = 20;
  cfg.pretrusted_count = 0;
  cfg.colluder_count = 20;
  cfg.simulation_cycles = 3;
  cfg.query_cycles_per_cycle = 5;
  sim::Simulator simulator(
      cfg, sim::make_paper_eigentrust_factory(),
      std::make_unique<collusion::PairwiseCollusion>(), 2);
  auto result = simulator.run();
  EXPECT_EQ(result.requests_to_colluders, result.total_requests);
}

TEST(EdgeSim, TwoNodeNetwork) {
  sim::SimConfig cfg;
  cfg.node_count = 2;
  cfg.pretrusted_count = 1;
  cfg.colluder_count = 0;
  cfg.interest_count = 2;
  cfg.max_interests = 2;
  cfg.simulation_cycles = 2;
  cfg.query_cycles_per_cycle = 3;
  cfg.social_degree = 1;
  sim::Simulator simulator(cfg, sim::make_paper_eigentrust_factory(),
                           nullptr, 3);
  EXPECT_NO_THROW(simulator.run());
}

TEST(EdgeSim, SingleInterestCategory) {
  sim::SimConfig cfg;
  cfg.node_count = 25;
  cfg.pretrusted_count = 2;
  cfg.colluder_count = 4;
  cfg.interest_count = 1;
  cfg.min_interests = 1;
  cfg.max_interests = 1;
  cfg.simulation_cycles = 3;
  cfg.query_cycles_per_cycle = 5;
  sim::Simulator simulator(
      cfg, sim::make_paper_eigentrust_factory(),
      std::make_unique<collusion::MutualMultiNodeCollusion>(), 4);
  auto result = simulator.run();
  EXPECT_GT(result.total_requests, 0u);
}

// --- saturated / starved capacity --------------------------------------------------

TEST(EdgeSim, CapacityOnePerQueryCycle) {
  sim::SimConfig cfg;
  cfg.node_count = 40;
  cfg.pretrusted_count = 2;
  cfg.colluder_count = 0;
  cfg.capacity_per_query_cycle = 1;
  cfg.simulation_cycles = 3;
  cfg.query_cycles_per_cycle = 10;
  sim::Simulator simulator(cfg, sim::make_paper_eigentrust_factory(),
                           nullptr, 5);
  auto result = simulator.run();
  // Each query cycle at most node_count services are possible.
  EXPECT_LE(result.total_requests,
            cfg.node_count * cfg.query_cycles_per_cycle *
                cfg.simulation_cycles);
  EXPECT_GT(result.total_requests, 0u);
}

TEST(EdgeSim, PatienceZeroIgnoresReputation) {
  sim::SimConfig cfg;
  cfg.node_count = 40;
  cfg.pretrusted_count = 4;
  cfg.colluder_count = 0;
  cfg.selection_patience = 0;
  cfg.sticky_selection = false;
  cfg.simulation_cycles = 4;
  cfg.query_cycles_per_cycle = 10;
  sim::Simulator simulator(cfg, sim::make_paper_eigentrust_factory(),
                           nullptr, 6);
  auto result = simulator.run();
  // Without reputation preference, pretrusted nodes get roughly their
  // population share of requests (10%), far below the preferred regime.
  double share = static_cast<double>(result.requests_to_pretrusted) /
                 static_cast<double>(result.total_requests);
  EXPECT_LT(share, 0.35);
}

TEST(EdgeSim, AbsoluteThresholdModeRuns) {
  sim::SimConfig cfg;
  cfg.node_count = 40;
  cfg.pretrusted_count = 4;
  cfg.colluder_count = 4;
  cfg.relative_reputation_threshold = false;
  cfg.simulation_cycles = 3;
  cfg.query_cycles_per_cycle = 5;
  sim::Simulator simulator(cfg, sim::make_paper_eigentrust_factory(),
                           nullptr, 7);
  EXPECT_NO_THROW(simulator.run());
}

// --- hostile rating streams ---------------------------------------------------------

TEST(EdgeReputation, AllNegativeWorld) {
  reputation::PaperEigenTrust pet(5, {0});
  std::vector<Rating> ratings;
  for (NodeId i = 0; i < 5; ++i) {
    for (NodeId j = 0; j < 5; ++j) {
      if (i != j) ratings.push_back(make(i, j, -1.0));
    }
  }
  pet.update(ratings);
  for (NodeId v = 0; v < 5; ++v) EXPECT_DOUBLE_EQ(pet.reputation(v), 0.0);
}

TEST(EdgeReputation, ZeroValueRatingsAreInert) {
  reputation::EbayReputation ebay(3);
  std::vector<Rating> ratings(50, make(0, 1, 0.0));
  ebay.update(ratings);
  EXPECT_DOUBLE_EQ(ebay.raw_score(1), 0.0);
}

TEST(EdgeReputation, ExtremeValuesStayFinite) {
  reputation::PaperEigenTrust pet(3, {0});
  std::vector<Rating> ratings{make(0, 1, 1e100), make(0, 2, -1e100)};
  pet.update(ratings);
  for (double r : pet.reputations()) {
    EXPECT_TRUE(std::isfinite(r));
    EXPECT_GE(r, 0.0);
  }
}

TEST(EdgeReputation, EigenTrustSelfRatingsOnly) {
  reputation::EigenTrust et(4, {0});
  std::vector<Rating> ratings;
  for (NodeId v = 0; v < 4; ++v) {
    for (int k = 0; k < 10; ++k) ratings.push_back(make(v, v, 1.0));
  }
  et.update(ratings);
  // All ignored: global trust stays the teleport distribution.
  EXPECT_DOUBLE_EQ(et.reputation(0), 1.0);
}

// --- plugin under pathological social state ------------------------------------------

TEST(EdgePlugin, EmptySocialGraphStillRuns) {
  graph::SocialGraph g(10);  // no relationships, no interactions
  core::InterestProfiles p(10, 4);
  core::SocialTrustPlugin plugin(
      std::make_unique<reputation::EbayReputation>(10), g, p);
  std::vector<Rating> flood;
  for (int k = 0; k < 200; ++k) flood.push_back(make(1, 2, 1.0));
  plugin.update(flood);
  // Closeness and similarity are all zero; the pair is still flagged by
  // frequency + B1/B3 and attenuated or passed depending on the Gaussian
  // degenerate-width rule — either way, no crash and sane output.
  EXPECT_GE(plugin.reputation(2), 0.0);
  EXPECT_LE(plugin.reputation(2), 1.0);
}

TEST(EdgePlugin, RaterWithSingleRateeUsesSystemFallback) {
  graph::SocialGraph g(5);
  core::InterestProfiles p(5, 3);
  g.add_relationship(0, 1, graph::Relationship::kKinship);
  for (int k = 0; k < 50; ++k) g.record_interaction(0, 1);
  core::SocialTrustPlugin plugin(
      std::make_unique<reputation::EbayReputation>(5), g, p);
  std::vector<Rating> ratings;
  for (int k = 0; k < 50; ++k) ratings.push_back(make(0, 1, 1.0));
  ratings.push_back(make(2, 3, 1.0));
  EXPECT_NO_THROW(plugin.update(ratings));
}

TEST(EdgePlugin, AlternatingSignPairCountsBothWays) {
  graph::SocialGraph g(5);
  core::InterestProfiles p(5, 3);
  core::SocialTrustPlugin plugin(
      std::make_unique<reputation::EbayReputation>(5), g, p);
  std::vector<Rating> ratings;
  for (int k = 0; k < 30; ++k) {
    ratings.push_back(make(0, 1, 1.0));
    ratings.push_back(make(0, 1, -1.0));
  }
  plugin.update(ratings);
  EXPECT_EQ(plugin.last_report().pairs_total, 1u);
}

// --- experiment harness edge cases ----------------------------------------------------

TEST(EdgeExperiment, OneRunHasZeroCi) {
  sim::ExperimentConfig config;
  config.sim.node_count = 30;
  config.sim.pretrusted_count = 2;
  config.sim.colluder_count = 4;
  config.sim.simulation_cycles = 2;
  config.sim.query_cycles_per_cycle = 4;
  config.runs = 1;
  auto agg = run_experiment(config, sim::make_paper_eigentrust_factory(),
                            sim::StrategyFactory{});
  for (double ci : agg.ci_final_reputation) EXPECT_DOUBLE_EQ(ci, 0.0);
}

TEST(EdgeExperiment, StrategyFactoryReturningNullMeansNoCollusion) {
  sim::ExperimentConfig config;
  config.sim.node_count = 30;
  config.sim.pretrusted_count = 2;
  config.sim.colluder_count = 4;
  config.sim.simulation_cycles = 2;
  config.sim.query_cycles_per_cycle = 4;
  config.runs = 1;
  sim::StrategyFactory null_factory = [] {
    return std::unique_ptr<sim::CollusionStrategy>{};
  };
  auto agg = run_experiment(config, sim::make_paper_eigentrust_factory(),
                            null_factory);
  EXPECT_EQ(agg.per_run[0].fake_ratings, 0u);
}

// --- parameterised robustness sweep ----------------------------------------------------

struct ExtremeCase {
  std::size_t nodes;
  std::size_t pretrusted;
  std::size_t colluders;
  std::size_t interests;
};

class ExtremeConfig : public ::testing::TestWithParam<ExtremeCase> {};

TEST_P(ExtremeConfig, SimulationCompletesAndConserves) {
  const auto& c = GetParam();
  sim::SimConfig cfg;
  cfg.node_count = c.nodes;
  cfg.pretrusted_count = c.pretrusted;
  cfg.colluder_count = c.colluders;
  cfg.interest_count = c.interests;
  cfg.max_interests = std::min<std::size_t>(10, c.interests);
  cfg.simulation_cycles = 2;
  cfg.query_cycles_per_cycle = 4;
  std::unique_ptr<sim::CollusionStrategy> strategy;
  if (c.colluders >= 2) {
    strategy = std::make_unique<collusion::PairwiseCollusion>();
  }
  sim::Simulator simulator(cfg, sim::make_paper_eigentrust_factory(),
                           std::move(strategy), 11);
  auto result = simulator.run();
  EXPECT_EQ(result.total_requests,
            result.authentic_services + result.inauthentic_services);
  double sum = 0.0;
  for (double r : result.final_reputation) {
    EXPECT_GE(r, 0.0);
    sum += r;
  }
  EXPECT_LE(sum, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Extremes, ExtremeConfig,
    ::testing::Values(ExtremeCase{3, 1, 2, 2}, ExtremeCase{10, 9, 0, 3},
                      ExtremeCase{50, 1, 48, 2}, ExtremeCase{64, 0, 2, 20},
                      ExtremeCase{100, 10, 30, 40}));

}  // namespace
}  // namespace st
