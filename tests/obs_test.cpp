// st::obs unit suite: metric primitive correctness (counters, gauges,
// fixed-bucket histograms, scoped timers), registry handle stability,
// interval snapshots, JSONL well-formedness (every emitted line must
// parse as a JSON object), the disabled-mode no-op contract (no file, no
// snapshots, values frozen at zero), and a concurrent-increment test that
// the TSan CI job runs to certify the lock-free mutation paths.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"

namespace st::obs {
namespace {

// --- minimal JSON validator -------------------------------------------------
// Just enough of RFC 8259 to certify the sink's output: objects, arrays,
// strings with escapes, numbers, true/false/null. Returns true iff the
// whole input is exactly one valid JSON value.

class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  bool parse() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return p_ == end_;
  }

 private:
  void skip_ws() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }
  bool literal(const char* word) {
    for (; *word; ++word, ++p_) {
      if (p_ == end_ || *p_ != *word) return false;
    }
    return true;
  }
  bool value() {
    if (p_ == end_) return false;
    switch (*p_) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }
  bool object() {
    ++p_;  // '{'
    skip_ws();
    if (p_ != end_ && *p_ == '}') return ++p_, true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (p_ == end_ || *p_ != ':') return false;
      ++p_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (p_ == end_) return false;
      if (*p_ == '}') return ++p_, true;
      if (*p_ != ',') return false;
      ++p_;
    }
  }
  bool array() {
    ++p_;  // '['
    skip_ws();
    if (p_ != end_ && *p_ == ']') return ++p_, true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (p_ == end_) return false;
      if (*p_ == ']') return ++p_, true;
      if (*p_ != ',') return false;
      ++p_;
    }
  }
  bool string() {
    if (p_ == end_ || *p_ != '"') return false;
    ++p_;
    while (p_ != end_ && *p_ != '"') {
      if (static_cast<unsigned char>(*p_) < 0x20) return false;  // raw ctrl
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) return false;
        switch (*p_) {
          case '"': case '\\': case '/': case 'b': case 'f':
          case 'n': case 'r': case 't':
            ++p_;
            break;
          case 'u': {
            ++p_;
            for (int k = 0; k < 4; ++k, ++p_) {
              if (p_ == end_ || !std::isxdigit(
                                    static_cast<unsigned char>(*p_))) {
                return false;
              }
            }
            break;
          }
          default:
            return false;
        }
      } else {
        ++p_;
      }
    }
    if (p_ == end_) return false;
    ++p_;  // closing quote
    return true;
  }
  bool number() {
    const char* start = p_;
    if (p_ != end_ && *p_ == '-') ++p_;
    if (p_ == end_ || !std::isdigit(static_cast<unsigned char>(*p_))) {
      return false;
    }
    while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    if (p_ != end_ && *p_ == '.') {
      ++p_;
      if (p_ == end_ || !std::isdigit(static_cast<unsigned char>(*p_))) {
        return false;
      }
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) {
        ++p_;
      }
    }
    if (p_ != end_ && (*p_ == 'e' || *p_ == 'E')) {
      ++p_;
      if (p_ != end_ && (*p_ == '+' || *p_ == '-')) ++p_;
      if (p_ == end_ || !std::isdigit(static_cast<unsigned char>(*p_))) {
        return false;
      }
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) {
        ++p_;
      }
    }
    return p_ != start;
  }

  const char* p_;
  const char* end_;
};

bool valid_json(const std::string& line) { return JsonCursor(line).parse(); }

// --- fixture ----------------------------------------------------------------

/// Every test starts enabled (in-memory only) and leaves the process-wide
/// obs instance disabled, whatever happened inside.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StObsConfig cfg;
    cfg.enabled = true;
    Obs::instance().configure(cfg);
  }
  void TearDown() override { Obs::instance().configure({}); }

  std::string temp_path(const std::string& name) {
    return (std::filesystem::path(::testing::TempDir()) / name).string();
  }
};

TEST_F(ObsTest, CounterAccumulates) {
  Counter& c = Obs::instance().registry().counter("test.counter_acc");
  EXPECT_EQ(c.value(), 0U);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42U);
}

TEST_F(ObsTest, GaugeSetAndDelta) {
  Gauge& g = Obs::instance().registry().gauge("test.gauge");
  g.set(10);
  g.add(-3);
  g.add(5);
  EXPECT_EQ(g.value(), 12);
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
}

TEST_F(ObsTest, RegistryReturnsSameInstanceForSameName) {
  Registry& r = Obs::instance().registry();
  EXPECT_EQ(&r.counter("test.same"), &r.counter("test.same"));
  EXPECT_EQ(&r.gauge("test.same"), &r.gauge("test.same"));
  EXPECT_EQ(&r.histogram("test.same"), &r.histogram("test.same"));
  EXPECT_NE(&r.counter("test.same"), &r.counter("test.other"));
}

TEST_F(ObsTest, HistogramBucketBoundariesAreInclusiveUpper) {
  Histogram& h = Obs::instance().registry().histogram(
      "test.hist_bounds", {1.0, 10.0, 100.0});
  // One value per region: below first bound, exactly on bounds (upper is
  // inclusive), between bounds, and beyond the last bound (+inf bucket).
  for (double v : {0.5, 1.0, 5.0, 10.0, 50.0, 1000.0}) h.record(v);

  HistogramValue snap = h.value();
  EXPECT_EQ(snap.count, 6U);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 5.0 + 10.0 + 50.0 + 1000.0);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 1000.0);
  ASSERT_EQ(snap.buckets.size(), 4U);  // three bounds + the +inf bucket
  EXPECT_DOUBLE_EQ(snap.buckets[0].upper, 1.0);
  EXPECT_EQ(snap.buckets[0].count, 2U);  // 0.5, 1.0
  EXPECT_EQ(snap.buckets[1].count, 2U);  // 5.0, 10.0
  EXPECT_EQ(snap.buckets[2].count, 1U);  // 50.0
  EXPECT_EQ(snap.buckets[3].count, 1U);  // 1000.0
  EXPECT_TRUE(std::isinf(snap.buckets[3].upper));
}

TEST_F(ObsTest, HistogramDefaultLatencyBuckets) {
  Histogram& h = Obs::instance().registry().histogram("test.hist_default");
  EXPECT_GT(h.upper_bounds().size(), 10U);
  for (std::size_t i = 1; i < h.upper_bounds().size(); ++i) {
    EXPECT_LT(h.upper_bounds()[i - 1], h.upper_bounds()[i]) << i;
  }
}

TEST_F(ObsTest, ScopedTimerRecordsOneSample) {
  Histogram& h = Obs::instance().registry().histogram("test.hist_timer");
  {
    ScopedTimer t(h);
  }
  EXPECT_EQ(h.count(), 1U);

  ScopedTimer t2(h);
  double us = t2.stop();
  EXPECT_GE(us, 0.0);
  EXPECT_EQ(t2.stop(), 0.0);  // idempotent: no second sample
  EXPECT_EQ(h.count(), 2U);
}

TEST_F(ObsTest, EmitIntervalRetainsOrderedSnapshots) {
  Obs& obs = Obs::instance();
  Counter& c = obs.registry().counter("test.emit_counter");
  c.add(3);
  const ExtraField extras[] = {{"pairs", 7.0}, {"weight", 0.5}};
  EXPECT_EQ(obs.emit_interval("test.scope", "labelled", extras), 1U);
  c.add(2);
  EXPECT_EQ(obs.emit_interval("test.scope"), 2U);

  auto snaps = obs.snapshots();
  ASSERT_EQ(snaps.size(), 2U);
  EXPECT_EQ(snaps[0].sequence, 1U);
  EXPECT_EQ(snaps[0].scope, "test.scope");
  EXPECT_EQ(snaps[0].label, "labelled");
  ASSERT_EQ(snaps[0].extras.size(), 2U);
  EXPECT_EQ(snaps[0].extras[0].first, "pairs");
  EXPECT_DOUBLE_EQ(snaps[0].extras[0].second, 7.0);

  auto counter_value = [](const Snapshot& s, const std::string& name) {
    for (const auto& [n, v] : s.counters) {
      if (n == name) return v;
    }
    return std::uint64_t{0};
  };
  EXPECT_EQ(counter_value(snaps[0], "test.emit_counter"), 3U);
  EXPECT_EQ(counter_value(snaps[1], "test.emit_counter"), 5U);

  // Snapshot metric names arrive sorted (registry iterates a std::map).
  for (std::size_t i = 1; i < snaps[1].counters.size(); ++i) {
    EXPECT_LT(snaps[1].counters[i - 1].first, snaps[1].counters[i].first);
  }
}

TEST_F(ObsTest, JsonlSinkWritesOneValidObjectPerLine) {
  const std::string path = temp_path("obs_test_events.jsonl");
  std::remove(path.c_str());
  StObsConfig cfg;
  cfg.enabled = true;
  cfg.jsonl_path = path;
  Obs::instance().configure(cfg);

  Registry& r = Obs::instance().registry();
  r.counter("test.jsonl_counter").add(11);
  r.gauge("test.jsonl_gauge").set(-4);
  Histogram& h = r.histogram("test.jsonl_hist", {1.0, 1000.0});
  h.record(0.25);
  h.record(5000.0);  // lands in the +inf bucket -> serialised as null
  const ExtraField extras[] = {{"cycle", 3.0}};
  Obs::instance().emit_interval("test.jsonl", "quote\"and\\slash", extras);
  Obs::instance().emit_interval("test.jsonl");
  Obs::instance().flush();

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_TRUE(valid_json(line)) << "line " << lines << ": " << line;
    EXPECT_EQ(line.front(), '{');
  }
  EXPECT_EQ(lines, 2U);

  // Spot-check the schema fields the docs promise.
  std::ifstream reread(path);
  std::getline(reread, line);
  EXPECT_NE(line.find("\"seq\":1"), std::string::npos);
  EXPECT_NE(line.find("\"scope\":\"test.jsonl\""), std::string::npos);
  EXPECT_NE(line.find("\"cycle\":3"), std::string::npos);
  EXPECT_NE(line.find("\"test.jsonl_counter\":11"), std::string::npos);
  EXPECT_NE(line.find("\"test.jsonl_gauge\":-4"), std::string::npos);
  EXPECT_NE(line.find("\"test.jsonl_hist\""), std::string::npos);
  EXPECT_NE(line.find("[null,1]"), std::string::npos);  // +inf bucket

  std::remove(path.c_str());
}

TEST_F(ObsTest, DisabledModeIsATrueNoOp) {
  const std::string path = temp_path("obs_test_disabled.jsonl");
  std::remove(path.c_str());
  StObsConfig cfg;
  cfg.enabled = false;
  cfg.jsonl_path = path;  // must NOT be created while disabled
  Obs::instance().configure(cfg);
  EXPECT_FALSE(enabled());

  Registry& r = Obs::instance().registry();
  Counter& c = r.counter("test.disabled_counter");
  Gauge& g = r.gauge("test.disabled_gauge");
  Histogram& h = r.histogram("test.disabled_hist");
  c.add(100);
  g.set(5);
  { ScopedTimer t(h); }
  h.record(1.0);
  EXPECT_EQ(c.value(), 0U);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0U);

  EXPECT_EQ(Obs::instance().emit_interval("test.disabled"), 0U);
  EXPECT_EQ(Obs::instance().snapshot_count(), 0U);
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST_F(ObsTest, ReconfigureResetsValuesAndSequence) {
  Obs& obs = Obs::instance();
  Counter& c = obs.registry().counter("test.reset_counter");
  c.add(9);
  obs.emit_interval("test.reset");
  ASSERT_EQ(obs.snapshot_count(), 1U);

  StObsConfig cfg;
  cfg.enabled = true;
  obs.configure(cfg);  // handles survive, values and snapshots do not
  EXPECT_EQ(c.value(), 0U);
  EXPECT_EQ(obs.snapshot_count(), 0U);
  EXPECT_EQ(obs.emit_interval("test.reset"), 1U);  // sequence restarts
}

TEST_F(ObsTest, ConcurrentIncrementsAreExact) {
  // The TSan CI job runs this test to certify the relaxed-atomic mutation
  // paths: N threads hammer one counter, one gauge, and one histogram.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  Registry& r = Obs::instance().registry();
  Counter& c = r.counter("test.mt_counter");
  Gauge& g = r.gauge("test.mt_gauge");
  Histogram& h = r.histogram("test.mt_hist", {0.5});

  // st-lint: allow(CON-1 deliberately raw threads - certifies the atomic paths under unpooled contention)
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add(1);
        g.add(t % 2 == 0 ? 1 : -1);
        h.record(static_cast<double>(i % 2));
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(g.value(), 0);
  HistogramValue snap = h.value();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  ASSERT_EQ(snap.buckets.size(), 2U);
  EXPECT_EQ(snap.buckets[0].count, snap.buckets[1].count);  // half 0s, half 1s
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 1.0);
  EXPECT_DOUBLE_EQ(snap.sum,
                   static_cast<double>(kThreads) * kPerThread / 2.0);
}

}  // namespace
}  // namespace st::obs
