// Integration tests: end-to-end simulations at reduced scale asserting the
// paper's qualitative orderings — the same claims the bench binaries
// reproduce at full scale (see EXPERIMENTS.md for the mapping).

#include <gtest/gtest.h>

#include "collusion/models.hpp"
#include "sim/experiment.hpp"
#include "sim/factories.hpp"
#include "stats/summary.hpp"

namespace st {
namespace {

using collusion::CollusionOptions;

sim::ExperimentConfig paper_small(double colluder_b) {
  sim::ExperimentConfig config;
  config.sim.node_count = 120;
  config.sim.pretrusted_count = 6;
  config.sim.colluder_count = 18;
  config.sim.simulation_cycles = 25;
  config.sim.query_cycles_per_cycle = 15;
  config.sim.colluder_authentic = colluder_b;
  config.runs = 2;
  config.base_seed = 424242;
  return config;
}

sim::StrategyFactory pcm(CollusionOptions options = {}) {
  return [options] {
    return std::make_unique<collusion::PairwiseCollusion>(options);
  };
}
sim::StrategyFactory mmm(CollusionOptions options = {}) {
  return [options] {
    return std::make_unique<collusion::MutualMultiNodeCollusion>(options);
  };
}

double boosted_mean(const sim::AggregateResult& agg) {
  stats::Accumulator acc;
  for (const auto& run : agg.per_run) acc.add(run.boosted_final_mean);
  return acc.mean();
}

// Fig. 7: without collusion, malicious (low-B) nodes end with lower
// reputation than normal nodes under both baselines.
TEST(PaperShapes, Fig7MaliciousLowWithoutCollusion) {
  auto config = paper_small(0.3);  // "malicious" low-B nodes, no strategy
  for (const auto& factory :
       {sim::make_paper_eigentrust_factory(), sim::make_ebay_factory()}) {
    auto agg = run_experiment(config, factory, sim::StrategyFactory{});
    EXPECT_LT(agg.colluder_mean.mean(), agg.normal_mean.mean());
    EXPECT_GT(agg.pretrusted_mean.mean(), agg.normal_mean.mean());
  }
}

// Fig. 8(a): PCM with B=0.6 defeats the EigenTrust baseline — colluders
// rise far above normal nodes.
TEST(PaperShapes, Fig8EigenTrustVulnerableToPcmB06) {
  auto agg = run_experiment(paper_small(0.6),
                            sim::make_paper_eigentrust_factory(), pcm());
  EXPECT_GT(agg.colluder_mean.mean(), 3.0 * agg.normal_mean.mean());
}

// Figs. 8(c): adding SocialTrust collapses the same attack.
TEST(PaperShapes, Fig8SocialTrustSuppressesPcmB06) {
  auto config = paper_small(0.6);
  auto plain = run_experiment(config, sim::make_paper_eigentrust_factory(),
                              pcm());
  auto guarded = run_experiment(
      config,
      sim::make_socialtrust_factory(sim::make_paper_eigentrust_factory()),
      pcm());
  EXPECT_LT(guarded.colluder_mean.mean(),
            0.5 * plain.colluder_mean.mean());
  // Suppressed colluders also stop attracting requests (Table 1's story).
  EXPECT_LT(guarded.colluder_share.mean(), plain.colluder_share.mean());
}

// Fig. 9(a): at B=0.2 the EigenTrust baseline already keeps PCM colluders
// below normal nodes.
TEST(PaperShapes, Fig9EigenTrustCountersPcmB02) {
  auto agg = run_experiment(paper_small(0.2),
                            sim::make_paper_eigentrust_factory(), pcm());
  EXPECT_LT(agg.colluder_mean.mean(), agg.normal_mean.mean());
}

// Fig. 10: compromised pretrusted nodes re-enable the attack at B=0.2,
// and SocialTrust recovers.
TEST(PaperShapes, Fig10CompromisedPretrusted) {
  CollusionOptions options;
  options.compromised_pretrusted = 4;
  auto config = paper_small(0.2);
  auto plain = run_experiment(config, sim::make_paper_eigentrust_factory(),
                              pcm(options));
  EXPECT_GT(plain.colluder_mean.mean(), 2.0 * plain.normal_mean.mean());
  auto guarded = run_experiment(
      config,
      sim::make_socialtrust_factory(sim::make_paper_eigentrust_factory()),
      pcm(options));
  EXPECT_LT(guarded.colluder_mean.mean(),
            0.35 * plain.colluder_mean.mean());
}

// Figs. 13/14: MMM boosts the boosted nodes under the baseline at both B
// values; SocialTrust suppresses.
TEST(PaperShapes, Fig13MmmBoostsAndSocialTrustSuppresses) {
  auto config = paper_small(0.6);
  auto plain = run_experiment(config, sim::make_paper_eigentrust_factory(),
                              mmm());
  auto guarded = run_experiment(
      config,
      sim::make_socialtrust_factory(sim::make_paper_eigentrust_factory()),
      mmm());
  EXPECT_GT(boosted_mean(plain), 3.0 * plain.normal_mean.mean());
  EXPECT_LT(boosted_mean(guarded), 0.5 * boosted_mean(plain));
}

// Figs. 16-18: falsified social information does not rescue the colluders
// against SocialTrust.
TEST(PaperShapes, Fig16FalsifiedInfoStillSuppressed) {
  CollusionOptions honest_info;
  CollusionOptions falsified;
  falsified.falsify_social_info = true;
  auto config = paper_small(0.6);
  auto plain = run_experiment(config, sim::make_paper_eigentrust_factory(),
                              pcm(falsified));
  auto guarded = run_experiment(
      config,
      sim::make_socialtrust_factory(sim::make_paper_eigentrust_factory()),
      pcm(falsified));
  EXPECT_LT(guarded.colluder_mean.mean(),
            0.35 * plain.colluder_mean.mean());
}

// Fig. 19's premise: eBay needs (far) more cycles than EigenTrust-based
// systems to push colluders under the epsilon.
TEST(PaperShapes, Fig19EbayConvergesSlower) {
  auto config = paper_small(0.2);
  auto et = run_experiment(config, sim::make_paper_eigentrust_factory(),
                           mmm());
  auto ebay = run_experiment(config, sim::make_ebay_factory(), mmm());
  double et_median = stats::percentile(et.pooled_convergence_cycles, 50);
  double ebay_median = stats::percentile(ebay.pooled_convergence_cycles, 50);
  EXPECT_LE(et_median, ebay_median);
}

}  // namespace
}  // namespace st
