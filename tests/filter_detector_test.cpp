// Unit tests for the Gaussian reputation filter (Eqs. 5-9) and the B1-B4
// suspicious-behaviour detector (Section 4.3 threshold logic).

#include <gtest/gtest.h>

#include <cmath>

#include "core/detector.hpp"
#include "core/gaussian_filter.hpp"

namespace st::core {
namespace {

CoefficientStats stats_of(double mean, double min, double max,
                          double stddev) {
  CoefficientStats s;
  s.mean = mean;
  s.min = min;
  s.max = max;
  s.stddev = stddev;
  return s;
}

// --- Gaussian filter -----------------------------------------------------------

TEST(Gaussian, PeakAtMeanEqualsAlpha) {
  auto s = stats_of(0.5, 0.0, 1.0, 0.2);
  EXPECT_DOUBLE_EQ(gaussian_weight(0.5, s, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(gaussian_weight(0.5, s, 0.7), 0.7);
}

TEST(Gaussian, HandComputedRangeWidth) {
  // Eq. (6): exp(-(x - b)^2 / (2 |max-min|^2)).
  auto s = stats_of(0.4, 0.0, 1.0, 0.25);
  double x = 0.9;
  double expected = std::exp(-(0.5 * 0.5) / (2.0 * 1.0 * 1.0));
  EXPECT_NEAR(gaussian_weight(x, s, 1.0, GaussianWidth::kRange), expected,
              1e-12);
}

TEST(Gaussian, HandComputedStdDevWidth) {
  auto s = stats_of(0.4, 0.0, 1.0, 0.25);
  double x = 0.9;
  double expected = std::exp(-(0.5 * 0.5) / (2.0 * 0.25 * 0.25));
  EXPECT_NEAR(gaussian_weight(x, s, 1.0, GaussianWidth::kStdDev), expected,
              1e-12);
}

TEST(Gaussian, SymmetricAroundMean) {
  auto s = stats_of(0.5, 0.0, 1.0, 0.1);
  EXPECT_NEAR(gaussian_weight(0.3, s, 1.0), gaussian_weight(0.7, s, 1.0),
              1e-12);
}

TEST(Gaussian, MonotoneInDeviation) {
  auto s = stats_of(0.0, -1.0, 1.0, 0.3);
  double last = 2.0;
  for (double x : {0.0, 0.2, 0.5, 1.0, 2.0, 5.0}) {
    double w = gaussian_weight(x, s, 1.0);
    EXPECT_LT(w, last);
    last = w;
  }
}

TEST(Gaussian, DegenerateWidthGivesHalfExponent) {
  auto s = stats_of(0.5, 0.5, 0.5, 0.0);
  EXPECT_DOUBLE_EQ(gaussian_weight(0.5, s, 1.0), 1.0);
  EXPECT_NEAR(gaussian_weight(0.9, s, 1.0), std::exp(-0.5), 1e-12);
  EXPECT_NEAR(gaussian_weight(100.0, s, 1.0), std::exp(-0.5), 1e-12);
}

TEST(Gaussian, TwoDimensionalExponentsAdd) {
  auto c = stats_of(0.2, 0.0, 1.0, 0.1);
  auto s = stats_of(0.5, 0.0, 1.0, 0.2);
  double w2 = gaussian_weight2(0.5, c, 0.9, s, 1.0);
  double expected = gaussian_weight(0.5, c, 1.0) *
                    gaussian_weight(0.9, s, 1.0);
  EXPECT_NEAR(w2, expected, 1e-12);
}

TEST(Gaussian, ComponentDispatch) {
  auto c = stats_of(0.2, 0.0, 1.0, 0.1);
  auto s = stats_of(0.5, 0.0, 1.0, 0.2);
  double x_c = 0.6, x_s = 0.9;
  EXPECT_DOUBLE_EQ(
      adjustment_weight(AdjustmentComponents::kClosenessOnly, x_c, c, x_s, s,
                        1.0),
      gaussian_weight(x_c, c, 1.0));
  EXPECT_DOUBLE_EQ(
      adjustment_weight(AdjustmentComponents::kSimilarityOnly, x_c, c, x_s,
                        s, 1.0),
      gaussian_weight(x_s, s, 1.0));
  EXPECT_DOUBLE_EQ(
      adjustment_weight(AdjustmentComponents::kCombined, x_c, c, x_s, s,
                        1.0),
      gaussian_weight2(x_c, c, x_s, s, 1.0));
}

TEST(Gaussian, ExtremeOutlierEssentiallyZeroUnderStdDev) {
  // The colluder signature: closeness 20+ sigma from the norm.
  auto s = stats_of(0.01, 0.0, 0.1, 0.02);
  EXPECT_LT(gaussian_weight(1.0, s, 1.0, GaussianWidth::kStdDev), 1e-100);
  // ...while the literal range width saturates (the weakness DESIGN.md
  // documents).
  EXPECT_GT(gaussian_weight(1.0, s, 1.0, GaussianWidth::kRange), 1e-22);
}

class GaussianAlphaProperty : public ::testing::TestWithParam<double> {};

TEST_P(GaussianAlphaProperty, WeightBoundedByAlpha) {
  auto s = stats_of(0.3, 0.0, 1.0, 0.15);
  for (double x = -2.0; x <= 2.0; x += 0.1) {
    double w = gaussian_weight(x, s, GetParam());
    EXPECT_GE(w, 0.0);
    EXPECT_LE(w, GetParam() + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, GaussianAlphaProperty,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0));

// --- detector --------------------------------------------------------------------

SocialTrustConfig detector_config() {
  SocialTrustConfig cfg;
  cfg.theta = 2.0;
  cfg.positive_count_floor = 3.0;
  cfg.negative_count_floor = 3.0;
  cfg.low_reputation = 0.01;
  cfg.closeness_high_factor = 2.0;
  cfg.closeness_low_factor = 0.5;
  cfg.similarity_high = 0.7;
  cfg.similarity_low = 0.2;
  return cfg;
}

PairEvidence normal_pair() {
  PairEvidence e;
  e.positive_count = 2.0;
  e.negative_count = 0.0;
  e.closeness = 0.1;
  e.similarity = 0.4;
  e.ratee_reputation = 0.05;
  e.rater_closeness = stats_of(0.1, 0.0, 0.3, 0.05);
  return e;
}

TEST(Detector, ThresholdIsMaxOfFloorAndThetaF) {
  BehaviorDetector d(detector_config());
  EXPECT_DOUBLE_EQ(d.positive_threshold(0.5), 3.0);   // floor wins
  EXPECT_DOUBLE_EQ(d.positive_threshold(10.0), 20.0); // theta*F wins
  EXPECT_DOUBLE_EQ(d.negative_threshold(4.0), 8.0);
}

TEST(Detector, QuietPairIsClean) {
  BehaviorDetector d(detector_config());
  EXPECT_EQ(d.classify(normal_pair(), 1.0), Behavior::kNone);
}

TEST(Detector, HighFrequencyAloneIsNotSuspicious) {
  // Frequent ratings between socially-normal, similar nodes: no flags.
  BehaviorDetector d(detector_config());
  PairEvidence e = normal_pair();
  e.positive_count = 50.0;
  EXPECT_EQ(d.classify(e, 1.0), Behavior::kNone);
}

TEST(Detector, B1LongDistanceHighFrequency) {
  BehaviorDetector d(detector_config());
  PairEvidence e = normal_pair();
  e.positive_count = 50.0;
  e.closeness = 0.01;  // < 0.5 * mean(0.1)
  Behavior b = d.classify(e, 1.0);
  EXPECT_TRUE(any(b & Behavior::kB1));
}

TEST(Detector, B2CloseLowReputedTarget) {
  BehaviorDetector d(detector_config());
  PairEvidence e = normal_pair();
  e.positive_count = 50.0;
  e.closeness = 0.5;          // > 2 * mean(0.1)
  e.ratee_reputation = 0.001; // below T_R
  Behavior b = d.classify(e, 1.0);
  EXPECT_TRUE(any(b & Behavior::kB2));
}

TEST(Detector, B2RequiresLowReputation) {
  BehaviorDetector d(detector_config());
  PairEvidence e = normal_pair();
  e.positive_count = 50.0;
  e.closeness = 0.5;
  e.ratee_reputation = 0.05;  // reputable target: fine
  Behavior b = d.classify(e, 1.0);
  EXPECT_FALSE(any(b & Behavior::kB2));
}

TEST(Detector, B3FewCommonInterests) {
  BehaviorDetector d(detector_config());
  PairEvidence e = normal_pair();
  e.positive_count = 50.0;
  e.similarity = 0.05;  // < similarity_low
  Behavior b = d.classify(e, 1.0);
  EXPECT_TRUE(any(b & Behavior::kB3));
}

TEST(Detector, B4CompetitorBadMouthing) {
  BehaviorDetector d(detector_config());
  PairEvidence e = normal_pair();
  e.negative_count = 50.0;
  e.similarity = 0.9;  // > similarity_high
  Behavior b = d.classify(e, 1.0);
  EXPECT_TRUE(any(b & Behavior::kB4));
}

TEST(Detector, B4RequiresHighSimilarity) {
  BehaviorDetector d(detector_config());
  PairEvidence e = normal_pair();
  e.negative_count = 50.0;
  e.similarity = 0.4;
  EXPECT_EQ(d.classify(e, 1.0), Behavior::kNone);
}

TEST(Detector, NegativeFrequencyDoesNotTriggerPositiveBehaviors) {
  BehaviorDetector d(detector_config());
  PairEvidence e = normal_pair();
  e.negative_count = 50.0;
  e.closeness = 0.001;   // would be B1 if ratings were positive
  e.similarity = 0.05;   // would be B3
  Behavior b = d.classify(e, 1.0);
  EXPECT_FALSE(any(b & Behavior::kB1));
  EXPECT_FALSE(any(b & Behavior::kB3));
}

TEST(Detector, MultipleBehaviorsCombine) {
  BehaviorDetector d(detector_config());
  PairEvidence e = normal_pair();
  e.positive_count = 50.0;
  e.negative_count = 50.0;
  e.closeness = 0.5;
  e.ratee_reputation = 0.001;
  e.similarity = 0.9;
  Behavior b = d.classify(e, 1.0);
  EXPECT_TRUE(any(b & Behavior::kB2));
  EXPECT_TRUE(any(b & Behavior::kB4));
}

TEST(Detector, FrequencyGateUsesSystemAverage) {
  // The same pair is suspicious in a quiet system and normal in a busy one.
  BehaviorDetector d(detector_config());
  PairEvidence e = normal_pair();
  e.positive_count = 10.0;
  e.similarity = 0.05;
  EXPECT_TRUE(any(d.classify(e, 1.0)));    // threshold max(3, 2) = 3
  EXPECT_FALSE(any(d.classify(e, 20.0)));  // threshold 40
}

class DetectorThetaProperty : public ::testing::TestWithParam<double> {};

TEST_P(DetectorThetaProperty, ExactThresholdNotFlagged) {
  SocialTrustConfig cfg = detector_config();
  cfg.theta = GetParam();
  BehaviorDetector d(cfg);
  PairEvidence e = normal_pair();
  e.similarity = 0.0;
  double f = 5.0;
  e.positive_count = d.positive_threshold(f);  // exactly at threshold: not >
  EXPECT_EQ(d.classify(e, f), Behavior::kNone);
  e.positive_count += 1.0;
  EXPECT_TRUE(any(d.classify(e, f)));
}

INSTANTIATE_TEST_SUITE_P(Thetas, DetectorThetaProperty,
                         ::testing::Values(1.5, 2.0, 3.0, 5.0));

}  // namespace
}  // namespace st::core
