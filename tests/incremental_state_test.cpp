// Incremental social-state correctness suite (DESIGN.md §13).
//
// The SocialStateCache persists across update intervals and revalidates
// entries against per-node revision counters; the contract is that a warm
// cache is a pure performance optimisation. Three layers of evidence:
//   1. unit tests on the cache itself — entries hit while the witnessed
//      state holds, miss the moment it changes, and the witness kinds are
//      exactly as precise as DESIGN.md §13 claims (e.g. a friend-of-friend
//      entry survives interaction churn on the *ratee* but not on the
//      rater or a common friend);
//   2. a cold-vs-warm property test in the style of
//      parallel_update_test.cpp — full simulations where one plugin keeps
//      its cache across intervals and a second has it wiped before every
//      update() must produce bit-identical adjusted ratings, reports,
//      flagged pairs, and downstream reputations across collusion models,
//      seeds, and thread counts;
//   3. a whitewashing regression — forget_node must drop every cached
//      entry mentioning the discarded identity, and a warm plugin driven
//      across a whitewash event must stay bit-identical to a cold one;
//   4. a full-vs-dirty differential gate (DESIGN.md §14) — the dirty-pair
//      scheduler (UpdateSchedule::kDirtyPairs) run side by side with the
//      full-walk oracle over 4 collusion models × 3 seeds × threads
//      {1, 2, 4} × ≥20 intervals must produce bit-identical adjusted
//      ratings, flagged sets, AdjustmentReport fields and reputations at
//      EVERY interval, plus a direct-driven sparse-churn scenario where
//      most pairs genuinely carry forward (the simulator bumps every
//      active rater's revision per rating, so it exercises the all-dirty
//      extreme; the direct scenario exercises the carry path).

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "collusion/models.hpp"
#include "core/social_state_cache.hpp"
#include "core/socialtrust.hpp"
#include "graph/generators.hpp"
#include "reputation/paper_eigentrust.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"

namespace st {
namespace {

using core::ClosenessModel;
using core::InterestProfiles;
using core::SocialStateCache;
using core::SocialTrustPlugin;
using graph::Relationship;
using graph::SocialGraph;
using reputation::Rating;

/// Bit-level double equality: distinguishes +0/-0 and catches last-ulp
/// drift that EXPECT_DOUBLE_EQ's 4-ulp tolerance would wave through.
::testing::AssertionResult bits_equal(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " != " << b << " (bit patterns differ)";
}

/// Delta of the cache's cumulative stats around one operation.
struct StatsDelta {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t structure_hits = 0;
  std::uint64_t structure_misses = 0;
};

template <typename Fn>
StatsDelta stats_delta(SocialStateCache& cache, Fn&& fn) {
  const auto before = cache.stats();
  fn();
  const auto after = cache.stats();
  return StatsDelta{after.hits - before.hits, after.misses - before.misses,
                    after.invalidations - before.invalidations,
                    after.structure_hits - before.structure_hits,
                    after.structure_misses - before.structure_misses};
}

// --- 1. cache unit tests ----------------------------------------------------

TEST(SocialStateCacheTest, AdjacentEntryWitnessesOnlyTheRater) {
  SocialGraph g(4);
  g.add_relationship(0, 1, Relationship::kFriendship);
  g.record_interaction(0, 1, 3.0);
  g.record_interaction(0, 2, 1.0);
  g.record_interaction(1, 0, 2.0);
  ClosenessModel model;
  SocialStateCache cache;

  double v0 = 0.0;
  auto d = stats_delta(cache, [&] { v0 = cache.closeness(model, g, 0, 1); });
  EXPECT_EQ(d.misses, 1U);
  EXPECT_TRUE(bits_equal(v0, model.closeness(g, 0, 1)));

  d = stats_delta(cache, [&] { cache.closeness(model, g, 0, 1); });
  EXPECT_EQ(d.hits, 1U);
  EXPECT_EQ(d.misses, 0U);

  // The ratee's outgoing interactions are not part of Omega_c(0,1): the
  // entry must survive churn on node 1...
  g.record_interaction(1, 3, 5.0);
  d = stats_delta(cache, [&] { cache.closeness(model, g, 0, 1); });
  EXPECT_EQ(d.hits, 1U);

  // ...but any change to the rater's interaction row (even towards a third
  // node — it changes the Eq. 2 denominator) invalidates it.
  g.record_interaction(0, 3, 1.0);
  double v1 = 0.0;
  d = stats_delta(cache, [&] { v1 = cache.closeness(model, g, 0, 1); });
  EXPECT_EQ(d.misses, 1U);
  EXPECT_EQ(d.invalidations, 1U);
  EXPECT_TRUE(bits_equal(v1, model.closeness(g, 0, 1)));
}

TEST(SocialStateCacheTest, FofEntrySurvivesRateeInteractionChurn) {
  // 0 and 1 share the common friend 2 but are not adjacent.
  SocialGraph g(5);
  g.add_relationship(0, 2, Relationship::kFriendship);
  g.add_relationship(1, 2, Relationship::kColleague);
  g.record_interaction(0, 2, 2.0);
  g.record_interaction(2, 1, 4.0);
  g.record_interaction(2, 0, 1.0);
  ClosenessModel model;
  SocialStateCache cache;

  auto d = stats_delta(cache, [&] { cache.closeness(model, g, 0, 1); });
  EXPECT_EQ(d.misses, 1U);
  EXPECT_EQ(d.structure_misses, 1U);  // the common-friend set

  d = stats_delta(cache, [&] { cache.closeness(model, g, 0, 1); });
  EXPECT_EQ(d.hits, 1U);

  // j = 1 is witnessed structurally only: Eq. 3 reads adjacent_closeness
  // (0,k) and (k,1), never 1's outgoing interactions.
  g.record_interaction(1, 4, 7.0);
  d = stats_delta(cache, [&] { cache.closeness(model, g, 0, 1); });
  EXPECT_EQ(d.hits, 1U);

  // A common friend's interactions feed the Eq. 3 terms: invalidate.
  g.record_interaction(2, 4, 1.0);
  double fresh = 0.0;
  d = stats_delta(cache, [&] { fresh = cache.closeness(model, g, 0, 1); });
  EXPECT_EQ(d.misses, 1U);
  // The common-friend *set* is untouched by interaction churn, so the
  // recompute reuses the structure layer — the cross-interval win the
  // bench measures.
  EXPECT_EQ(d.structure_hits, 1U);
  EXPECT_EQ(d.structure_misses, 0U);
  EXPECT_TRUE(bits_equal(fresh, model.closeness(g, 0, 1)));

  // An edge on j can change the common set itself: invalidate.
  cache.closeness(model, g, 0, 1);
  g.add_relationship(1, 3, Relationship::kFriendship);
  d = stats_delta(cache, [&] { cache.closeness(model, g, 0, 1); });
  EXPECT_EQ(d.misses, 1U);
  EXPECT_EQ(d.structure_misses, 1U);  // structure witness of 1 changed
}

TEST(SocialStateCacheTest, PathEntriesGateOnStructureAndSpareTheSink) {
  // Chain 0-1-2-3: no common friends between 0 and 3, so Omega_c(0,3) is
  // the Eq. 4 bottleneck along the unique shortest path.
  SocialGraph g(8);
  g.add_relationship(0, 1, Relationship::kFriendship);
  g.add_relationship(1, 2, Relationship::kFriendship);
  g.add_relationship(2, 3, Relationship::kFriendship);
  g.record_interaction(0, 1, 1.0);
  g.record_interaction(1, 2, 2.0);
  g.record_interaction(2, 3, 3.0);
  ClosenessModel model;
  SocialStateCache cache;

  auto d = stats_delta(cache, [&] { cache.closeness(model, g, 0, 3); });
  EXPECT_EQ(d.misses, 1U);

  d = stats_delta(cache, [&] { cache.closeness(model, g, 0, 3); });
  EXPECT_EQ(d.hits, 1U);

  // The sink's outgoing interactions are never read by Eq. 4.
  g.record_interaction(3, 0, 9.0);
  d = stats_delta(cache, [&] { cache.closeness(model, g, 0, 3); });
  EXPECT_EQ(d.hits, 1U);

  // An interior path node's interactions are one of the min() terms.
  g.record_interaction(1, 0, 1.0);
  double fresh = 0.0;
  d = stats_delta(cache, [&] { fresh = cache.closeness(model, g, 0, 3); });
  EXPECT_EQ(d.misses, 1U);
  // The structure is unchanged: both the (empty) common-friend set and the
  // path itself are served from the structure layer.
  EXPECT_EQ(d.structure_hits, 2U);
  EXPECT_TRUE(bits_equal(fresh, model.closeness(g, 0, 3)));

  // Any edge change anywhere can shorten a shortest path, so path-backed
  // entries gate on the structure epoch even when the edge is unrelated.
  cache.closeness(model, g, 0, 3);
  g.add_relationship(5, 6, Relationship::kBusiness);
  d = stats_delta(cache, [&] { cache.closeness(model, g, 0, 3); });
  EXPECT_EQ(d.misses, 1U);
  EXPECT_EQ(d.structure_misses, 1U);  // BFS redone
}

TEST(SocialStateCacheTest, UnreachableEntriesSurviveInteractionChurn) {
  SocialGraph g(4);
  g.add_relationship(0, 1, Relationship::kFriendship);
  // Node 3 is isolated: Omega_c(0,3) = 0 via the unreachable branch.
  ClosenessModel model;
  SocialStateCache cache;

  auto d = stats_delta(cache, [&] { cache.closeness(model, g, 0, 3); });
  EXPECT_EQ(d.misses, 1U);
  EXPECT_TRUE(bits_equal(cache.closeness(model, g, 0, 3), 0.0));

  // Interaction churn cannot create reachability.
  g.record_interaction(0, 1, 5.0);
  d = stats_delta(cache, [&] { cache.closeness(model, g, 0, 3); });
  EXPECT_EQ(d.hits, 1U);

  // A new edge can: the entry must die with the structure epoch.
  g.add_relationship(1, 3, Relationship::kFriendship);
  double fresh = 0.0;
  d = stats_delta(cache, [&] { fresh = cache.closeness(model, g, 0, 3); });
  EXPECT_EQ(d.misses, 1U);
  EXPECT_GT(fresh, 0.0);  // now reachable through 1 (common-friend branch)
  EXPECT_TRUE(bits_equal(fresh, model.closeness(g, 0, 3)));
}

TEST(SocialStateCacheTest, ClosenessKeysAreDirectional) {
  SocialGraph g(3);
  g.add_relationship(0, 1, Relationship::kFriendship);
  g.record_interaction(0, 1, 1.0);
  g.record_interaction(1, 0, 2.0);
  g.record_interaction(1, 2, 2.0);
  ClosenessModel model;
  SocialStateCache cache;

  cache.closeness(model, g, 0, 1);
  // Omega_c is not symmetric (Eq. 2 normalises by the rater's totals), so
  // the reverse orientation is its own entry and its own compute.
  auto d = stats_delta(cache, [&] { cache.closeness(model, g, 1, 0); });
  EXPECT_EQ(d.misses, 1U);
  EXPECT_TRUE(bits_equal(cache.closeness(model, g, 1, 0),
                         model.closeness(g, 1, 0)));
}

TEST(SocialStateCacheTest, SimilarityUsesCanonicalKeyAndProfileRevisions) {
  InterestProfiles profiles(3, 8);
  const reputation::InterestId a_ints[] = {1, 2, 5};
  const reputation::InterestId b_ints[] = {2, 5, 7};
  profiles.set_interests(0, a_ints);
  profiles.set_interests(1, b_ints);
  profiles.record_request(0, 2, 3.0);
  profiles.record_request(1, 2, 1.0);
  profiles.record_request(1, 5, 2.0);
  SocialStateCache cache;

  for (bool weighted : {false, true}) {
    SocialStateCache fresh_cache;
    double v01 = 0.0, v10 = 0.0;
    auto d = stats_delta(fresh_cache, [&] {
      v01 = fresh_cache.similarity(profiles, 0, 1, weighted);
    });
    EXPECT_EQ(d.misses, 1U);
    // Symmetric function, canonical key: the reverse orientation hits.
    d = stats_delta(fresh_cache, [&] {
      v10 = fresh_cache.similarity(profiles, 1, 0, weighted);
    });
    EXPECT_EQ(d.hits, 1U);
    EXPECT_TRUE(bits_equal(v01, v10));
    const double expected = weighted ? profiles.weighted_similarity(0, 1)
                                     : profiles.similarity(0, 1);
    EXPECT_TRUE(bits_equal(v01, expected));

    // Either endpoint's profile revision invalidates.
    profiles.record_request(0, 5, 1.0);
    double fresh = 0.0;
    d = stats_delta(fresh_cache, [&] {
      fresh = fresh_cache.similarity(profiles, 0, 1, weighted);
    });
    EXPECT_EQ(d.misses, 1U);
    EXPECT_EQ(d.invalidations, 1U);
    const double recomputed = weighted ? profiles.weighted_similarity(0, 1)
                                       : profiles.similarity(0, 1);
    EXPECT_TRUE(bits_equal(fresh, recomputed));
  }
}

TEST(SocialStateCacheTest, WitnessOverflowDegradesToFullEpochStamp) {
  // 0 and 1 share kMaxWitnesses common friends (witness set would need
  // kMaxWitnesses + 2 entries), so the entry falls back to a conservative
  // full-epoch stamp: ANY mutation anywhere invalidates it.
  const std::size_t hub = SocialStateCache::kMaxWitnesses;
  SocialGraph g(hub + 3);
  for (std::size_t k = 2; k < hub + 2; ++k) {
    g.add_relationship(0, static_cast<graph::NodeId>(k),
                       Relationship::kFriendship);
    g.add_relationship(1, static_cast<graph::NodeId>(k),
                       Relationship::kFriendship);
  }
  g.record_interaction(0, 2, 1.0);
  g.record_interaction(2, 1, 1.0);
  ClosenessModel model;
  SocialStateCache cache;

  cache.closeness(model, g, 0, 1);
  auto d = stats_delta(cache, [&] { cache.closeness(model, g, 0, 1); });
  EXPECT_EQ(d.hits, 1U);

  // A node uninvolved in the pair's neighbourhood mutates: a precise
  // witness set would survive this, the epoch stamp cannot.
  g.record_interaction(static_cast<graph::NodeId>(hub + 2), 0, 1.0);
  d = stats_delta(cache, [&] { cache.closeness(model, g, 0, 1); });
  EXPECT_EQ(d.misses, 1U);
  EXPECT_TRUE(bits_equal(cache.closeness(model, g, 0, 1),
                         model.closeness(g, 0, 1)));
}

TEST(SocialStateCacheTest, InvalidateNodeErasesEveryMention) {
  SocialGraph g(6);
  g.add_relationship(0, 2, Relationship::kFriendship);
  g.add_relationship(1, 2, Relationship::kFriendship);
  g.add_relationship(3, 4, Relationship::kFriendship);
  g.record_interaction(0, 2, 1.0);
  g.record_interaction(3, 4, 1.0);
  ClosenessModel model;
  SocialStateCache cache;

  cache.closeness(model, g, 0, 1);  // FoF entry witnessing common friend 2
  cache.closeness(model, g, 3, 4);  // adjacent entry, unrelated to 2
  const std::size_t before = cache.size();
  EXPECT_EQ(before, 2U);

  auto d = stats_delta(cache, [&] { cache.invalidate_node(2); });
  EXPECT_GT(d.invalidations, 0U);
  EXPECT_LT(cache.size(), before);

  // The unrelated entry survives; the entry through node 2 is gone even
  // though no revision changed.
  d = stats_delta(cache, [&] { cache.closeness(model, g, 3, 4); });
  EXPECT_EQ(d.hits, 1U);
  d = stats_delta(cache, [&] { cache.closeness(model, g, 0, 1); });
  EXPECT_EQ(d.misses, 1U);

  cache.clear();
  EXPECT_EQ(cache.size(), 0U);
  EXPECT_EQ(cache.structure_size(), 0U);
}

TEST(SocialStateCacheTest, EvictionSweepDropsOnlyUntouchedValueEntries) {
  SocialGraph g(5);
  g.add_relationship(0, 2, Relationship::kFriendship);
  g.add_relationship(1, 2, Relationship::kFriendship);
  g.add_relationship(3, 4, Relationship::kFriendship);
  g.record_interaction(0, 2, 1.0);
  g.record_interaction(3, 4, 2.0);
  InterestProfiles profiles(5, 8);
  const reputation::InterestId a_ints[] = {1, 2, 5};
  const reputation::InterestId b_ints[] = {2, 5, 7};
  profiles.set_interests(0, a_ints);
  profiles.set_interests(1, b_ints);
  ClosenessModel model;
  SocialStateCache cache;

  const double fof = cache.closeness(model, g, 0, 1);    // FoF via 2
  const double adj = cache.closeness(model, g, 3, 4);    // adjacent
  const double sim = cache.similarity(profiles, 0, 1, false);
  EXPECT_EQ(cache.size(), 3U);
  const std::size_t structure_before = cache.structure_size();
  EXPECT_GT(structure_before, 0U);

  // First interval: every entry was touched at generation 0, age is now 1,
  // not > 1 — nothing is evictable yet. Keep (3,4) warm by re-reading it.
  cache.begin_interval(1);
  EXPECT_EQ(cache.size(), 3U);
  EXPECT_EQ(cache.stats().evictions, 0U);
  auto d = stats_delta(cache, [&] { cache.closeness(model, g, 3, 4); });
  EXPECT_EQ(d.hits, 1U);

  // Second interval: the FoF and similarity entries have gone two
  // generations untouched and are swept; the re-read adjacent entry and
  // the whole structure layer survive.
  cache.begin_interval(1);
  EXPECT_EQ(cache.size(), 1U);
  EXPECT_EQ(cache.stats().evictions, 2U);
  EXPECT_EQ(cache.structure_size(), structure_before);
  d = stats_delta(cache, [&] { cache.closeness(model, g, 3, 4); });
  EXPECT_EQ(d.hits, 1U);

  // Warm bit-identity after the sweep: no graph/profile state changed, so
  // recomputing the evicted entries takes the identical code path and must
  // reproduce the identical doubles (and re-memoise them as fresh misses).
  double fof2 = 0.0, sim2 = 0.0;
  d = stats_delta(cache, [&] { fof2 = cache.closeness(model, g, 0, 1); });
  EXPECT_EQ(d.misses, 1U);
  EXPECT_EQ(d.invalidations, 0U);  // evicted, not stale
  EXPECT_TRUE(bits_equal(fof2, fof));
  d = stats_delta(cache, [&] { sim2 = cache.similarity(profiles, 0, 1, false); });
  EXPECT_EQ(d.misses, 1U);
  EXPECT_TRUE(bits_equal(sim2, sim));
  EXPECT_TRUE(bits_equal(cache.closeness(model, g, 3, 4), adj));
}

TEST(SocialStateCacheTest, EvictionDisabledByDefaultConfigValue) {
  SocialGraph g(3);
  g.add_relationship(0, 1, Relationship::kFriendship);
  g.record_interaction(0, 1, 1.0);
  ClosenessModel model;
  SocialStateCache cache;

  cache.closeness(model, g, 0, 1);
  EXPECT_EQ(cache.size(), 1U);

  // evict_after == 0 (the SocialTrustConfig default) still advances the
  // generation but must never sweep, no matter how long entries sit idle.
  for (int i = 0; i < 10; ++i) cache.begin_interval(0);
  EXPECT_EQ(cache.size(), 1U);
  EXPECT_EQ(cache.stats().evictions, 0U);
  auto d = stats_delta(cache, [&] { cache.closeness(model, g, 0, 1); });
  EXPECT_EQ(d.hits, 1U);
}

// --- 2. cold-vs-warm property test ------------------------------------------

struct PluginCapture {
  SocialTrustPlugin* plugin = nullptr;
};

/// Forwarding wrapper that wipes the plugin's persistent cache before
/// every interval — the old per-interval-memo behaviour. Cold-vs-warm
/// equality is exactly the claim that the cache is a pure optimisation.
class ColdCacheSystem final : public reputation::ReputationSystem {
 public:
  explicit ColdCacheSystem(std::unique_ptr<SocialTrustPlugin> plugin)
      : plugin_(std::move(plugin)) {}
  std::string_view name() const noexcept override { return plugin_->name(); }
  std::size_t size() const noexcept override { return plugin_->size(); }
  void update(std::span<const Rating> cycle_ratings) override {
    plugin_->social_cache().clear();
    plugin_->update(cycle_ratings);
  }
  double reputation(reputation::NodeId node) const override {
    return plugin_->reputation(node);
  }
  std::span<const double> reputations() const noexcept override {
    return plugin_->reputations();
  }
  void reset() override { plugin_->reset(); }
  void forget_node(reputation::NodeId node) override {
    plugin_->forget_node(node);
  }

 private:
  std::unique_ptr<SocialTrustPlugin> plugin_;
};

sim::SystemFactory make_factory(core::SocialTrustConfig cfg,
                                PluginCapture& capture, bool cold) {
  return [cfg, &capture, cold](const graph::SocialGraph& graph,
                               const InterestProfiles& profiles,
                               const std::vector<sim::NodeId>& pretrusted,
                               std::size_t n)
             -> std::unique_ptr<reputation::ReputationSystem> {
    auto inner = std::make_unique<reputation::PaperEigenTrust>(
        n, pretrusted, reputation::PaperEigenTrustConfig{});
    auto plugin = std::make_unique<SocialTrustPlugin>(std::move(inner), graph,
                                                      profiles, cfg);
    capture.plugin = plugin.get();
    if (cold) return std::make_unique<ColdCacheSystem>(std::move(plugin));
    return plugin;
  };
}

/// Scaled-down Section 5.1 network, as in parallel_update_test.cpp.
sim::SimConfig small_config() {
  sim::SimConfig cfg;
  cfg.node_count = 72;
  cfg.pretrusted_count = 5;
  cfg.colluder_count = 16;
  cfg.query_cycles_per_cycle = 8;
  cfg.simulation_cycles = 3;
  return cfg;
}

std::unique_ptr<sim::CollusionStrategy> make_strategy(
    const std::string& model) {
  collusion::CollusionOptions options;
  if (model == "none") return nullptr;
  if (model == "PCM")
    return std::make_unique<collusion::PairwiseCollusion>(options);
  if (model == "MCM")
    return std::make_unique<collusion::MultiNodeCollusion>(options);
  return std::make_unique<collusion::MutualMultiNodeCollusion>(options);
}

struct Snapshot {
  std::vector<Rating> adjusted;
  core::AdjustmentReport report;
  std::vector<double> reputations;
  SocialStateCache::StatsSnapshot cache_stats;
};

Snapshot run_once(const std::string& model, std::uint64_t seed,
                  std::size_t threads, bool cold) {
  core::SocialTrustConfig cfg;
  cfg.threads = threads;
  PluginCapture capture;
  sim::Simulator simulator(small_config(),
                           make_factory(cfg, capture, cold),
                           make_strategy(model), seed);
  simulator.run();
  Snapshot snap;
  auto adjusted = capture.plugin->last_adjusted();
  snap.adjusted.assign(adjusted.begin(), adjusted.end());
  snap.report = capture.plugin->last_report();
  auto reps = capture.plugin->reputations();
  snap.reputations.assign(reps.begin(), reps.end());
  snap.cache_stats = capture.plugin->social_cache().stats();
  return snap;
}

void expect_identical(const Snapshot& cold, const Snapshot& warm,
                      const std::string& label) {
  SCOPED_TRACE(label);

  ASSERT_EQ(cold.adjusted.size(), warm.adjusted.size());
  for (std::size_t i = 0; i < cold.adjusted.size(); ++i) {
    EXPECT_EQ(cold.adjusted[i].rater, warm.adjusted[i].rater) << i;
    EXPECT_EQ(cold.adjusted[i].ratee, warm.adjusted[i].ratee) << i;
    EXPECT_TRUE(bits_equal(cold.adjusted[i].value, warm.adjusted[i].value))
        << "rating " << i;
  }

  const core::AdjustmentReport& a = cold.report;
  const core::AdjustmentReport& b = warm.report;
  EXPECT_EQ(a.pairs_total, b.pairs_total);
  EXPECT_EQ(a.pairs_flagged, b.pairs_flagged);
  EXPECT_EQ(a.ratings_adjusted, b.ratings_adjusted);
  EXPECT_EQ(a.b1, b.b1);
  EXPECT_EQ(a.b2, b.b2);
  EXPECT_EQ(a.b3, b.b3);
  EXPECT_EQ(a.b4, b.b4);
  EXPECT_TRUE(bits_equal(a.mean_weight, b.mean_weight)) << "mean_weight";

  ASSERT_EQ(a.flagged.size(), b.flagged.size());
  for (std::size_t i = 0; i < a.flagged.size(); ++i) {
    EXPECT_EQ(a.flagged[i].rater, b.flagged[i].rater) << i;
    EXPECT_EQ(a.flagged[i].ratee, b.flagged[i].ratee) << i;
    EXPECT_EQ(a.flagged[i].behavior, b.flagged[i].behavior) << i;
    EXPECT_TRUE(bits_equal(a.flagged[i].weight, b.flagged[i].weight)) << i;
  }

  ASSERT_EQ(cold.reputations.size(), warm.reputations.size());
  for (std::size_t v = 0; v < cold.reputations.size(); ++v) {
    EXPECT_TRUE(bits_equal(cold.reputations[v], warm.reputations[v]))
        << "node " << v;
  }
}

class ColdVsWarmEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(ColdVsWarmEquivalence, BitIdenticalAcrossIntervalsAndThreads) {
  const std::string model = GetParam();
  for (std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
    Snapshot cold = run_once(model, seed, 1, /*cold=*/true);
    for (std::size_t threads : {1UL, 2UL, 4UL}) {
      Snapshot warm = run_once(model, seed, threads, /*cold=*/false);
      // The warm run must actually have reused entries across intervals,
      // or this compares two cold runs and proves nothing.
      EXPECT_GT(warm.cache_stats.hits, 0U)
          << model << " seed=" << seed << " threads=" << threads;
      expect_identical(cold, warm,
                       model + " seed=" + std::to_string(seed) +
                           " threads=" + std::to_string(threads));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CollusionModels, ColdVsWarmEquivalence,
                         ::testing::Values("none", "PCM", "MCM", "MMM"));

// --- 3. whitewashing regression ---------------------------------------------

/// Directly driven plugin pair (no simulator): one warm, one cold, fed the
/// identical interval sequence over the identical shared social state,
/// with a whitewash event in the middle. Any stale entry the warm cache
/// serves after the whitewash diverges the two and fails the bit compare.
TEST(IncrementalWhitewashing, ForgetNodeInvalidatesStaleEntries) {
  stats::Rng rng(1234);
  SocialGraph g = graph::watts_strogatz(48, 6, 0.2, rng);
  InterestProfiles profiles(48, 16);
  for (graph::NodeId n = 0; n < 48; ++n) {
    const reputation::InterestId ints[] = {
        static_cast<reputation::InterestId>(n % 16),
        static_cast<reputation::InterestId>((n + 5) % 16)};
    profiles.set_interests(n, ints);
  }

  core::SocialTrustConfig cfg;
  cfg.threads = 1;
  auto make_plugin = [&] {
    return std::make_unique<SocialTrustPlugin>(
        std::make_unique<reputation::PaperEigenTrust>(
            48, std::vector<reputation::NodeId>{0, 1},
            reputation::PaperEigenTrustConfig{}),
        g, profiles, cfg);
  };
  auto warm = make_plugin();
  auto cold = make_plugin();

  // Deterministic interval streams; every rating also mutates the social
  // state the way Simulator::submit_rating does.
  auto make_interval = [&](std::uint64_t seed) {
    stats::Rng interval_rng(seed);
    std::vector<Rating> ratings;
    for (std::size_t q = 0; q < 160; ++q) {
      const auto rater = static_cast<reputation::NodeId>(
          interval_rng.index(48));
      auto ratee = static_cast<reputation::NodeId>(interval_rng.index(48));
      if (ratee == rater) ratee = (ratee + 1) % 48;
      const double value = interval_rng.bernoulli(0.8) ? 1.0 : -1.0;
      ratings.push_back(Rating{rater, ratee, value, 0, 0,
                               static_cast<reputation::InterestId>(
                                   interval_rng.index(16))});
      g.record_interaction(rater, ratee);
      profiles.record_request(rater, ratings.back().interest);
    }
    return ratings;
  };

  auto run_interval = [&](const std::vector<Rating>& ratings) {
    cold->social_cache().clear();
    cold->update(ratings);
    warm->update(ratings);
    auto ca = cold->last_adjusted();
    auto wa = warm->last_adjusted();
    ASSERT_EQ(ca.size(), wa.size());
    for (std::size_t i = 0; i < ca.size(); ++i) {
      ASSERT_TRUE(bits_equal(ca[i].value, wa[i].value)) << "rating " << i;
    }
    auto cr = cold->reputations();
    auto wr = warm->reputations();
    for (std::size_t v = 0; v < cr.size(); ++v) {
      ASSERT_TRUE(bits_equal(cr[v], wr[v])) << "node " << v;
    }
  };

  run_interval(make_interval(1));
  run_interval(make_interval(2));
  ASSERT_GT(warm->social_cache().stats().hits, 0U);

  // Whitewash node 7, exactly as Simulator::whitewash does it.
  const reputation::NodeId w = 7;
  const std::size_t entries_before = warm->social_cache().size();
  const auto inval_before = warm->social_cache().stats().invalidations;
  warm->forget_node(w);
  cold->forget_node(w);
  // forget_node alone must already have dropped every cached entry
  // mentioning the node — before any graph mutation bumps a revision.
  EXPECT_LT(warm->social_cache().size(), entries_before);
  EXPECT_GT(warm->social_cache().stats().invalidations, inval_before);
  g.clear_node(w);
  profiles.clear_requests(w);

  // The discarded identity re-joins and gets rated again: warm results
  // must match a from-scratch recompute, not the pre-whitewash state.
  run_interval(make_interval(3));
  run_interval(make_interval(4));
}

// --- 4. full-vs-dirty differential gate (DESIGN.md §14) ----------------------

/// One update interval's complete observable output plus the dirty
/// scheduler's self-report — enough to bit-compare a kDirtyPairs run
/// against the kFullWalk oracle at every interval, not just at the end.
struct IntervalRecord {
  std::vector<Rating> adjusted;
  core::AdjustmentReport report;
  std::vector<double> reputations;
  SocialTrustPlugin::DirtyStats dirty;
};

/// Forwarding wrapper that snapshots the plugin's outputs after every
/// update() so a simulator run yields a per-interval trace instead of
/// only its final state.
class RecordingSystem final : public reputation::ReputationSystem {
 public:
  RecordingSystem(std::unique_ptr<SocialTrustPlugin> plugin,
                  std::vector<IntervalRecord>& trace)
      : plugin_(std::move(plugin)), trace_(trace) {}
  std::string_view name() const noexcept override { return plugin_->name(); }
  std::size_t size() const noexcept override { return plugin_->size(); }
  void update(std::span<const Rating> cycle_ratings) override {
    plugin_->update(cycle_ratings);
    IntervalRecord rec;
    auto adjusted = plugin_->last_adjusted();
    rec.adjusted.assign(adjusted.begin(), adjusted.end());
    rec.report = plugin_->last_report();
    auto reps = plugin_->reputations();
    rec.reputations.assign(reps.begin(), reps.end());
    rec.dirty = plugin_->last_dirty_stats();
    trace_.push_back(std::move(rec));
  }
  double reputation(reputation::NodeId node) const override {
    return plugin_->reputation(node);
  }
  std::span<const double> reputations() const noexcept override {
    return plugin_->reputations();
  }
  void reset() override { plugin_->reset(); }
  void forget_node(reputation::NodeId node) override {
    plugin_->forget_node(node);
  }

 private:
  std::unique_ptr<SocialTrustPlugin> plugin_;
  std::vector<IntervalRecord>& trace_;
};

void expect_record_identical(const IntervalRecord& oracle,
                             const IntervalRecord& dirty,
                             const std::string& label) {
  SCOPED_TRACE(label);

  ASSERT_EQ(oracle.adjusted.size(), dirty.adjusted.size());
  for (std::size_t i = 0; i < oracle.adjusted.size(); ++i) {
    EXPECT_EQ(oracle.adjusted[i].rater, dirty.adjusted[i].rater) << i;
    EXPECT_EQ(oracle.adjusted[i].ratee, dirty.adjusted[i].ratee) << i;
    EXPECT_TRUE(
        bits_equal(oracle.adjusted[i].value, dirty.adjusted[i].value))
        << "rating " << i;
  }

  const core::AdjustmentReport& a = oracle.report;
  const core::AdjustmentReport& b = dirty.report;
  EXPECT_EQ(a.pairs_total, b.pairs_total);
  EXPECT_EQ(a.pairs_flagged, b.pairs_flagged);
  EXPECT_EQ(a.ratings_adjusted, b.ratings_adjusted);
  EXPECT_EQ(a.b1, b.b1);
  EXPECT_EQ(a.b2, b.b2);
  EXPECT_EQ(a.b3, b.b3);
  EXPECT_EQ(a.b4, b.b4);
  EXPECT_TRUE(bits_equal(a.mean_weight, b.mean_weight)) << "mean_weight";
  ASSERT_EQ(a.flagged.size(), b.flagged.size());
  for (std::size_t i = 0; i < a.flagged.size(); ++i) {
    EXPECT_EQ(a.flagged[i].rater, b.flagged[i].rater) << i;
    EXPECT_EQ(a.flagged[i].ratee, b.flagged[i].ratee) << i;
    EXPECT_EQ(a.flagged[i].behavior, b.flagged[i].behavior) << i;
    EXPECT_TRUE(bits_equal(a.flagged[i].weight, b.flagged[i].weight)) << i;
  }

  ASSERT_EQ(oracle.reputations.size(), dirty.reputations.size());
  for (std::size_t v = 0; v < oracle.reputations.size(); ++v) {
    EXPECT_TRUE(bits_equal(oracle.reputations[v], dirty.reputations[v]))
        << "node " << v;
  }
}

/// Scaled-down network run long enough for ≥20 update intervals.
sim::SimConfig differential_config() {
  sim::SimConfig cfg;
  cfg.node_count = 64;
  cfg.pretrusted_count = 5;
  cfg.colluder_count = 14;
  cfg.query_cycles_per_cycle = 6;
  cfg.simulation_cycles = 20;
  return cfg;
}

std::vector<IntervalRecord> run_traced(const std::string& model,
                                       std::uint64_t seed,
                                       std::size_t threads,
                                       core::UpdateSchedule schedule) {
  core::SocialTrustConfig cfg;
  cfg.threads = threads;
  cfg.schedule = schedule;
  std::vector<IntervalRecord> trace;
  auto factory = [cfg, &trace](const graph::SocialGraph& graph,
                               const InterestProfiles& profiles,
                               const std::vector<sim::NodeId>& pretrusted,
                               std::size_t n)
      -> std::unique_ptr<reputation::ReputationSystem> {
    auto inner = std::make_unique<reputation::PaperEigenTrust>(
        n, pretrusted, reputation::PaperEigenTrustConfig{});
    auto plugin = std::make_unique<SocialTrustPlugin>(std::move(inner), graph,
                                                      profiles, cfg);
    return std::make_unique<RecordingSystem>(std::move(plugin), trace);
  };
  sim::Simulator simulator(differential_config(), factory,
                           make_strategy(model), seed);
  simulator.run();
  return trace;
}

/// Simulator-driven differential: dirty scheduler vs full-walk oracle,
/// bit-compared at EVERY interval across collusion models, seeds, and
/// thread counts. The simulator records an interaction for every rating,
/// so every active rater's revision bumps every interval and the worklist
/// covers essentially all active pairs — this gate exercises the
/// all-dirty extreme (collect, sweep, recompute, writeback); the
/// sparse-churn carry path is pinned by the direct-drive test below and
/// by dirty_pair_property_test.cpp.
class FullVsDirtyEquivalence : public ::testing::TestWithParam<const char*> {
};

TEST_P(FullVsDirtyEquivalence, BitIdenticalEveryIntervalAcrossThreads) {
  const std::string model = GetParam();
  for (std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
    const auto oracle =
        run_traced(model, seed, 1, core::UpdateSchedule::kFullWalk);
    ASSERT_GE(oracle.size(), 20U);
    for (std::size_t threads : {1UL, 2UL, 4UL}) {
      const auto dirty =
          run_traced(model, seed, threads, core::UpdateSchedule::kDirtyPairs);
      ASSERT_EQ(oracle.size(), dirty.size());
      for (std::size_t t = 0; t < oracle.size(); ++t) {
        expect_record_identical(
            oracle[t], dirty[t],
            model + " seed=" + std::to_string(seed) +
                " threads=" + std::to_string(threads) +
                " interval=" + std::to_string(t));
        // The oracle recomputes every active pair and carries none.
        EXPECT_EQ(oracle[t].dirty.pairs_carried, 0U);
        EXPECT_EQ(oracle[t].dirty.pairs_dirty, oracle[t].report.pairs_total);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CollusionModels, FullVsDirtyEquivalence,
                         ::testing::Values("none", "PCM", "MCM", "MMM"));

/// Direct-drive sparse-churn differential: a fixed pool of rating pairs
/// re-rates every interval over a mostly-stable social substrate, so most
/// pair coefficients are witness-clean across intervals and must be
/// served from carried state — the path the simulator gate cannot reach.
/// A full-walk plugin over the same shared state is the per-interval
/// oracle; a mid-sequence whitewash checks carried state dies with the
/// identity.
TEST(FullVsDirtyDirect, SparseChurnCarriesPairsBitIdentically) {
  constexpr std::size_t kNodes = 64;
  stats::Rng rng(977);
  SocialGraph g = graph::watts_strogatz(kNodes, 6, 0.15, rng);
  InterestProfiles profiles(kNodes, 16);
  for (graph::NodeId n = 0; n < kNodes; ++n) {
    const reputation::InterestId ints[] = {
        static_cast<reputation::InterestId>(n % 16),
        static_cast<reputation::InterestId>((n + 3) % 16),
        static_cast<reputation::InterestId>((n + 9) % 16)};
    profiles.set_interests(n, ints);
  }
  // Seed interactions and requests once so closeness/similarity are
  // non-trivial before the rating stream starts.
  for (graph::NodeId n = 0; n < kNodes; ++n) {
    for (graph::NodeId nb : g.neighbors(n)) {
      g.record_interaction(n, nb, 1.0 + static_cast<double>((n + nb) % 3));
    }
    profiles.record_request(n, static_cast<reputation::InterestId>(n % 16),
                            2.0);
  }

  core::SocialTrustConfig oracle_cfg;
  oracle_cfg.threads = 2;
  oracle_cfg.schedule = core::UpdateSchedule::kFullWalk;
  core::SocialTrustConfig dirty_cfg = oracle_cfg;
  dirty_cfg.schedule = core::UpdateSchedule::kDirtyPairs;
  auto make_plugin = [&](const core::SocialTrustConfig& cfg) {
    return std::make_unique<SocialTrustPlugin>(
        std::make_unique<reputation::PaperEigenTrust>(
            kNodes, std::vector<reputation::NodeId>{0, 1},
            reputation::PaperEigenTrustConfig{}),
        g, profiles, cfg);
  };
  auto oracle = make_plugin(oracle_cfg);
  auto dirty = make_plugin(dirty_cfg);

  // Fixed rating pool: each node rates three rng-chosen partners, the
  // same pairs every interval. Re-rating an existing pair does not grow
  // the rated history, so per-rater aggregates may carry as well.
  struct Pair {
    reputation::NodeId rater, ratee;
  };
  std::vector<Pair> pool;
  for (reputation::NodeId r = 0; r < kNodes; ++r) {
    for (int k = 0; k < 3; ++k) {
      auto e = static_cast<reputation::NodeId>(rng.index(kNodes));
      if (e == r) e = (e + 1) % kNodes;
      pool.push_back(Pair{r, e});
    }
  }

  const reputation::NodeId w = 9;  // whitewashed mid-sequence (not pretrusted)
  std::size_t carried_total = 0;
  bool saw_fully_clean_interval = false;
  for (std::size_t t = 0; t < 24; ++t) {
    stats::Rng interval_rng(5000 + t);
    std::vector<Rating> ratings;
    ratings.reserve(pool.size());
    for (const Pair& p : pool) {
      ratings.push_back(Rating{
          p.rater, p.ratee, interval_rng.bernoulli(0.8) ? 1.0 : -1.0, 0, 0,
          static_cast<reputation::InterestId>(interval_rng.index(16))});
    }

    // Sparse churn (well under 10% of nodes per interval): occasional
    // interaction recordings, relationship edits, and profile requests.
    if (t % 4 == 2) {
      const auto a = static_cast<graph::NodeId>(interval_rng.index(kNodes));
      const auto b = static_cast<graph::NodeId>((a + 7) % kNodes);
      g.record_interaction(a, b, 1.0);
    }
    if (t % 6 == 3) {
      const auto a = static_cast<graph::NodeId>(interval_rng.index(kNodes));
      const auto b = static_cast<graph::NodeId>((a + 11) % kNodes);
      g.add_relationship(a, b, Relationship::kColleague);
    }
    if (t % 5 == 4) {
      profiles.record_request(
          static_cast<reputation::NodeId>(interval_rng.index(kNodes)),
          static_cast<reputation::InterestId>(interval_rng.index(16)), 1.0);
    }
    if (t == 12) {
      oracle->forget_node(w);
      dirty->forget_node(w);
      g.clear_node(w);
      profiles.clear_requests(w);
    }

    oracle->update(ratings);
    dirty->update(ratings);

    IntervalRecord oa, da;
    auto o_adj = oracle->last_adjusted();
    oa.adjusted.assign(o_adj.begin(), o_adj.end());
    oa.report = oracle->last_report();
    auto o_rep = oracle->reputations();
    oa.reputations.assign(o_rep.begin(), o_rep.end());
    auto d_adj = dirty->last_adjusted();
    da.adjusted.assign(d_adj.begin(), d_adj.end());
    da.report = dirty->last_report();
    auto d_rep = dirty->reputations();
    da.reputations.assign(d_rep.begin(), d_rep.end());
    expect_record_identical(oa, da, "interval " + std::to_string(t));

    const auto& stats = dirty->last_dirty_stats();
    EXPECT_EQ(stats.pairs_dirty + stats.pairs_carried,
              da.report.pairs_total);
    carried_total += stats.pairs_carried;
    if (t > 0 && stats.pairs_carried == da.report.pairs_total &&
        da.report.pairs_total > 0) {
      saw_fully_clean_interval = true;
    }
  }

  // The whole point: the dirty run must have genuinely carried pairs,
  // including at least one interval where NOTHING was recomputed.
  EXPECT_GT(carried_total, 0U);
  EXPECT_TRUE(saw_fully_clean_interval);
}

}  // namespace
}  // namespace st
