// Tests for st::util — table/CSV rendering, ASCII charts, the thread pool,
// CLI parsing, and logging levels.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>

#include "util/ascii_chart.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace st::util {
namespace {

// --- Table ----------------------------------------------------------------------

TEST(TableTest, AlignedRendering) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "2.5"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("| long-name"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
  EXPECT_EQ(t.cell(1, 0), "long-name");
}

TEST(TableTest, ArityChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(TableTest, RowValuesFormatting) {
  Table t({"x", "y"});
  t.add_row_values({1.23456, 2.0}, 2);
  EXPECT_EQ(t.cell(0, 0), "1.23");
  EXPECT_EQ(t.cell(0, 1), "2.00");
}

TEST(TableTest, CsvEscaping) {
  Table t({"name", "note"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"quoted", "say \"hi\""});
  std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, FmtHelpers) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_ci(1.0, 0.25, 2), "1.00 ± 0.25");
}

TEST(Csv, WriteRoundTrip) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  auto dir = std::filesystem::temp_directory_path() / "st_csv_test";
  auto path = write_csv(t, dir, "out.csv");
  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "a,b");
  EXPECT_EQ(row, "1,2");
  std::filesystem::remove_all(dir);
}

// --- ASCII charts ----------------------------------------------------------------

TEST(Charts, BarChartScalesToWidth) {
  std::vector<std::pair<std::string, double>> bars{{"a", 1.0}, {"b", 2.0}};
  std::string chart = bar_chart(bars, 10);
  // The largest bar spans the full width.
  EXPECT_NE(chart.find("##########"), std::string::npos);
  EXPECT_NE(chart.find("#####  1"), std::string::npos);
}

TEST(Charts, BarChartNegativeValues) {
  std::vector<std::pair<std::string, double>> bars{{"neg", -1.0}};
  std::string chart = bar_chart(bars, 5);
  EXPECT_NE(chart.find("<<<<<"), std::string::npos);
}

TEST(Charts, BarChartEmpty) {
  EXPECT_EQ(bar_chart({}, 10), "(no data)\n");
}

TEST(Charts, LineChartContainsPoints) {
  std::vector<SeriesPoint> pts{{0, 0}, {1, 1}, {2, 4}};
  std::string chart = line_chart(pts, 20, 8);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find("x: [0, 2]"), std::string::npos);
}

TEST(Charts, BucketizeMeans) {
  std::vector<double> values{1, 1, 3, 3};
  auto buckets = bucketize(values, 2);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].first, "[1-2]");
  EXPECT_DOUBLE_EQ(buckets[0].second, 1.0);
  EXPECT_DOUBLE_EQ(buckets[1].second, 3.0);
}

TEST(Charts, BucketizeClampsToSize) {
  std::vector<double> values{5.0};
  auto buckets = bucketize(values, 10);
  EXPECT_EQ(buckets.size(), 1u);
}

// --- ThreadPool ------------------------------------------------------------------

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.parallel_for(50, [&hits](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, DefaultsToAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPoolTest, DrainsOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&counter] { ++counter; });
    }
  }
  EXPECT_EQ(counter.load(), 20);
}

// --- CLI -------------------------------------------------------------------------

TEST(Cli, ParsesFlagsAndValues) {
  // Note: a bare flag greedily consumes the next non-flag token as its
  // value, so positionals must precede flags or follow an `=`-form flag.
  const char* argv[] = {"prog",  "--seed", "42",      "--csv=out",
                        "pos1",  "--quiet", "--runs", "5"};
  CliArgs args(8, const_cast<char**>(argv));
  EXPECT_EQ(args.program(), "prog");
  EXPECT_EQ(args.get_u64("seed", 0), 42u);
  EXPECT_EQ(args.get_or("csv", ""), "out");
  EXPECT_TRUE(args.has("quiet"));
  EXPECT_EQ(args.get_int("runs", 0), 5);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(Cli, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  CliArgs args(1, const_cast<char**>(argv));
  EXPECT_FALSE(args.has("seed"));
  EXPECT_EQ(args.get_u64("seed", 7), 7u);
  EXPECT_DOUBLE_EQ(args.get_double("b", 0.6), 0.6);
  EXPECT_EQ(args.get_or("csv", "default"), "default");
}

TEST(Cli, DoubleParsing) {
  const char* argv[] = {"prog", "--b", "0.25"};
  CliArgs args(3, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(args.get_double("b", 0.0), 0.25);
}

TEST(Cli, FlagFollowedByFlagHasEmptyValue) {
  const char* argv[] = {"prog", "--quiet", "--seed", "3"};
  CliArgs args(4, const_cast<char**>(argv));
  EXPECT_TRUE(args.has("quiet"));
  EXPECT_EQ(args.get_u64("seed", 0), 3u);
}

// --- logging ----------------------------------------------------------------------

TEST(Log, LevelFiltering) {
  LogLevel original = log_level();
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  // Smoke: these must not crash regardless of level.
  log_debug("invisible ", 1);
  log_info("invisible ", 2);
  log_warn("visible ", 3);
  log_error("visible ", 4.5);
  set_log_level(original);
}

}  // namespace
}  // namespace st::util
