// Tests for SocialTrustPlugin (the end-to-end adjustment pipeline) and the
// distributed ResourceManagerNetwork (Section 4.3), including the
// equivalence proof between centralised and distributed execution.

#include <gtest/gtest.h>

#include <memory>

#include "core/resource_manager.hpp"
#include "core/socialtrust.hpp"
#include "reputation/ebay.hpp"
#include "reputation/paper_eigentrust.hpp"

namespace st::core {
namespace {

using reputation::NodeId;
using reputation::Rating;

Rating make(NodeId rater, NodeId ratee, double value) {
  Rating r;
  r.rater = rater;
  r.ratee = ratee;
  r.value = value;
  return r;
}

/// A colluder-vs-honest fixture: nodes 0,1 collude (adjacent, huge mutual
/// interaction concentration, no shared interests); nodes 2..9 trade
/// honestly within shared interests at low frequency.
struct Fixture {
  graph::SocialGraph graph{10};
  InterestProfiles profiles{10, 8};

  Fixture() {
    // Colluding pair: 4 relationship types, distance 1.
    for (auto r : {graph::Relationship::kFriendship,
                   graph::Relationship::kColleague,
                   graph::Relationship::kClassmate,
                   graph::Relationship::kKinship}) {
      graph.add_relationship(0, 1, r);
    }
    // Honest background: a ring of friendships among 2..9.
    for (NodeId v = 2; v < 9; ++v) {
      graph.add_relationship(v, v + 1, graph::Relationship::kFriendship);
    }
    // Interests: colluders disjoint; honest nodes share {0,1,2}.
    std::vector<reputation::InterestId> a{6}, b{7},
        common{0, 1, 2};
    profiles.set_interests(0, a);
    profiles.set_interests(1, b);
    for (NodeId v = 2; v < 10; ++v) profiles.set_interests(v, common);
    // Behaviour: everyone requests within its own interests.
    profiles.record_request(0, 6, 20.0);
    profiles.record_request(1, 7, 20.0);
    for (NodeId v = 2; v < 10; ++v) {
      profiles.record_request(v, 0, 6.0);
      profiles.record_request(v, 1, 3.0);
      profiles.record_request(v, 2, 1.0);
    }
  }

  /// One simulation cycle: colluders rate each other 40x, honest pairs
  /// exchange a couple of transaction ratings and record interactions.
  std::vector<Rating> cycle_ratings() {
    std::vector<Rating> ratings;
    for (int k = 0; k < 40; ++k) {
      ratings.push_back(make(0, 1, 1.0));
      ratings.push_back(make(1, 0, 1.0));
      graph.record_interaction(0, 1);
      graph.record_interaction(1, 0);
    }
    for (NodeId v = 2; v < 9; ++v) {
      ratings.push_back(make(v, v + 1, 1.0));
      ratings.push_back(make(v + 1, v, 1.0));
      graph.record_interaction(v, v + 1);
      graph.record_interaction(v + 1, v);
    }
    return ratings;
  }
};

std::unique_ptr<reputation::PaperEigenTrust> make_inner() {
  reputation::PaperEigenTrustConfig cfg;
  cfg.weight_prior_mass = 0.0;
  cfg.rater_weight_floor = 0.0;
  return std::make_unique<reputation::PaperEigenTrust>(
      10, std::vector<NodeId>{2}, cfg);
}

TEST(Plugin, NameComposesInnerName) {
  Fixture f;
  SocialTrustPlugin plugin(make_inner(), f.graph, f.profiles);
  EXPECT_EQ(plugin.name(), "EigenTrust+SocialTrust");
  EXPECT_EQ(plugin.size(), 10u);
}

TEST(Plugin, RejectsNullInnerAndSizeMismatch) {
  Fixture f;
  EXPECT_THROW(SocialTrustPlugin(nullptr, f.graph, f.profiles),
               std::invalid_argument);
  graph::SocialGraph tiny(3);
  InterestProfiles tiny_profiles(3, 4);
  EXPECT_THROW(SocialTrustPlugin(make_inner(), tiny, tiny_profiles),
               std::invalid_argument);
}

TEST(Plugin, FlagsColludingPairNotHonestPairs) {
  Fixture f;
  SocialTrustPlugin plugin(make_inner(), f.graph, f.profiles);
  plugin.update(f.cycle_ratings());
  const AdjustmentReport& report = plugin.last_report();
  EXPECT_GE(report.pairs_flagged, 2u);  // both directions of the pair
  for (const FlaggedPair& fp : report.flagged) {
    bool is_colluding_pair = (fp.rater == 0 && fp.ratee == 1) ||
                             (fp.rater == 1 && fp.ratee == 0);
    EXPECT_TRUE(is_colluding_pair)
        << fp.rater << "->" << fp.ratee << " wrongly flagged";
  }
}

TEST(Plugin, AdjustedRatingsShrinkOnlyForFlaggedPairs) {
  Fixture f;
  SocialTrustPlugin plugin(make_inner(), f.graph, f.profiles);
  auto ratings = f.cycle_ratings();
  plugin.update(ratings);
  auto adjusted = plugin.last_adjusted();
  ASSERT_EQ(adjusted.size(), ratings.size());
  for (std::size_t i = 0; i < ratings.size(); ++i) {
    bool colluding = ratings[i].rater <= 1;
    if (colluding) {
      EXPECT_LT(adjusted[i].value, ratings[i].value);
    } else {
      EXPECT_DOUBLE_EQ(adjusted[i].value, ratings[i].value);
    }
  }
}

TEST(Plugin, SuppressesColluderReputationOverCycles) {
  Fixture with_plugin, without_plugin;
  SocialTrustPlugin plugin(make_inner(), with_plugin.graph,
                           with_plugin.profiles);
  auto bare = make_inner();
  // Seed: the pretrusted node (2) endorses the colluders once so the bare
  // system has something to amplify.
  std::vector<Rating> seed{make(2, 0, 1.0), make(2, 1, 1.0)};
  plugin.update(seed);
  bare->update(seed);
  for (int cycle = 0; cycle < 8; ++cycle) {
    plugin.update(with_plugin.cycle_ratings());
    bare->update(without_plugin.cycle_ratings());
  }
  EXPECT_LT(plugin.reputation(0) + plugin.reputation(1),
            0.2 * (bare->reputation(0) + bare->reputation(1)));
}

TEST(Plugin, GateOffAdjustsEverything) {
  Fixture f;
  SocialTrustConfig cfg;
  cfg.gate_on_detector = false;
  SocialTrustPlugin plugin(make_inner(), f.graph, f.profiles, cfg);
  auto ratings = f.cycle_ratings();
  plugin.update(ratings);
  EXPECT_EQ(plugin.last_report().ratings_adjusted, ratings.size());
}

TEST(Plugin, BehaviorCountersPopulated) {
  Fixture f;
  SocialTrustPlugin plugin(make_inner(), f.graph, f.profiles);
  plugin.update(f.cycle_ratings());
  const auto& r = plugin.last_report();
  // The colluding pair shares no interests -> B3 fires; B2 requires the
  // ratee to be low-reputed, which also holds initially.
  EXPECT_GT(r.b3 + r.b2 + r.b1, 0u);
  EXPECT_GT(r.pairs_total, 2u);
  EXPECT_LE(r.pairs_flagged, r.pairs_total);
}

TEST(Plugin, ResetClearsHistoryAndInner) {
  Fixture f;
  SocialTrustPlugin plugin(make_inner(), f.graph, f.profiles);
  plugin.update(f.cycle_ratings());
  plugin.reset();
  EXPECT_EQ(plugin.last_report().pairs_total, 0u);
  for (NodeId v = 0; v < 10; ++v) EXPECT_DOUBLE_EQ(plugin.reputation(v), 0.0);
}

TEST(Plugin, EmptyUpdateIsHarmless) {
  Fixture f;
  SocialTrustPlugin plugin(make_inner(), f.graph, f.profiles);
  plugin.update({});
  EXPECT_EQ(plugin.last_report().pairs_total, 0u);
}

TEST(Plugin, SelfAndOutOfRangeRatingsIgnored) {
  Fixture f;
  SocialTrustPlugin plugin(make_inner(), f.graph, f.profiles);
  std::vector<Rating> junk{make(3, 3, 1.0), make(42, 1, 1.0),
                           make(1, 42, 1.0)};
  plugin.update(junk);
  EXPECT_EQ(plugin.last_report().pairs_total, 0u);
}

TEST(Plugin, ComponentVariantsAllSuppress) {
  for (auto components : {AdjustmentComponents::kClosenessOnly,
                          AdjustmentComponents::kSimilarityOnly,
                          AdjustmentComponents::kCombined}) {
    Fixture f;
    SocialTrustConfig cfg;
    cfg.components = components;
    SocialTrustPlugin plugin(make_inner(), f.graph, f.profiles, cfg);
    auto ratings = f.cycle_ratings();
    plugin.update(ratings);
    EXPECT_LT(plugin.last_report().mean_weight, 1.0)
        << "components=" << static_cast<int>(components);
  }
}

TEST(Plugin, CombinedAttenuatesAtLeastAsMuchAsEachComponent) {
  // Eq. (9)'s exponent is the sum of Eq. (6)'s and Eq. (8)'s, so for the
  // same flagged pair the combined weight is <= each single-dimension one.
  double weights[3];
  int idx = 0;
  for (auto components : {AdjustmentComponents::kClosenessOnly,
                          AdjustmentComponents::kSimilarityOnly,
                          AdjustmentComponents::kCombined}) {
    Fixture f;
    SocialTrustConfig cfg;
    cfg.components = components;
    SocialTrustPlugin plugin(make_inner(), f.graph, f.profiles, cfg);
    plugin.update(f.cycle_ratings());
    weights[idx++] = plugin.last_report().mean_weight;
  }
  EXPECT_LE(weights[2], weights[0] + 1e-12);
  EXPECT_LE(weights[2], weights[1] + 1e-12);
}

TEST(Plugin, BaselineVariantsAllFlagTheColluder) {
  for (auto baseline : {BaselineSource::kPerRater, BaselineSource::kSystemWide,
                        BaselineSource::kHybrid}) {
    Fixture f;
    SocialTrustConfig cfg;
    cfg.baseline = baseline;
    SocialTrustPlugin plugin(make_inner(), f.graph, f.profiles, cfg);
    plugin.update(f.cycle_ratings());
    EXPECT_GE(plugin.last_report().pairs_flagged, 2u)
        << "baseline=" << static_cast<int>(baseline);
  }
}

TEST(Plugin, HybridNeverWeakerThanPerRater) {
  Fixture f1, f2;
  SocialTrustConfig per_rater;
  per_rater.baseline = BaselineSource::kPerRater;
  SocialTrustConfig hybrid;
  hybrid.baseline = BaselineSource::kHybrid;
  SocialTrustPlugin a(make_inner(), f1.graph, f1.profiles, per_rater);
  SocialTrustPlugin b(make_inner(), f2.graph, f2.profiles, hybrid);
  a.update(f1.cycle_ratings());
  b.update(f2.cycle_ratings());
  EXPECT_LE(b.last_report().mean_weight,
            a.last_report().mean_weight + 1e-12);
}

// --- ResourceManagerNetwork ------------------------------------------------------

TEST(ResourceManagers, ReputationsIdenticalToCentralised) {
  Fixture f_central, f_distributed;
  SocialTrustPlugin central(make_inner(), f_central.graph,
                            f_central.profiles);
  ResourceManagerNetwork distributed(make_inner(), f_distributed.graph,
                                     f_distributed.profiles,
                                     SocialTrustConfig{}, 4);
  for (int cycle = 0; cycle < 5; ++cycle) {
    central.update(f_central.cycle_ratings());
    distributed.update(f_distributed.cycle_ratings());
  }
  for (NodeId v = 0; v < 10; ++v) {
    EXPECT_DOUBLE_EQ(central.reputation(v), distributed.reputation(v));
  }
}

TEST(ResourceManagers, RoutesEveryRating) {
  Fixture f;
  ResourceManagerNetwork net(make_inner(), f.graph, f.profiles,
                             SocialTrustConfig{}, 3);
  auto ratings = f.cycle_ratings();
  net.update(ratings);
  EXPECT_EQ(net.last_traffic().ratings_routed, ratings.size());
  std::uint64_t load_sum = 0;
  for (std::uint64_t l : net.manager_load()) load_sum += l;
  EXPECT_EQ(load_sum, ratings.size());
}

TEST(ResourceManagers, CrossManagerFlagsCostInfoRequests) {
  Fixture f;
  // Nodes 0 and 1 land on different managers with 2 managers (0 % 2 != 1 % 2),
  // so each flagged direction costs one info request.
  ResourceManagerNetwork net(make_inner(), f.graph, f.profiles,
                             SocialTrustConfig{}, 2);
  net.update(f.cycle_ratings());
  const auto& t = net.last_traffic();
  EXPECT_EQ(t.adjustments_applied, net.last_report().flagged.size());
  EXPECT_GE(t.info_requests, 2u);
  EXPECT_EQ(t.local_hits + t.info_requests, t.adjustments_applied);
}

TEST(ResourceManagers, SingleManagerIsAllLocal) {
  Fixture f;
  ResourceManagerNetwork net(make_inner(), f.graph, f.profiles,
                             SocialTrustConfig{}, 1);
  net.update(f.cycle_ratings());
  EXPECT_EQ(net.last_traffic().info_requests, 0u);
}

TEST(ResourceManagers, TotalsAccumulate) {
  Fixture f;
  ResourceManagerNetwork net(make_inner(), f.graph, f.profiles,
                             SocialTrustConfig{}, 2);
  auto size1 = f.cycle_ratings().size();
  net.update(f.cycle_ratings());
  net.update(f.cycle_ratings());
  EXPECT_EQ(net.total_traffic().ratings_routed, 2 * size1);
  net.reset();
  EXPECT_EQ(net.total_traffic().ratings_routed, 0u);
}

TEST(ResourceManagers, Validation) {
  Fixture f;
  EXPECT_THROW(ResourceManagerNetwork(make_inner(), f.graph, f.profiles,
                                      SocialTrustConfig{}, 0),
               std::invalid_argument);
}

TEST(ResourceManagers, WorksOverEbayToo) {
  Fixture f;
  ResourceManagerNetwork net(std::make_unique<reputation::EbayReputation>(10),
                             f.graph, f.profiles, SocialTrustConfig{}, 3);
  EXPECT_EQ(net.name(), "eBay+SocialTrust(distributed)");
  net.update(f.cycle_ratings());
  EXPECT_GT(net.last_traffic().ratings_routed, 0u);
}

}  // namespace
}  // namespace st::core
