// Tests for the whitewashing extension: forget_node semantics across all
// reputation systems, the simulator's identity-reset plumbing, and the
// attack/defence dynamics.

#include <gtest/gtest.h>

#include "collusion/whitewashing.hpp"
#include "core/socialtrust.hpp"
#include "reputation/beta.hpp"
#include "reputation/ebay.hpp"
#include "reputation/eigentrust.hpp"
#include "reputation/paper_eigentrust.hpp"
#include "sim/experiment.hpp"
#include "sim/factories.hpp"

namespace st {
namespace {

using reputation::NodeId;
using reputation::Rating;

Rating make(NodeId rater, NodeId ratee, double value) {
  Rating r;
  r.rater = rater;
  r.ratee = ratee;
  r.value = value;
  return r;
}

// --- forget_node across systems -----------------------------------------------

TEST(ForgetNode, EbayErasesScore) {
  reputation::EbayReputation ebay(3);
  ebay.update(std::vector<Rating>{make(0, 1, 1.0), make(0, 2, 1.0)});
  ebay.forget_node(1);
  EXPECT_DOUBLE_EQ(ebay.raw_score(1), 0.0);
  EXPECT_DOUBLE_EQ(ebay.reputation(1), 0.0);
  EXPECT_DOUBLE_EQ(ebay.reputation(2), 1.0);  // renormalised
}

TEST(ForgetNode, PaperEigenTrustErasesScore) {
  reputation::PaperEigenTrust pet(3, {0});
  pet.update(std::vector<Rating>{make(0, 1, 1.0), make(0, 2, 1.0)});
  pet.forget_node(1);
  EXPECT_DOUBLE_EQ(pet.reputation(1), 0.0);
  EXPECT_DOUBLE_EQ(pet.reputation(2), 1.0);
}

TEST(ForgetNode, EigenTrustErasesRowAndColumn) {
  reputation::EigenTrust et(4, {0});
  et.update(std::vector<Rating>{make(0, 1, 1.0), make(1, 2, 1.0),
                                make(3, 1, 1.0)});
  et.forget_node(1);
  EXPECT_DOUBLE_EQ(et.raw_trust(0, 1), 0.0);  // column
  EXPECT_DOUBLE_EQ(et.raw_trust(1, 2), 0.0);  // row
  EXPECT_DOUBLE_EQ(et.raw_trust(3, 1), 0.0);
}

TEST(ForgetNode, BetaResetsToPrior) {
  reputation::BetaReputation beta(3);
  beta.update(std::vector<Rating>{make(0, 1, -1.0), make(0, 1, -1.0)});
  EXPECT_LT(beta.beta_expectation(1), 0.5);
  beta.forget_node(1);
  EXPECT_DOUBLE_EQ(beta.beta_expectation(1), 0.5);
}

TEST(ForgetNode, PluginForgetsRatingHistoryToo) {
  graph::SocialGraph g(5);
  core::InterestProfiles p(5, 3);
  core::SocialTrustPlugin plugin(
      std::make_unique<reputation::EbayReputation>(5), g, p);
  std::vector<Rating> ratings;
  for (int k = 0; k < 20; ++k) ratings.push_back(make(1, 2, 1.0));
  plugin.update(ratings);
  EXPECT_NO_THROW(plugin.forget_node(2));
  EXPECT_DOUBLE_EQ(plugin.reputation(2), 0.0);
}

TEST(ForgetNode, OutOfRangeThrows) {
  reputation::EbayReputation ebay(2);
  EXPECT_THROW(ebay.forget_node(7), std::out_of_range);
}

// --- SocialGraph::clear_node / profiles ------------------------------------------

TEST(ClearNode, ErasesEdgesAndInteractionsBothWays) {
  graph::SocialGraph g(4);
  g.add_relationship(0, 1, graph::Relationship::kFriendship);
  g.add_relationship(1, 2, graph::Relationship::kKinship);
  g.record_interaction(1, 2, 5.0);
  g.record_interaction(0, 1, 3.0);
  g.record_interaction(0, 2, 2.0);

  g.clear_node(1);
  EXPECT_FALSE(g.adjacent(0, 1));
  EXPECT_FALSE(g.adjacent(1, 2));
  EXPECT_DOUBLE_EQ(g.total_interactions(1), 0.0);
  EXPECT_DOUBLE_EQ(g.interaction(0, 1), 0.0);
  // Node 0's other interactions survive and totals stay consistent.
  EXPECT_DOUBLE_EQ(g.interaction(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(g.total_interactions(0), 2.0);
}

TEST(ClearRequests, ErasesHistoryKeepsProfile) {
  core::InterestProfiles p(2, 4);
  std::vector<reputation::InterestId> set{1, 2};
  p.set_interests(0, set);
  p.record_request(0, 1, 5.0);
  p.clear_requests(0);
  EXPECT_DOUBLE_EQ(p.total_requests(0), 0.0);
  EXPECT_EQ(p.declared(0).size(), 2u);
}

// --- simulator plumbing ------------------------------------------------------------

TEST(Whitewash, SimulatorResetsIdentity) {
  sim::SimConfig cfg;
  cfg.node_count = 40;
  cfg.pretrusted_count = 2;
  cfg.colluder_count = 4;
  cfg.simulation_cycles = 2;
  cfg.query_cycles_per_cycle = 4;
  sim::Simulator simulator(cfg, sim::make_paper_eigentrust_factory(),
                           nullptr, 9);
  auto result = simulator.run();
  (void)result;
  NodeId target = 5;
  EXPECT_EQ(simulator.whitewash_count(target), 0u);
  EXPECT_EQ(simulator.whitewash(target), 1u);
  EXPECT_EQ(simulator.whitewash_count(target), 1u);
  EXPECT_DOUBLE_EQ(simulator.system().reputation(target), 0.0);
  EXPECT_DOUBLE_EQ(simulator.social_graph().total_interactions(target), 0.0);
  EXPECT_DOUBLE_EQ(simulator.profiles().total_requests(target), 0.0);
}

// --- end-to-end attack dynamics ----------------------------------------------------

sim::ExperimentConfig ww_config() {
  sim::ExperimentConfig config;
  config.sim.node_count = 120;
  config.sim.pretrusted_count = 6;
  config.sim.colluder_count = 18;
  config.sim.colluder_authentic = 0.6;
  config.sim.simulation_cycles = 20;
  config.sim.query_cycles_per_cycle = 15;
  config.runs = 2;
  config.base_seed = 4242;
  return config;
}

TEST(Whitewash, AttackActuallyWhitewashes) {
  // Under SocialTrust the colluders get suppressed and the strategy
  // actually pulls the reset lever.
  auto config = ww_config();
  auto strategy = std::make_unique<collusion::WhitewashingCollusion>();
  auto* raw = strategy.get();
  sim::Simulator simulator(
      config.sim,
      sim::make_socialtrust_factory(sim::make_paper_eigentrust_factory()),
      std::move(strategy), 7);
  simulator.run();
  EXPECT_GT(raw->total_whitewashes(), 0u);
}

TEST(Whitewash, SocialTrustStillSuppresses) {
  // Whitewashing does not rescue the colluders: a fresh identity has no
  // earned reputation, so its partner's ratings carry (almost) no weight,
  // and the rebuilt concentration pattern is re-detected within a cycle.
  auto config = ww_config();
  sim::StrategyFactory strategy = [] {
    return std::make_unique<collusion::WhitewashingCollusion>();
  };
  auto guarded = run_experiment(
      config,
      sim::make_socialtrust_factory(sim::make_paper_eigentrust_factory()),
      strategy);
  EXPECT_LT(guarded.colluder_mean.mean(), guarded.normal_mean.mean());
}

}  // namespace
}  // namespace st
