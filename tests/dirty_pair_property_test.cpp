// Dirty-pair scheduler property test (DESIGN.md §14).
//
// Randomized differential harness: seeded interleavings of ratings,
// friendship add/remove, interaction churn, profile edits, clear_node /
// forget_node, and whitewashing re-entry are applied to a shared social
// substrate; after every interval a kDirtyPairs plugin with a warm
// persistent worklist is bit-compared against a kFullWalk plugin whose
// cache is wiped before each update (a cold full recompute — the
// strongest oracle: no carried state of any kind). Any event sequence
// the dirty tracker mishandles — a missed invalidation, a stale carried
// coefficient, an aggregate not rebuilt — diverges the two within one
// interval and prints the seed that found it.
//
// The fixed-scenario differential gate lives in
// incremental_state_test.cpp; this file explores the event-interleaving
// space around it.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/socialtrust.hpp"
#include "graph/generators.hpp"
#include "reputation/paper_eigentrust.hpp"
#include "stats/rng.hpp"

namespace st {
namespace {

using core::InterestProfiles;
using core::SocialTrustPlugin;
using graph::Relationship;
using graph::SocialGraph;
using reputation::Rating;

constexpr std::size_t kNodes = 48;
constexpr std::size_t kInterests = 16;
constexpr std::size_t kIntervals = 30;

::testing::AssertionResult bits_equal(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " != " << b << " (bit patterns differ)";
}

Relationship random_relationship(stats::Rng& rng) {
  return static_cast<Relationship>(rng.index(graph::kRelationshipCount));
}

/// One interval's worth of randomized events. Ratings are split between
/// "transaction" ratings (which also record an interaction and a request,
/// the way Simulator::submit_rating does — heavy churn) and "re-ratings"
/// of whatever pairs already exist (no substrate mutation — these are the
/// intervals where pairs genuinely carry). Structural and profile edits
/// land with small probabilities so most interleavings mix clean and
/// dirty state in the same interval.
std::vector<Rating> random_interval(stats::Rng& rng, SocialGraph& g,
                                    InterestProfiles& profiles) {
  std::vector<Rating> ratings;
  const std::size_t n_ratings = 40 + rng.index(80);
  for (std::size_t q = 0; q < n_ratings; ++q) {
    const auto rater = static_cast<reputation::NodeId>(rng.index(kNodes));
    auto ratee = static_cast<reputation::NodeId>(rng.index(kNodes));
    if (ratee == rater) ratee = (ratee + 1) % kNodes;
    const auto interest =
        static_cast<reputation::InterestId>(rng.index(kInterests));
    ratings.push_back(Rating{rater, ratee,
                             rng.bernoulli(0.75) ? 1.0 : -1.0, 0, 0,
                             interest});
    if (rng.bernoulli(0.4)) {  // transaction rating: substrate churn
      g.record_interaction(rater, ratee);
      profiles.record_request(rater, interest);
    }
  }

  // Structural churn: friendship (and other relationship) add/remove.
  while (rng.bernoulli(0.3)) {
    const auto a = static_cast<graph::NodeId>(rng.index(kNodes));
    auto b = static_cast<graph::NodeId>(rng.index(kNodes));
    if (b == a) b = (b + 1) % kNodes;
    if (rng.bernoulli(0.7)) {
      g.add_relationship(a, b, random_relationship(rng));
    } else {
      g.remove_relationship(a, b, random_relationship(rng));
    }
  }

  // Profile churn: interest edits and request recordings.
  while (rng.bernoulli(0.25)) {
    const auto node = static_cast<reputation::NodeId>(rng.index(kNodes));
    const auto interest =
        static_cast<reputation::InterestId>(rng.index(kInterests));
    if (rng.bernoulli(0.5)) {
      profiles.record_request(node, interest);
    } else if (rng.bernoulli(0.5)) {
      profiles.add_interest(node, interest);
    } else {
      profiles.remove_interest(node, interest);
    }
  }

  return ratings;
}

void expect_plugins_identical(const SocialTrustPlugin& oracle,
                              const SocialTrustPlugin& dirty,
                              const std::string& label) {
  SCOPED_TRACE(label);

  auto oa = oracle.last_adjusted();
  auto da = dirty.last_adjusted();
  ASSERT_EQ(oa.size(), da.size());
  for (std::size_t i = 0; i < oa.size(); ++i) {
    ASSERT_EQ(oa[i].rater, da[i].rater) << i;
    ASSERT_EQ(oa[i].ratee, da[i].ratee) << i;
    ASSERT_TRUE(bits_equal(oa[i].value, da[i].value)) << "rating " << i;
  }

  const core::AdjustmentReport& a = oracle.last_report();
  const core::AdjustmentReport& b = dirty.last_report();
  ASSERT_EQ(a.pairs_total, b.pairs_total);
  ASSERT_EQ(a.pairs_flagged, b.pairs_flagged);
  ASSERT_EQ(a.ratings_adjusted, b.ratings_adjusted);
  ASSERT_EQ(a.b1, b.b1);
  ASSERT_EQ(a.b2, b.b2);
  ASSERT_EQ(a.b3, b.b3);
  ASSERT_EQ(a.b4, b.b4);
  ASSERT_TRUE(bits_equal(a.mean_weight, b.mean_weight)) << "mean_weight";
  ASSERT_EQ(a.flagged.size(), b.flagged.size());
  for (std::size_t i = 0; i < a.flagged.size(); ++i) {
    ASSERT_EQ(a.flagged[i].rater, b.flagged[i].rater) << i;
    ASSERT_EQ(a.flagged[i].ratee, b.flagged[i].ratee) << i;
    ASSERT_EQ(a.flagged[i].behavior, b.flagged[i].behavior) << i;
    ASSERT_TRUE(bits_equal(a.flagged[i].weight, b.flagged[i].weight)) << i;
  }

  auto orep = oracle.reputations();
  auto drep = dirty.reputations();
  ASSERT_EQ(orep.size(), drep.size());
  for (std::size_t v = 0; v < orep.size(); ++v) {
    ASSERT_TRUE(bits_equal(orep[v], drep[v])) << "node " << v;
  }
}

void run_property(std::uint64_t seed, std::size_t threads) {
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " threads=" + std::to_string(threads));
  stats::Rng rng(seed);
  SocialGraph g = graph::watts_strogatz(kNodes, 6, 0.2, rng);
  InterestProfiles profiles(kNodes, kInterests);
  for (graph::NodeId n = 0; n < kNodes; ++n) {
    const reputation::InterestId ints[] = {
        static_cast<reputation::InterestId>(n % kInterests),
        static_cast<reputation::InterestId>((n + 5) % kInterests)};
    profiles.set_interests(n, ints);
  }

  core::SocialTrustConfig oracle_cfg;
  oracle_cfg.threads = threads;
  oracle_cfg.schedule = core::UpdateSchedule::kFullWalk;
  core::SocialTrustConfig dirty_cfg = oracle_cfg;
  dirty_cfg.schedule = core::UpdateSchedule::kDirtyPairs;
  auto make_plugin = [&](const core::SocialTrustConfig& cfg) {
    return std::make_unique<SocialTrustPlugin>(
        std::make_unique<reputation::PaperEigenTrust>(
            kNodes, std::vector<reputation::NodeId>{0, 1},
            reputation::PaperEigenTrustConfig{}),
        g, profiles, cfg);
  };
  auto oracle = make_plugin(oracle_cfg);
  auto dirty = make_plugin(dirty_cfg);

  std::size_t carried_total = 0;
  for (std::size_t t = 0; t < kIntervals; ++t) {
    // Occasional whitewash: a random non-pretrusted identity is forgotten
    // and its social state cleared, exactly as Simulator::whitewash does
    // it; the node re-enters through later random ratings.
    if (t > 2 && rng.bernoulli(0.15)) {
      const auto w = static_cast<reputation::NodeId>(2 + rng.index(kNodes - 2));
      oracle->forget_node(w);
      dirty->forget_node(w);
      g.clear_node(w);
      profiles.clear_requests(w);
    }

    const std::vector<Rating> ratings = random_interval(rng, g, profiles);

    // The oracle is a COLD full walk: no cache, no carried state at all.
    oracle->social_cache().clear();
    oracle->update(ratings);
    dirty->update(ratings);

    expect_plugins_identical(*oracle, *dirty,
                             "interval " + std::to_string(t));
    const auto& stats = dirty->last_dirty_stats();
    ASSERT_EQ(stats.pairs_dirty + stats.pairs_carried,
              dirty->last_report().pairs_total);
    carried_total += stats.pairs_carried;
  }
  // Re-ratings of unchurned pairs must actually have exercised the carry
  // path, or the property degenerates to full-vs-full.
  EXPECT_GT(carried_total, 0U);
}

class DirtyPairProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {
};

TEST_P(DirtyPairProperty, RandomInterleavingsMatchColdFullRecompute) {
  const auto [seed, threads] = GetParam();
  run_property(seed, threads);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndThreads, DirtyPairProperty,
    ::testing::Combine(::testing::Values(101ULL, 202ULL, 303ULL, 404ULL,
                                         505ULL),
                       ::testing::Values(1UL, 4UL)),
    [](const auto& param_info) {
      return "seed" + std::to_string(std::get<0>(param_info.param)) +
             "_threads" + std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace st
