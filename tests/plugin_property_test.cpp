// Property tests for SocialTrustPlugin over randomized social state and
// rating streams: structural invariants of the adjustment that must hold
// for *any* input, not just the crafted fixtures.

#include <gtest/gtest.h>

#include <cmath>

#include "core/socialtrust.hpp"
#include "graph/generators.hpp"
#include "reputation/ebay.hpp"
#include "reputation/paper_eigentrust.hpp"
#include "stats/rng.hpp"

namespace st::core {
namespace {

using reputation::NodeId;
using reputation::Rating;

constexpr std::size_t kNodes = 40;
constexpr std::size_t kCategories = 8;

struct RandomWorld {
  graph::SocialGraph graph{kNodes};
  InterestProfiles profiles{kNodes, kCategories};
  stats::Rng rng;

  explicit RandomWorld(std::uint64_t seed) : rng(seed) {
    graph = graph::erdos_renyi(kNodes, 0.1, rng);
    for (NodeId v = 0; v < kNodes; ++v) {
      auto picks =
          rng.sample_without_replacement(kCategories, 1 + rng.index(4));
      std::vector<reputation::InterestId> set;
      for (std::size_t c : picks)
        set.push_back(static_cast<reputation::InterestId>(c));
      profiles.set_interests(v, set);
      for (auto c : set) profiles.record_request(v, c, rng.uniform(1, 10));
    }
  }

  std::vector<Rating> random_cycle(std::size_t count) {
    std::vector<Rating> ratings;
    for (std::size_t i = 0; i < count; ++i) {
      Rating r;
      r.rater = static_cast<NodeId>(rng.index(kNodes));
      r.ratee = static_cast<NodeId>(rng.index(kNodes));
      r.value = rng.bernoulli(0.8) ? 1.0 : -1.0;
      ratings.push_back(r);
      graph.record_interaction(r.rater, r.ratee);
    }
    // Inject one concentrated pair so something is usually flagged.
    for (int k = 0; k < 60; ++k) {
      Rating r;
      r.rater = 0;
      r.ratee = 1;
      r.value = 1.0;
      ratings.push_back(r);
      graph.record_interaction(0, 1);
    }
    return ratings;
  }
};

class PluginProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PluginProperty, AdjustmentShrinksNeverAmplifiesOrFlipsSign) {
  RandomWorld world(GetParam());
  SocialTrustPlugin plugin(
      std::make_unique<reputation::EbayReputation>(kNodes), world.graph,
      world.profiles);
  for (int cycle = 0; cycle < 3; ++cycle) {
    auto ratings = world.random_cycle(300);
    plugin.update(ratings);
    auto adjusted = plugin.last_adjusted();
    ASSERT_EQ(adjusted.size(), ratings.size());
    for (std::size_t i = 0; i < ratings.size(); ++i) {
      // alpha = 1: |v'| <= |v| and the sign is preserved (weight > 0).
      EXPECT_LE(std::fabs(adjusted[i].value),
                std::fabs(ratings[i].value) + 1e-12);
      EXPECT_GE(adjusted[i].value * ratings[i].value, -1e-300);
      EXPECT_EQ(adjusted[i].rater, ratings[i].rater);
      EXPECT_EQ(adjusted[i].ratee, ratings[i].ratee);
    }
  }
}

TEST_P(PluginProperty, ReportInvariants) {
  RandomWorld world(GetParam());
  SocialTrustPlugin plugin(
      std::make_unique<reputation::EbayReputation>(kNodes), world.graph,
      world.profiles);
  plugin.update(world.random_cycle(400));
  const auto& report = plugin.last_report();
  EXPECT_LE(report.pairs_flagged, report.pairs_total);
  EXPECT_EQ(report.flagged.size(), report.pairs_flagged);
  EXPECT_GT(report.mean_weight, 0.0);
  EXPECT_LE(report.mean_weight, plugin.config().alpha + 1e-12);
  for (const auto& fp : report.flagged) {
    EXPECT_TRUE(any(fp.behavior));
    EXPECT_GE(fp.weight, 0.0);
    EXPECT_LE(fp.weight, plugin.config().alpha + 1e-12);
  }
}

TEST_P(PluginProperty, PluginEqualsInnerOnAdjustedStream) {
  // Feeding the plugin's adjusted stream to a bare copy of the inner
  // system must reproduce the plugin's reputations exactly — the plugin
  // is precisely "adjust, then delegate".
  RandomWorld world(GetParam());
  SocialTrustPlugin plugin(
      std::make_unique<reputation::EbayReputation>(kNodes), world.graph,
      world.profiles);
  reputation::EbayReputation shadow(kNodes);
  for (int cycle = 0; cycle < 3; ++cycle) {
    plugin.update(world.random_cycle(250));
    auto adjusted = plugin.last_adjusted();
    shadow.update(adjusted);
    for (NodeId v = 0; v < kNodes; ++v) {
      ASSERT_DOUBLE_EQ(plugin.reputation(v), shadow.reputation(v))
          << "cycle " << cycle << " node " << v;
    }
  }
}

TEST_P(PluginProperty, DeterministicGivenIdenticalState) {
  RandomWorld w1(GetParam()), w2(GetParam());
  SocialTrustPlugin a(std::make_unique<reputation::PaperEigenTrust>(
                          kNodes, std::vector<NodeId>{0}),
                      w1.graph, w1.profiles);
  SocialTrustPlugin b(std::make_unique<reputation::PaperEigenTrust>(
                          kNodes, std::vector<NodeId>{0}),
                      w2.graph, w2.profiles);
  auto r1 = w1.random_cycle(300);
  auto r2 = w2.random_cycle(300);
  a.update(r1);
  b.update(r2);
  for (NodeId v = 0; v < kNodes; ++v) {
    EXPECT_DOUBLE_EQ(a.reputation(v), b.reputation(v));
  }
}

TEST_P(PluginProperty, GateOnlyTouchesFlaggedPairs) {
  RandomWorld world(GetParam());
  SocialTrustPlugin plugin(
      std::make_unique<reputation::EbayReputation>(kNodes), world.graph,
      world.profiles);
  auto ratings = world.random_cycle(300);
  plugin.update(ratings);
  auto adjusted = plugin.last_adjusted();
  const auto& flagged = plugin.last_report().flagged;
  auto is_flagged = [&](NodeId rater, NodeId ratee) {
    for (const auto& fp : flagged) {
      if (fp.rater == rater && fp.ratee == ratee) return true;
    }
    return false;
  };
  for (std::size_t i = 0; i < ratings.size(); ++i) {
    if (adjusted[i].value != ratings[i].value) {
      EXPECT_TRUE(is_flagged(ratings[i].rater, ratings[i].ratee))
          << ratings[i].rater << "->" << ratings[i].ratee;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PluginProperty,
                         ::testing::Values(1u, 17u, 202u, 999u, 54321u));

}  // namespace
}  // namespace st::core
