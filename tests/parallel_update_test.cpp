// Parallel-vs-serial equivalence suite: SocialTrustConfig::threads is a
// pure performance knob. Identical rating streams — the no-collusion
// baseline and the PCM/MCM/MMM generators — must yield bit-identical
// adjusted ratings, AdjustmentReports, flagged-pair sets, and downstream
// inner reputations for every worker count. The whole simulation is
// deterministic given a seed, so two runs that differ only in `threads`
// diverge if and only if the parallel refactor changed semantics; any
// divergence compounds through server selection and would show up in the
// final state compared here.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "collusion/models.hpp"
#include "core/socialtrust.hpp"
#include "obs/obs.hpp"
#include "reputation/paper_eigentrust.hpp"
#include "sim/simulator.hpp"

namespace st {
namespace {

using core::SocialTrustPlugin;
using reputation::Rating;

/// Bit-level double equality: distinguishes +0/-0 and catches last-ulp
/// drift that EXPECT_DOUBLE_EQ's 4-ulp tolerance would wave through.
::testing::AssertionResult bits_equal(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " != " << b << " (bit patterns differ)";
}

struct PluginCapture {
  SocialTrustPlugin* plugin = nullptr;
};

/// Factory that remembers the plugin it built so the test can inspect the
/// last interval's internals after Simulator::run().
sim::SystemFactory capture_factory(core::SocialTrustConfig cfg,
                                   PluginCapture& capture) {
  return [cfg, &capture](const graph::SocialGraph& graph,
                         const core::InterestProfiles& profiles,
                         const std::vector<sim::NodeId>& pretrusted,
                         std::size_t n) {
    auto inner = std::make_unique<reputation::PaperEigenTrust>(
        n, pretrusted, reputation::PaperEigenTrustConfig{});
    auto plugin = std::make_unique<SocialTrustPlugin>(std::move(inner), graph,
                                                      profiles, cfg);
    capture.plugin = plugin.get();
    return plugin;
  };
}

/// Scaled-down Section 5.1 network: big enough for all three collusion
/// models (16 colluders > boosted_count 7) and for multi-block pair lists,
/// small enough that the 4-model x 4-thread-count x 5-seed sweep stays
/// fast.
sim::SimConfig small_config() {
  sim::SimConfig cfg;
  cfg.node_count = 72;
  cfg.pretrusted_count = 5;
  cfg.colluder_count = 16;
  cfg.query_cycles_per_cycle = 8;
  cfg.simulation_cycles = 3;
  return cfg;
}

std::unique_ptr<sim::CollusionStrategy> make_strategy(
    const std::string& model) {
  collusion::CollusionOptions options;
  if (model == "none") return nullptr;
  if (model == "PCM")
    return std::make_unique<collusion::PairwiseCollusion>(options);
  if (model == "MCM")
    return std::make_unique<collusion::MultiNodeCollusion>(options);
  return std::make_unique<collusion::MutualMultiNodeCollusion>(options);
}

struct Snapshot {
  std::vector<Rating> adjusted;
  core::AdjustmentReport report;
  std::vector<double> reputations;
};

Snapshot run_once(const std::string& model, std::uint64_t seed,
                  std::size_t threads,
                  core::SocialTrustConfig cfg = core::SocialTrustConfig{}) {
  cfg.threads = threads;
  PluginCapture capture;
  sim::Simulator simulator(small_config(), capture_factory(cfg, capture),
                           make_strategy(model), seed);
  simulator.run();
  Snapshot snap;
  auto adjusted = capture.plugin->last_adjusted();
  snap.adjusted.assign(adjusted.begin(), adjusted.end());
  snap.report = capture.plugin->last_report();
  auto reps = capture.plugin->reputations();
  snap.reputations.assign(reps.begin(), reps.end());
  return snap;
}

void expect_identical(const Snapshot& serial, const Snapshot& parallel,
                      const std::string& label) {
  SCOPED_TRACE(label);

  // Adjusted rating stream of the last interval, value-bit-exact.
  ASSERT_EQ(serial.adjusted.size(), parallel.adjusted.size());
  for (std::size_t i = 0; i < serial.adjusted.size(); ++i) {
    EXPECT_EQ(serial.adjusted[i].rater, parallel.adjusted[i].rater) << i;
    EXPECT_EQ(serial.adjusted[i].ratee, parallel.adjusted[i].ratee) << i;
    EXPECT_TRUE(bits_equal(serial.adjusted[i].value,
                           parallel.adjusted[i].value))
        << "rating " << i;
  }

  // Report counters and the order-sensitive mean weight.
  const core::AdjustmentReport& a = serial.report;
  const core::AdjustmentReport& b = parallel.report;
  EXPECT_EQ(a.pairs_total, b.pairs_total);
  EXPECT_EQ(a.pairs_flagged, b.pairs_flagged);
  EXPECT_EQ(a.ratings_adjusted, b.ratings_adjusted);
  EXPECT_EQ(a.b1, b.b1);
  EXPECT_EQ(a.b2, b.b2);
  EXPECT_EQ(a.b3, b.b3);
  EXPECT_EQ(a.b4, b.b4);
  EXPECT_TRUE(bits_equal(a.mean_weight, b.mean_weight)) << "mean_weight";

  // Flagged pairs: same set, same order, same weights.
  ASSERT_EQ(a.flagged.size(), b.flagged.size());
  for (std::size_t i = 0; i < a.flagged.size(); ++i) {
    EXPECT_EQ(a.flagged[i].rater, b.flagged[i].rater) << i;
    EXPECT_EQ(a.flagged[i].ratee, b.flagged[i].ratee) << i;
    EXPECT_EQ(a.flagged[i].behavior, b.flagged[i].behavior) << i;
    EXPECT_TRUE(bits_equal(a.flagged[i].weight, b.flagged[i].weight)) << i;
  }

  // Downstream reputations of the wrapped system — the end-to-end check:
  // any earlier-interval divergence compounds into these.
  ASSERT_EQ(serial.reputations.size(), parallel.reputations.size());
  for (std::size_t v = 0; v < serial.reputations.size(); ++v) {
    EXPECT_TRUE(bits_equal(serial.reputations[v], parallel.reputations[v]))
        << "node " << v;
  }
}

class ParallelEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(ParallelEquivalence, BitIdenticalAcrossThreadCounts) {
  const std::string model = GetParam();
  for (std::uint64_t seed : {11ULL, 22ULL, 33ULL, 44ULL, 55ULL}) {
    Snapshot serial = run_once(model, seed, 1);
    for (std::size_t threads : {2UL, 4UL, 8UL}) {
      Snapshot parallel = run_once(model, seed, threads);
      expect_identical(serial, parallel,
                       model + " seed=" + std::to_string(seed) +
                           " threads=" + std::to_string(threads));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CollusionModels, ParallelEquivalence,
                         ::testing::Values("none", "PCM", "MCM", "MMM"));

TEST(ParallelEquivalenceConfig, HoldsAcrossBaselineAndComponentVariants) {
  // The per-rater / system-wide / hybrid baselines and the three component
  // selections exercise different branches of the detect-and-adjust pass;
  // each must stay a pure refactor too. One attack model and seed suffice
  // — the branch selection is config-, not stream-, dependent.
  for (auto baseline :
       {core::BaselineSource::kPerRater, core::BaselineSource::kSystemWide,
        core::BaselineSource::kHybrid}) {
    for (auto components : {core::AdjustmentComponents::kClosenessOnly,
                            core::AdjustmentComponents::kSimilarityOnly,
                            core::AdjustmentComponents::kCombined}) {
      core::SocialTrustConfig cfg;
      cfg.baseline = baseline;
      cfg.components = components;
      Snapshot serial = run_once("PCM", 7, 1, cfg);
      Snapshot parallel = run_once("PCM", 7, 4, cfg);
      expect_identical(serial, parallel,
                       "baseline=" + std::to_string(int(baseline)) +
                           " components=" + std::to_string(int(components)));
    }
  }
}

TEST(ParallelEquivalenceConfig, FlaggedPairsOrderedByPairKey) {
  Snapshot snap = run_once("MMM", 99, 4);
  for (std::size_t i = 1; i < snap.report.flagged.size(); ++i) {
    const auto& prev = snap.report.flagged[i - 1];
    const auto& cur = snap.report.flagged[i];
    EXPECT_TRUE(prev.rater < cur.rater ||
                (prev.rater == cur.rater && prev.ratee < cur.ratee))
        << "flagged[" << i << "] out of order";
  }
}

TEST(ParallelEquivalenceConfig, ZeroThreadsResolvesToHardware) {
  core::SocialTrustConfig cfg;
  Snapshot serial = run_once("PCM", 5, 1, cfg);
  Snapshot hw = run_once("PCM", 5, 0, cfg);  // hardware concurrency
  expect_identical(serial, hw, "threads=0");
}

TEST(ParallelEquivalenceConfig, InstrumentationPreservesBitIdentity) {
  // The obs layer (src/obs/) is observation-only: running the identical
  // simulation with instrumentation off and on — serial and parallel —
  // must produce bit-identical adjusted ratings, reports, flagged sets,
  // and reputations. This is the determinism half of the obs overhead
  // contract (docs/OBSERVABILITY.md); bench_parallel_update --obs checks
  // the same property at P2P scale.
  obs::Obs::instance().configure({});  // baseline: disabled
  Snapshot off_serial = run_once("MMM", 17, 1);
  Snapshot off_parallel = run_once("MMM", 17, 4);

  obs::StObsConfig cfg;
  cfg.enabled = true;  // in-memory metrics + snapshots, no file
  obs::Obs::instance().configure(cfg);
  Snapshot on_serial = run_once("MMM", 17, 1);
  Snapshot on_parallel = run_once("MMM", 17, 4);
  // The instrumented runs must actually have recorded something, or this
  // test would vacuously compare two disabled runs.
  EXPECT_GT(obs::Obs::instance().snapshot_count(), 0U);
  EXPECT_GT(obs::Obs::instance()
                .registry()
                .counter("socialtrust.intervals")
                .value(),
            0U);
  obs::Obs::instance().configure({});  // leave the process clean

  expect_identical(off_serial, on_serial, "obs on vs off, serial");
  expect_identical(off_serial, on_parallel, "obs on vs off, parallel");
  expect_identical(off_serial, off_parallel, "obs off, serial vs parallel");
}

}  // namespace
}  // namespace st
