// Sharded-vs-centralized differential gate (DESIGN.md §16).
//
// The hard contract: AggregationMode::kSharded with the synchronous
// exchange is bit-for-bit equal to kCentralized — adjusted ratings,
// adjustment report, and wrapped-system reputations — at EVERY interval,
// for every inner model, every shard count and every thread count. The
// gossip exchange relaxes exactness to an epsilon-bounded residual but
// stays fully deterministic for a fixed (seed, shard count).
//
// The matrix below drives 4 inner models x 3 scenario seeds; each
// scenario replays the identical seeded event stream (ratings, social
// churn, whitewashing — the dirty_pair_property_test generator) through
// a centralized oracle and through sharded plugins at shards {1,2,4,8}
// x threads {1,2,4}, comparing snapshots after every interval.
//
// Unit coverage for the pieces rides along: the deterministic
// partitioner, SocialGraph::partition_view / boundary_edges, the
// GossipExchange round schedule and flooding, and the shared
// RevisionTracker scan.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/socialtrust.hpp"
#include "graph/generators.hpp"
#include "reputation/beta.hpp"
#include "reputation/ebay.hpp"
#include "reputation/eigentrust.hpp"
#include "reputation/paper_eigentrust.hpp"
#include "shard/gossip_exchange.hpp"
#include "shard/sharded_aggregator.hpp"
#include "shard/partitioner.hpp"
#include "stats/rng.hpp"

namespace st {
namespace {

using core::InterestProfiles;
using core::SocialTrustPlugin;
using graph::Relationship;
using graph::SocialGraph;
using reputation::Rating;

constexpr std::size_t kNodes = 48;
constexpr std::size_t kInterests = 16;
constexpr std::size_t kIntervals = 10;

constexpr const char* kModelNames[] = {"Ebay", "EigenTrust",
                                       "PaperEigenTrust", "Beta"};

std::unique_ptr<reputation::ReputationSystem> make_inner(int model) {
  switch (model) {
    case 0:
      return std::make_unique<reputation::EbayReputation>(kNodes);
    case 1:
      return std::make_unique<reputation::EigenTrust>(
          kNodes, std::vector<reputation::NodeId>{0, 1});
    case 2:
      return std::make_unique<reputation::PaperEigenTrust>(
          kNodes, std::vector<reputation::NodeId>{0, 1});
    default:
      return std::make_unique<reputation::BetaReputation>(kNodes);
  }
}

::testing::AssertionResult bits_equal(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " != " << b << " (bit patterns differ)";
}

Relationship random_relationship(stats::Rng& rng) {
  return static_cast<Relationship>(rng.index(graph::kRelationshipCount));
}

/// The dirty_pair_property_test event generator: transaction ratings with
/// substrate churn, re-ratings of existing pairs, and low-probability
/// structural / profile edits. Pure function of the rng stream, so two
/// scenario replays from the same seed see identical inputs.
std::vector<Rating> random_interval(stats::Rng& rng, SocialGraph& g,
                                    InterestProfiles& profiles) {
  std::vector<Rating> ratings;
  const std::size_t n_ratings = 40 + rng.index(80);
  for (std::size_t q = 0; q < n_ratings; ++q) {
    const auto rater = static_cast<reputation::NodeId>(rng.index(kNodes));
    auto ratee = static_cast<reputation::NodeId>(rng.index(kNodes));
    if (ratee == rater) ratee = (ratee + 1) % kNodes;
    const auto interest =
        static_cast<reputation::InterestId>(rng.index(kInterests));
    ratings.push_back(Rating{rater, ratee,
                             rng.bernoulli(0.75) ? 1.0 : -1.0, 0, 0,
                             interest});
    if (rng.bernoulli(0.4)) {
      g.record_interaction(rater, ratee);
      profiles.record_request(rater, interest);
    }
  }
  while (rng.bernoulli(0.3)) {
    const auto a = static_cast<graph::NodeId>(rng.index(kNodes));
    auto b = static_cast<graph::NodeId>(rng.index(kNodes));
    if (b == a) b = (b + 1) % kNodes;
    if (rng.bernoulli(0.7)) {
      g.add_relationship(a, b, random_relationship(rng));
    } else {
      g.remove_relationship(a, b, random_relationship(rng));
    }
  }
  while (rng.bernoulli(0.25)) {
    const auto node = static_cast<reputation::NodeId>(rng.index(kNodes));
    const auto interest =
        static_cast<reputation::InterestId>(rng.index(kInterests));
    if (rng.bernoulli(0.5)) {
      profiles.record_request(node, interest);
    } else if (rng.bernoulli(0.5)) {
      profiles.add_interest(node, interest);
    } else {
      profiles.remove_interest(node, interest);
    }
  }
  return ratings;
}

/// Everything one interval produced that the differential gate compares.
struct Snapshot {
  std::vector<Rating> adjusted;
  core::AdjustmentReport report;
  std::vector<double> reputations;
  // Sharded runs only (shards == 0 marks a centralized run).
  std::size_t shards = 0;
  bool converged = false;
  double baseline_residual = 0.0;
  std::size_t pairs_local = 0;
  std::size_t pairs_remote = 0;
};

std::vector<Snapshot> run_scenario(int model, std::uint64_t seed,
                                   const core::SocialTrustConfig& cfg) {
  stats::Rng rng(seed);
  SocialGraph g = graph::watts_strogatz(kNodes, 6, 0.2, rng);
  InterestProfiles profiles(kNodes, kInterests);
  for (graph::NodeId n = 0; n < kNodes; ++n) {
    const reputation::InterestId ints[] = {
        static_cast<reputation::InterestId>(n % kInterests),
        static_cast<reputation::InterestId>((n + 5) % kInterests)};
    profiles.set_interests(n, ints);
  }
  SocialTrustPlugin plugin(make_inner(model), g, profiles, cfg);

  std::vector<Snapshot> out;
  for (std::size_t t = 0; t < kIntervals; ++t) {
    if (t > 2 && rng.bernoulli(0.15)) {
      const auto w =
          static_cast<reputation::NodeId>(2 + rng.index(kNodes - 2));
      plugin.forget_node(w);
      g.clear_node(w);
      profiles.clear_requests(w);
    }
    const std::vector<Rating> ratings = random_interval(rng, g, profiles);
    plugin.update(ratings);

    Snapshot snap;
    auto adj = plugin.last_adjusted();
    snap.adjusted.assign(adj.begin(), adj.end());
    snap.report = plugin.last_report();
    auto rep = plugin.reputations();
    snap.reputations.assign(rep.begin(), rep.end());
    if (const shard::ShardStats* ss = plugin.last_shard_stats()) {
      snap.shards = ss->shards;
      snap.converged = ss->exchange.converged;
      snap.baseline_residual = ss->baseline_residual;
      snap.pairs_local = ss->pairs_local;
      snap.pairs_remote = ss->pairs_remote;
    }
    out.push_back(std::move(snap));
  }
  return out;
}

void expect_identical(const Snapshot& a, const Snapshot& b,
                      const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(a.adjusted.size(), b.adjusted.size());
  for (std::size_t i = 0; i < a.adjusted.size(); ++i) {
    ASSERT_EQ(a.adjusted[i].rater, b.adjusted[i].rater) << i;
    ASSERT_EQ(a.adjusted[i].ratee, b.adjusted[i].ratee) << i;
    ASSERT_TRUE(bits_equal(a.adjusted[i].value, b.adjusted[i].value))
        << "rating " << i;
  }
  ASSERT_EQ(a.report.pairs_total, b.report.pairs_total);
  ASSERT_EQ(a.report.pairs_flagged, b.report.pairs_flagged);
  ASSERT_EQ(a.report.ratings_adjusted, b.report.ratings_adjusted);
  ASSERT_EQ(a.report.b1, b.report.b1);
  ASSERT_EQ(a.report.b2, b.report.b2);
  ASSERT_EQ(a.report.b3, b.report.b3);
  ASSERT_EQ(a.report.b4, b.report.b4);
  ASSERT_TRUE(bits_equal(a.report.mean_weight, b.report.mean_weight));
  ASSERT_EQ(a.report.flagged.size(), b.report.flagged.size());
  for (std::size_t i = 0; i < a.report.flagged.size(); ++i) {
    ASSERT_EQ(a.report.flagged[i].rater, b.report.flagged[i].rater) << i;
    ASSERT_EQ(a.report.flagged[i].ratee, b.report.flagged[i].ratee) << i;
    ASSERT_EQ(a.report.flagged[i].behavior, b.report.flagged[i].behavior)
        << i;
    ASSERT_TRUE(bits_equal(a.report.flagged[i].weight,
                           b.report.flagged[i].weight))
        << i;
  }
  ASSERT_EQ(a.reputations.size(), b.reputations.size());
  for (std::size_t v = 0; v < a.reputations.size(); ++v) {
    ASSERT_TRUE(bits_equal(a.reputations[v], b.reputations[v]))
        << "node " << v;
  }
}

core::SocialTrustConfig base_config() {
  core::SocialTrustConfig cfg;
  cfg.threads = 1;
  return cfg;
}

// ---------------------------------------------------------------------------
// The hard gate: synchronous sharded == centralized, bit for bit, at every
// interval, for shards {1,2,4,8} x threads {1,2,4}.
// ---------------------------------------------------------------------------

class ShardedDifferential
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(ShardedDifferential, SynchronousShardedMatchesCentralizedBitwise) {
  const auto [model, seed] = GetParam();
  const std::vector<Snapshot> oracle =
      run_scenario(model, seed, base_config());

  for (const std::size_t shards : {1UL, 2UL, 4UL, 8UL}) {
    for (const std::size_t threads : {1UL, 2UL, 4UL}) {
      core::SocialTrustConfig cfg = base_config();
      cfg.threads = threads;
      cfg.aggregation = core::AggregationMode::kSharded;
      cfg.exchange = core::ExchangeSchedule::kSynchronous;
      cfg.shards = shards;
      const std::vector<Snapshot> got = run_scenario(model, seed, cfg);
      ASSERT_EQ(oracle.size(), got.size());
      for (std::size_t t = 0; t < oracle.size(); ++t) {
        expect_identical(oracle[t], got[t],
                         "shards=" + std::to_string(shards) +
                             " threads=" + std::to_string(threads) +
                             " interval=" + std::to_string(t));
        EXPECT_EQ(got[t].shards, shards);
        EXPECT_TRUE(got[t].converged);
        EXPECT_EQ(got[t].baseline_residual, 0.0);
        EXPECT_EQ(got[t].pairs_local + got[t].pairs_remote,
                  got[t].report.pairs_total);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Gossip: epsilon-bounded against centralized, deterministic for a fixed
// (seed, shard count), pair accounting exact.
// ---------------------------------------------------------------------------

TEST_P(ShardedDifferential, GossipConvergesWithinEpsilonAndIsDeterministic) {
  const auto [model, seed] = GetParam();
  const std::vector<Snapshot> oracle =
      run_scenario(model, seed, base_config());

  for (const std::size_t shards : {2UL, 8UL}) {
    core::SocialTrustConfig cfg = base_config();
    cfg.threads = 4;
    cfg.aggregation = core::AggregationMode::kSharded;
    cfg.exchange = core::ExchangeSchedule::kGossip;
    cfg.shards = shards;
    // Force the order-statistic sketch path: per-shard pair counts in
    // this scenario comfortably exceed 8 points, so the rebuilt
    // baselines are genuinely approximate, not raw-merged.
    cfg.gossip_summary_points = 8;
    const std::vector<Snapshot> got = run_scenario(model, seed, cfg);
    const std::vector<Snapshot> again = run_scenario(model, seed, cfg);
    ASSERT_EQ(oracle.size(), got.size());
    for (std::size_t t = 0; t < oracle.size(); ++t) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " interval=" + std::to_string(t));
      // Determinism is exact even where the values are approximate.
      expect_identical(got[t], again[t], "replay");
      // The pair population is order-independent bookkeeping: identical.
      EXPECT_EQ(got[t].report.pairs_total, oracle[t].report.pairs_total);
      ASSERT_EQ(got[t].adjusted.size(), oracle[t].adjusted.size());
      EXPECT_TRUE(got[t].converged);
      // The sketches bound how far any shard's rebuilt baselines sit
      // from the exact centralized statistics...
      EXPECT_LT(got[t].baseline_residual, 0.5);
      // ...and the reputations the wrapped system integrates stay close
      // to the centralized ones at every interval.
      ASSERT_EQ(got[t].reputations.size(), oracle[t].reputations.size());
      for (std::size_t v = 0; v < oracle[t].reputations.size(); ++v) {
        EXPECT_NEAR(got[t].reputations[v], oracle[t].reputations[v], 0.15)
            << "node " << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndSeeds, ShardedDifferential,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(11ULL, 22ULL, 33ULL)),
    [](const auto& param_info) {
      return std::string(kModelNames[std::get<0>(param_info.param)]) +
             "_seed" + std::to_string(std::get<1>(param_info.param));
    });

// A capped round budget must stop early, report non-convergence, and stay
// deterministic — shards fall back to their partial views.
TEST(ShardedGossipCapped, RoundBudgetRespectedAndDeterministic) {
  core::SocialTrustConfig cfg = base_config();
  cfg.aggregation = core::AggregationMode::kSharded;
  cfg.exchange = core::ExchangeSchedule::kGossip;
  cfg.shards = 8;
  cfg.gossip_rounds = 1;  // one pairing round: at most 2 summaries known
  const std::vector<Snapshot> a = run_scenario(2, 7ULL, cfg);
  const std::vector<Snapshot> b = run_scenario(2, 7ULL, cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    expect_identical(a[t], b[t], "interval " + std::to_string(t));
    EXPECT_FALSE(a[t].converged) << t;
  }
}

// ---------------------------------------------------------------------------
// Partitioner units.
// ---------------------------------------------------------------------------

TEST(Partitioner, ValidBalancedAndDeterministic) {
  stats::Rng rng(99);
  const SocialGraph g = graph::watts_strogatz(200, 6, 0.1, rng);
  const shard::Partition p = shard::partition_graph(g, 5, 0xABCDEF);
  ASSERT_EQ(p.shards, 5U);
  ASSERT_EQ(p.owner.size(), 200U);
  ASSERT_EQ(p.members.size(), 5U);

  std::size_t total = 0;
  const std::size_t cap = (200 + 4) / 5 + (200 / 5) / 10 + 1;
  for (std::size_t s = 0; s < 5; ++s) {
    EXPECT_LE(p.members[s].size(), cap) << "shard " << s;
    EXPECT_TRUE(std::is_sorted(p.members[s].begin(), p.members[s].end()));
    for (std::size_t k = 0; k < p.members[s].size(); ++k) {
      const graph::NodeId v = p.members[s][k];
      EXPECT_EQ(p.owner[v], s);
      EXPECT_EQ(p.local_index[v], k);
    }
    total += p.members[s].size();
  }
  EXPECT_EQ(total, 200U);
  EXPECT_EQ(p.cut_edges, g.boundary_edges(p.owner).size());
  EXPECT_EQ(p.total_edges, g.edge_count());

  const shard::Partition q = shard::partition_graph(g, 5, 0xABCDEF);
  EXPECT_EQ(p.owner, q.owner);
  const shard::Partition r = shard::partition_graph(g, 5, 0x123456);
  EXPECT_NE(p.owner, r.owner);
}

TEST(Partitioner, EdgelessGraphIsPureInternedHash) {
  // With no adjacency to refine against, the assignment must be exactly
  // the phase-1 hash — the churn-stability anchor: owner(v) never depends
  // on any other node.
  const SocialGraph g(64);
  const std::uint64_t seed = 0x5EED;
  const shard::Partition p = shard::partition_graph(g, 4, seed);
  for (graph::NodeId v = 0; v < 64; ++v) {
    EXPECT_EQ(p.owner[v],
              static_cast<std::uint32_t>(shard::mix64(v ^ seed) % 4));
  }
}

TEST(Partitioner, ShardCountClamped) {
  const SocialGraph g(10);
  EXPECT_EQ(shard::partition_graph(g, 0, 1).shards, 1U);
  EXPECT_EQ(shard::partition_graph(g, 200, 1).shards, 64U);
}

TEST(Partitioner, RefinementDoesNotIncreaseCut) {
  stats::Rng rng(4);
  const SocialGraph g = graph::watts_strogatz(300, 8, 0.05, rng);
  const shard::Partition p = shard::partition_graph(g, 4, 77);
  // The pure hash cut, for reference.
  std::vector<std::uint32_t> hash_owner(300);
  for (graph::NodeId v = 0; v < 300; ++v) {
    hash_owner[v] = static_cast<std::uint32_t>(shard::mix64(v ^ 77ULL) % 4);
  }
  EXPECT_LE(p.cut_edges, g.boundary_edges(hash_owner).size());
}

// ---------------------------------------------------------------------------
// SocialGraph partition plumbing.
// ---------------------------------------------------------------------------

TEST(PartitionView, RowsComeBackInMemberOrder) {
  SocialGraph g(6);
  g.add_relationship(0, 1, Relationship::kFriendship);
  g.add_relationship(2, 3, Relationship::kFriendship);
  g.add_relationship(2, 5, Relationship::kFriendship);
  const std::vector<graph::NodeId> members = {0, 2, 5};
  const auto view = g.partition_view(members);
  ASSERT_EQ(view.size(), 3U);
  EXPECT_EQ(view.row(0).node, 0U);
  ASSERT_EQ(view.row(0).neighbors.size(), 1U);
  EXPECT_EQ(view.row(0).neighbors[0], 1U);
  EXPECT_EQ(view.row(1).node, 2U);
  EXPECT_EQ(view.row(1).neighbors.size(), 2U);
  EXPECT_EQ(view.row(2).node, 5U);
  ASSERT_EQ(view.row(2).neighbors.size(), 1U);
  EXPECT_EQ(view.row(2).neighbors[0], 2U);
}

TEST(BoundaryEdges, CrossOwnerPairsOnlyAscending) {
  SocialGraph g(5);
  g.add_relationship(0, 1, Relationship::kFriendship);  // same shard
  g.add_relationship(1, 2, Relationship::kFriendship);  // cross
  g.add_relationship(3, 4, Relationship::kFriendship);  // cross
  const std::vector<std::uint32_t> owner = {0, 0, 1, 1, 0};
  const auto edges = g.boundary_edges(owner);
  ASSERT_EQ(edges.size(), 2U);
  EXPECT_EQ(edges[0], (std::pair<graph::NodeId, graph::NodeId>{1, 2}));
  EXPECT_EQ(edges[1], (std::pair<graph::NodeId, graph::NodeId>{3, 4}));
}

// ---------------------------------------------------------------------------
// GossipExchange units.
// ---------------------------------------------------------------------------

TEST(GossipExchange, RoundOrderIsASeededPermutation) {
  const shard::GossipExchange ex(8, 42, 0);
  for (std::size_t r = 0; r < 4; ++r) {
    std::vector<std::uint32_t> order = ex.round_order(r);
    ASSERT_EQ(order.size(), 8U);
    std::vector<std::uint32_t> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    for (std::uint32_t s = 0; s < 8; ++s) EXPECT_EQ(sorted[s], s);
  }
  // Same seed -> same schedule; different seed -> different schedule.
  const shard::GossipExchange ex2(8, 42, 0);
  EXPECT_EQ(ex.round_order(3), ex2.round_order(3));
  const shard::GossipExchange ex3(8, 43, 0);
  bool any_differs = false;
  for (std::size_t r = 0; r < 4 && !any_differs; ++r) {
    any_differs = ex.round_order(r) != ex3.round_order(r);
  }
  EXPECT_TRUE(any_differs);
}

TEST(GossipExchange, FloodingReachesAllKnowAll) {
  const std::vector<std::uint64_t> bytes(8, 100);
  const shard::GossipExchange ex(8, 7, 0);
  std::vector<std::uint64_t> known;
  const shard::ExchangeStats st = ex.run_gossip(bytes, known);
  EXPECT_TRUE(st.converged);
  EXPECT_GT(st.rounds, 0U);
  EXPECT_LE(st.rounds, 4U * 8U + 8U);
  ASSERT_EQ(known.size(), 8U);
  for (std::size_t s = 0; s < 8; ++s) {
    EXPECT_EQ(known[s], (1ULL << 8) - 1) << "shard " << s;
  }
  EXPECT_GT(st.boundary_bytes, 0U);
  EXPECT_GT(st.messages, 0U);
}

TEST(GossipExchange, CappedBudgetStopsEarly) {
  const std::vector<std::uint64_t> bytes(16, 10);
  const shard::GossipExchange ex(16, 7, 1);
  std::vector<std::uint64_t> known;
  const shard::ExchangeStats st = ex.run_gossip(bytes, known);
  EXPECT_EQ(st.rounds, 1U);
  EXPECT_FALSE(st.converged);
  for (std::size_t s = 0; s < 16; ++s) {
    EXPECT_TRUE(known[s] & (1ULL << s)) << "shard must know itself";
    EXPECT_LE(std::popcount(known[s]), 2) << "one round: at most 2 known";
  }
}

TEST(GossipExchange, SynchronousIsOneAllGatherRound) {
  const std::vector<std::uint64_t> bytes = {100, 200, 300, 400};
  const shard::GossipExchange ex(4, 1, 0);
  std::vector<std::uint64_t> known;
  const shard::ExchangeStats st = ex.run_synchronous(bytes, known);
  EXPECT_TRUE(st.converged);
  EXPECT_EQ(st.rounds, 1U);
  EXPECT_EQ(st.messages, 4U * 3U);
  // Every summary travels to the S-1 other shards.
  EXPECT_EQ(st.boundary_bytes, (100U + 200U + 300U + 400U) * 3U);
  for (std::size_t s = 0; s < 4; ++s) EXPECT_EQ(known[s], 0xFULL);
}

TEST(GossipExchange, SingleShardNeedsNoExchange) {
  const std::vector<std::uint64_t> bytes = {123};
  const shard::GossipExchange ex(1, 9, 0);
  std::vector<std::uint64_t> known;
  const shard::ExchangeStats st = ex.run_gossip(bytes, known);
  EXPECT_TRUE(st.converged);
  EXPECT_EQ(st.boundary_bytes, 0U);
  EXPECT_EQ(known[0], 1ULL);
}

// ---------------------------------------------------------------------------
// Shared revision scan.
// ---------------------------------------------------------------------------

TEST(RevisionTracker, DeltaFlagsExactlyTheChangedNodes) {
  SocialGraph g(8);
  InterestProfiles profiles(8, 4);
  core::SocialStateCache::RevisionTracker tracker;

  // First collect: epochs move from their sentinels, everything sweeps.
  const auto& first = tracker.collect(g, profiles);
  EXPECT_TRUE(first.sweep_closeness);
  EXPECT_TRUE(first.sweep_similarity);

  // Quiescent interval: both gates stay shut.
  const auto& idle = tracker.collect(g, profiles);
  EXPECT_FALSE(idle.sweep_closeness);
  EXPECT_FALSE(idle.sweep_similarity);

  // One edge, one profile edit: only the touched nodes flag.
  g.add_relationship(2, 5, Relationship::kFriendship);
  profiles.record_request(3, 1);
  const auto& delta = tracker.collect(g, profiles);
  EXPECT_TRUE(delta.sweep_closeness);
  EXPECT_TRUE(delta.sweep_similarity);
  for (std::size_t v = 0; v < 8; ++v) {
    EXPECT_EQ(delta.graph_changed[v] != 0, v == 2 || v == 5) << v;
    EXPECT_EQ(delta.profile_changed[v] != 0, v == 3) << v;
  }
}

}  // namespace
}  // namespace st
