// Unit tests for st::reputation — the rating ledger, faithful EigenTrust
// (against a dense power-iteration oracle and hand-worked cases), the
// paper's EigenTrust variant, and the eBay baseline's dedup semantics.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "reputation/ebay.hpp"
#include "reputation/eigentrust.hpp"
#include "reputation/ledger.hpp"
#include "reputation/paper_eigentrust.hpp"
#include "stats/rng.hpp"

namespace st::reputation {
namespace {

Rating make(NodeId rater, NodeId ratee, double value) {
  Rating r;
  r.rater = rater;
  r.ratee = ratee;
  r.value = value;
  return r;
}

// --- RatingLedger ------------------------------------------------------------

TEST(Ledger, CycleLifecycle) {
  RatingLedger ledger;
  EXPECT_EQ(ledger.current_cycle(), 0u);
  ledger.record(make(0, 1, 1.0));
  ledger.record(make(0, 1, -1.0));
  EXPECT_EQ(ledger.open_cycle().size(), 2u);
  EXPECT_TRUE(ledger.last_cycle().empty());

  EXPECT_EQ(ledger.close_cycle(), 0u);
  EXPECT_EQ(ledger.current_cycle(), 1u);
  EXPECT_EQ(ledger.last_cycle().size(), 2u);
  EXPECT_TRUE(ledger.open_cycle().empty());
  EXPECT_EQ(ledger.total_ratings(), 2u);
}

TEST(Ledger, PairCountsSplitBySign) {
  RatingLedger ledger;
  ledger.record(make(0, 1, 1.0));
  ledger.record(make(0, 1, 1.0));
  ledger.record(make(0, 1, -1.0));
  ledger.record(make(2, 1, 0.0));  // zero ratings count as neither
  ledger.close_cycle();
  const auto& counts = ledger.last_counts();
  ASSERT_EQ(counts.size(), 2u);
  const auto& pc = counts.at(PairKey{0, 1});
  EXPECT_EQ(pc.positive, 2u);
  EXPECT_EQ(pc.negative, 1u);
  EXPECT_DOUBLE_EQ(pc.value_sum, 1.0);
  const auto& zero = counts.at(PairKey{2, 1});
  EXPECT_EQ(zero.positive, 0u);
  EXPECT_EQ(zero.negative, 0u);
}

TEST(Ledger, AveragePairFrequency) {
  RatingLedger ledger;
  for (int i = 0; i < 6; ++i) ledger.record(make(0, 1, 1.0));
  for (int i = 0; i < 2; ++i) ledger.record(make(2, 3, 1.0));
  ledger.close_cycle();
  EXPECT_DOUBLE_EQ(ledger.average_pair_frequency(), 4.0);
}

TEST(Ledger, StampsCycleOnRecord) {
  RatingLedger ledger;
  ledger.record(make(0, 1, 1.0));
  ledger.close_cycle();
  ledger.record(make(0, 1, 1.0));
  ledger.close_cycle();
  EXPECT_EQ(ledger.last_cycle()[0].cycle, 1u);
}

TEST(Ledger, ClearResetsEverything) {
  RatingLedger ledger;
  ledger.record(make(0, 1, 1.0));
  ledger.close_cycle();
  ledger.clear();
  EXPECT_EQ(ledger.current_cycle(), 0u);
  EXPECT_EQ(ledger.total_ratings(), 0u);
  EXPECT_TRUE(ledger.last_cycle().empty());
}

// --- EigenTrust (faithful) ----------------------------------------------------

TEST(EigenTrustTest, InitialIsTeleportDistribution) {
  EigenTrust et(4, {0, 1});
  EXPECT_DOUBLE_EQ(et.reputation(0), 0.5);
  EXPECT_DOUBLE_EQ(et.reputation(1), 0.5);
  EXPECT_DOUBLE_EQ(et.reputation(2), 0.0);
}

TEST(EigenTrustTest, NoPretrustedFallsBackToUniform) {
  EigenTrust et(4, {});
  for (NodeId v = 0; v < 4; ++v) EXPECT_DOUBLE_EQ(et.reputation(v), 0.25);
}

TEST(EigenTrustTest, OutputIsProbabilityVector) {
  stats::Rng rng(5);
  EigenTrust et(10, {0});
  std::vector<Rating> ratings;
  for (int i = 0; i < 300; ++i) {
    ratings.push_back(make(static_cast<NodeId>(rng.index(10)),
                           static_cast<NodeId>(rng.index(10)),
                           rng.bernoulli(0.7) ? 1.0 : -1.0));
  }
  et.update(ratings);
  double sum = 0.0;
  for (double r : et.reputations()) {
    EXPECT_GE(r, 0.0);
    sum += r;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(EigenTrustTest, FixedPointSatisfiesUpdateEquation) {
  // t = (1-a) C^T t + a p must hold at convergence.
  stats::Rng rng(7);
  const std::size_t n = 6;
  EigenTrust et(n, {0});
  std::vector<Rating> ratings;
  for (int i = 0; i < 100; ++i) {
    auto a = static_cast<NodeId>(rng.index(n));
    auto b = static_cast<NodeId>(rng.index(n));
    if (a == b) continue;
    ratings.push_back(make(a, b, 1.0));
  }
  et.update(ratings);
  auto t = et.reputations();
  // Rebuild C from local_trust and apply one more update step by hand.
  std::vector<double> next(n, 0.0);
  std::vector<bool> empty_row(n, true);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      double c = et.local_trust(i, j);
      if (c > 0.0) empty_row[i] = false;
      next[j] += c * t[i];
    }
  }
  double empty_mass = 0.0;
  for (NodeId i = 0; i < n; ++i)
    if (empty_row[i]) empty_mass += t[i];
  const double a = et.config().pretrusted_weight;
  for (NodeId j = 0; j < n; ++j) {
    double p = (j == 0) ? 1.0 : 0.0;
    double expect = (1.0 - a) * (next[j] + empty_mass * p) + a * p;
    EXPECT_NEAR(expect, t[j], 1e-6) << "j=" << j;
  }
}

TEST(EigenTrustTest, LocalTrustClampsNegativesAndNormalizes) {
  EigenTrust et(3, {0});
  std::vector<Rating> ratings{make(0, 1, 3.0), make(0, 2, -5.0)};
  et.update(ratings);
  EXPECT_DOUBLE_EQ(et.local_trust(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(et.local_trust(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(et.raw_trust(0, 2), -5.0);
}

TEST(EigenTrustTest, PretrustedTeleportGuaranteesFloor) {
  // With teleport weight a, every pretrusted node holds at least a/|P|.
  EigenTrust et(8, {0, 1});
  std::vector<Rating> ratings;
  // Everyone praises node 7 heavily.
  for (NodeId i = 0; i < 7; ++i)
    for (int k = 0; k < 50; ++k) ratings.push_back(make(i, 7, 1.0));
  et.update(ratings);
  EXPECT_GE(et.reputation(0), 0.5 / 2.0 - 1e-9);
  EXPECT_GE(et.reputation(1), 0.5 / 2.0 - 1e-9);
}

TEST(EigenTrustTest, IgnoresSelfAndOutOfRangeRatings) {
  EigenTrust et(3, {0});
  std::vector<Rating> ratings{make(1, 1, 5.0), make(9, 1, 5.0),
                              make(1, 9, 5.0)};
  et.update(ratings);
  EXPECT_DOUBLE_EQ(et.raw_trust(1, 1), 0.0);
}

TEST(EigenTrustTest, ResetRestoresInitialState) {
  EigenTrust et(3, {0});
  std::vector<Rating> ratings{make(1, 2, 1.0)};
  et.update(ratings);
  et.reset();
  EXPECT_DOUBLE_EQ(et.reputation(0), 1.0);
  EXPECT_DOUBLE_EQ(et.raw_trust(1, 2), 0.0);
}

TEST(EigenTrustTest, ConvergesWithinIterationBudget) {
  stats::Rng rng(11);
  EigenTrust et(50, {0, 1, 2});
  std::vector<Rating> ratings;
  for (int i = 0; i < 3000; ++i) {
    ratings.push_back(make(static_cast<NodeId>(rng.index(50)),
                           static_cast<NodeId>(rng.index(50)), 1.0));
  }
  et.update(ratings);
  EXPECT_LT(et.last_iterations(), et.config().max_iterations);
}

// --- PaperEigenTrust ----------------------------------------------------------

PaperEigenTrustConfig plain_config() {
  // Most unit tests want the raw weighted-accumulation arithmetic without
  // the simulation-scale damping heuristics.
  PaperEigenTrustConfig cfg;
  cfg.weight_prior_mass = 0.0;
  cfg.rater_weight_floor = 0.0;
  cfg.pair_contribution_cap = std::numeric_limits<double>::infinity();
  return cfg;
}

TEST(PaperEigenTrustTest, StartsAtZero) {
  PaperEigenTrust pet(4, {0}, plain_config());
  for (NodeId v = 0; v < 4; ++v) EXPECT_DOUBLE_EQ(pet.reputation(v), 0.0);
}

TEST(PaperEigenTrustTest, PretrustedRatingsSeedReputation) {
  PaperEigenTrust pet(4, {0}, plain_config());
  std::vector<Rating> cycle1{make(0, 1, 1.0), make(2, 3, 1.0)};
  pet.update(cycle1);
  // Node 3's rating came from a zero-reputation rater: no effect.
  EXPECT_DOUBLE_EQ(pet.reputation(1), 1.0);
  EXPECT_DOUBLE_EQ(pet.reputation(3), 0.0);
  EXPECT_DOUBLE_EQ(pet.raw_score(1), 0.5);
}

TEST(PaperEigenTrustTest, WeightsUsePreviousCycleReputation) {
  PaperEigenTrust pet(4, {0}, plain_config());
  pet.update(std::vector<Rating>{make(0, 1, 1.0)});  // rep(1) = 1
  // Now node 1 (weight 1.0) and node 2 (weight 0) rate node 3.
  pet.update(std::vector<Rating>{make(1, 3, 1.0), make(2, 3, 1.0)});
  EXPECT_DOUBLE_EQ(pet.raw_score(3), 1.0);
}

TEST(PaperEigenTrustTest, NegativeScoresClampToZeroReputation) {
  PaperEigenTrust pet(3, {0}, plain_config());
  pet.update(std::vector<Rating>{make(0, 1, -1.0), make(0, 2, 1.0)});
  EXPECT_DOUBLE_EQ(pet.reputation(1), 0.0);
  EXPECT_LT(pet.raw_score(1), 0.0);
  EXPECT_DOUBLE_EQ(pet.reputation(2), 1.0);
}

TEST(PaperEigenTrustTest, PairContributionCapSaturates) {
  PaperEigenTrustConfig cfg = plain_config();
  cfg.pair_contribution_cap = 10.0;
  PaperEigenTrust pet(3, {0}, cfg);
  std::vector<Rating> cycle;
  for (int i = 0; i < 500; ++i) cycle.push_back(make(0, 1, 1.0));
  cycle.push_back(make(0, 2, 1.0));
  pet.update(cycle);
  EXPECT_DOUBLE_EQ(pet.raw_score(1), 0.5 * 10.0);
  EXPECT_DOUBLE_EQ(pet.raw_score(2), 0.5 * 1.0);
}

TEST(PaperEigenTrustTest, WeightPriorDampsEarlyWeights) {
  PaperEigenTrustConfig cfg = plain_config();
  cfg.weight_prior_mass = 9.0;
  PaperEigenTrust pet(4, {0}, cfg);
  pet.update(std::vector<Rating>{make(0, 1, 2.0)});  // raw(1) = 1.0
  // Published reputation is share-normalised (1.0), but the *rater weight*
  // is damped: 1.0 / (1.0 + 9.0) = 0.1.
  EXPECT_DOUBLE_EQ(pet.reputation(1), 1.0);
  EXPECT_DOUBLE_EQ(pet.rater_weight(1), 0.1);
  pet.update(std::vector<Rating>{make(1, 2, 1.0)});
  EXPECT_DOUBLE_EQ(pet.raw_score(2), 0.1);
}

TEST(PaperEigenTrustTest, WeightFloorKeepsFreshRatersAlive) {
  PaperEigenTrustConfig cfg = plain_config();
  cfg.rater_weight_floor = 0.01;
  PaperEigenTrust pet(3, {0}, cfg);
  pet.update(std::vector<Rating>{make(1, 2, 1.0)});
  EXPECT_DOUBLE_EQ(pet.raw_score(2), 0.01);
}

TEST(PaperEigenTrustTest, FrequencyAmplification) {
  // Two colluders with earned reputation and high mutual frequency beat a
  // same-reputation honest node rated once per cycle — the vulnerability
  // the paper's Fig. 8(a) demonstrates.
  PaperEigenTrust pet(5, {0}, plain_config());
  // Seed: pretrusted rates colluders (1,2) and honest (3) equally.
  pet.update(std::vector<Rating>{make(0, 1, 1.0), make(0, 2, 1.0),
                                 make(0, 3, 1.0)});
  for (int cycle = 0; cycle < 5; ++cycle) {
    std::vector<Rating> ratings;
    for (int k = 0; k < 40; ++k) {
      ratings.push_back(make(1, 2, 1.0));
      ratings.push_back(make(2, 1, 1.0));
    }
    ratings.push_back(make(0, 3, 1.0));  // honest praise, once
    pet.update(ratings);
  }
  EXPECT_GT(pet.reputation(1), pet.reputation(3));
  EXPECT_GT(pet.reputation(2), pet.reputation(3));
}

TEST(PaperEigenTrustTest, NameMatchesPaperLabel) {
  PaperEigenTrust pet(2, {});
  EXPECT_EQ(pet.name(), "EigenTrust");
}

TEST(PaperEigenTrustTest, Validation) {
  EXPECT_THROW(PaperEigenTrust(0, {}), std::invalid_argument);
  EXPECT_THROW(PaperEigenTrust(2, {5}), std::out_of_range);
  PaperEigenTrust pet(2, {});
  EXPECT_THROW(pet.reputation(2), std::out_of_range);
}

// --- EbayReputation -----------------------------------------------------------

TEST(Ebay, StartsAtZero) {
  EbayReputation ebay(3);
  for (NodeId v = 0; v < 3; ++v) EXPECT_DOUBLE_EQ(ebay.reputation(v), 0.0);
}

TEST(Ebay, PairDedupCountsOneRatingPerCycle) {
  EbayReputation ebay(3);
  std::vector<Rating> cycle;
  for (int i = 0; i < 100; ++i) cycle.push_back(make(0, 1, 1.0));
  cycle.push_back(make(2, 1, 1.0));
  ebay.update(cycle);
  // 100 ratings from node 0 collapse to +1; node 2 contributes +1.
  EXPECT_DOUBLE_EQ(ebay.raw_score(1), 2.0);
}

TEST(Ebay, PairSumDecidesSign) {
  EbayReputation ebay(3);
  std::vector<Rating> cycle{make(0, 1, 1.0), make(0, 1, -1.0),
                            make(0, 1, -1.0)};
  ebay.update(cycle);
  EXPECT_DOUBLE_EQ(ebay.raw_score(1), -1.0);
  EXPECT_DOUBLE_EQ(ebay.reputation(1), 0.0);  // clamped for publication
}

TEST(Ebay, FractionalAdjustedValuesSurvive) {
  // A plugin-downweighted pair (many ratings x tiny weight) must not round
  // back up to a full vote.
  EbayReputation ebay(3);
  std::vector<Rating> cycle;
  for (int i = 0; i < 600; ++i) cycle.push_back(make(0, 1, 1e-4));
  ebay.update(cycle);
  EXPECT_NEAR(ebay.raw_score(1), 0.06, 1e-9);
}

TEST(Ebay, AccumulatesAcrossCycles) {
  EbayReputation ebay(3);
  for (int cycle = 0; cycle < 5; ++cycle) {
    ebay.update(std::vector<Rating>{make(0, 1, 1.0), make(2, 1, 1.0)});
  }
  EXPECT_DOUBLE_EQ(ebay.raw_score(1), 10.0);
}

TEST(Ebay, NormalizationIsShareOfPositiveMass) {
  EbayReputation ebay(4);
  ebay.update(std::vector<Rating>{make(0, 1, 1.0), make(0, 2, 1.0),
                                  make(1, 2, 1.0), make(3, 0, -1.0)});
  // raw: node1=1, node2=2, node0=-1 -> positive mass 3.
  EXPECT_NEAR(ebay.reputation(1), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(ebay.reputation(2), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(ebay.reputation(0), 0.0);
  double sum = std::accumulate(ebay.reputations().begin(),
                               ebay.reputations().end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Ebay, SlowUpdatesRelativeToPaperEigenTrust) {
  // Fig. 19's premise: eBay converges much more slowly. One pretrusted
  // endorsement moves PaperEigenTrust immediately; eBay needs repeated
  // cycles to differentiate.
  PaperEigenTrust pet(3, {0});
  EbayReputation ebay(3);
  std::vector<Rating> praise;
  for (int i = 0; i < 30; ++i) praise.push_back(make(0, 1, 1.0));
  pet.update(praise);
  ebay.update(praise);
  EXPECT_DOUBLE_EQ(pet.reputation(1), 1.0);
  EXPECT_DOUBLE_EQ(ebay.raw_score(1), 1.0);  // one deduped vote only
}

TEST(Ebay, ResetClearsState) {
  EbayReputation ebay(2);
  ebay.update(std::vector<Rating>{make(0, 1, 1.0)});
  ebay.reset();
  EXPECT_DOUBLE_EQ(ebay.raw_score(1), 0.0);
  EXPECT_DOUBLE_EQ(ebay.reputation(1), 0.0);
}

TEST(Ebay, Validation) {
  EXPECT_THROW(EbayReputation(0), std::invalid_argument);
  EbayReputation ebay(2);
  EXPECT_THROW(ebay.reputation(5), std::out_of_range);
  EXPECT_THROW(ebay.raw_score(5), std::out_of_range);
}

// --- cross-system property sweeps ---------------------------------------------

class SystemProperty : public ::testing::TestWithParam<int> {
 public:
  std::unique_ptr<ReputationSystem> make_system(std::size_t n) {
    switch (GetParam()) {
      case 0:
        return std::make_unique<EigenTrust>(n, std::vector<NodeId>{0});
      case 1:
        return std::make_unique<PaperEigenTrust>(n, std::vector<NodeId>{0});
      default:
        return std::make_unique<EbayReputation>(n);
    }
  }
};

TEST_P(SystemProperty, ReputationsStayNormalizedUnderRandomLoad) {
  auto system = make_system(20);
  stats::Rng rng(GetParam() + 100);
  for (int cycle = 0; cycle < 10; ++cycle) {
    std::vector<Rating> ratings;
    for (int i = 0; i < 200; ++i) {
      ratings.push_back(make(static_cast<NodeId>(rng.index(20)),
                             static_cast<NodeId>(rng.index(20)),
                             rng.bernoulli(0.8) ? 1.0 : -1.0));
    }
    system->update(ratings);
    double sum = 0.0;
    for (double r : system->reputations()) {
      EXPECT_GE(r, -1e-12);
      EXPECT_LE(r, 1.0 + 1e-12);
      sum += r;
    }
    EXPECT_LE(sum, 1.0 + 1e-9);
  }
}

TEST_P(SystemProperty, EmptyUpdateIsHarmless) {
  auto system = make_system(5);
  system->update({});
  for (double r : system->reputations()) {
    EXPECT_GE(r, 0.0);
  }
}

TEST_P(SystemProperty, ResetThenUpdateMatchesFreshInstance) {
  auto a = make_system(10);
  auto b = make_system(10);
  stats::Rng rng(17);
  std::vector<Rating> noise;
  for (int i = 0; i < 100; ++i) {
    noise.push_back(make(static_cast<NodeId>(rng.index(10)),
                         static_cast<NodeId>(rng.index(10)), 1.0));
  }
  a->update(noise);
  a->reset();
  std::vector<Rating> load{make(0, 1, 1.0), make(0, 2, 1.0)};
  a->update(load);
  b->update(load);
  for (NodeId v = 0; v < 10; ++v) {
    EXPECT_DOUBLE_EQ(a->reputation(v), b->reputation(v));
  }
}

INSTANTIATE_TEST_SUITE_P(AllSystems, SystemProperty,
                         ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace st::reputation
