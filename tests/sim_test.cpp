// Tests for the P2P simulator, the multi-run experiment harness, and the
// system factories — configuration validation, conservation invariants,
// determinism, and the Section 5.1 mechanics (capacity, activity, roles).

#include <gtest/gtest.h>

#include <set>

#include "collusion/models.hpp"
#include "sim/experiment.hpp"
#include "sim/factories.hpp"
#include "sim/simulator.hpp"

namespace st::sim {
namespace {

SimConfig tiny_config() {
  SimConfig cfg;
  cfg.node_count = 60;
  cfg.pretrusted_count = 4;
  cfg.colluder_count = 10;
  cfg.simulation_cycles = 6;
  cfg.query_cycles_per_cycle = 10;
  return cfg;
}

TEST(Simulator, RoleAssignmentFollowsPaperIdConvention) {
  Simulator sim(tiny_config(), make_paper_eigentrust_factory(), nullptr, 1);
  EXPECT_EQ(sim.pretrusted().size(), 4u);
  EXPECT_EQ(sim.colluders().size(), 10u);
  for (NodeId v = 0; v < 4; ++v)
    EXPECT_EQ(sim.node_type(v), NodeType::kPretrusted);
  for (NodeId v = 4; v < 14; ++v)
    EXPECT_EQ(sim.node_type(v), NodeType::kColluder);
  for (NodeId v = 14; v < 60; ++v)
    EXPECT_EQ(sim.node_type(v), NodeType::kNormal);
}

TEST(Simulator, AuthenticityProbabilitiesPerType) {
  SimConfig cfg = tiny_config();
  cfg.colluder_authentic = 0.3;
  Simulator sim(cfg, make_paper_eigentrust_factory(), nullptr, 1);
  EXPECT_DOUBLE_EQ(sim.authentic_probability(0), 1.0);
  EXPECT_DOUBLE_EQ(sim.authentic_probability(5), 0.3);
  EXPECT_DOUBLE_EQ(sim.authentic_probability(30), 0.8);
}

TEST(Simulator, InterestsRespectConfiguredRange) {
  Simulator sim(tiny_config(), make_paper_eigentrust_factory(), nullptr, 2);
  for (NodeId v = 0; v < 60; ++v) {
    auto ranked = sim.interest_ranking(v);
    EXPECT_GE(ranked.size(), 1u);
    EXPECT_LE(ranked.size(), 10u);
    std::set<InterestId> distinct(ranked.begin(), ranked.end());
    EXPECT_EQ(distinct.size(), ranked.size());
    for (InterestId c : ranked) EXPECT_LT(c, 20);
    // Ranking must match the declared profile as a set.
    auto declared = sim.profiles().declared(v);
    EXPECT_EQ(distinct,
              std::set<InterestId>(declared.begin(), declared.end()));
  }
}

TEST(Simulator, RunProducesConsistentTallies) {
  Simulator sim(tiny_config(), make_paper_eigentrust_factory(), nullptr, 3);
  RunResult result = sim.run();
  EXPECT_GT(result.total_requests, 0u);
  EXPECT_EQ(result.total_requests,
            result.authentic_services + result.inauthentic_services);
  EXPECT_LE(result.requests_to_colluders, result.total_requests);
  EXPECT_LE(result.requests_to_pretrusted, result.total_requests);
  EXPECT_EQ(result.fake_ratings, 0u);  // no strategy attached
  EXPECT_EQ(result.final_reputation.size(), 60u);
  EXPECT_EQ(result.colluder_history.size(), 10u);
  for (const auto& history : result.colluder_history) {
    EXPECT_EQ(history.size(), 6u);
  }
  EXPECT_EQ(result.pretrusted_mean_by_cycle.size(), 6u);
}

TEST(Simulator, ActivityBoundsRequestVolume) {
  // Every node issues at most one request per query cycle.
  SimConfig cfg = tiny_config();
  Simulator sim(cfg, make_paper_eigentrust_factory(), nullptr, 4);
  RunResult result = sim.run();
  std::uint64_t upper =
      cfg.node_count * cfg.query_cycles_per_cycle * cfg.simulation_cycles;
  EXPECT_LE(result.total_requests, upper);
  // Activity is at least 0.5, so at least ~40% of the ceiling materialises
  // (some requests fail to find a server).
  EXPECT_GT(result.total_requests, upper / 3);
}

TEST(Simulator, DeterministicAcrossIdenticalSeeds) {
  RunResult a =
      Simulator(tiny_config(), make_paper_eigentrust_factory(), nullptr, 77)
          .run();
  RunResult b =
      Simulator(tiny_config(), make_paper_eigentrust_factory(), nullptr, 77)
          .run();
  EXPECT_EQ(a.total_requests, b.total_requests);
  EXPECT_EQ(a.final_reputation, b.final_reputation);
}

TEST(Simulator, DifferentSeedsDiffer) {
  RunResult a =
      Simulator(tiny_config(), make_paper_eigentrust_factory(), nullptr, 1)
          .run();
  RunResult b =
      Simulator(tiny_config(), make_paper_eigentrust_factory(), nullptr, 2)
          .run();
  EXPECT_NE(a.final_reputation, b.final_reputation);
}

TEST(Simulator, RunIsSingleShot) {
  Simulator sim(tiny_config(), make_paper_eigentrust_factory(), nullptr, 5);
  sim.run();
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(Simulator, Validation) {
  SimConfig bad = tiny_config();
  bad.node_count = 0;
  EXPECT_THROW(Simulator(bad, make_paper_eigentrust_factory(), nullptr, 1),
               std::invalid_argument);
  SimConfig crowded = tiny_config();
  crowded.pretrusted_count = 40;
  crowded.colluder_count = 40;
  EXPECT_THROW(
      Simulator(crowded, make_paper_eigentrust_factory(), nullptr, 1),
      std::invalid_argument);
  EXPECT_THROW(Simulator(tiny_config(), SystemFactory{}, nullptr, 1),
               std::invalid_argument);
}

TEST(Simulator, SubmitRatingRecordsInteractionAndProfile) {
  Simulator sim(tiny_config(), make_paper_eigentrust_factory(), nullptr, 6);
  double before = sim.social_graph().interaction(1, 2);
  InterestId interest = sim.interest_ranking(1).front();
  double requests_before = sim.profiles().total_requests(1);
  sim.submit_rating(1, 2, 1.0, interest, /*is_transaction=*/true);
  EXPECT_DOUBLE_EQ(sim.social_graph().interaction(1, 2), before + 1.0);
  EXPECT_DOUBLE_EQ(sim.profiles().total_requests(1), requests_before + 1.0);
  // Fake ratings count as interactions but not as requests.
  sim.submit_rating(1, 2, 1.0, interest, /*is_transaction=*/false);
  EXPECT_DOUBLE_EQ(sim.social_graph().interaction(1, 2), before + 2.0);
  EXPECT_DOUBLE_EQ(sim.profiles().total_requests(1), requests_before + 1.0);
}

TEST(Simulator, ConvergenceCycleSemantics) {
  // A colluder whose reputation stays ~0 the whole run converges at 0; the
  // sentinel cycles+1 marks "never converged".
  SimConfig cfg = tiny_config();
  cfg.colluder_authentic = 0.2;
  Simulator sim(cfg, make_paper_eigentrust_factory(), nullptr, 7);
  RunResult result = sim.run();
  for (std::uint32_t c : result.colluder_convergence_cycle) {
    EXPECT_LE(c, cfg.simulation_cycles + 1);
  }
}

// --- experiment harness ---------------------------------------------------------

TEST(Experiment, AggregatesAcrossRuns) {
  ExperimentConfig config;
  config.sim = tiny_config();
  config.runs = 3;
  config.base_seed = 9;
  AggregateResult agg = run_experiment(
      config, make_paper_eigentrust_factory(), StrategyFactory{});
  EXPECT_EQ(agg.per_run.size(), 3u);
  EXPECT_EQ(agg.mean_final_reputation.size(), 60u);
  EXPECT_EQ(agg.ci_final_reputation.size(), 60u);
  EXPECT_EQ(agg.colluder_share.count(), 3u);
  EXPECT_EQ(agg.pooled_convergence_cycles.size(), 3u * 10u);
}

TEST(Experiment, DeterministicGivenBaseSeed) {
  ExperimentConfig config;
  config.sim = tiny_config();
  config.runs = 2;
  config.base_seed = 33;
  auto a = run_experiment(config, make_paper_eigentrust_factory(),
                          StrategyFactory{});
  auto b = run_experiment(config, make_paper_eigentrust_factory(),
                          StrategyFactory{});
  EXPECT_EQ(a.mean_final_reputation, b.mean_final_reputation);
  EXPECT_DOUBLE_EQ(a.colluder_share.mean(), b.colluder_share.mean());
}

TEST(Experiment, ParallelMatchesSequential) {
  ExperimentConfig config;
  config.sim = tiny_config();
  config.runs = 4;
  config.base_seed = 5;
  auto sequential = run_experiment(config, make_paper_eigentrust_factory(),
                                   StrategyFactory{}, nullptr);
  util::ThreadPool pool(4);
  auto parallel = run_experiment(config, make_paper_eigentrust_factory(),
                                 StrategyFactory{}, &pool);
  EXPECT_EQ(sequential.mean_final_reputation,
            parallel.mean_final_reputation);
}

TEST(Experiment, RejectsZeroRuns) {
  ExperimentConfig config;
  config.sim = tiny_config();
  config.runs = 0;
  EXPECT_THROW(run_experiment(config, make_paper_eigentrust_factory(),
                              StrategyFactory{}),
               std::invalid_argument);
}

// --- factories ------------------------------------------------------------------

TEST(Factories, NamesMatchPaperLabels) {
  auto check = [](const SystemFactory& factory, std::string_view name) {
    graph::SocialGraph g(10);
    core::InterestProfiles p(10, 4);
    auto system = factory(g, p, {0}, 10);
    EXPECT_EQ(system->name(), name);
    EXPECT_EQ(system->size(), 10u);
  };
  check(make_eigentrust_factory(), "EigenTrust");
  check(make_paper_eigentrust_factory(), "EigenTrust");
  check(make_ebay_factory(), "eBay");
  check(make_socialtrust_factory(make_ebay_factory()), "eBay+SocialTrust");
  check(make_socialtrust_factory(make_paper_eigentrust_factory()),
        "EigenTrust+SocialTrust");
  check(make_distributed_socialtrust_factory(make_ebay_factory(),
                                             core::SocialTrustConfig{}, 4),
        "eBay+SocialTrust(distributed)");
}

class StickyProperty : public ::testing::TestWithParam<bool> {};

TEST_P(StickyProperty, RunCompletesUnderBothSelectionModes) {
  SimConfig cfg = tiny_config();
  cfg.sticky_selection = GetParam();
  Simulator sim(cfg, make_paper_eigentrust_factory(), nullptr, 11);
  RunResult result = sim.run();
  EXPECT_GT(result.total_requests, 0u);
}

INSTANTIATE_TEST_SUITE_P(Modes, StickyProperty, ::testing::Bool());

}  // namespace
}  // namespace st::sim
