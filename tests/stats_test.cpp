// Unit tests for st::stats — RNG determinism, distribution shape,
// summary/correlation/histogram math against hand-computed values.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <vector>

#include "stats/correlation.hpp"
#include "stats/distributions.hpp"
#include "stats/histogram.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"

namespace st::stats {
namespace {

// --- Rng -------------------------------------------------------------------

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u32(), b.next_u32());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(123), b(124);
  int differences = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.next_u32() != b.next_u32()) ++differences;
  }
  EXPECT_GT(differences, 28);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformU64RespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    auto v = rng.uniform_u64(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformU64CoversRange) {
  Rng rng(5);
  std::array<int, 5> seen{};
  for (int i = 0; i < 5000; ++i) ++seen[rng.uniform_u64(0, 4)];
  for (int count : seen) EXPECT_GT(count, 800);
}

TEST(Rng, UniformI64NegativeRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform_i64(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(2);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(3);
  Accumulator acc;
  for (int i = 0; i < 50000; ++i) acc.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(acc.mean(), 10.0, 0.05);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(4);
  Accumulator acc;
  for (int i = 0; i < 50000; ++i) acc.add(rng.exponential(2.0));
  EXPECT_NEAR(acc.mean(), 0.5, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(6);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(std::span<int>(v));
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(8);
  auto sample = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(std::unique(sample.begin(), sample.end()), sample.end());
  for (std::size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(Rng, SampleWithoutReplacementClampsK) {
  Rng rng(8);
  auto sample = rng.sample_without_replacement(5, 10);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng parent(42);
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, SplitDeterministic) {
  Rng p1(42), p2(42);
  Rng a = p1.split(7);
  Rng b = p2.split(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

// --- Distributions ----------------------------------------------------------

TEST(Zipf, PmfSumsToOne) {
  ZipfDistribution z(10, 1.0);
  double sum = 0.0;
  for (std::size_t k = 0; k < 10; ++k) sum += z.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Zipf, RankZeroMostLikely) {
  ZipfDistribution z(10, 1.2);
  for (std::size_t k = 1; k < 10; ++k) EXPECT_GT(z.pmf(0), z.pmf(k));
}

TEST(Zipf, EmpiricalMatchesPmf) {
  ZipfDistribution z(5, 1.0);
  Rng rng(10);
  std::array<int, 5> counts{};
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) ++counts[z(rng)];
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / kN, z.pmf(k), 0.01);
  }
}

TEST(Zipf, RejectsBadArgs) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfDistribution(5, 0.0), std::invalid_argument);
  EXPECT_THROW(ZipfDistribution(5, -1.0), std::invalid_argument);
}

TEST(BoundedParetoTest, StaysInRange) {
  BoundedPareto bp(1.0, 100.0, 1.5);
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    double x = bp(rng);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 100.0);
  }
}

TEST(BoundedParetoTest, HeavyTail) {
  BoundedPareto bp(1.0, 1000.0, 1.0);
  Rng rng(12);
  int below10 = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    if (bp(rng) < 10.0) ++below10;
  }
  // For alpha=1 on [1,1000]: P(X < 10) = (1 - 10^-1)/(1 - 1000^-1) ~ 0.9.
  EXPECT_NEAR(static_cast<double>(below10) / kN, 0.9, 0.02);
}

TEST(BoundedParetoTest, RejectsBadArgs) {
  EXPECT_THROW(BoundedPareto(0.0, 10.0, 1.0), std::invalid_argument);
  EXPECT_THROW(BoundedPareto(10.0, 5.0, 1.0), std::invalid_argument);
  EXPECT_THROW(BoundedPareto(1.0, 10.0, 0.0), std::invalid_argument);
}

TEST(Discrete, MatchesWeights) {
  std::vector<double> weights{1.0, 2.0, 3.0, 4.0};
  DiscreteDistribution d(weights);
  Rng rng(13);
  std::array<int, 4> counts{};
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) ++counts[d(rng)];
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / kN, weights[k] / 10.0, 0.01);
  }
}

TEST(Discrete, NormalizedProbabilities) {
  std::vector<double> weights{2.0, 6.0};
  DiscreteDistribution d(weights);
  EXPECT_NEAR(d.probability(0), 0.25, 1e-12);
  EXPECT_NEAR(d.probability(1), 0.75, 1e-12);
}

TEST(Discrete, SingleElement) {
  std::vector<double> weights{5.0};
  DiscreteDistribution d(weights);
  Rng rng(14);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d(rng), 0u);
}

TEST(Discrete, ZeroWeightNeverSampled) {
  std::vector<double> weights{0.0, 1.0, 0.0};
  DiscreteDistribution d(weights);
  Rng rng(15);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(d(rng), 1u);
}

TEST(Discrete, RejectsBadInput) {
  std::vector<double> empty;
  EXPECT_THROW(DiscreteDistribution{empty}, std::invalid_argument);
  std::vector<double> negative{1.0, -1.0};
  EXPECT_THROW(DiscreteDistribution{negative}, std::invalid_argument);
  std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW(DiscreteDistribution{zeros}, std::invalid_argument);
}

// --- Accumulator ------------------------------------------------------------

TEST(AccumulatorTest, KnownValues) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance with n-1 denominator: 32/7.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(AccumulatorTest, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(AccumulatorTest, MergeEqualsSequential) {
  Accumulator whole, left, right;
  Rng rng(16);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.normal(3.0, 1.5);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(AccumulatorTest, MergeWithEmpty) {
  Accumulator a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(ConfidenceInterval, FiveRuns) {
  // n=5 (paper's run count): CI = t(4, .975) * s / sqrt(5) = 2.776 s/sqrt(5)
  Accumulator acc;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) acc.add(x);
  double s = acc.stddev();
  EXPECT_NEAR(confidence_interval95(acc), 2.776 * s / std::sqrt(5.0), 1e-9);
}

TEST(ConfidenceInterval, DegenerateCases) {
  Accumulator acc;
  EXPECT_EQ(confidence_interval95(acc), 0.0);
  acc.add(1.0);
  EXPECT_EQ(confidence_interval95(acc), 0.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 17.5);
}

TEST(Percentile, EmptyAndSingle) {
  std::vector<double> empty;
  EXPECT_EQ(percentile(empty, 50.0), 0.0);
  std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(percentile(one, 50.0), 7.0);
}

// --- Correlation ------------------------------------------------------------

TEST(Correlation, PerfectLinear) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  EXPECT_NEAR(paper_correlation(x, y), 1.0, 1e-12);
  EXPECT_NEAR(linear_slope(x, y), 2.0, 1e-12);
}

TEST(Correlation, PerfectNegative) {
  std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y{8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
  // The paper's C is r^2, so it stays 1 for negative association.
  EXPECT_NEAR(paper_correlation(x, y), 1.0, 1e-12);
}

TEST(Correlation, IndependentNearZero) {
  Rng rng(17);
  std::vector<double> x, y;
  for (int i = 0; i < 20000; ++i) {
    x.push_back(rng.uniform());
    y.push_back(rng.uniform());
  }
  EXPECT_NEAR(pearson(x, y), 0.0, 0.03);
  EXPECT_LT(paper_correlation(x, y), 0.01);
}

TEST(Correlation, ConstantSeriesIsZero) {
  std::vector<double> x{1, 1, 1, 1};
  std::vector<double> y{1, 2, 3, 4};
  EXPECT_EQ(pearson(x, y), 0.0);
  EXPECT_EQ(paper_correlation(x, y), 0.0);
  EXPECT_EQ(linear_slope(x, y), 0.0);
}

TEST(Correlation, TooShortIsZero) {
  std::vector<double> x{1};
  std::vector<double> y{2};
  EXPECT_EQ(pearson(x, y), 0.0);
}

// --- Histogram / CDF --------------------------------------------------------

TEST(HistogramTest, BasicBinning) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.7);
  h.add(9.9);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.density(1), 0.5);
}

TEST(HistogramTest, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(7.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(HistogramTest, CumulativeReachesOne) {
  Histogram h(0.0, 1.0, 5);
  Rng rng(18);
  for (int i = 0; i < 1000; ++i) h.add(rng.uniform());
  EXPECT_DOUBLE_EQ(h.cumulative(4), 1.0);
  EXPECT_LE(h.cumulative(1), h.cumulative(3));
}

TEST(HistogramTest, BinGeometry) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.bin_lower(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_center(3), 3.5);
}

TEST(HistogramTest, RejectsBadArgs) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 0.0, 4), std::invalid_argument);
}

TEST(EmpiricalCdf, StepsAndDuplicates) {
  std::vector<double> v{3.0, 1.0, 2.0, 2.0};
  auto cdf = empirical_cdf(v);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].cumulative, 0.25);
  EXPECT_DOUBLE_EQ(cdf[1].value, 2.0);
  EXPECT_DOUBLE_EQ(cdf[1].cumulative, 0.75);
  EXPECT_DOUBLE_EQ(cdf[2].cumulative, 1.0);
}

TEST(EmpiricalCdf, Evaluation) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  auto cdf = empirical_cdf(v);
  EXPECT_DOUBLE_EQ(cdf_at(cdf, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf_at(cdf, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf_at(cdf, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf_at(cdf, 100.0), 1.0);
}

// --- Property sweeps (parameterised) ----------------------------------------

class ZipfProperty : public ::testing::TestWithParam<double> {};

TEST_P(ZipfProperty, MonotoneDecreasingPmf) {
  ZipfDistribution z(20, GetParam());
  for (std::size_t k = 1; k < 20; ++k) {
    EXPECT_GE(z.pmf(k - 1), z.pmf(k) - 1e-15)
        << "exponent=" << GetParam() << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfProperty,
                         ::testing::Values(0.5, 0.8, 1.0, 1.2, 1.6, 2.0));

class RngSeedProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedProperty, UniformStatistics) {
  Rng rng(GetParam());
  Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(rng.uniform());
  EXPECT_NEAR(acc.mean(), 0.5, 0.02);
  EXPECT_NEAR(acc.variance(), 1.0 / 12.0, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedProperty,
                         ::testing::Values(1u, 42u, 1337u, 0xdeadbeefu,
                                           0xffffffffffffffffull));

}  // namespace
}  // namespace st::stats
