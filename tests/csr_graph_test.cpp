// CSR equivalence suite (DESIGN.md §15). The CSR refactor's contract is
// that representation is unobservable: every public accessor and every
// revision/epoch counter of the CSR-backed SocialGraph/InterestProfiles
// must match a faithful port of the pre-CSR vector-of-vectors layout on
// ANY mutation sequence, and compaction timing (threshold-triggered or
// explicit begin_interval()) must be invisible. The suites here replay
// randomized mutation mixes — relationship add/remove, interactions,
// clear_node, whitewashing re-entry — against both representations and
// compare exhaustively, then check rebuild determinism, memory
// accounting, and the end-to-end plugin differential at threads {1,2,4}.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/similarity.hpp"
#include "core/socialtrust.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/reference_graph.hpp"
#include "graph/social_graph.hpp"
#include "reputation/paper_eigentrust.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"

namespace st {
namespace {

using graph::NodeId;
using graph::ReferenceSocialGraph;
using graph::Relationship;
using graph::SocialGraph;

::testing::AssertionResult bits_equal(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " != " << b << " (bit patterns differ)";
}

// ---------------------------------------------------------------------------
// SocialGraph vs ReferenceSocialGraph

/// Compares every public accessor over every node/pair. O(n^2) — keep n
/// small; the point is exhaustiveness, not scale.
void expect_graphs_identical(const SocialGraph& csr,
                             const ReferenceSocialGraph& ref,
                             const std::string& label) {
  SCOPED_TRACE(label);
  const auto n = static_cast<NodeId>(csr.size());
  ASSERT_EQ(csr.size(), ref.size());
  EXPECT_EQ(csr.edge_count(), ref.edge_count());

  EXPECT_EQ(csr.epoch(), ref.epoch());
  EXPECT_EQ(csr.structure_epoch(), ref.structure_epoch());
  EXPECT_EQ(csr.edge_addition_epoch(), ref.edge_addition_epoch());

  for (NodeId a = 0; a < n; ++a) {
    EXPECT_EQ(csr.degree(a), ref.degree(a)) << "node " << a;
    EXPECT_EQ(csr.revision(a), ref.revision(a)) << "node " << a;
    EXPECT_EQ(csr.structure_revision(a), ref.structure_revision(a))
        << "node " << a;
    EXPECT_TRUE(bits_equal(csr.total_interactions(a),
                           ref.total_interactions(a)))
        << "node " << a;

    const auto nc = csr.neighbors(a);
    const auto nr = ref.neighbors(a);
    ASSERT_EQ(nc.size(), nr.size()) << "node " << a;
    EXPECT_TRUE(std::equal(nc.begin(), nc.end(), nr.begin()))
        << "node " << a;

    for (NodeId b = 0; b < n; ++b) {
      EXPECT_EQ(csr.adjacent(a, b), ref.adjacent(a, b))
          << "pair " << a << "," << b;
      EXPECT_EQ(csr.relationship_mask(a, b), ref.relationship_mask(a, b))
          << "pair " << a << "," << b;
      EXPECT_EQ(csr.relationship_count(a, b), ref.relationship_count(a, b))
          << "pair " << a << "," << b;
      EXPECT_EQ(csr.relationships(a, b), ref.relationships(a, b))
          << "pair " << a << "," << b;
      EXPECT_TRUE(bits_equal(csr.interaction(a, b), ref.interaction(a, b)))
          << "pair " << a << "," << b;
      EXPECT_EQ(csr.common_friends(a, b), ref.common_friends(a, b))
          << "pair " << a << "," << b;
      EXPECT_EQ(csr.distance(a, b), ref.distance(a, b))
          << "pair " << a << "," << b;
      EXPECT_EQ(csr.shortest_path(a, b), ref.shortest_path(a, b))
          << "pair " << a << "," << b;
    }
  }
}

/// One random mutation applied to both representations; op mix weighted
/// toward growth so structure accumulates, with clear_node (whitewash)
/// plus immediate re-entry edges sprinkled in.
void random_op(SocialGraph& csr, ReferenceSocialGraph& ref, NodeId n,
               stats::Rng& rng) {
  const auto a = static_cast<NodeId>(rng.index(n));
  const auto b = static_cast<NodeId>(rng.index(n));
  const auto rel = static_cast<Relationship>(rng.index(graph::kRelationshipCount));
  switch (rng.index(10)) {
    case 0:
    case 1:
    case 2:
    case 3: {
      const bool rc = csr.add_relationship(a, b, rel);
      EXPECT_EQ(rc, ref.add_relationship(a, b, rel));
      break;
    }
    case 4: {
      const bool rc = csr.remove_relationship(a, b, rel);
      EXPECT_EQ(rc, ref.remove_relationship(a, b, rel));
      break;
    }
    case 5:
    case 6:
    case 7: {
      const double count = 1.0 + rng.index(5);
      csr.record_interaction(a, b, count);
      ref.record_interaction(a, b, count);
      break;
    }
    case 8: {  // duplicate adds / zero-count no-ops must agree too
      const bool rc = csr.add_relationship(a, a, rel);
      EXPECT_EQ(rc, ref.add_relationship(a, a, rel));
      csr.record_interaction(a, b, 0.0);
      ref.record_interaction(a, b, 0.0);
      break;
    }
    default: {  // whitewash, then re-enter with a fresh edge + interaction
      csr.clear_node(a);
      ref.clear_node(a);
      if (b != a) {
        csr.add_relationship(a, b, rel);
        ref.add_relationship(a, b, rel);
        csr.record_interaction(b, a, 2.0);
        ref.record_interaction(b, a, 2.0);
      }
      break;
    }
  }
}

TEST(CsrEquivalence, RandomizedMutationSequencesMatchReference) {
  constexpr NodeId kNodes = 24;
  for (std::uint64_t seed : {11u, 23u, 47u}) {
    SocialGraph csr(kNodes);
    ReferenceSocialGraph ref(kNodes);
    stats::Rng rng(seed);
    for (int step = 0; step < 600; ++step) {
      random_op(csr, ref, kNodes, rng);
      if (step % 150 == 149) {
        expect_graphs_identical(
            csr, ref, "seed " + std::to_string(seed) + " step " +
                          std::to_string(step));
      }
    }
    // Explicit compaction must be invisible through every accessor.
    csr.begin_interval();
    expect_graphs_identical(csr, ref,
                            "seed " + std::to_string(seed) + " post-compact");
  }
}

TEST(CsrEquivalence, CompactionTimingIsUnobservable) {
  // Same mutation sequence on two CSR graphs, one compacted every 37 ops
  // and one never explicitly compacted: all accessors and counters must
  // agree — rebuild timing is representation-only.
  constexpr NodeId kNodes = 20;
  SocialGraph eager(kNodes);
  SocialGraph lazy(kNodes);
  ReferenceSocialGraph ref_a(kNodes);
  ReferenceSocialGraph ref_b(kNodes);  // absorbs random_op's mirror calls
  stats::Rng rng_a(7);
  stats::Rng rng_b(7);
  for (int step = 0; step < 500; ++step) {
    random_op(eager, ref_a, kNodes, rng_a);
    random_op(lazy, ref_b, kNodes, rng_b);
    if (step % 37 == 36) eager.begin_interval();
  }
  EXPECT_GT(eager.rebuild_count(), lazy.rebuild_count());
  expect_graphs_identical(eager, ref_a, "eager vs reference");
  expect_graphs_identical(lazy, ref_b, "lazy vs reference");
  // And directly against each other, revisions included.
  for (NodeId v = 0; v < kNodes; ++v) {
    EXPECT_EQ(eager.revision(v), lazy.revision(v));
    EXPECT_EQ(eager.structure_revision(v), lazy.structure_revision(v));
  }
  EXPECT_EQ(eager.epoch(), lazy.epoch());
}

TEST(CsrEquivalence, RebuildTimingIsDeterministic) {
  // Rebuild scheduling is a pure function of the mutation sequence: two
  // graphs fed the identical op stream compact at identical points.
  auto run = [](std::uint64_t seed) {
    SocialGraph g(40);
    stats::Rng rng(seed);
    std::vector<std::uint64_t> trace;
    for (int step = 0; step < 4000; ++step) {
      const auto a = static_cast<NodeId>(rng.index(40));
      const auto b = static_cast<NodeId>(rng.index(40));
      if (rng.bernoulli(0.7)) {
        g.add_relationship(a, b, Relationship::kFriendship);
      } else {
        g.remove_relationship(a, b, Relationship::kFriendship);
      }
      trace.push_back(g.rebuild_count());
    }
    return trace;
  };
  const auto first = run(99);
  const auto second = run(99);
  EXPECT_EQ(first, second);
  EXPECT_GT(first.back(), 0u) << "sequence never hit the rebuild threshold";
}

TEST(CsrEquivalence, ExplicitCompactionDrainsDeltaAndKeepsCounters) {
  SocialGraph g(8);
  g.add_relationship(0, 1, Relationship::kKinship);
  g.record_interaction(0, 1, 3.0);
  g.clear_node(2);  // no-op clear: no tombstones, no bumps
  const auto rev0 = g.revision(0);
  const auto epoch = g.epoch();
  EXPECT_GT(g.delta_mass(), 0u);
  g.begin_interval();
  EXPECT_EQ(g.delta_mass(), 0u);
  EXPECT_EQ(g.rebuild_count(), 1u);
  EXPECT_EQ(g.revision(0), rev0);
  EXPECT_EQ(g.epoch(), epoch);
  g.begin_interval();  // nothing pending: not even a rebuild
  EXPECT_EQ(g.rebuild_count(), 1u);
}

TEST(CsrEquivalence, ClearNodeTombstonesAreInvisibleAndReclaimed) {
  SocialGraph g(6);
  g.record_interaction(0, 1, 2.0);
  g.record_interaction(0, 2, 5.0);
  g.record_interaction(3, 0, 1.0);
  g.begin_interval();
  g.clear_node(0);  // zeroes rows in place (tombstones), no row resize
  EXPECT_TRUE(bits_equal(g.interaction(0, 1), 0.0));
  EXPECT_TRUE(bits_equal(g.interaction(3, 0), 0.0));
  EXPECT_TRUE(bits_equal(g.total_interactions(0), 0.0));
  EXPECT_TRUE(bits_equal(g.total_interactions(3), 0.0));
  // Tombstone revival: a fresh interaction on a cleared target reuses the
  // slot in place.
  g.record_interaction(0, 1, 4.0);
  EXPECT_TRUE(bits_equal(g.interaction(0, 1), 4.0));
  // Serialisation skips tombstones — no "i x y 0" lines.
  std::ostringstream out;
  graph::write_edge_list(out, g);
  EXPECT_EQ(out.str().find(" 0\ni"), std::string::npos);
  g.begin_interval();  // reclaim
  EXPECT_TRUE(bits_equal(g.interaction(0, 2), 0.0));
  EXPECT_TRUE(bits_equal(g.interaction(0, 1), 4.0));
}

TEST(CsrEquivalence, CsrFootprintBeatsReferenceOnGeneratedGraph) {
  stats::Rng rng(5);
  SocialGraph csr = graph::watts_strogatz(2000, 8, 0.1, rng);
  ReferenceSocialGraph ref(csr.size());
  for (NodeId a = 0; a < csr.size(); ++a) {
    for (NodeId b : csr.neighbors(a)) {
      if (b > a) ref.add_relationship(a, b, Relationship::kFriendship);
    }
  }
  const auto after = csr.memory_footprint();
  const auto before = ref.memory_footprint();
  EXPECT_EQ(csr.edge_count(), ref.edge_count());
  EXPECT_LT(after.adjacency_bytes, before.adjacency_bytes);
  EXPECT_LT(after.total(), before.total());
}

// ---------------------------------------------------------------------------
// InterestProfiles vs a reference port of its pre-CSR layout

/// Pre-CSR InterestProfiles: per-node sorted vectors + per-node dense
/// request vectors, exactly as the seed implemented them.
class ReferenceInterestProfiles {
 public:
  using InterestId = core::InterestId;
  using Revision = std::uint64_t;

  ReferenceInterestProfiles(std::size_t node_count, std::size_t categories)
      : categories_(categories),
        declared_(node_count),
        request_counts_(node_count, std::vector<double>(categories, 0.0)),
        request_totals_(node_count, 0.0),
        revisions_(node_count, 0) {}

  void set_interests(NodeId node, std::span<const InterestId> interests) {
    std::vector<InterestId> next;
    for (InterestId id : interests) {
      if (id < categories_) next.push_back(id);
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    if (next != declared_[node]) {
      declared_[node] = std::move(next);
      bump(node);
    }
  }
  void add_interest(NodeId node, InterestId interest) {
    if (interest >= categories_) return;
    auto& set = declared_[node];
    auto it = std::lower_bound(set.begin(), set.end(), interest);
    if (it == set.end() || *it != interest) {
      set.insert(it, interest);
      bump(node);
    }
  }
  void remove_interest(NodeId node, InterestId interest) {
    auto& set = declared_[node];
    auto it = std::lower_bound(set.begin(), set.end(), interest);
    if (it != set.end() && *it == interest) {
      set.erase(it);
      bump(node);
    }
  }
  void record_request(NodeId node, InterestId category, double count) {
    if (category >= categories_ || count <= 0.0) return;
    request_counts_[node][category] += count;
    request_totals_[node] += count;
    bump(node);
  }
  void clear_requests(NodeId node) {
    if (request_totals_[node] == 0.0) return;
    std::fill(request_counts_[node].begin(), request_counts_[node].end(),
              0.0);
    request_totals_[node] = 0.0;
    bump(node);
  }

  std::span<const InterestId> declared(NodeId node) const {
    return declared_[node];
  }
  double request_weight(NodeId node, InterestId category) const {
    if (request_totals_[node] <= 0.0) return 0.0;
    return request_counts_[node][category] / request_totals_[node];
  }
  double total_requests(NodeId node) const { return request_totals_[node]; }
  Revision revision(NodeId node) const { return revisions_[node]; }
  Revision epoch() const { return epoch_; }

 private:
  void bump(NodeId node) {
    ++revisions_[node];
    ++epoch_;
  }
  std::size_t categories_;
  std::vector<std::vector<InterestId>> declared_;
  std::vector<std::vector<double>> request_counts_;
  std::vector<double> request_totals_;
  std::vector<Revision> revisions_;
  Revision epoch_ = 0;
};

TEST(CsrEquivalence, InterestProfilesMatchesReferenceUnderRandomOps) {
  constexpr std::size_t kNodes = 16;
  constexpr std::size_t kCats = 12;
  for (std::uint64_t seed : {3u, 31u}) {
    core::InterestProfiles csr(kNodes, kCats);
    ReferenceInterestProfiles ref(kNodes, kCats);
    stats::Rng rng(seed);
    for (int step = 0; step < 800; ++step) {
      const auto node = static_cast<NodeId>(rng.index(kNodes));
      const auto cat = static_cast<core::InterestId>(rng.index(kCats + 2));
      switch (rng.index(6)) {
        case 0:
        case 1:
          csr.add_interest(node, cat);
          ref.add_interest(node, cat);
          break;
        case 2:
          csr.remove_interest(node, cat);
          ref.remove_interest(node, cat);
          break;
        case 3: {
          std::vector<core::InterestId> set;
          for (std::size_t k = rng.index(5); k > 0; --k) {
            set.push_back(static_cast<core::InterestId>(rng.index(kCats)));
          }
          csr.set_interests(node, set);
          ref.set_interests(node, set);
          break;
        }
        case 4: {
          const double count = 1.0 + rng.index(4);
          csr.record_request(node, cat, count);
          ref.record_request(node, cat, count);
          break;
        }
        default:
          csr.clear_requests(node);
          ref.clear_requests(node);
          break;
      }
      if (step == 400) csr.begin_interval();
    }
    csr.begin_interval();
    SCOPED_TRACE("seed " + std::to_string(seed));
    EXPECT_EQ(csr.epoch(), ref.epoch());
    for (NodeId v = 0; v < kNodes; ++v) {
      EXPECT_EQ(csr.revision(v), ref.revision(v)) << "node " << v;
      EXPECT_TRUE(bits_equal(csr.total_requests(v), ref.total_requests(v)));
      const auto dc = csr.declared(v);
      const auto dr = ref.declared(v);
      ASSERT_EQ(dc.size(), dr.size()) << "node " << v;
      EXPECT_TRUE(std::equal(dc.begin(), dc.end(), dr.begin()))
          << "node " << v;
      for (std::size_t c = 0; c < kCats; ++c) {
        EXPECT_TRUE(bits_equal(
            csr.request_weight(v, static_cast<core::InterestId>(c)),
            ref.request_weight(v, static_cast<core::InterestId>(c))))
            << "node " << v << " cat " << c;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end differential over the CSR core at threads {1, 2, 4}

struct PluginCapture {
  core::SocialTrustPlugin* plugin = nullptr;
};

sim::SystemFactory capture_factory(core::SocialTrustConfig cfg,
                                   PluginCapture& capture) {
  return [cfg, &capture](const graph::SocialGraph& g,
                         const core::InterestProfiles& profiles,
                         const std::vector<sim::NodeId>& pretrusted,
                         std::size_t n) {
    auto inner = std::make_unique<reputation::PaperEigenTrust>(
        n, pretrusted, reputation::PaperEigenTrustConfig{});
    auto plugin = std::make_unique<core::SocialTrustPlugin>(
        std::move(inner), g, profiles, cfg);
    capture.plugin = plugin.get();
    return plugin;
  };
}

std::vector<double> run_reputations(std::size_t threads) {
  sim::SimConfig sim_cfg;
  sim_cfg.node_count = 64;
  sim_cfg.pretrusted_count = 4;
  sim_cfg.colluder_count = 8;
  sim_cfg.query_cycles_per_cycle = 6;
  sim_cfg.simulation_cycles = 3;
  core::SocialTrustConfig cfg;
  cfg.threads = threads;
  PluginCapture capture;
  sim::Simulator simulator(sim_cfg, capture_factory(cfg, capture), nullptr,
                           /*seed=*/1234);
  simulator.run();
  auto reps = capture.plugin->reputations();
  return {reps.begin(), reps.end()};
}

TEST(CsrEquivalence, PluginOverCsrCoreBitIdenticalAcrossThreadCounts) {
  // The Simulator compacts both CSR cores at the top of every update
  // interval, so this exercises rebuild + parallel read paths together.
  const auto serial = run_reputations(1);
  for (std::size_t threads : {2UL, 4UL}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const auto parallel = run_reputations(threads);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t v = 0; v < serial.size(); ++v) {
      EXPECT_TRUE(bits_equal(serial[v], parallel[v])) << "node " << v;
    }
  }
}

}  // namespace
}  // namespace st
