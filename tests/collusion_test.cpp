// Tests for the collusion attack models — partner wiring, role assignment,
// rating emission patterns, compromised-pretrusted and falsified-info
// variants.

#include <gtest/gtest.h>

#include <set>

#include "collusion/models.hpp"
#include "sim/experiment.hpp"
#include "sim/factories.hpp"

namespace st::collusion {
namespace {

using sim::CollusionRole;
using sim::NodeId;
using sim::SimConfig;
using sim::Simulator;

SimConfig tiny_config() {
  SimConfig cfg;
  cfg.node_count = 60;
  cfg.pretrusted_count = 4;
  cfg.colluder_count = 10;
  cfg.simulation_cycles = 3;
  cfg.query_cycles_per_cycle = 5;
  return cfg;
}

template <typename Strategy>
std::pair<std::unique_ptr<Simulator>, Strategy*> make_sim(
    CollusionOptions options = {}, SimConfig cfg = tiny_config(),
    std::uint64_t seed = 42) {
  auto strategy = std::make_unique<Strategy>(options);
  Strategy* raw = strategy.get();
  auto sim = std::make_unique<Simulator>(
      cfg, sim::make_paper_eigentrust_factory(), std::move(strategy), seed);
  return {std::move(sim), raw};
}

// --- PCM ------------------------------------------------------------------------

TEST(Pcm, PairsUpAllColluders) {
  auto [sim, strategy] = make_sim<PairwiseCollusion>();
  EXPECT_EQ(strategy->links().size(), 5u);  // 10 colluders -> 5 pairs
  std::set<NodeId> seen;
  for (const auto& [a, b] : strategy->links()) {
    EXPECT_TRUE(seen.insert(a).second);
    EXPECT_TRUE(seen.insert(b).second);
    EXPECT_EQ(sim->collusion_role(a), CollusionRole::kBoth);
    EXPECT_EQ(sim->collusion_role(b), CollusionRole::kBoth);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Pcm, PartnersWiredAtSocialDistanceOne) {
  auto [sim, strategy] = make_sim<PairwiseCollusion>();
  const auto& cfg = sim->config();
  for (const auto& [a, b] : strategy->links()) {
    EXPECT_TRUE(sim->social_graph().adjacent(a, b));
    std::size_t rels = sim->social_graph().relationship_count(a, b);
    EXPECT_GE(rels, cfg.colluder_relationships_min);
    EXPECT_LE(rels, cfg.colluder_relationships_max);
  }
}

TEST(Pcm, EmitsMutualRatingsAtConfiguredRate) {
  CollusionOptions options;
  options.ratings_per_query_cycle = 7;
  auto [sim, strategy] = make_sim<PairwiseCollusion>(options);
  auto result = sim->run();
  // 5 pairs x 2 directions x 7 ratings x 5 qc x 3 cycles.
  EXPECT_EQ(result.fake_ratings, 5u * 2u * 7u * 5u * 3u);
}

TEST(Pcm, OddColluderCountLeavesOneOut) {
  SimConfig cfg = tiny_config();
  cfg.colluder_count = 7;
  auto [sim, strategy] = make_sim<PairwiseCollusion>({}, cfg);
  EXPECT_EQ(strategy->links().size(), 3u);
}

// --- MCM ------------------------------------------------------------------------

TEST(Mcm, SplitsBoostedAndBoosting) {
  CollusionOptions options;
  options.boosted_count = 3;
  auto [sim, strategy] = make_sim<MultiNodeCollusion>(options);
  EXPECT_EQ(strategy->boosted().size(), 3u);
  EXPECT_EQ(strategy->boosting().size(), 7u);
  for (NodeId b : strategy->boosted())
    EXPECT_EQ(sim->collusion_role(b), CollusionRole::kBoosted);
  for (NodeId b : strategy->boosting())
    EXPECT_EQ(sim->collusion_role(b), CollusionRole::kBoosting);
}

TEST(Mcm, EveryBoosterTargetsOneBoostedNode) {
  CollusionOptions options;
  options.boosted_count = 3;
  auto [sim, strategy] = make_sim<MultiNodeCollusion>(options);
  std::set<NodeId> boosted(strategy->boosted().begin(),
                           strategy->boosted().end());
  EXPECT_EQ(strategy->links().size(), strategy->boosting().size());
  for (const auto& [booster, target] : strategy->links()) {
    EXPECT_TRUE(boosted.count(target));
    EXPECT_FALSE(boosted.count(booster));
  }
}

TEST(Mcm, NoBackRatings) {
  CollusionOptions options;
  options.boosted_count = 3;
  options.ratings_per_query_cycle = 4;
  auto [sim, strategy] = make_sim<MultiNodeCollusion>(options);
  auto result = sim->run();
  // Only boosting -> boosted ratings: 7 boosters x 4 x 5 qc x 3 cycles.
  EXPECT_EQ(result.fake_ratings, 7u * 4u * 5u * 3u);
}

TEST(Mcm, BoostedCountClampedToColluders) {
  CollusionOptions options;
  options.boosted_count = 99;
  auto [sim, strategy] = make_sim<MultiNodeCollusion>(options);
  EXPECT_EQ(strategy->boosted().size(), 10u);
  EXPECT_TRUE(strategy->boosting().empty());
}

// --- MMM ------------------------------------------------------------------------

TEST(Mmm, BoostedNodesRateBack) {
  CollusionOptions options;
  options.boosted_count = 3;
  options.ratings_per_query_cycle = 4;
  options.boosted_back_ratings = 2;
  auto [sim, strategy] = make_sim<MutualMultiNodeCollusion>(options);
  auto result = sim->run();
  // Forward: 7 boosters x 4; back: 7 hits x 2 — per query cycle.
  EXPECT_EQ(result.fake_ratings, (7u * 4u + 7u * 2u) * 5u * 3u);
}

TEST(Mmm, AllColluderPairsWired) {
  CollusionOptions options;
  options.boosted_count = 3;
  auto [sim, strategy] = make_sim<MutualMultiNodeCollusion>(options);
  // Every boosting node is adjacent to every boosted node (distance 1).
  for (NodeId booster : strategy->boosting()) {
    for (NodeId target : strategy->boosted()) {
      EXPECT_TRUE(sim->social_graph().adjacent(booster, target));
    }
  }
}

// --- compromised pretrusted -------------------------------------------------------

TEST(Compromised, MarksAndWiresPretrustedConspirators) {
  CollusionOptions options;
  options.compromised_pretrusted = 2;
  auto [sim, strategy] = make_sim<PairwiseCollusion>(options);
  EXPECT_EQ(strategy->compromised().size(), 2u);
  std::set<NodeId> colluders(sim->colluders().begin(),
                             sim->colluders().end());
  for (NodeId pre : strategy->compromised()) {
    EXPECT_EQ(sim->node_type(pre), sim::NodeType::kPretrusted);
    EXPECT_TRUE(sim->compromised(pre));
  }
}

TEST(Compromised, EmitsExtraRatings) {
  CollusionOptions base;
  base.ratings_per_query_cycle = 3;
  auto [sim_plain, s1] = make_sim<PairwiseCollusion>(base, tiny_config(), 7);
  auto plain = sim_plain->run();

  CollusionOptions comp = base;
  comp.compromised_pretrusted = 2;
  auto [sim_comp, s2] = make_sim<PairwiseCollusion>(comp, tiny_config(), 7);
  auto with = sim_comp->run();
  // Two compromised links x 2 directions x 3 ratings x 5 qc x 3 cycles.
  EXPECT_EQ(with.fake_ratings - plain.fake_ratings, 2u * 2u * 3u * 5u * 3u);
}

TEST(Compromised, ClampedToPretrustedCount) {
  CollusionOptions options;
  options.compromised_pretrusted = 50;
  auto [sim, strategy] = make_sim<PairwiseCollusion>(options);
  EXPECT_EQ(strategy->compromised().size(), 4u);
}

// --- falsified social information ---------------------------------------------------

TEST(Falsified, CollapsesToOneRelationship) {
  CollusionOptions options;
  options.falsify_social_info = true;
  auto [sim, strategy] = make_sim<PairwiseCollusion>(options);
  for (const auto& [a, b] : strategy->links()) {
    EXPECT_EQ(sim->social_graph().relationship_count(a, b), 1u);
  }
}

TEST(Falsified, CollusersDeclareIdenticalInterests) {
  CollusionOptions options;
  options.falsify_social_info = true;
  auto [sim, strategy] = make_sim<PairwiseCollusion>(options);
  auto first = sim->profiles().declared(sim->colluders().front());
  std::vector<sim::InterestId> reference(first.begin(), first.end());
  EXPECT_GE(reference.size(), 1u);
  EXPECT_LE(reference.size(), 10u);
  for (NodeId c : sim->colluders()) {
    auto declared = sim->profiles().declared(c);
    EXPECT_EQ(std::vector<sim::InterestId>(declared.begin(), declared.end()),
              reference);
  }
}

TEST(Falsified, DeclaredSimilarityPerfectButBehaviouralLow) {
  // The counterattack defeats Eq. (7) (declared overlap = 1) but not the
  // behaviour-weighted similarity, because requests still follow real
  // interests. Run a couple of cycles so request histories exist.
  CollusionOptions options;
  options.falsify_social_info = true;
  auto [sim, strategy] = make_sim<PairwiseCollusion>(options);
  auto& profiles = sim->profiles();
  NodeId a = strategy->links().front().first;
  NodeId b = strategy->links().front().second;
  EXPECT_DOUBLE_EQ(profiles.similarity(a, b), 1.0);
  sim->run();
  EXPECT_LT(profiles.weighted_similarity(a, b), 0.9);
}

// --- behavioural integration: every model is suppressed by SocialTrust -------------

class ModelSuppression : public ::testing::TestWithParam<int> {
 public:
  static std::unique_ptr<sim::CollusionStrategy> make_strategy(int kind) {
    CollusionOptions options;
    switch (kind) {
      case 0:
        return std::make_unique<PairwiseCollusion>(options);
      case 1:
        return std::make_unique<MultiNodeCollusion>(options);
      default:
        return std::make_unique<MutualMultiNodeCollusion>(options);
    }
  }
};

TEST_P(ModelSuppression, SocialTrustReducesColluderReputation) {
  // Attack dynamics need a medium-scale network to rise above noise.
  sim::ExperimentConfig config;
  config.sim.node_count = 120;
  config.sim.pretrusted_count = 6;
  config.sim.colluder_count = 18;
  config.sim.colluder_authentic = 0.6;
  config.sim.simulation_cycles = 20;
  config.sim.query_cycles_per_cycle = 15;
  config.runs = 2;
  config.base_seed = 19;
  int kind = GetParam();
  sim::StrategyFactory strategy = [kind] { return make_strategy(kind); };

  auto plain = run_experiment(config, sim::make_paper_eigentrust_factory(),
                              strategy);
  auto guarded = run_experiment(
      config,
      sim::make_socialtrust_factory(sim::make_paper_eigentrust_factory()),
      strategy);
  EXPECT_LT(guarded.colluder_mean.mean(), plain.colluder_mean.mean())
      << "model kind " << kind;
}

INSTANTIATE_TEST_SUITE_P(Models, ModelSuppression, ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace st::collusion
