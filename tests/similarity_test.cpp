// Unit tests for interest profiles and interest similarity (Eq. 7, the
// histogram-intersection hardening, and the literal Eq. 11).

#include <gtest/gtest.h>

#include <vector>

#include "core/similarity.hpp"

namespace st::core {
namespace {

std::vector<InterestId> ids(std::initializer_list<int> list) {
  std::vector<InterestId> out;
  for (int v : list) out.push_back(static_cast<InterestId>(v));
  return out;
}

TEST(Profiles, DeclareSortsAndDeduplicates) {
  InterestProfiles p(2, 10);
  auto set = ids({5, 1, 5, 3, 1});
  p.set_interests(0, set);
  auto declared = p.declared(0);
  EXPECT_EQ(std::vector<InterestId>(declared.begin(), declared.end()),
            ids({1, 3, 5}));
}

TEST(Profiles, DeclareDropsOutOfRangeCategories) {
  InterestProfiles p(1, 4);
  auto set = ids({1, 9, 2});
  p.set_interests(0, set);
  EXPECT_EQ(p.declared(0).size(), 2u);
}

TEST(Profiles, AddRemoveInterest) {
  InterestProfiles p(1, 10);
  p.add_interest(0, 4);
  p.add_interest(0, 2);
  p.add_interest(0, 4);  // duplicate ignored
  EXPECT_EQ(p.declared(0).size(), 2u);
  p.remove_interest(0, 4);
  EXPECT_EQ(std::vector<InterestId>(p.declared(0).begin(),
                                    p.declared(0).end()),
            ids({2}));
  p.remove_interest(0, 9);  // absent: no-op
}

TEST(Profiles, RequestWeightsAreShares) {
  InterestProfiles p(1, 5);
  p.record_request(0, 1, 3.0);
  p.record_request(0, 2, 1.0);
  EXPECT_DOUBLE_EQ(p.request_weight(0, 1), 0.75);
  EXPECT_DOUBLE_EQ(p.request_weight(0, 2), 0.25);
  EXPECT_DOUBLE_EQ(p.request_weight(0, 3), 0.0);
  EXPECT_DOUBLE_EQ(p.total_requests(0), 4.0);
}

TEST(Profiles, RequestWeightZeroWithoutRequests) {
  InterestProfiles p(1, 5);
  EXPECT_DOUBLE_EQ(p.request_weight(0, 1), 0.0);
}

TEST(Profiles, RequestIgnoresInvalidInput) {
  InterestProfiles p(1, 3);
  p.record_request(0, 9, 5.0);   // out-of-range category
  p.record_request(0, 1, -2.0);  // non-positive count
  EXPECT_DOUBLE_EQ(p.total_requests(0), 0.0);
}

TEST(Profiles, EffectiveUnionsDeclaredAndRequested) {
  InterestProfiles p(1, 10);
  p.set_interests(0, ids({1, 2}));
  p.record_request(0, 7, 1.0);
  EXPECT_EQ(p.effective(0), ids({1, 2, 7}));
}

TEST(Profiles, Validation) {
  EXPECT_THROW(InterestProfiles(2, 0), std::invalid_argument);
  InterestProfiles p(2, 3);
  EXPECT_THROW(p.declared(5), std::out_of_range);
  EXPECT_THROW(p.similarity(0, 9), std::out_of_range);
}

// --- Eq. (7) -----------------------------------------------------------------

TEST(Similarity, Eq7HandComputed) {
  InterestProfiles p(2, 10);
  p.set_interests(0, ids({1, 2, 3, 4}));
  p.set_interests(1, ids({3, 4, 5}));
  // |{3,4}| / min(4, 3) = 2/3.
  EXPECT_DOUBLE_EQ(p.similarity(0, 1), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(p.similarity(1, 0), 2.0 / 3.0);  // symmetric
}

TEST(Similarity, IdenticalSetsScoreOne) {
  InterestProfiles p(2, 10);
  p.set_interests(0, ids({2, 4, 6}));
  p.set_interests(1, ids({2, 4, 6}));
  EXPECT_DOUBLE_EQ(p.similarity(0, 1), 1.0);
}

TEST(Similarity, SubsetScoresOne) {
  // min() in the denominator: a strict subset still scores 1.
  InterestProfiles p(2, 10);
  p.set_interests(0, ids({2, 4}));
  p.set_interests(1, ids({2, 4, 6, 8}));
  EXPECT_DOUBLE_EQ(p.similarity(0, 1), 1.0);
}

TEST(Similarity, DisjointSetsScoreZero) {
  InterestProfiles p(2, 10);
  p.set_interests(0, ids({1, 2}));
  p.set_interests(1, ids({3, 4}));
  EXPECT_DOUBLE_EQ(p.similarity(0, 1), 0.0);
}

TEST(Similarity, EmptySetScoresZero) {
  InterestProfiles p(2, 10);
  p.set_interests(1, ids({3}));
  EXPECT_DOUBLE_EQ(p.similarity(0, 1), 0.0);
}

// --- weighted (histogram intersection) ----------------------------------------

TEST(WeightedSimilarity, IdenticalBehaviourScoresOne) {
  InterestProfiles p(2, 10);
  for (NodeId u = 0; u < 2; ++u) {
    p.set_interests(u, ids({1, 2}));
    p.record_request(u, 1, 3.0);
    p.record_request(u, 2, 1.0);
  }
  EXPECT_DOUBLE_EQ(p.weighted_similarity(0, 1), 1.0);
}

TEST(WeightedSimilarity, DisjointBehaviourScoresZero) {
  InterestProfiles p(2, 10);
  p.set_interests(0, ids({1}));
  p.set_interests(1, ids({2}));
  p.record_request(0, 1, 5.0);
  p.record_request(1, 2, 5.0);
  EXPECT_DOUBLE_EQ(p.weighted_similarity(0, 1), 0.0);
}

TEST(WeightedSimilarity, HandComputedIntersection) {
  InterestProfiles p(2, 10);
  p.set_interests(0, ids({1, 2}));
  p.set_interests(1, ids({1, 2}));
  p.record_request(0, 1, 8.0);  // ws(0,1)=0.8, ws(0,2)=0.2
  p.record_request(0, 2, 2.0);
  p.record_request(1, 1, 2.0);  // ws(1,1)=0.2, ws(1,2)=0.8
  p.record_request(1, 2, 8.0);
  // sum of min: min(0.8,0.2) + min(0.2,0.8) = 0.4.
  EXPECT_DOUBLE_EQ(p.weighted_similarity(0, 1), 0.4);
}

TEST(WeightedSimilarity, FalsifiedProfileWithoutRequestsScoresLow) {
  // Section 4.4: declaring the partner's interests without requesting in
  // them buys nothing.
  InterestProfiles p(2, 10);
  p.set_interests(0, ids({1, 2, 3}));
  p.set_interests(1, ids({1, 2, 3}));  // falsified match
  p.record_request(0, 1, 10.0);
  p.record_request(1, 7, 10.0);  // real activity elsewhere
  EXPECT_DOUBLE_EQ(p.weighted_similarity(0, 1), 0.0);
}

TEST(WeightedSimilarity, DeletedInterestStillRevealedByRequests) {
  // Section 4.4: deleting a common interest from the profile does not
  // erase the behavioural trace.
  InterestProfiles p(2, 10);
  p.set_interests(0, ids({5}));  // pruned profile
  p.set_interests(1, ids({1}));
  p.record_request(0, 1, 9.0);  // still requests category 1 heavily
  p.record_request(0, 5, 1.0);
  p.record_request(1, 1, 10.0);
  EXPECT_NEAR(p.weighted_similarity(0, 1), 0.9, 1e-12);
}

// --- literal Eq. (11) ---------------------------------------------------------

TEST(WeightedSimilarityEq11, HandComputed) {
  InterestProfiles p(2, 10);
  p.set_interests(0, ids({1, 2}));
  p.set_interests(1, ids({1, 2, 3}));
  p.record_request(0, 1, 1.0);
  p.record_request(0, 2, 1.0);  // ws(0,*) = 0.5 each
  p.record_request(1, 1, 1.0);
  p.record_request(1, 2, 1.0);
  p.record_request(1, 3, 2.0);  // ws(1,1)=0.25, ws(1,2)=0.25
  // (0.5*0.25 + 0.5*0.25) / min(2, 3) = 0.25 / 2.
  EXPECT_DOUBLE_EQ(p.weighted_similarity_eq11(0, 1), 0.125);
}

TEST(WeightedSimilarityEq11, SelfSimilarityBelowOne) {
  // Documents why the literal formula cannot serve as an anomaly signal:
  // even identical twins score only ~1/k^2.
  InterestProfiles p(2, 10);
  for (NodeId u = 0; u < 2; ++u) {
    p.set_interests(u, ids({1, 2, 3, 4}));
    for (InterestId c = 1; c <= 4; ++c) p.record_request(u, c, 1.0);
  }
  EXPECT_DOUBLE_EQ(p.weighted_similarity_eq11(0, 1),
                   4 * 0.25 * 0.25 / 4.0);  // 0.0625
  EXPECT_DOUBLE_EQ(p.weighted_similarity(0, 1), 1.0);  // intersection: 1
}

// --- property sweeps -----------------------------------------------------------

class SimilarityRangeProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimilarityRangeProperty, AllMeasuresStayInUnitInterval) {
  // Randomised profiles: every similarity variant must stay in [0, 1]
  // and be symmetric.
  InterestProfiles p(6, 12);
  unsigned seed = static_cast<unsigned>(GetParam());
  for (NodeId u = 0; u < 6; ++u) {
    std::vector<InterestId> set;
    for (InterestId c = 0; c < 12; ++c) {
      seed = seed * 1103515245U + 12345U;
      if (seed % 3 == 0) set.push_back(c);
    }
    p.set_interests(u, set);
    for (InterestId c : set) {
      seed = seed * 1103515245U + 12345U;
      p.record_request(0, c, static_cast<double>(seed % 7 + 1));
    }
  }
  for (NodeId a = 0; a < 6; ++a) {
    for (NodeId b = 0; b < 6; ++b) {
      for (double s : {p.similarity(a, b), p.weighted_similarity(a, b),
                       p.weighted_similarity_eq11(a, b)}) {
        EXPECT_GE(s, 0.0);
        EXPECT_LE(s, 1.0 + 1e-12);
      }
      EXPECT_DOUBLE_EQ(p.similarity(a, b), p.similarity(b, a));
      EXPECT_DOUBLE_EQ(p.weighted_similarity(a, b),
                       p.weighted_similarity(b, a));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimilarityRangeProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// Profile revisions back the SocialStateCache similarity entries
// (DESIGN.md §13): bump on every observable change, never on no-ops.

TEST(ProfileRevisions, BumpOnlyOnActualChange) {
  InterestProfiles p(3, 8);
  EXPECT_EQ(p.revision(0), 0U);
  EXPECT_EQ(p.epoch(), 0U);

  const InterestId ints[] = {1, 4, 6};
  p.set_interests(0, ints);
  const auto after_set = p.revision(0);
  EXPECT_GT(after_set, 0U);
  EXPECT_EQ(p.revision(1), 0U);  // other nodes untouched
  EXPECT_EQ(p.epoch(), after_set);

  // Re-declaring the identical set (even permuted — declarations are
  // stored sorted) is observably a no-op.
  const InterestId same[] = {6, 1, 4};
  p.set_interests(0, same);
  EXPECT_EQ(p.revision(0), after_set);

  p.add_interest(0, 4);  // already declared: no-op
  EXPECT_EQ(p.revision(0), after_set);
  p.add_interest(0, 7);
  EXPECT_GT(p.revision(0), after_set);

  const auto before_remove = p.revision(0);
  p.remove_interest(0, 3);  // never declared: no-op
  EXPECT_EQ(p.revision(0), before_remove);
  p.remove_interest(0, 7);
  EXPECT_GT(p.revision(0), before_remove);
}

TEST(ProfileRevisions, RequestsAndClearsBumpTheRequester) {
  InterestProfiles p(2, 4);
  const auto rev0 = p.revision(0);

  p.record_request(0, 2, 3.0);
  EXPECT_GT(p.revision(0), rev0);
  EXPECT_EQ(p.revision(1), 0U);

  // Guarded-out requests (bad category, non-positive count) change
  // nothing and must not bump.
  const auto before = p.revision(0);
  p.record_request(0, 99, 1.0);
  p.record_request(0, 2, 0.0);
  EXPECT_EQ(p.revision(0), before);

  p.clear_requests(0);
  EXPECT_GT(p.revision(0), before);
  // Clearing an already-empty history is a no-op.
  const auto after_clear = p.revision(0);
  p.clear_requests(0);
  EXPECT_EQ(p.revision(0), after_clear);
}

}  // namespace
}  // namespace st::core
