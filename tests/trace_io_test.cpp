// Tests for marketplace-trace CSV serialisation.

#include <gtest/gtest.h>

#include <sstream>

#include "trace/analysis.hpp"
#include "trace/io.hpp"
#include "trace/marketplace.hpp"

namespace st::trace {
namespace {

MarketplaceTrace small_trace() {
  TraceConfig cfg;
  cfg.user_count = 300;
  cfg.transaction_count = 1500;
  cfg.category_count = 10;
  stats::Rng rng(5);
  return generate_trace(cfg, rng);
}

TEST(TraceIo, CsvRoundTripPreservesAnalysis) {
  MarketplaceTrace original = small_trace();
  std::stringstream buffer;
  write_transactions_csv(buffer, original);

  MarketplaceTrace copy = read_transactions_csv(buffer, original.config);
  ASSERT_EQ(copy.transactions.size(), original.transactions.size());
  for (std::size_t i = 0; i < original.transactions.size(); ++i) {
    EXPECT_EQ(copy.transactions[i].buyer, original.transactions[i].buyer);
    EXPECT_EQ(copy.transactions[i].seller, original.transactions[i].seller);
    EXPECT_EQ(copy.transactions[i].category,
              original.transactions[i].category);
    EXPECT_DOUBLE_EQ(copy.transactions[i].buyer_rating,
                     original.transactions[i].buyer_rating);
    EXPECT_EQ(copy.transactions[i].social_distance,
              original.transactions[i].social_distance);
  }
  // Derived state rebuilt identically.
  for (std::size_t u = 0; u < original.config.user_count; ++u) {
    EXPECT_NEAR(copy.reputation[u], original.reputation[u], 1e-9);
    EXPECT_EQ(copy.business_network_size[u],
              original.business_network_size[u]);
    EXPECT_EQ(copy.transactions_as_seller[u],
              original.transactions_as_seller[u]);
  }
  // Distance- and category-based analyses agree (similarity-based ones
  // differ because declared profiles are inferred from purchases only).
  auto a = analyze_trace(original);
  auto b = analyze_trace(copy);
  EXPECT_NEAR(a.reputation_business_correlation,
              b.reputation_business_correlation, 1e-9);
  ASSERT_EQ(a.by_distance.size(), b.by_distance.size());
  for (std::size_t d = 0; d < a.by_distance.size(); ++d) {
    EXPECT_NEAR(a.by_distance[d].average_rating,
                b.by_distance[d].average_rating, 1e-9);
    EXPECT_EQ(a.by_distance[d].transactions, b.by_distance[d].transactions);
  }
  EXPECT_NEAR(a.top3_share, b.top3_share, 1e-9);
}

TEST(TraceIo, HeaderRequired) {
  std::stringstream empty;
  TraceConfig cfg;
  cfg.user_count = 10;
  EXPECT_THROW(read_transactions_csv(empty, cfg), std::runtime_error);
}

TEST(TraceIo, MalformedLineRejected) {
  std::stringstream bad(
      "buyer,seller,category,buyer_rating,seller_rating,social_distance\n"
      "1,2,garbage\n");
  TraceConfig cfg;
  cfg.user_count = 10;
  EXPECT_THROW(read_transactions_csv(bad, cfg), std::runtime_error);
}

TEST(TraceIo, OutOfRangeIdsRejected) {
  std::stringstream bad(
      "buyer,seller,category,buyer_rating,seller_rating,social_distance\n"
      "999,2,0,1,1,1\n");
  TraceConfig cfg;
  cfg.user_count = 10;
  EXPECT_THROW(read_transactions_csv(bad, cfg), std::runtime_error);
}

TEST(TraceIo, ProfilesInferredFromRows) {
  std::stringstream in(
      "buyer,seller,category,buyer_rating,seller_rating,social_distance\n"
      "0,1,3,2,1,1\n"
      "0,2,4,1,2,0\n");
  TraceConfig cfg;
  cfg.user_count = 5;
  cfg.category_count = 6;
  auto trace = read_transactions_csv(in, cfg);
  auto declared0 = trace.profiles.declared(0);
  EXPECT_EQ(std::vector<InterestId>(declared0.begin(), declared0.end()),
            (std::vector<InterestId>{3, 4}));
  EXPECT_DOUBLE_EQ(trace.profiles.total_requests(0), 2.0);
  EXPECT_DOUBLE_EQ(trace.reputation[1], 2.0);
  EXPECT_DOUBLE_EQ(trace.reputation[0], 3.0);  // seller ratings of buyer
}

}  // namespace
}  // namespace st::trace
