#!/usr/bin/env python3
"""Check that relative markdown links resolve to real files.

Scans the given markdown files (or the repo's default documentation set)
for inline links/images ``[text](target)`` and reference definitions
``[label]: target``, resolves each relative target against the file's
directory, and fails if any target does not exist.

Skipped targets: absolute URLs (http/https/mailto/ftp), pure in-page
anchors (#...), and absolute paths. A ``target#anchor`` suffix is dropped
before the existence check (anchor validity is out of scope). Fenced code
blocks and inline code spans are ignored so flag examples like
``--csv <dir>`` or snippets containing brackets do not trip the checker.

Usage:
    python3 tools/check_markdown_links.py [file.md ...]

Exit status: 0 when every link resolves, 1 otherwise (missing targets are
listed on stderr). Run from anywhere; paths are resolved per file.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline link or image: [text](target "optional title")
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# Reference definition at line start: [label]: target
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")

DEFAULT_FILES = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "CHANGES.md",
]


def strip_code(text: str) -> str:
    """Blank out fenced code blocks and inline code spans."""
    out = []
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            out.append("")
            continue
        out.append("" if in_fence else re.sub(r"`[^`]*`", "", line))
    return "\n".join(out)


def link_targets(text: str) -> list[str]:
    text = strip_code(text)
    return INLINE_LINK.findall(text) + REF_DEF.findall(text)


def check_file(md_path: Path) -> list[str]:
    errors = []
    text = md_path.read_text(encoding="utf-8")
    for target in link_targets(text):
        if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
            continue
        path_part = target.split("#", 1)[0]
        if not path_part or path_part.startswith("/"):
            continue
        resolved = (md_path.parent / path_part).resolve()
        if not resolved.exists():
            errors.append(f"{md_path}: broken link -> {target}")
    return errors


def main(argv: list[str]) -> int:
    repo_root = Path(__file__).resolve().parent.parent
    if argv:
        files = [Path(a) for a in argv]
    else:
        files = [repo_root / name for name in DEFAULT_FILES]
        files += sorted((repo_root / "docs").glob("*.md"))

    missing_inputs = [f for f in files if not f.exists()]
    if missing_inputs:
        for f in missing_inputs:
            print(f"no such file: {f}", file=sys.stderr)
        return 1

    errors = []
    for f in files:
        errors.extend(check_file(f))
    for e in errors:
        print(e, file=sys.stderr)
    print(f"checked {len(files)} file(s): "
          f"{'OK' if not errors else f'{len(errors)} broken link(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
