"""C++ tokenizer for stlint.

The regex engine this replaces worked on comment/string-*blanked* lines,
which meant (a) rule text inside comments and string literals could still
confuse multi-line patterns, and (b) rules could never *read* a string
literal (OBS-1 needs the metric-name literal itself). The lexer emits a
flat token stream where every token knows its kind, text, and line:

  kind        text                                       notes
  ----------  -----------------------------------------  --------------------
  comment     full comment text including // or /* */    one token per comment
  string      the literal including quotes/prefix        .value = contents
  char        the literal including quotes               .value = contents
  ident       identifier or keyword
  number      numeric literal (digit separators kept)
  pp          whole preprocessor directive (one token,   continuation lines
              starting line)                             folded in
  punct       operator/punctuator; `::` and `->` are
              single tokens, everything else one char

Tokens never span semantic categories: `rand` inside a comment is a
comment token, so no rule can match it. White space is dropped.
"""

from __future__ import annotations

from dataclasses import dataclass

STRING_PREFIXES = ("u8", "u", "U", "L")


@dataclass
class Token:
    kind: str  # comment | string | char | ident | number | pp | punct
    text: str
    line: int
    value: str = ""  # decoded-ish contents for string/char literals

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind!r}, {self.text!r}, L{self.line})"


def _is_ident_start(c: str) -> bool:
    return c.isalpha() or c == "_"


def _is_ident_char(c: str) -> bool:
    return c.isalnum() or c == "_"


class Lexer:
    def __init__(self, text: str):
        self.text = text
        self.n = len(text)
        self.i = 0
        self.line = 1
        self.tokens: list[Token] = []

    def error_context(self) -> str:  # pragma: no cover - debug aid
        return self.text[max(0, self.i - 20):self.i + 20]

    def _advance_over(self, chunk: str) -> None:
        self.line += chunk.count("\n")

    def _emit(self, kind: str, start: int, end: int, value: str = "") -> None:
        chunk = self.text[start:end]
        self.tokens.append(Token(kind, chunk, self.line, value))
        self._advance_over(chunk)
        self.i = end

    def _at_line_start(self) -> bool:
        j = self.i - 1
        while j >= 0 and self.text[j] in " \t":
            j -= 1
        return j < 0 or self.text[j] == "\n"

    def _lex_line_comment(self) -> None:
        end = self.text.find("\n", self.i)
        end = self.n if end == -1 else end
        self._emit("comment", self.i, end)

    def _lex_block_comment(self) -> None:
        end = self.text.find("*/", self.i + 2)
        end = self.n if end == -1 else end + 2
        self._emit("comment", self.i, end)

    def _lex_pp(self) -> None:
        """One whole directive, folding backslash continuations and
        skipping over comments (a // in a directive ends it logically but
        keeping it in the token is harmless for HYG-1)."""
        start = self.i
        j = self.i
        while j < self.n:
            nl = self.text.find("\n", j)
            if nl == -1:
                j = self.n
                break
            # Continuation: backslash (possibly with trailing spaces) ends
            # the physical line.
            k = nl - 1
            while k >= start and self.text[k] in " \t\r":
                k -= 1
            if k >= start and self.text[k] == "\\":
                j = nl + 1
                continue
            j = nl
            break
        self._emit("pp", start, j)

    def _lex_raw_string(self, prefix_len: int) -> None:
        # R"delim( ... )delim"
        open_paren = self.text.find("(", self.i + prefix_len + 1)
        if open_paren == -1:
            self._emit("punct", self.i, self.i + 1)
            return
        delim = self.text[self.i + prefix_len + 1:open_paren]
        end_marker = ")" + delim + '"'
        end = self.text.find(end_marker, open_paren + 1)
        end = self.n if end == -1 else end + len(end_marker)
        value = self.text[open_paren + 1:end - len(end_marker)] \
            if end < self.n or end_marker in self.text else ""
        self._emit("string", self.i, end, value)

    def _lex_quoted(self, quote: str, kind: str) -> None:
        j = self.i + 1
        while j < self.n:
            c = self.text[j]
            if c == "\\":
                j += 2
                continue
            if c == quote or c == "\n":  # unterminated: stop at newline
                j += 1 if c == quote else 0
                break
            j += 1
        else:
            j = self.n
        raw = self.text[self.i:j]
        inner = raw[1:-1] if len(raw) >= 2 and raw.endswith(quote) else raw[1:]
        self._emit(kind, self.i, j, inner)

    def _lex_ident(self) -> None:
        j = self.i
        while j < self.n and _is_ident_char(self.text[j]):
            j += 1
        word = self.text[self.i:j]
        # String-literal prefixes: u8"...", L"...", R"(...)", u8R"(...)".
        if j < self.n and self.text[j] == '"':
            if word in STRING_PREFIXES:
                self._lex_prefixed_string(len(word))
                return
            if word.endswith("R") and (word[:-1] in STRING_PREFIXES
                                       or word == "R"):
                self._lex_raw_string(len(word))
                return
        if j < self.n and self.text[j] == "'" and word in STRING_PREFIXES:
            saved = self.i
            self.i = j
            self._lex_quoted("'", "char")
            self.tokens[-1].text = self.text[saved:self.i]
            return
        self._emit("ident", self.i, j)

    def _lex_prefixed_string(self, prefix_len: int) -> None:
        saved = self.i
        self.i += prefix_len
        self._lex_quoted('"', "string")
        self.tokens[-1].text = self.text[saved:self.i]

    def _lex_number(self) -> None:
        j = self.i
        while j < self.n:
            c = self.text[j]
            if c.isalnum() or c == ".":
                j += 1
            elif c == "'" and j + 1 < self.n and self.text[j + 1].isalnum():
                j += 1  # digit separator 1'000'000
            elif c in "+-" and self.text[j - 1] in "eEpP":
                j += 1  # exponent sign
            else:
                break
        self._emit("number", self.i, j)

    def _prev_code_char(self) -> str:
        j = self.i - 1
        while j >= 0 and self.text[j] in " \t\r\n":
            j -= 1
        return self.text[j] if j >= 0 else ""

    def run(self) -> list[Token]:
        text, n = self.text, self.n
        while self.i < n:
            c = text[self.i]
            nxt = text[self.i + 1] if self.i + 1 < n else ""
            if c == "\n":
                self.line += 1
                self.i += 1
            elif c in " \t\r\f\v":
                self.i += 1
            elif c == "/" and nxt == "/":
                self._lex_line_comment()
            elif c == "/" and nxt == "*":
                self._lex_block_comment()
            elif c == "#" and self._at_line_start():
                self._lex_pp()
            elif c == '"':
                self._lex_quoted('"', "string")
            elif c == "'":
                # A quote between alnums is a digit separator only when
                # scanning a number; here a bare ' starts a char literal.
                self._lex_quoted("'", "char")
            elif _is_ident_start(c):
                self._lex_ident()
            elif c.isdigit():
                self._lex_number()
            elif c == ":" and nxt == ":":
                self._emit("punct", self.i, self.i + 2)
            elif c == "-" and nxt == ">":
                self._emit("punct", self.i, self.i + 2)
            else:
                self._emit("punct", self.i, self.i + 1)
        return self.tokens


def tokenize(text: str) -> list[Token]:
    """Tokenize C++ source; never raises on malformed input (unterminated
    literals close at end of line / end of file)."""
    return Lexer(text).run()


def code_tokens(tokens: list[Token]) -> list[Token]:
    """The sub-stream rules match against: comments and preprocessor
    directives removed (strings stay — OBS-1 reads them; rules that must
    not match inside strings check .kind)."""
    return [t for t in tokens if t.kind not in ("comment", "pp")]
