"""OBS rules: metric-name discipline and code<->docs consistency.

Both directions diff the same two tables:

  * registrations — every string literal passed to a counter()/gauge()/
    histogram() factory in the scanned src/ tree (the lexer hands the
    rule the literal's decoded value, which the v1 line-scrubber could
    never do), and
  * the Metric reference tables in docs/OBSERVABILITY.md.

OBS-1 fires on a registration that is not dot-separated snake_case, not
globally unique, or missing from the doc; OBS-2 fires on a doc row whose
metric no longer exists in code. Renaming a metric on either side
without the other therefore fails lint in exactly one direction each.

The doc diff only runs when the scan covers the repo's real src/ tree
(or a fixture explicitly passes --obs-doc): diffing a partial scan or a
fixture tree against the repo's documentation would drown it in false
positives.
"""

from __future__ import annotations

import re

from ..core import (OBS_SCOPE_PREFIXES, Context, Finding, SourceFile, emit,
                    in_scope, rel_path)

METRIC_FACTORIES = {"counter", "gauge", "histogram"}
SNAKE_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$")
DOC_ROW_RE = re.compile(r"^\|\s*`([^`]+)`\s*\|")


def check(sf: SourceFile, ctx: Context, findings: list[Finding]) -> None:
    """Per-file pass is a no-op; OBS is inherently cross-file."""


def registrations(sf: SourceFile) -> list[tuple[int, str]]:
    """(line, metric-name) for every factory call with a literal name."""
    out: list[tuple[int, str]] = []
    code = sf.code
    n = len(code)
    for i, t in enumerate(code):
        if t.kind == "ident" and t.text in METRIC_FACTORIES and \
                i + 2 < n and code[i + 1].text == "(" and \
                code[i + 2].kind == "string":
            out.append((code[i + 2].line, code[i + 2].value))
    return out


def parse_doc(path) -> list[tuple[int, str]]:
    """(line, name) for every `name` row in the Metric reference tables,
    skipping fenced code blocks."""
    names: list[tuple[int, str]] = []
    in_reference = False
    in_fence = False
    text = path.read_text(encoding="utf-8", errors="replace")
    for lineno, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.strip()
        if stripped.startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        if stripped.startswith("## "):
            in_reference = stripped[3:].strip().lower().startswith(
                "metric reference")
            continue
        if not in_reference:
            continue
        match = DOC_ROW_RE.match(stripped)
        if match:
            names.append((lineno, match.group(1)))
    return names


def check_tree_facts(index, obs_doc, findings: list[Finding]) -> None:
    """check_tree over ProjectIndex facts instead of token streams, so
    cached files never need re-lexing for the code<->docs diff."""
    if obs_doc is None:
        return
    regs: list[tuple[str, int, str]] = []
    for rel in sorted(index.files):
        if not in_scope(rel, OBS_SCOPE_PREFIXES):
            continue
        for line, name in index.files[rel].get("registrations", []):
            regs.append((rel, line, name))
    doc_exists = obs_doc.exists()
    doc_rel = rel_path(obs_doc)
    doc_names = parse_doc(obs_doc) if doc_exists else []
    documented = {name for _, name in doc_names}

    def emit_fact(rel: str, line: int, message: str) -> None:
        if not index.suppressed(rel, line, "OBS-1"):
            findings.append(Finding(rel, line, "OBS-1", message))

    first_site: dict[str, tuple[str, int]] = {}
    for rel, line, name in regs:
        if not SNAKE_RE.match(name):
            emit_fact(rel, line,
                      f"metric name '{name}' is not dot-separated "
                      f"snake_case")
        if name in first_site:
            prev_rel, prev_line = first_site[name]
            emit_fact(rel, line,
                      f"metric '{name}' already registered at "
                      f"{prev_rel}:{prev_line}; resolve each metric handle "
                      f"at exactly one site and pass the handle around")
        else:
            first_site[name] = (rel, line)
        if doc_exists and name not in documented:
            emit_fact(rel, line,
                      f"metric '{name}' is not documented in {doc_rel}; "
                      f"add a row to the Metric reference table")
    registered = {name for _, _, name in regs}
    for line, name in doc_names:
        if name not in registered:
            findings.append(Finding(
                doc_rel, line, "OBS-2",
                f"metric '{name}' is documented but registered nowhere in "
                f"the scanned src/ tree; remove the row or restore the "
                f"metric"))


def check_tree(ctx: Context, findings: list[Finding]) -> None:
    if ctx.obs_doc is None:
        return
    regs: list[tuple[SourceFile, int, str]] = []
    for sf in ctx.files:
        if not in_scope(sf.rel, OBS_SCOPE_PREFIXES):
            continue
        for line, name in registrations(sf):
            regs.append((sf, line, name))
    doc_exists = ctx.obs_doc.exists()
    doc_rel = rel_path(ctx.obs_doc)
    doc_names = parse_doc(ctx.obs_doc) if doc_exists else []
    documented = {name for _, name in doc_names}
    first_site: dict[str, tuple[SourceFile, int]] = {}
    for sf, line, name in regs:
        if not SNAKE_RE.match(name):
            emit(findings, sf, line, "OBS-1",
                 f"metric name '{name}' is not dot-separated snake_case")
        if name in first_site:
            prev_sf, prev_line = first_site[name]
            emit(findings, sf, line, "OBS-1",
                 f"metric '{name}' already registered at "
                 f"{prev_sf.rel}:{prev_line}; resolve each metric handle "
                 f"at exactly one site and pass the handle around")
        else:
            first_site[name] = (sf, line)
        if doc_exists and name not in documented:
            emit(findings, sf, line, "OBS-1",
                 f"metric '{name}' is not documented in {doc_rel}; add a "
                 f"row to the Metric reference table")
    registered = {name for _, _, name in regs}
    for line, name in doc_names:
        if name not in registered:
            findings.append(Finding(
                doc_rel, line, "OBS-2",
                f"metric '{name}' is documented but registered nowhere in "
                f"the scanned src/ tree; remove the row or restore the "
                f"metric"))
