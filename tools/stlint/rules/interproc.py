"""Inter-procedural rule families (v3): CON-3, LOCK-4, DET-4, API-2.

These rules consume the ProjectIndex facts and the CallGraph only —
never raw tokens — so they run whole-program on every lint, including
``--changed-only`` runs where most files' facts come from the cache.

  CON-3  writes to non-local, non-atomic state from the worker context
         (anything reachable from a parallel_for / ThreadPool::submit
         body) without a held lock. Sanctioned patterns stay silent:
         atomic members, writes inside a RAII guard extent, subscripted
         writes into non-unordered containers (the disjoint-slot idiom),
         member writes of an object that is local to the worker chain.
  LOCK-4 lock-order cycles in the global acquisition graph, lifted
         across function boundaries; both chains are reported.
  DET-4  determinism taint: iterating an unordered-container accessor
         defined in *another* TU (invisible to per-file DET-3) into a
         float accumulation or an ordered sink, and iteration over
         pointer-keyed ordered containers (address order).
  API-2  CSR mutation discipline: every public mutation path on
         SocialGraph / InterestProfiles must reach a revision bump, and
         rebuild() must not call public const accessors.
"""

from __future__ import annotations

from ..callgraph import CallGraph
from ..core import (BUMP_FIELD_MARKERS, DET2_SCOPE_PREFIXES,
                    REPR_FIELD_MARKERS, REPRESENTATION_ONLY, Finding,
                    in_scope)
from ..index import ProjectIndex

CON3_SCOPE_PREFIXES = ("src/",)
API2_CLASSES = ("SocialGraph", "InterestProfiles")
API2_BUMP_NAMES = {"bump", "bump_structure", "bump_value"}
# Representation-only entry points reorganise storage (CSR arrays,
# caches) without changing observable values, so no bump is required —
# the shared set in core.py keeps this aligned with REV-2, which
# *forbids* a bump on these same entry points.
API2_REPRESENTATION_ONLY = REPRESENTATION_ONLY


def check(index: ProjectIndex, graph: CallGraph,
          findings: list[Finding]) -> None:
    check_con3(index, graph, findings)
    check_lock4(index, graph, findings)
    check_det4(index, graph, findings)
    check_api2(index, graph, findings)


def _emit(index: ProjectIndex, findings: list[Finding], rel: str,
          line: int, rule: str, message: str) -> None:
    if not index.suppressed(rel, line, rule):
        findings.append(Finding(rel, line, rule, message))


# --- CON-3 ------------------------------------------------------------------

def _root_type_words(index: ProjectIndex, fn: dict, root: str) -> list[str]:
    t = fn["local_types"].get(root)
    cur = fn
    while t is None and cur["parent"] >= 0:
        cur = index.functions[cur["_base"] + cur["parent"]]
        t = cur["local_types"].get(root)
    if t is None and fn["cls"]:
        f = index.field_of(fn["cls"], root)
        if f is not None:
            t = f["type"]
    return t.split() if t else []


def _under_own_lock(fn: dict, tok: int) -> bool:
    return any(l["tok"] < tok <= l["end"] for l in fn["locks"])


def check_con3(index: ProjectIndex, graph: CallGraph,
               findings: list[Finding]) -> None:
    workers = graph.worker_context()
    if not workers:
        return
    # Callers inside the worker context, for the caller-holds-the-lock
    # exemption: a helper whose every worker-context call site sits in a
    # guard extent is protected by its callers.
    locked_callees: dict[int, list[bool]] = {}
    for gid in workers:
        fn = index.functions[gid]
        for target, call in graph.callees(gid):
            if target in workers:
                locked_callees.setdefault(target, []).append(
                    _under_own_lock(fn, call["tok"]))
    for gid, info in sorted(workers.items()):
        fn = index.functions[gid]
        rel = fn["_file"]
        if not in_scope(rel, CON3_SCOPE_PREFIXES):
            continue
        sites = locked_callees.get(gid)
        if sites and all(sites):
            continue  # only ever called with a caller's lock held
        for w in fn["writes"]:
            root = w["root"]
            if not root:
                continue
            if root != "this" and root in fn["locals"]:
                continue
            if _under_own_lock(fn, w["tok"]):
                continue
            member = w["member"] if root == "this" else root
            fld = index.field_of(fn["cls"], member) if fn["cls"] else None
            if fld is not None and fld.get("atomic"):
                continue
            type_words = (fld["type"].split() if fld is not None
                          else _root_type_words(index, fn, root))
            if "atomic" in type_words:
                continue
            if fld is not None and info.instance_local:
                continue  # member of a worker-local instance
            if w["sub"]:
                unordered = (fld is not None and fld.get("unordered")) or \
                    any(word.startswith("unordered_")
                        for word in type_words)
                if not unordered:
                    continue  # disjoint-slot writes are the sanctioned idiom
                what = (f"subscripted write into unordered container "
                        f"'{member}' (rehash moves slots under "
                        f"concurrent writers)")
            elif w["mut"]:
                what = f"mutating call {member}.{w['mut']}() on shared state"
            else:
                what = f"write to non-local state '{member}'"
            _emit(index, findings, rel, w["line"], "CON-3",
                  f"{what} in worker context [{info.witness}] without a "
                  f"held lock or atomic type; guard it, make it atomic, or "
                  f"restructure to thread-private accumulation")


# --- LOCK-4 -----------------------------------------------------------------

def check_lock4(index: ProjectIndex, graph: CallGraph,
                findings: list[Finding]) -> None:
    edges: dict[str, dict[str, tuple[str, str, int]]] = {}
    memo: dict = {}

    def add_edge(a: str, b: str, witness: str, rel: str, line: int) -> None:
        edges.setdefault(a, {})
        if b not in edges[a]:
            edges[a][b] = (witness, rel, line)

    for fn in index.functions:
        rel = fn["_file"]
        for lock in fn["locks"]:
            a = graph.lock_class(fn, lock)
            for other in fn["locks"]:
                if lock["tok"] < other["tok"] <= lock["end"]:
                    b = graph.lock_class(fn, other)
                    if a != b:  # same-class nesting is LOCK-1's beat
                        add_edge(a, b,
                                 f"{fn['qname']} acquires {a} then {b} "
                                 f"({rel}:{other['line']})",
                                 rel, other["line"])
            for target, call in graph.callees(fn["_gid"]):
                if not (lock["tok"] < call["tok"] <= lock["end"]):
                    continue
                for b, chain in graph.acquired_closure(target,
                                                       memo).items():
                    if a == b:
                        add_edge(a, b,
                                 f"{fn['qname']} holds {a} "
                                 f"({rel}:{lock['line']}) and calls "
                                 f"{chain} which re-acquires it",
                                 rel, call["line"])
                    else:
                        add_edge(a, b,
                                 f"{fn['qname']} holds {a} "
                                 f"({rel}:{lock['line']}) then "
                                 f"{chain}", rel, call["line"])

    # Cycle detection: self-edges plus any strongly-connected component
    # with more than one node is a potential deadlock.
    reported: set[tuple[str, ...]] = set()
    for a, outs in sorted(edges.items()):
        if a in outs:
            key = (a,)
            if key not in reported:
                reported.add(key)
                witness, rel, line = outs[a]
                _emit(index, findings, rel, line, "LOCK-4",
                      f"lock {a} re-acquired while already held: {witness}; "
                      f"a non-recursive mutex self-deadlocks here")
    for a, outs in sorted(edges.items()):
        for b in sorted(outs):
            if b <= a or b not in edges or a not in edges.get(b, {}):
                continue
            key = tuple(sorted((a, b)))
            if key in reported:
                continue
            reported.add(key)
            w_ab, rel, line = outs[b]
            w_ba, _, _ = edges[b][a]
            _emit(index, findings, rel, line, "LOCK-4",
                  f"lock-order cycle between {a} and {b}: "
                  f"[{w_ab}] vs [{w_ba}]; pick one global order or take "
                  f"both up front with std::scoped_lock")
    # Longer cycles (A -> B -> C -> A) without a 2-cycle shortcut.
    for cycle in _long_cycles(edges):
        key = tuple(sorted(cycle))
        if key in reported or len(cycle) < 3:
            continue
        reported.add(key)
        first, second = cycle[0], cycle[1]
        witness, rel, line = edges[first][second]
        chain = " -> ".join(cycle + [cycle[0]])
        _emit(index, findings, rel, line, "LOCK-4",
              f"lock-order cycle {chain}; first edge: [{witness}]; pick "
              f"one global acquisition order")


def _long_cycles(edges: dict[str, dict]) -> list[list[str]]:
    cycles: list[list[str]] = []
    seen_keys: set[tuple[str, ...]] = set()

    def dfs(start: str, node: str, path: list[str],
            on_path: set[str]) -> None:
        for nxt in sorted(edges.get(node, {})):
            if nxt == start and len(path) >= 3:
                key = tuple(sorted(path))
                if key not in seen_keys:
                    seen_keys.add(key)
                    cycles.append(list(path))
            elif nxt not in on_path and nxt > start and len(path) < 6:
                on_path.add(nxt)
                path.append(nxt)
                dfs(start, nxt, path, on_path)
                path.pop()
                on_path.discard(nxt)

    for start in sorted(edges):
        dfs(start, start, [start], {start})
    return cycles


# --- DET-4 ------------------------------------------------------------------

def _own_header_rel(rel: str, index: ProjectIndex) -> str | None:
    for cxx in (".cpp", ".cc", ".cxx"):
        if rel.endswith(cxx):
            stem = rel[: -len(cxx)]
            for h in (".hpp", ".h", ".hxx"):
                if stem + h in index.files:
                    return stem + h
            return None
    return None


def check_det4(index: ProjectIndex, graph: CallGraph,
               findings: list[Finding]) -> None:
    # Walk the finalized (global) records, not the raw per-file facts:
    # _root_type_words resolves a lambda's enclosing-scope types through
    # the parent chain, which only the global records can address.
    fns_by_file: dict[str, list[dict]] = {}
    for fn in index.functions:
        fns_by_file.setdefault(fn["_file"], []).append(fn)
    for rel in sorted(index.files):
        if not in_scope(rel, DET2_SCOPE_PREFIXES):
            continue
        facts = index.files[rel]
        visible = {name for name, _ in facts.get("accessor_sites", [])}
        header_rel = _own_header_rel(rel, index)
        if header_rel is not None:
            visible |= {name for name, _ in
                        index.files[header_rel].get("accessor_sites", [])}
        for fn in fns_by_file.get(rel, []):
            for it in fn["iters"]:
                if not (it["accum"] or it["sink"]):
                    continue
                if it["kind"] == "call":
                    name = it["name"]
                    if name in visible:
                        continue  # per-file DET-3 already owns this one
                    sites = index.accessors.get(name)
                    if not sites:
                        continue
                    where = ", ".join(f"{r}:{line}" for r, line in
                                      sorted(set(sites))[:3])
                    sink = ("a floating-point accumulation" if it["accum"]
                            else "an ordered output")
                    _emit(index, findings, rel, it["line"], "DET-4",
                          f"{name}() returns a reference/iterator into an "
                          f"unordered container (defined at {where}, "
                          f"outside this TU) and the iteration feeds "
                          f"{sink}: hash order crosses the call edge; "
                          f"flatten to a vector and sort at the source, or "
                          f"return a sorted copy")
                elif it["kind"] == "var":
                    words = _root_type_words(index, fn, it["name"])
                    if not words:
                        continue
                    ordered_assoc = any(w in ("set", "map", "multiset",
                                              "multimap") for w in words)
                    if ordered_assoc and "ptr" in words:
                        sink = ("a floating-point accumulation"
                                if it["accum"] else "an ordered output")
                        _emit(index, findings, rel, it["line"], "DET-4",
                              f"iteration over pointer-keyed container "
                              f"'{it['name']}' feeds {sink}: pointer "
                              f"comparison is address order, which varies "
                              f"per run; key on a stable id instead")


# --- API-2 ------------------------------------------------------------------

def _same_class_closure(index: ProjectIndex, graph: CallGraph, cls: str,
                        roots: list[int]) -> list[int]:
    family = set(graph._class_family(cls))
    seen: list[int] = []
    queue = list(roots)
    while queue:
        gid = queue.pop()
        if gid in seen:
            continue
        seen.append(gid)
        for target, _ in graph.callees(gid):
            if index.functions[target]["cls"] in family:
                queue.append(target)
    return seen


def check_api2(index: ProjectIndex, graph: CallGraph,
               findings: list[Finding]) -> None:
    for cls in API2_CLASSES:
        info = index.classes.get(cls)
        if info is None:
            continue
        methods = info["methods"]
        for name, decl in sorted(methods.items()):
            if decl["visibility"] != "public" or decl["const"]:
                continue
            if name == cls or name.startswith("~") or \
                    name in API2_BUMP_NAMES or \
                    name in API2_REPRESENTATION_ONLY or \
                    name.startswith("operator"):
                continue
            roots = list(index.by_qname.get(f"{cls}::{name}", []))
            if not roots:
                continue  # declared but defined outside the scanned tree
            closure = _same_class_closure(index, graph, cls, roots)
            writes_member = False
            write_site: tuple[str, int] | None = None
            bump_reached = False
            for gid in closure:
                fn = index.functions[gid]
                for call in fn["calls"]:
                    if call["name"] in API2_BUMP_NAMES and \
                            call.get("recv", "") in ("", "this"):
                        bump_reached = True
                for w in fn["writes"]:
                    root = w["root"]
                    member = w["member"] if root == "this" else root
                    if root == "this" or (
                            root not in fn["locals"]
                            and index.field_of(cls, member) is not None):
                        if any(m in member for m in BUMP_FIELD_MARKERS):
                            bump_reached = True  # epoch counters ARE the protocol
                            continue
                        if any(m in member for m in REPR_FIELD_MARKERS):
                            continue  # representation maintenance
                        writes_member = True
                        if write_site is None:
                            write_site = (fn["_file"], w["line"])
            if writes_member and not bump_reached:
                fn0 = index.functions[roots[0]]
                site = (f"; first member write at "
                        f"{write_site[0]}:{write_site[1]}"
                        if write_site else "")
                _emit(index, findings, fn0["_file"], fn0["line"], "API-2",
                      f"{cls}::{name}() mutates member state but no path "
                      f"reaches bump()/bump_structure()/bump_value(){site}; "
                      f"every observable mutation must advance a revision "
                      f"witness (DESIGN.md CSR contract)")
        # rebuild() must not call public const accessors: a reader invoked
        # mid-rebuild would observe torn CSR state.
        rebuild_roots = list(index.by_qname.get(f"{cls}::rebuild", []))
        if not rebuild_roots:
            continue
        closure = _same_class_closure(index, graph, cls, rebuild_roots)
        for gid in closure:
            fn = index.functions[gid]
            for target, call in graph.callees(gid):
                callee = index.functions[target]
                if callee["cls"] != cls:
                    continue
                decl = methods.get(callee["name"])
                is_public = (decl or {}).get("visibility") == "public"
                is_const = callee["const"] or (decl or {}).get("const")
                if is_public and is_const:
                    _emit(index, findings, fn["_file"], call["line"],
                          "API-2",
                          f"{fn['qname']}() (reachable from "
                          f"{cls}::rebuild()) calls public const accessor "
                          f"{cls}::{callee['name']}() — accessors must not "
                          f"run mid-rebuild; use the private materialized "
                          f"state directly")
