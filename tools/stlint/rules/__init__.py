"""Rule families.

Each module exposes ``check(sf, ctx, findings)`` run once per scanned
file; ``obs_docs`` additionally exposes ``check_tree(ctx, findings)``, a
single cross-file pass (metric uniqueness and the code<->docs diff need
the whole scan set at once).
"""

from . import concurrency, determinism, hygiene, obs_docs  # noqa: F401
