"""HYG rules: include hygiene and namespace leakage.

HYG-2 is scope-aware under the token engine: a `using namespace` inside
a function body in a header pollutes nothing outside that body and is
allowed; only namespace/class/file scope leaks into every includer.
"""

from __future__ import annotations

import re

from ..core import (HEADER_SUFFIXES, Context, Finding, SourceFile, emit)

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*["<]([^">]+)[">]')


def check(sf: SourceFile, ctx: Context, findings: list[Finding]) -> None:
    _check_hyg1(sf, findings)
    _check_hyg2(sf, findings)


def _check_hyg1(sf: SourceFile, findings: list[Finding]) -> None:
    if sf.path.suffix not in {".cpp", ".cc", ".cxx"}:
        return
    own_header = None
    for suffix in HEADER_SUFFIXES:
        candidate = sf.path.with_suffix(suffix)
        if candidate.exists():
            own_header = candidate.name
            break
    if own_header is None:  # tests/benches have no own header
        return
    for t in sf.tokens:
        if t.kind != "pp":
            continue
        match = INCLUDE_RE.match(t.text)
        if not match:
            continue
        target = match.group(1)
        if target == own_header or target.endswith("/" + own_header):
            return
        emit(findings, sf, t.line, "HYG-1",
             f"first include is '{target}'; include the file's own header "
             f"'{own_header}' first to prove it is self-contained")
        return


def _check_hyg2(sf: SourceFile, findings: list[Finding]) -> None:
    if sf.path.suffix not in HEADER_SUFFIXES:
        return
    code = sf.code
    n = len(code)
    for i, t in enumerate(code):
        if t.kind == "ident" and t.text == "using" and i + 1 < n and \
                code[i + 1].kind == "ident" and \
                code[i + 1].text == "namespace":
            if sf.scopes.at(i).function is None:
                emit(findings, sf, t.line, "HYG-2",
                     "using namespace in a header leaks into every "
                     "includer; use explicit qualification, a local "
                     "alias, or confine it to a function body")
