"""Flow-sensitive protocol rules (v4): REV-1/REV-2, EXC-1, SHD-1.

These run on the per-function CFGs serialised into the fact records
(index.py / cfg.py) through the worklist framework in dataflow.py, so
they stay whole-program *and* cache-warm like the v3 families.

  REV-1  path-sensitive revision protocol: every path through a public
         mutating method of SocialGraph / InterestProfiles /
         ReferenceSocialGraph that commits an observable member write
         must reach a bump()/bump_structure()/bump_value() (or an
         epoch-counter write) before returning. Unlike API-2's
         whole-closure boolean, an early return on one branch while the
         other branch bumps is caught, and the offending path is
         reported as a block-level witness chain (LOCK-4 style).
  REV-2  the inverse: representation-only entry points (rebuild,
         materialize, begin_interval, ...) must NOT reach a bump —
         storage reorganisation that advances witnesses would spuriously
         invalidate O(changed) reuse.
  EXC-1  exception safety in mutators: no committed observable write may
         precede a potentially-throwing event (allocating container
         call, throwing same-tree callee, explicit uncaught throw)
         unless the write is rolled back in a catch that re-writes the
         field, or the function is noexcept.
  SHD-1  shard-phase discipline: ShardState members may only be written
         from the owning compute phase (the shard_phase_* closure, as
         established by the v3 worker-context machinery) or by the
         serial coordinator; boundary state (summary, rep_view) only
         from the exchange/merge functions.

Soundness notes (see docs/STATIC_ANALYSIS.md §v4 for the catalogue):
guarded-commit gens (`bool changed = helper(...); if (changed) bump();`)
are discharged when a bump sits in a block guarded by the result
variable; writes to representation-only fields (overlay/tombstone
buffers, rebuild counters) are not protocol-observable; unresolved
cross-TU calls are assumed non-throwing unless they match the
allocating-method list.
"""

from __future__ import annotations

from .. import dataflow
from ..callgraph import CallGraph
from ..cfg import ENTRY, EXIT, RAISE
from ..core import (BUMP_FIELD_MARKERS, REPR_FIELD_MARKERS,
                    REPRESENTATION_ONLY, Finding, in_scope)
from ..index import ProjectIndex

REV_CLASSES = ("SocialGraph", "InterestProfiles", "ReferenceSocialGraph")
BUMP_NAMES = {"bump", "bump_structure", "bump_value"}
# Container methods that may allocate (and therefore throw bad_alloc).
ALLOC_CALLS = {"push_back", "emplace_back", "emplace", "insert", "resize",
               "reserve", "assign", "push_front", "emplace_front", "push",
               "append", "emplace_hint", "make_unique", "make_shared", "at"}

SHD_OWNER = "ShardedAggregator"
SHD_STATE_CLASSES = ("ShardState",)
SHD_BOUNDARY_FIELDS = {"summary", "rep_view"}
SHD_PHASE_PREFIX = "shard_phase"
SHD_EXCHANGE_NAMES = {"build_summary", "merge_known", "update", "reset",
                      "forget_node", "run_gossip", "run_synchronous",
                      "gossip_exchange", "exchange"}
SHD_SCOPE_PREFIXES = ("src/shard/",)


def check(index: ProjectIndex, graph: CallGraph,
          findings: list[Finding]) -> None:
    for cls in REV_CLASSES:
        a = _Analysis(index, graph, cls)
        a.check_rev1(findings)
        a.check_rev2(findings)
        a.check_exc1(findings)
    check_shd1(index, graph, findings)


def _emit(index: ProjectIndex, findings: list[Finding], rel: str,
          line: int, rule: str, message: str) -> None:
    if not index.suppressed(rel, line, rule):
        findings.append(Finding(rel, line, rule, message))


# --- event classification ---------------------------------------------------

class _Analysis:
    """Per-class event classification + summaries over the CFG facts."""

    def __init__(self, index: ProjectIndex, graph: CallGraph, cls: str):
        self.index = index
        self.graph = graph
        self.cls = cls
        self.family = set(graph._class_family(cls))
        self._events: dict[int, list[list[dict]]] = {}
        self._summaries: dict[int, dict] = {}
        self._stack: set[int] = set()

    # -- name resolution ----------------------------------------------------

    def _is_local(self, fn: dict, root: str) -> bool:
        cur = fn
        while True:
            if root in cur["locals"]:
                return True
            if cur["parent"] < 0:
                return False
            cur = self.index.functions[cur["_base"] + cur["parent"]]

    def _member_field(self, fn: dict, w: dict) -> str:
        """The class field a write lands in, '' when it is local-only."""
        root, member = w["root"], w["member"]
        hops = 0
        cur = fn
        while hops < 4:
            ra = cur.get("ref_aliases") or {}
            if root in ra:
                aroot, amember = ra[root]
                member = amember or member
                root = aroot
                hops += 1
                continue
            if cur["parent"] < 0:
                break
            cur = self.index.functions[cur["_base"] + cur["parent"]]
        if root == "this":
            if member and self.index.field_of(self.cls, member) is not None:
                return member
            return member  # unknown field declared out of tree: keep it
        if root and not self._is_local(fn, root) and \
                self.index.field_of(self.cls, root) is not None:
            return root
        return ""

    def _repr_context(self, fn: dict) -> bool:
        """fn (or the named function a lambda nests under) is one of the
        representation-only entry points."""
        cur = fn
        while cur["kind"] == "lambda" and cur["parent"] >= 0:
            cur = self.index.functions[cur["_base"] + cur["parent"]]
        return cur["name"] in REPRESENTATION_ONLY

    # -- per-function events ------------------------------------------------

    def events(self, gid: int) -> list[list[dict]]:
        """Per-block ordered protocol events. Event kinds:
        gen (committed observable write; 'site' is unique, 'guard' is the
        result-local for guarded-commit calls), kill (revision bump),
        throw (potentially-throwing call)."""
        if gid in self._events:
            return self._events[gid]
        index, graph = self.index, self.graph
        fn = index.functions[gid]
        blocks = (fn.get("cfg") or {}).get("blocks") or []
        out: list[list[dict]] = [[] for _ in blocks]
        repr_fn = self._repr_context(fn)
        site = 0
        for bid, b in enumerate(blocks):
            for kind, idx in b["ev"]:
                if kind == "w":
                    w = fn["writes"][idx]
                    field = self._member_field(fn, w)
                    if not field:
                        continue
                    if any(m in field for m in BUMP_FIELD_MARKERS):
                        out[bid].append({"t": "kill", "line": w["line"]})
                    elif repr_fn or any(m in field
                                        for m in REPR_FIELD_MARKERS):
                        continue
                    elif b.get("h"):
                        # catch-handler re-write: rollback, not a commit
                        out[bid].append({"t": "rollback", "field": field,
                                         "line": w["line"]})
                    else:
                        out[bid].append({"t": "gen", "site": site,
                                         "field": field, "line": w["line"],
                                         "guard": ""})
                        site += 1
                    continue
                c = fn["calls"][idx]
                if c["name"] in BUMP_NAMES and \
                        c.get("recv", "") in ("", "this"):
                    out[bid].append({"t": "kill", "line": c["line"]})
                    continue
                throwing = c["name"] in ALLOC_CALLS
                killed = False
                gen_callee = False
                for t in graph.resolve(fn, c):
                    s = self.summary(t)
                    throwing = throwing or s["throws"]
                    if index.functions[t]["cls"] in self.family:
                        killed = killed or s["always_bumps"]
                        gen_callee = gen_callee or s["dirty"]
                if throwing:
                    out[bid].append({"t": "throw", "what": c["name"],
                                     "line": c["line"]})
                if killed:
                    out[bid].append({"t": "kill", "line": c["line"]})
                elif gen_callee and not repr_fn:
                    out[bid].append({"t": "gen", "site": site,
                                     "field": f"{c['name']}()",
                                     "line": c["line"],
                                     "guard": c.get("asg", "")})
                    site += 1
        self._discharge_guarded(blocks, out)
        self._events[gid] = out
        return out

    def _discharge_guarded(self, blocks: list[dict],
                           events: list[list[dict]]) -> None:
        """`bool changed = helper(...); if (changed) bump();` — drop the
        helper's gen when a kill sits in a block guarded by the result."""
        guarded_kills: set[str] = set()
        for bid, b in enumerate(blocks):
            if any(ev["t"] == "kill" for ev in events[bid]):
                guarded_kills.update(b.get("g") or [])
        if not guarded_kills:
            return
        for evs in events:
            evs[:] = [ev for ev in evs
                      if not (ev["t"] == "gen" and ev.get("guard")
                              and ev["guard"] in guarded_kills)]

    # -- summaries ----------------------------------------------------------

    def summary(self, gid: int) -> dict:
        if gid in self._summaries:
            return self._summaries[gid]
        if gid in self._stack:  # recursion: optimistic bottom
            return {"dirty": False, "always_bumps": False,
                    "writes": False, "throws": False}
        self._stack.add(gid)
        try:
            fn = self.index.functions[gid]
            blocks = (fn.get("cfg") or {}).get("blocks") or []
            events = self.events(gid)
            transfer = self._make_transfer(events)
            writes = any(ev["t"] == "gen" for evs in events for ev in evs)
            throws = any(ev["t"] == "throw" for evs in events
                         for ev in evs)
            throws = throws or any(RAISE in b["s"] for b in blocks)
            dirty = False
            if writes and blocks:
                ins = dataflow.solve(blocks, ENTRY, dataflow.EMPTY,
                                     transfer)
                for bid, b in enumerate(blocks):
                    if EXIT in b["s"] and bid in ins and \
                            transfer(bid, ins[bid]):
                        dirty = True
                        break
            always = False
            if blocks:
                always = self._always_bumps(blocks, events)
            result = {"dirty": dirty, "always_bumps": always,
                      "writes": writes, "throws": throws}
        finally:
            self._stack.discard(gid)
        self._summaries[gid] = result
        return result

    def _make_transfer(self, events: list[list[dict]]):
        fields = {ev["site"]: ev["field"] for evs in events for ev in evs
                  if ev["t"] == "gen"}

        def transfer(bid: int, state: frozenset) -> frozenset:
            s = set(state)
            for ev in events[bid]:
                if ev["t"] == "gen":
                    s.add(ev["site"])
                elif ev["t"] == "kill":
                    s.clear()
                elif ev["t"] == "rollback":
                    s = {x for x in s if fields.get(x) != ev["field"]}
            return frozenset(s)
        return transfer

    def _make_exc_transfer(self, events: list[list[dict]],
                           blocks: list[dict]):
        """Out-state along exceptional edges: the union of the states at
        each potentially-throwing call. A write ordered after a block's
        last throwing call (in particular the receiver mutation of that
        very call, e.g. ``log_.push_back(v)``) can never be committed
        when the handler runs, so it must not flow into it. Blocks that
        end in an explicit ``throw`` contribute their full out-state."""
        fields = {ev["site"]: ev["field"] for evs in events for ev in evs
                  if ev["t"] == "gen"}

        def exc_transfer(bid: int, state: frozenset) -> frozenset:
            s = set(state)
            acc: set = set()
            for ev in events[bid]:
                if ev["t"] == "throw":
                    acc |= s
                elif ev["t"] == "gen":
                    s.add(ev["site"])
                elif ev["t"] == "kill":
                    s.clear()
                elif ev["t"] == "rollback":
                    s = {x for x in s if fields.get(x) != ev["field"]}
            if blocks[bid].get("t"):
                acc |= s
            return frozenset(acc)
        return exc_transfer

    def _always_bumps(self, blocks: list[dict],
                      events: list[list[dict]]) -> bool:
        """Must-analysis: a kill on every normal path to exit."""
        has_kill = any(ev["t"] == "kill" for evs in events for ev in evs)
        if not has_kill:
            return False

        def transfer(bid: int, state: frozenset) -> frozenset:
            if any(ev["t"] == "kill" for ev in events[bid]):
                return frozenset({"bumped"})
            return state

        ins = dataflow.solve(blocks, ENTRY, dataflow.EMPTY, transfer,
                             meet="intersect")
        saw_exit = False
        for bid, b in enumerate(blocks):
            if EXIT in b["s"]:
                if bid not in ins:
                    continue  # unreached (dead) exit edge
                saw_exit = True
                if "bumped" not in transfer(bid, ins[bid]):
                    return False
        return saw_exit

    # -- roots --------------------------------------------------------------

    def mutator_roots(self) -> list[tuple[str, int]]:
        info = self.index.classes.get(self.cls)
        if info is None:
            return []
        out: list[tuple[str, int]] = []
        for name, decl in sorted(info["methods"].items()):
            if decl["visibility"] != "public" or decl["const"]:
                continue
            if name == self.cls or name.startswith("~") or \
                    name in BUMP_NAMES or name in REPRESENTATION_ONLY or \
                    name.startswith("operator"):
                continue
            for gid in self.index.by_qname.get(f"{self.cls}::{name}", []):
                out.append((name, gid))
        return out

    # -- REV-1 --------------------------------------------------------------

    def check_rev1(self, findings: list[Finding]) -> None:
        for name, gid in self.mutator_roots():
            fn = self.index.functions[gid]
            blocks = (fn.get("cfg") or {}).get("blocks") or []
            if not blocks:
                continue
            events = self.events(gid)
            if not any(ev["t"] == "gen" for evs in events for ev in evs):
                continue
            transfer = self._make_transfer(events)

            def is_bad(bid: int, state: frozenset) -> bool:
                return EXIT in blocks[bid]["s"] and \
                    bool(transfer(bid, state))

            path = dataflow.find_trace(blocks, ENTRY, dataflow.EMPTY,
                                       transfer, is_bad)
            if not path:
                continue
            # pending site on the offending path, for the message
            state: frozenset = dataflow.EMPTY
            for bid in path:
                state = transfer(bid, state)
            pend = self._site_info(events, min(state)) if state else None
            chain = self._format_chain(blocks, path)
            where = (f" (write to '{pend['field']}' at "
                     f"{fn['_file']}:{pend['line']})" if pend else "")
            _emit(self.index, findings, fn["_file"], fn["line"], "REV-1",
                  f"{self.cls}::{name}() commits an observable member "
                  f"write{where} but the path [{chain}] returns without "
                  f"bump()/bump_structure()/bump_value(); a stale witness "
                  f"revision silently corrupts O(changed) reuse")

    @staticmethod
    def _site_info(events: list[list[dict]], site: int) -> dict | None:
        for evs in events:
            for ev in evs:
                if ev["t"] == "gen" and ev["site"] == site:
                    return ev
        return None

    @staticmethod
    def _format_chain(blocks: list[dict], path: list[int]) -> str:
        parts = []
        for bid in path:
            b = blocks[bid]
            label = b["k"]
            if b.get("l"):
                label += f"@L{b['l']}"
            if "r" in b:
                label += f" -> return@L{b['r']}"
            parts.append(label)
        return " -> ".join(parts)

    # -- REV-2 --------------------------------------------------------------

    def check_rev2(self, findings: list[Finding]) -> None:
        index, graph = self.index, self.graph
        info = index.classes.get(self.cls)
        if info is None:
            return
        for name in sorted(REPRESENTATION_ONLY):
            roots = list(index.by_qname.get(f"{self.cls}::{name}", []))
            if not roots:
                continue
            closure = _same_class_closure(index, graph, self.family, roots)
            for gid in closure:
                fn = index.functions[gid]
                hit: tuple[int, str] | None = None
                for call in fn["calls"]:
                    if call["name"] in BUMP_NAMES and \
                            call.get("recv", "") in ("", "this"):
                        hit = (call["line"], f"{call['name']}()")
                        break
                if hit is None:
                    for w in fn["writes"]:
                        field = self._member_field(fn, w)
                        if field and any(m in field
                                         for m in BUMP_FIELD_MARKERS):
                            hit = (w["line"], f"write to '{field}'")
                            break
                if hit is not None:
                    _emit(index, findings, fn["_file"], hit[0], "REV-2",
                          f"representation-only {self.cls}::{name}() "
                          f"reaches {hit[1]} in {fn['qname']}; storage "
                          f"reorganisation must not advance revision "
                          f"witnesses (it would spuriously invalidate "
                          f"O(changed) reuse)")

    # -- EXC-1 --------------------------------------------------------------

    def check_exc1(self, findings: list[Finding]) -> None:
        index = self.index
        for name, gid in self.mutator_roots():
            fn = index.functions[gid]
            if fn.get("noexcept"):
                continue
            blocks = (fn.get("cfg") or {}).get("blocks") or []
            if not blocks:
                continue
            events = self.events(gid)
            has_gen = any(ev["t"] == "gen" for evs in events for ev in evs)
            has_throw = any(ev["t"] == "throw" for evs in events
                            for ev in evs)
            raises = any(RAISE in b["s"] for b in blocks)
            if not has_gen or not (has_throw or raises):
                continue
            transfer = self._make_transfer(events)
            ins = dataflow.solve(blocks, ENTRY, dataflow.EMPTY, transfer,
                                 exc_transfer=self._make_exc_transfer(
                                     events, blocks))
            reported = False
            for bid, b in enumerate(blocks):
                if reported or bid not in ins:
                    continue
                state = set(ins[bid])
                for ev in events[bid]:
                    if ev["t"] == "gen":
                        state.add(ev["site"])
                    elif ev["t"] == "kill":
                        state.clear()
                    elif ev["t"] == "throw" and state:
                        pend = self._site_info(events, min(state))
                        if pend and self._rolled_back(blocks, events,
                                                      b, pend["field"]):
                            continue
                        _emit(index, findings, fn["_file"], ev["line"],
                              "EXC-1",
                              f"{self.cls}::{name}(): committed write to "
                              f"'{pend['field'] if pend else '?'}' (line "
                              f"{pend['line'] if pend else '?'}) precedes "
                              f"potentially-throwing '{ev['what']}()'; an "
                              f"exception here strands the write without "
                              f"a bump — reorder the commit after the "
                              f"throwing work, roll back in a catch, or "
                              f"mark the method noexcept")
                        reported = True
                        break
                if reported:
                    break
                # explicit uncaught throw with committed state pending
                if RAISE in b["s"] and bid in ins and \
                        transfer(bid, ins[bid]):
                    out = transfer(bid, ins[bid])
                    pend = self._site_info(events, min(out))
                    _emit(index, findings, fn["_file"],
                          b.get("l") or fn["line"], "EXC-1",
                          f"{self.cls}::{name}(): throw statement "
                          f"propagates while the write to "
                          f"'{pend['field'] if pend else '?'}' (line "
                          f"{pend['line'] if pend else '?'}) is committed "
                          f"but not bumped; validate before mutating or "
                          f"roll the write back before throwing")
                    reported = True

    def _rolled_back(self, blocks: list[dict], events: list[list[dict]],
                     b: dict, field: str) -> bool:
        """The throwing block has catch edges and some handler-reachable
        block re-writes the pending field (the rollback idiom)."""
        heads = b.get("c") or []
        if not heads:
            return False
        for bid in dataflow.reachable(blocks, heads):
            for ev in events[bid]:
                if ev["t"] in ("gen", "rollback") and ev["field"] == field:
                    return True
        return False


def _same_class_closure(index: ProjectIndex, graph: CallGraph,
                        family: set[str], roots: list[int]) -> list[int]:
    seen: list[int] = []
    queue = list(roots)
    while queue:
        gid = queue.pop()
        if gid in seen:
            continue
        seen.append(gid)
        for target, _ in graph.callees(gid):
            if index.functions[target]["cls"] in family:
                queue.append(target)
    return seen


# --- SHD-1 ------------------------------------------------------------------

def _context_name(index: ProjectIndex, fn: dict) -> str:
    """The nearest *named* function a lambda nests under (or fn itself)."""
    cur = fn
    while cur["kind"] == "lambda" and cur["parent"] >= 0:
        cur = index.functions[cur["_base"] + cur["parent"]]
    return cur["name"]


def _shard_state_field(index: ProjectIndex, fn: dict, w: dict,
                       state_fields: set[str]) -> str:
    """The ShardState field a write lands in, '' otherwise."""
    root, member = w["root"], w["member"]
    cur = fn
    hops = 0
    while hops < 4:
        ra = cur.get("ref_aliases") or {}
        if root in ra:
            aroot, amember = ra[root]
            member = amember or member
            root = aroot
            hops += 1
            continue
        if cur["parent"] < 0:
            break
        cur = index.functions[cur["_base"] + cur["parent"]]
    if not member or member not in state_fields:
        return ""
    # the root must plausibly BE a ShardState (declared local/param of
    # that type, a deduced `auto&` loop ref, or the owner's shards_ array)
    t = None
    cur = fn
    while t is None:
        t = cur["local_types"].get(root)
        if cur["parent"] < 0:
            break
        cur = index.functions[cur["_base"] + cur["parent"]]
    if t is None and fn["cls"]:
        f = index.field_of(fn["cls"], root)
        t = f["type"] if f is not None else None
    words = t.split() if t else []
    if not words:
        return ""
    if "auto" in words or any("ShardState" in w_ for w_ in words):
        return member
    return ""


def check_shd1(index: ProjectIndex, graph: CallGraph,
               findings: list[Finding]) -> None:
    state_fields: set[str] = set()
    for scls in SHD_STATE_CLASSES:
        info = index.classes.get(scls)
        if info is not None:
            state_fields |= set(info["fields"])
    if not state_fields or SHD_OWNER not in index.classes:
        return
    workers = graph.worker_context()
    # compute-phase closure: shard_phase_* roots plus everything they call
    closure: set[int] = set()
    queue = [fn["_gid"] for fn in index.functions
             if fn["name"].startswith(SHD_PHASE_PREFIX) or
             _context_name(index, fn).startswith(SHD_PHASE_PREFIX)]
    while queue:
        gid = queue.pop()
        if gid in closure:
            continue
        closure.add(gid)
        queue.extend(t for t, _ in graph.callees(gid))
    owner_family = set(graph._class_family(SHD_OWNER))
    for fn in index.functions:
        rel = fn["_file"]
        if fn["cls"] not in owner_family and \
                not in_scope(rel, SHD_SCOPE_PREFIXES):
            continue
        ctx = _context_name(index, fn)
        in_exchange = ctx in SHD_EXCHANGE_NAMES
        in_phase = fn["_gid"] in closure
        for w in fn["writes"]:
            field = _shard_state_field(index, fn, w, state_fields)
            if not field:
                continue
            if field in SHD_BOUNDARY_FIELDS:
                if not in_exchange:
                    _emit(index, findings, rel, w["line"], "SHD-1",
                          f"boundary state 'ShardState::{field}' written "
                          f"in {fn['qname']} (context: {ctx}); summaries "
                          f"and replicated views may only change inside "
                          f"the exchange/merge functions "
                          f"({', '.join(sorted(SHD_EXCHANGE_NAMES))})")
            elif fn["_gid"] in workers and not in_phase and \
                    not workers[fn["_gid"]].instance_local:
                # instance-local worker chains (a whole aggregator private
                # to one task) cannot race the shard's own phase workers
                info = workers[fn["_gid"]]
                _emit(index, findings, rel, w["line"], "SHD-1",
                      f"per-shard state 'ShardState::{field}' written "
                      f"from worker context [{info.witness}] outside the "
                      f"owning compute phase (shard_phase_* closure); "
                      f"cross-phase writes race with the shard's own "
                      f"workers — move the write into the phase or the "
                      f"serial coordinator")
