"""CON and LOCK rules.

CON-1/CON-2 carry over from the v1 engine (naked threads, raw
allocation), now matched on tokens so a `new` in a comment or string can
never fire.

The LOCK family encodes the project's locking discipline (DESIGN.md §13:
one shard lock at a time, values computed outside the critical section):

  LOCK-1  a second RAII guard acquired while one is still held in the
          same function — the deadlock shape the sharded cache avoids by
          design; take both with a single std::scoped_lock if two are
          truly needed.
  LOCK-2  manual .lock()/.unlock()/try_lock() or bare std::lock() — the
          unlock must survive early returns and exceptions, so locking
          is RAII-only.
  LOCK-3  expensive work inside a lock scope: calls into the known
          recompute/BFS surface, or a loop that allocates. The hot-path
          pattern is compute-outside, publish-under-lock.
"""

from __future__ import annotations

from ..core import (CON1_ALLOWED_PREFIXES, CON2_ALLOWED_PREFIXES,
                    LOCK2_ALLOWED_PREFIXES, Context, Finding, SourceFile,
                    emit, in_scope)
from ..lexer import Token
from ..scopes import Scope, match_forward, skip_template

# MutexLock is the project's annotated RAII guard over st::util::Mutex
# (src/util/thread_annotations.hpp) — a guard type for every LOCK rule.
LOCK_GUARD_TYPES = {"lock_guard", "unique_lock", "scoped_lock",
                    "shared_lock", "MutexLock"}
MANUAL_LOCK_CALLS = {"lock", "unlock", "try_lock", "try_lock_for",
                     "try_lock_until"}
# The recompute/BFS surface that must never run under a shard lock
# (SocialStateCache computes these between its two lock windows).
EXPENSIVE_CALLS = {"shortest_path", "common_friends", "compute_closeness",
                   "fof_closeness", "bottleneck_closeness",
                   "adjacent_closeness", "weighted_similarity",
                   "parallel_for"}
ALLOC_IDENTS = {"push_back", "emplace_back", "emplace", "insert", "new",
                "make_unique", "make_shared", "resize", "reserve"}


def check(sf: SourceFile, ctx: Context, findings: list[Finding]) -> None:
    _check_con1(sf, findings)
    _check_con2(sf, findings)
    sites = _lock_sites(sf)
    _check_lock1(sf, sites, findings)
    _check_lock2(sf, findings)
    _check_lock3(sf, sites, findings)


def _check_con1(sf: SourceFile, findings: list[Finding]) -> None:
    if in_scope(sf.rel, CON1_ALLOWED_PREFIXES):
        return
    code = sf.code
    n = len(code)
    for i, t in enumerate(code):
        if t.kind != "ident":
            continue
        nxt = code[i + 1].text if i + 1 < n else ""
        if t.text in ("thread", "jthread") and i >= 2 and \
                code[i - 1].text == "::" and code[i - 2].text == "std" and \
                nxt != "::":
            emit(findings, sf, t.line, "CON-1",
                 "naked std::thread; submit work to st::util::ThreadPool "
                 "so shutdown stays exception-safe "
                 "(std::thread::hardware_concurrency() etc. are fine)")
        elif t.text == "detach" and i > 0 and \
                code[i - 1].text in (".", "->") and nxt == "(":
            emit(findings, sf, t.line, "CON-1",
                 "detach() abandons the thread past pool shutdown; join "
                 "via the pool instead")


def _check_con2(sf: SourceFile, findings: list[Finding]) -> None:
    if in_scope(sf.rel, CON2_ALLOWED_PREFIXES):
        return
    code = sf.code
    n = len(code)
    for i, t in enumerate(code):
        if t.kind != "ident":
            continue
        prev = code[i - 1].text if i > 0 else ""
        nxt = code[i + 1].text if i + 1 < n else ""
        what = None
        if t.text == "new" and prev != "operator":
            what = "raw new"
        elif t.text == "delete" and prev not in ("operator", "="):
            what = "raw delete"
        elif t.text in ("malloc", "calloc", "realloc", "free") and \
                nxt == "(" and prev not in (".", "->"):
            what = "C allocation"
        if what is not None:
            emit(findings, sf, t.line, "CON-2",
                 f"{what}: use containers or std::make_unique "
                 f"(allow-list an arena file if one is ever needed)")


# --- LOCK family ------------------------------------------------------------

def _lock_sites(sf: SourceFile) -> list[tuple[int, int, int, Scope]]:
    """RAII guard declarations: (type_idx, name_idx, extent_end, scope).
    The extent runs from the declaration to the end of its enclosing
    block — exactly the region where the lock is held."""
    code = sf.code
    n = len(code)
    sites: list[tuple[int, int, int, Scope]] = []
    i = 0
    while i < n:
        t = code[i]
        if t.kind == "ident" and t.text in LOCK_GUARD_TYPES:
            j = i + 1
            if j < n and code[j].text == "<":
                j = skip_template(code, j)
            if j + 1 < n and code[j].kind == "ident" and \
                    code[j + 1].text in ("(", "{"):
                scope = sf.scopes.at(j)
                end = scope.end if scope.end >= 0 else n
                sites.append((i, j, end, scope))
                i = j + 1
                continue
        i += 1
    return sites


def _check_lock1(sf: SourceFile, sites, findings: list[Finding]) -> None:
    code = sf.code
    for a_type, a_name, a_end, a_scope in sites:
        for b_type, b_name, _, b_scope in sites:
            if b_type <= a_name or b_type > a_end:
                continue
            # A guard inside a nested lambda may run on another thread
            # (or not at all) — only lexically-same-function nesting is
            # the deadlock shape this rule polices.
            if a_scope.function is not b_scope.function:
                continue
            emit(findings, sf, code[b_name].line, "LOCK-1",
                 f"'{code[b_type].text} {code[b_name].text}' acquired "
                 f"while '{code[a_name].text}' is still held in this "
                 f"scope; the locking discipline is one shard at a time — "
                 f"release the first guard, or take both up front with a "
                 f"single std::scoped_lock")


def _check_lock2(sf: SourceFile, findings: list[Finding]) -> None:
    if in_scope(sf.rel, LOCK2_ALLOWED_PREFIXES):
        return
    code = sf.code
    n = len(code)
    for i, t in enumerate(code):
        if t.kind != "ident":
            continue
        nxt = code[i + 1].text if i + 1 < n else ""
        if t.text in MANUAL_LOCK_CALLS and i > 0 and \
                code[i - 1].text in (".", "->") and nxt == "(":
            emit(findings, sf, t.line, "LOCK-2",
                 f"manual .{t.text}(); scope a std::lock_guard / "
                 f"std::scoped_lock instead so the unlock survives early "
                 f"returns and exceptions")
        elif t.text == "lock" and i >= 2 and code[i - 1].text == "::" and \
                code[i - 2].text == "std" and nxt == "(":
            emit(findings, sf, t.line, "LOCK-2",
                 "std::lock() acquires with no owning guard; use a single "
                 "std::scoped_lock over both mutexes instead")


def _check_lock3(sf: SourceFile, sites, findings: list[Finding]) -> None:
    code = sf.code
    n = len(code)
    seen: set[tuple[int, str]] = set()

    def fire(line: int, message: str) -> None:
        if (line, message) not in seen:
            seen.add((line, message))
            emit(findings, sf, line, "LOCK-3", message)

    for _, name_idx, end, _ in sites:
        guard = code[name_idx].text
        j = name_idx + 1
        while j < min(end, n):
            t = code[j]
            if t.kind != "ident":
                j += 1
                continue
            nxt = code[j + 1].text if j + 1 < n else ""
            if t.text in EXPENSIVE_CALLS and nxt == "(":
                fire(t.line,
                     f"{t.text}() called while '{guard}' holds a lock; "
                     f"compute outside the critical section and publish "
                     f"the result under the lock")
            elif t.text in ("for", "while") and nxt == "(":
                close = match_forward(code, j + 1, "(", ")")
                if close + 1 < n and code[close + 1].text == "{":
                    body_lo = close + 2
                    body_hi = match_forward(code, close + 1, "{", "}")
                else:
                    body_lo = close + 1
                    body_hi = _semi_end(code, body_lo)
                body_hi = min(body_hi, end)
                if any(code[k].kind == "ident" and
                       code[k].text in ALLOC_IDENTS
                       for k in range(body_lo, body_hi)):
                    fire(t.line,
                         f"allocating loop inside the '{guard}' critical "
                         f"section; build outside the lock and publish "
                         f"under it, or annotate why the section must "
                         f"stay this long")
            j += 1


def _semi_end(code: list[Token], j: int) -> int:
    depth = 0
    n = len(code)
    while j < n:
        t = code[j].text
        if t in ("(", "[", "{"):
            depth += 1
        elif t in (")", "]", "}"):
            depth -= 1
        elif t == ";" and depth == 0:
            return j
        j += 1
    return n
