"""DET rules: nondeterminism sources (DET-1), hash-order traversal of
unordered containers (DET-2), and accessors that leak unordered state to
callers (DET-3).

DET-2 is the heart of the linter: the parallel update interval promises
bit-identical results at every thread count (DESIGN.md §11), and one
hash-order iteration feeding an ordered output or a floating-point
reduction silently breaks that. The token engine resolves the iterated
identifier to its declaration (scope-aware, own-header members
included), so a local ``std::vector<int> counts`` never inherits guilt
from an unrelated unordered ``counts`` elsewhere, and it recognises the
sanctioned flatten-then-sort idiom so that pattern no longer needs an
allow() annotation.
"""

from __future__ import annotations

import re

from ..core import (DET1_ALLOWED_PREFIXES, DET2_SCOPE_PREFIXES, Context,
                    Finding, SourceFile, emit, in_scope)
from ..lexer import Token
from ..scopes import _match_backward, match_forward, resolve

# Order-sensitive consumers beyond loops: handing an unordered
# container's begin() to one of these bakes hash order into an output
# stream or a floating-point reduction just as surely as a range-for.
ORDER_SENSITIVE_ALGOS = (
    "accumulate", "reduce", "partial_sum", "inclusive_scan",
    "exclusive_scan", "copy", "copy_n", "copy_if", "for_each",
    "transform",
)

SEED_CONTEXT_RE = re.compile(r"seed|time_since_epoch", re.IGNORECASE)


def check(sf: SourceFile, ctx: Context, findings: list[Finding]) -> None:
    _check_det1(sf, findings)
    _check_det2(sf, ctx, findings)


# --- DET-1: nondeterminism sources ------------------------------------------

def _check_det1(sf: SourceFile, findings: list[Finding]) -> None:
    if in_scope(sf.rel, DET1_ALLOWED_PREFIXES):
        return
    code = sf.code
    n = len(code)
    line_idents: dict[int, list[str]] = {}
    for t in code:
        if t.kind == "ident":
            line_idents.setdefault(t.line, []).append(t.text)
    seen: set[tuple[int, str]] = set()

    def fire(line: int, message: str) -> None:
        if (line, message) not in seen:
            seen.add((line, message))
            emit(findings, sf, line, "DET-1", message)

    for i, t in enumerate(code):
        if t.kind != "ident":
            continue
        nxt = code[i + 1].text if i + 1 < n else ""
        if t.text in ("rand", "srand") and nxt == "(":
            fire(t.line, "C rand()/srand(); route randomness through "
                         "st::stats::Rng")
        elif t.text == "time" and nxt == "(":
            fire(t.line, "wall-clock time() seed; experiments must be "
                         "seed-reproducible")
        elif t.text == "random_device":
            fire(t.line, "std::random_device is a nondeterministic seed "
                         "source")
        elif t.text == "system_clock":
            fire(t.line, "system_clock reads the wall clock; results would "
                         "vary per run")
        elif t.text in ("steady_clock", "high_resolution_clock"):
            if any(SEED_CONTEXT_RE.search(w)
                   for w in line_idents.get(t.line, [])):
                fire(t.line, "monotonic clock used as a seed; timing is "
                             "fine, seeding is not")


# --- DET-2 / DET-3: hash-order traversal ------------------------------------

def _top_level_colon(code: list[Token], lo: int, hi: int) -> int | None:
    depth = 0
    for j in range(lo, hi):
        t = code[j].text
        if t in ("(", "[", "{"):
            depth += 1
        elif t in (")", "]", "}"):
            depth -= 1
        elif t == ":" and depth == 0:
            return j
    return None


def _chain_root(code: list[Token], lo: int,
                hi: int) -> tuple[str | None, str, int]:
    """Classify the expression code[lo:hi): ('var', name, idx) when it
    ends in an identifier, ('call', fname, idx) when it ends in a call."""
    last = hi - 1
    if last < lo:
        return None, "", -1
    t = code[last]
    if t.text == ")":
        open_p = _match_backward(code, last, "(", ")")
        f = open_p - 1
        if f >= lo and code[f].kind == "ident":
            return "call", code[f].text, f
        return None, "", -1
    if t.kind == "ident":
        return "var", t.text, last
    return None, "", -1


def _begin_roots(code: list[Token], lo: int, hi: int):
    """`X.begin(` / `X->cbegin(` / `f(...).begin(` occurrences inside
    code[lo:hi): yields (line, kind, name, idx) per the root X or f."""
    for j in range(lo + 1, min(hi, len(code))):
        t = code[j]
        if t.kind != "ident" or t.text not in ("begin", "cbegin"):
            continue
        if code[j - 1].text not in (".", "->"):
            continue
        if j + 1 >= len(code) or code[j + 1].text != "(":
            continue
        k = j - 2
        if k >= lo and code[k].kind == "ident":
            yield t.line, "var", code[k].text, k
        elif k >= lo and code[k].text == ")":
            open_p = _match_backward(code, k, "(", ")")
            f = open_p - 1
            if f >= lo and code[f].kind == "ident":
                yield t.line, "call", code[f].text, f


def _statement_end(code: list[Token], j: int) -> int:
    """Index just past the `;` ending the statement starting at j."""
    depth = 0
    n = len(code)
    while j < n:
        t = code[j].text
        if t in ("(", "[", "{"):
            depth += 1
        elif t in (")", "]", "}"):
            depth -= 1
        elif t == ";" and depth == 0:
            return j + 1
        j += 1
    return n


def _sanctioned_flatten(code: list[Token], close_paren: int) -> bool:
    """True when the range-for body only push_back/emplace_back's into a
    single vector V and a sort over V follows the loop — the sanctioned
    flatten-then-sort idiom (the subsequent sort pins the order, so hash
    order never reaches an output or a reduction)."""
    n = len(code)
    b = close_paren + 1
    if b >= n:
        return False
    if code[b].text == "{":
        body_lo, body_hi = b + 1, match_forward(code, b, "{", "}")
        after = body_hi + 1
    else:
        body_lo = b
        after = _statement_end(code, b)
        body_hi = after
    target: str | None = None
    j = body_lo
    while j < body_hi:
        if code[j].text == ";":
            j += 1
            continue
        if not (code[j].kind == "ident" and j + 3 < body_hi
                and code[j + 1].text in (".", "->")
                and code[j + 2].kind == "ident"
                and code[j + 2].text in ("push_back", "emplace_back")
                and code[j + 3].text == "("):
            return False
        if target is None:
            target = code[j].text
        elif target != code[j].text:
            return False
        call_close = match_forward(code, j + 3, "(", ")")
        if call_close + 1 >= body_hi + 1 or code[call_close + 1].text != ";":
            return False
        j = call_close + 2
    if target is None:
        return False
    limit = min(n, after + 80)
    j = after
    while j < limit:
        t = code[j]
        if t.kind == "ident" and t.text in ("sort", "stable_sort") and \
                j + 2 < n and code[j + 1].text == "(" and \
                code[j + 2].kind == "ident" and code[j + 2].text == target:
            return True
        j += 1
    return False


def _check_det2(sf: SourceFile, ctx: Context,
                findings: list[Finding]) -> None:
    if not in_scope(sf.rel, DET2_SCOPE_PREFIXES):
        return
    code = sf.code
    tree = sf.scopes
    n = len(code)
    decls = ctx.decls_for(sf)
    externs = ctx.externs_for(sf)
    accessors = ctx.accessors_for(sf)
    seen: set[tuple[int, str, str]] = set()

    def fire(line: int, rule: str, message: str) -> None:
        if (line, rule, message) not in seen:
            seen.add((line, rule, message))
            emit(findings, sf, line, rule, message)

    def is_unordered(name: str, idx: int) -> bool:
        return resolve(name, tree.at(idx), idx, decls, externs) is not None

    def fire_det3(line: int, fname: str, how: str) -> None:
        fire(line, "DET-3",
             f"{how} {fname}(): it returns a reference/iterator into an "
             f"unordered container, so the traversal is hash order; "
             f"flatten to a vector and sort at the call site, or have the "
             f"accessor return a sorted copy")

    for i, t in enumerate(code):
        if t.kind != "ident" or i + 1 >= n or code[i + 1].text != "(":
            continue
        if t.text == "for":
            close = match_forward(code, i + 1, "(", ")")
            colon = _top_level_colon(code, i + 2, close)
            if colon is not None:  # range-for
                kind, name, idx = _chain_root(code, colon + 1, close)
                if kind == "var" and is_unordered(name, idx):
                    if not _sanctioned_flatten(code, close):
                        fire(t.line, "DET-2",
                             f"range-for over unordered container '{name}': "
                             f"hash order is an implementation accident; "
                             f"flatten to a vector and sort, or annotate "
                             f"the sorted-reduction pattern")
                elif kind == "call" and name in accessors:
                    fire_det3(t.line, name, "range-for over")
            else:  # iterator loop: for (auto it = m.begin(); ...)
                for line, kind, name, idx in _begin_roots(code, i + 1, close):
                    if kind == "var" and is_unordered(name, idx):
                        fire(line, "DET-2",
                             f"iterator loop over unordered container "
                             f"'{name}': hash order is an implementation "
                             f"accident; flatten to a vector and sort first")
                    elif kind == "call" and name in accessors:
                        fire_det3(line, name, "iterator loop over")
        elif t.text in ORDER_SENSITIVE_ALGOS:
            if i > 0 and code[i - 1].text in (".", "->"):
                continue  # member function that shares an algorithm's name
            close = match_forward(code, i + 1, "(", ")")
            if i >= 2 and code[i - 1].text == "::" and \
                    code[i - 2].text == "ranges":
                k = i + 2
                if k < close and code[k].kind == "ident" and \
                        code[k + 1].text in (",", ")"):
                    if is_unordered(code[k].text, k):
                        fire(t.line, "DET-2",
                             f"ranges::{t.text} over unordered container "
                             f"'{code[k].text}': the traversal order is "
                             f"hash order; flatten to a vector and sort "
                             f"first")
            for line, kind, name, idx in _begin_roots(code, i + 1, close):
                if kind == "var" and is_unordered(name, idx):
                    fire(t.line, "DET-2",
                         f"{t.text}() over unordered container '{name}': "
                         f"the accumulation/output order is hash order; "
                         f"flatten to a vector and sort first")
                elif kind == "call" and name in accessors:
                    fire_det3(t.line, name, f"{t.text}() over")
        elif t.text in ("insert", "assign") and i > 0 and \
                code[i - 1].text in (".", "->"):
            close = match_forward(code, i + 1, "(", ")")
            for line, kind, name, idx in _begin_roots(code, i + 1, close):
                if kind == "var" and is_unordered(name, idx):
                    fire(t.line, "DET-2",
                         f"iterator-pair insert/assign from unordered "
                         f"container '{name}' materialises hash order; "
                         f"flatten to a vector and sort first")
                elif kind == "call" and name in accessors:
                    fire_det3(t.line, name, "iterator-pair insert from")
