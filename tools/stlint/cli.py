"""Driver: file gathering, rule dispatch, budget enforcement, CLI.

tools/st_lint.py execs ``main`` from here; the flags, exit codes, and
output formats are the stable interface (docs/STATIC_ANALYSIS.md):

  exit 0  clean tree
  exit 1  findings (or, under --strict, suppression/budget violations)
  exit 2  usage errors (missing paths)

v3 adds the whole-program layer: every run builds the project index
(symbols + call-graph facts) over *all* scanned files and runs the
inter-procedural families (CON-3/LOCK-4/DET-4/API-2) on it. With
``--index-cache PATH`` the facts and per-file findings are served from a
content-hash-keyed JSON cache, so a warm re-lint after touching one file
re-lexes only that file. ``--changed-only`` narrows the per-file rules
to files changed vs the merge base while the index (and therefore the
cross-file rules) stays whole-program. ``--sarif`` emits SARIF 2.1.0
for CI upload.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

from .callgraph import CallGraph
from .core import (CXX_SUFFIXES, DEFAULT_PATHS, EXCLUDED_DIR_NAMES,
                   HEADER_SUFFIXES, REPO_ROOT, RULES, Context, Finding,
                   SourceFile, load_file, rel_path)
from .index import (IndexCache, ProjectIndex, alias_fingerprint,
                    build_facts, content_hash)
from .rules import (concurrency, determinism, hygiene, interproc, obs_docs,
                    protocol)
from .scopes import collect_aliases

DEFAULT_BUDGET = REPO_ROOT / "tools" / "lint_budget.json"
DEFAULT_OBS_DOC = REPO_ROOT / "docs" / "OBSERVABILITY.md"
DEFAULT_INDEX_CACHE = REPO_ROOT / "build" / "stlint_index.json"


def gather_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            for child in sorted(path.rglob("*")):
                if child.suffix in CXX_SUFFIXES and not any(
                        part in EXCLUDED_DIR_NAMES for part in child.parts):
                    files.append(child)
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return files


def check_budget(budget_path: Path, allow_sites: int,
                 findings: list[Finding]) -> None:
    """SUP-2: the checked-in allow() budget. Growing the count without a
    deliberate budget bump fails --strict lint."""
    if not budget_path.exists():
        return
    try:
        budget = int(json.loads(budget_path.read_text(encoding="utf-8"))
                     ["max_allow_sites"])
    except (ValueError, KeyError, TypeError) as err:
        findings.append(Finding(rel_path(budget_path), 1, "SUP-2",
                                f"unreadable budget file: {err}"))
        return
    if allow_sites > budget:
        findings.append(Finding(
            rel_path(budget_path), 1, "SUP-2",
            f"{allow_sites} st-lint allow() site(s) in the scanned tree "
            f"exceed the budget of {budget}; remove a suppression, or bump "
            f"max_allow_sites in the same change that justifies the new "
            f"one"))


def _own_header_text(path: Path) -> str | None:
    if path.suffix not in {".cpp", ".cc", ".cxx"}:
        return None
    for suffix in HEADER_SUFFIXES:
        candidate = path.with_suffix(suffix)
        if candidate.exists():
            return candidate.read_text(encoding="utf-8", errors="replace")
    return None


def run(paths: list[Path], strict: bool, obs_doc: Path | None = None,
        budget: Path | None = None, index_cache: Path | None = None,
        changed_only: set[str] | None = None,
        ) -> tuple[list[Finding], int, int]:
    """Lint ``paths``. ``changed_only``: repo-relative posix paths whose
    per-file rules should run (the index stays whole-program regardless).
    ``index_cache``: JSON cache path (None = no persistence)."""
    file_paths = gather_files(paths)
    cache = IndexCache.load(index_cache) if index_cache is not None \
        and index_cache.exists() else IndexCache(path=index_cache)

    loaded: dict[str, SourceFile] = {}
    hashes: dict[str, str] = {}
    rels: list[str] = []
    by_rel_path: dict[str, Path] = {}

    def source(rel: str) -> SourceFile:
        if rel not in loaded:
            loaded[rel] = load_file(by_rel_path[rel])
        return loaded[rel]

    # Stage A: hashes + per-file alias sets (cached by content hash alone).
    per_file_aliases: dict[str, set[str]] = {}
    for p in file_paths:
        rel = rel_path(p)
        if rel in hashes:
            continue  # duplicate path on the command line
        rels.append(rel)
        by_rel_path[rel] = p
        text = p.read_text(encoding="utf-8", errors="replace")
        hashes[rel] = content_hash(text)
        cached = cache.aliases_for(rel, hashes[rel])
        per_file_aliases[rel] = set(cached) if cached is not None \
            else collect_aliases(source(rel).code)
    aliases: set[str] = set()
    for s in per_file_aliases.values():
        aliases |= s
    alias_fp = alias_fingerprint(aliases)

    # Stage B: facts (cached by content hash + alias fingerprint).
    index = ProjectIndex()
    for rel in rels:
        facts = cache.facts_for(rel, hashes[rel], alias_fp)
        if facts is None:
            facts = build_facts(source(rel), aliases)
            cache.store(rel, hashes[rel], facts, alias_fp)
        index.add_file(rel, facts)
    index.finalize()
    graph = CallGraph(index)

    # Stage C: per-file rules (cached by content + own-header + aliases).
    ctx = Context(files=[], aliases=aliases, obs_doc=obs_doc)
    findings: list[Finding] = []
    targets = [rel for rel in rels
               if changed_only is None or rel in changed_only]
    for rel in targets:
        header_text = _own_header_text(by_rel_path[rel])
        header_hash = content_hash(header_text) if header_text is not None \
            else ""
        cached = cache.findings_for(rel, hashes[rel], header_hash, alias_fp)
        if cached is not None:
            per_file = [Finding(**f) for f in cached]
        else:
            sf = source(rel)
            per_file = []
            determinism.check(sf, ctx, per_file)
            concurrency.check(sf, ctx, per_file)
            hygiene.check(sf, ctx, per_file)
            cache.store_findings(rel, header_hash, alias_fp,
                                 [vars(f) for f in per_file])
        findings.extend(per_file)
        if strict:
            findings.extend(Finding(**f) for f in
                            index.files[rel].get("bad_suppressions", []))

    # Stage D: whole-program rules from facts (cheap, never cached).
    interproc.check(index, graph, findings)
    protocol.check(index, graph, findings)
    obs_docs.check_tree_facts(index, obs_doc, findings)
    allow_sites = sum(index.files[rel].get("allow_sites", 0)
                      for rel in rels)
    if strict and budget is not None:
        check_budget(budget, allow_sites, findings)

    if changed_only is not None:
        findings = [f for f in findings
                    if f.path in changed_only or f.rule == "SUP-2"
                    or f.rule == "OBS-2"]
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    cache.prune(set(rels))
    cache.save()
    return findings, len(rels), allow_sites


def changed_files(merge_ref: str = "origin/main",
                  repo_root: Path | None = None) -> set[str]:
    """Repo-relative posix paths changed vs the merge base (plus any
    uncommitted/untracked files). Falls back to HEAD when the ref does
    not exist (e.g. no origin remote). Renames are followed
    (--find-renames): the *new* path of a renamed file is reported, so a
    rename-plus-edit is re-linted instead of silently skipped."""
    root = repo_root if repo_root is not None else REPO_ROOT

    def git(*args: str) -> str:
        try:
            return subprocess.run(
                ["git", "-C", str(root), *args],
                capture_output=True, text=True, check=False).stdout
        except OSError:
            return ""

    base = git("merge-base", "HEAD", merge_ref).strip()
    if not base:
        base = "HEAD"
    out: set[str] = set()
    # --name-status rows: "M\tpath", "A\tpath", "R095\told\tnew", ...
    for row in git("diff", "--name-status", "--find-renames",
                   base).splitlines():
        parts = row.split("\t")
        if len(parts) < 2:
            continue
        status = parts[0].strip()
        if status.startswith(("R", "C")) and len(parts) >= 3:
            out.add(parts[2].strip())  # renamed/copied: lint the new path
        elif not status.startswith("D"):
            out.add(parts[1].strip())
    for name in git("ls-files", "--others",
                    "--exclude-standard").splitlines():
        if name.strip():
            out.add(name.strip())
    return {n for n in out if n}


def to_sarif(findings: list[Finding]) -> dict:
    """SARIF 2.1.0 document for github/codeql-action/upload-sarif."""
    return {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/"
                   "sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "st-lint",
                "informationUri":
                    "https://github.com/socialtrust/socialtrust",
                "rules": [{"id": rule,
                           "shortDescription": {"text": text},
                           "helpUri": f"docs/STATIC_ANALYSIS.md"
                                      f"#{rule.lower()}"}
                          for rule, text in sorted(RULES.items())],
            }},
            "results": [{
                "ruleId": f.rule,
                "level": "error",
                "message": {"text": f.message},
                "locations": [{"physicalLocation": {
                    "artifactLocation": {"uri": f.path,
                                         "uriBaseId": "SRCROOT"},
                    "region": {"startLine": max(1, f.line)},
                }}],
            } for f in findings],
        }],
    }


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="st_lint.py",
        description="determinism & concurrency linter for the SocialTrust "
                    "tree (see docs/STATIC_ANALYSIS.md)")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories (default: src bench tests)")
    parser.add_argument("--strict", action="store_true",
                        help="also enforce suppression hygiene (SUP-1) and "
                             "the allow() budget (SUP-2)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit findings as JSON on stdout")
    parser.add_argument("--sarif", action="store_true",
                        help="emit findings as SARIF 2.1.0 on stdout")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--obs-doc", metavar="PATH", default=None,
                        help="metric-reference doc for OBS-1/OBS-2 "
                             "(default: docs/OBSERVABILITY.md, enabled only "
                             "when the scan covers the repo's src/ tree)")
    parser.add_argument("--budget", metavar="PATH", default=None,
                        help="allow() budget file for SUP-2 "
                             "(default: tools/lint_budget.json)")
    parser.add_argument("--index-cache", metavar="PATH", default=None,
                        help="persist the whole-program symbol index to "
                             "PATH (default: off; CI and the ctest "
                             "selfcheck pass build/stlint_index.json)")
    parser.add_argument("--changed-only", action="store_true",
                        help="run per-file rules only on files changed vs "
                             "merge-base(HEAD, origin/main); the index and "
                             "cross-file rules stay whole-program")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, description in RULES.items():
            print(f"{rule}  {description}")
        return 0

    raw_paths = args.paths or [REPO_ROOT / p for p in DEFAULT_PATHS]
    input_paths = [Path(p) for p in raw_paths]

    if args.obs_doc is not None:
        obs_doc = Path(args.obs_doc)
    else:
        # Only diff against the repo's own doc when the scan actually
        # covers the repo's src/ tree; fixture trees opt in via --obs-doc.
        repo_src = (REPO_ROOT / "src").resolve()
        covers_src = any(p.is_dir() and p.resolve() == repo_src
                         for p in input_paths)
        obs_doc = DEFAULT_OBS_DOC if covers_src else None

    budget = Path(args.budget) if args.budget is not None else DEFAULT_BUDGET
    index_cache = Path(args.index_cache) if args.index_cache else None
    changed = changed_files() if args.changed_only else None

    try:
        findings, file_count, allow_sites = run(
            input_paths, args.strict, obs_doc=obs_doc, budget=budget,
            index_cache=index_cache, changed_only=changed)
    except FileNotFoundError as err:
        print(err, file=sys.stderr)
        return 2

    if args.sarif:
        print(json.dumps(to_sarif(findings), indent=2))
    elif args.as_json:
        print(json.dumps({
            "files_scanned": file_count,
            "allow_sites": allow_sites,
            "findings": [vars(f) for f in findings],
        }, indent=2))
    else:
        for finding in findings:
            print(finding.as_text(), file=sys.stderr)
        print(f"st-lint: scanned {file_count} file(s): "
              f"{'OK' if not findings else f'{len(findings)} finding(s)'}")
    return 1 if findings else 0
