"""Driver: file gathering, rule dispatch, budget enforcement, CLI.

tools/st_lint.py execs ``main`` from here; the flags, exit codes, and
output formats are the stable interface (docs/STATIC_ANALYSIS.md):

  exit 0  clean tree
  exit 1  findings (or, under --strict, suppression/budget violations)
  exit 2  usage errors (missing paths)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .core import (CXX_SUFFIXES, DEFAULT_PATHS, EXCLUDED_DIR_NAMES,
                   REPO_ROOT, RULES, Context, Finding, SourceFile,
                   load_file, rel_path)
from .rules import concurrency, determinism, hygiene, obs_docs
from .scopes import collect_aliases

DEFAULT_BUDGET = REPO_ROOT / "tools" / "lint_budget.json"
DEFAULT_OBS_DOC = REPO_ROOT / "docs" / "OBSERVABILITY.md"


def gather_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            for child in sorted(path.rglob("*")):
                if child.suffix in CXX_SUFFIXES and not any(
                        part in EXCLUDED_DIR_NAMES for part in child.parts):
                    files.append(child)
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return files


def check_budget(budget_path: Path, files: list[SourceFile],
                 findings: list[Finding]) -> None:
    """SUP-2: the checked-in allow() budget. Growing the count without a
    deliberate budget bump fails --strict lint."""
    if not budget_path.exists():
        return
    try:
        budget = int(json.loads(budget_path.read_text(encoding="utf-8"))
                     ["max_allow_sites"])
    except (ValueError, KeyError, TypeError) as err:
        findings.append(Finding(rel_path(budget_path), 1, "SUP-2",
                                f"unreadable budget file: {err}"))
        return
    total = sum(sf.allow_sites for sf in files)
    if total > budget:
        findings.append(Finding(
            rel_path(budget_path), 1, "SUP-2",
            f"{total} st-lint allow() site(s) in the scanned tree exceed "
            f"the budget of {budget}; remove a suppression, or bump "
            f"max_allow_sites in the same change that justifies the new "
            f"one"))


def run(paths: list[Path], strict: bool, obs_doc: Path | None = None,
        budget: Path | None = None) -> tuple[list[Finding], int, int]:
    sources = [load_file(p) for p in gather_files(paths)]
    aliases: set[str] = set()
    for sf in sources:
        aliases |= collect_aliases(sf.code)
    ctx = Context(files=sources, aliases=aliases, obs_doc=obs_doc,
                  by_path={sf.path.resolve(): sf for sf in sources})
    findings: list[Finding] = []
    for sf in sources:
        determinism.check(sf, ctx, findings)
        concurrency.check(sf, ctx, findings)
        hygiene.check(sf, ctx, findings)
        if strict:
            findings.extend(sf.bad_suppressions)
    obs_docs.check_tree(ctx, findings)
    if strict and budget is not None:
        check_budget(budget, sources, findings)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    allow_sites = sum(sf.allow_sites for sf in sources)
    return findings, len(sources), allow_sites


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="st_lint.py",
        description="determinism & concurrency linter for the SocialTrust "
                    "tree (see docs/STATIC_ANALYSIS.md)")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories (default: src bench tests)")
    parser.add_argument("--strict", action="store_true",
                        help="also enforce suppression hygiene (SUP-1) and "
                             "the allow() budget (SUP-2)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit findings as JSON on stdout")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--obs-doc", metavar="PATH", default=None,
                        help="metric-reference doc for OBS-1/OBS-2 "
                             "(default: docs/OBSERVABILITY.md, enabled only "
                             "when the scan covers the repo's src/ tree)")
    parser.add_argument("--budget", metavar="PATH", default=None,
                        help="allow() budget file for SUP-2 "
                             "(default: tools/lint_budget.json)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, description in RULES.items():
            print(f"{rule}  {description}")
        return 0

    raw_paths = args.paths or [REPO_ROOT / p for p in DEFAULT_PATHS]
    input_paths = [Path(p) for p in raw_paths]

    if args.obs_doc is not None:
        obs_doc = Path(args.obs_doc)
    else:
        # Only diff against the repo's own doc when the scan actually
        # covers the repo's src/ tree; fixture trees opt in via --obs-doc.
        repo_src = (REPO_ROOT / "src").resolve()
        covers_src = any(p.is_dir() and p.resolve() == repo_src
                         for p in input_paths)
        obs_doc = DEFAULT_OBS_DOC if covers_src else None

    budget = Path(args.budget) if args.budget is not None else DEFAULT_BUDGET

    try:
        findings, file_count, allow_sites = run(
            input_paths, args.strict, obs_doc=obs_doc, budget=budget)
    except FileNotFoundError as err:
        print(err, file=sys.stderr)
        return 2

    if args.as_json:
        print(json.dumps({
            "files_scanned": file_count,
            "allow_sites": allow_sites,
            "findings": [vars(f) for f in findings],
        }, indent=2))
    else:
        for finding in findings:
            print(finding.as_text(), file=sys.stderr)
        print(f"st-lint: scanned {file_count} file(s): "
              f"{'OK' if not findings else f'{len(findings)} finding(s)'}")
    return 1 if findings else 0
