"""Whole-program call graph over the ProjectIndex fact records.

Call edges are resolved by name plus whatever scope information the
facts carry:

  * explicit qualifier      `Cls::f(...)`        -> Cls::f
  * method on a receiver    `x.f(...)`           -> T::f where T is x's
    declared type (local, param, or member field), searched up the base
    chain and down to derived classes (the base-pointer case)
  * unqualified in a method  `f(...)`            -> same-class f first,
    then free functions
  * conservative fallback: several definitions sharing the resolved
    qualified name (overloads) all become targets; an unknown receiver
    links to every method with that name.

The worker-context computation seeds from lambdas passed to
`parallel_for` / `ThreadPool::submit` call sites, discovers wrapper
dispatchers (functions that forward a callable parameter into a
dispatcher, e.g. `run_blocks`) to a fixpoint, and closes over call
edges. Each reached function carries an *instance-local* bit: a method
invoked on a receiver that is local to its caller operates on
thread-private state, so its member self-writes are exempt from CON-3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .index import ProjectIndex

DISPATCHER_NAMES = {"parallel_for", "submit"}


@dataclass
class WorkerInfo:
    """One function reached from a worker body, with its access path."""
    gid: int
    instance_local: bool
    witness: str  # "parallel_for at file:line -> f -> g"


class CallGraph:
    def __init__(self, index: ProjectIndex):
        self.index = index
        self._derived: dict[str, list[str]] = {}
        for cname, info in index.classes.items():
            for base in info["bases"]:
                self._derived.setdefault(base, []).append(cname)
        self._edges: dict[int, list[tuple[int, dict]]] = {}

    # --- resolution --------------------------------------------------------

    def _class_family(self, cls: str) -> list[str]:
        """cls, its bases (inherited methods), and its derived classes
        (virtual dispatch through a base pointer)."""
        seen: list[str] = []
        queue = [cls]
        while queue:
            c = queue.pop()
            if c in seen or c not in self.index.classes:
                if c not in seen and c == cls:
                    seen.append(c)
                continue
            seen.append(c)
            queue.extend(self.index.classes[c]["bases"])
            queue.extend(self._derived.get(c, []))
        return seen or [cls]

    def _receiver_type(self, fn: dict, recv: str) -> str | None:
        t = fn["local_types"].get(recv)
        if t is None and fn["cls"]:
            f = self.index.field_of(fn["cls"], recv)
            if f is not None:
                t = f["type"]
        if t is None and fn["parent"] >= 0:
            # a lambda's captured name: look in the enclosing function
            parent = self.index.functions[fn["_base"] + fn["parent"]]
            return self._receiver_type(parent, recv)
        return t

    def resolve(self, fn: dict, call: dict) -> list[int]:
        name = call["name"]
        index = self.index
        if call.get("qual"):
            return list(index.by_qname.get(f"{call['qual']}::{name}", []))
        # `auto f = [..]{..}; ... f(...)` — the local *is* the lambda
        if not call.get("recv") and \
                name in (fn.get("lambda_locals") or {}):
            return [fn["_base"] + fn["lambda_locals"][name]]
        if call.get("recv") and call["recv"] != "this":
            rtype = self._receiver_type(fn, call["recv"])
            if rtype is not None:
                for word in rtype.split():
                    if word in index.classes:
                        targets: list[int] = []
                        for c in self._class_family(word):
                            targets.extend(
                                index.by_qname.get(f"{c}::{name}", []))
                        return targets
                return []  # known non-class receiver (vector, map, ...)
            # unknown receiver: every method with this name (conservative)
            return [g for g in index.by_name.get(name, [])
                    if index.functions[g]["cls"]]
        # unqualified (or this->): same class chain first, then free fns
        if fn["cls"]:
            for c in self._class_family(fn["cls"]):
                hit = index.by_qname.get(f"{c}::{name}")
                if hit:
                    return list(hit)
        if call.get("recv") == "this":
            return []
        return list(index.by_qname.get(name, []))

    def callees(self, gid: int) -> list[tuple[int, dict]]:
        if gid not in self._edges:
            fn = self.index.functions[gid]
            out = []
            for call in fn["calls"]:
                for target in self.resolve(fn, call):
                    if target != gid:  # recursion: keep the node, skip self
                        out.append((target, call))
            # a lambda's body belongs to its enclosing function's behaviour
            # only when invoked; nested lambdas reached via call records.
            self._edges[gid] = out
        return self._edges[gid]

    # --- worker context (CON-3) -------------------------------------------

    def _all_resolved_calls(self) -> list[tuple[dict, dict, list[int]]]:
        """Every (fn, call, resolved targets) triple, resolved once —
        the dispatcher fixpoint and the seed scan both walk this list
        repeatedly, and resolution is the expensive part."""
        if not hasattr(self, "_resolved_calls"):
            self._resolved_calls = [
                (fn, call, self.resolve(fn, call))
                for fn in self.index.functions
                for call in fn["calls"]]
        return self._resolved_calls

    def dispatcher_gids(self) -> set[int]:
        """Fixpoint of wrapper dispatchers: functions forwarding one of
        their own parameters into a dispatcher call."""
        wrappers: set[int] = set()
        changed = True
        while changed:
            changed = False
            for fn, call, targets in self._all_resolved_calls():
                if fn["_gid"] in wrappers:
                    continue
                pnames = {p["name"] for p in fn["params"] if p["name"]}
                if not pnames:
                    continue
                is_dispatch = call["name"] in DISPATCHER_NAMES or any(
                    t in wrappers for t in targets)
                if is_dispatch and pnames & set(call["args"]):
                    wrappers.add(fn["_gid"])
                    changed = True
        return wrappers

    def worker_context(self) -> dict[int, WorkerInfo]:
        """gid -> WorkerInfo for every function reachable from a worker
        body. instance_local=False wins when a function is reached both
        ways (the shared-instance path is the dangerous one)."""
        index = self.index
        wrappers = self.dispatcher_gids()
        seeds: list[WorkerInfo] = []
        for fn, call, targets in self._all_resolved_calls():
            is_dispatch = call["name"] in DISPATCHER_NAMES or any(
                t in wrappers for t in targets)
            if not is_dispatch:
                continue
            for local_id in call["lambdas"]:
                gid = fn["_base"] + local_id
                seeds.append(WorkerInfo(
                    gid, False,
                    f"{call['name']} at {fn['_file']}:{call['line']}"))
            # a lambda-typed local passed by *name* into a dispatcher
            # (`auto work = [&]{..}; pool->parallel_for(n, work);`) runs
            # on workers just like an inline literal
            ll = fn.get("lambda_locals") or {}
            for arg in call["args"]:
                if arg in ll:
                    seeds.append(WorkerInfo(
                        fn["_base"] + ll[arg], False,
                        f"{call['name']} at {fn['_file']}:{call['line']}"))
        best: dict[int, WorkerInfo] = {}
        queue = list(seeds)
        while queue:
            info = queue.pop(0)
            cur = best.get(info.gid)
            if cur is not None and not (cur.instance_local
                                        and not info.instance_local):
                continue  # already recorded at least as dangerously
            best[info.gid] = info
            fn = index.functions[info.gid]
            for target, call in self.callees(info.gid):
                callee = index.functions[target]
                inst_local = self._callee_instance_local(
                    fn, call, callee, info.instance_local)
                queue.append(WorkerInfo(
                    target, inst_local,
                    f"{info.witness} -> {callee['qname']}"))
        return best

    def _callee_instance_local(self, caller: dict, call: dict,
                               callee: dict, caller_local: bool) -> bool:
        if not callee["cls"]:
            return True  # free function: no instance state to speak of
        recv = call.get("recv", "")
        if recv and recv != "this":
            # locals and params of the caller — or, for a lambda, of any
            # enclosing function whose frame the capture aliases — are
            # worker-private (by-ref params propagate their own caller's
            # locality transitively through the witness chain)
            cur = caller
            while True:
                if recv in cur["locals"]:
                    return True
                if cur["parent"] < 0:
                    break
                cur = self.index.functions[cur["_base"] + cur["parent"]]
            if caller["cls"] and \
                    self.index.field_of(caller["cls"], recv) is not None:
                # member sub-object: as local as the caller's instance
                return caller_local
            return False
        # implicit/this call: same instance as the caller
        return caller_local

    # --- lock acquisition closure (LOCK-4) --------------------------------

    def lock_class(self, fn: dict, lock: dict) -> str:
        index = self.index
        recv, fld = lock["recv"], lock["field"]
        if recv == fld or not recv:  # bare `mutex_`
            if fn["cls"] is not None and fn["cls"]:
                if index.field_of(fn["cls"], fld) is not None:
                    return f"{fn['cls']}::{fld}"
            if fld in fn["locals"]:
                return f"{fn['qname']}::{fld}"
            owners = [c for c, info in index.classes.items()
                      if fld in info["fields"]
                      and info["fields"][fld].get("mutex")]
            if len(owners) == 1:
                return f"{owners[0]}::{fld}"
            return fld
        rtype = self._receiver_type(fn, recv)
        if rtype:
            for word in rtype.split():
                if word in index.classes and \
                        index.field_of(word, fld) is not None:
                    return f"{word}::{fld}"
        owners = [c for c, info in index.classes.items()
                  if fld in info["fields"]
                  and info["fields"][fld].get("mutex")]
        if len(owners) == 1:
            return f"{owners[0]}::{fld}"
        return f"{recv}.{fld}"

    def acquired_closure(self, gid: int,
                         _memo: dict | None = None,
                         _stack: set | None = None) -> dict[str, str]:
        """lock class -> witness chain for every lock a call to gid may
        take, transitively."""
        memo = _memo if _memo is not None else {}
        stack = _stack if _stack is not None else set()
        if gid in memo:
            return memo[gid]
        if gid in stack:
            return {}
        stack.add(gid)
        fn = self.index.functions[gid]
        out: dict[str, str] = {}
        for lock in fn["locks"]:
            cls = self.lock_class(fn, lock)
            out.setdefault(cls, f"{fn['qname']} ({fn['_file']}:{lock['line']})")
        for target, call in self.callees(gid):
            for cls, chain in self.acquired_closure(target, memo,
                                                    stack).items():
                out.setdefault(cls, f"{fn['qname']} -> {chain}")
        stack.discard(gid)
        memo[gid] = out
        return out
