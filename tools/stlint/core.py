"""Shared datamodel for stlint: findings, suppressions, SourceFile.

A SourceFile carries the raw lines (suppression comments, HYG-1), the
full token stream, the comment/pp-free code-token stream, and the scope
tree built over it. Rules receive SourceFiles and a cross-file Context
and emit Findings through `emit`, which applies per-line suppressions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

from .lexer import Token, code_tokens, tokenize
from .scopes import (Declaration, ScopeTree, collect_accessors,
                     collect_declarations)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
CXX_SUFFIXES = {".cpp", ".cc", ".cxx", ".hpp", ".h", ".hxx"}
HEADER_SUFFIXES = {".hpp", ".h", ".hxx"}
EXCLUDED_DIR_NAMES = {"build", ".git", "third_party"}
DEFAULT_PATHS = ["src", "bench", "tests", "examples"]

RULES = {
    "DET-1": "nondeterminism source outside src/stats/rng.*",
    "DET-2": "hash-order traversal (loop, algorithm, or range copy) over "
             "an unordered container in a determinism-critical directory",
    "DET-3": "iterating a function that returns a reference/iterator into "
             "an unordered container (the accessor escape hatch)",
    "DET-4": "whole-program determinism taint: a cross-TU unordered "
             "accessor or address-keyed container feeding a float "
             "accumulation or ordered output",
    "CON-1": "naked std::thread / detach() outside src/util/thread_pool.*",
    "CON-2": "raw new/delete/malloc outside allow-listed files",
    "CON-3": "write to non-local, non-atomic state from the worker "
             "context (reachable from a parallel_for/submit body) "
             "without a held lock",
    "LOCK-1": "second mutex acquired while one is held in the same scope",
    "LOCK-2": "manual .lock()/.unlock() instead of an RAII guard",
    "LOCK-3": "expensive work (BFS/recompute calls, allocating loops) "
              "inside a lock scope",
    "LOCK-4": "lock-order cycle in the whole-program acquisition graph "
              "(lifted across function boundaries)",
    "API-2": "SocialGraph/InterestProfiles mutation path that never "
             "reaches a revision bump, or an accessor callable from "
             "inside rebuild()",
    "REV-1": "path-sensitive revision protocol: a path through a public "
             "mutator commits an observable member write but returns "
             "without reaching bump()/bump_structure()/bump_value()",
    "REV-2": "representation-only entry point (rebuild/materialize/"
             "begin_interval) reaches a revision bump, spuriously "
             "invalidating O(changed) reuse",
    "EXC-1": "committed member write in a mutator precedes a potentially-"
             "throwing call without rollback or noexcept; an exception "
             "strands un-bumped state",
    "SHD-1": "ShardState written outside the owning shard_phase_* compute "
             "closure, or boundary summary/rep_view state written outside "
             "the exchange/merge functions",
    "OBS-1": "metric name not snake_case, not unique, or missing from "
             "docs/OBSERVABILITY.md",
    "OBS-2": "metric documented in docs/OBSERVABILITY.md but registered "
             "nowhere in the scanned src/ tree",
    "HYG-1": ".cpp does not include its own header first",
    "HYG-2": "using namespace at namespace scope in a header",
    "SUP-1": "suppression without a rule id or reason",
    "SUP-2": "allow() sites exceed the budget in tools/lint_budget.json",
}

# Per-rule path scoping. Prefixes are matched against the file's
# repo-relative posix path; for files outside the repo (fixtures, tests)
# the prefix is also matched as an interior substring so layouts like
# /tmp/xyz/src/core/f.cpp scope the same way.
DET1_ALLOWED_PREFIXES = ("src/stats/rng.",)
DET2_SCOPE_PREFIXES = ("src/core/", "src/graph/", "src/reputation/",
                       "src/shard/", "src/sim/")
CON1_ALLOWED_PREFIXES = ("src/util/thread_pool.",)
CON2_ALLOWED_PREFIXES: tuple[str, ...] = ()
# The annotated Mutex wrapper implements RAII guards, so its internals
# necessarily spell .lock()/.unlock(); everything else stays RAII-only.
LOCK2_ALLOWED_PREFIXES = ("src/util/thread_annotations.",)
OBS_SCOPE_PREFIXES = ("src/",)

# Shared between API-2 (v3, whole-closure) and the REV family (v4,
# path-sensitive) so the two layers agree on what counts as protocol-
# observable. Entry points that reorganise storage without changing
# observable values need no bump (REV-2 *forbids* one); writes to
# representation buffers are maintenance, not mutation; writing an
# epoch/revision counter IS the protocol.
REPRESENTATION_ONLY = {"begin_interval", "rebuild", "maybe_rebuild",
                       "materialize", "materialize_rel", "materialize_int"}
REPR_FIELD_MARKERS = ("overlay", "tombstone", "scratch", "rebuilds_")
BUMP_FIELD_MARKERS = ("epoch_", "revision")

ALLOW_RE = re.compile(r"//\s*st-lint:\s*allow\(\s*([A-Za-z]+-?\d*)\s*([^)]*)\)")
NOLINT_RE = re.compile(r"//\s*NOLINT(NEXTLINE)?\b(\(([^)]*)\))?(.*)")


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def as_text(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


@dataclass
class Suppression:
    rule: str
    reason: str


@dataclass
class SourceFile:
    """One scanned file: raw lines plus token stream and scope tree."""

    path: Path
    rel: str  # repo-relative (or as-given) posix path used in reports
    raw_lines: list[str]
    tokens: list[Token]       # full stream, comments and pp included
    code: list[Token]         # comment/pp-free stream the rules scan
    scopes: ScopeTree
    suppressions: dict[int, list[Suppression]] = field(default_factory=dict)
    bad_suppressions: list[Finding] = field(default_factory=list)
    allow_sites: int = 0  # count of well-formed st-lint allow() comments


def rel_path(path: Path) -> str:
    try:
        return path.resolve().relative_to(REPO_ROOT).as_posix()
    except ValueError:
        return path.as_posix()


def in_scope(rel: str, prefixes: tuple[str, ...]) -> bool:
    """True when the path starts with a prefix, or contains it as an
    interior path component (so out-of-repo fixture trees scope too)."""
    return any(rel.startswith(p) or f"/{p}" in rel for p in prefixes)


def load_file(path: Path) -> SourceFile:
    text = path.read_text(encoding="utf-8", errors="replace")
    tokens = tokenize(text)
    code = code_tokens(tokens)
    sf = SourceFile(path=path, rel=rel_path(path),
                    raw_lines=text.splitlines(), tokens=tokens, code=code,
                    scopes=ScopeTree(code))
    collect_suppressions(sf)
    return sf


def collect_suppressions(sf: SourceFile) -> None:
    """Parse st-lint allow() and clang-tidy NOLINT comments. A comment on
    its own line covers the next line; otherwise it covers its own."""
    for lineno, raw in enumerate(sf.raw_lines, start=1):
        for match in ALLOW_RE.finditer(raw):
            rule = match.group(1).upper()
            reason = match.group(2).strip()
            target = lineno
            if raw[:match.start()].strip() == "":  # comment-only line
                target = lineno + 1
            if rule not in RULES:
                sf.bad_suppressions.append(Finding(
                    sf.rel, lineno, "SUP-1",
                    f"allow() names unknown rule '{rule}'"))
                continue
            if not reason:
                sf.bad_suppressions.append(Finding(
                    sf.rel, lineno, "SUP-1",
                    f"allow({rule}) carries no reason string"))
                continue
            sf.allow_sites += 1
            sf.suppressions.setdefault(target, []).append(
                Suppression(rule, reason))
        for match in NOLINT_RE.finditer(raw):
            checks = (match.group(3) or "").strip()
            trailing = (match.group(4) or "").strip().lstrip(":").strip()
            if not checks or checks == "*":
                sf.bad_suppressions.append(Finding(
                    sf.rel, lineno, "SUP-1",
                    "NOLINT must name the suppressed check(s): "
                    "NOLINT(check-name): reason"))
            elif not trailing:
                sf.bad_suppressions.append(Finding(
                    sf.rel, lineno, "SUP-1",
                    f"NOLINT({checks}) carries no reason string"))


def is_suppressed(sf: SourceFile, lineno: int, rule: str) -> bool:
    return any(s.rule == rule for s in sf.suppressions.get(lineno, []))


def emit(findings: list[Finding], sf: SourceFile, lineno: int, rule: str,
         message: str) -> None:
    if not is_suppressed(sf, lineno, rule):
        findings.append(Finding(sf.rel, lineno, rule, message))


def own_header_of(sf: SourceFile) -> Path | None:
    if sf.path.suffix not in {".cpp", ".cc", ".cxx"}:
        return None
    for suffix in HEADER_SUFFIXES:
        candidate = sf.path.with_suffix(suffix)
        if candidate.exists():
            return candidate.resolve()
    return None


@dataclass
class Context:
    """Cross-file state shared by the rules: the scanned set, the global
    unordered-alias names, and lazily computed per-file declaration /
    accessor tables. A .cpp's own header is loaded on demand even when it
    was not itself part of the scan, so member declarations resolve."""

    files: list[SourceFile]
    aliases: set[str]
    obs_doc: Path | None = None  # None = code<->docs checks disabled
    by_path: dict[Path, SourceFile] = field(default_factory=dict)
    _decls: dict[str, list[Declaration]] = field(default_factory=dict)
    _accessors: dict[str, set[str]] = field(default_factory=dict)
    _externs: dict[str, set[str]] = field(default_factory=dict)

    def header_for(self, sf: SourceFile) -> SourceFile | None:
        header = own_header_of(sf)
        if header is None:
            return None
        if header not in self.by_path:
            self.by_path[header] = load_file(header)
        return self.by_path[header]

    def decls_for(self, sf: SourceFile) -> list[Declaration]:
        key = str(sf.path)
        if key not in self._decls:
            self._decls[key] = collect_declarations(sf.code, sf.scopes,
                                                    self.aliases)
        return self._decls[key]

    def externs_for(self, sf: SourceFile) -> set[str]:
        """Unordered-typed names a .cpp inherits from its own header."""
        key = str(sf.path)
        if key not in self._externs:
            header = self.header_for(sf)
            self._externs[key] = ({d.name for d in self.decls_for(header)}
                                  if header is not None else set())
        return self._externs[key]

    def accessors_for(self, sf: SourceFile) -> set[str]:
        """DET-3 accessor names visible in this TU (file + own header)."""
        key = str(sf.path)
        if key not in self._accessors:
            names = collect_accessors(sf.code, self.aliases)
            header = self.header_for(sf)
            if header is not None:
                names |= collect_accessors(header.code, self.aliases)
            self._accessors[key] = names
        return self._accessors[key]
