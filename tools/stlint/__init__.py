"""stlint — the token/scope-aware analysis engine behind tools/st_lint.py.

Package layout (see docs/STATIC_ANALYSIS.md for the rule catalogue):

  lexer.py   C++ tokenizer: comments, string/char/raw-string literals,
             preprocessor directives, identifiers, punctuation — every
             token carries its line, so findings stay line-addressable.
  scopes.py  brace/namespace/class/function scope tree over the token
             stream, plus scope-aware declaration resolution.
  core.py    shared datamodel: Finding, Suppression, SourceFile (tokens +
             scopes + raw lines), suppression parsing, path scoping.
  rules/     one module per rule family (determinism, concurrency,
             hygiene, obs_docs), each registering into rules.ALL_RULES.
  cli.py     driver: file gathering, rule dispatch, budget enforcement,
             --strict/--json/--list-rules, exit codes.

tools/st_lint.py is the stable CLI entry point; everything here is an
implementation detail behind it.
"""
