"""Forward dataflow over cfg.py block graphs (v4).

Two entry points:

  * ``solve`` — classic worklist iteration. States are frozensets; the
    caller supplies ``transfer(block_id, in_state) -> out_state`` (a
    gen/kill function replaying the block's ordered events) and picks the
    meet: ``"union"`` for may-analyses (is there *a* path on which a fact
    holds?) or ``"intersect"`` for must-analyses (does it hold on *every*
    path?). Returns the fixed-point in-state per block.

  * ``find_trace`` — once ``solve`` says a bad block exists, BFS over
    (block, state) pairs from the entry reconstructs one concrete witness
    path, shortest first, so REV-1 can print the offending chain the way
    LOCK-4 prints lock orders.

States stay tiny (a handful of write sites per mutator), so the product
space in ``find_trace`` is bounded; a hard iteration cap keeps degenerate
graphs from spinning.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterable

State = frozenset
EMPTY: State = frozenset()

_MAX_STEPS = 20000


def solve(blocks: list[dict], entry: int, init: State,
          transfer: Callable[[int, State], State],
          meet: str = "union",
          exc_transfer: Callable[[int, State], State] | None = None,
          ) -> dict[int, State]:
    """Fixed-point in-states. Unreached blocks are absent from the result.

    When ``exc_transfer`` is given, edges into catch-head blocks carry its
    output instead of the normal out-state: exceptional control leaves a
    block *mid-flight* at the throwing call, so facts established after
    that point must not reach the handler."""
    preds: dict[int, list[int]] = {i: [] for i in range(len(blocks))}
    for i, b in enumerate(blocks):
        for s in b["s"]:
            preds[s].append(i)

    ins: dict[int, State] = {entry: init}
    outs: dict[int, tuple[State, State]] = {}
    work = deque([entry])
    steps = 0
    while work and steps < _MAX_STEPS:
        steps += 1
        bid = work.popleft()
        out = transfer(bid, ins[bid])
        eout = exc_transfer(bid, ins[bid]) if exc_transfer else out
        if outs.get(bid) == (out, eout):
            continue
        outs[bid] = (out, eout)
        for succ in blocks[bid]["s"]:
            exc_edge = exc_transfer is not None and \
                blocks[succ]["k"] == "catch"
            reached = [outs[p][1 if exc_edge else 0]
                       for p in preds[succ] if p in outs]
            if not reached:
                continue
            if meet == "union":
                new_in = frozenset().union(*reached)
            else:
                new_in = frozenset.intersection(*reached)
            if succ not in ins or ins[succ] != new_in:
                ins[succ] = new_in
                work.append(succ)
    return ins


def find_trace(blocks: list[dict], entry: int, init: State,
               transfer: Callable[[int, State], State],
               is_bad: Callable[[int, State], bool]) -> list[int]:
    """Shortest entry-rooted block path reaching a (block, in-state) pair
    for which ``is_bad`` holds. Empty list when no such pair is reachable."""
    start = (entry, init)
    parents: dict[tuple[int, State], tuple[int, State] | None] = {start: None}
    work = deque([start])
    steps = 0
    while work and steps < _MAX_STEPS:
        steps += 1
        bid, state = work.popleft()
        if is_bad(bid, state):
            path: list[int] = []
            node: tuple[int, State] | None = (bid, state)
            while node is not None:
                path.append(node[0])
                node = parents[node]
            path.reverse()
            return path
        out = transfer(bid, state)
        for succ in blocks[bid]["s"]:
            key = (succ, out)
            if key not in parents:
                parents[key] = (bid, state)
                work.append(key)
    return []


def reachable(blocks: list[dict], roots: Iterable[int]) -> set[int]:
    """Blocks reachable from ``roots`` by successor edges (roots included)."""
    seen = set(roots)
    work = deque(seen)
    while work:
        for succ in blocks[work.popleft()]["s"]:
            if succ not in seen:
                seen.add(succ)
                work.append(succ)
    return seen
