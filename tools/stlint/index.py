"""Project-wide symbol index for the v3 whole-program rules.

``build_facts`` distils one SourceFile's token stream into a small,
JSON-serialisable fact record: function definitions (with their calls,
writes, lock acquisitions, and unordered-iteration sites), class fields
and method declarations (visibility, constness, mutex-typed members),
unordered aliases and accessors, metric registrations, and suppression
lines. The inter-procedural rules (CON-3/LOCK-4/DET-4/API-2) consume
facts only — never tokens — so they stay whole-program even when most
files are served from the cache.

``IndexCache`` persists the facts to ``build/stlint_index.json`` keyed
by per-file content hashes. A warm re-lint after touching one file
re-lexes only that file (and re-checks its own header); every other
file's facts *and* per-file findings come straight from the cache. The
cached per-file findings are additionally keyed on the own-header hash
and the global unordered-alias fingerprint, because DET-2/DET-3 resolve
against both; an alias-set change (rare) drops all cached findings but
keeps the symbol facts.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from .cfg import build_cfg
from .core import SourceFile
from .lexer import Token
from .scopes import (Scope, _match_backward, match_forward, skip_template)

FACTS_VERSION = 8  # bump when the fact schema changes (invalidates caches)

ACCESS_SPECIFIERS = {"public", "private", "protected"}
CALL_KEYWORDS = {"if", "for", "while", "switch", "catch", "sizeof",
                 "alignof", "decltype", "return", "throw", "new", "delete",
                 "static_cast", "dynamic_cast", "const_cast",
                 "reinterpret_cast", "static_assert", "assert", "defined",
                 "noexcept", "requires", "co_await", "co_return", "co_yield"}
TYPE_NOISE = {"const", "constexpr", "static", "mutable", "volatile",
              "inline", "virtual", "explicit", "typename", "auto",
              "unsigned", "signed", "std"}
MUTATING_METHODS = {"push_back", "emplace_back", "emplace", "insert",
                    "erase", "clear", "resize", "assign", "pop_back",
                    "push_front", "pop_front", "push", "pop"}
UNORDERED_WORDS = {"unordered_map", "unordered_set", "unordered_multimap",
                   "unordered_multiset"}


def content_hash(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8", "replace")).hexdigest()


def alias_fingerprint(aliases: set[str]) -> str:
    return hashlib.sha256(",".join(sorted(aliases)).encode()).hexdigest()


# --- signature / declaration helpers ---------------------------------------

def _enclosing_class(scope: Scope) -> str:
    cls = scope.enclosing("class")
    return cls.name if cls is not None else ""


def _split_qname(name: str, scope: Scope) -> tuple[str, str]:
    """(class, bare name) for a function scope's recorded name."""
    if "::" in name:
        parts = name.split("::")
        return parts[-2], parts[-1]
    return _enclosing_class(scope), name


def _param_list(code: list[Token], open_paren: int,
                close_paren: int) -> list[dict]:
    """Split the top-level comma groups of (open..close) into params."""
    params: list[dict] = []
    group: list[Token] = []

    def flush() -> None:
        if not group:
            return
        name = ""
        # drop a default-argument tail `= expr`
        for idx in range(len(group)):
            if group[idx].text == "=":
                del group[idx:]
                break
        if group and group[-1].kind == "ident" and \
                group[-1].text not in TYPE_NOISE and len(group) > 1:
            name = group[-1].text
        type_words = [t.text for t in group if t.kind == "ident"]
        if name and type_words and type_words[-1] == name:
            type_words = type_words[:-1]
        params.append({"name": name, "type": " ".join(type_words)})

    depth = 0
    j = open_paren + 1
    while j < close_paren:
        t = code[j]
        if t.text == "<":
            end = skip_template(code, j)
            group.extend(code[j:end])
            j = end
            continue
        if t.text in ("(", "[", "{"):
            depth += 1
        elif t.text in (")", "]", "}"):
            depth -= 1
        if t.text == "," and depth == 0:
            flush()
            group = []
        else:
            group.append(t)
        j += 1
    flush()
    return params


def _function_head(code: list[Token],
                   scope: Scope) -> tuple[int, int, bool, bool]:
    """(open_paren, close_paren, const, noexcept) of the function scope's
    signature; open_paren == -1 when no parameter list was found
    (e.g. `] {`)."""
    k = scope.start - 1
    is_const = False
    is_noexcept = False
    while k >= 0 and ((code[k].kind == "ident") or
                      code[k].text in ("&", "&&", "->", "::", ">", "*")):
        if code[k].kind == "ident" and code[k].text == "const":
            is_const = True
        if code[k].kind == "ident" and code[k].text == "noexcept":
            is_noexcept = True
        if code[k].text == ">":  # trailing return `-> T<..>`: keep walking
            k = _match_backward(code, k, "<", ">")
        k -= 1
    if k >= 0 and code[k].text == ")":
        open_paren = _match_backward(code, k, "(", ")")
        if open_paren - 1 >= 0 and \
                code[open_paren - 1].kind == "ident" and \
                code[open_paren - 1].text == "noexcept":
            # the parens we found were `noexcept(cond)`: treat a bare
            # `noexcept(true)` as noexcept, anything else as throwing
            cond = " ".join(t.text for t in code[open_paren + 1:k])
            is_noexcept = cond == "true"
            k = open_paren - 1
            while k >= 0 and code[k].kind == "ident":
                if code[k].text == "const":
                    is_const = True
                k -= 1
            if k >= 0 and code[k].text == ")":
                open_paren = _match_backward(code, k, "(", ")")
                return open_paren, k, is_const, is_noexcept
            return -1, -1, is_const, is_noexcept
        return open_paren, k, is_const, is_noexcept
    return -1, -1, is_const, is_noexcept


def _collect_locals(code: list[Token], lo: int, hi: int,
                    scope_ends: dict[int, int]) -> dict[str, str]:
    """name -> type string for declarations inside a function body.

    Over-collecting is safe (it only makes CON-3 more conservative), so
    the pattern is permissive: `Type [*&const]* name` followed by a
    declarator-ish token, `auto [a, b]` structured bindings, and range-for
    loop variables all count."""
    out: dict[str, str] = {}
    j = lo
    n = min(hi, len(code))
    while j < n:
        t = code[j]
        if t.kind != "ident" or t.text in CALL_KEYWORDS:
            j += 1
            continue
        prev = code[j - 1].text if j > 0 else ""
        if prev in (".", "->", "::"):
            j += 1
            continue
        type_words = [t.text]
        k = j + 1
        while k < n and code[k].text == "::" and k + 1 < n and \
                code[k + 1].kind == "ident":
            type_words.append(code[k + 1].text)
            k += 2
        if k < n and code[k].text == "<":
            end = skip_template(code, k)
            type_words.extend(tok.text for tok in code[k:end]
                              if tok.kind == "ident")
            k = end
        # structured binding `auto [a, b] = ...` / `auto& [a, b] : ...`
        saw_amp = False
        while k < n and (code[k].text in ("&", "&&", "*")
                         or (code[k].kind == "ident"
                             and code[k].text in ("const", "constexpr"))):
            saw_amp = saw_amp or code[k].text in ("&", "&&")
            if code[k].kind == "ident":
                type_words.append(code[k].text)
            k += 1
        if k < n and code[k].text == "[" and t.text == "auto":
            close = match_forward(code, k, "[", "]")
            for b in range(k + 1, close):
                if code[b].kind == "ident":
                    out[code[b].text] = "auto"
            j = close + 1
            continue
        if k < n and code[k].kind == "ident" and \
                code[k].text not in CALL_KEYWORDS and k > j:
            after = code[k + 1].text if k + 1 < n else ""
            if after in (";", "=", "{", "(", ",", ")", "[", ":"):
                out.setdefault(code[k].text, " ".join(type_words))
                # follow `Type a = ..., b = ..., c;` comma declarators
                m = k + 1
                depth = 0
                while m < n:
                    tm = code[m].text
                    if tm in ("(", "[", "{"):
                        depth += 1
                    elif tm in (")", "]", "}"):
                        if depth == 0:
                            break
                        depth -= 1
                    elif tm == ";" and depth == 0:
                        break
                    elif tm == "," and depth == 0 and m + 1 < n and \
                            code[m + 1].kind == "ident":
                        follow = code[m + 2].text if m + 2 < n else ""
                        if follow in (";", "=", ",", "{", "["):
                            out.setdefault(code[m + 1].text,
                                           " ".join(type_words))
                    m += 1
                j = k + 1
                continue
        j += 1
    return out


def _chain_back(code: list[Token], k: int, lo: int) -> tuple[str, str, bool]:
    """Walk a postfix chain backwards from index k (the token just before
    an assignment operator or a `.`/`->`). Returns (root, member,
    subscripted); root == '' when the chain bottoms out in a call result
    or parenthesised expression we do not model."""
    member = ""
    sub = False
    while k >= lo:
        t = code[k]
        if t.text == "]":
            k = _match_backward(code, k, "[", "]") - 1
            sub = True
            continue
        if t.text == ")":
            return "", member, sub
        if t.kind == "ident":
            if k - 1 >= lo and code[k - 1].text in (".", "->", "::"):
                member = member or t.text
                k -= 2
                continue
            if t.text == "this":
                return "this", member, sub
            if t.text in CALL_KEYWORDS:  # `return x_ = v;` bottoms out here
                return "", member, sub
            return t.text, member, sub
        return "", member, sub
    return "", member, sub


def _statement_has_accum(code: list[Token], lo: int, hi: int) -> bool:
    """A compound assignment (`+=` et al) inside [lo, hi): the lexer
    emits one-char puncts, so `x += y` is `+` `=`."""
    for j in range(lo, min(hi, len(code) - 1)):
        if code[j].text in ("+", "-", "*", "/") and \
                code[j + 1].text == "=" and \
                (j == lo or code[j - 1].text not in
                 ("+", "-", "*", "/", "=", "<", ">", "!")):
            return True
    return False


def _body_extent(code: list[Token], close_paren: int) -> tuple[int, int]:
    n = len(code)
    b = close_paren + 1
    if b < n and code[b].text == "{":
        return b + 1, match_forward(code, b, "{", "}")
    j = b
    depth = 0
    while j < n:
        t = code[j].text
        if t in ("(", "[", "{"):
            depth += 1
        elif t in (")", "]", "}"):
            depth -= 1
        elif t == ";" and depth == 0:
            return b, j
        j += 1
    return b, n


def _top_level_colon(code: list[Token], lo: int, hi: int) -> int | None:
    depth = 0
    for j in range(lo, hi):
        t = code[j].text
        if t in ("(", "[", "{"):
            depth += 1
        elif t in (")", "]", "}"):
            depth -= 1
        elif t == ":" and depth == 0:
            return j
    return None


# --- class facts ------------------------------------------------------------

def _class_bases(code: list[Token], scope: Scope) -> list[str]:
    k = scope.start - 1
    limit = max(0, scope.start - 40)
    colon = -1
    while k >= limit and code[k].text not in (";", "}", "{"):
        if code[k].text == ":" and code[k].kind == "punct":
            colon = k
        if code[k].kind == "ident" and code[k].text in ("class", "struct"):
            break
        k -= 1
    if colon < 0:
        return []
    bases = []
    for j in range(colon + 1, scope.start):
        t = code[j]
        if t.kind == "ident" and t.text not in ("public", "private",
                                                "protected", "virtual",
                                                "final", "std"):
            bases.append(t.text)
    return bases


def _default_access(code: list[Token], scope: Scope) -> str:
    k = scope.start - 1
    limit = max(0, scope.start - 40)
    while k >= limit:
        if code[k].kind == "ident" and code[k].text in ("class", "struct",
                                                        "union"):
            return "private" if code[k].text == "class" else "public"
        if code[k].text in (";", "}"):
            break
        k -= 1
    return "public"


def _scan_class_body(code: list[Token], scope: Scope,
                     scope_ends: dict[int, int]) -> dict:
    """Fields and method declarations at class-body depth."""
    fields: dict[str, dict] = {}
    methods: dict[str, dict] = {}
    access = _default_access(code, scope)
    j = scope.start + 1
    end = scope.end if scope.end >= 0 else len(code)
    stmt: list[tuple[int, Token]] = []

    def flush(stmt_toks: list[tuple[int, Token]], had_body: bool) -> None:
        if not stmt_toks:
            return
        # locate a top-level `(` → method; otherwise a field declaration
        depth = 0
        paren = -1
        for pos, (idx, tok) in enumerate(stmt_toks):
            if tok.text == "<":
                continue
            if tok.text in ("[", "{"):
                depth += 1
            elif tok.text in ("]", "}"):
                depth -= 1
            elif tok.text == "(" and depth == 0:
                paren = pos
                break
            elif tok.text == ")":
                depth -= 1
        if paren > 0:
            name_tok = stmt_toks[paren - 1][1]
            if name_tok.kind != "ident" or name_tok.text in CALL_KEYWORDS:
                return
            close_idx = match_forward(code, stmt_toks[paren][0], "(", ")")
            is_const = False
            k = close_idx + 1
            while k < end and code[k].kind == "ident":
                if code[k].text == "const":
                    is_const = True
                k += 1
            methods.setdefault(name_tok.text, {
                "visibility": access, "const": is_const,
                "line": name_tok.line, "defined": had_body})
            return
        # field(s): split `T a_, b_;` on top-level commas (template and
        # paren/brace commas don't separate declarators)
        groups: list[list[Token]] = [[]]
        depth = angle = 0
        for idx, tok in stmt_toks:
            if tok.text in ("(", "[", "{"):
                depth += 1
            elif tok.text in (")", "]", "}"):
                depth -= 1
            elif tok.text == "<":
                angle += 1
            elif tok.text == ">":
                angle = max(0, angle - 1)
            elif tok.text == "," and depth == 0 and angle == 0:
                groups.append([])
                continue
            groups[-1].append(tok)
        type_words: list[str] = []
        names: list[tuple[str, int]] = []
        for tok in groups[0]:
            if tok.text in ("=", "{"):
                break
            if tok.kind == "ident":
                type_words.append(tok.text)
        if len(type_words) >= 2:
            names.append((type_words[-1], groups[0][0].line))
            type_words = type_words[:-1]
        for extra in groups[1:]:
            for tok in extra:
                if tok.kind == "ident":
                    names.append((tok.text, tok.line))
                    break
                if tok.text in ("=", "{"):
                    break
        if not names:
            return
        type_str = " ".join(type_words)
        for name, line in names:
            fields[name] = {
                "type": type_str,
                "atomic": "atomic" in type_str,
                "mutex": "mutex" in type_str.lower(),
                "unordered": any(w in UNORDERED_WORDS
                                 for w in type_words),
                "visibility": access, "line": line}

    while j < end:
        t = code[j]
        if t.kind == "ident" and t.text in ACCESS_SPECIFIERS and \
                j + 1 < end and code[j + 1].text == ":":
            flush(stmt, False)
            stmt = []
            access = t.text
            j += 2
            continue
        if t.text == "{":
            flush(stmt, True)
            stmt = []
            j = scope_ends.get(j, j) + 1
            continue
        if t.text == ";":
            flush(stmt, False)
            stmt = []
            j += 1
            continue
        if t.text == "<":
            nxt = skip_template(code, j)
            stmt.extend((k, code[k]) for k in range(j, min(nxt, end)))
            j = nxt
            continue
        stmt.append((j, t))
        j += 1
    flush(stmt, False)
    return {"fields": fields, "methods": methods,
            "bases": _class_bases(code, scope)}


# --- function facts ---------------------------------------------------------

LOCK_GUARD_WORDS = {"lock_guard", "unique_lock", "scoped_lock",
                    "shared_lock", "MutexLock"}
DISPATCHER_BASE = {"parallel_for", "submit"}


def _scan_function(code: list[Token], scope: Scope, fn_id: int,
                   parent_id: int, all_scopes: list[Scope],
                   scope_ids: dict[int, int]) -> dict:
    if scope.kind == "lambda":
        # A lambda operates on its enclosing method's instance: inherit
        # the class through the function chain, because an out-of-line
        # `void Cls::run() { ... [this]{...} ... }` has no lexical class
        # scope around the lambda.
        cls = _enclosing_class(scope)
        if not cls:
            anc = scope.parent
            while anc is not None and anc.kind != "function":
                anc = anc.parent
            if anc is not None and anc.name:
                cls = _split_qname(anc.name, anc)[0]
        name = f"<lambda@{code[scope.start].line}>"
        qname = name
    else:
        cls, name = _split_qname(scope.name or f"<anon@{code[scope.start].line}>",
                                 scope)
        qname = f"{cls}::{name}" if cls else name
    open_p, close_p, is_const, is_noexcept = _function_head(code, scope)
    params = _param_list(code, open_p, close_p) if open_p >= 0 else []
    lo = scope.start + 1
    hi = scope.end if scope.end >= 0 else len(code)
    scope_ends = {s.start: (s.end if s.end >= 0 else hi)
                  for s in all_scopes}
    locals_map = _collect_locals(code, lo, hi, scope_ends)
    for p in params:
        if p["name"]:
            locals_map.setdefault(p["name"], p["type"])
    # lambda captures: [&] / [=] / explicit lists — names captured by value
    # still alias enclosing state when written through references, so
    # capture analysis stays with the rule layer (locals of the *enclosing*
    # function are non-local here).
    rec: dict = {
        "id": fn_id, "qname": qname, "name": name, "cls": cls,
        "kind": scope.kind, "line": code[scope.start].line,
        "const": is_const, "noexcept": is_noexcept, "parent": parent_id,
        "params": params,
        "locals": sorted(locals_map),
        "local_types": locals_map,
        "calls": [], "writes": [], "locks": [], "iters": [],
        "start": scope.start, "end": hi,
    }
    _scan_body(code, lo, hi, rec, scope_ends, scope, scope_ids)
    rec["ref_aliases"] = _collect_ref_aliases(code, lo, hi, rec)
    events = [(w["tok"], "w", wi) for wi, w in enumerate(rec["writes"])]
    events += [(c["tok"], "c", ci) for ci, c in enumerate(rec["calls"])]
    rec["cfg"] = build_cfg(code, lo, hi, events)
    return rec


def _collect_ref_aliases(code: list[Token], lo: int, hi: int,
                         rec: dict) -> dict[str, list[str]]:
    """`[const] T& name = chain;` declarations: name -> [root, member]
    of the aliased object, so writes through the reference resolve to the
    underlying (possibly member) field. `auto& st = *shards_[s];` maps
    st -> ["shards_", ""]; `Summary& sum = st.summary;` maps
    sum -> ["st", "summary"]."""
    out: dict[str, list[str]] = {}
    n = min(hi, len(code))
    for j in range(lo, n - 2):
        if code[j].text not in ("&", "&&") or code[j + 2].text != "=":
            continue
        name_t = code[j + 1]
        if name_t.kind != "ident" or name_t.text in CALL_KEYWORDS:
            continue
        before = code[j - 1] if j > 0 else None
        if before is None or not (before.kind == "ident" or
                                  before.text == ">"):
            continue  # not `Type&` — e.g. `a && b`, `x & y =` unlikely
        if before.kind == "ident" and before.text in CALL_KEYWORDS:
            continue
        # forward-walk the initialiser chain: root [. member | [..] | *]
        k = j + 3
        while k < n and code[k].text in ("*", "(", "&"):
            k += 1
        if k >= n or code[k].kind != "ident":
            continue
        root = code[k].text
        member = ""
        if k + 1 < n and code[k + 1].text == "(":
            continue  # call result; unknown target
        m = k + 1
        while m < n - 1 and code[m].text not in (";",):
            if code[m].text == "[":
                m = match_forward(code, m, "[", "]") + 1
                continue
            if code[m].text in (".", "->", "::") and \
                    code[m + 1].kind == "ident":
                nxt2 = code[m + 2].text if m + 2 < n else ""
                if nxt2 == "(":
                    break  # `root.back()` — alias into root itself
                member = code[m + 1].text  # first hop is the field written
            break
        if root == "this":
            root, member = member, ""
            if not root:
                continue
        out[name_t.text] = [root, member]
    return out


def _scan_body(code: list[Token], lo: int, hi: int, rec: dict,
               scope_ends: dict[int, int], scope: Scope,
               scope_ids: dict[int, int]) -> None:
    n = min(hi, len(code))

    def in_nested(idx: int) -> bool:
        return any(s.start < idx < (s.end if s.end >= 0 else n)
                   for s in _nested_fn_extents)

    _nested_fn_extents = []
    stack = list(scope.children)
    while stack:
        s = stack.pop()
        if s.kind in ("function", "lambda"):
            _nested_fn_extents.append(s)
        else:
            stack.extend(s.children)

    j = lo
    while j < n:
        t = code[j]
        if in_nested(j):
            j += 1
            continue
        if t.kind == "ident":
            nxt = code[j + 1].text if j + 1 < n else ""
            prev = code[j - 1] if j > 0 else None
            # RAII lock guards
            if t.text in LOCK_GUARD_WORDS:
                k = j + 1
                if k < n and code[k].text == "<":
                    k = skip_template(code, k)
                if k + 1 < n and code[k].kind == "ident" and \
                        code[k + 1].text in ("(", "{"):
                    close = match_forward(code, k + 1, "(" if
                                          code[k + 1].text == "(" else "{",
                                          ")" if code[k + 1].text == "("
                                          else "}")
                    mroot, mfield, _ = _chain_back(code, close - 1, k + 2)
                    extent_end = _guard_extent(code, k, hi, scope_ends)
                    rec["locks"].append({
                        "line": code[k].line, "tok": k, "end": extent_end,
                        "recv": mroot, "field": mfield or mroot,
                        "raw": " ".join(c.text for c in
                                        code[k + 2:close])})
                    j = close + 1
                    continue
            # calls
            if nxt == "(" and t.text not in CALL_KEYWORDS and \
                    t.text not in LOCK_GUARD_WORDS:
                prev_txt = prev.text if prev is not None else ""
                looks_decl = (prev is not None and prev.kind == "ident"
                              and prev.text not in CALL_KEYWORDS
                              and prev.text != "return") or \
                    prev_txt in (">", "*")
                if not looks_decl:
                    close = match_forward(code, j + 1, "(", ")")
                    recv, qual = "", ""
                    if prev_txt in (".", "->"):
                        recv, _, _ = _chain_back(code, j - 2, max(lo - 64, 0))
                    elif prev_txt == "::" and j >= 2 and \
                            code[j - 2].kind == "ident":
                        qual = code[j - 2].text
                    args, lambdas = _call_args(code, j + 1, close, scope)
                    call_rec = {
                        "name": t.text, "line": t.line, "tok": j,
                        "recv": recv, "qual": qual, "args": args,
                        "lambdas": [scope_ids[s.start] for s in lambdas
                                    if s.start in scope_ids]}
                    # `x = call(...)` — remember the local the result
                    # lands in (guarded-commit discharge keys on it)
                    if prev_txt == "=" and j >= 2 and \
                            code[j - 2].kind == "ident" and \
                            (j < 3 or code[j - 3].text not in (".", "->")):
                        call_rec["asg"] = code[j - 2].text
                    rec["calls"].append(call_rec)
                    # mutating container calls double as writes
                    if t.text in MUTATING_METHODS and prev_txt in (".", "->"):
                        root, member, sub = _chain_back(code, j - 2,
                                                        max(lo - 64, 0))
                        rec["writes"].append({
                            "root": root, "member": member, "line": t.line,
                            "tok": j, "sub": sub, "mut": t.text})
                    j += 1
                    continue
            # unordered iteration shapes (resolved against accessor tables
            # at rule time): range-for over a call or variable
            if t.text == "for" and nxt == "(":
                close = match_forward(code, j + 1, "(", ")")
                colon = _top_level_colon(code, j + 2, close)
                if colon is not None:
                    kind, iname = _range_root(code, colon + 1, close)
                    if kind:
                        b_lo, b_hi = _body_extent(code, close)
                        rec["iters"].append({
                            "line": t.line, "kind": kind, "name": iname,
                            "accum": _statement_has_accum(code, b_lo, b_hi),
                            "sink": _has_sink(code, b_lo, b_hi)})
        # assignments / increments
        if t.text == "=" and t.kind == "punct":
            nxt_t = code[j + 1].text if j + 1 < n else ""
            prev_t = code[j - 1].text if j > 0 else ""
            if nxt_t != "=" and prev_t not in ("=", "!", "<", ">"):
                back = j - 1
                if prev_t in ("+", "-", "*", "/", "%", "&", "|", "^"):
                    back = j - 2
                root, member, sub = _chain_back(code, back, max(lo - 64, 0))
                if root and not _is_decl_site(code, back, root):
                    rec["writes"].append({
                        "root": root, "member": member, "line": t.line,
                        "tok": j, "sub": sub, "mut": ""})
        elif t.text in ("+", "-") and j + 1 < n and \
                code[j + 1].text == t.text and \
                (j == 0 or code[j - 1].text != t.text):
            # x++ / ++x — root on whichever side is an identifier chain
            root, member, sub = _chain_back(code, j - 1, max(lo - 64, 0))
            if not root and j + 2 < n and code[j + 2].kind == "ident":
                k = j + 2
                while k + 1 < n and code[k + 1].text in (".", "->", "::"):
                    k += 2
                root, member, sub = _chain_back(code, k, j + 2)
            if root:
                rec["writes"].append({
                    "root": root, "member": member, "line": t.line,
                    "tok": j, "sub": sub, "mut": ""})
        j += 1


def _guard_extent(code: list[Token], name_idx: int, fn_end: int,
                  scope_ends: dict[int, int]) -> int:
    """End of the innermost block containing the guard declaration."""
    best = fn_end
    for start, end in scope_ends.items():
        if start < name_idx < end <= best and end >= 0:
            best = end
    return best


def _is_decl_site(code: list[Token], last: int, root: str) -> bool:
    """`Type name = ...` — the token chain before the root is a type."""
    k = last
    while k >= 0 and code[k].kind != "ident":
        if code[k].text in ("]",):
            k = _match_backward(code, k, "[", "]") - 1
            continue
        if code[k].text in (".", "->", "::"):
            return False
        k -= 1
    if k < 0 or code[k].text != root:
        return False
    p = k - 1
    if p >= 0 and code[p].text in ("&", "&&", "*"):
        p -= 1
    while p >= 0 and code[p].kind == "ident" and \
            code[p].text in ("const", "constexpr", "static", "mutable"):
        p -= 1
    if p >= 0 and code[p].text == ">":
        return True
    if p < 0 or code[p].kind != "ident" or code[p].text in CALL_KEYWORDS:
        return False
    before = code[p - 1].text if p > 0 else ""
    return before not in (".", "->")


def _call_args(code: list[Token], open_paren: int, close_paren: int,
               scope: Scope) -> tuple[list[str], list[Scope]]:
    """Top-level bare-identifier args + lambda scopes inside the call."""
    args: list[str] = []
    depth = 0
    group: list[Token] = []

    def flush() -> None:
        idents = [t for t in group if t.kind == "ident"]
        if len(group) <= 2 and idents:
            args.append(idents[-1].text)

    for j in range(open_paren + 1, close_paren):
        t = code[j]
        if t.text in ("(", "[", "{"):
            depth += 1
        elif t.text in (")", "]", "}"):
            depth -= 1
        elif t.text == "," and depth == 0:
            flush()
            group = []
            continue
        if depth == 0:
            group.append(t)
    flush()
    lambdas = []
    stack = list(scope.children)
    while stack:
        s = stack.pop()
        if s.kind == "lambda" and open_paren < s.start < close_paren:
            lambdas.append(s)
        elif s.start < close_paren and (s.end < 0 or s.end > open_paren):
            stack.extend(s.children)
    return args, lambdas


def _range_root(code: list[Token], lo: int, hi: int) -> tuple[str, str]:
    last = hi - 1
    if last < lo:
        return "", ""
    if code[last].text == ")":
        open_p = _match_backward(code, last, "(", ")")
        f = open_p - 1
        if f >= lo and code[f].kind == "ident":
            return "call", code[f].text
        return "", ""
    if code[last].kind == "ident":
        k = last
        while k - 1 >= lo and code[k - 1].text in (".", "->", "::"):
            k -= 2
        return "var", code[last].text
    return "", ""


def _has_sink(code: list[Token], lo: int, hi: int) -> bool:
    for j in range(lo, min(hi, len(code) - 1)):
        if code[j].kind == "ident" and \
                code[j].text in ("push_back", "emplace_back", "insert") and \
                code[j + 1].text == "(":
            return True
    return False


def _lambda_assign_name(code: list[Token], scope: Scope) -> str:
    """The local a lambda literal is assigned to: walks back from the
    lambda's `{` over the head (`-> ret`, `mutable`, params, captures)
    looking for `name = [`. Empty string for inline lambda arguments."""
    k = scope.start - 1
    while k >= 0 and ((code[k].kind == "ident") or
                      code[k].text in ("&", "&&", "->", "::", ">", "*")):
        if code[k].text == ">":
            k = _match_backward(code, k, "<", ">")
        k -= 1
    if k >= 0 and code[k].text == ")":  # parameter list
        k = _match_backward(code, k, "(", ")") - 1
        while k >= 0 and code[k].kind == "ident":
            k -= 1
    if k < 0 or code[k].text != "]":  # capture list
        return ""
    k = _match_backward(code, k, "[", "]") - 1
    if k >= 1 and code[k].text == "=" and code[k].kind == "punct" and \
            code[k - 1].kind == "ident" and \
            (k < 2 or code[k - 2].text not in (".", "->")):
        return code[k - 1].text
    return ""


# --- accessors with lines (DET-4 needs the defining site) -------------------

def _collect_accessor_sites(code: list[Token],
                            aliases: set[str]) -> list[list]:
    """Like scopes.collect_accessors but keeps the declaration line."""
    sites: list[list] = []
    n = len(code)
    i = 0
    while i < n:
        t = code[i]
        is_unordered = t.kind == "ident" and t.text in UNORDERED_WORDS
        is_alias = t.kind == "ident" and t.text in aliases
        if not (is_unordered or is_alias):
            i += 1
            continue
        j = i + 1
        if j < n and code[j].text == "<":
            j = skip_template(code, j)
        elif is_unordered:
            i += 1
            continue
        into = False
        if j + 1 < n and code[j].text == "::" and \
                code[j + 1].kind == "ident" and \
                "iterator" in code[j + 1].text:
            into = True
            j += 2
        while j < n and (code[j].text in ("&", "&&")
                         or (code[j].kind == "ident"
                             and code[j].text == "const")):
            if code[j].text in ("&", "&&"):
                into = True
            j += 1
        if into and j + 1 < n and code[j].kind == "ident" and \
                code[j + 1].text == "(":
            sites.append([code[j].text, code[j].line])
        i = max(j, i + 1)
    return sites


# --- facts ------------------------------------------------------------------

def build_facts(sf: SourceFile, aliases: set[str]) -> dict:
    """Distil one file into the JSON-serialisable fact record."""
    from .scopes import collect_aliases
    code = sf.code
    tree = sf.scopes
    all_scopes: list[Scope] = []
    stack = [tree.file_scope]
    while stack:
        s = stack.pop()
        all_scopes.append(s)
        stack.extend(s.children)
    fn_scopes = [s for s in all_scopes if s.kind in ("function", "lambda")]
    fn_scopes.sort(key=lambda s: s.start)
    scope_ids = {s.start: i for i, s in enumerate(fn_scopes)}
    functions = []
    for i, s in enumerate(fn_scopes):
        parent = s.parent.function if s.parent is not None else None
        parent_id = scope_ids.get(parent.start, -1) if parent else -1
        functions.append(_scan_function(code, s, i, parent_id, all_scopes,
                                        scope_ids))
    # `auto f = [..](..) {..};` — record the local name a lambda is bound
    # to on its *enclosing* function, so the call graph can resolve later
    # `f(...)` calls (and dispatcher arguments passed by name) to the
    # lambda's own function record.
    for i, s in enumerate(fn_scopes):
        fn = functions[i]
        if fn["kind"] != "lambda" or fn["parent"] < 0:
            continue
        name = _lambda_assign_name(code, s)
        if name:
            functions[fn["parent"]].setdefault("lambda_locals",
                                               {})[name] = i
    classes = {}
    for s in all_scopes:
        if s.kind == "class" and s.name:
            body = _scan_class_body(
                code, s, {sc.start: (sc.end if sc.end >= 0 else len(code))
                          for sc in all_scopes})
            if s.name in classes:  # merge re-opened/duplicate names
                classes[s.name]["fields"].update(body["fields"])
                classes[s.name]["methods"].update(body["methods"])
                classes[s.name]["bases"] = sorted(
                    set(classes[s.name]["bases"]) | set(body["bases"]))
            else:
                classes[s.name] = body
    from .rules.obs_docs import registrations
    return {
        "version": FACTS_VERSION,
        "aliases": sorted(collect_aliases(code)),
        "accessor_sites": _collect_accessor_sites(code, aliases),
        "registrations": [[line, name] for line, name in registrations(sf)],
        "suppressions": {str(line): [s.rule for s in subs]
                         for line, subs in sf.suppressions.items()},
        "allow_sites": sf.allow_sites,
        "bad_suppressions": [vars(f) for f in sf.bad_suppressions],
        "functions": functions,
        "classes": classes,
    }


# --- the cache --------------------------------------------------------------

@dataclass
class IndexCache:
    """build/stlint_index.json: per-file facts + findings keyed by hashes."""

    path: object = None  # pathlib.Path | None (None = in-memory only)
    data: dict = field(default_factory=lambda: {"version": FACTS_VERSION,
                                                "files": {}})
    hits: int = 0
    misses: int = 0

    @classmethod
    def load(cls, path) -> "IndexCache":
        cache = cls(path=path)
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
            if raw.get("version") == FACTS_VERSION and \
                    isinstance(raw.get("files"), dict):
                cache.data = raw
        except (OSError, ValueError):
            pass
        return cache

    def aliases_for(self, rel: str, file_hash: str) -> list | None:
        """The file's own alias names, valid on a content-hash match
        alone (collect_aliases sees only this file's tokens). Needed
        before the global alias fingerprint exists."""
        entry = self.data["files"].get(rel)
        if entry and entry.get("hash") == file_hash:
            return entry["facts"].get("aliases", [])
        return None

    def facts_for(self, rel: str, file_hash: str,
                  alias_fp: str) -> dict | None:
        entry = self.data["files"].get(rel)
        if entry and entry.get("hash") == file_hash and \
                entry.get("facts_alias_fp") == alias_fp:
            self.hits += 1
            return entry["facts"]
        self.misses += 1
        return None

    def findings_for(self, rel: str, file_hash: str, header_hash: str,
                     alias_fp: str) -> list | None:
        entry = self.data["files"].get(rel)
        if entry and entry.get("hash") == file_hash and \
                entry.get("header_hash") == header_hash and \
                entry.get("alias_fp") == alias_fp and \
                entry.get("findings") is not None:
            return entry["findings"]
        return None

    def store(self, rel: str, file_hash: str, facts: dict,
              alias_fp: str) -> None:
        entry = self.data["files"].setdefault(rel, {})
        if entry.get("hash") != file_hash:
            entry.pop("findings", None)
        entry["hash"] = file_hash
        entry["facts"] = facts
        entry["facts_alias_fp"] = alias_fp

    def store_findings(self, rel: str, header_hash: str, alias_fp: str,
                       findings: list) -> None:
        entry = self.data["files"].setdefault(rel, {})
        entry["header_hash"] = header_hash
        entry["alias_fp"] = alias_fp
        entry["findings"] = findings

    def prune(self, keep: set[str]) -> None:
        self.data["files"] = {rel: e for rel, e in
                              self.data["files"].items() if rel in keep}

    def save(self) -> None:
        if self.path is None:
            return
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text(json.dumps(self.data), encoding="utf-8")
        except OSError:
            pass  # cache is an optimisation, never a failure


# --- the project index ------------------------------------------------------

class ProjectIndex:
    """Whole-program symbol table assembled from per-file facts."""

    def __init__(self) -> None:
        self.files: dict[str, dict] = {}          # rel -> facts
        self.functions: list[dict] = []           # flat, each with _file
        self.by_name: dict[str, list[int]] = {}   # bare name -> fn ids
        self.by_qname: dict[str, list[int]] = {}
        self.classes: dict[str, dict] = {}        # merged class facts
        self.accessors: dict[str, list[tuple[str, int]]] = {}
        self.aliases: set[str] = set()

    def add_file(self, rel: str, facts: dict) -> None:
        self.files[rel] = facts

    def finalize(self) -> None:
        self.functions = []
        self.by_name = {}
        self.by_qname = {}
        self.classes = {}
        self.accessors = {}
        self.aliases = set()
        for rel in sorted(self.files):
            facts = self.files[rel]
            self.aliases |= set(facts.get("aliases", []))
            base = len(self.functions)
            for fn in facts.get("functions", []):
                gid = base + fn["id"]
                rec = dict(fn)
                rec["_file"] = rel
                rec["_gid"] = gid
                rec["_base"] = base
                self.functions.append(rec)
                self.by_name.setdefault(rec["name"], []).append(gid)
                self.by_qname.setdefault(rec["qname"], []).append(gid)
            for cname, cfacts in facts.get("classes", {}).items():
                if cname in self.classes:
                    merged = self.classes[cname]
                    merged["fields"].update(cfacts.get("fields", {}))
                    merged["methods"].update(cfacts.get("methods", {}))
                    merged["bases"] = sorted(set(merged["bases"]) |
                                             set(cfacts.get("bases", [])))
                else:
                    self.classes[cname] = {
                        "fields": dict(cfacts.get("fields", {})),
                        "methods": dict(cfacts.get("methods", {})),
                        "bases": list(cfacts.get("bases", []))}
            for name, line in facts.get("accessor_sites", []):
                self.accessors.setdefault(name, []).append((rel, line))

    def field_of(self, cls: str, name: str) -> dict | None:
        seen = set()
        queue = [cls]
        while queue:
            c = queue.pop()
            if c in seen:
                continue
            seen.add(c)
            info = self.classes.get(c)
            if info is None:
                continue
            if name in info["fields"]:
                return info["fields"][name]
            queue.extend(info["bases"])
        return None

    def suppressed(self, rel: str, line: int, rule: str) -> bool:
        facts = self.files.get(rel)
        if not facts:
            return False
        return rule in facts.get("suppressions", {}).get(str(line), [])
