"""Per-function control-flow graphs over the code-token stream (v4).

``build_cfg`` turns one function body (a token range plus the write/call
events ``index.build_facts`` already collected) into a basic-block graph:

  * block 0 is the entry, block 1 the exit (every ``return`` and the
    implicit fall-off-the-end edge leads here), block 2 the raise sink
    (an uncaught ``throw``);
  * ``if``/``else`` chains, ``while``/``for``/range-``for``/``do`` loops
    (with back edges), ``switch`` with fallthrough between case arms,
    ``break``/``continue``, ``try``/``catch`` (every block inside a try
    region gets an edge to each handler), and ternaries whose arms carry
    events all split blocks;
  * each block keeps the *ordered* member-write / call events that the
    flow-sensitive rules (REV/EXC/SHD, rules/protocol.py) replay through
    the dataflow framework, plus the identifier names of the condition
    guarding the block (the guarded-commit idiom needs them).

The graph is part of the serialisable fact record, so whole-program
flow-sensitive rules stay cache-warm: a block is plain dicts/lists —
``{"s": succs, "ev": [[kind, idx], ...], "l": line, "k": kind,
"g": [guard idents], "c": [catch heads]}`` — with ``ev`` entries indexing
into the function's ``writes`` (kind ``"w"``) and ``calls`` (``"c"``).

Nested lambdas are opaque: their bodies were already excluded from the
event lists, and the statement walker never treats a lambda's ``return``
or braces as control flow of the enclosing function.
"""

from __future__ import annotations

import bisect

from .lexer import Token
from .scopes import match_forward

ENTRY = 0
EXIT = 1
RAISE = 2

# Keywords that start a statement the walker models explicitly.
_CTRL = {"if", "while", "for", "do", "switch", "return", "break",
         "continue", "throw", "try", "goto"}
_MAX_GUARD_IDENTS = 8


def block(kind: str, line: int) -> dict:
    return {"s": [], "ev": [], "l": line, "k": kind}


class _Builder:
    def __init__(self, code: list[Token], lo: int, hi: int,
                 events: list[tuple[int, str, int]]):
        self.code = code
        self.lo = lo
        self.hi = min(hi, len(code))
        # (tok, kind, idx) sorted with calls before same-token writes, so
        # `member_.push_back(x)` (one token carrying both a throwing call
        # and a mutating write) raises *before* it commits.
        self.events = sorted(events,
                             key=lambda e: (e[0], 0 if e[1] == "c" else 1))
        self._ev_toks = [e[0] for e in self.events]
        self.blocks: list[dict] = [block("entry", 0),
                                   block("exit", 0),
                                   block("raise", 0)]

    # --- graph primitives ---------------------------------------------------

    def new(self, kind: str, line: int, guards: list[str] | None = None,
            catches: list[int] | None = None) -> int:
        b = block(kind, line)
        if guards:
            b["g"] = guards[:_MAX_GUARD_IDENTS]
        if catches:
            b["c"] = list(catches)
        self.blocks.append(b)
        return len(self.blocks) - 1

    def edge(self, a: int, b: int) -> None:
        if b not in self.blocks[a]["s"]:
            self.blocks[a]["s"].append(b)

    def place(self, bid: int, a: int, b: int) -> None:
        """Append the events whose token index falls in [a, b)."""
        i = bisect.bisect_left(self._ev_toks, a)
        while i < len(self.events) and self.events[i][0] < b:
            tok, kind, idx = self.events[i]
            self.blocks[bid]["ev"].append([kind, idx])
            if self.blocks[bid]["l"] == 0:
                self.blocks[bid]["l"] = self.code[tok].line
            i += 1

    def has_events(self, a: int, b: int) -> bool:
        i = bisect.bisect_left(self._ev_toks, a)
        return i < len(self.events) and self.events[i][0] < b

    def idents(self, a: int, b: int) -> list[str]:
        out: list[str] = []
        for j in range(a, min(b, self.hi)):
            t = self.code[j]
            if t.kind == "ident" and t.text not in out:
                out.append(t.text)
        return out[:_MAX_GUARD_IDENTS]

    # --- statement walking --------------------------------------------------

    def line(self, i: int) -> int:
        return self.code[i].line if i < len(self.code) else 0

    def stmt_end(self, i: int, end: int) -> int:
        """Index just past the `;` ending a plain statement (depth-aware:
        lambda bodies, initialiser braces, and call parens are skipped)."""
        depth = 0
        j = i
        while j < end:
            t = self.code[j].text
            if t in ("(", "[", "{"):
                depth += 1
            elif t in (")", "]", "}"):
                if depth == 0:
                    return j  # malformed / end of enclosing block
                depth -= 1
            elif t == ";" and depth == 0:
                return j + 1
            j += 1
        return end

    def stmts(self, i: int, end: int, cur: int | None, ctx: dict) -> int | None:
        """Parse statements in [i, end); returns the open block falling
        off the end (None when every path jumped away)."""
        while i < end:
            if cur is None:  # unreachable tail (after return/break/...)
                cur = self.new("join", self.line(i))
            i2, cur = self.stmt(i, end, cur, ctx)
            i = i2 if i2 > i else i + 1  # never stall on stray tokens
        return cur

    def stmt(self, i: int, end: int, cur: int,
             ctx: dict) -> tuple[int, int | None]:
        t = self.code[i]
        prev = self.code[i - 1].text if i > 0 else ""
        if t.kind == "ident" and t.text in _CTRL and \
                prev not in (".", "->", "::"):
            handler = getattr(self, f"_stmt_{t.text}")
            return handler(i, end, cur, ctx)
        if t.text == "{":
            close = match_forward(self.code, i, "{", "}")
            out = self.stmts(i + 1, close, cur, ctx)
            return close + 1, out
        if t.text == ";":
            return i + 1, cur
        return self._stmt_plain(i, end, cur, ctx)

    def _cond(self, i: int) -> tuple[int, int, int]:
        """(open_paren, close_paren, after) for `kw (cond)`; tolerates
        `if constexpr` by skipping idents before the paren."""
        j = i + 1
        while j < self.hi and self.code[j].kind == "ident":
            j += 1
        if j >= self.hi or self.code[j].text != "(":
            return i, i, i + 1
        close = match_forward(self.code, j, "(", ")")
        return j, close, close + 1

    # --- control constructs -------------------------------------------------

    def _stmt_if(self, i: int, end: int, cur: int,
                 ctx: dict) -> tuple[int, int | None]:
        op, cp, after = self._cond(i)
        self.place(cur, op, cp + 1)
        guards = self.idents(op + 1, cp)
        then_b = self.new("then", self.line(after), guards,
                          ctx.get("catches"))
        self.edge(cur, then_b)
        i2, then_out = self.stmt(after, end, then_b, ctx)
        else_out: int | None = cur
        if i2 < end and self.code[i2].kind == "ident" and \
                self.code[i2].text == "else":
            else_b = self.new("else", self.line(i2), guards,
                              ctx.get("catches"))
            self.edge(cur, else_b)
            i2, else_out = self.stmt(i2 + 1, end, else_b, ctx)
        if then_out is None and else_out is None:
            return i2, None
        join = self.new("join", self.line(i2), None, ctx.get("catches"))
        if then_out is not None:
            self.edge(then_out, join)
        if else_out is not None:
            self.edge(else_out, join)
        return i2, join

    def _loop(self, i_body: int, end: int, cur: int, ctx: dict,
              cond_lo: int, cond_hi: int,
              step_lo: int = -1, step_hi: int = -1) -> tuple[int, int]:
        guards = self.idents(cond_lo, cond_hi)
        hdr = self.new("loop", self.line(cond_lo), None, ctx.get("catches"))
        self.edge(cur, hdr)
        self.place(hdr, cond_lo, cond_hi)
        exit_b = self.new("join", self.line(i_body), None,
                          ctx.get("catches"))
        body_b = self.new("body", self.line(i_body), guards,
                          ctx.get("catches"))
        self.edge(hdr, body_b)
        self.edge(hdr, exit_b)
        step_b = hdr
        if step_lo >= 0 and step_lo < step_hi:
            step_b = self.new("step", self.line(step_lo), None,
                              ctx.get("catches"))
            self.place(step_b, step_lo, step_hi)
            self.edge(step_b, hdr)
        inner = dict(ctx)
        inner["break"] = exit_b
        inner["continue"] = step_b
        i2, body_out = self.stmt(i_body, end, body_b, inner)
        if body_out is not None:
            self.edge(body_out, step_b)
        return i2, exit_b

    def _stmt_while(self, i: int, end: int, cur: int,
                    ctx: dict) -> tuple[int, int | None]:
        op, cp, after = self._cond(i)
        return self._loop(after, end, cur, ctx, op + 1, cp)

    def _stmt_for(self, i: int, end: int, cur: int,
                  ctx: dict) -> tuple[int, int | None]:
        op, cp, after = self._cond(i)
        colon = semi1 = semi2 = -1
        depth = 0
        for j in range(op + 1, cp):
            txt = self.code[j].text
            if txt in ("(", "[", "{"):
                depth += 1
            elif txt in (")", "]", "}"):
                depth -= 1
            elif depth == 0 and txt == ":" and colon < 0 and semi1 < 0:
                colon = j
            elif depth == 0 and txt == ";":
                if semi1 < 0:
                    semi1 = j
                elif semi2 < 0:
                    semi2 = j
        if colon >= 0:  # range-for: the range expr runs once, up front
            self.place(cur, colon + 1, cp + 1)
            return self._loop(after, end, cur, ctx, op + 1, colon)
        if semi1 < 0:
            semi1 = semi2 = cp
        if semi2 < 0:
            semi2 = cp
        self.place(cur, op + 1, semi1 + 1)  # init clause
        return self._loop(after, end, cur, ctx, semi1 + 1, semi2,
                          semi2 + 1, cp)

    def _stmt_do(self, i: int, end: int, cur: int,
                 ctx: dict) -> tuple[int, int | None]:
        body_b = self.new("body", self.line(i + 1), None,
                          ctx.get("catches"))
        self.edge(cur, body_b)
        exit_b = self.new("join", self.line(i + 1), None,
                          ctx.get("catches"))
        cond_b = self.new("loop", self.line(i + 1), None,
                          ctx.get("catches"))
        inner = dict(ctx)
        inner["break"] = exit_b
        inner["continue"] = cond_b
        i2, body_out = self.stmt(i + 1, end, body_b, inner)
        if body_out is not None:
            self.edge(body_out, cond_b)
        # `while (cond) ;`
        if i2 < end and self.code[i2].kind == "ident" and \
                self.code[i2].text == "while":
            op, cp, after = self._cond(i2)
            self.place(cond_b, op + 1, cp)
            i2 = after
            if i2 < end and self.code[i2].text == ";":
                i2 += 1
        self.edge(cond_b, body_b)
        self.edge(cond_b, exit_b)
        return i2, exit_b

    def _stmt_switch(self, i: int, end: int, cur: int,
                     ctx: dict) -> tuple[int, int | None]:
        op, cp, after = self._cond(i)
        self.place(cur, op, cp + 1)
        guards = self.idents(op + 1, cp)
        if after >= end or self.code[after].text != "{":
            return after, cur
        close = match_forward(self.code, after, "{", "}")
        exit_b = self.new("join", self.line(close), None,
                          ctx.get("catches"))
        # depth-0 `case expr:` / `default:` labels inside the braces
        labels: list[tuple[int, int]] = []  # (label tok, stmt start)
        depth = 0
        has_default = False
        j = after + 1
        while j < close:
            txt = self.code[j].text
            if txt in ("(", "[", "{"):
                depth += 1
            elif txt in (")", "]", "}"):
                depth -= 1
            elif depth == 0 and self.code[j].kind == "ident" and \
                    txt in ("case", "default"):
                k = j + 1
                while k < close and self.code[k].text != ":":
                    k += 1
                labels.append((j, k + 1))
                has_default = has_default or txt == "default"
                j = k
            j += 1
        if not labels:
            out = self.stmts(after + 1, close, cur, ctx)
            return close + 1, out
        inner = dict(ctx)
        inner["break"] = exit_b
        fall: int | None = None
        for n, (lbl, body_start) in enumerate(labels):
            seg_end = labels[n + 1][0] if n + 1 < len(labels) else close
            case_b = self.new("case", self.line(lbl), guards,
                              ctx.get("catches"))
            self.edge(cur, case_b)
            if fall is not None:  # fallthrough from the previous arm
                self.edge(fall, case_b)
            fall = self.stmts(body_start, seg_end, case_b, inner)
        if fall is not None:
            self.edge(fall, exit_b)
        if not has_default:
            self.edge(cur, exit_b)
        return close + 1, exit_b

    def _stmt_try(self, i: int, end: int, cur: int,
                  ctx: dict) -> tuple[int, int | None]:
        if i + 1 >= end or self.code[i + 1].text != "{":
            return i + 1, cur
        body_close = match_forward(self.code, i + 1, "{", "}")
        # Collect the handlers first so try-body blocks can point at them.
        catches: list[tuple[int, int, int]] = []  # (head id, body lo, hi)
        j = body_close + 1
        while j < end and self.code[j].kind == "ident" and \
                self.code[j].text == "catch":
            op, cp, after = self._cond(j)
            if after >= end or self.code[after].text != "{":
                break
            c_close = match_forward(self.code, after, "{", "}")
            head = self.new("catch", self.line(j), None, ctx.get("catches"))
            catches.append((head, after + 1, c_close))
            j = c_close + 1
        heads = [c[0] for c in catches]
        inner = dict(ctx)
        inner["catches"] = heads + (ctx.get("catches") or [])
        first = len(self.blocks)
        body_b = self.new("body", self.line(i + 1), None, heads)
        self.edge(cur, body_b)
        body_out = self.stmts(i + 2, body_close, body_b, inner)
        # Any block born inside the try region may raise into each handler.
        for bid in range(first, len(self.blocks)):
            b = self.blocks[bid]
            if b["k"] == "catch" or bid in heads:
                continue
            for head in heads:
                self.edge(bid, head)
            if heads:
                b.setdefault("c", heads)
        join = self.new("join", self.line(j), None, ctx.get("catches"))
        if body_out is not None:
            self.edge(body_out, join)
        any_open = body_out is not None
        for head, c_lo, c_hi in catches:
            h_first = len(self.blocks)
            c_out = self.stmts(c_lo, c_hi, head, ctx)
            # handler-region marker: a re-write of a committed field in
            # here is the rollback idiom, not a fresh commit (EXC-1)
            self.blocks[head]["h"] = 1
            for bid in range(h_first, len(self.blocks)):
                self.blocks[bid]["h"] = 1
            if c_out is not None:
                self.edge(c_out, join)
                any_open = True
        return j, join if any_open or not heads else None

    def _stmt_return(self, i: int, end: int, cur: int,
                     ctx: dict) -> tuple[int, int | None]:
        j = self.stmt_end(i + 1, end)
        self.place(cur, i, j)
        if self.blocks[cur]["l"] == 0:
            self.blocks[cur]["l"] = self.line(i)
        self.blocks[cur]["r"] = self.line(i)
        self.edge(cur, EXIT)
        return j, None

    def _stmt_break(self, i: int, end: int, cur: int,
                    ctx: dict) -> tuple[int, int | None]:
        self.edge(cur, ctx.get("break", EXIT))
        return self.stmt_end(i + 1, end), None

    def _stmt_continue(self, i: int, end: int, cur: int,
                       ctx: dict) -> tuple[int, int | None]:
        self.edge(cur, ctx.get("continue", EXIT))
        return self.stmt_end(i + 1, end), None

    def _stmt_goto(self, i: int, end: int, cur: int,
                   ctx: dict) -> tuple[int, int | None]:
        self.edge(cur, EXIT)  # conservative: treat as leaving the function
        return self.stmt_end(i + 1, end), None

    def _stmt_throw(self, i: int, end: int, cur: int,
                    ctx: dict) -> tuple[int, int | None]:
        j = self.stmt_end(i + 1, end)
        self.place(cur, i, j)
        # throw-terminator: everything in this block executed before the
        # throw, so the whole out-state travels the exceptional edge
        self.blocks[cur]["t"] = 1
        heads = ctx.get("catches") or []
        for head in heads:
            self.edge(cur, head)
        if not heads:
            self.edge(cur, RAISE)
        return j, None

    def _stmt_plain(self, i: int, end: int, cur: int,
                    ctx: dict) -> tuple[int, int | None]:
        j = self.stmt_end(i, end)
        q = self._top_ternary(i, j)
        if q >= 0:
            c = self._ternary_colon(q + 1, j)
            if c >= 0 and (self.has_events(q + 1, c) or
                           self.has_events(c + 1, j)):
                self.place(cur, i, q + 1)
                guards = self.idents(i, q)
                a_b = self.new("then", self.line(q), guards,
                               ctx.get("catches"))
                b_b = self.new("else", self.line(c), guards,
                               ctx.get("catches"))
                self.edge(cur, a_b)
                self.edge(cur, b_b)
                self.place(a_b, q + 1, c)
                self.place(b_b, c + 1, j)
                join = self.new("join", self.line(j), None,
                                ctx.get("catches"))
                self.edge(a_b, join)
                self.edge(b_b, join)
                return j, join
        self.place(cur, i, j)
        return j, cur

    def _top_ternary(self, lo: int, hi: int) -> int:
        depth = 0
        for j in range(lo, hi):
            txt = self.code[j].text
            if txt in ("(", "[", "{"):
                depth += 1
            elif txt in (")", "]", "}"):
                depth -= 1
            elif txt == "?" and depth == 0:
                return j
        return -1

    def _ternary_colon(self, lo: int, hi: int) -> int:
        depth = tern = 0
        for j in range(lo, hi):
            txt = self.code[j].text
            if txt in ("(", "[", "{"):
                depth += 1
            elif txt in (")", "]", "}"):
                depth -= 1
            elif txt == "?" and depth == 0:
                tern += 1
            elif txt == ":" and depth == 0:
                if tern == 0:
                    return j
                tern -= 1
        return -1


def build_cfg(code: list[Token], lo: int, hi: int,
              events: list[tuple[int, str, int]]) -> dict:
    """CFG for one function body over code tokens [lo, hi). ``events``
    is [(token index, "w"|"c", index into writes/calls), ...]."""
    b = _Builder(code, lo, hi, events)
    out = b.stmts(lo, b.hi, ENTRY, {})
    if out is not None:
        b.edge(out, EXIT)
    if lo < b.hi:
        b.blocks[ENTRY]["l"] = code[lo].line
    return {"blocks": b.blocks}


def successors(cfg: dict, bid: int) -> list[int]:
    return cfg["blocks"][bid]["s"]


def predecessors(cfg: dict) -> dict[int, list[int]]:
    preds: dict[int, list[int]] = {i: [] for i in range(len(cfg["blocks"]))}
    for i, b in enumerate(cfg["blocks"]):
        for s in b["s"]:
            preds[s].append(i)
    return preds
