"""Scope tracking and declaration resolution over the token stream.

Builds a lexical scope tree by walking the comment-free token stream and
classifying every `{`:

  namespace   `namespace [name] {`
  class       `class|struct|union|enum [...] name [...] {`
  function    `... name ( params ) [qualifiers] {` at file/namespace/class
              scope (out-of-line members keep their `Cls::name` qualifier)
  lambda      `] [...] [( params )] [qualifiers] {`
  block       control-flow bodies and bare blocks inside functions
  init        braced initializer lists (`= {`, `{1, 2}`, `T{...}`, ...)

The tree only needs to be right enough for the rules: DET-2 resolves an
iterated identifier to its nearest declaration instead of a file-global
name set (a local `std::vector<int> counts` no longer inherits guilt from
an unrelated unordered `counts` elsewhere), HYG-2 distinguishes
namespace-scope `using namespace` from a function-local one, and the LOCK
family needs "the rest of the enclosing block" as a lock's extent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .lexer import Token

CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch"}
UNORDERED_TYPES = {"unordered_map", "unordered_set", "unordered_multimap",
                   "unordered_multiset"}
CLASS_KEYWORDS = {"class", "struct", "union", "enum"}
# Tokens that may sit between a function's closing `)` and its body `{`.
FUNC_TAIL_IDENTS = {"const", "noexcept", "override", "final", "mutable",
                    "volatile", "try", "requires"}


@dataclass
class Scope:
    kind: str  # file | namespace | class | function | lambda | block | init
    name: str = ""           # namespace/class/function name ('' otherwise)
    parent: "Scope | None" = None
    start: int = 0           # index of `{` in the code-token stream
    end: int = -1            # index of matching `}` (-1 = EOF)
    children: list["Scope"] = field(default_factory=list)

    def chain(self):
        s: Scope | None = self
        while s is not None:
            yield s
            s = s.parent

    def enclosing(self, *kinds: str) -> "Scope | None":
        for s in self.chain():
            if s.kind in kinds:
                return s
        return None

    @property
    def function(self) -> "Scope | None":
        """Innermost enclosing function or lambda body."""
        return self.enclosing("function", "lambda")


@dataclass
class Declaration:
    name: str
    scope: Scope
    index: int  # token index of the declared name
    line: int
    type_name: str  # 'unordered' for containers we track, else the alias id


def skip_template(tokens: list[Token], i: int) -> int:
    """Index just past the `>` matching the `<` at tokens[i] (which must
    be `<`). Tolerates `>>`-free streams (the lexer never merges them)."""
    depth = 0
    while i < len(tokens):
        t = tokens[i].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif t in ("{", "}", ";"):
            return i  # not template args after all
        i += 1
    return i


def match_forward(tokens: list[Token], i: int, open_t: str,
                  close_t: str) -> int:
    """Index of the token matching tokens[i] == open_t, or len(tokens)."""
    depth = 0
    while i < len(tokens):
        t = tokens[i].text
        if t == open_t:
            depth += 1
        elif t == close_t:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return len(tokens)


def _classify_brace(tokens: list[Token], i: int,
                    current: Scope) -> tuple[str, str]:
    """(kind, name) for the `{` at index i, looking backwards."""
    j = i - 1

    def prev_text(k: int) -> str:
        return tokens[k].text if 0 <= k < len(tokens) else ""

    # Walk back over function-tail qualifiers / trailing return types to
    # find the shape `) ... {`, `] ... {` (lambda without params), etc.
    k = j
    saw_tail = False
    while k >= 0 and (
            (tokens[k].kind == "ident" and tokens[k].text in FUNC_TAIL_IDENTS)
            or tokens[k].text in ("&", "&&")):
        saw_tail = True
        k -= 1
    if k >= 0 and tokens[k].text == ")":
        open_paren = _match_backward(tokens, k, "(", ")")
        before = open_paren - 1
        if before >= 0 and tokens[before].text == "]":
            return "lambda", ""
        # `for (...) {` etc.
        name_idx = before
        if name_idx >= 0 and tokens[name_idx].kind == "ident":
            word = tokens[name_idx].text
            if word in CONTROL_KEYWORDS:
                return "block", ""
            # Function definition: qualified name before the param list.
            name = word
            q = name_idx - 1
            while q - 1 >= 0 and tokens[q].text == "::" and \
                    tokens[q - 1].kind == "ident":
                name = tokens[q - 1].text + "::" + name
                q -= 2
            if current.kind in ("file", "namespace", "class"):
                return "function", name
            # `) {` inside a function is a control body or a functor call.
            return "block", ""
        if name_idx >= 0 and tokens[name_idx].text == ">":
            # operator()/templated call or a decltype — treat as function
            # when at declarative scope.
            if current.kind in ("file", "namespace", "class"):
                return "function", ""
            return "block", ""
        return "block", ""
    if k >= 0 and tokens[k].text == "]":
        return "lambda", ""  # capture list with no parameter list
    if saw_tail:
        return "block", ""

    if j >= 0:
        pj = tokens[j]
        if pj.kind == "ident":
            if pj.text in ("else", "do", "try"):
                return "block", ""
            if pj.text == "namespace":
                return "namespace", ""
            # `namespace foo {` / `class Bar {` / `struct Bar : Base {`.
            k = j
            while k >= 0 and (tokens[k].kind == "ident"
                              or tokens[k].text in ("::", ":", ",", "<", ">",
                                                    "final")):
                if tokens[k].kind == "ident" and \
                        tokens[k].text == "namespace":
                    name = prev_text(k + 1)
                    return "namespace", name if name != "{" else ""
                if tokens[k].kind == "ident" and tokens[k].text in \
                        CLASS_KEYWORDS:
                    return "class", _class_name(tokens, k, i)
                k -= 1
            if pj.text == "export":
                return "block", ""
            return "init", ""  # `= {`, `T{...}`, `return {...}` etc.
        if pj.text in ("=", "(", ",", "{", "return", ">"):
            return "init", ""
    return "block", ""


def _match_backward(tokens: list[Token], i: int, open_t: str,
                    close_t: str) -> int:
    depth = 0
    while i >= 0:
        t = tokens[i].text
        if t == close_t:
            depth += 1
        elif t == open_t:
            depth -= 1
            if depth == 0:
                return i
        i -= 1
    return 0


def _class_name(tokens: list[Token], kw: int, brace: int) -> str:
    """Name of the class declared by the keyword at kw, body at brace."""
    name = ""
    k = kw + 1
    while k < brace:
        t = tokens[k]
        if t.text == ":" or t.text == "{":
            break
        if t.kind == "ident" and t.text not in ("final", "alignas", "class"):
            name = t.text
        if t.text == "<":
            k = skip_template(tokens, k)
            continue
        k += 1
    return name


class ScopeTree:
    """Scope tree plus a per-token scope map over a code-token stream."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.file_scope = Scope("file")
        # scope_of[i] = innermost scope containing tokens[i]
        self.scope_of: list[Scope] = [self.file_scope] * len(tokens)
        self._build()

    def _build(self) -> None:
        current = self.file_scope
        stack = [current]
        for i, tok in enumerate(self.tokens):
            self.scope_of[i] = current
            if tok.text == "{":
                kind, name = _classify_brace(self.tokens, i, current)
                child = Scope(kind, name, current, start=i)
                current.children.append(child)
                stack.append(child)
                current = child
                self.scope_of[i] = child
            elif tok.text == "}":
                current.end = i
                if len(stack) > 1:
                    stack.pop()
                    current = stack[-1]
                # else: unbalanced `}` — stay at file scope.

    def at(self, index: int) -> Scope:
        if 0 <= index < len(self.scope_of):
            return self.scope_of[index]
        return self.file_scope


def collect_declarations(tokens: list[Token], tree: ScopeTree,
                         aliases: set[str]) -> list[Declaration]:
    """Declarations of variables (and accessor-style members) whose type
    is an unordered container, written directly or via a known alias.

    Handles `std::unordered_map<...> name`, `const PairMap& name`, and the
    accessor shape `unordered_map<...>& name() { return member_; }` (the
    name is recorded either way; rules that care distinguish via the
    following token)."""
    decls: list[Declaration] = []
    n = len(tokens)
    i = 0
    while i < n:
        t = tokens[i]
        if t.kind != "ident":
            i += 1
            continue
        is_unordered = t.text in UNORDERED_TYPES
        is_alias = t.text in aliases
        if not (is_unordered or is_alias):
            i += 1
            continue
        j = i + 1
        if is_unordered:
            if j >= n or tokens[j].text != "<":
                i += 1
                continue
            j = skip_template(tokens, j)
        # Skip ref/pointer/cv noise between type and declarator.
        while j < n and (tokens[j].text in ("&", "&&", "*")
                         or (tokens[j].kind == "ident"
                             and tokens[j].text in ("const", "constexpr",
                                                    "mutable", "static"))):
            j += 1
        if j < n and tokens[j].kind == "ident":
            after = tokens[j + 1].text if j + 1 < n else ""
            if after in (";", "=", "{", "(", ",", ")", "["):
                decls.append(Declaration(tokens[j].text, tree.at(j), j,
                                         tokens[j].line,
                                         "unordered"))
        i = j if j > i else i + 1
    return decls


def collect_accessors(tokens: list[Token], aliases: set[str]) -> set[str]:
    """Names of functions that return a reference or iterator *into* an
    unordered container (`const PairMap& last_counts()`,
    `unordered_map<K,V>::iterator find_slot()`), the DET-3 shapes. A
    function returning the container *by value* hands the caller a copy
    and is not collected."""
    names: set[str] = set()
    n = len(tokens)
    i = 0
    while i < n:
        t = tokens[i]
        is_unordered = t.kind == "ident" and t.text in UNORDERED_TYPES
        is_alias = t.kind == "ident" and t.text in aliases
        if not (is_unordered or is_alias):
            i += 1
            continue
        j = i + 1
        if j < n and tokens[j].text == "<":
            j = skip_template(tokens, j)
        elif is_unordered:
            i += 1
            continue
        into = False
        if j + 1 < n and tokens[j].text == "::" and \
                tokens[j + 1].kind == "ident" and \
                "iterator" in tokens[j + 1].text:
            into = True
            j += 2
        while j < n and (tokens[j].text in ("&", "&&")
                         or (tokens[j].kind == "ident"
                             and tokens[j].text == "const")):
            if tokens[j].text in ("&", "&&"):
                into = True
            j += 1
        if into and j + 1 < n and tokens[j].kind == "ident" and \
                tokens[j + 1].text == "(":
            names.add(tokens[j].text)
        i = max(j, i + 1)
    return names


def collect_aliases(tokens: list[Token]) -> set[str]:
    """`using Name = std::unordered_map<...>` / `typedef ... Name` names."""
    aliases: set[str] = set()
    n = len(tokens)
    for i, t in enumerate(tokens):
        if t.kind == "ident" and t.text == "using" and i + 2 < n and \
                tokens[i + 1].kind == "ident" and tokens[i + 2].text == "=":
            j = i + 3
            limit = min(n, j + 8)
            while j < limit:
                if tokens[j].kind == "ident" and \
                        tokens[j].text.startswith("unordered_"):
                    aliases.add(tokens[i + 1].text)
                    break
                j += 1
    return aliases


def resolve(name: str, use_scope: Scope, use_index: int,
            decls: list[Declaration],
            extern_names: set[str]) -> Declaration | None:
    """Nearest declaration of `name` visible from `use_scope`: innermost
    lexical scope first, then (for out-of-line member functions) any
    class-or-file-scope declaration, then the cross-file set
    `extern_names` (own-header members, shared aliases) as a synthetic
    match."""
    candidates = [d for d in decls if d.name == name]
    best: Declaration | None = None
    best_depth = -1
    ancestors = list(use_scope.chain())
    for d in candidates:
        if d.scope in ancestors and d.index <= use_index:
            depth = len(list(d.scope.chain()))
            if depth > best_depth:
                best, best_depth = d, depth
    if best is not None:
        return best
    # Member access from an out-of-line definition: class/file-scope decls
    # are visible even though not lexical ancestors.
    for d in candidates:
        if d.scope.kind in ("class", "file", "namespace"):
            return d
    if name in extern_names:
        return Declaration(name, use_scope.enclosing("file") or use_scope,
                           -1, 0, "unordered")
    return None
