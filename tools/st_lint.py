#!/usr/bin/env python3
"""st-lint: project-specific determinism & concurrency linter.

The parallel update interval (DESIGN.md §11) and the obs layer (§12)
promise hard contracts — bit-identical results at every thread count,
obs-on/off identity, exception-safe pool shutdown. Those contracts are
easy to break silently: one hash-order iteration feeding a reduction,
one ``rand()`` seeded from the wall clock, one naked ``std::thread`` in
a new bench, one BFS recompute inside a shard lock. This linter rejects
the known-dangerous source patterns before they compile.

Since v2 the engine is a real lexing front end (tools/stlint/): a C++
tokenizer, a brace/namespace/function scope tree, and scope-aware
declaration resolution. Rule text inside comments and string literals
can never fire a rule, iterated identifiers resolve to their nearest
declaration instead of a file-global name set, and rules can read
string literals (OBS-1 checks the metric-name literal itself).

v3 adds the whole-program layer: every run distils each file into a
fact record (functions, calls, writes, locks, class fields — index.py),
resolves call edges across translation units (callgraph.py), and runs
four inter-procedural rule families on the resulting graph. Facts are
cached content-hash-keyed in ``--index-cache`` JSON, so warm re-lints
re-lex only changed files.

Rule catalogue (python3 tools/st_lint.py --list-rules, rationale and
etiquette in docs/STATIC_ANALYSIS.md):

  DET-1   nondeterminism sources outside src/stats/rng.*
  DET-2   hash-order traversal of unordered containers in
          determinism-critical directories (the sanctioned
          flatten-then-sort idiom is recognised and exempt)
  DET-3   accessors returning references/iterators into unordered
          containers, iterated at the call site
  DET-4   (whole-program) hash-order iteration feeding an accumulation
          or ordering sink where the unordered accessor is defined in
          another translation unit; pointer-keyed ordered containers
  CON-1   naked std::thread / detach() outside src/util/thread_pool.*
  CON-2   raw new/delete/malloc
  CON-3   (whole-program) writes to shared non-atomic state from code
          reachable from a parallel_for / ThreadPool::submit body,
          without a held lock
  LOCK-1  second mutex acquired while one is held in the same scope
  LOCK-2  manual .lock()/.unlock() instead of an RAII guard
  LOCK-3  expensive work (recompute/BFS calls, allocating loops) inside
          a lock scope
  LOCK-4  (whole-program) lock-order cycles across function boundaries,
          reported with both acquisition chains
  OBS-1   metric names: snake_case, globally unique, documented in
          docs/OBSERVABILITY.md
  OBS-2   documented metrics that no longer exist in code
  API-2   (whole-program) SocialGraph/InterestProfiles mutation paths
          must bump a revision; rebuild() must not call accessors
  HYG-1   every src/ .cpp includes its own header first
  HYG-2   no using namespace at namespace scope in headers
  SUP-1   (--strict) every suppression names its rule and a reason
  SUP-2   (--strict) allow() sites may not exceed tools/lint_budget.json

Suppressions: append ``// st-lint: allow(RULE-ID reason)`` to the
offending line, or place the comment alone on the line directly above
it. The reason is mandatory under ``--strict``.

Usage:
    python3 tools/st_lint.py [--strict] [--json] [--sarif]
        [--list-rules] [--index-cache PATH] [--changed-only] [path ...]

Paths default to ``src bench tests examples`` relative to the repo
root; a path may be a directory (scanned recursively for C++ sources)
or a file. ``--changed-only`` restricts per-file rules to files changed
vs merge-base(HEAD, origin/main) while the index — and therefore every
whole-program rule — still sees the full tree (tools/pre-commit wires
this into a git hook).

Exit status: 0 when the tree is clean, 1 when findings (or, under
``--strict``, suppression-hygiene/budget violations) were reported, 2 on
usage errors.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from stlint.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
