#!/usr/bin/env python3
"""st-lint: project-specific determinism & concurrency linter.

The parallel update interval (DESIGN.md §11) and the obs layer (§12)
promise hard contracts — bit-identical results at every thread count,
obs-on/off identity, exception-safe pool shutdown. Those contracts are
easy to break silently: one hash-order iteration feeding a reduction,
one ``rand()`` seeded from the wall clock, one naked ``std::thread`` in
a new bench, one BFS recompute inside a shard lock. This linter rejects
the known-dangerous source patterns before they compile.

Since v2 the engine is a real lexing front end (tools/stlint/): a C++
tokenizer, a brace/namespace/function scope tree, and scope-aware
declaration resolution. Rule text inside comments and string literals
can never fire a rule, iterated identifiers resolve to their nearest
declaration instead of a file-global name set, and rules can read
string literals (OBS-1 checks the metric-name literal itself).

Rule catalogue (python3 tools/st_lint.py --list-rules, rationale and
etiquette in docs/STATIC_ANALYSIS.md):

  DET-1   nondeterminism sources outside src/stats/rng.*
  DET-2   hash-order traversal of unordered containers in
          determinism-critical directories (the sanctioned
          flatten-then-sort idiom is recognised and exempt)
  DET-3   accessors returning references/iterators into unordered
          containers, iterated at the call site
  CON-1   naked std::thread / detach() outside src/util/thread_pool.*
  CON-2   raw new/delete/malloc
  LOCK-1  second mutex acquired while one is held in the same scope
  LOCK-2  manual .lock()/.unlock() instead of an RAII guard
  LOCK-3  expensive work (recompute/BFS calls, allocating loops) inside
          a lock scope
  OBS-1   metric names: snake_case, globally unique, documented in
          docs/OBSERVABILITY.md
  OBS-2   documented metrics that no longer exist in code
  HYG-1   every src/ .cpp includes its own header first
  HYG-2   no using namespace at namespace scope in headers
  SUP-1   (--strict) every suppression names its rule and a reason
  SUP-2   (--strict) allow() sites may not exceed tools/lint_budget.json

Suppressions: append ``// st-lint: allow(RULE-ID reason)`` to the
offending line, or place the comment alone on the line directly above
it. The reason is mandatory under ``--strict``.

Usage:
    python3 tools/st_lint.py [--strict] [--json] [--list-rules] [path ...]

Paths default to ``src bench tests examples`` relative to the repo
root; a path may be a directory (scanned recursively for C++ sources)
or a file.

Exit status: 0 when the tree is clean, 1 when findings (or, under
``--strict``, suppression-hygiene/budget violations) were reported, 2 on
usage errors.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from stlint.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
