#!/usr/bin/env python3
"""st-lint: project-specific determinism & concurrency linter.

The parallel update interval (DESIGN.md §11) and the obs layer (§12)
promise hard contracts — bit-identical results at every thread count,
obs-on/off identity, exception-safe pool shutdown. Those contracts are
easy to break silently: one hash-order iteration feeding a reduction,
one ``rand()`` seeded from the wall clock, one naked ``std::thread`` in
a new bench. This linter rejects the known-dangerous source patterns
before they compile. Rule catalogue (see docs/STATIC_ANALYSIS.md for
rationale and etiquette):

  DET-1  nondeterminism sources (``rand``/``srand``/``time``/
         ``std::random_device``/``system_clock``/clock-as-seed) outside
         src/stats/rng.* — all randomness flows through st::stats::Rng.
  DET-2  hash-order traversal of ``std::unordered_map`` /
         ``std::unordered_set`` in src/core/, src/reputation/, src/sim/:
         range-for and iterator loops, ``begin()``/``cbegin()`` handed to
         an order-sensitive algorithm (``accumulate``, ``copy``,
         ``for_each``, ``transform``, ...), iterator-pair
         ``.insert(...)``/``.assign(...)`` into another container, and
         ``ranges::`` algorithms over the container itself. Hash-order
         iteration feeding an ordered output or a floating-point
         reduction is exactly the bug class the blocked parallel_for
         design exists to prevent; flatten to a vector and sort first,
         or annotate the sorted-reduction pattern.
  CON-1  naked ``std::thread`` / ``.detach()`` outside
         src/util/thread_pool.* — all parallelism goes through the pool
         so shutdown stays exception-safe and worker counts stay bounded.
  CON-2  raw ``new``/``delete``/``malloc`` — use containers,
         ``std::make_unique``, or an allow-listed arena.
  HYG-1  every src/ ``.cpp`` includes its own header first (proves the
         header is self-contained).
  HYG-2  no ``using namespace`` at namespace scope in headers.
  SUP-1  (meta, ``--strict`` only) every ``st-lint: allow(...)`` and
         ``NOLINT`` must name its rule/check and carry a reason string.

Suppressions: append ``// st-lint: allow(RULE-ID reason)`` to the
offending line, or place the comment alone on the line directly above
it. The reason is mandatory under ``--strict``.

Usage:
    python3 tools/st_lint.py [--strict] [--json] [--list-rules] [path ...]

Paths default to ``src bench tests examples`` relative to the repo
root; a path may be a directory (scanned recursively for C++ sources)
or a file.

Exit status: 0 when the tree is clean, 1 when findings (or, under
``--strict``, suppression-hygiene violations) were reported, 2 on usage
errors. Mirrors tools/check_markdown_links.py: stdlib only, run from
anywhere.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CXX_SUFFIXES = {".cpp", ".cc", ".cxx", ".hpp", ".h", ".hxx"}
HEADER_SUFFIXES = {".hpp", ".h", ".hxx"}
EXCLUDED_DIR_NAMES = {"build", ".git", "third_party"}
DEFAULT_PATHS = ["src", "bench", "tests", "examples"]

RULES = {
    "DET-1": "nondeterminism source outside src/stats/rng.*",
    "DET-2": "hash-order traversal (loop, algorithm, or range copy) over "
             "an unordered container in a determinism-critical directory",
    "CON-1": "naked std::thread / detach() outside src/util/thread_pool.*",
    "CON-2": "raw new/delete/malloc outside allow-listed files",
    "HYG-1": ".cpp does not include its own header first",
    "HYG-2": "using namespace at namespace scope in a header",
    "SUP-1": "suppression without a rule id or reason",
}

# Per-rule path scoping. Prefixes are matched against the file's
# repo-relative posix path; for files outside the repo (fixtures, tests)
# the prefix is also matched as an interior substring so layouts like
# /tmp/xyz/src/core/f.cpp scope the same way.
DET1_ALLOWED_PREFIXES = ("src/stats/rng.",)
DET2_SCOPE_PREFIXES = ("src/core/", "src/reputation/", "src/sim/")
CON1_ALLOWED_PREFIXES = ("src/util/thread_pool.",)
CON2_ALLOWED_PREFIXES: tuple[str, ...] = ()

ALLOW_RE = re.compile(r"//\s*st-lint:\s*allow\(\s*([A-Za-z]+-?\d*)\s*([^)]*)\)")
NOLINT_RE = re.compile(r"//\s*NOLINT(NEXTLINE)?\b(\(([^)]*)\))?(.*)")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*["<]([^">]+)[">]')
UNORDERED_ALIAS_RE = re.compile(
    r"\busing\s+(\w+)\s*=\s*std\s*::\s*unordered_(?:map|set)\b")
UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set)\s*<")
RANGE_FOR_RE = re.compile(
    r"\bfor\s*\(((?:[^()]|\([^()]*\))*)\)", re.DOTALL)
TOP_LEVEL_COLON_RE = re.compile(r"(?<!:):(?!:)")
TRAILING_IDENT_RE = re.compile(r"(\w+)\s*(?:\(\s*\))?\s*$")
ITER_BEGIN_RE = re.compile(r"=\s*(\w+)\s*\.\s*c?begin\s*\(")

# Order-sensitive consumers beyond loops: handing an unordered
# container's begin() to one of these bakes hash order into an output
# stream or a floating-point reduction just as surely as a range-for.
ORDER_SENSITIVE_ALGOS = (
    "accumulate", "reduce", "partial_sum", "inclusive_scan",
    "exclusive_scan", "copy", "copy_n", "copy_if", "for_each",
    "transform",
)
ALGO_BEGIN_RE = re.compile(
    r"\b(" + "|".join(ORDER_SENSITIVE_ALGOS) +
    r")\s*\(\s*(\w+)\s*\.\s*c?begin\s*\(")
# v.insert(v.end(), m.begin(), m.end()) / v.assign(m.begin(), m.end()):
# materialises the container in hash order.
RANGE_INSERT_RE = re.compile(
    r"\.\s*(?:insert|assign)\s*\(\s*(?:[^;]*?,\s*)?(\w+)\s*\.\s*"
    r"c?begin\s*\(")
# ranges:: algorithms take the container itself as the first argument.
RANGES_ALGO_RE = re.compile(
    r"\branges\s*::\s*(" + "|".join(ORDER_SENSITIVE_ALGOS) +
    r")\s*\(\s*(\w+)\s*[,)]")


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def as_text(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


@dataclass
class Suppression:
    rule: str
    reason: str


@dataclass
class SourceFile:
    """One scanned file: raw lines plus comment/string-scrubbed lines."""

    path: Path
    rel: str  # repo-relative (or as-given) posix path used in reports
    raw_lines: list[str]
    code_lines: list[str]  # same line count, comments/strings blanked
    suppressions: dict[int, list[Suppression]] = field(default_factory=dict)
    bad_suppressions: list[Finding] = field(default_factory=list)

    @property
    def code_text(self) -> str:
        return "\n".join(self.code_lines)


def scrub(text: str) -> str:
    """Blank comments, string literals, and char literals, keeping the
    line structure intact so line numbers survive. Handles // and block
    comments, escape sequences, and R"delim(...)delim" raw strings."""
    out: list[str] = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        if state == "code":
            nxt = text[i + 1] if i + 1 < n else ""
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == "R" and nxt == '"' and (i == 0 or not (
                    text[i - 1].isalnum() or text[i - 1] == "_")):
                # Raw string: find the delimiter and skip to its close.
                close_paren = text.find("(", i + 2)
                delim = text[i + 2:close_paren] if close_paren != -1 else ""
                end_marker = ")" + delim + '"'
                end = text.find(end_marker, close_paren + 1)
                end = (end + len(end_marker)) if end != -1 else n
                out.append('""')
                out.extend("\n" if ch == "\n" else " "
                           for ch in text[i + 2:end])
                i = end
            elif c == '"':
                state = "string"
                out.append('"')
                i += 1
            elif c == "'":
                # 1'000'000 digit separators are not char literals.
                if i > 0 and text[i - 1].isalnum() and i + 1 < n and \
                        text[i + 1].isalnum():
                    out.append("'")
                    i += 1
                else:
                    state = "char"
                    out.append("'")
                    i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and i + 1 < n and text[i + 1] == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        else:  # string or char
            quote = '"' if state == "string" else "'"
            if c == "\\" and i + 1 < n:
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(quote)
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def rel_path(path: Path) -> str:
    try:
        return path.resolve().relative_to(REPO_ROOT).as_posix()
    except ValueError:
        return path.as_posix()


def in_scope(rel: str, prefixes: tuple[str, ...]) -> bool:
    """True when the path starts with a prefix, or contains it as an
    interior path component (so out-of-repo fixture trees scope too)."""
    return any(rel.startswith(p) or f"/{p}" in rel for p in prefixes)


def load_file(path: Path) -> SourceFile:
    text = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = text.splitlines()
    code_lines = scrub(text).splitlines()
    # scrub preserves newline positions, so the counts match; guard anyway.
    while len(code_lines) < len(raw_lines):
        code_lines.append("")
    sf = SourceFile(path=path, rel=rel_path(path), raw_lines=raw_lines,
                    code_lines=code_lines)
    collect_suppressions(sf)
    return sf


def collect_suppressions(sf: SourceFile) -> None:
    """Parse st-lint allow() and clang-tidy NOLINT comments. A comment on
    its own line covers the next line; otherwise it covers its own."""
    for lineno, raw in enumerate(sf.raw_lines, start=1):
        for match in ALLOW_RE.finditer(raw):
            rule = match.group(1).upper()
            reason = match.group(2).strip()
            target = lineno
            if raw[:match.start()].strip() == "":  # comment-only line
                target = lineno + 1
            if rule not in RULES:
                sf.bad_suppressions.append(Finding(
                    sf.rel, lineno, "SUP-1",
                    f"allow() names unknown rule '{rule}'"))
                continue
            if not reason:
                sf.bad_suppressions.append(Finding(
                    sf.rel, lineno, "SUP-1",
                    f"allow({rule}) carries no reason string"))
                continue
            sf.suppressions.setdefault(target, []).append(
                Suppression(rule, reason))
        for match in NOLINT_RE.finditer(raw):
            checks = (match.group(3) or "").strip()
            trailing = (match.group(4) or "").strip().lstrip(":").strip()
            if not checks or checks == "*":
                sf.bad_suppressions.append(Finding(
                    sf.rel, lineno, "SUP-1",
                    "NOLINT must name the suppressed check(s): "
                    "NOLINT(check-name): reason"))
            elif not trailing:
                sf.bad_suppressions.append(Finding(
                    sf.rel, lineno, "SUP-1",
                    f"NOLINT({checks}) carries no reason string"))


def is_suppressed(sf: SourceFile, lineno: int, rule: str) -> bool:
    return any(s.rule == rule for s in sf.suppressions.get(lineno, []))


def emit(findings: list[Finding], sf: SourceFile, lineno: int, rule: str,
         message: str) -> None:
    if not is_suppressed(sf, lineno, rule):
        findings.append(Finding(sf.rel, lineno, rule, message))


# --- DET-1: nondeterminism sources ------------------------------------------

DET1_PATTERNS = [
    (re.compile(r"\b(?:std\s*::\s*)?s?rand\s*\("),
     "C rand()/srand(); route randomness through st::stats::Rng"),
    (re.compile(r"\btime\s*\("),
     "wall-clock time() seed; experiments must be seed-reproducible"),
    (re.compile(r"\bstd\s*::\s*random_device\b"),
     "std::random_device is a nondeterministic seed source"),
    (re.compile(r"\bsystem_clock\b"),
     "system_clock reads the wall clock; results would vary per run"),
]
DET1_CLOCK_AS_SEED_RE = re.compile(
    r"\b(?:steady_clock|high_resolution_clock)\b")
DET1_SEED_CONTEXT_RE = re.compile(r"seed|time_since_epoch", re.IGNORECASE)


def check_det1(sf: SourceFile, findings: list[Finding]) -> None:
    if in_scope(sf.rel, DET1_ALLOWED_PREFIXES):
        return
    for lineno, code in enumerate(sf.code_lines, start=1):
        for pattern, message in DET1_PATTERNS:
            if pattern.search(code):
                emit(findings, sf, lineno, "DET-1", message)
        if DET1_CLOCK_AS_SEED_RE.search(code) and \
                DET1_SEED_CONTEXT_RE.search(code):
            emit(findings, sf, lineno, "DET-1",
                 "monotonic clock used as a seed; timing is fine, "
                 "seeding is not")


# --- DET-2: hash-order iteration --------------------------------------------

def unordered_aliases(files: list[SourceFile]) -> set[str]:
    """Global pre-pass: names aliased to unordered containers anywhere in
    the scanned set (e.g. `using PairMap = std::unordered_map<...>`), so
    a header's alias scopes its users in other files."""
    aliases: set[str] = set()
    for sf in files:
        for match in UNORDERED_ALIAS_RE.finditer(sf.code_text):
            aliases.add(match.group(1))
    return aliases


def skip_template_args(text: str, open_idx: int) -> int:
    """Index just past the `>` matching the `<` at open_idx."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "<":
            depth += 1
        elif text[i] == ">":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def unordered_identifiers(sf: SourceFile, aliases: set[str]) -> set[str]:
    """Identifiers in this file declared with an unordered container type
    (directly or via a known alias), including accessor functions that
    return one — `for (auto& kv : ledger.last_counts())` must flag."""
    text = sf.code_text
    names: set[str] = set()
    for match in UNORDERED_DECL_RE.finditer(text):
        end = skip_template_args(text, match.end() - 1)
        tail = text[end:end + 160]
        m = re.match(r"[>\s*&]*(\w+)\s*[;={(,[]", tail)
        if m and m.group(1) not in {"const", "constexpr", "mutable"}:
            names.add(m.group(1))
    for alias in aliases:
        for m in re.finditer(
                rf"\b{re.escape(alias)}\b[\s*&]+(\w+)\s*[;={{(,)]", text):
            names.add(m.group(1))
    return names


def line_of_offset(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def own_header_of(sf: SourceFile) -> Path | None:
    if sf.path.suffix not in {".cpp", ".cc", ".cxx"}:
        return None
    for suffix in HEADER_SUFFIXES:
        candidate = sf.path.with_suffix(suffix)
        if candidate.exists():
            return candidate.resolve()
    return None


def check_det2(sf: SourceFile, aliases: set[str],
               header_idents: dict[Path, set[str]],
               findings: list[Finding]) -> None:
    if not in_scope(sf.rel, DET2_SCOPE_PREFIXES):
        return
    names = unordered_identifiers(sf, aliases)
    # A .cpp iterates members its own header declares (e.g. a PairMap
    # member) — fold the header's unordered identifiers in.
    header = own_header_of(sf)
    if header is not None:
        names |= header_idents.get(header, set())
    if not names:
        return
    text = sf.code_text
    for match in RANGE_FOR_RE.finditer(text):
        header = match.group(1)
        lineno = line_of_offset(text, match.start())
        colon = TOP_LEVEL_COLON_RE.search(header)
        if colon:  # range-for: inspect the range expression's root
            range_expr = header[colon.end():].strip()
            ident = TRAILING_IDENT_RE.search(range_expr)
            if ident and ident.group(1) in names:
                emit(findings, sf, lineno, "DET-2",
                     f"range-for over unordered container "
                     f"'{ident.group(1)}': hash order is an implementation "
                     f"accident; flatten to a vector and sort, or annotate "
                     f"the sorted-reduction pattern")
        else:  # iterator loop: for (auto it = m.begin(); ...)
            it = ITER_BEGIN_RE.search(header)
            if it and it.group(1) in names:
                emit(findings, sf, lineno, "DET-2",
                     f"iterator loop over unordered container "
                     f"'{it.group(1)}': hash order is an implementation "
                     f"accident; flatten to a vector and sort first")
    for match in ALGO_BEGIN_RE.finditer(text):
        algo, ident = match.group(1), match.group(2)
        if ident in names:
            emit(findings, sf, line_of_offset(text, match.start()), "DET-2",
                 f"{algo}() over unordered container '{ident}': the "
                 f"accumulation/output order is hash order; flatten to a "
                 f"vector and sort first")
    for match in RANGE_INSERT_RE.finditer(text):
        ident = match.group(1)
        if ident in names:
            emit(findings, sf, line_of_offset(text, match.start()), "DET-2",
                 f"iterator-pair insert/assign from unordered container "
                 f"'{ident}' materialises hash order; flatten to a vector "
                 f"and sort first")
    for match in RANGES_ALGO_RE.finditer(text):
        algo, ident = match.group(1), match.group(2)
        if ident in names:
            emit(findings, sf, line_of_offset(text, match.start()), "DET-2",
                 f"ranges::{algo} over unordered container '{ident}': the "
                 f"traversal order is hash order; flatten to a vector and "
                 f"sort first")


# --- CON-1: naked threads ---------------------------------------------------

CON1_THREAD_RE = re.compile(r"\bstd\s*::\s*j?thread\b(?!\s*::)")
CON1_DETACH_RE = re.compile(r"\.\s*detach\s*\(")


def check_con1(sf: SourceFile, findings: list[Finding]) -> None:
    if in_scope(sf.rel, CON1_ALLOWED_PREFIXES):
        return
    for lineno, code in enumerate(sf.code_lines, start=1):
        if CON1_THREAD_RE.search(code):
            emit(findings, sf, lineno, "CON-1",
                 "naked std::thread; submit work to st::util::ThreadPool "
                 "so shutdown stays exception-safe "
                 "(std::thread::hardware_concurrency() etc. are fine)")
        if CON1_DETACH_RE.search(code):
            emit(findings, sf, lineno, "CON-1",
                 "detach() abandons the thread past pool shutdown; join "
                 "via the pool instead")


# --- CON-2: raw allocation --------------------------------------------------

CON2_DELETED_FN_RE = re.compile(r"=\s*delete\b")
CON2_PATTERNS = [
    (re.compile(r"\bnew\b"), "raw new"),
    (re.compile(r"\bdelete\b"), "raw delete"),
    (re.compile(r"\b(?:malloc|calloc|realloc|free)\s*\("), "C allocation"),
]


def check_con2(sf: SourceFile, findings: list[Finding]) -> None:
    if in_scope(sf.rel, CON2_ALLOWED_PREFIXES):
        return
    for lineno, code in enumerate(sf.code_lines, start=1):
        if "operator" in code:  # allocator machinery declares operator new
            continue
        code = CON2_DELETED_FN_RE.sub("", code)  # `= delete;` is hygiene
        for pattern, what in CON2_PATTERNS:
            if pattern.search(code):
                emit(findings, sf, lineno, "CON-2",
                     f"{what}: use containers or std::make_unique "
                     f"(allow-list an arena file if one is ever needed)")


# --- HYG-1: own header first ------------------------------------------------

def check_hyg1(sf: SourceFile, findings: list[Finding]) -> None:
    if sf.path.suffix not in {".cpp", ".cc", ".cxx"}:
        return
    own_header = None
    for suffix in HEADER_SUFFIXES:
        candidate = sf.path.with_suffix(suffix)
        if candidate.exists():
            own_header = candidate.name
            break
    if own_header is None:  # tests/benches have no own header
        return
    for lineno, raw in enumerate(sf.raw_lines, start=1):
        match = INCLUDE_RE.match(raw)
        if not match:
            continue
        target = match.group(1)
        if target == own_header or target.endswith("/" + own_header):
            return
        emit(findings, sf, lineno, "HYG-1",
             f"first include is '{target}'; include the file's own header "
             f"'{own_header}' first to prove it is self-contained")
        return


# --- HYG-2: using namespace in headers --------------------------------------

HYG2_RE = re.compile(r"\busing\s+namespace\b")


def check_hyg2(sf: SourceFile, findings: list[Finding]) -> None:
    if sf.path.suffix not in HEADER_SUFFIXES:
        return
    for lineno, code in enumerate(sf.code_lines, start=1):
        if HYG2_RE.search(code):
            emit(findings, sf, lineno, "HYG-2",
                 "using namespace in a header leaks into every includer; "
                 "use explicit qualification or a local alias")


# --- driver -----------------------------------------------------------------

def gather_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            for child in sorted(path.rglob("*")):
                if child.suffix in CXX_SUFFIXES and not any(
                        part in EXCLUDED_DIR_NAMES for part in child.parts):
                    files.append(child)
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return files


def run(paths: list[Path], strict: bool) -> tuple[list[Finding], int]:
    sources = [load_file(p) for p in gather_files(paths)]
    aliases = unordered_aliases(sources)
    header_idents = {
        sf.path.resolve(): unordered_identifiers(sf, aliases)
        for sf in sources if sf.path.suffix in HEADER_SUFFIXES
    }
    findings: list[Finding] = []
    for sf in sources:
        check_det1(sf, findings)
        check_det2(sf, aliases, header_idents, findings)
        check_con1(sf, findings)
        check_con2(sf, findings)
        check_hyg1(sf, findings)
        check_hyg2(sf, findings)
        if strict:
            findings.extend(sf.bad_suppressions)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings, len(sources)


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="st_lint.py",
        description="determinism & concurrency linter for the SocialTrust "
                    "tree (see docs/STATIC_ANALYSIS.md)")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories (default: src bench tests)")
    parser.add_argument("--strict", action="store_true",
                        help="also enforce suppression hygiene (SUP-1)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit findings as JSON on stdout")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, description in RULES.items():
            print(f"{rule}  {description}")
        return 0

    raw_paths = args.paths or [REPO_ROOT / p for p in DEFAULT_PATHS]
    try:
        findings, file_count = run([Path(p) for p in raw_paths], args.strict)
    except FileNotFoundError as err:
        print(err, file=sys.stderr)
        return 2

    if args.as_json:
        print(json.dumps({
            "files_scanned": file_count,
            "findings": [vars(f) for f in findings],
        }, indent=2))
    else:
        for finding in findings:
            print(finding.as_text(), file=sys.stderr)
        print(f"st-lint: scanned {file_count} file(s): "
              f"{'OK' if not findings else f'{len(findings)} finding(s)'}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
