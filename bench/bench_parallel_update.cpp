// Serial-vs-parallel wall-clock of one SocialTrust reputation-update
// interval at P2P scale, and a determinism cross-check: every thread count
// must produce the identical AdjustmentReport.
//
// The workload mirrors what the simulator feeds the plugin, scaled up: a
// small-world social graph, interest profiles with request histories, a
// colluding clique rating at high frequency, and a background of normal
// nodes rating social neighbours (1-hop, 2-hop, and the occasional distant
// pair — the mix that exercises all three closeness paths of Eqs. 2-4).
//
// Flags:
//   --threads <list>  comma-separated worker counts   (default 1,2,4,8)
//   --nodes <list>    comma-separated node counts     (default 1000,10000,50000)
//   --reps <n>        timed repetitions, min is kept  (default 3)
//   --json <path>     also write results as JSON (the BENCH_parallel_update.json
//                     artifact tracked in the repo)
//   --quick           1000,5000 nodes, 2 reps
//   --obs             additionally measure the obs-layer overhead: each
//                     workload is re-run with instrumentation disabled and
//                     enabled, the wall-clock delta is reported, and the
//                     adjusted ratings / flagged sets / reputations are
//                     compared bit-for-bit (they must be identical — the
//                     obs layer is observation-only; docs/OBSERVABILITY.md)
//   --obs-out <path>  as --obs, streaming the enabled runs' interval
//                     events to <path> as JSONL
//   --dirty           additionally benchmark the dirty-pair scheduler
//                     (DESIGN.md §14): one cold interval then warm
//                     intervals under rating + relationship churn on
//                     well under 10% of the pair population, kFullWalk
//                     vs kDirtyPairs wall-clock, reports cross-checked
//   --dirty-json <path>  write the --dirty section as JSON (the
//                     BENCH_dirty_pairs.json artifact; implies --dirty)
//   --dirty-intervals <n>  warm intervals per schedule (default 4)
//   --shards <list>   additionally benchmark the gossip-sharded
//                     aggregation pipeline (DESIGN.md §16): for each node
//                     and shard count one synchronous-exchange sharded
//                     interval runs against the centralized pipeline,
//                     adjusted ratings / flagged sets / reputations
//                     cross-checked bit-for-bit; wall-clock, partition
//                     cut and modelled boundary traffic are reported
//                     (the standalone bench_sharded_aggregation covers
//                     the full shard x thread x interval matrix)
//   --shard-seed <u64>  partitioner / exchange-schedule seed
//                     (default: the SocialTrustConfig default)
//
// Speedup rows are timing SIGNAL only when the machine can actually run
// the requested workers in parallel: when `threads` exceeds the hardware
// concurrency (in particular on 1-core CI containers, where 2-8 worker
// rows measure oversubscription noise in the 0.4-1.1x range) the row is
// marked informational and only the determinism cross-check is meaningful
// there. The exit code gates on determinism alone, never on speedup.

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/socialtrust.hpp"
#include "graph/generators.hpp"
#include "obs/obs.hpp"
#include "reputation/ebay.hpp"
#include "shard/sharded_aggregator.hpp"
#include "stats/rng.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using st::core::AdjustmentReport;
using st::core::InterestProfiles;
using st::core::SocialTrustConfig;
using st::core::SocialTrustPlugin;
using st::graph::NodeId;
using st::graph::SocialGraph;
using st::reputation::Rating;

struct Workload {
  SocialGraph graph{1};
  InterestProfiles profiles{1, 1};
  std::vector<Rating> ratings;
};

/// One update interval's worth of state and ratings for `n` nodes.
Workload make_workload(std::size_t n, st::stats::Rng& rng) {
  Workload w;
  w.graph = st::graph::watts_strogatz(n, 10, 0.1, rng);
  w.profiles = InterestProfiles(n, 20);

  auto rate = [&](NodeId rater, NodeId ratee, double value,
                  std::size_t times) {
    for (std::size_t k = 0; k < times; ++k) {
      w.ratings.push_back(Rating{rater, ratee, value, 0, 0,
                                 st::reputation::kNoInterest});
      w.graph.record_interaction(rater, ratee);
    }
  };

  // Interests + request behaviour.
  for (NodeId v = 0; v < n; ++v) {
    std::vector<st::reputation::InterestId> interests;
    for (int k = 0; k < 3; ++k) {
      interests.push_back(
          static_cast<st::reputation::InterestId>(rng.index(20)));
    }
    w.profiles.set_interests(v, interests);
    for (auto interest : interests) {
      w.profiles.record_request(v, interest, rng.uniform(1.0, 10.0));
    }
  }

  // Colluding clique: 1% of nodes pair up, heavy mutual positive ratings,
  // disjoint fabricated interests — the stream the detector must flag.
  std::size_t colluders = std::max<std::size_t>(2, n / 100) & ~std::size_t{1};
  for (NodeId c = 0; c + 1 < colluders; c += 2) {
    w.graph.add_relationship(c, c + 1, st::graph::Relationship::kKinship);
    w.graph.add_relationship(c, c + 1, st::graph::Relationship::kBusiness);
    rate(c, c + 1, 1.0, 20);
    rate(c + 1, c, 1.0, 20);
  }

  // Normal background: every node rates two direct neighbours, one 2-hop
  // neighbour (friend-of-friend closeness, Eq. 3), and 1% of nodes rate a
  // distant stranger (bottleneck path, Eq. 4).
  for (NodeId v = static_cast<NodeId>(colluders); v < n; ++v) {
    auto neighbors = w.graph.neighbors(v);
    if (neighbors.empty()) continue;
    for (int k = 0; k < 2; ++k) {
      NodeId peer = neighbors[rng.index(neighbors.size())];
      rate(v, peer, rng.bernoulli(0.85) ? 1.0 : -1.0, 2);
    }
    NodeId mid = neighbors[rng.index(neighbors.size())];
    auto second = w.graph.neighbors(mid);
    if (!second.empty()) {
      NodeId hop2 = second[rng.index(second.size())];
      if (hop2 != v) rate(v, hop2, 1.0, 2);
    }
    if (rng.bernoulli(0.01)) {
      rate(v, static_cast<NodeId>(rng.index(n)), 1.0, 1);
    }
  }
  return w;
}

bool reports_match(const AdjustmentReport& a, const AdjustmentReport& b) {
  return a.pairs_total == b.pairs_total &&
         a.pairs_flagged == b.pairs_flagged &&
         a.ratings_adjusted == b.ratings_adjusted && a.b1 == b.b1 &&
         a.b2 == b.b2 && a.b3 == b.b3 && a.b4 == b.b4 &&
         a.mean_weight == b.mean_weight &&
         a.flagged.size() == b.flagged.size();
}

struct Row {
  std::size_t nodes = 0;
  std::size_t pairs = 0;
  std::size_t threads = 0;
  double wall_ms = 0.0;
  double speedup = 1.0;
  bool identical = true;
  /// True when `threads` exceeds the hardware concurrency: the wall-clock
  /// measures oversubscription, not parallel speedup, and only the
  /// determinism column is signal.
  bool informational = false;
};

// --- --dirty scheduler section ----------------------------------------------

/// One schedule's run over the same deterministic interval sequence:
/// interval 0 is cold (both schedules pay the full per-pair walk), warm
/// intervals re-submit the same rating stream under small churn.
struct DirtyRun {
  std::vector<double> interval_ms;
  std::vector<AdjustmentReport> reports;
  std::size_t pairs = 0;
  std::size_t last_pairs_dirty = 0;
  std::size_t last_pairs_carried = 0;
};

/// Rebuilds the workload from the seed (so kFullWalk and kDirtyPairs see
/// bit-identical state sequences) and drives `intervals` updates through
/// one persistent plugin. Warm-interval churn touches well under 10% of
/// the pair population: ~2% of nodes record a fresh interaction (dirtying
/// their outgoing pairs and any entry they witness) and ~0.2% gain or
/// lose a relationship (dirtying structure-witnessed and path-backed
/// entries).
DirtyRun run_dirty_schedule(std::size_t n, std::uint64_t seed,
                            st::core::UpdateSchedule schedule,
                            std::size_t intervals) {
  st::stats::Rng rng(seed);
  Workload w = make_workload(n, rng);
  SocialTrustConfig cfg;
  cfg.threads = 1;
  cfg.schedule = schedule;
  SocialTrustPlugin plugin(
      std::make_unique<st::reputation::EbayReputation>(n), w.graph,
      w.profiles, cfg);

  DirtyRun out;
  st::stats::Rng churn_rng(seed ^ 0x517cc1b727220a95ULL);
  for (std::size_t t = 0; t < intervals; ++t) {
    if (t > 0) {
      const std::size_t interaction_churn = std::max<std::size_t>(1, n / 50);
      for (std::size_t i = 0; i < interaction_churn; ++i) {
        const auto a = static_cast<NodeId>(churn_rng.index(n));
        const auto b =
            static_cast<NodeId>((a + 3 + churn_rng.index(7)) % n);
        w.graph.record_interaction(a, b);
      }
      // Relationship churn on *existing* edges: toggle a second type on
      // a random node's first neighbour. Types strengthen and weaken
      // across intervals (bumping structure revisions and invalidating
      // the touched closeness entries) while the adjacency itself stays
      // put — matching the paper's model, where the relationship network
      // is long-lived and edge additions are rare setup/rewire events,
      // not steady-state churn. (A single brand-new adjacency would
      // exactly invalidate every cached shortest path, as it must.)
      const std::size_t edge_churn = std::max<std::size_t>(1, n / 500);
      for (std::size_t i = 0; i < edge_churn; ++i) {
        const auto a = static_cast<NodeId>(churn_rng.index(n));
        const auto neighbors = w.graph.neighbors(a);
        if (neighbors.empty()) continue;
        const NodeId b = neighbors[0];
        if (churn_rng.bernoulli(0.5)) {
          w.graph.add_relationship(a, b,
                                   st::graph::Relationship::kColleague);
        } else {
          w.graph.remove_relationship(a, b,
                                      st::graph::Relationship::kColleague);
        }
      }
    }
    const auto start = std::chrono::steady_clock::now();
    plugin.update(w.ratings);
    const auto stop = std::chrono::steady_clock::now();
    out.interval_ms.push_back(
        std::chrono::duration<double, std::milli>(stop - start).count());
    out.reports.push_back(plugin.last_report());
    out.pairs = plugin.last_report().pairs_total;
    out.last_pairs_dirty = plugin.last_dirty_stats().pairs_dirty;
    out.last_pairs_carried = plugin.last_dirty_stats().pairs_carried;
  }
  return out;
}

struct DirtyRow {
  std::size_t nodes = 0;
  std::size_t pairs = 0;
  double cold_ms = 0.0;
  double full_warm_ms = 0.0;
  double dirty_warm_ms = 0.0;
  double speedup = 0.0;
  std::size_t pairs_dirty = 0;
  std::size_t pairs_carried = 0;
  bool identical = true;
};

// --- --obs overhead section -------------------------------------------------

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Everything one instrumentation state produces that the determinism
/// contract covers: the adjusted rating stream, the flagged set (inside
/// the report), and the wrapped system's reputations.
struct ObsRun {
  double best_ms = 0.0;
  AdjustmentReport report;
  std::vector<Rating> adjusted;
  std::vector<double> reputations;
};

ObsRun run_with_obs_state(const Workload& w, std::size_t n,
                          std::size_t threads, std::size_t reps,
                          bool enabled, const std::string& jsonl_path) {
  st::obs::StObsConfig obs_cfg;
  obs_cfg.enabled = enabled;
  if (enabled) obs_cfg.jsonl_path = jsonl_path;
  st::obs::Obs::instance().configure(obs_cfg);

  SocialTrustConfig cfg;
  cfg.threads = threads;
  ObsRun result;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    SocialTrustPlugin plugin(
        std::make_unique<st::reputation::EbayReputation>(n), w.graph,
        w.profiles, cfg);
    auto start = std::chrono::steady_clock::now();
    plugin.update(w.ratings);
    auto stop = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (rep == 0 || ms < result.best_ms) result.best_ms = ms;
    result.report = plugin.last_report();
    result.adjusted.assign(plugin.last_adjusted().begin(),
                           plugin.last_adjusted().end());
    result.reputations.assign(plugin.reputations().begin(),
                              plugin.reputations().end());
  }
  return result;
}

/// Bit-for-bit identity across instrumentation states — stricter than
/// reports_match: every adjusted rating value, every flagged pair's
/// weight, and every reputation must have identical bit patterns.
bool obs_runs_identical(const ObsRun& a, const ObsRun& b) {
  if (!reports_match(a.report, b.report)) return false;
  if (a.adjusted.size() != b.adjusted.size()) return false;
  for (std::size_t i = 0; i < a.adjusted.size(); ++i) {
    const Rating& x = a.adjusted[i];
    const Rating& y = b.adjusted[i];
    if (x.rater != y.rater || x.ratee != y.ratee || x.cycle != y.cycle ||
        x.query_cycle != y.query_cycle || x.interest != y.interest ||
        !bits_equal(x.value, y.value)) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.report.flagged.size(); ++i) {
    const auto& x = a.report.flagged[i];
    const auto& y = b.report.flagged[i];
    if (x.rater != y.rater || x.ratee != y.ratee ||
        x.behavior != y.behavior || !bits_equal(x.weight, y.weight)) {
      return false;
    }
  }
  if (a.reputations.size() != b.reputations.size()) return false;
  for (std::size_t i = 0; i < a.reputations.size(); ++i) {
    if (!bits_equal(a.reputations[i], b.reputations[i])) return false;
  }
  return true;
}

struct ObsRow {
  std::size_t nodes = 0;
  std::size_t threads = 0;
  double off_ms = 0.0;
  double on_ms = 0.0;
  double overhead_pct = 0.0;
  bool identical = true;
};

// --- --shards sharded-aggregation section -----------------------------------

/// One centralized-or-sharded interval, min of `reps`; the returned
/// snapshot carries everything the bit-identity cross-check compares.
/// When the config runs sharded, `stats_out` receives the last interval's
/// ShardStats (partition cut, exchange traffic, rounds).
ObsRun run_aggregation(const Workload& w, std::size_t n,
                       const SocialTrustConfig& cfg, std::size_t reps,
                       st::shard::ShardStats* stats_out) {
  ObsRun result;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    SocialTrustPlugin plugin(
        std::make_unique<st::reputation::EbayReputation>(n), w.graph,
        w.profiles, cfg);
    const auto start = std::chrono::steady_clock::now();
    plugin.update(w.ratings);
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (rep == 0 || ms < result.best_ms) result.best_ms = ms;
    result.report = plugin.last_report();
    result.adjusted.assign(plugin.last_adjusted().begin(),
                           plugin.last_adjusted().end());
    result.reputations.assign(plugin.reputations().begin(),
                              plugin.reputations().end());
    if (stats_out != nullptr) {
      if (const st::shard::ShardStats* ss = plugin.last_shard_stats()) {
        *stats_out = *ss;
      }
    }
  }
  return result;
}

struct ShardRow {
  std::size_t nodes = 0;
  std::size_t shards = 0;
  std::size_t pairs = 0;
  double central_ms = 0.0;
  double sharded_ms = 0.0;
  std::size_t cut_edges = 0;
  std::uint64_t boundary_bytes = 0;
  std::size_t rounds = 0;
  bool identical = true;
};

}  // namespace

int main(int argc, char** argv) {
  st::util::CliArgs args(argc, argv);
  const st::bench::CommonFlags common =
      st::bench::parse_common_flags(args, "1,2,4,8");
  const bool quick = common.quick;
  auto node_counts = st::bench::parse_size_list(
      args.get_or("nodes", quick ? "1000,5000" : "1000,10000,50000"));
  const auto& thread_counts = common.threads;
  const std::size_t reps = common.reps;
  const std::uint64_t seed = common.seed;
  const unsigned hardware_threads =
      std::max(1U, std::thread::hardware_concurrency());

  std::cout << "=== bench_parallel_update ===\n"
            << "(one SocialTrust update interval; min of " << reps
            << " reps; hardware threads: " << hardware_threads << ")\n";
  if (hardware_threads == 1) {
    std::cout << "NOTE: single hardware thread — multi-thread rows measure "
                 "oversubscription, not speedup; they are marked "
                 "informational and only their determinism column is "
                 "signal.\n";
  }
  std::cout << "\n";

  std::vector<Row> rows;
  for (std::size_t n : node_counts) {
    st::stats::Rng rng(seed);
    Workload w = make_workload(n, rng);
    double serial_ms = 0.0;
    AdjustmentReport serial_report;
    for (std::size_t threads : thread_counts) {
      SocialTrustConfig cfg;
      cfg.threads = threads;
      double best_ms = 0.0;
      AdjustmentReport report;
      std::size_t pairs = 0;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        // Fresh plugin per rep: update() also extends rater history, and
        // timing the first interval keeps reps comparable.
        SocialTrustPlugin plugin(
            std::make_unique<st::reputation::EbayReputation>(n), w.graph,
            w.profiles, cfg);
        auto start = std::chrono::steady_clock::now();
        plugin.update(w.ratings);
        auto stop = std::chrono::steady_clock::now();
        double ms =
            std::chrono::duration<double, std::milli>(stop - start).count();
        if (rep == 0 || ms < best_ms) best_ms = ms;
        report = plugin.last_report();
        pairs = report.pairs_total;
      }
      Row row;
      row.nodes = n;
      row.pairs = pairs;
      row.threads = threads;
      row.wall_ms = best_ms;
      if (threads == thread_counts.front()) {
        serial_ms = best_ms;
        serial_report = report;
      }
      row.speedup = best_ms > 0.0 ? serial_ms / best_ms : 1.0;
      row.identical = reports_match(serial_report, report);
      row.informational = threads > hardware_threads;
      rows.push_back(row);
    }
  }

  st::util::Table table({"nodes", "pairs", "threads", "wall ms", "speedup",
                         "timing", "identical"});
  for (const Row& r : rows) {
    table.add_row({std::to_string(r.nodes), std::to_string(r.pairs),
                   std::to_string(r.threads), st::util::fmt(r.wall_ms, 2),
                   st::util::fmt(r.speedup, 2),
                   r.informational ? "informational" : "signal",
                   r.identical ? "yes" : "NO (BUG)"});
  }
  std::cout << table.to_string() << "\n";

  bool all_identical = true;
  for (const Row& r : rows) all_identical = all_identical && r.identical;
  if (!all_identical) {
    std::cout << "DETERMINISM VIOLATION: reports differ across thread "
                 "counts\n";
  }

  // --obs: enabled-vs-disabled overhead, with a bit-identity cross-check.
  std::vector<ObsRow> obs_rows;
  bool obs_identical = true;
  const std::string& obs_out = common.obs_out;
  if (common.obs) {
    std::cout << "--- observability overhead (off vs on; min of " << reps
              << " reps) ---\n";
    for (std::size_t n : node_counts) {
      st::stats::Rng rng(seed);
      Workload w = make_workload(n, rng);
      for (std::size_t threads : thread_counts) {
        ObsRun off = run_with_obs_state(w, n, threads, reps,
                                        /*enabled=*/false, "");
        ObsRun on = run_with_obs_state(w, n, threads, reps,
                                       /*enabled=*/true, obs_out);
        ObsRow row;
        row.nodes = n;
        row.threads = threads;
        row.off_ms = off.best_ms;
        row.on_ms = on.best_ms;
        row.overhead_pct = off.best_ms > 0.0
                               ? (on.best_ms - off.best_ms) / off.best_ms *
                                     100.0
                               : 0.0;
        row.identical = obs_runs_identical(off, on);
        obs_identical = obs_identical && row.identical;
        obs_rows.push_back(row);
      }
    }
    st::obs::Obs::instance().configure({});  // leave the process clean

    st::util::Table obs_table({"nodes", "threads", "obs off ms", "obs on ms",
                               "overhead", "bit-identical"});
    for (const ObsRow& r : obs_rows) {
      obs_table.add_row({std::to_string(r.nodes), std::to_string(r.threads),
                         st::util::fmt(r.off_ms, 2),
                         st::util::fmt(r.on_ms, 2),
                         st::util::fmt(r.overhead_pct, 1) + "%",
                         r.identical ? "yes" : "NO (BUG)"});
    }
    std::cout << obs_table.to_string() << "\n";
    if (!obs_out.empty()) {
      std::cout << "(obs events: " << obs_out << ")\n";
    }
    if (!obs_identical) {
      std::cout << "DETERMINISM VIOLATION: instrumentation changed the "
                   "adjusted ratings / flagged set / reputations\n";
    }
  }

  // --dirty: full-walk vs dirty-pair scheduler across warm intervals.
  std::vector<DirtyRow> dirty_rows;
  bool dirty_identical = true;
  const std::string dirty_json = args.get_or("dirty-json", "");
  const std::size_t dirty_intervals = 1 +  // cold interval
      static_cast<std::size_t>(args.get_int("dirty-intervals", 4));
  if (args.has("dirty") || !dirty_json.empty()) {
    std::cout << "--- dirty-pair scheduler (cold + "
              << dirty_intervals - 1
              << " warm intervals; <10% pair churn; threads=1) ---\n";
    for (std::size_t n : node_counts) {
      DirtyRun full = run_dirty_schedule(
          n, seed, st::core::UpdateSchedule::kFullWalk, dirty_intervals);
      DirtyRun dirty = run_dirty_schedule(
          n, seed, st::core::UpdateSchedule::kDirtyPairs, dirty_intervals);

      DirtyRow row;
      row.nodes = n;
      row.pairs = full.pairs;
      row.cold_ms = full.interval_ms.front();
      row.full_warm_ms = full.interval_ms.back();
      row.dirty_warm_ms = dirty.interval_ms.back();
      for (std::size_t t = 1; t < dirty_intervals; ++t) {
        row.full_warm_ms = std::min(row.full_warm_ms, full.interval_ms[t]);
        row.dirty_warm_ms = std::min(row.dirty_warm_ms, dirty.interval_ms[t]);
      }
      row.speedup = row.dirty_warm_ms > 0.0
                        ? row.full_warm_ms / row.dirty_warm_ms
                        : 0.0;
      row.pairs_dirty = dirty.last_pairs_dirty;
      row.pairs_carried = dirty.last_pairs_carried;
      for (std::size_t t = 0; t < dirty_intervals; ++t) {
        row.identical =
            row.identical && reports_match(full.reports[t], dirty.reports[t]);
      }
      dirty_identical = dirty_identical && row.identical;
      dirty_rows.push_back(row);
    }

    st::util::Table dirty_table({"nodes", "pairs", "cold ms", "full warm ms",
                                 "dirty warm ms", "speedup", "dirty",
                                 "carried", "identical"});
    for (const DirtyRow& r : dirty_rows) {
      dirty_table.add_row(
          {std::to_string(r.nodes), std::to_string(r.pairs),
           st::util::fmt(r.cold_ms, 2), st::util::fmt(r.full_warm_ms, 2),
           st::util::fmt(r.dirty_warm_ms, 2), st::util::fmt(r.speedup, 2),
           std::to_string(r.pairs_dirty), std::to_string(r.pairs_carried),
           r.identical ? "yes" : "NO (BUG)"});
    }
    std::cout << dirty_table.to_string() << "\n";
    if (!dirty_identical) {
      std::cout << "DETERMINISM VIOLATION: dirty-pair scheduler diverged "
                   "from the full walk\n";
    }

    if (!dirty_json.empty()) {
      std::ofstream out(dirty_json);
      if (!out) {
        std::cerr << "cannot open " << dirty_json << " for writing\n";
        return 2;
      }
      out << "{\n  \"bench\": \"bench_parallel_update --dirty\",\n"
          << "  \"seed\": " << seed << ",\n"
          << "  \"warm_intervals\": " << dirty_intervals - 1 << ",\n"
          << "  \"hardware_threads\": " << hardware_threads << ",\n"
          << "  \"churn\": \"per warm interval: n/50 nodes record a fresh "
             "interaction, n/500 nodes toggle a relationship type on an "
             "existing edge (adjacency unchanged)\",\n"
          << "  \"reports_identical_full_vs_dirty\": "
          << (dirty_identical ? "true" : "false") << ",\n  \"results\": [\n";
      for (std::size_t i = 0; i < dirty_rows.size(); ++i) {
        const DirtyRow& r = dirty_rows[i];
        out << "    {\"nodes\": " << r.nodes << ", \"pairs\": " << r.pairs
            << ", \"cold_ms\": " << st::util::fmt(r.cold_ms, 3)
            << ", \"full_warm_ms\": " << st::util::fmt(r.full_warm_ms, 3)
            << ", \"dirty_warm_ms\": " << st::util::fmt(r.dirty_warm_ms, 3)
            << ", \"speedup\": " << st::util::fmt(r.speedup, 3)
            << ", \"pairs_dirty\": " << r.pairs_dirty
            << ", \"pairs_carried\": " << r.pairs_carried << "}"
            << (i + 1 < dirty_rows.size() ? "," : "") << "\n";
      }
      out << "  ]\n}\n";
      std::cout << "(dirty json: " << dirty_json << ")\n";
    }
  }

  // --shards: the gossip-sharded aggregation pipeline (DESIGN.md §16)
  // under the synchronous exchange, bit-compared against centralized.
  std::vector<ShardRow> shard_rows;
  bool sharded_identical = true;
  if (const std::string shard_list = args.get_or("shards", "");
      !shard_list.empty()) {
    const auto shard_counts = st::bench::parse_size_list(shard_list);
    const std::uint64_t shard_seed =
        args.get_u64("shard-seed", SocialTrustConfig{}.shard_seed);
    const std::size_t threads = thread_counts.back();
    std::cout << "--- sharded aggregation (synchronous exchange; threads="
              << threads << "; shard seed " << shard_seed << "; min of "
              << reps << " reps) ---\n";
    for (std::size_t n : node_counts) {
      st::stats::Rng rng(seed);
      Workload w = make_workload(n, rng);
      SocialTrustConfig central_cfg;
      central_cfg.threads = threads;
      const ObsRun central =
          run_aggregation(w, n, central_cfg, reps, nullptr);
      for (std::size_t shards : shard_counts) {
        SocialTrustConfig cfg = central_cfg;
        cfg.aggregation = st::core::AggregationMode::kSharded;
        cfg.exchange = st::core::ExchangeSchedule::kSynchronous;
        cfg.shards = shards;
        cfg.shard_seed = shard_seed;
        st::shard::ShardStats stats;
        const ObsRun sharded = run_aggregation(w, n, cfg, reps, &stats);
        ShardRow row;
        row.nodes = n;
        row.shards = shards;
        row.pairs = sharded.report.pairs_total;
        row.central_ms = central.best_ms;
        row.sharded_ms = sharded.best_ms;
        row.cut_edges = stats.boundary_edges;
        row.boundary_bytes = stats.exchange.boundary_bytes;
        row.rounds = stats.exchange.rounds;
        row.identical = obs_runs_identical(central, sharded);
        sharded_identical = sharded_identical && row.identical;
        shard_rows.push_back(row);
      }
    }
    st::util::Table shard_table({"nodes", "shards", "pairs", "central ms",
                                 "sharded ms", "cut edges", "boundary KiB",
                                 "rounds", "bit-identical"});
    for (const ShardRow& r : shard_rows) {
      shard_table.add_row(
          {std::to_string(r.nodes), std::to_string(r.shards),
           std::to_string(r.pairs), st::util::fmt(r.central_ms, 2),
           st::util::fmt(r.sharded_ms, 2), std::to_string(r.cut_edges),
           st::util::fmt(static_cast<double>(r.boundary_bytes) / 1024.0, 1),
           std::to_string(r.rounds), r.identical ? "yes" : "NO (BUG)"});
    }
    std::cout << shard_table.to_string() << "\n";
    if (!sharded_identical) {
      std::cout << "DETERMINISM VIOLATION: sharded aggregation diverged "
                   "from the centralized pipeline\n";
    }
  }

  if (auto json_path = args.get("json"); json_path && !json_path->empty()) {
    std::ofstream out(*json_path);
    if (!out) {
      std::cerr << "cannot open " << *json_path << " for writing\n";
      return 2;
    }
    out << "{\n  \"bench\": \"bench_parallel_update\",\n"
        << "  \"seed\": " << seed << ",\n"
        << "  \"reps\": " << reps << ",\n"
        << "  \"hardware_threads\": " << hardware_threads
        << ",\n  \"reports_identical_across_thread_counts\": "
        << (all_identical ? "true" : "false") << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      out << "    {\"nodes\": " << r.nodes << ", \"pairs\": " << r.pairs
          << ", \"threads\": " << r.threads << ", \"wall_ms\": "
          << st::util::fmt(r.wall_ms, 3) << ", \"speedup\": "
          << st::util::fmt(r.speedup, 3) << ", \"informational\": "
          << (r.informational ? "true" : "false") << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]";
    if (!obs_rows.empty()) {
      out << ",\n  \"obs_identical_on_vs_off\": "
          << (obs_identical ? "true" : "false") << ",\n  \"obs_overhead\": [\n";
      for (std::size_t i = 0; i < obs_rows.size(); ++i) {
        const ObsRow& r = obs_rows[i];
        out << "    {\"nodes\": " << r.nodes << ", \"threads\": " << r.threads
            << ", \"off_ms\": " << st::util::fmt(r.off_ms, 3)
            << ", \"on_ms\": " << st::util::fmt(r.on_ms, 3)
            << ", \"overhead_pct\": " << st::util::fmt(r.overhead_pct, 2)
            << "}" << (i + 1 < obs_rows.size() ? "," : "") << "\n";
      }
      out << "  ]";
    }
    out << "\n}\n";
    std::cout << "(json: " << *json_path << ")\n";
  }
  return all_identical && obs_identical && dirty_identical &&
                 sharded_identical
             ? 0
             : 1;
}
