// Fig. 3: impact of buyer-seller social distance on rating behaviour in
// the synthetic Overstock trace.
//   (a) average rating value per distance (1-4 hops) — decreasing;
//   (b) average number of ratings per (buyer, seller) pair — decreasing.
// These two decays are observations O3/O4, the basis of suspicious
// behaviours B1/B2.

#include "common.hpp"
#include "trace/analysis.hpp"
#include "trace/marketplace.hpp"

int main(int argc, char** argv) {
  st::bench::Context ctx(argc, argv, "fig3_social_distance");

  st::trace::TraceConfig config;
  config.user_count =
      static_cast<std::size_t>(ctx.args().get_int("users", 20000));
  config.transaction_count = static_cast<std::size_t>(
      ctx.args().get_int("transactions", ctx.args().has("quick") ? 20000
                                                                 : 100000));
  st::stats::Rng rng(ctx.seed());
  auto trace = st::trace::generate_trace(config, rng);
  auto analysis = st::trace::analyze_trace(trace);

  st::util::Table table({"social distance (hops)", "avg rating value",
                         "avg ratings per pair", "transactions"});
  std::vector<std::pair<std::string, double>> value_bars, freq_bars;
  for (const auto& row : analysis.by_distance) {
    std::string label = row.distance == 4 ? ">3" : std::to_string(row.distance);
    table.add_row({label, st::util::fmt(row.average_rating, 3),
                   st::util::fmt(row.average_frequency, 3),
                   std::to_string(row.transactions)});
    value_bars.emplace_back("d=" + label + " value", row.average_rating);
    freq_bars.emplace_back("d=" + label + " freq ", row.average_frequency);
  }
  ctx.heading("Fig3(a): average rating value by distance");
  std::cout << st::util::bar_chart(value_bars, 40) << "\n";
  ctx.heading("Fig3(b): average rating frequency by distance");
  std::cout << st::util::bar_chart(freq_bars, 40) << "\n";
  ctx.emit("by_distance", table);
  return 0;
}
