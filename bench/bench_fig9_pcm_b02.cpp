// Fig. 9: PCM with B = 0.2. Paper shape: EigenTrust's reputation weighting
// already keeps the low-QoS colluders down; eBay leaves them slightly
// higher; SocialTrust drives both to ~0.
#include "common.hpp"

int main(int argc, char** argv) {
  st::bench::Context ctx(argc, argv, "fig9_pcm_b02");
  st::bench::collusion_figure(ctx, "Fig9", "PCM", {}, 0.2,
                              {"EigenTrust", "eBay", "EigenTrust+SocialTrust",
                               "eBay+SocialTrust"});
  return 0;
}
