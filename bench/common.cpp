#include "common.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace st::bench {

std::vector<std::size_t> parse_size_list(const std::string& csv) {
  std::vector<std::size_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    char* end = nullptr;
    const auto v = std::strtoull(item.c_str(), &end, 10);
    if (end != item.c_str() && v > 0) {
      out.push_back(static_cast<std::size_t>(v));
    }
  }
  return out;
}

CommonFlags parse_common_flags(const util::CliArgs& args,
                               const char* default_threads,
                               const char* quick_threads,
                               std::size_t default_reps,
                               std::size_t quick_reps) {
  CommonFlags flags;
  flags.quick = args.has("quick");
  flags.seed = args.get_u64("seed", 42);
  const char* threads_default =
      flags.quick && quick_threads ? quick_threads : default_threads;
  flags.threads = parse_size_list(args.get_or("threads", threads_default));
  if (flags.threads.empty()) flags.threads.push_back(1);
  flags.reps = static_cast<std::size_t>(
      args.get_int("reps", static_cast<std::int64_t>(
                               flags.quick ? quick_reps : default_reps)));
  flags.obs_out = args.get_or("obs-out", "");
  flags.obs = args.has("obs") || !flags.obs_out.empty();
  return flags;
}

Context::Context(int argc, char** argv, std::string bench_name)
    : args_(argc, argv), bench_name_(std::move(bench_name)) {
  const CommonFlags flags = parse_common_flags(args_);
  seed_ = flags.seed;
  bool quick = flags.quick;
  runs_ = static_cast<std::size_t>(args_.get_int("runs", quick ? 2 : 5));
  cycles_ = static_cast<std::size_t>(args_.get_int("cycles", quick ? 20 : 50));
  threads_ = flags.threads.front();
  auto csv = args_.get("csv");
  if (csv && !csv->empty()) csv_dir_ = *csv;
  auto obs = sim::apply_observability_flags(args_);
  std::cout << "=== " << bench_name_ << " ===\n"
            << "(seed " << seed_ << ", " << runs_ << " runs, " << cycles_
            << " simulation cycles; mean ± 95% CI)\n";
  if (obs.enabled) {
    std::cout << "(observability on"
              << (obs.jsonl_path.empty() ? ""
                                         : ", events -> " + obs.jsonl_path)
              << ")\n";
  }
  std::cout << "\n";
}

sim::ExperimentConfig Context::paper_config(double colluder_b) const {
  sim::ExperimentConfig config;   // SimConfig defaults = Section 5.1
  config.sim.colluder_authentic = colluder_b;
  config.sim.simulation_cycles = cycles_;
  config.runs = runs_;
  config.base_seed = seed_;
  return config;
}

void Context::emit(const std::string& table_name,
                   const util::Table& table) const {
  std::cout << table.to_string() << "\n";
  if (csv_dir_) {
    auto path = util::write_csv(table, *csv_dir_,
                                bench_name_ + "_" + table_name + ".csv");
    std::cout << "(csv: " << path.string() << ")\n\n";
  }
}

void Context::emit_csv(const std::string& table_name,
                       const util::Table& table) const {
  if (!csv_dir_) return;
  auto path = util::write_csv(table, *csv_dir_,
                              bench_name_ + "_" + table_name + ".csv");
  std::cout << "(csv: " << path.string() << ")\n";
}

void Context::heading(const std::string& text) const {
  std::cout << "--- " << text << " ---\n";
}

sim::SystemFactory system_by_name(const std::string& name,
                                  std::size_t threads) {
  if (name == "eBay") return sim::make_ebay_factory();
  if (name == "EigenTrust") return sim::make_paper_eigentrust_factory();
  if (name == "EigenTrust(Kamvar)") return sim::make_eigentrust_factory();
  if (name == "eBay+SocialTrust")
    return sim::make_socialtrust_factory(sim::make_ebay_factory(),
                                         core::SocialTrustConfig{}, threads);
  if (name == "EigenTrust+SocialTrust")
    return sim::make_socialtrust_factory(sim::make_paper_eigentrust_factory(),
                                         core::SocialTrustConfig{}, threads);
  throw std::invalid_argument("unknown system: " + name);
}

sim::StrategyFactory strategy_by_name(const std::string& model,
                                      collusion::CollusionOptions options) {
  if (model.empty() || model == "none") return {};
  if (model == "PCM") {
    return [options] {
      return std::make_unique<collusion::PairwiseCollusion>(options);
    };
  }
  if (model == "MCM") {
    return [options] {
      return std::make_unique<collusion::MultiNodeCollusion>(options);
    };
  }
  if (model == "MMM") {
    return [options] {
      return std::make_unique<collusion::MutualMultiNodeCollusion>(options);
    };
  }
  throw std::invalid_argument("unknown collusion model: " + model);
}

util::Table summary_table(const sim::AggregateResult& agg) {
  stats::Accumulator boosted, boosting, norm_median;
  for (const auto& run : agg.per_run) {
    boosted.add(run.boosted_final_mean);
    boosting.add(run.boosting_final_mean);
    norm_median.add(run.normal_final_median);
  }
  util::Table table({"group", "mean reputation", "95% CI"});
  auto row = [&](const char* label, const stats::Accumulator& acc) {
    table.add_row({label, util::fmt(acc.mean(), 6),
                   util::fmt(stats::confidence_interval95(acc), 6)});
  };
  row("pretrusted", agg.pretrusted_mean);
  row("colluders (all)", agg.colluder_mean);
  row("colluders (boosted)", boosted);
  row("colluders (boosting)", boosting);
  row("normal (mean)", agg.normal_mean);
  row("normal (median node)", norm_median);
  table.add_row({"% requests to colluders",
                 util::fmt(agg.colluder_share.mean() * 100.0, 2) + "%",
                 util::fmt(
                     stats::confidence_interval95(agg.colluder_share) * 100.0,
                     2)});
  return table;
}

util::Table distribution_table(const sim::AggregateResult& agg,
                               const sim::SimConfig& cfg) {
  util::Table table({"node", "type", "mean reputation", "95% CI"});
  for (std::size_t v = 0; v < cfg.node_count; ++v) {
    const char* type = v < cfg.pretrusted_count ? "pretrusted"
                       : v < cfg.pretrusted_count + cfg.colluder_count
                           ? "colluder"
                           : "normal";
    table.add_row({std::to_string(v + 1), type,
                   util::fmt(agg.mean_final_reputation[v], 6),
                   util::fmt(agg.ci_final_reputation[v], 6)});
  }
  return table;
}

void print_distribution(const std::string& caption,
                        const sim::AggregateResult& agg,
                        const sim::SimConfig& cfg) {
  // The paper plots reputation vs node id (ids 1-9 pretrusted, 10-39
  // colluders). A 200-bar terminal chart is unreadable, so pretrusted and
  // colluders are shown in small id buckets and normal nodes in coarser
  // ones — the shape (which population is high) stays visible.
  std::vector<std::pair<std::string, double>> bars;
  auto add_group = [&](std::size_t lo, std::size_t hi, const char* tag,
                       std::size_t buckets) {
    std::vector<double> slice(agg.mean_final_reputation.begin() +
                                  static_cast<long>(lo),
                              agg.mean_final_reputation.begin() +
                                  static_cast<long>(hi));
    auto grouped = util::bucketize(slice, buckets);
    for (auto& [label, value] : grouped) {
      // Relabel with absolute 1-based node ids.
      std::size_t a = lo + 1 +
                      std::stoul(label.substr(1, label.find('-') - 1)) - 1;
      std::size_t b = lo + std::stoul(label.substr(label.find('-') + 1));
      bars.emplace_back(std::string(tag) + " " + std::to_string(a) + "-" +
                            std::to_string(b),
                        value);
    }
  };
  std::size_t p = cfg.pretrusted_count;
  std::size_t c = cfg.colluder_count;
  add_group(0, p, "pre ", 3);
  add_group(p, p + c, "coll", 6);
  add_group(p + c, cfg.node_count, "norm", 8);
  std::cout << caption << "\n" << util::bar_chart(bars, 56) << "\n";
}

sim::AggregateResult run_panel(const Context& ctx, const std::string& panel,
                               const std::string& system,
                               const std::string& model,
                               collusion::CollusionOptions options,
                               double colluder_b) {
  auto config = ctx.paper_config(colluder_b);
  auto agg = run_experiment(config, system_by_name(system, ctx.threads()),
                            strategy_by_name(model, options));
  print_distribution("[" + panel + "] " + system +
                         (model.empty() ? "" : " under " + model) +
                         " (B=" + util::fmt(colluder_b, 1) + ")",
                     agg, config.sim);
  return agg;
}

void collusion_figure(Context& ctx, const std::string& figure,
                      const std::string& model,
                      collusion::CollusionOptions options, double colluder_b,
                      const std::vector<std::string>& systems) {
  util::Table comparison({"system", "pretrusted", "colluders", "normal",
                          "% requests to colluders"});
  char panel = 'a';
  for (const std::string& system : systems) {
    ctx.heading(figure + "(" + std::string(1, panel) + "): " + system);
    auto agg = run_panel(ctx, figure + "(" + std::string(1, panel) + ")",
                         system, model, options, colluder_b);
    ctx.emit(std::string(1, panel) + "_summary", summary_table(agg));
    ctx.emit_csv(std::string(1, panel) + "_distribution",
                 distribution_table(agg, ctx.paper_config(colluder_b).sim));
    comparison.add_row(
        {system, util::fmt(agg.pretrusted_mean.mean(), 6),
         util::fmt(agg.colluder_mean.mean(), 6),
         util::fmt(agg.normal_mean.mean(), 6),
         util::fmt(agg.colluder_share.mean() * 100.0, 2) + "%"});
    ++panel;
  }
  ctx.heading(figure + ": cross-system comparison");
  ctx.emit("comparison", comparison);
}

}  // namespace st::bench
