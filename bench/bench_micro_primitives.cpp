// Micro-benchmarks (google-benchmark) for the core primitives: social
// closeness (adjacent / FOF / bottleneck; Eq. 2 vs Eq. 10), interest
// similarity (Eq. 7 / behaviour-weighted / literal Eq. 11), the Gaussian
// filter, reputation-system updates, and one full SocialTrust plugin
// interval at the paper's scale.
//
// Accepts the shared observability flags (--obs / --obs-out <path.jsonl>)
// on top of google-benchmark's own: with --obs the plugin-interval
// benchmark exercises the instrumented path, which is how the per-site
// cost of the obs layer shows up in BM_SocialTrustInterval.

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "core/closeness.hpp"
#include "obs/obs.hpp"
#include "core/gaussian_filter.hpp"
#include "core/similarity.hpp"
#include "core/socialtrust.hpp"
#include "graph/generators.hpp"
#include "reputation/ebay.hpp"
#include "reputation/eigentrust.hpp"
#include "reputation/paper_eigentrust.hpp"
#include "stats/rng.hpp"

namespace {

using namespace st;  // NOLINT(google-build-using-namespace): bench file, brevity wins

constexpr std::size_t kNodes = 200;

graph::SocialGraph& bench_graph() {
  static graph::SocialGraph g = [] {
    stats::Rng rng(1);
    graph::SocialGraph graph = graph::erdos_renyi(kNodes, 0.05, rng);
    for (graph::NodeId a = 0; a < kNodes; ++a) {
      for (int k = 0; k < 30; ++k) {
        graph.record_interaction(a, static_cast<graph::NodeId>(
                                        rng.index(kNodes)));
      }
    }
    return graph;
  }();
  return g;
}

core::InterestProfiles& bench_profiles() {
  static core::InterestProfiles profiles = [] {
    stats::Rng rng(2);
    core::InterestProfiles p(kNodes, 20);
    for (graph::NodeId v = 0; v < kNodes; ++v) {
      auto picks = rng.sample_without_replacement(20, 1 + rng.index(9));
      std::vector<reputation::InterestId> set;
      for (std::size_t c : picks)
        set.push_back(static_cast<reputation::InterestId>(c));
      p.set_interests(v, set);
      for (auto c : set) p.record_request(v, c, rng.uniform(1.0, 20.0));
    }
    return p;
  }();
  return profiles;
}

std::vector<reputation::Rating> bench_ratings(std::size_t count,
                                              std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<reputation::Rating> ratings;
  ratings.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    reputation::Rating r;
    r.rater = static_cast<graph::NodeId>(rng.index(kNodes));
    r.ratee = static_cast<graph::NodeId>(rng.index(kNodes));
    r.value = rng.bernoulli(0.8) ? 1.0 : -1.0;
    ratings.push_back(r);
  }
  return ratings;
}

void BM_ClosenessAdjacent(benchmark::State& state) {
  core::ClosenessModel model(state.range(0) != 0);
  auto& g = bench_graph();
  stats::Rng rng(3);
  for (auto _ : state) {
    auto a = static_cast<graph::NodeId>(rng.index(kNodes));
    for (graph::NodeId b : g.neighbors(a)) {
      benchmark::DoNotOptimize(model.adjacent_closeness(g, a, b));
    }
  }
}
BENCHMARK(BM_ClosenessAdjacent)->Arg(0)->Arg(1);  // Eq. 2 vs Eq. 10

void BM_ClosenessFull(benchmark::State& state) {
  core::ClosenessModel model(true);
  auto& g = bench_graph();
  stats::Rng rng(4);
  for (auto _ : state) {
    auto a = static_cast<graph::NodeId>(rng.index(kNodes));
    auto b = static_cast<graph::NodeId>(rng.index(kNodes));
    benchmark::DoNotOptimize(model.closeness(g, a, b));
  }
}
BENCHMARK(BM_ClosenessFull);

void BM_SimilarityEq7(benchmark::State& state) {
  auto& p = bench_profiles();
  stats::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        p.similarity(static_cast<graph::NodeId>(rng.index(kNodes)),
                     static_cast<graph::NodeId>(rng.index(kNodes))));
  }
}
BENCHMARK(BM_SimilarityEq7);

void BM_SimilarityWeighted(benchmark::State& state) {
  auto& p = bench_profiles();
  stats::Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        p.weighted_similarity(static_cast<graph::NodeId>(rng.index(kNodes)),
                              static_cast<graph::NodeId>(rng.index(kNodes))));
  }
}
BENCHMARK(BM_SimilarityWeighted);

void BM_SimilarityEq11(benchmark::State& state) {
  auto& p = bench_profiles();
  stats::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.weighted_similarity_eq11(
        static_cast<graph::NodeId>(rng.index(kNodes)),
        static_cast<graph::NodeId>(rng.index(kNodes))));
  }
}
BENCHMARK(BM_SimilarityEq11);

void BM_GaussianWeight(benchmark::State& state) {
  core::CoefficientStats stats;
  stats.mean = 0.2;
  stats.min = 0.0;
  stats.max = 1.0;
  stats.stddev = 0.15;
  stats::Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::gaussian_weight2(
        rng.uniform(), stats, rng.uniform(), stats, 1.0));
  }
}
BENCHMARK(BM_GaussianWeight);

void BM_PaperEigenTrustUpdate(benchmark::State& state) {
  auto ratings = bench_ratings(static_cast<std::size_t>(state.range(0)), 9);
  for (auto _ : state) {
    reputation::PaperEigenTrust system(kNodes, {0, 1, 2});
    system.update(ratings);
    benchmark::DoNotOptimize(system.reputations());
  }
}
BENCHMARK(BM_PaperEigenTrustUpdate)->Arg(5000)->Arg(20000);

void BM_KamvarEigenTrustUpdate(benchmark::State& state) {
  auto ratings = bench_ratings(static_cast<std::size_t>(state.range(0)), 10);
  for (auto _ : state) {
    reputation::EigenTrust system(kNodes, {0, 1, 2});
    system.update(ratings);
    benchmark::DoNotOptimize(system.reputations());
  }
}
BENCHMARK(BM_KamvarEigenTrustUpdate)->Arg(5000)->Arg(20000);

void BM_EbayUpdate(benchmark::State& state) {
  auto ratings = bench_ratings(static_cast<std::size_t>(state.range(0)), 11);
  for (auto _ : state) {
    reputation::EbayReputation system(kNodes);
    system.update(ratings);
    benchmark::DoNotOptimize(system.reputations());
  }
}
BENCHMARK(BM_EbayUpdate)->Arg(5000)->Arg(20000);

void BM_SocialTrustInterval(benchmark::State& state) {
  auto ratings = bench_ratings(static_cast<std::size_t>(state.range(0)), 12);
  for (auto _ : state) {
    core::SocialTrustPlugin plugin(
        std::make_unique<reputation::PaperEigenTrust>(
            kNodes, std::vector<graph::NodeId>{0, 1, 2}),
        bench_graph(), bench_profiles(), core::SocialTrustConfig{});
    plugin.update(ratings);
    benchmark::DoNotOptimize(plugin.reputations());
  }
}
BENCHMARK(BM_SocialTrustInterval)->Arg(5000)->Arg(20000);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): the shared observability flags
// are peeled off before google-benchmark parses the command line (it
// rejects flags it does not know), and the obs layer is configured from
// them.
int main(int argc, char** argv) {
  st::obs::StObsConfig obs_cfg;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--obs") {
      obs_cfg.enabled = true;
    } else if (arg == "--obs-out" && i + 1 < argc) {
      obs_cfg.enabled = true;
      obs_cfg.jsonl_path = argv[++i];
    } else if (arg.rfind("--obs-out=", 0) == 0) {
      obs_cfg.enabled = true;
      obs_cfg.jsonl_path = std::string(arg.substr(std::strlen("--obs-out=")));
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  st::obs::Obs::instance().configure(obs_cfg);

  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
