// Fig. 1: effect of reputation on transactions in the (synthetic)
// Overstock trace.
//   (a) business-network size vs reputation — strong linear coupling
//       (the crawl's correlation statistic C = r^2 was 0.996);
//   (b) number of transactions received vs reputation — proportional.
//
// The crawl itself is proprietary; the generator reproduces the
// behavioural mechanisms (reputation-guided, socially-biased seller
// choice) and this bench recomputes the paper's statistics. See DESIGN.md.

#include "common.hpp"
#include "stats/correlation.hpp"
#include "trace/analysis.hpp"
#include "trace/marketplace.hpp"

int main(int argc, char** argv) {
  st::bench::Context ctx(argc, argv, "fig1_trace_reputation");

  st::trace::TraceConfig config;
  config.user_count =
      static_cast<std::size_t>(ctx.args().get_int("users", 20000));
  config.transaction_count = static_cast<std::size_t>(
      ctx.args().get_int("transactions", ctx.args().has("quick") ? 20000
                                                                 : 100000));
  st::stats::Rng rng(ctx.seed());
  ctx.heading("generating marketplace trace (" +
              std::to_string(config.user_count) + " users, " +
              std::to_string(config.transaction_count) + " transactions)");
  auto trace = st::trace::generate_trace(config, rng);
  auto analysis = st::trace::analyze_trace(trace);

  st::util::Table headline({"statistic", "paper (crawl)", "measured"});
  headline.add_row({"C(reputation, business-network size)", "0.996",
                    st::util::fmt(analysis.reputation_business_correlation,
                                  3)});
  headline.add_row({"C(reputation, transactions received)",
                    "high (proportional)",
                    st::util::fmt(
                        analysis.reputation_transactions_correlation, 3)});
  ctx.emit("correlations", headline);

  // Binned scatter for the figure shape: mean business-network size and
  // transactions per reputation decile.
  std::vector<std::pair<double, double>> biz, tx;
  for (std::size_t u = 0; u < config.user_count; ++u) {
    biz.emplace_back(trace.reputation[u], trace.business_network_size[u]);
    tx.emplace_back(trace.reputation[u], trace.transactions_as_seller[u]);
  }
  auto binned = [&](std::vector<std::pair<double, double>>& points,
                    const char* value_name) {
    std::sort(points.begin(), points.end());
    st::util::Table table({"reputation decile", "mean reputation",
                           std::string("mean ") + value_name});
    std::vector<st::util::SeriesPoint> series;
    for (int d = 0; d < 10; ++d) {
      std::size_t lo = points.size() * static_cast<std::size_t>(d) / 10;
      std::size_t hi = points.size() * static_cast<std::size_t>(d + 1) / 10;
      double rep = 0.0, value = 0.0;
      for (std::size_t i = lo; i < hi; ++i) {
        rep += points[i].first;
        value += points[i].second;
      }
      auto n = static_cast<double>(hi - lo);
      table.add_row({std::to_string(d + 1), st::util::fmt(rep / n, 2),
                     st::util::fmt(value / n, 2)});
      series.push_back({rep / n, value / n});
    }
    std::cout << st::util::line_chart(series, 60, 12);
    return table;
  };
  ctx.heading("Fig1(a): business-network size vs reputation");
  ctx.emit("a_business_network", binned(biz, "business-network size"));
  ctx.heading("Fig1(b): transactions received vs reputation");
  ctx.emit("b_transactions", binned(tx, "transactions received"));
  return 0;
}
