// Fig. 15: MCM and MMM with B = 0.2 and 7 compromised pretrusted nodes.
// Paper shape: compromised pretrusted raters (weight 0.5) re-enable both
// attacks under plain EigenTrust; EigenTrust+SocialTrust pushes colluders
// and the compromised pretrusted nodes back to ~0.
#include "common.hpp"

int main(int argc, char** argv) {
  st::bench::Context ctx(argc, argv, "fig15_mcm_mmm_compromised");
  st::collusion::CollusionOptions options;
  options.compromised_pretrusted = 7;
  st::bench::collusion_figure(ctx, "Fig15-MCM", "MCM", options, 0.2,
                              {"EigenTrust", "EigenTrust+SocialTrust"});
  st::bench::collusion_figure(ctx, "Fig15-MMM", "MMM", options, 0.2,
                              {"EigenTrust", "EigenTrust+SocialTrust"});
  return 0;
}
