// Ablation: which parts of SocialTrust do the work?
//
// Sweeps the design choices DESIGN.md calls out, under PCM/MMM at B=0.6:
//   * adjustment components — closeness-only (Eq. 6), similarity-only
//     (Eq. 8), combined (Eq. 9, paper default);
//   * Gaussian baseline — per-rater leave-one-out, system-wide empirical,
//     hybrid (default);
//   * Gaussian width — |max-min| (Eq. 6 literal) vs stddev (default);
//   * detector gating on/off;
//   * hardened Eq. (10)/behaviour-weighted similarity vs the static
//     Eq. (2)/Eq. (7) variants.
// Metric: mean colluder reputation (lower = stronger defence) and the
// request share leaked to colluders.

#include "common.hpp"

int main(int argc, char** argv) {
  st::bench::Context ctx(argc, argv, "ablation_components");

  struct Variant {
    std::string label;
    st::core::SocialTrustConfig config;
  };
  std::vector<Variant> variants;
  {
    st::core::SocialTrustConfig base;
    variants.push_back({"full SocialTrust (default)", base});
    auto v = base;
    v.components = st::core::AdjustmentComponents::kClosenessOnly;
    variants.push_back({"closeness only (Eq. 6)", v});
    v = base;
    v.components = st::core::AdjustmentComponents::kSimilarityOnly;
    variants.push_back({"similarity only (Eq. 8)", v});
    v = base;
    v.baseline = st::core::BaselineSource::kPerRater;
    variants.push_back({"per-rater baseline", v});
    v = base;
    v.baseline = st::core::BaselineSource::kSystemWide;
    variants.push_back({"system-wide baseline", v});
    v = base;
    v.width = st::core::GaussianWidth::kRange;
    variants.push_back({"width = |max-min| (literal Eq. 6)", v});
    v = base;
    v.gate_on_detector = false;
    variants.push_back({"no detector gate (adjust all)", v});
    v = base;
    v.weighted_relationships = false;
    v.weighted_interests = false;
    variants.push_back({"static info only (Eq. 2 / Eq. 7)", v});
  }

  for (const std::string& model : {std::string("PCM"), std::string("MMM")}) {
    ctx.heading("ablation under " + model + ", B=0.6");
    st::util::Table table({"variant", "colluder mean rep",
                           "normal mean rep", "% requests to colluders"});
    // Unprotected baseline for contrast.
    auto plain = run_experiment(ctx.paper_config(0.6),
                                st::bench::system_by_name("EigenTrust"),
                                st::bench::strategy_by_name(model, {}));
    table.add_row({"(no SocialTrust)",
                   st::util::fmt(plain.colluder_mean.mean(), 6),
                   st::util::fmt(plain.normal_mean.mean(), 6),
                   st::util::fmt(plain.colluder_share.mean() * 100.0, 2) +
                       "%"});
    for (const auto& variant : variants) {
      auto factory = st::sim::make_socialtrust_factory(
          st::sim::make_paper_eigentrust_factory(), variant.config);
      auto agg = run_experiment(ctx.paper_config(0.6), factory,
                                st::bench::strategy_by_name(model, {}));
      table.add_row({variant.label,
                     st::util::fmt(agg.colluder_mean.mean(), 6),
                     st::util::fmt(agg.normal_mean.mean(), 6),
                     st::util::fmt(agg.colluder_share.mean() * 100.0, 2) +
                         "%"});
    }
    ctx.emit(model, table);
  }
  return 0;
}
