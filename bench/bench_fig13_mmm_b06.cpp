// Fig. 13: multiple-and-mutual collusion (MMM), B = 0.6 — boosting nodes
// rate random boosted nodes 20x per query cycle, boosted nodes rate back
// 5x. Paper shape: both boosted and boosting reach high reputations
// (higher than under MCM); SocialTrust collapses them.
#include "common.hpp"

int main(int argc, char** argv) {
  st::bench::Context ctx(argc, argv, "fig13_mmm_b06");
  st::bench::collusion_figure(ctx, "Fig13", "MMM", {}, 0.6,
                              {"EigenTrust", "eBay", "EigenTrust+SocialTrust",
                               "eBay+SocialTrust"});
  return 0;
}
