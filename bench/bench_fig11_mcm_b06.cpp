// Fig. 11: multiple-node collusion (MCM), B = 0.6 — 7 boosted colluders
// receive high-frequency ratings from 23 boosting colluders with no
// back-rating. Paper shape: boosted nodes rise, boosting nodes stay low;
// SocialTrust suppresses both.
#include "common.hpp"

int main(int argc, char** argv) {
  st::bench::Context ctx(argc, argv, "fig11_mcm_b06");
  st::bench::collusion_figure(ctx, "Fig11", "MCM", {}, 0.6,
                              {"EigenTrust", "eBay", "EigenTrust+SocialTrust",
                               "eBay+SocialTrust"});
  return 0;
}
