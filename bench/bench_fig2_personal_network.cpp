// Fig. 2: personal (friendship) network size vs reputation in the
// synthetic Overstock trace.
//
// Paper shape: only a very weak linear relationship (crawl C = 0.092) — a
// low-reputed user may still have many friends, which is what gives
// colluders their pool of socially-close conspirators (inference I2).

#include <algorithm>

#include "common.hpp"
#include "trace/analysis.hpp"
#include "trace/marketplace.hpp"

int main(int argc, char** argv) {
  st::bench::Context ctx(argc, argv, "fig2_personal_network");

  st::trace::TraceConfig config;
  config.user_count =
      static_cast<std::size_t>(ctx.args().get_int("users", 20000));
  config.transaction_count = static_cast<std::size_t>(
      ctx.args().get_int("transactions", ctx.args().has("quick") ? 20000
                                                                 : 100000));
  st::stats::Rng rng(ctx.seed());
  auto trace = st::trace::generate_trace(config, rng);
  auto analysis = st::trace::analyze_trace(trace);

  st::util::Table headline({"statistic", "paper (crawl)", "measured"});
  headline.add_row({"C(reputation, personal-network size)", "0.092",
                    st::util::fmt(analysis.reputation_personal_correlation,
                                  3)});
  headline.add_row(
      {"C(reputation, business-network size) [contrast]", "0.996",
       st::util::fmt(analysis.reputation_business_correlation, 3)});
  ctx.emit("correlations", headline);

  // Per-reputation-decile mean degree: the flat profile is the figure.
  std::vector<std::pair<double, double>> points;
  for (std::size_t u = 0; u < config.user_count; ++u) {
    points.emplace_back(
        trace.reputation[u],
        static_cast<double>(trace.personal_network.degree(
            static_cast<st::graph::NodeId>(u))));
  }
  std::sort(points.begin(), points.end());
  st::util::Table table(
      {"reputation decile", "mean reputation", "mean friends"});
  std::vector<st::util::SeriesPoint> series;
  for (int d = 0; d < 10; ++d) {
    std::size_t lo = points.size() * static_cast<std::size_t>(d) / 10;
    std::size_t hi = points.size() * static_cast<std::size_t>(d + 1) / 10;
    double rep = 0.0, deg = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      rep += points[i].first;
      deg += points[i].second;
    }
    auto n = static_cast<double>(hi - lo);
    table.add_row({std::to_string(d + 1), st::util::fmt(rep / n, 2),
                   st::util::fmt(deg / n, 2)});
    series.push_back({rep / n, deg / n});
  }
  std::cout << st::util::line_chart(series, 60, 12);
  ctx.emit("degree_by_decile", table);
  return 0;
}
