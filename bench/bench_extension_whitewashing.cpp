// Extension experiment: whitewashing (identity reset) on top of pair-wise
// collusion — can colluders escape SocialTrust by shedding their crushed
// identities and rejoining fresh?
//
// Expected shape: no. A fresh identity has no earned reputation, so its
// partner's ratings carry no weight under the EigenTrust variant, and the
// re-established high-frequency concentration pattern is re-detected
// within one update interval. Whitewashing costs the attackers whatever
// standing they had without buying new amplification.

#include "collusion/whitewashing.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  st::bench::Context ctx(argc, argv, "extension_whitewashing");

  st::util::Table table({"system", "attack", "colluder mean rep",
                         "normal mean rep", "% requests to colluders"});
  for (const std::string& system :
       {std::string("EigenTrust"), std::string("EigenTrust+SocialTrust")}) {
    for (bool whitewash : {false, true}) {
      st::sim::StrategyFactory strategy;
      if (whitewash) {
        strategy = [] {
          return std::make_unique<st::collusion::WhitewashingCollusion>();
        };
      } else {
        strategy = st::bench::strategy_by_name("PCM", {});
      }
      auto agg = run_experiment(ctx.paper_config(0.6),
                                st::bench::system_by_name(system), strategy);
      table.add_row({system, whitewash ? "PCM + whitewashing" : "PCM",
                     st::util::fmt(agg.colluder_mean.mean(), 6),
                     st::util::fmt(agg.normal_mean.mean(), 6),
                     st::util::fmt(agg.colluder_share.mean() * 100.0, 2) +
                         "%"});
    }
  }
  ctx.emit("comparison", table);
  return 0;
}
