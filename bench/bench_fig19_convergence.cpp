// Fig. 19: efficiency of collusion deterrence — number of simulation
// cycles until colluder reputations drop (and stay) below 0.001, under
// MMM, reported as 1st percentile / median / 99th percentile over all
// colluders and runs.
//
// Paper shape: EigenTrust and EigenTrust+SocialTrust converge within a few
// cycles; eBay takes several times longer (B = 0.2); at B = 0.6 only the
// SocialTrust-guarded systems converge at all (plain eBay cannot detect
// colluders, which is why the paper omits it from panel (b)).

#include "common.hpp"

int main(int argc, char** argv) {
  st::bench::Context ctx(argc, argv, "fig19_convergence");
  const auto cycles =
      static_cast<double>(ctx.paper_config(0.2).sim.simulation_cycles);

  for (double b : {0.2, 0.6}) {
    ctx.heading("Fig19(" + std::string(b == 0.2 ? "a" : "b") +
                "): cycles until colluder reputation < 0.001, MMM, B=" +
                st::util::fmt(b, 1));
    st::util::Table table({"system", "1st percentile", "median",
                           "99th percentile", "% colluders suppressed"});
    for (const std::string& system :
         {std::string("SocialTrust"), std::string("EigenTrust"),
          std::string("eBay")}) {
      // "SocialTrust" in the figure means EigenTrust+SocialTrust.
      std::string factory_name =
          system == "SocialTrust" ? "EigenTrust+SocialTrust" : system;
      auto agg = run_experiment(ctx.paper_config(b),
                                st::bench::system_by_name(factory_name),
                                st::bench::strategy_by_name("MMM", {}));
      const auto& pooled = agg.pooled_convergence_cycles;
      std::size_t suppressed = 0;
      for (double c : pooled) {
        if (c <= cycles) ++suppressed;
      }
      table.add_row(
          {system, st::util::fmt(st::stats::percentile(pooled, 1), 1),
           st::util::fmt(st::stats::percentile(pooled, 50), 1),
           st::util::fmt(st::stats::percentile(pooled, 99), 1),
           st::util::fmt(100.0 * static_cast<double>(suppressed) /
                             static_cast<double>(pooled.size()),
                         1) +
               "%"});
    }
    ctx.emit(b == 0.2 ? "a_b02" : "b_b06", table);
  }
  std::cout << "(a convergence value of cycles+1 = " << cycles + 1
            << " means the colluder never dropped below 0.001)\n";
  return 0;
}
