// Fig. 14: MMM with B = 0.2. Paper shape: unlike PCM/MCM, the mutual
// boosting loop lets boosted colluders climb even at B = 0.2 (the paper's
// "80 ratings per query cycle" argument); SocialTrust suppresses.
#include "common.hpp"

int main(int argc, char** argv) {
  st::bench::Context ctx(argc, argv, "fig14_mmm_b02");
  st::bench::collusion_figure(ctx, "Fig14", "MMM", {}, 0.2,
                              {"EigenTrust", "eBay", "EigenTrust+SocialTrust",
                               "eBay+SocialTrust"});
  return 0;
}
