// Fig. 10: PCM with B = 0.2 where 7 pretrusted nodes are compromised into
// the collusion. Paper shape: the 0.5-weighted ratings of compromised
// pretrusted nodes boost their conspired colluders dramatically under
// plain EigenTrust; EigenTrust+SocialTrust detects the high-frequency
// pairs and collapses both the colluders and the compromised pretrusted.
#include "common.hpp"

int main(int argc, char** argv) {
  st::bench::Context ctx(argc, argv, "fig10_pcm_compromised");
  st::collusion::CollusionOptions options;
  options.compromised_pretrusted = 7;
  st::bench::collusion_figure(ctx, "Fig10", "PCM", options, 0.2,
                              {"EigenTrust", "EigenTrust+SocialTrust"});
  return 0;
}
