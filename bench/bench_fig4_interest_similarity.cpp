// Fig. 4: impact of interests on purchasing patterns in the synthetic
// Overstock trace.
//   (a) CDF of per-user purchases by category rank — the top 3 categories
//       carry ~88% of a user's purchases (observation O5);
//   (b) CDF of transactions vs buyer-seller interest similarity — few
//       transactions between dissimilar users (observation O6).

#include "common.hpp"
#include "trace/analysis.hpp"
#include "trace/marketplace.hpp"

int main(int argc, char** argv) {
  st::bench::Context ctx(argc, argv, "fig4_interest_similarity");

  st::trace::TraceConfig config;
  config.user_count =
      static_cast<std::size_t>(ctx.args().get_int("users", 20000));
  config.transaction_count = static_cast<std::size_t>(
      ctx.args().get_int("transactions", ctx.args().has("quick") ? 20000
                                                                 : 100000));
  st::stats::Rng rng(ctx.seed());
  auto trace = st::trace::generate_trace(config, rng);
  auto analysis = st::trace::analyze_trace(trace);

  ctx.heading("Fig4(a): CDF of purchases by category rank");
  st::util::Table rank_table({"category rank", "share of purchases", "CDF"});
  std::vector<st::util::SeriesPoint> rank_series;
  for (std::size_t r = 0; r < analysis.category_rank_share.size(); ++r) {
    rank_table.add_row({std::to_string(r + 1),
                        st::util::fmt(analysis.category_rank_share[r], 3),
                        st::util::fmt(analysis.category_rank_cdf[r], 3)});
    rank_series.push_back(
        {static_cast<double>(r + 1), analysis.category_rank_cdf[r]});
  }
  std::cout << st::util::line_chart(rank_series, 50, 10);
  ctx.emit("a_category_rank", rank_table);

  st::util::Table headline({"statistic", "paper (crawl)", "measured"});
  headline.add_row({"top-3 category share", "~88%",
                    st::util::fmt(analysis.top3_share * 100.0, 1) + "%"});
  headline.add_row(
      {"transactions at similarity <= 0.2", "~10%",
       st::util::fmt(analysis.fraction_low_similarity * 100.0, 1) + "%"});
  headline.add_row(
      {"transactions at similarity > 0.3", "~60%",
       st::util::fmt(analysis.fraction_above_03 * 100.0, 1) + "%"});
  headline.add_row({"mean pair similarity", "0.423",
                    st::util::fmt(analysis.mean_pair_similarity, 3)});
  ctx.emit("headline", headline);

  ctx.heading("Fig4(b): CDF of transactions vs interest similarity");
  st::util::Table cdf_table({"interest similarity", "cumulative fraction"});
  std::vector<st::util::SeriesPoint> cdf_series;
  // Down-sample the CDF to ~20 evenly spaced rows for readability.
  const auto& cdf = analysis.similarity_cdf;
  std::size_t step = std::max<std::size_t>(1, cdf.size() / 20);
  for (std::size_t i = 0; i < cdf.size(); i += step) {
    cdf_table.add_row({st::util::fmt(cdf[i].similarity, 3),
                       st::util::fmt(cdf[i].cumulative_fraction, 3)});
    cdf_series.push_back({cdf[i].similarity, cdf[i].cumulative_fraction});
  }
  std::cout << st::util::line_chart(cdf_series, 60, 12);
  ctx.emit("b_similarity_cdf", cdf_table);
  return 0;
}
