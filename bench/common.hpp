#pragma once
// Shared driver code for the experiment benches.
//
// Every bench binary reproduces one table or figure of the paper: it runs
// the corresponding experiment at the paper's scale (Section 5.1 defaults),
// prints the rows/series the paper reports plus an ASCII rendering of the
// figure's shape, and optionally writes CSV for external plotting.
//
// Common flags (parsed by Context):
//   --seed <u64>    base RNG seed               (default 42)
//   --runs <n>      repetitions per experiment  (default 5, as in the paper)
//   --cycles <n>    simulation cycles           (default 50)
//   --csv <dir>     also write CSV files into <dir>
//   --quick         reduced scale for smoke runs (2 runs, 20 cycles)
//   --threads <n>   SocialTrust update-interval workers (default 1 =
//                   serial, 0 = hardware concurrency; results identical)
//   --obs           enable the metrics/tracing layer (src/obs/)
//   --obs-out <p>   as --obs, streaming interval events to <p> as JSONL
//                   (implies --obs; see docs/OBSERVABILITY.md)

#include <cstdint>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "collusion/models.hpp"
#include "sim/experiment.hpp"
#include "sim/factories.hpp"
#include "stats/summary.hpp"
#include "util/ascii_chart.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace st::bench {

/// The flag vocabulary every bench binary shares, parsed in one place so
/// the figure drivers (via Context) and the standalone perf benches
/// (bench_parallel_update, bench_incremental_closeness, bench_csr_graph,
/// bench_sharded_aggregation) agree on spelling and defaults:
///   --seed <u64>      base RNG seed                        (default 42)
///   --quick           reduced scale for smoke runs
///   --threads <list>  comma-separated worker counts; single values parse
///                     to a one-element list
///   --reps <n>        timed repetitions (min is kept)
///   --obs             enable the metrics/tracing layer
///   --obs-out <path>  as --obs, streaming interval events as JSONL
struct CommonFlags {
  std::uint64_t seed = 42;
  bool quick = false;
  std::vector<std::size_t> threads;
  std::size_t reps = 0;
  bool obs = false;
  std::string obs_out;  ///< empty unless --obs-out was given
};

/// Comma-separated positive integers ("1,2,8"); unparsable or
/// non-positive tokens are skipped, in line with the forgiving strtoll
/// behaviour of util::CliArgs.
std::vector<std::size_t> parse_size_list(const std::string& csv);

/// Parses the shared flags above. `default_threads` / `quick_threads`
/// are the --threads csv defaults at full and --quick scale
/// (quick_threads null = same as full); reps likewise.
CommonFlags parse_common_flags(const util::CliArgs& args,
                               const char* default_threads = "1",
                               const char* quick_threads = nullptr,
                               std::size_t default_reps = 3,
                               std::size_t quick_reps = 2);

class Context {
 public:
  Context(int argc, char** argv, std::string bench_name);

  /// The paper's Section 5.1 experiment configuration with the given
  /// colluder good-behaviour probability B.
  sim::ExperimentConfig paper_config(double colluder_b) const;

  /// Prints a table (and writes CSV when --csv was given).
  void emit(const std::string& table_name, const util::Table& table) const;

  /// Writes CSV only (no stdout) — for bulky per-node tables.
  void emit_csv(const std::string& table_name,
                const util::Table& table) const;

  /// Prints a section heading.
  void heading(const std::string& text) const;

  std::uint64_t seed() const noexcept { return seed_; }
  std::size_t runs() const noexcept { return runs_; }
  /// SocialTrust update-interval worker count (--threads).
  std::size_t threads() const noexcept { return threads_; }
  const util::CliArgs& args() const noexcept { return args_; }

 private:
  util::CliArgs args_;
  std::string bench_name_;
  std::uint64_t seed_;
  std::size_t runs_;
  std::size_t cycles_;
  std::size_t threads_;
  std::optional<std::string> csv_dir_;
};

/// Named system factories matching the paper's labels. Valid names:
/// "eBay", "EigenTrust", "eBay+SocialTrust", "EigenTrust+SocialTrust",
/// "EigenTrust(Kamvar)". Throws on unknown names. `threads` sets the
/// SocialTrust update-interval worker count for the +SocialTrust systems
/// (ignored by the bare baselines).
sim::SystemFactory system_by_name(const std::string& name,
                                  std::size_t threads = 1);

/// Strategy factory for "PCM" / "MCM" / "MMM" / "" (none).
sim::StrategyFactory strategy_by_name(const std::string& model,
                                      collusion::CollusionOptions options);

/// Group-level summary rows of one aggregated experiment (the numbers the
/// reputation-distribution figures visualise).
util::Table summary_table(const sim::AggregateResult& agg);

/// Renders the per-node reputation distribution (the paper's Figs. 7-18
/// panels) as an ASCII bar chart: pretrusted ids first, then colluders,
/// then bucketised normal nodes.
void print_distribution(const std::string& caption,
                        const sim::AggregateResult& agg,
                        const sim::SimConfig& cfg);

/// Per-node CSV table (node, type, mean reputation, ci) for one panel.
util::Table distribution_table(const sim::AggregateResult& agg,
                               const sim::SimConfig& cfg);

/// Runs one figure panel (one system under one attack) and prints it.
sim::AggregateResult run_panel(const Context& ctx, const std::string& panel,
                               const std::string& system,
                               const std::string& model,
                               collusion::CollusionOptions options,
                               double colluder_b);

/// Complete driver for the Figs. 8-18 family: runs the listed systems
/// against one attack and prints all panels plus a comparison summary.
void collusion_figure(Context& ctx, const std::string& figure,
                      const std::string& model,
                      collusion::CollusionOptions options, double colluder_b,
                      const std::vector<std::string>& systems);

}  // namespace st::bench
