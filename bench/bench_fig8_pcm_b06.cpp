// Fig. 8: reputation distributions under pair-wise collusion (PCM) with
// colluder good-behaviour probability B = 0.6, for EigenTrust, eBay, and
// both with the SocialTrust plugin.
//
// Paper shape: plain EigenTrust and eBay let the colluders reach the top
// of the reputation distribution; with SocialTrust their reputations
// collapse to the bottom.
#include "common.hpp"

int main(int argc, char** argv) {
  st::bench::Context ctx(argc, argv, "fig8_pcm_b06");
  st::bench::collusion_figure(ctx, "Fig8", "PCM", {}, 0.6,
                              {"EigenTrust", "eBay", "EigenTrust+SocialTrust",
                               "eBay+SocialTrust"});
  return 0;
}
