// Extension experiment: the Beta reputation baseline (Jøsang & Ismail)
// under the paper's three collusion models, with and without SocialTrust.
//
// Demonstrates the plugin's system-agnosticism beyond the paper's own two
// baselines: Beta reputation aggregates per-ratee evidence with no rater
// weighting at all, so high-frequency fake ratings inflate it directly —
// and the same SocialTrust plugin attenuates them.

#include "common.hpp"
#include "reputation/beta.hpp"

namespace {

st::sim::SystemFactory make_beta_factory() {
  return [](const st::graph::SocialGraph&, const st::core::InterestProfiles&,
            const std::vector<st::sim::NodeId>&, std::size_t n) {
    return std::make_unique<st::reputation::BetaReputation>(n);
  };
}

}  // namespace

int main(int argc, char** argv) {
  st::bench::Context ctx(argc, argv, "extension_beta_baseline");

  for (const std::string& model :
       {std::string("PCM"), std::string("MCM"), std::string("MMM")}) {
    ctx.heading("Beta reputation under " + model + ", B=0.6");
    st::util::Table table({"system", "colluder mean rep", "normal mean rep",
                           "% requests to colluders"});
    auto plain = run_experiment(ctx.paper_config(0.6), make_beta_factory(),
                                st::bench::strategy_by_name(model, {}));
    table.add_row({"Beta", st::util::fmt(plain.colluder_mean.mean(), 6),
                   st::util::fmt(plain.normal_mean.mean(), 6),
                   st::util::fmt(plain.colluder_share.mean() * 100.0, 2) +
                       "%"});
    auto guarded = run_experiment(
        ctx.paper_config(0.6),
        st::sim::make_socialtrust_factory(make_beta_factory()),
        st::bench::strategy_by_name(model, {}));
    table.add_row({"Beta+SocialTrust",
                   st::util::fmt(guarded.colluder_mean.mean(), 6),
                   st::util::fmt(guarded.normal_mean.mean(), 6),
                   st::util::fmt(guarded.colluder_share.mean() * 100.0, 2) +
                       "%"});
    ctx.emit(model, table);
  }
  return 0;
}
