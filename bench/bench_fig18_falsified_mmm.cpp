// Fig. 18: MMM, B = 0.6, with falsified social information (see Fig. 16).
#include "common.hpp"

int main(int argc, char** argv) {
  st::bench::Context ctx(argc, argv, "fig18_falsified_mmm");
  st::collusion::CollusionOptions options;
  options.falsify_social_info = true;
  st::bench::collusion_figure(
      ctx, "Fig18", "MMM", options, 0.6,
      {"EigenTrust+SocialTrust", "eBay+SocialTrust"});
  return 0;
}
