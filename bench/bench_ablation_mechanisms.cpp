// Ablation: substrate-level design choices.
//   * the paper-variant EigenTrust vs the faithful Kamvar et al.
//     power iteration (which resists pair-wise collusion natively);
//   * repeat patronage (sticky selection) on/off;
//   * distributed SocialTrust overhead: cross-manager social-information
//     fetches per interval as the manager count grows.

#include "common.hpp"
#include "core/resource_manager.hpp"

int main(int argc, char** argv) {
  st::bench::Context ctx(argc, argv, "ablation_mechanisms");

  ctx.heading("EigenTrust variant under PCM B=0.6");
  {
    st::util::Table table({"variant", "colluder mean rep",
                           "pretrusted mean rep",
                           "% requests to colluders"});
    for (const std::string& system :
         {std::string("EigenTrust"), std::string("EigenTrust(Kamvar)")}) {
      auto agg = run_experiment(ctx.paper_config(0.6),
                                st::bench::system_by_name(system),
                                st::bench::strategy_by_name("PCM", {}));
      table.add_row({system, st::util::fmt(agg.colluder_mean.mean(), 6),
                     st::util::fmt(agg.pretrusted_mean.mean(), 6),
                     st::util::fmt(agg.colluder_share.mean() * 100.0, 2) +
                         "%"});
    }
    ctx.emit("eigentrust_variant", table);
    std::cout << "(the faithful row-normalised EigenTrust resists PCM by "
                 "construction;\n the paper's evaluation dynamics require "
                 "the weighted-accumulation variant — see DESIGN.md)\n\n";
  }

  ctx.heading("repeat patronage (sticky selection) under PCM B=0.6");
  {
    st::util::Table table({"selection", "colluder mean rep",
                           "% requests to colluders"});
    for (bool sticky : {true, false}) {
      auto config = ctx.paper_config(0.6);
      config.sim.sticky_selection = sticky;
      auto agg = run_experiment(config,
                                st::bench::system_by_name("EigenTrust"),
                                st::bench::strategy_by_name("PCM", {}));
      table.add_row({sticky ? "sticky (default)" : "uniform re-draw",
                     st::util::fmt(agg.colluder_mean.mean(), 6),
                     st::util::fmt(agg.colluder_share.mean() * 100.0, 2) +
                         "%"});
    }
    ctx.emit("sticky_selection", table);
  }

  ctx.heading("distributed SocialTrust: manager traffic under PCM B=0.6");
  {
    st::util::Table table({"managers", "ratings routed/interval",
                           "info requests/interval", "local hits/interval"});
    for (std::size_t managers : {1u, 2u, 4u, 8u, 16u}) {
      auto factory = st::sim::make_distributed_socialtrust_factory(
          st::sim::make_paper_eigentrust_factory(),
          st::core::SocialTrustConfig{}, managers);
      // One run is enough: traffic accounting is per-interval and stable.
      auto config = ctx.paper_config(0.6);
      config.runs = 1;
      st::sim::Simulator sim(
          config.sim, factory,
          std::make_unique<st::collusion::PairwiseCollusion>(),
          ctx.seed());
      auto* net = dynamic_cast<st::core::ResourceManagerNetwork*>(
          &sim.system());
      sim.run();
      const auto& total = net->total_traffic();
      auto cycles = static_cast<double>(config.sim.simulation_cycles);
      table.add_row(
          {std::to_string(managers),
           st::util::fmt(static_cast<double>(total.ratings_routed) / cycles,
                         0),
           st::util::fmt(static_cast<double>(total.info_requests) / cycles,
                         1),
           st::util::fmt(static_cast<double>(total.local_hits) / cycles,
                         1)});
    }
    ctx.emit("manager_traffic", table);
  }
  return 0;
}
