// Fig. 16: PCM, B = 0.6, with falsified social information — colluding
// pairs carry exactly one relationship and identical declared interests.
// Paper shape: SocialTrust still suppresses, because the interaction
// frequencies and request histories (Eq. 10 / behaviour-weighted
// similarity) cannot be falsified.
#include "common.hpp"

int main(int argc, char** argv) {
  st::bench::Context ctx(argc, argv, "fig16_falsified_pcm");
  st::collusion::CollusionOptions options;
  options.falsify_social_info = true;
  st::bench::collusion_figure(
      ctx, "Fig16", "PCM", options, 0.6,
      {"EigenTrust+SocialTrust", "eBay+SocialTrust"});
  return 0;
}
