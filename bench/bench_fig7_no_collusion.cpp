// Fig. 7: EigenTrust and eBay *without* collusion. Malicious nodes serve
// authentic content with probability drawn from [0.2, 0.6] but do not
// rate each other.
//
// Paper shape: (a) EigenTrust — malicious reputations very low, pretrusted
// and a few normal nodes comparatively high; (b) eBay — flatter
// distribution with the malicious ids lower; (c) EigenTrust sends a much
// smaller share of requests to malicious nodes than eBay.

#include "common.hpp"

int main(int argc, char** argv) {
  st::bench::Context ctx(argc, argv, "fig7_no_collusion");

  // "The malicious nodes offer authentic files with probability randomly
  // selected from [0.2, 0.6]" — approximated by the midpoint; the
  // colluder population plays the malicious role but no strategy runs.
  const double kMaliciousB = 0.4;

  st::util::Table fig7c({"system", "% services provided by malicious nodes",
                         "95% CI"});
  for (const std::string& system : {std::string("EigenTrust"),
                                    std::string("eBay")}) {
    ctx.heading("Fig7: " + system + " (no collusion)");
    auto agg = st::bench::run_panel(ctx, "Fig7", system, "", {}, kMaliciousB);
    ctx.emit(system + "_summary", st::bench::summary_table(agg));
    ctx.emit_csv(system + "_distribution",
                 st::bench::distribution_table(
                     agg, ctx.paper_config(kMaliciousB).sim));
    fig7c.add_row(
        {system, st::util::fmt(agg.colluder_share.mean() * 100.0, 2) + "%",
         st::util::fmt(
             st::stats::confidence_interval95(agg.colluder_share) * 100.0,
             2)});
  }
  ctx.heading("Fig7(c): percent of services provided by malicious nodes");
  ctx.emit("c_service_share", fig7c);
  return 0;
}
