// Before/after gate for the CSR graph core (DESIGN.md §15): a closeness
// pass — the mixed adjacent / friend-of-friend / BFS-fallback workload
// the SocialTrust update interval runs per rating pair — timed over the
// same 100k-node social network stored two ways:
//
//   before  ReferenceSocialGraph, the pre-CSR sorted vector-of-vectors
//           layout, driven by a kernel replicating the pre-CSR consumer
//           code probe-for-probe (separate adjacency search before the
//           mask fetch, set_intersection common friends);
//   after   SocialGraph's flat CSR arrays driven by the production
//           ClosenessModel.
//
// Both passes must produce bit-identical closeness sums (the refactor's
// contract), so the timing difference is pure representation: contiguous
// BFS rows, single-probe adjacency+mask, and merge-based common friends.
// The run also reports heap bytes per node and per half-edge for both
// layouts via memory_footprint().
//
// Flags:
//   --nodes <n>      network size              (default 100000)
//   --samples <n>    closeness pairs per pass  (default 24000)
//   --reps <n>       repetitions, min kept     (default 3)
//   --json <path>    also write results as JSON (the
//                    BENCH_csr_graph.json artifact)
//   --quick          4000 nodes, 4000 samples, 1 rep; skips the timing
//                    gate (the ctest smoke entry)
//   --seed <n>       workload seed             (default 42)
//
// Exit code is non-zero if the two passes disagree bitwise, if the CSR
// layout does not reduce adjacency bytes per half-edge, or (full runs
// only) if the CSR closeness throughput is below 1.5x the reference.

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/closeness.hpp"
#include "graph/generators.hpp"
#include "graph/reference_graph.hpp"
#include "graph/social_graph.hpp"
#include "stats/rng.hpp"
#include "util/cli.hpp"

namespace {

using st::core::ClosenessModel;
using st::graph::NodeId;
using st::graph::ReferenceSocialGraph;
using st::graph::Relationship;
using st::graph::SocialGraph;

constexpr std::size_t kMaxHops = 4;  // the paper's distance horizon

/// Eq. (10) mass table with the default weights, built exactly as
/// ClosenessModel builds its own (sort descending, decay by lambda^(l-1))
/// so the reference kernel reproduces its arithmetic bit-for-bit.
std::array<double, 64> build_mass_table(double lambda) {
  std::array<double, 64> table{};
  for (std::size_t mask = 0; mask < table.size(); ++mask) {
    std::vector<double> weights;
    for (std::size_t i = 0; i < st::graph::kRelationshipCount; ++i) {
      if (mask & (1U << i)) {
        weights.push_back(st::graph::default_relationship_weight(
            static_cast<Relationship>(i)));
      }
    }
    std::sort(weights.begin(), weights.end(), std::greater<>());
    double sum = 0.0;
    double decay = 1.0;
    for (double w : weights) {
      sum += decay * w;
      decay *= lambda;
    }
    table[mask] = sum;
  }
  return table;
}

/// Pre-CSR consumer code, probe-for-probe: adjacent() before the mask
/// fetch (two searches where the CSR consumer pays one), then the
/// interaction lookup.
double ref_adjacent_closeness(const ReferenceSocialGraph& g,
                              const std::array<double, 64>& mass, NodeId i,
                              NodeId j) {
  if (!g.adjacent(i, j)) return 0.0;
  const double total = g.total_interactions(i);
  if (total <= 0.0) return 0.0;
  return mass[g.relationship_mask(i, j)] * g.interaction(i, j) / total;
}

double ref_closeness(const ReferenceSocialGraph& g,
                     const std::array<double, 64>& mass, NodeId i, NodeId j) {
  if (i == j) return 0.0;
  if (g.adjacent(i, j)) return ref_adjacent_closeness(g, mass, i, j);
  const std::vector<NodeId> common = g.common_friends(i, j);
  if (!common.empty()) {
    double sum = 0.0;
    for (NodeId k : common) {
      sum += (ref_adjacent_closeness(g, mass, i, k) +
              ref_adjacent_closeness(g, mass, k, j)) /
             2.0;
    }
    return sum;
  }
  const auto path = g.shortest_path(i, j, kMaxHops);
  if (!path || path->size() < 2) return 0.0;
  double bottleneck = std::numeric_limits<double>::infinity();
  for (std::size_t step = 0; step + 1 < path->size(); ++step) {
    bottleneck = std::min(
        bottleneck,
        ref_adjacent_closeness(g, mass, (*path)[step], (*path)[step + 1]));
  }
  return std::isfinite(bottleneck) ? bottleneck : 0.0;
}

struct Pair {
  NodeId a;
  NodeId b;
};

double ms_between(std::chrono::steady_clock::time_point start,
                  std::chrono::steady_clock::time_point stop) {
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  st::util::CliArgs args(argc, argv);
  const st::bench::CommonFlags common =
      st::bench::parse_common_flags(args, "1", nullptr, 3, 1);
  const bool quick = common.quick;
  const auto nodes =
      static_cast<std::size_t>(args.get_int("nodes", quick ? 4000 : 100000));
  const auto samples =
      static_cast<std::size_t>(args.get_int("samples", quick ? 4000 : 24000));
  const std::size_t reps = common.reps;
  const std::uint64_t seed = common.seed;

  // --- build the network once, store it both ways --------------------------
  st::stats::Rng rng(seed);
  SocialGraph csr = st::graph::watts_strogatz(nodes, 8, 0.1, rng);
  ReferenceSocialGraph ref(nodes);
  for (NodeId a = 0; a < csr.size(); ++a) {
    for (NodeId b : csr.neighbors(a)) {
      if (b > a) ref.add_relationship(a, b, Relationship::kFriendship);
    }
  }
  // Typed parallel edges on a third of the nodes so mask handling is
  // exercised, and interactions with every neighbour plus the occasional
  // stranger — the paper's "interactions need not follow edges".
  for (NodeId a = 0; a < csr.size(); ++a) {
    const auto nbrs = csr.neighbors(a);
    if (a % 3 == 0 && !nbrs.empty()) {
      const NodeId b = nbrs[0];
      csr.add_relationship(a, b, Relationship::kColleague);
      ref.add_relationship(a, b, Relationship::kColleague);
    }
  }
  for (NodeId a = 0; a < csr.size(); ++a) {
    // Re-read the row: the typed-edge loop above may have compacted.
    const auto nbrs = csr.neighbors(a);
    std::vector<NodeId> targets(nbrs.begin(), nbrs.end());
    for (NodeId b : targets) {
      const double count = 1.0 + static_cast<double>((a + b) % 4);
      csr.record_interaction(a, b, count);
      ref.record_interaction(a, b, count);
    }
    const auto stranger = static_cast<NodeId>(rng.index(nodes));
    if (stranger != a) {
      csr.record_interaction(a, stranger, 2.0);
      ref.record_interaction(a, stranger, 2.0);
    }
  }
  csr.begin_interval();  // pure CSR rows for the measured passes

  // --- sample the pair mix: 1/2 adjacent, 1/4 FoF, 1/4 arbitrary -----------
  std::vector<Pair> pairs;
  pairs.reserve(samples);
  const std::string mix = args.get_or("mix", "default");
  while (pairs.size() < samples) {
    const auto a = static_cast<NodeId>(rng.index(nodes));
    const auto nbrs = csr.neighbors(a);
    if (nbrs.empty()) continue;
    std::size_t kind = pairs.size() % 4;
    if (mix == "adjacent") kind = 0;
    if (mix == "fof") kind = 2;
    if (mix == "far") kind = 3;
    switch (kind) {
      case 0:
      case 1:
        pairs.push_back({a, nbrs[rng.index(nbrs.size())]});
        break;
      case 2: {
        const NodeId mid = nbrs[rng.index(nbrs.size())];
        const auto hop2 = csr.neighbors(mid);
        const NodeId b = hop2[rng.index(hop2.size())];
        if (b == a) continue;
        pairs.push_back({a, b});
        break;
      }
      default: {
        const auto b = static_cast<NodeId>(rng.index(nodes));
        if (b == a) continue;
        pairs.push_back({a, b});
        break;
      }
    }
  }

  // --- timed passes ---------------------------------------------------------
  const ClosenessModel model;  // weighted Eq. (10), lambda 0.8
  const auto mass = build_mass_table(model.lambda());

  double ref_ms = std::numeric_limits<double>::infinity();
  double csr_ms = std::numeric_limits<double>::infinity();
  double ref_sum = 0.0;
  double csr_sum = 0.0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    double sum = 0.0;
    for (const Pair& p : pairs) sum += ref_closeness(ref, mass, p.a, p.b);
    const auto t1 = std::chrono::steady_clock::now();
    ref_ms = std::min(ref_ms, ms_between(t0, t1));
    ref_sum = sum;

    const auto t2 = std::chrono::steady_clock::now();
    double sum2 = 0.0;
    for (const Pair& p : pairs) sum2 += model.closeness(csr, p.a, p.b, kMaxHops);
    const auto t3 = std::chrono::steady_clock::now();
    csr_ms = std::min(csr_ms, ms_between(t2, t3));
    csr_sum = sum2;
  }

  const bool identical = std::bit_cast<std::uint64_t>(ref_sum) ==
                         std::bit_cast<std::uint64_t>(csr_sum);
  const double speedup = ref_ms / csr_ms;
  const double ref_kpairs_s = static_cast<double>(samples) / ref_ms;
  const double csr_kpairs_s = static_cast<double>(samples) / csr_ms;

  // --- memory accounting ----------------------------------------------------
  const auto before = ref.memory_footprint();
  const auto after = csr.memory_footprint();
  const double half_edges = static_cast<double>(2 * csr.edge_count());
  const double n = static_cast<double>(nodes);
  const double before_bpn = static_cast<double>(before.total()) / n;
  const double after_bpn = static_cast<double>(after.total()) / n;
  const double before_bpe =
      static_cast<double>(before.adjacency_bytes) / half_edges;
  const double after_bpe =
      static_cast<double>(after.adjacency_bytes) / half_edges;

  std::cout << "bench_csr_graph: nodes=" << nodes << " edges="
            << csr.edge_count() << " samples=" << samples << " reps=" << reps
            << "\n"
            << "  closeness pass   before " << ref_ms << " ms ("
            << ref_kpairs_s << " kpairs/s)  after " << csr_ms << " ms ("
            << csr_kpairs_s << " kpairs/s)  speedup " << speedup << "x\n"
            << "  bytes/node       before " << before_bpn << "  after "
            << after_bpn << "\n"
            << "  adj bytes/edge   before " << before_bpe << "  after "
            << after_bpe << "\n"
            << "  bit-identical    " << (identical ? "yes" : "NO") << "\n";

  if (auto json = args.get("json")) {
    std::ofstream out(*json);
    out << "{\n"
        << "  \"bench\": \"bench_csr_graph\",\n"
        << "  \"seed\": " << seed << ",\n"
        << "  \"nodes\": " << nodes << ",\n"
        << "  \"edges\": " << csr.edge_count() << ",\n"
        << "  \"samples\": " << samples << ",\n"
        << "  \"reps\": " << reps << ",\n"
        << "  \"max_hops\": " << kMaxHops << ",\n"
        << "  \"bit_identical\": " << (identical ? "true" : "false") << ",\n"
        << "  \"before_ms\": " << ref_ms << ",\n"
        << "  \"after_ms\": " << csr_ms << ",\n"
        << "  \"speedup\": " << speedup << ",\n"
        << "  \"before_kpairs_per_s\": " << ref_kpairs_s << ",\n"
        << "  \"after_kpairs_per_s\": " << csr_kpairs_s << ",\n"
        << "  \"before_bytes_per_node\": " << before_bpn << ",\n"
        << "  \"after_bytes_per_node\": " << after_bpn << ",\n"
        << "  \"before_adj_bytes_per_half_edge\": " << before_bpe << ",\n"
        << "  \"after_adj_bytes_per_half_edge\": " << after_bpe << ",\n"
        << "  \"csr_rebuilds\": " << csr.rebuild_count() << "\n"
        << "}\n";
  }

  if (!identical) {
    std::cerr << "FAIL: CSR closeness pass is not bit-identical\n";
    return 1;
  }
  if (after_bpe >= before_bpe) {
    std::cerr << "FAIL: CSR layout did not reduce adjacency bytes/edge\n";
    return 1;
  }
  if (!quick && speedup < 1.5) {
    std::cerr << "FAIL: closeness speedup " << speedup << "x below 1.5x\n";
    return 1;
  }
  return 0;
}
