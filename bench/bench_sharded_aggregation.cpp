// Gossip-sharded aggregation bench (DESIGN.md §16): the update interval
// restructured over N cooperating partitions, measured against the
// centralized pipeline at P2P scale.
//
// Two hard gates ride in the exit code:
//
//   * synchronous exchange — adjusted ratings, flagged sets and
//     reputations must be BIT-IDENTICAL to AggregationMode::kCentralized
//     at every (shard count, thread count) cell, every interval;
//   * gossip exchange — the schedule must disseminate every summary
//     (converged) and the rebuilt baselines must sit within epsilon of
//     the exact centralized statistics (the residual the obs layer
//     reports as shard.baseline_residual_ppm).
//
// What the numbers mean: the synchronous all-gather ships full
// coefficient arrays (that is what bit-exact replay of the robust
// baselines costs), so its boundary traffic scales with the pair
// population; gossip ships fixed-size sketches, so its traffic scales
// with shards * rounds — the exactness-vs-bytes trade the two schedules
// span. Wall-clock on shared runners is informational; the committed
// reference is BENCH_sharded_aggregation.json (100k nodes).
//
// Flags (shared vocabulary in bench/common.hpp):
//   --nodes <n>       workload size                  (default 100000)
//   --shards <list>   shard counts                   (default 1,2,4,8)
//   --threads <list>  worker counts                  (default 1,4)
//   --intervals <n>   update intervals per run       (default 3)
//   --reps <n>        repetitions, min is kept       (default 3)
//   --seed <u64>      workload seed                  (default 42)
//   --shard-seed <u64> partitioner / exchange seed
//   --gossip-points <n> sketch size for the gossip section (default 64)
//   --json <path>     write results as JSON (the committed artifact)
//   --quick           5000 nodes, shards 1,4, threads 1,2, 2 intervals,
//                     1 rep — the ctest smoke entry

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/socialtrust.hpp"
#include "graph/generators.hpp"
#include "reputation/ebay.hpp"
#include "shard/sharded_aggregator.hpp"
#include "stats/rng.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using st::core::SocialTrustConfig;
using st::core::SocialTrustPlugin;
using st::graph::NodeId;
using st::reputation::Rating;

struct Workload {
  st::graph::SocialGraph graph{1};
  st::core::InterestProfiles profiles{1, 1};
  std::vector<Rating> ratings;
};

/// The house update-interval workload (bench_parallel_update's mix): a
/// small-world graph, a colluding clique rating heavily, and a normal
/// background exercising all three closeness paths.
Workload make_workload(std::size_t n, st::stats::Rng& rng) {
  Workload w;
  w.graph = st::graph::watts_strogatz(n, 10, 0.1, rng);
  w.profiles = st::core::InterestProfiles(n, 20);

  auto rate = [&](NodeId rater, NodeId ratee, double value,
                  std::size_t times) {
    for (std::size_t k = 0; k < times; ++k) {
      w.ratings.push_back(Rating{rater, ratee, value, 0, 0,
                                 st::reputation::kNoInterest});
      w.graph.record_interaction(rater, ratee);
    }
  };

  for (NodeId v = 0; v < n; ++v) {
    std::vector<st::reputation::InterestId> interests;
    for (int k = 0; k < 3; ++k) {
      interests.push_back(
          static_cast<st::reputation::InterestId>(rng.index(20)));
    }
    w.profiles.set_interests(v, interests);
    for (auto interest : interests) {
      w.profiles.record_request(v, interest, rng.uniform(1.0, 10.0));
    }
  }

  std::size_t colluders = std::max<std::size_t>(2, n / 100) & ~std::size_t{1};
  for (NodeId c = 0; c + 1 < colluders; c += 2) {
    w.graph.add_relationship(c, c + 1, st::graph::Relationship::kKinship);
    w.graph.add_relationship(c, c + 1, st::graph::Relationship::kBusiness);
    rate(c, c + 1, 1.0, 20);
    rate(c + 1, c, 1.0, 20);
  }

  for (NodeId v = static_cast<NodeId>(colluders); v < n; ++v) {
    auto neighbors = w.graph.neighbors(v);
    if (neighbors.empty()) continue;
    for (int k = 0; k < 2; ++k) {
      NodeId peer = neighbors[rng.index(neighbors.size())];
      rate(v, peer, rng.bernoulli(0.85) ? 1.0 : -1.0, 2);
    }
    NodeId mid = neighbors[rng.index(neighbors.size())];
    auto second = w.graph.neighbors(mid);
    if (!second.empty()) {
      NodeId hop2 = second[rng.index(second.size())];
      if (hop2 != v) rate(v, hop2, 1.0, 2);
    }
    if (rng.bernoulli(0.01)) {
      rate(v, static_cast<NodeId>(rng.index(n)), 1.0, 1);
    }
  }
  return w;
}

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// One interval's comparable outputs.
struct IntervalSnap {
  st::core::AdjustmentReport report;
  std::vector<Rating> adjusted;
  std::vector<double> reputations;
};

struct RunResult {
  double best_total_ms = 0.0;  ///< min over reps of the all-intervals sum
  std::vector<IntervalSnap> intervals;
  st::shard::ShardStats stats;       ///< last interval's (sharded only)
  std::uint64_t boundary_bytes = 0;  ///< summed over intervals, last rep
  std::size_t rounds_last = 0;
  double max_residual = 0.0;  ///< max over intervals, last rep
  bool all_converged = true;
};

/// Drives `intervals` updates of the SAME rating stream through one
/// persistent plugin (interval 0 cold, the rest carried warm — the
/// steady state the per-shard dirty machinery exists for) and snapshots
/// each interval's outputs. Min-of-reps wall clock; outputs are
/// deterministic across reps, so the last rep's snapshots stand for all.
RunResult run_intervals(const Workload& w, std::size_t n,
                        const SocialTrustConfig& cfg, std::size_t intervals,
                        std::size_t reps) {
  RunResult out;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    SocialTrustPlugin plugin(
        std::make_unique<st::reputation::EbayReputation>(n), w.graph,
        w.profiles, cfg);
    out.intervals.clear();
    out.boundary_bytes = 0;
    out.max_residual = 0.0;
    out.all_converged = true;
    double total_ms = 0.0;
    for (std::size_t t = 0; t < intervals; ++t) {
      const auto start = std::chrono::steady_clock::now();
      plugin.update(w.ratings);
      const auto stop = std::chrono::steady_clock::now();
      total_ms +=
          std::chrono::duration<double, std::milli>(stop - start).count();
      IntervalSnap snap;
      snap.report = plugin.last_report();
      snap.adjusted.assign(plugin.last_adjusted().begin(),
                           plugin.last_adjusted().end());
      snap.reputations.assign(plugin.reputations().begin(),
                              plugin.reputations().end());
      out.intervals.push_back(std::move(snap));
      if (const st::shard::ShardStats* ss = plugin.last_shard_stats()) {
        out.stats = *ss;
        out.boundary_bytes += ss->exchange.boundary_bytes;
        out.rounds_last = ss->exchange.rounds;
        out.max_residual = std::max(out.max_residual, ss->baseline_residual);
        out.all_converged = out.all_converged && ss->exchange.converged;
      }
    }
    if (rep == 0 || total_ms < out.best_total_ms) {
      out.best_total_ms = total_ms;
    }
  }
  return out;
}

/// Bit-identity across every interval — report, adjusted stream,
/// flagged set, reputations.
bool runs_identical(const RunResult& a, const RunResult& b) {
  if (a.intervals.size() != b.intervals.size()) return false;
  for (std::size_t t = 0; t < a.intervals.size(); ++t) {
    const IntervalSnap& x = a.intervals[t];
    const IntervalSnap& y = b.intervals[t];
    if (x.report.pairs_total != y.report.pairs_total ||
        x.report.pairs_flagged != y.report.pairs_flagged ||
        x.report.ratings_adjusted != y.report.ratings_adjusted ||
        x.report.b1 != y.report.b1 || x.report.b2 != y.report.b2 ||
        x.report.b3 != y.report.b3 || x.report.b4 != y.report.b4 ||
        !bits_equal(x.report.mean_weight, y.report.mean_weight) ||
        x.report.flagged.size() != y.report.flagged.size()) {
      return false;
    }
    for (std::size_t i = 0; i < x.report.flagged.size(); ++i) {
      if (x.report.flagged[i].rater != y.report.flagged[i].rater ||
          x.report.flagged[i].ratee != y.report.flagged[i].ratee ||
          x.report.flagged[i].behavior != y.report.flagged[i].behavior ||
          !bits_equal(x.report.flagged[i].weight,
                      y.report.flagged[i].weight)) {
        return false;
      }
    }
    if (x.adjusted.size() != y.adjusted.size()) return false;
    for (std::size_t i = 0; i < x.adjusted.size(); ++i) {
      if (x.adjusted[i].rater != y.adjusted[i].rater ||
          x.adjusted[i].ratee != y.adjusted[i].ratee ||
          !bits_equal(x.adjusted[i].value, y.adjusted[i].value)) {
        return false;
      }
    }
    if (x.reputations.size() != y.reputations.size()) return false;
    for (std::size_t v = 0; v < x.reputations.size(); ++v) {
      if (!bits_equal(x.reputations[v], y.reputations[v])) return false;
    }
  }
  return true;
}

/// Largest absolute reputation deviation from the oracle, any interval.
double max_reputation_delta(const RunResult& a, const RunResult& oracle) {
  double worst = 0.0;
  for (std::size_t t = 0; t < a.intervals.size(); ++t) {
    const auto& x = a.intervals[t].reputations;
    const auto& y = oracle.intervals[t].reputations;
    for (std::size_t v = 0; v < x.size() && v < y.size(); ++v) {
      worst = std::max(worst, std::abs(x[v] - y[v]));
    }
  }
  return worst;
}

struct SyncRow {
  std::size_t shards = 0;
  std::size_t threads = 0;
  double wall_ms = 0.0;
  std::size_t cut_edges = 0;
  std::size_t pairs_remote = 0;
  std::uint64_t boundary_bytes = 0;
  bool identical = true;
};

struct GossipRow {
  std::size_t shards = 0;
  std::size_t rounds = 0;
  bool converged = true;
  double wall_ms = 0.0;
  std::uint64_t boundary_bytes = 0;
  double residual = 0.0;
  double rep_delta = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  st::util::CliArgs args(argc, argv);
  const st::bench::CommonFlags common =
      st::bench::parse_common_flags(args, "1,4", "1,2", 3, 1);
  const bool quick = common.quick;
  const std::size_t n = static_cast<std::size_t>(
      args.get_int("nodes", quick ? 5000 : 100000));
  const auto shard_counts = st::bench::parse_size_list(
      args.get_or("shards", quick ? "1,4" : "1,2,4,8"));
  const auto& thread_counts = common.threads;
  const std::size_t intervals = static_cast<std::size_t>(
      args.get_int("intervals", quick ? 2 : 3));
  const std::size_t reps = common.reps;
  const std::uint64_t seed = common.seed;
  const std::uint64_t shard_seed =
      args.get_u64("shard-seed", SocialTrustConfig{}.shard_seed);
  const auto gossip_points = static_cast<std::size_t>(
      args.get_int("gossip-points", 64));
  const unsigned hardware_threads =
      std::max(1U, std::thread::hardware_concurrency());

  std::cout << "=== bench_sharded_aggregation ===\n"
            << "(" << n << " nodes, " << intervals
            << " update intervals, min of " << reps
            << " reps; shard seed " << shard_seed
            << "; hardware threads: " << hardware_threads << ")\n\n";

  st::stats::Rng rng(seed);
  const Workload w = make_workload(n, rng);

  // Centralized oracle, serial: the reference every cell compares to.
  SocialTrustConfig central_cfg;
  central_cfg.threads = 1;
  const RunResult oracle = run_intervals(w, n, central_cfg, intervals, reps);
  const std::size_t pairs = oracle.intervals.back().report.pairs_total;
  std::cout << "centralized (threads=1): "
            << st::util::fmt(oracle.best_total_ms, 2) << " ms over "
            << intervals << " intervals, " << pairs << " pairs\n\n";

  // --- Synchronous exchange: the bit-identity matrix. ---
  std::vector<SyncRow> sync_rows;
  bool sync_identical = true;
  for (std::size_t shards : shard_counts) {
    for (std::size_t threads : thread_counts) {
      SocialTrustConfig cfg;
      cfg.threads = threads;
      cfg.aggregation = st::core::AggregationMode::kSharded;
      cfg.exchange = st::core::ExchangeSchedule::kSynchronous;
      cfg.shards = shards;
      cfg.shard_seed = shard_seed;
      const RunResult run = run_intervals(w, n, cfg, intervals, reps);
      SyncRow row;
      row.shards = shards;
      row.threads = threads;
      row.wall_ms = run.best_total_ms;
      row.cut_edges = run.stats.boundary_edges;
      row.pairs_remote = run.stats.pairs_remote;
      row.boundary_bytes = run.boundary_bytes;
      row.identical = runs_identical(run, oracle);
      sync_identical = sync_identical && row.identical;
      sync_rows.push_back(row);
    }
  }
  st::util::Table sync_table({"shards", "threads", "wall ms", "cut edges",
                              "remote pairs", "boundary MiB",
                              "bit-identical"});
  for (const SyncRow& r : sync_rows) {
    sync_table.add_row(
        {std::to_string(r.shards), std::to_string(r.threads),
         st::util::fmt(r.wall_ms, 2), std::to_string(r.cut_edges),
         std::to_string(r.pairs_remote),
         st::util::fmt(static_cast<double>(r.boundary_bytes) /
                           (1024.0 * 1024.0),
                       2),
         r.identical ? "yes" : "NO (BUG)"});
  }
  std::cout << "--- synchronous exchange vs centralized ---\n"
            << sync_table.to_string() << "\n";
  if (!sync_identical) {
    std::cout << "DETERMINISM VIOLATION: synchronous sharded aggregation "
                 "diverged from the centralized pipeline\n";
  }

  // --- Gossip exchange: epsilon convergence, sketch-bounded traffic. ---
  constexpr double kResidualEpsilon = 0.25;
  constexpr double kReputationEpsilon = 0.05;
  std::vector<GossipRow> gossip_rows;
  bool gossip_ok = true;
  const std::size_t gossip_threads = thread_counts.back();
  for (std::size_t shards : shard_counts) {
    if (shards < 2) continue;  // single shard has no boundary to gossip
    SocialTrustConfig cfg;
    cfg.threads = gossip_threads;
    cfg.aggregation = st::core::AggregationMode::kSharded;
    cfg.exchange = st::core::ExchangeSchedule::kGossip;
    cfg.shards = shards;
    cfg.shard_seed = shard_seed;
    cfg.gossip_summary_points = gossip_points;
    const RunResult run = run_intervals(w, n, cfg, intervals, reps);
    GossipRow row;
    row.shards = shards;
    row.rounds = run.rounds_last;
    row.converged = run.all_converged;
    row.wall_ms = run.best_total_ms;
    row.boundary_bytes = run.boundary_bytes;
    row.residual = run.max_residual;
    row.rep_delta = max_reputation_delta(run, oracle);
    gossip_ok = gossip_ok && row.converged &&
                row.residual < kResidualEpsilon &&
                row.rep_delta < kReputationEpsilon;
    gossip_rows.push_back(row);
  }
  if (!gossip_rows.empty()) {
    st::util::Table gossip_table({"shards", "rounds", "converged", "wall ms",
                                  "boundary KiB", "max residual",
                                  "max |rep delta|"});
    for (const GossipRow& r : gossip_rows) {
      gossip_table.add_row(
          {std::to_string(r.shards), std::to_string(r.rounds),
           r.converged ? "yes" : "NO",
           st::util::fmt(r.wall_ms, 2),
           st::util::fmt(static_cast<double>(r.boundary_bytes) / 1024.0, 1),
           st::util::fmt(r.residual, 6), st::util::fmt(r.rep_delta, 6)});
    }
    std::cout << "--- gossip exchange (threads=" << gossip_threads
              << ", sketch " << gossip_points << " points, epsilon "
              << st::util::fmt(kResidualEpsilon, 2) << ") ---\n"
              << gossip_table.to_string() << "\n";
    if (!gossip_ok) {
      std::cout << "CONVERGENCE VIOLATION: a gossip cell failed to "
                   "disseminate or left epsilon\n";
    }
  }

  if (auto json_path = args.get("json"); json_path && !json_path->empty()) {
    std::ofstream out(*json_path);
    if (!out) {
      std::cerr << "cannot open " << *json_path << " for writing\n";
      return 2;
    }
    out << "{\n  \"bench\": \"bench_sharded_aggregation\",\n"
        << "  \"seed\": " << seed << ",\n"
        << "  \"shard_seed\": " << shard_seed << ",\n"
        << "  \"nodes\": " << n << ",\n"
        << "  \"pairs\": " << pairs << ",\n"
        << "  \"intervals\": " << intervals << ",\n"
        << "  \"reps\": " << reps << ",\n"
        << "  \"hardware_threads\": " << hardware_threads << ",\n"
        << "  \"centralized_ms\": "
        << st::util::fmt(oracle.best_total_ms, 3) << ",\n"
        << "  \"sync_bit_identical\": "
        << (sync_identical ? "true" : "false") << ",\n"
        << "  \"gossip_within_epsilon\": " << (gossip_ok ? "true" : "false")
        << ",\n  \"sync\": [\n";
    for (std::size_t i = 0; i < sync_rows.size(); ++i) {
      const SyncRow& r = sync_rows[i];
      out << "    {\"shards\": " << r.shards << ", \"threads\": "
          << r.threads << ", \"wall_ms\": " << st::util::fmt(r.wall_ms, 3)
          << ", \"cut_edges\": " << r.cut_edges << ", \"pairs_remote\": "
          << r.pairs_remote << ", \"boundary_bytes\": " << r.boundary_bytes
          << ", \"bit_identical\": " << (r.identical ? "true" : "false")
          << "}" << (i + 1 < sync_rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"gossip\": [\n";
    for (std::size_t i = 0; i < gossip_rows.size(); ++i) {
      const GossipRow& r = gossip_rows[i];
      out << "    {\"shards\": " << r.shards << ", \"rounds\": " << r.rounds
          << ", \"converged\": " << (r.converged ? "true" : "false")
          << ", \"wall_ms\": " << st::util::fmt(r.wall_ms, 3)
          << ", \"boundary_bytes\": " << r.boundary_bytes
          << ", \"max_residual\": " << st::util::fmt(r.residual, 6)
          << ", \"max_rep_delta\": " << st::util::fmt(r.rep_delta, 6) << "}"
          << (i + 1 < gossip_rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "(json: " << *json_path << ")\n";
  }

  return sync_identical && gossip_ok ? 0 : 1;
}
