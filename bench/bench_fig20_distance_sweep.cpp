// Fig. 20: average colluder reputation vs the social distance between
// conspirators (1-3 hops), under EigenTrust+SocialTrust, for PCM, MCM and
// MMM, with the normal-node average for contrast.
//
// Paper shape: colluder reputations stay below normal nodes at every
// distance — keeping a "normal-looking" social distance does not rescue
// the attack, because SocialTrust also weighs interaction frequency and
// interest similarity.

#include "common.hpp"

int main(int argc, char** argv) {
  st::bench::Context ctx(argc, argv, "fig20_distance_sweep");
  st::util::Table table({"social hops", "colluders (PCM)", "colluders (MCM)",
                         "colluders (MMM)", "normal (PCM)", "normal (MCM)",
                         "normal (MMM)"});
  for (std::size_t distance = 1; distance <= 3; ++distance) {
    std::vector<std::string> row{std::to_string(distance)};
    std::vector<std::string> normal_cells;
    for (const std::string& model :
         {std::string("PCM"), std::string("MCM"), std::string("MMM")}) {
      st::collusion::CollusionOptions options;
      options.conspirator_distance = distance;
      auto agg = run_experiment(
          ctx.paper_config(0.6),
          st::bench::system_by_name("EigenTrust+SocialTrust"),
          st::bench::strategy_by_name(model, options));
      row.push_back(st::util::fmt(agg.colluder_mean.mean(), 6));
      normal_cells.push_back(st::util::fmt(agg.normal_mean.mean(), 6));
    }
    for (auto& cell : normal_cells) row.push_back(cell);
    table.add_row(row);
  }
  ctx.emit("by_distance", table);
  return 0;
}
