// Table 1: percentage of requests sent to colluders, for every collusion
// model (PCM/MCM/MMM), both colluder behaviours (B=0.2, B=0.6), and six
// system configurations — eBay, EigenTrust, EigenTrust with compromised
// pretrusted nodes ("(Pre)"), and each with SocialTrust.
//
// Paper shape: the baselines leak double-digit request shares to the
// colluders (more at B=0.6 and in the mutual models); every SocialTrust
// configuration pushes the share down to a few percent, compromised
// pretrusted nodes or not.

#include "common.hpp"

int main(int argc, char** argv) {
  st::bench::Context ctx(argc, argv, "table1_request_share");
  struct SystemSpec {
    std::string label;
    std::string factory;
    bool compromised;
  };
  const std::vector<SystemSpec> systems{
      {"eBay", "eBay", false},
      {"EigenTrust", "EigenTrust", false},
      {"EigenTrust (Pre)", "EigenTrust", true},
      {"eBay+SocialTrust", "eBay+SocialTrust", false},
      {"EigenTrust+SocialTrust", "EigenTrust+SocialTrust", false},
      {"EigenTrust+SocialTrust (Pre)", "EigenTrust+SocialTrust", true},
  };

  for (const std::string& model :
       {std::string("PCM"), std::string("MCM"), std::string("MMM")}) {
    ctx.heading("Table 1: " + model);
    st::util::Table table({"system", "B=0.2", "B=0.6"});
    for (const auto& spec : systems) {
      std::vector<std::string> row{spec.label};
      for (double b : {0.2, 0.6}) {
        st::collusion::CollusionOptions options;
        if (spec.compromised) options.compromised_pretrusted = 7;
        auto agg = run_experiment(
            ctx.paper_config(b), st::bench::system_by_name(spec.factory),
            st::bench::strategy_by_name(model, options));
        row.push_back(
            st::util::fmt(agg.colluder_share.mean() * 100.0, 1) + "%");
      }
      table.add_row(row);
    }
    ctx.emit(model, table);
  }
  return 0;
}
