// Extension experiment: negative-rating collusion ("Similar results can be
// obtained for the collusion of negative ratings", Section 5.1).
//
// A colluding group floods negative ratings at victims — either the
// pretrusted nodes or normal competitors sharing the attackers' interests.
// Measured: how much reputation the victims lose under each system.
// Expected shape: SocialTrust's B4 detector attenuates the high-frequency
// negative ratings, so the victims keep their standing.

#include "collusion/badmouthing.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  st::bench::Context ctx(argc, argv, "extension_badmouthing");

  for (bool target_pretrusted : {true, false}) {
    ctx.heading(std::string("victims: ") +
                (target_pretrusted ? "pretrusted nodes"
                                   : "normal competitors"));
    st::sim::StrategyFactory strategy = [target_pretrusted] {
      st::collusion::BadMouthingOptions options;
      options.target_pretrusted = target_pretrusted;
      return std::make_unique<st::collusion::BadMouthingCollusion>(options);
    };

    st::util::Table table({"system", "pretrusted mean", "normal mean",
                           "attacker mean"});
    for (const std::string& system :
         {std::string("eBay"), std::string("eBay+SocialTrust"),
          std::string("EigenTrust"), std::string("EigenTrust+SocialTrust")}) {
      auto agg = run_experiment(ctx.paper_config(0.6),
                                st::bench::system_by_name(system), strategy);
      table.add_row({system, st::util::fmt(agg.pretrusted_mean.mean(), 6),
                     st::util::fmt(agg.normal_mean.mean(), 6),
                     st::util::fmt(agg.colluder_mean.mean(), 6)});
    }
    ctx.emit(target_pretrusted ? "vs_pretrusted" : "vs_competitors", table);
  }
  return 0;
}
