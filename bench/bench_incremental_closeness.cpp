// Warm-vs-cold wall-clock of the SocialTrust update interval under a
// steady-state Section 5.1 workload, proving the persistent
// SocialStateCache (DESIGN.md §13) earns its keep: when only a small
// fraction of nodes mutate between intervals, the revision-validated
// cache serves most closeness/similarity lookups without redoing the
// BFS / friend-of-friend work, and the results stay bit-identical to a
// cold recompute.
//
// Protocol: one network, one recurring rating stream (peers keep rating
// their regular partners), and between intervals a small random subset
// of nodes mutates its social state (interactions, the odd interest
// request) — the steady state the paper's update interval lives in. Two
// plugins process the identical interval sequence: `warm` keeps its
// cache across intervals, `cold` has it wiped before every update(),
// i.e. the retired per-interval-memo behaviour. Interval 0 is the
// shared cold start and excluded from the steady-state aggregates.
//
// Flags:
//   --threads <list>    comma-separated worker counts     (default 1,4)
//   --nodes <list>      comma-separated node counts       (default 1000,10000)
//   --intervals <n>     update intervals per run          (default 8)
//   --churn <pct>       % of nodes mutating per interval  (default 8)
//   --rel-churn <pct>   % of nodes whose *relationships* are rewired per
//                       interval (friendships added and removed mid-run,
//                       default 0). Topology churn bumps structure
//                       revisions, so the cached common-friend sets and
//                       BFS paths actually miss — the adversarial preset
//                       for the structure layer's persistence bet.
//   --reps <n>          repetitions, min totals are kept  (default 2)
//   --json <path>       also write results as JSON (the
//                       BENCH_incremental_closeness.json artifact)
//   --quick             1000 nodes, 4 intervals, 1 rep, threads 1,2
//                       (the ctest smoke entry)
//   --seed <n>          workload seed                     (default 42)
//
// Exit code is non-zero if any warm interval is not bit-identical to
// its cold twin, if the steady-state cache hit rate falls below 80%,
// or (full runs only — --quick skips the timing gate to stay robust on
// loaded CI machines) if the steady-state speedup falls below 2x.
// With --rel-churn > 0 the hit-rate and speedup gates are reported but
// not enforced: rewiring the topology every interval deliberately
// defeats the structure layer's steady-state assumption, so the only
// hard claim left — and the one still gated — is bit-identity.

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/socialtrust.hpp"
#include "graph/generators.hpp"
#include "reputation/ebay.hpp"
#include "stats/rng.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using st::core::InterestProfiles;
using st::core::SocialStateCache;
using st::core::SocialTrustConfig;
using st::core::SocialTrustPlugin;
using st::graph::NodeId;
using st::graph::SocialGraph;
using st::reputation::Rating;

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

struct Workload {
  SocialGraph graph{1};
  InterestProfiles profiles{1, 1};
  std::vector<Rating> ratings;  ///< the recurring per-interval stream
};

/// Section 5.1-style network and a stable rating stream: a colluding
/// clique plus normal nodes rating direct neighbours, 2-hop neighbours
/// (friend-of-friend closeness, Eq. 3) and the occasional distant pair
/// (bottleneck path, Eq. 4) — the mix bench_parallel_update uses, kept
/// constant across intervals so steady-state reuse is measurable.
Workload make_workload(std::size_t n, st::stats::Rng& rng) {
  Workload w;
  // k = 6 (sparser than bench_parallel_update's 10): longer social
  // distances push more pairs onto the friend-of-friend and bottleneck
  // branches, which is where the cached BFS / set-intersection work
  // lives — the cost this bench is about.
  w.graph = st::graph::watts_strogatz(n, 6, 0.1, rng);
  w.profiles = InterestProfiles(n, 20);

  auto rate = [&](NodeId rater, NodeId ratee, double value,
                  std::size_t times) {
    for (std::size_t k = 0; k < times; ++k) {
      w.ratings.push_back(
          Rating{rater, ratee, value, 0, 0, st::reputation::kNoInterest});
    }
    w.graph.record_interaction(rater, ratee,
                               static_cast<double>(times));
  };

  for (NodeId v = 0; v < n; ++v) {
    std::vector<st::reputation::InterestId> interests;
    for (int k = 0; k < 3; ++k) {
      interests.push_back(
          static_cast<st::reputation::InterestId>(rng.index(20)));
    }
    w.profiles.set_interests(v, interests);
    for (auto interest : interests) {
      w.profiles.record_request(v, interest, rng.uniform(1.0, 10.0));
    }
  }

  std::size_t colluders = std::max<std::size_t>(2, n / 100) & ~std::size_t{1};
  for (NodeId c = 0; c + 1 < colluders; c += 2) {
    w.graph.add_relationship(c, c + 1, st::graph::Relationship::kKinship);
    w.graph.add_relationship(c, c + 1, st::graph::Relationship::kBusiness);
    rate(c, c + 1, 1.0, 20);
    rate(c + 1, c, 1.0, 20);
  }

  for (NodeId v = static_cast<NodeId>(colluders); v < n; ++v) {
    auto neighbors = w.graph.neighbors(v);
    if (neighbors.empty()) continue;
    for (int k = 0; k < 2; ++k) {
      NodeId peer = neighbors[rng.index(neighbors.size())];
      rate(v, peer, rng.bernoulli(0.85) ? 1.0 : -1.0, 1);
    }
    for (int k = 0; k < 2; ++k) {
      NodeId mid = neighbors[rng.index(neighbors.size())];
      auto second = w.graph.neighbors(mid);
      if (second.empty()) continue;
      NodeId hop2 = second[rng.index(second.size())];
      if (hop2 != v) rate(v, hop2, 1.0, 1);
    }
    // A fifth of the population also rates a distant stranger — the
    // Eq. 4 bottleneck-path branch whose BFS dominates a cold interval.
    if (rng.bernoulli(0.2)) {
      rate(v, static_cast<NodeId>(rng.index(n)), 1.0, 1);
    }
  }
  return w;
}

/// Mutates the social state of roughly `pct`% of the nodes — new
/// interactions towards existing neighbours, occasionally a fresh
/// interest request — and returns the exact count of distinct nodes
/// touched. Relationships are left alone: the topology only changes at
/// setup and on whitewashing in the simulator, and the structure layer
/// of the cache is exactly the bet that it rarely does.
std::size_t apply_churn(Workload& w, st::stats::Rng& rng, double pct) {
  const std::size_t n = w.graph.size();
  const auto target = static_cast<std::size_t>(
      static_cast<double>(n) * pct / 100.0);
  std::vector<bool> touched(n, false);
  std::size_t distinct = 0;
  for (std::size_t step = 0; step < target; ++step) {
    const auto v = static_cast<NodeId>(rng.index(n));
    auto neighbors = w.graph.neighbors(v);
    if (neighbors.empty()) continue;
    const NodeId peer = neighbors[rng.index(neighbors.size())];
    w.graph.record_interaction(v, peer, 1.0 + rng.uniform());
    if (rng.bernoulli(0.3)) {
      w.profiles.record_request(
          v, static_cast<st::reputation::InterestId>(rng.index(20)), 1.0);
    }
    if (!touched[v]) {
      touched[v] = true;
      ++distinct;
    }
  }
  return distinct;
}

/// Rewires the friendship topology around roughly `pct`% of the nodes:
/// each step picks a node and either drops the friendship to one of its
/// current neighbours or befriends a random stranger (alternating, so
/// the edge count stays roughly stable across a long run). Every flip
/// bumps both endpoints' structure revisions and the graph's structure
/// epoch, so cached common-friend sets, BFS paths, and the epoch-gated
/// value entries all genuinely miss — the scenario the steady-state
/// preset (apply_churn) deliberately avoids.
std::size_t apply_rel_churn(Workload& w, st::stats::Rng& rng, double pct) {
  const std::size_t n = w.graph.size();
  const auto target = static_cast<std::size_t>(
      static_cast<double>(n) * pct / 100.0);
  std::vector<bool> touched(n, false);
  std::size_t distinct = 0;
  for (std::size_t step = 0; step < target; ++step) {
    const auto v = static_cast<NodeId>(rng.index(n));
    bool flipped = false;
    if (step % 2 == 0) {
      auto neighbors = w.graph.neighbors(v);
      if (!neighbors.empty()) {
        const NodeId peer = neighbors[rng.index(neighbors.size())];
        flipped = w.graph.remove_relationship(
            v, peer, st::graph::Relationship::kFriendship);
      }
    } else {
      const auto u = static_cast<NodeId>(rng.index(n));
      if (u != v) {
        flipped = w.graph.add_relationship(
            v, u, st::graph::Relationship::kFriendship);
      }
    }
    if (flipped && !touched[v]) {
      touched[v] = true;
      ++distinct;
    }
  }
  return distinct;
}

/// Bit-for-bit identity of what the determinism contract covers: the
/// adjusted rating stream and the wrapped system's reputations.
bool outputs_identical(const SocialTrustPlugin& a,
                       const SocialTrustPlugin& b) {
  auto ra = a.last_adjusted();
  auto rb = b.last_adjusted();
  if (ra.size() != rb.size()) return false;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    if (ra[i].rater != rb[i].rater || ra[i].ratee != rb[i].ratee ||
        !bits_equal(ra[i].value, rb[i].value)) {
      return false;
    }
  }
  auto pa = a.reputations();
  auto pb = b.reputations();
  if (pa.size() != pb.size()) return false;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    if (!bits_equal(pa[i], pb[i])) return false;
  }
  return true;
}

struct Row {
  std::size_t nodes = 0;
  std::size_t pairs = 0;
  std::size_t threads = 0;
  std::size_t steady_intervals = 0;
  double churn_node_pct = 0.0;   ///< measured distinct-nodes-mutated share
  double cold_ms = 0.0;          ///< per steady-state interval
  double warm_ms = 0.0;          ///< per steady-state interval
  double speedup = 0.0;
  double hit_rate_pct = 0.0;     ///< value layer, steady-state intervals
  double structure_hit_rate_pct = 0.0;
  bool identical = true;
};

double timed_update(SocialTrustPlugin& plugin,
                    std::span<const Rating> ratings) {
  auto start = std::chrono::steady_clock::now();
  plugin.update(ratings);
  auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

/// One full interval sequence (fresh workload, fresh plugins) for one
/// (nodes, threads) configuration.
Row run_sequence(std::size_t n, std::size_t threads, std::size_t intervals,
                 double churn_pct, double rel_churn_pct,
                 std::uint64_t seed) {
  st::stats::Rng rng(seed);
  Workload w = make_workload(n, rng);

  SocialTrustConfig cfg;
  cfg.threads = threads;
  SocialTrustPlugin warm(std::make_unique<st::reputation::EbayReputation>(n),
                         w.graph, w.profiles, cfg);
  SocialTrustPlugin cold(std::make_unique<st::reputation::EbayReputation>(n),
                         w.graph, w.profiles, cfg);

  Row row;
  row.nodes = n;
  row.threads = threads;
  double cold_total = 0.0, warm_total = 0.0;
  std::size_t churn_nodes = 0;
  SocialStateCache::StatsSnapshot steady_base;
  for (std::size_t interval = 0; interval < intervals; ++interval) {
    if (interval > 0) {
      churn_nodes += apply_churn(w, rng, churn_pct);
      if (rel_churn_pct > 0.0) apply_rel_churn(w, rng, rel_churn_pct);
    }
    cold.social_cache().clear();  // the retired per-interval-memo regime
    // Alternate which plugin runs first so neither systematically
    // benefits from CPU caches warmed by the other.
    double cold_ms = 0.0, warm_ms = 0.0;
    if (interval % 2 == 0) {
      cold_ms = timed_update(cold, w.ratings);
      warm_ms = timed_update(warm, w.ratings);
    } else {
      warm_ms = timed_update(warm, w.ratings);
      cold_ms = timed_update(cold, w.ratings);
    }
    row.identical = row.identical && outputs_identical(cold, warm);
    if (interval == 0) {
      steady_base = warm.social_cache().stats();
    } else {
      cold_total += cold_ms;
      warm_total += warm_ms;
    }
  }
  row.pairs = warm.last_report().pairs_total;
  row.steady_intervals = intervals > 1 ? intervals - 1 : 0;
  if (row.steady_intervals > 0) {
    const auto steady = static_cast<double>(row.steady_intervals);
    row.cold_ms = cold_total / steady;
    row.warm_ms = warm_total / steady;
    row.speedup = warm_total > 0.0 ? cold_total / warm_total : 0.0;
    row.churn_node_pct = 100.0 *
                         static_cast<double>(churn_nodes) / steady /
                         static_cast<double>(n);
    const auto stats = warm.social_cache().stats();
    const auto hits = static_cast<double>(stats.hits - steady_base.hits);
    const auto misses =
        static_cast<double>(stats.misses - steady_base.misses);
    const auto shits =
        static_cast<double>(stats.structure_hits - steady_base.structure_hits);
    const auto smisses = static_cast<double>(stats.structure_misses -
                                             steady_base.structure_misses);
    row.hit_rate_pct =
        hits + misses > 0.0 ? 100.0 * hits / (hits + misses) : 0.0;
    row.structure_hit_rate_pct =
        shits + smisses > 0.0 ? 100.0 * shits / (shits + smisses) : 0.0;
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  st::util::CliArgs args(argc, argv);
  const st::bench::CommonFlags common =
      st::bench::parse_common_flags(args, "1,4", "1,2", 2, 1);
  const bool quick = common.quick;
  auto node_counts = st::bench::parse_size_list(
      args.get_or("nodes", quick ? "1000" : "1000,10000"));
  const auto& thread_counts = common.threads;
  const auto intervals = static_cast<std::size_t>(
      args.get_int("intervals", quick ? 4 : 8));
  const std::size_t reps = common.reps;
  const double churn_pct =
      static_cast<double>(args.get_int("churn", 8));
  const double rel_churn_pct =
      static_cast<double>(args.get_int("rel-churn", 0));
  const std::uint64_t seed = common.seed;

  std::cout << "=== bench_incremental_closeness ===\n"
            << "(warm = persistent SocialStateCache, cold = cache wiped "
               "every interval;\n " << intervals << " intervals, interval 0 "
            << "excluded as cold start, churn " << churn_pct
            << "% of nodes/interval,\n relationship churn " << rel_churn_pct
            << "% of nodes/interval, min of " << reps
            << " reps; hardware threads: "
            << std::thread::hardware_concurrency() << ")\n\n";

  std::vector<Row> rows;
  for (std::size_t n : node_counts) {
    for (std::size_t threads : thread_counts) {
      Row best;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        Row row = run_sequence(n, threads, intervals, churn_pct,
                               rel_churn_pct, seed);
        if (rep == 0) {
          best = row;
        } else {
          // Identity and hit rate are deterministic per seed; only the
          // wall-clock varies, so keep the quietest rep of each side.
          best.identical = best.identical && row.identical;
          best.cold_ms = std::min(best.cold_ms, row.cold_ms);
          best.warm_ms = std::min(best.warm_ms, row.warm_ms);
          best.speedup =
              best.warm_ms > 0.0 ? best.cold_ms / best.warm_ms : 0.0;
        }
      }
      rows.push_back(best);
    }
  }

  st::util::Table table({"nodes", "pairs", "threads", "cold ms", "warm ms",
                         "speedup", "hit rate", "struct hits", "identical"});
  for (const Row& r : rows) {
    table.add_row({std::to_string(r.nodes), std::to_string(r.pairs),
                   std::to_string(r.threads), st::util::fmt(r.cold_ms, 2),
                   st::util::fmt(r.warm_ms, 2), st::util::fmt(r.speedup, 2),
                   st::util::fmt(r.hit_rate_pct, 1) + "%",
                   st::util::fmt(r.structure_hit_rate_pct, 1) + "%",
                   r.identical ? "yes" : "NO (BUG)"});
  }
  std::cout << table.to_string() << "\n";

  bool all_identical = true;
  bool hit_rate_ok = true;
  bool speedup_ok = true;
  for (const Row& r : rows) {
    all_identical = all_identical && r.identical;
    hit_rate_ok = hit_rate_ok && r.hit_rate_pct >= 80.0;
    speedup_ok = speedup_ok && r.speedup >= 2.0;
  }
  // Topology churn deliberately defeats the structure layer's
  // steady-state assumption, so under --rel-churn the performance gates
  // become informational; bit-identity stays a hard gate regardless.
  const bool perf_gated = rel_churn_pct <= 0.0;
  if (!all_identical) {
    std::cout << "BIT-IDENTITY VIOLATION: warm cache changed the adjusted "
                 "ratings or reputations\n";
  }
  if (!hit_rate_ok) {
    std::cout << (perf_gated
                      ? "HIT RATE BELOW TARGET: steady-state cache hit rate "
                        "under 80%\n"
                      : "note: steady-state cache hit rate under 80% (not "
                        "gated under --rel-churn)\n");
  }
  if (!speedup_ok) {
    std::cout << (!perf_gated
                      ? "note: steady-state speedup under 2x (not gated "
                        "under --rel-churn)\n"
                  : quick ? "note: steady-state speedup under 2x (not gated "
                            "in --quick)\n"
                          : "SPEEDUP BELOW TARGET: steady-state speedup "
                            "under 2x\n");
  }

  if (auto json_path = args.get("json"); json_path && !json_path->empty()) {
    std::ofstream out(*json_path);
    if (!out) {
      std::cerr << "cannot open " << *json_path << " for writing\n";
      return 2;
    }
    out << "{\n  \"bench\": \"bench_incremental_closeness\",\n"
        << "  \"seed\": " << seed << ",\n  \"reps\": " << reps
        << ",\n  \"intervals\": " << intervals
        << ",\n  \"churn_pct\": " << st::util::fmt(churn_pct, 1)
        << ",\n  \"rel_churn_pct\": " << st::util::fmt(rel_churn_pct, 1)
        << ",\n  \"hardware_threads\": "
        << std::thread::hardware_concurrency()
        << ",\n  \"warm_bit_identical_to_cold\": "
        << (all_identical ? "true" : "false") << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      out << "    {\"nodes\": " << r.nodes << ", \"pairs\": " << r.pairs
          << ", \"threads\": " << r.threads
          << ", \"steady_intervals\": " << r.steady_intervals
          << ", \"churn_node_pct\": " << st::util::fmt(r.churn_node_pct, 2)
          << ", \"cold_ms_per_interval\": " << st::util::fmt(r.cold_ms, 3)
          << ", \"warm_ms_per_interval\": " << st::util::fmt(r.warm_ms, 3)
          << ", \"speedup\": " << st::util::fmt(r.speedup, 3)
          << ", \"hit_rate_pct\": " << st::util::fmt(r.hit_rate_pct, 2)
          << ", \"structure_hit_rate_pct\": "
          << st::util::fmt(r.structure_hit_rate_pct, 2) << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "(json: " << *json_path << ")\n";
  }

  if (!all_identical) return 1;
  if (perf_gated && !hit_rate_ok) return 1;
  if (perf_gated && !quick && !speedup_ok) return 1;
  return 0;
}
