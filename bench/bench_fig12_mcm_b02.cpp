// Fig. 12: MCM with B = 0.2. Paper shape: with low-QoS boosting nodes the
// rating weights stay negligible, so even the boosted nodes stay low under
// EigenTrust; eBay's unweighted votes leave them slightly higher;
// SocialTrust suppresses further.
#include "common.hpp"

int main(int argc, char** argv) {
  st::bench::Context ctx(argc, argv, "fig12_mcm_b02");
  st::bench::collusion_figure(ctx, "Fig12", "MCM", {}, 0.2,
                              {"EigenTrust", "eBay", "EigenTrust+SocialTrust",
                               "eBay+SocialTrust"});
  return 0;
}
