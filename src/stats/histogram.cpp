#include "stats/histogram.hpp"

#include <algorithm>
#include <stdexcept>

namespace st::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: require hi > lo");
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

void Histogram::add(double x) noexcept {
  auto raw = static_cast<long>((x - lo_) / width_);
  std::size_t b =
      raw < 0 ? 0
              : std::min(static_cast<std::size_t>(raw), counts_.size() - 1);
  ++counts_[b];
  ++total_;
}

void Histogram::add(std::span<const double> xs) noexcept {
  for (double x : xs) add(x);
}

double Histogram::bin_center(std::size_t b) const noexcept {
  return lo_ + (static_cast<double>(b) + 0.5) * width_;
}

double Histogram::bin_lower(std::size_t b) const noexcept {
  return lo_ + static_cast<double>(b) * width_;
}

double Histogram::density(std::size_t b) const noexcept {
  return total_ == 0 ? 0.0
                     : static_cast<double>(counts_[b]) /
                           static_cast<double>(total_);
}

double Histogram::cumulative(std::size_t b) const noexcept {
  if (total_ == 0) return 0.0;
  std::size_t acc = 0;
  for (std::size_t i = 0; i <= b && i < counts_.size(); ++i)
    acc += counts_[i];
  return static_cast<double>(acc) / static_cast<double>(total_);
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> values) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<CdfPoint> cdf;
  cdf.reserve(sorted.size());
  const auto n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    double v = sorted[i];
    double cum = static_cast<double>(i + 1) / n;
    if (!cdf.empty() && cdf.back().value == v) {
      cdf.back().cumulative = cum;  // collapse duplicate x values
    } else {
      cdf.push_back({v, cum});
    }
  }
  return cdf;
}

double cdf_at(std::span<const CdfPoint> cdf, double x) noexcept {
  double result = 0.0;
  for (const auto& p : cdf) {
    if (p.value > x) break;
    result = p.cumulative;
  }
  return result;
}

}  // namespace st::stats
