#pragma once
// Samplers for the skewed distributions the paper's workloads rely on.
//
// Section 3 of the paper observes that per-category purchase counts follow a
// power law (Fig. 4(a)) and Section 5.1 specifies that "the frequency at
// which a node requests resources in its interests conforms to a power law
// distribution". ZipfDistribution and the bounded Pareto sampler implement
// those workloads; DiscreteDistribution (alias method) supports arbitrary
// empirical weights in O(1) per sample.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "stats/rng.hpp"

namespace st::stats {

/// Zipf(s) over ranks {0, 1, ..., n-1}: P(rank k) proportional to
/// 1 / (k+1)^s. Sampling is O(1) via a precomputed inverse CDF table,
/// built once in O(n).
class ZipfDistribution {
 public:
  /// Precondition: n > 0, exponent > 0.
  ZipfDistribution(std::size_t n, double exponent);

  /// Draws one rank in [0, n).
  std::size_t operator()(Rng& rng) const noexcept;

  std::size_t size() const noexcept { return cdf_.size(); }
  double exponent() const noexcept { return exponent_; }

  /// Probability mass of rank k.
  double pmf(std::size_t k) const noexcept;

 private:
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k)
  double exponent_;
};

/// Bounded Pareto: continuous power-law on [lo, hi] with density
/// proportional to x^-(alpha+1). Used for heavy-tailed per-user activity.
class BoundedPareto {
 public:
  /// Preconditions: 0 < lo < hi, alpha > 0.
  BoundedPareto(double lo, double hi, double alpha);

  double operator()(Rng& rng) const noexcept;

  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }
  double alpha() const noexcept { return alpha_; }

 private:
  double lo_, hi_, alpha_;
  double lo_pow_, hi_pow_;  // lo^-alpha, hi^-alpha, cached
};

/// Arbitrary discrete distribution sampled in O(1) with Walker's alias
/// method. Weights need not be normalised; they must be non-negative with a
/// positive sum.
class DiscreteDistribution {
 public:
  explicit DiscreteDistribution(std::span<const double> weights);

  /// Draws one index in [0, weights.size()).
  std::size_t operator()(Rng& rng) const noexcept;

  std::size_t size() const noexcept { return prob_.size(); }

  /// Normalised probability of index k (for testing / introspection).
  double probability(std::size_t k) const noexcept { return norm_[k]; }

 private:
  std::vector<double> prob_;        // alias-table acceptance probabilities
  std::vector<std::size_t> alias_;  // alias targets
  std::vector<double> norm_;        // normalised input weights
};

}  // namespace st::stats
