#pragma once
// Histogram and empirical-CDF helpers for reproducing the paper's
// distribution plots (Fig. 4(a) category-rank CDF, Fig. 4(b) interest-
// similarity transaction CDF, and the reputation-distribution figures).

#include <cstddef>
#include <span>
#include <vector>

namespace st::stats {

/// Fixed-width binned histogram over [lo, hi]. Values outside the range are
/// clamped into the first/last bin so no sample is silently dropped.
class Histogram {
 public:
  /// Preconditions: bins > 0, hi > lo.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  void add(std::span<const double> xs) noexcept;

  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bin) const noexcept { return counts_[bin]; }
  std::size_t total() const noexcept { return total_; }

  /// Centre of bin b.
  double bin_center(std::size_t b) const noexcept;
  /// Lower edge of bin b.
  double bin_lower(std::size_t b) const noexcept;

  /// Fraction of samples in bin b (0 when empty).
  double density(std::size_t b) const noexcept;

  /// Cumulative fraction of samples in bins [0, b].
  double cumulative(std::size_t b) const noexcept;

 private:
  double lo_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// One point of an empirical CDF.
struct CdfPoint {
  double value;       ///< sample value (x axis)
  double cumulative;  ///< P(X <= value)   (y axis)
};

/// Builds the full empirical CDF of `values` (sorted, deduplicated x).
std::vector<CdfPoint> empirical_cdf(std::span<const double> values);

/// Evaluates an empirical CDF at x (step interpolation).
double cdf_at(std::span<const CdfPoint> cdf, double x) noexcept;

}  // namespace st::stats
