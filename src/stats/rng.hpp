#pragma once
// Deterministic pseudo-random number generation for all SocialTrust
// experiments.
//
// Every source of randomness in the library flows through st::stats::Rng so
// that a single 64-bit seed reproduces an entire experiment bit-for-bit.
// The generator is PCG32 (pcg_oneseq_64 with XSH-RR output), chosen for its
// small state (16 bytes), statistical quality, and cheap stream splitting —
// multi-run experiment harnesses derive one independent stream per run.

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace st::stats {

/// Permuted congruential generator (PCG32, XSH-RR variant).
///
/// Satisfies the C++ UniformRandomBitGenerator concept so it can be used
/// with <random> distributions, but the convenience members below are
/// preferred: they are guaranteed stable across standard-library versions,
/// which `std::uniform_int_distribution` is not.
class Rng {
 public:
  using result_type = std::uint32_t;

  /// Seeds the generator. Two Rng instances with the same (seed, stream)
  /// produce identical sequences on every platform.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 32-bit output.
  result_type operator()() noexcept { return next_u32(); }

  result_type next_u32() noexcept;
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in the closed range [lo, hi]. Uses Lemire rejection
  /// so results are unbiased and platform-independent.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform integer in the closed range [lo, hi] (signed convenience).
  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform index in [0, n). Precondition: n > 0.
  std::size_t index(std::size_t n) noexcept;

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// Standard normal via Box–Muller (no cached spare: keeps state minimal).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate) noexcept;

  /// Fisher–Yates shuffle of a span in place.
  template <typename T>
  void shuffle(std::span<T> values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Picks one element uniformly. Precondition: non-empty.
  template <typename T>
  const T& pick(std::span<const T> values) noexcept {
    return values[index(values.size())];
  }

  /// Samples k distinct indices from [0, n) uniformly without replacement
  /// (partial Fisher–Yates; O(n) memory, O(n) time).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Derives an independent generator for sub-task `salt`. Streams derived
  /// with distinct salts from the same parent are statistically independent.
  Rng split(std::uint64_t salt) noexcept;

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace st::stats
