#pragma once
// Correlation measures used by the trace analysis (Section 3 of the paper).
//
// The paper quantifies the "strength of the linear association" between a
// user's reputation and business-network size with
//   C = s_xy^2 / (s_xx * s_yy),
// i.e. the *squared* Pearson coefficient (their reported C = 0.996 for
// Fig. 1(a) and C = 0.092 for Fig. 2). We expose both the paper's C and the
// plain Pearson r.

#include <span>

namespace st::stats {

/// Pearson correlation coefficient r in [-1, 1]. Returns 0 when either
/// series is constant or the series are shorter than 2 samples.
double pearson(std::span<const double> x, std::span<const double> y) noexcept;

/// The paper's correlation statistic C = s_xy^2 / (s_xx s_yy) = r^2,
/// in [0, 1].
double paper_correlation(std::span<const double> x,
                         std::span<const double> y) noexcept;

/// Least-squares slope of y on x (0 when x is constant).
double linear_slope(std::span<const double> x,
                    std::span<const double> y) noexcept;

}  // namespace st::stats
