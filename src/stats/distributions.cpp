#include "stats/distributions.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace st::stats {

ZipfDistribution::ZipfDistribution(std::size_t n, double exponent)
    : exponent_(exponent) {
  if (n == 0) throw std::invalid_argument("ZipfDistribution: n must be > 0");
  if (exponent <= 0.0)
    throw std::invalid_argument("ZipfDistribution: exponent must be > 0");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += std::pow(static_cast<double>(k + 1), -exponent);
    cdf_[k] = acc;
  }
  for (double& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfDistribution::operator()(Rng& rng) const noexcept {
  double u = rng.uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfDistribution::pmf(std::size_t k) const noexcept {
  if (k >= cdf_.size()) return 0.0;
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

BoundedPareto::BoundedPareto(double lo, double hi, double alpha)
    : lo_(lo), hi_(hi), alpha_(alpha) {
  if (!(lo > 0.0) || !(hi > lo))
    throw std::invalid_argument("BoundedPareto: require 0 < lo < hi");
  if (!(alpha > 0.0))
    throw std::invalid_argument("BoundedPareto: require alpha > 0");
  lo_pow_ = std::pow(lo_, -alpha_);
  hi_pow_ = std::pow(hi_, -alpha_);
}

double BoundedPareto::operator()(Rng& rng) const noexcept {
  // Inverse-CDF of the bounded Pareto.
  double u = rng.uniform();
  double x = u * hi_pow_ + (1.0 - u) * lo_pow_;
  return std::pow(x, -1.0 / alpha_);
}

DiscreteDistribution::DiscreteDistribution(std::span<const double> weights) {
  if (weights.empty())
    throw std::invalid_argument("DiscreteDistribution: empty weights");
  double sum = 0.0;
  for (double w : weights) {
    if (w < 0.0)
      throw std::invalid_argument("DiscreteDistribution: negative weight");
    sum += w;
  }
  if (sum <= 0.0)
    throw std::invalid_argument("DiscreteDistribution: zero total weight");

  const std::size_t n = weights.size();
  norm_.resize(n);
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Walker/Vose alias construction: split scaled probabilities into
  // "small" (< 1) and "large" (>= 1) worklists and pair them up.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    norm_[i] = weights[i] / sum;
    scaled[i] = norm_[i] * static_cast<double>(n);
  }
  std::vector<std::size_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    std::size_t s = small.back();
    small.pop_back();
    std::size_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (std::size_t i : large) prob_[i] = 1.0;
  for (std::size_t i : small) prob_[i] = 1.0;  // numerical leftovers
}

std::size_t DiscreteDistribution::operator()(Rng& rng) const noexcept {
  std::size_t column = rng.index(prob_.size());
  return rng.uniform() < prob_[column] ? column : alias_[column];
}

}  // namespace st::stats
