#include "stats/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace st::stats {

namespace {

struct Moments {
  double sxx = 0.0, syy = 0.0, sxy = 0.0;
  bool valid = false;
};

Moments central_moments(std::span<const double> x,
                        std::span<const double> y) noexcept {
  Moments m;
  std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return m;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    double dx = x[i] - mx;
    double dy = y[i] - my;
    m.sxx += dx * dx;
    m.syy += dy * dy;
    m.sxy += dx * dy;
  }
  m.valid = m.sxx > 0.0 && m.syy > 0.0;
  return m;
}

}  // namespace

double pearson(std::span<const double> x,
               std::span<const double> y) noexcept {
  Moments m = central_moments(x, y);
  if (!m.valid) return 0.0;
  return m.sxy / std::sqrt(m.sxx * m.syy);
}

double paper_correlation(std::span<const double> x,
                         std::span<const double> y) noexcept {
  Moments m = central_moments(x, y);
  if (!m.valid) return 0.0;
  return (m.sxy * m.sxy) / (m.sxx * m.syy);
}

double linear_slope(std::span<const double> x,
                    std::span<const double> y) noexcept {
  Moments m = central_moments(x, y);
  if (!m.valid || m.sxx == 0.0) return 0.0;
  return m.sxy / m.sxx;
}

}  // namespace st::stats
