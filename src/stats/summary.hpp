#pragma once
// Streaming summary statistics and confidence intervals.
//
// The paper reports every experiment as the mean of 5 runs with a 95%
// confidence interval (Section 5.1); Accumulator + confidence_interval95
// implement exactly that reporting path.

#include <cstddef>
#include <span>

namespace st::stats {

/// Streaming mean/variance/min/max via Welford's algorithm. Numerically
/// stable for long simulations; merging supports parallel reduction.
class Accumulator {
 public:
  void add(double x) noexcept;

  /// Merges another accumulator (parallel-reduction step) using the
  /// Chan et al. pairwise update.
  void merge(const Accumulator& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Symmetric 95% confidence interval half-width for the mean of the
/// accumulated samples, using Student-t critical values for small n
/// (the paper's experiments use n = 5 runs).
double confidence_interval95(const Accumulator& acc) noexcept;

/// Convenience: accumulate a whole span.
Accumulator summarize(std::span<const double> values) noexcept;

/// Mean of a span (0 for empty input).
double mean_of(std::span<const double> values) noexcept;

/// p-th percentile (p in [0,100]) with linear interpolation between order
/// statistics. Copies and sorts internally; 0 for empty input.
double percentile(std::span<const double> values, double p);

}  // namespace st::stats
