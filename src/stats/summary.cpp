#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace st::stats {

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  auto na = static_cast<double>(n_);
  auto nb = static_cast<double>(other.n_);
  double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double Accumulator::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double confidence_interval95(const Accumulator& acc) noexcept {
  if (acc.count() < 2) return 0.0;
  // Two-sided 97.5% Student-t critical values for df = 1..30; beyond that
  // the normal approximation (1.96) is within 2%.
  static constexpr double kT975[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  std::size_t df = acc.count() - 1;
  double t = df <= 30 ? kT975[df - 1] : 1.96;
  return t * acc.stddev() / std::sqrt(static_cast<double>(acc.count()));
}

Accumulator summarize(std::span<const double> values) noexcept {
  Accumulator acc;
  for (double v : values) acc.add(v);
  return acc;
}

double mean_of(std::span<const double> values) noexcept {
  return summarize(values).mean();
}

double percentile(std::span<const double> values, double p) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

}  // namespace st::stats
