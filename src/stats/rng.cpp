#include "stats/rng.hpp"

#include <cmath>
#include <numbers>

namespace st::stats {

namespace {
constexpr std::uint64_t kMultiplier = 6364136223846793005ULL;
}  // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream) noexcept
    : state_(0), inc_((stream << 1U) | 1U) {
  // Standard PCG initialisation: advance once, add the seed, advance again.
  next_u32();
  state_ += seed;
  next_u32();
}

Rng::result_type Rng::next_u32() noexcept {
  std::uint64_t old = state_;
  state_ = old * kMultiplier + inc_;
  auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18U) ^ old) >> 27U);
  auto rot = static_cast<std::uint32_t>(old >> 59U);
  return (xorshifted >> rot) | (xorshifted << ((32U - rot) & 31U));
}

std::uint64_t Rng::next_u64() noexcept {
  std::uint64_t hi = next_u32();
  return (hi << 32U) | next_u32();
}

double Rng::uniform() noexcept {
  // 53 random bits -> double in [0, 1) with full mantissa resolution.
  return static_cast<double>(next_u64() >> 11U) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept {
  std::uint64_t range = hi - lo + 1;  // hi == UINT64_MAX && lo == 0 -> 0
  if (range == 0) return next_u64();
  // Lemire's multiply-shift rejection method (64-bit variant).
  while (true) {
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * range;
    auto low = static_cast<std::uint64_t>(m);
    if (low >= range) return lo + static_cast<std::uint64_t>(m >> 64U);
    // Reject the biased low region.
    std::uint64_t threshold = (0ULL - range) % range;
    if (low >= threshold) return lo + static_cast<std::uint64_t>(m >> 64U);
  }
}

std::int64_t Rng::uniform_i64(std::int64_t lo, std::int64_t hi) noexcept {
  auto span = static_cast<std::uint64_t>(hi - lo);
  return lo + static_cast<std::int64_t>(uniform_u64(0, span));
}

std::size_t Rng::index(std::size_t n) noexcept {
  return static_cast<std::size_t>(uniform_u64(0, n - 1));
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() noexcept {
  // Box–Muller; u clamped away from zero so log() stays finite.
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  double v = uniform();
  return std::sqrt(-2.0 * std::log(u)) *
         std::cos(2.0 * std::numbers::pi * v);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) noexcept {
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / rate;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  if (k > n) k = n;
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + index(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

Rng Rng::split(std::uint64_t salt) noexcept {
  // Mix the salt through splitmix64 so adjacent salts yield unrelated
  // (seed, stream) pairs.
  auto mix = [](std::uint64_t z) {
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30U)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27U)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31U);
  };
  std::uint64_t s = mix(next_u64() ^ mix(salt));
  std::uint64_t t = mix(s ^ 0xa02bdbf7bb3c0a7ULL);
  return Rng(s, t);
}

}  // namespace st::stats
