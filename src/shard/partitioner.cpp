#include "shard/partitioner.hpp"

#include <algorithm>

namespace st::shard {

std::uint64_t mix64(std::uint64_t x) noexcept {
  // splitmix64 finalizer (Steele, Lea, Flood 2014) — a fixed, portable
  // bijection; no platform or standard-library dependence.
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30U)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27U)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31U);
}

Partition partition_graph(const graph::SocialGraph& g, std::size_t shards,
                          std::uint64_t seed) {
  Partition part;
  part.shards = std::clamp<std::size_t>(shards, 1, 64);
  const std::size_t n = g.size();
  part.owner.resize(n);
  part.local_index.resize(n, 0);

  // Phase 1: interned-ID hashing. Stable under churn by construction —
  // owner(v) reads nothing but (v, seed).
  std::vector<std::size_t> shard_size(part.shards, 0);
  for (NodeId v = 0; v < n; ++v) {
    const auto s = static_cast<std::uint32_t>(
        mix64(static_cast<std::uint64_t>(v) ^ seed) % part.shards);
    part.owner[v] = s;
    ++shard_size[s];
  }

  // Phase 2: deterministic edge-cut refinement over the partition views.
  // Ascending node order, sizes updated as moves happen, so the outcome
  // is a pure function of the inputs. The balance cap keeps every shard
  // within 110% of the ideal size (plus one, so tiny graphs can move at
  // all).
  if (part.shards > 1 && n > 0) {
    const std::size_t cap = (n + part.shards - 1) / part.shards +
                            (n / part.shards) / 10 + 1;
    std::vector<std::size_t> tally(part.shards, 0);
    // Two passes are enough to absorb the bulk of the hash assignment's
    // cut; more passes trade partition time for marginal gains.
    for (int pass = 0; pass < 2; ++pass) {
      std::vector<NodeId> ids(n);
      for (NodeId v = 0; v < n; ++v) ids[v] = v;
      const auto view = g.partition_view(ids);
      for (std::size_t k = 0; k < view.size(); ++k) {
        const auto row = view.row(k);
        if (row.neighbors.empty()) continue;
        for (NodeId b : row.neighbors) ++tally[part.owner[b]];
        const std::uint32_t cur = part.owner[row.node];
        std::uint32_t best = cur;
        for (std::uint32_t s = 0; s < part.shards; ++s) {
          if (tally[s] > tally[best]) best = s;  // ties keep the lowest id
        }
        if (best != cur && tally[best] > tally[cur] &&
            shard_size[best] + 1 <= cap) {
          part.owner[row.node] = best;
          --shard_size[cur];
          ++shard_size[best];
        }
        for (NodeId b : row.neighbors) tally[part.owner[b]] = 0;
        tally[cur] = 0;
        tally[best] = 0;
      }
    }
  }

  // Derived structures: ascending member lists, local ranks, cut size.
  part.members.resize(part.shards);
  for (std::size_t s = 0; s < part.shards; ++s) {
    part.members[s].reserve(shard_size[s]);
  }
  for (NodeId v = 0; v < n; ++v) {
    auto& m = part.members[part.owner[v]];
    part.local_index[v] = static_cast<std::uint32_t>(m.size());
    m.push_back(v);
  }
  part.cut_edges = g.boundary_edges(part.owner).size();
  part.total_edges = g.edge_count();
  return part;
}

}  // namespace st::shard
