#include "shard/gossip_exchange.hpp"

#include <algorithm>

#include "shard/partitioner.hpp"

namespace st::shard {

namespace {

std::uint64_t full_mask(std::size_t shards) {
  return shards >= 64 ? ~std::uint64_t{0}
                      : (std::uint64_t{1} << shards) - 1U;
}

bool all_know_all(const std::vector<std::uint64_t>& known,
                  std::uint64_t full) {
  for (std::uint64_t k : known) {
    if ((k & full) != full) return false;
  }
  return true;
}

}  // namespace

GossipExchange::GossipExchange(std::size_t shards, std::uint64_t seed,
                               std::size_t max_rounds)
    : shards_(std::clamp<std::size_t>(shards, 1, 64)),
      seed_(seed),
      max_rounds_(max_rounds == 0 ? 4 * shards_ + 8 : max_rounds) {}

std::vector<std::uint32_t> GossipExchange::round_order(
    std::size_t round) const {
  std::vector<std::uint32_t> order(shards_);
  for (std::size_t i = 0; i < shards_; ++i) {
    order[i] = static_cast<std::uint32_t>(i);
  }
  // Fisher-Yates driven by a per-round splitmix chain. The state is a
  // pure function of (seed, round, step) — re-running any round yields
  // the same pairing on every platform.
  std::uint64_t state = mix64(seed_ ^ (0x9E3779B97F4A7C15ULL * (round + 1)));
  for (std::size_t i = shards_; i > 1; --i) {
    state = mix64(state);
    const std::size_t j = static_cast<std::size_t>(state % i);
    std::swap(order[i - 1], order[j]);
  }
  return order;
}

ExchangeStats GossipExchange::run_synchronous(
    std::span<const std::uint64_t> summary_bytes,
    std::vector<std::uint64_t>& known_out) const {
  ExchangeStats stats;
  const std::uint64_t full = full_mask(shards_);
  known_out.assign(shards_, 0);
  for (std::size_t s = 0; s < shards_; ++s) known_out[s] = full;
  stats.rounds = shards_ > 1 ? 1 : 0;
  stats.converged = true;
  // All-gather cost model: each shard sends its own summary to the other
  // S-1 shards.
  for (std::size_t s = 0; s < shards_ && s < summary_bytes.size(); ++s) {
    stats.boundary_bytes += summary_bytes[s] * (shards_ - 1);
  }
  stats.messages =
      shards_ > 1 ? static_cast<std::uint64_t>(shards_) * (shards_ - 1) : 0;
  return stats;
}

ExchangeStats GossipExchange::run_gossip(
    std::span<const std::uint64_t> summary_bytes,
    std::vector<std::uint64_t>& known_out) const {
  ExchangeStats stats;
  const std::uint64_t full = full_mask(shards_);
  known_out.assign(shards_, 0);
  for (std::size_t s = 0; s < shards_; ++s) {
    known_out[s] = std::uint64_t{1} << s;
  }
  if (shards_ <= 1) {
    stats.converged = true;
    return stats;
  }
  const auto bytes_of = [&summary_bytes](std::size_t s) -> std::uint64_t {
    return s < summary_bytes.size() ? summary_bytes[s] : 0;
  };
  for (std::size_t round = 0; round < max_rounds_; ++round) {
    const auto order = round_order(round);
    for (std::size_t i = 0; i + 1 < order.size(); i += 2) {
      const std::uint32_t a = order[i];
      const std::uint32_t b = order[i + 1];
      // Each side ships only the summaries the partner lacks; the union
      // is symmetric, the traffic is not.
      const std::uint64_t a_to_b = known_out[a] & ~known_out[b];
      const std::uint64_t b_to_a = known_out[b] & ~known_out[a];
      for (std::size_t s = 0; s < shards_; ++s) {
        const std::uint64_t bit = std::uint64_t{1} << s;
        if ((a_to_b & bit) != 0) stats.boundary_bytes += bytes_of(s);
        if ((b_to_a & bit) != 0) stats.boundary_bytes += bytes_of(s);
      }
      if (a_to_b != 0) ++stats.messages;
      if (b_to_a != 0) ++stats.messages;
      known_out[a] |= b_to_a;
      known_out[b] |= a_to_b;
    }
    ++stats.rounds;
    if (all_know_all(known_out, full)) {
      stats.converged = true;
      break;
    }
  }
  stats.converged = stats.converged || all_know_all(known_out, full);
  return stats;
}

}  // namespace st::shard
