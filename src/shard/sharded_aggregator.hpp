#pragma once
// ShardedAggregator — the update interval as N cooperating partitions
// (DESIGN.md §16).
//
// The centralized SocialTrustPlugin::update() is one monolithic pipeline
// over the global (rater, ratee)-sorted pair list. This class restructures
// the same interval around a deterministic partition of the raters
// (src/shard/partitioner.hpp): shard s owns the pair slots, cumulative
// rating histories, leave-one-out aggregates and social-state cache of
// every rater assigned to it, and runs the shard-local passes over its own
// state only. Cross-shard quantities — the robust system-wide baselines,
// the average pair frequency F, and (under gossip) remote reputations —
// move between shards as fixed-size summaries over the boundary-exchange
// schedule in gossip_exchange.hpp.
//
// One interval:
//
//   Phase 0 (once)  partition the graph; allocate per-shard state.
//   Phase A         route each rating to its rater's owner shard; every
//                   shard tallies its pairs into stable local slots and
//                   recovers its local canonical (rater, ratee) order —
//                   the dirty-pair machinery of DESIGN.md §14, one
//                   instance per shard.
//   Phase B         shard-local coefficients + leave-one-out aggregates:
//                   carried slots ride forward, dirty slots recompute
//                   through the shard's own revision-validated cache. The
//                   S caches share one RevisionTracker scan per interval,
//                   so the dirty collection stays O(changed) overall.
//   Phase C         boundary exchange. Every shard publishes one summary
//                   (pair/rating counts, min/max/moment accumulators and
//                   a quantile sketch per coefficient, plus its members'
//                   reputations); the exchange schedule decides who
//                   learns what and at what byte cost.
//   Phase D         detect-and-adjust over the k-way merge of the
//                   per-shard canonical pair lists — which IS the global
//                   canonical order, because raters are disjoint across
//                   shards — in the same fixed kPairBlock blocks and
//                   block-index-order reduction the centralized pipeline
//                   uses.
//
// Bit-identity (synchronous exchange). Every floating-point reduction the
// centralized pipeline performs is replayed over the identical value
// sequence: per-shard coefficients are value-transparent (same cache
// contract, same closeness/similarity code on the same frozen inputs), the
// merged pair order equals the centralized sort order, robust_stats runs
// on the identically-ordered merged vector, and phase D replays the exact
// per-rating weight_sum accumulation inside the same block structure. The
// result is therefore bit-for-bit equal to AggregationMode::kCentralized
// at every shard count and every thread count — the hard gate in
// tests/sharded_aggregation_test.cpp.
//
// Gossip exchange trades that exactness for fixed-size summaries: each
// shard rebuilds the system baselines from the sketches it has learned,
// so results converge to the centralized ones within a small residual
// (exactly zero when every shard's pair count fits the sketch) while
// remaining fully deterministic for a fixed (seed, shard count).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/gaussian_filter.hpp"
#include "core/socialtrust.hpp"
#include "shard/gossip_exchange.hpp"
#include "shard/partitioner.hpp"
#include "util/thread_annotations.hpp"

namespace st::shard {

/// Fixed-size summary of one shard's coefficient population: extremes,
/// moment accumulators, and either the raw values (count <= the
/// configured sketch size — merged baselines are then exact) or evenly
/// spaced order statistics.
struct BaselineSketch {
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  std::vector<double> points;
};

/// What one shard publishes per interval (phase C).
struct ShardSummary {
  std::uint64_t pair_count = 0;
  double rating_count = 0.0;  ///< sum of t+ + t- (integer-valued, exact)
  BaselineSketch closeness;
  BaselineSketch similarity;
  std::uint64_t payload_bytes = 0;  ///< modelled wire size, digest included
};

/// Per-interval diagnostics of the sharded pipeline (obs + tests + bench).
struct ShardStats {
  std::size_t shards = 1;
  std::size_t boundary_edges = 0;  ///< partition cut (graph edges)
  std::size_t pairs_local = 0;     ///< active pairs with ratee in-shard
  std::size_t pairs_remote = 0;    ///< active pairs crossing shards
  ExchangeStats exchange;          ///< rounds / bytes / messages this interval
  /// Largest normalised deviation of any shard's rebuilt baseline
  /// statistic (median/width/min/max of both coefficients, plus F) from
  /// the exact centralized value. Always 0 under the synchronous
  /// schedule; under gossip it is the price of the sketches.
  double baseline_residual = 0.0;
  std::vector<std::size_t> shard_pairs;  ///< active pair count per shard
  double local_us = 0.0;     ///< phases A+B (shard-local work)
  double exchange_us = 0.0;  ///< phase C (merge + exchange + views)
  double reduce_us = 0.0;    ///< phase D (detect-adjust + reduction)
};

class ShardedAggregator {
 public:
  /// `pool` may be null (serial). `name` labels the "shard.update" obs
  /// interval events (the owning plugin's system name).
  ShardedAggregator(const graph::SocialGraph& graph,
                    const core::InterestProfiles& profiles,
                    const core::SocialTrustConfig& config,
                    const reputation::ReputationSystem& inner,
                    util::ThreadPool* pool, std::string name);
  ~ShardedAggregator();

  ShardedAggregator(const ShardedAggregator&) = delete;
  ShardedAggregator& operator=(const ShardedAggregator&) = delete;

  /// Runs passes 1-4 of the update interval sharded: rescales flagged
  /// ratings in `adjusted` in place and fills the report/dirty stats with
  /// exactly what the centralized pipeline would produce (synchronous
  /// exchange) or its sketch-converged equivalent (gossip). The caller
  /// feeds `adjusted` to the wrapped system afterwards.
  void update(std::vector<reputation::Rating>& adjusted,
              core::AdjustmentReport& report,
              core::SocialTrustPlugin::DirtyStats& dirty_stats);

  /// Whitewashing hook: drops every slot, history entry, aggregate and
  /// cache entry mentioning `node` across all shards (the sharded mirror
  /// of SocialTrustPlugin::forget_node's plugin-state half).
  void forget_node(reputation::NodeId node);

  /// Drops all carried state; the partition itself is kept (the node set
  /// is fixed for the graph's lifetime).
  void reset();

  /// Last committed interval's diagnostics. update() publishes stats_
  /// exactly once, under stats_mutex_, after every parallel phase has
  /// joined; callers read it from the coordinating thread between
  /// intervals, so the reference stays stable for as long as the caller
  /// holds it (the analysis escape hatch records that external
  /// happens-before, which clang cannot see through a const reference).
  const ShardStats& last_stats() const noexcept
      ST_NO_THREAD_SAFETY_ANALYSIS {
    return stats_;
  }

  /// Null until the first update() (the partition is cut against the
  /// graph as first observed, then held fixed).
  const Partition* partition() const noexcept { return part_.get(); }

  /// Summed per-instance stats of the per-shard social-state caches.
  core::SocialStateCache::StatsSnapshot cache_stats() const;

 private:
  using LooAggregate = core::SocialTrustPlugin::LooAggregate;
  using PairKey = reputation::PairKey;
  using NodeId = reputation::NodeId;

  /// Carried per-pair coefficients (mirror of the plugin's PairCoeff).
  struct PairCoeff {
    double closeness = 0.0;
    double similarity = 0.0;
  };

  struct RaterAggregates {
    LooAggregate closeness;
    LooAggregate similarity;
    bool valid = false;
  };

  /// Everything shard s owns. Raters are addressed by their *local* index
  /// (rank within the shard's ascending member list), so per-shard arrays
  /// cost O(members), not O(all nodes). The slot machinery is a per-shard
  /// instance of the plugin's dirty-pair plumbing (socialtrust.hpp).
  struct ShardState {
    std::vector<std::vector<NodeId>> rated_history;       // [local rater]
    std::vector<std::vector<std::uint32_t>> hist_slots;   // [local rater]
    std::vector<PairCoeff> slot_coeff;
    std::vector<std::uint8_t> slot_valid;
    std::vector<std::uint64_t> slot_stamp;
    std::vector<double> slot_pos, slot_neg;
    std::vector<std::uint32_t> slot_ratings;
    std::vector<std::uint32_t> slot_active_idx;
    std::uint64_t interval_seq = 0;
    std::vector<RaterAggregates> rater_agg;               // [local rater]
    core::SocialStateCache cache;

    // Per-interval scratch/outputs (local canonical order).
    std::vector<std::uint32_t> bucket;  ///< this interval's rating indices
    std::vector<PairKey> keys;
    std::vector<std::uint32_t> active_slots;
    std::vector<double> tally_pos, tally_neg;
    std::vector<std::uint32_t> ridx_off, ridx;  ///< ridx: global indices
    std::vector<double> pair_c, pair_s;
    std::size_t pairs_dirty = 0, pairs_carried = 0;
    std::size_t raters_rebuilt = 0, raters_carried = 0;
    ShardSummary summary;

    /// Gossip only: this shard's view of every node's reputation —
    /// refreshed from the wrapped system for owned nodes, learned over
    /// the exchange for the rest, stale where dissemination was capped.
    std::vector<double> rep_view;
  };

  /// One shard's rebuilt view of the cross-shard quantities phase D reads.
  struct ShardView {
    core::CoefficientStats c;
    core::CoefficientStats s;
    double avg_freq = 0.0;
  };

  void ensure_partition();
  void shard_phase_a(std::size_t s,
                     const std::vector<reputation::Rating>& adjusted);
  void shard_phase_b(std::size_t s);
  std::uint32_t new_slot(ShardState& st);
  std::uint32_t slot_of(const ShardState& st, std::uint32_t local,
                        NodeId ratee) const noexcept;

  /// Builds `st.summary` from this interval's local coefficient arrays.
  void build_summary(std::size_t s);
  /// Robust baseline statistics rebuilt from the sketches of the shards
  /// in `known` (ascending shard order — a fixed merge order).
  ShardView merge_known(std::uint64_t known) const;

  /// fn(begin, end) over kPairBlock-sized blocks of [0, n) — pool-backed
  /// or serial, same blocks either way (the plugin's run_blocks shape).
  void run_blocks(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& fn);

  const graph::SocialGraph& graph_;
  const core::InterestProfiles& profiles_;
  core::SocialTrustConfig config_;
  const reputation::ReputationSystem& inner_;
  util::ThreadPool* pool_;
  std::string name_;
  core::ClosenessModel closeness_model_;
  core::BehaviorDetector detector_;
  std::size_t n_;  ///< reputation domain size (inner.size())

  std::unique_ptr<Partition> part_;
  /// Heap-allocated: ShardState embeds a SocialStateCache (atomics +
  /// mutexes), which is neither movable nor copyable.
  std::vector<std::unique_ptr<ShardState>> shards_;
  core::SocialStateCache::RevisionTracker tracker_;
  bool rep_views_initialized_ = false;

  /// Guards the committed stats_ snapshot. Every interval accumulates
  /// its diagnostics in a function-local ShardStats and publishes here
  /// once (compute outside / publish under the lock, DESIGN.md §13) —
  /// the clang -Wthread-safety leg statically rejects any stray write,
  /// cross-checking st-lint's SHD-1 phase discipline.
  mutable util::Mutex stats_mutex_;
  ShardStats stats_ ST_GUARDED_BY(stats_mutex_);

  // Merged (global canonical order) per-interval scratch.
  std::vector<PairKey> m_keys_;
  std::vector<std::uint32_t> m_shard_;  ///< pair -> owner shard
  std::vector<double> m_c_, m_s_, m_pos_, m_neg_;
  std::vector<std::uint32_t> m_ridx_off_, m_ridx_;

  struct ObsHandles {
    obs::Counter* intervals = nullptr;       ///< shard.intervals
    obs::Counter* exchange_rounds = nullptr; ///< shard.exchange_rounds
    obs::Counter* boundary_bytes = nullptr;  ///< shard.boundary_bytes
    obs::Counter* messages = nullptr;        ///< shard.messages
    obs::Counter* pairs_local = nullptr;     ///< shard.pairs_local
    obs::Counter* pairs_remote = nullptr;    ///< shard.pairs_remote
    obs::Gauge* rounds_last = nullptr;       ///< shard.rounds_last
    obs::Gauge* residual_ppm = nullptr;      ///< shard.baseline_residual_ppm
    obs::Gauge* boundary_edges = nullptr;    ///< shard.boundary_edges
    obs::Histogram* local_us = nullptr;      ///< shard.local_us
    obs::Histogram* exchange_us = nullptr;   ///< shard.exchange_us
    obs::Histogram* reduce_us = nullptr;     ///< shard.reduce_us
    obs::Histogram* scan_us = nullptr;       ///< shard.dirty_scan_us
  };
  ObsHandles obs_;
};

}  // namespace st::shard
