#pragma once
// Deterministic boundary-exchange schedule between shards (DESIGN.md §16).
//
// Each shard publishes one fixed-size summary per interval (baseline
// sketch + reputation digest, see sharded_aggregator.hpp); the exchange
// decides who has seen what, in which round, at what byte cost. Two
// schedules:
//
//   * synchronous — a modelled all-gather: one round, every shard sends
//     its summary to every other shard. After it, every shard knows all
//     S summaries, which is what lets the aggregator replay the
//     centralized reductions bit-for-bit.
//
//   * gossip — seeded pairwise rounds with known-set flooding. Round r
//     pairs shards by a permutation derived from mix64(seed, r)
//     (Fisher-Yates over the shard ids, driven by the same splitmix
//     chain as the partitioner — never std::rand, never hash order);
//     each pair unions their known-summary sets, paying bytes only for
//     summaries the partner lacks. Runs until every shard knows every
//     summary (rounds-to-convergence, the number the obs layer reports)
//     or the round budget is exhausted.
//
// The schedule is a pure function of (shard count, seed, round budget,
// summary sizes): no wall clock, no thread scheduling, no hash-order
// iteration — the whole exchange is bit-reproducible, which the DET-family
// lint rules and the differential tests pin down.

#include <cstdint>
#include <span>
#include <vector>

namespace st::shard {

/// What one exchange run did: rounds executed, whether every shard ended
/// up knowing every summary, and the modelled traffic.
struct ExchangeStats {
  std::size_t rounds = 0;
  bool converged = false;
  std::uint64_t boundary_bytes = 0;  ///< summary bytes moved between shards
  std::uint64_t messages = 0;        ///< point-to-point sends
};

/// Immutable after construction: both run_* schedules are const and
/// derive everything from the ctor parameters plus their arguments, so
/// one instance may be shared across threads without locking (SHD-1's
/// boundary-state rules key off the run_*/merge function names instead).
class GossipExchange {
 public:
  /// `shards` must be in [1, 64] (known sets are 64-bit masks).
  /// `max_rounds` 0 = run until convergence (hard cap 4 * shards + 8).
  GossipExchange(std::size_t shards, std::uint64_t seed,
                 std::size_t max_rounds);

  /// The all-gather schedule: one round, all-to-all. Every known set
  /// comes back full.
  ExchangeStats run_synchronous(std::span<const std::uint64_t> summary_bytes,
                                std::vector<std::uint64_t>& known_out) const;

  /// The seeded gossip schedule (see file header). known_out[s] is the
  /// bitmask of shard summaries shard s holds when the schedule stops;
  /// bit s is always set (a shard knows itself).
  ExchangeStats run_gossip(std::span<const std::uint64_t> summary_bytes,
                           std::vector<std::uint64_t>& known_out) const;

  /// The round-r pairing: a permutation of [0, shards) — element 2i
  /// exchanges with element 2i+1; with an odd shard count the last sits
  /// the round out. Exposed for tests and the schedule docs.
  std::vector<std::uint32_t> round_order(std::size_t round) const;

 private:
  std::size_t shards_;
  std::uint64_t seed_;
  std::size_t max_rounds_;
};

}  // namespace st::shard
