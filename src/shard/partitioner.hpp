#pragma once
// Deterministic graph partitioner for the sharded aggregation pipeline
// (DESIGN.md §16).
//
// Assignment happens in two phases:
//
//   1. Interned-ID hashing: owner(v) = splitmix64(v ^ seed) mod shards.
//      The base assignment is a pure function of (node id, seed) — it
//      never reads the graph — so it is stable under node churn: a node
//      that whitewashes and re-enters, or a graph that gains/loses edges,
//      never reshuffles the ownership of unrelated nodes.
//
//   2. Edge-cut refinement: a bounded number of deterministic passes in
//      ascending node order move a node to the shard owning the majority
//      of its neighbours when that strictly reduces the cut and the
//      target shard is below the balance cap (110% of the ideal size).
//      Sequential and order-pinned, so the result is a pure function of
//      (graph adjacency, shards, seed) — bit-reproducible at every
//      thread count.
//
// The partition is computed once per aggregator lifetime (the node set is
// fixed at construction; see SocialGraph) and describes rater ownership:
// shard s owns the pair slots, histories and leave-one-out aggregates of
// every rater it owns.

#include <cstdint>
#include <vector>

#include "graph/social_graph.hpp"

namespace st::shard {

using graph::NodeId;

/// A fixed assignment of every node to one of `shards` partitions, plus
/// the derived lookup structures the aggregator iterates with.
struct Partition {
  std::size_t shards = 1;
  std::vector<std::uint32_t> owner;        ///< node -> shard
  std::vector<std::uint32_t> local_index;  ///< node -> rank within shard
  /// Per-shard member lists, ascending node order — the order every
  /// shard-local pass walks raters in (matching the centralized
  /// pipeline's ascending-rater canonical order).
  std::vector<std::vector<NodeId>> members;
  std::size_t cut_edges = 0;    ///< undirected edges crossing shards
  std::size_t total_edges = 0;  ///< undirected edges overall
};

/// splitmix64 of the interned-ID hash above; exposed so tests and the
/// gossip schedule share one mixing function.
std::uint64_t mix64(std::uint64_t x) noexcept;

/// Partitions `g`'s nodes into `shards` balanced parts (see file header).
/// `shards` is clamped to [1, 64] — the exchange layer tracks known-set
/// masks in a 64-bit word. Deterministic for fixed (g, shards, seed).
Partition partition_graph(const graph::SocialGraph& g, std::size_t shards,
                          std::uint64_t seed);

}  // namespace st::shard
