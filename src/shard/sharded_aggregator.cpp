#include "shard/sharded_aggregator.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>

namespace st::shard {

using core::CoefficientStats;
using reputation::Rating;

namespace {

constexpr std::uint32_t kNoSlot = 0xFFFFFFFFU;
constexpr std::size_t kPairBlock = core::SocialTrustPlugin::kPairBlock;

/// Weighted median with boundary averaging: lower = smallest value whose
/// cumulative weight reaches W/2, upper = smallest whose cumulative weight
/// exceeds it, result = (lower + upper) / 2. With unit weights this is
/// exactly robust_stats' median (nth_element upper median averaged with
/// the lower half's max on even counts) — cumulative integer weights make
/// the >= / > comparisons exact — so merged raw-value sketches reproduce
/// the centralized median bit-for-bit. Sorts `vw` by value.
double weighted_median(std::vector<std::pair<double, double>>& vw) {
  if (vw.empty()) return 0.0;
  std::sort(vw.begin(), vw.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  double total = 0.0;
  for (const auto& [v, w] : vw) total += w;
  const double half = total / 2.0;
  double cum = 0.0;
  for (std::size_t i = 0; i < vw.size(); ++i) {
    cum += vw[i].second;
    if (cum >= half) {
      const double lower = vw[i].first;
      const double upper =
          cum > half ? vw[i].first
                     : (i + 1 < vw.size() ? vw[i + 1].first : vw[i].first);
      return (lower + upper) / 2.0;
    }
  }
  return vw.back().first;
}

/// robust_stats rebuilt from sketch points: median centre, MAD-derived
/// width, with the same stddev fallback computed from the exact summed
/// moments (the only place the merge can diverge from the centralized
/// value by summation order — and only when MAD degenerates to zero).
CoefficientStats robust_from_points(
    std::vector<std::pair<double, double>>& vw, double sum, double sum_sq,
    std::uint64_t n, double mn, double mx) {
  CoefficientStats out;
  if (vw.empty() || n == 0) return out;
  out.min = mn;
  out.max = mx;
  const double med = weighted_median(vw);
  out.mean = med;
  std::vector<std::pair<double, double>> dev(vw.size());
  for (std::size_t i = 0; i < vw.size(); ++i) {
    dev[i] = {std::fabs(vw[i].first - med), vw[i].second};
  }
  const double mad = weighted_median(dev);
  if (mad > 0.0) {
    out.stddev = 1.4826 * mad;
  } else {
    out.stddev =
        core::population_stddev(sum, sum_sq, static_cast<std::size_t>(n));
  }
  return out;
}

void build_sketch(BaselineSketch& out, const std::vector<double>& values,
                  std::size_t max_points) {
  out = BaselineSketch{};
  out.count = values.size();
  if (values.empty()) return;
  out.min = *std::min_element(values.begin(), values.end());
  out.max = *std::max_element(values.begin(), values.end());
  for (double v : values) {
    out.sum += v;
    out.sum_sq += v * v;
  }
  if (values.size() <= max_points) {
    out.points = values;  // raw values: merged baselines are exact
    return;
  }
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  out.points.resize(max_points);
  for (std::size_t k = 0; k < max_points; ++k) {
    const std::size_t idx = k * (sorted.size() - 1) / (max_points - 1);
    out.points[k] = sorted[idx];
  }
}

/// Per-block partial of phase D — field-for-field the plugin's
/// BlockPartial, reduced in the same block-index order.
struct BlockPartial {
  std::size_t pairs_flagged = 0;
  std::size_t ratings_adjusted = 0;
  std::size_t b1 = 0, b2 = 0, b3 = 0, b4 = 0;
  double weight_sum = 0.0;
  std::vector<core::FlaggedPair> flagged;
};

}  // namespace

ShardedAggregator::ShardedAggregator(const graph::SocialGraph& graph,
                                     const core::InterestProfiles& profiles,
                                     const core::SocialTrustConfig& config,
                                     const reputation::ReputationSystem& inner,
                                     util::ThreadPool* pool, std::string name)
    : graph_(graph),
      profiles_(profiles),
      config_(config),
      inner_(inner),
      pool_(pool),
      name_(std::move(name)),
      closeness_model_(config.weighted_relationships, config.lambda),
      detector_(config),
      n_(inner.size()) {
  auto& registry = obs::Obs::instance().registry();
  obs_.intervals = &registry.counter("shard.intervals");
  obs_.exchange_rounds = &registry.counter("shard.exchange_rounds");
  obs_.boundary_bytes = &registry.counter("shard.boundary_bytes");
  obs_.messages = &registry.counter("shard.messages");
  obs_.pairs_local = &registry.counter("shard.pairs_local");
  obs_.pairs_remote = &registry.counter("shard.pairs_remote");
  obs_.rounds_last = &registry.gauge("shard.rounds_last");
  obs_.residual_ppm = &registry.gauge("shard.baseline_residual_ppm");
  obs_.boundary_edges = &registry.gauge("shard.boundary_edges");
  obs_.local_us = &registry.histogram("shard.local_us");
  obs_.exchange_us = &registry.histogram("shard.exchange_us");
  obs_.reduce_us = &registry.histogram("shard.reduce_us");
  obs_.scan_us = &registry.histogram("shard.dirty_scan_us");
}

ShardedAggregator::~ShardedAggregator() = default;

void ShardedAggregator::ensure_partition() {
  if (part_) return;
  // Cut against the graph as first observed, then held fixed: ownership
  // must not migrate between intervals (slots and histories live in their
  // rater's shard), and the hash layer keeps the assignment stable under
  // whatever churn follows anyway.
  part_ = std::make_unique<Partition>(
      partition_graph(graph_, config_.shards, config_.shard_seed));
  shards_.reserve(part_->shards);
  for (std::size_t s = 0; s < part_->shards; ++s) {
    auto st = std::make_unique<ShardState>();
    const std::size_t members = part_->members[s].size();
    st->rated_history.resize(members);
    st->hist_slots.resize(members);
    st->rater_agg.resize(members);
    st->cache.enable_dirty_tracking();
    shards_.push_back(std::move(st));
  }
}

std::uint32_t ShardedAggregator::new_slot(ShardState& st) {
  const auto id = static_cast<std::uint32_t>(st.slot_coeff.size());
  st.slot_coeff.push_back(PairCoeff{});
  st.slot_valid.push_back(0);
  st.slot_stamp.push_back(0);
  st.slot_pos.push_back(0.0);
  st.slot_neg.push_back(0.0);
  st.slot_ratings.push_back(0);
  st.slot_active_idx.push_back(0);
  return id;
}

std::uint32_t ShardedAggregator::slot_of(const ShardState& st,
                                         std::uint32_t local,
                                         NodeId ratee) const noexcept {
  if (local >= st.rated_history.size()) return kNoSlot;
  const auto& hist = st.rated_history[local];
  const auto it = std::lower_bound(hist.begin(), hist.end(), ratee);
  if (it == hist.end() || *it != ratee) return kNoSlot;
  return st.hist_slots[local][static_cast<std::size_t>(it - hist.begin())];
}

void ShardedAggregator::shard_phase_a(std::size_t s,
                                      const std::vector<Rating>& adjusted) {
  ShardState& st = *shards_[s];
  st.cache.begin_interval(config_.cache_evict_intervals);
  ++st.interval_seq;

  // Pass A: route this shard's bucketed ratings to their pairs' stable
  // slots — the per-shard instance of the plugin's dirty-mode pass A,
  // addressing raters by local index.
  std::vector<std::uint32_t> bucket_slot(st.bucket.size());
  std::size_t active_count = 0;
  for (std::size_t b = 0; b < st.bucket.size(); ++b) {
    const Rating& r = adjusted[st.bucket[b]];
    const std::uint32_t local = part_->local_index[r.rater];
    auto& hist = st.rated_history[local];
    auto& slots = st.hist_slots[local];
    auto it = std::lower_bound(hist.begin(), hist.end(), r.ratee);
    const std::size_t pos = static_cast<std::size_t>(it - hist.begin());
    if (it == hist.end() || *it != r.ratee) {
      hist.insert(it, r.ratee);
      slots.insert(slots.begin() + static_cast<std::ptrdiff_t>(pos),
                   new_slot(st));
      st.rater_agg[local].valid = false;
    }
    const std::uint32_t slot = slots[pos];
    bucket_slot[b] = slot;
    if (st.slot_stamp[slot] != st.interval_seq) {
      st.slot_stamp[slot] = st.interval_seq;
      st.slot_pos[slot] = 0.0;
      st.slot_neg[slot] = 0.0;
      st.slot_ratings[slot] = 0;
      ++active_count;
    }
    if (r.value > 0.0) {
      st.slot_pos[slot] += 1.0;
    } else if (r.value < 0.0) {
      st.slot_neg[slot] += 1.0;
    }
    ++st.slot_ratings[slot];
  }

  // Pass B: the shard's canonical pair order — members ascend, each
  // history is ratee-sorted, the stamp picks this interval's pairs.
  st.keys.clear();
  st.active_slots.clear();
  st.tally_pos.clear();
  st.tally_neg.clear();
  st.ridx_off.clear();
  st.keys.reserve(active_count);
  st.active_slots.reserve(active_count);
  st.tally_pos.reserve(active_count);
  st.tally_neg.reserve(active_count);
  st.ridx_off.reserve(active_count + 1);
  st.ridx_off.push_back(0);
  for (NodeId rater : part_->members[s]) {
    const std::uint32_t local = part_->local_index[rater];
    const auto& hist = st.rated_history[local];
    const auto& slots = st.hist_slots[local];
    for (std::size_t k = 0; k < hist.size(); ++k) {
      const std::uint32_t slot = slots[k];
      if (st.slot_stamp[slot] != st.interval_seq) continue;
      st.slot_active_idx[slot] = static_cast<std::uint32_t>(st.keys.size());
      st.keys.push_back(PairKey{rater, hist[k]});
      st.active_slots.push_back(slot);
      st.tally_pos.push_back(st.slot_pos[slot]);
      st.tally_neg.push_back(st.slot_neg[slot]);
      st.ridx_off.push_back(st.ridx_off.back() + st.slot_ratings[slot]);
    }
  }

  // Pass C: CSR fill in stream order (global rating indices), so each
  // pair's index list matches the centralized PairMap's push_back order.
  st.ridx.resize(st.ridx_off.back());
  std::vector<std::uint32_t> cursor(st.ridx_off.begin(), st.ridx_off.end() - 1);
  for (std::size_t b = 0; b < st.bucket.size(); ++b) {
    const std::uint32_t ai = st.slot_active_idx[bucket_slot[b]];
    st.ridx[cursor[ai]++] = st.bucket[b];
  }
}

void ShardedAggregator::shard_phase_b(std::size_t s) {
  ShardState& st = *shards_[s];
  const std::size_t n = st.keys.size();

  // Coefficients: carried slots ride, dirty slots recompute through this
  // shard's own cache (value-transparent: a recompute returns the exact
  // double the centralized cache would).
  st.pair_c.assign(n, 0.0);
  st.pair_s.assign(n, 0.0);
  std::vector<std::size_t> dirty_idx;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t slot = st.active_slots[i];
    if (st.slot_valid[slot]) {
      st.pair_c[i] = st.slot_coeff[slot].closeness;
      st.pair_s[i] = st.slot_coeff[slot].similarity;
    } else {
      dirty_idx.push_back(i);
    }
  }
  for (std::size_t i : dirty_idx) {
    st.pair_c[i] = st.cache.closeness(closeness_model_, graph_,
                                      st.keys[i].rater, st.keys[i].ratee);
    st.pair_s[i] = st.cache.similarity(profiles_, st.keys[i].rater,
                                       st.keys[i].ratee,
                                       config_.weighted_interests);
    const std::uint32_t slot = st.active_slots[i];
    st.slot_coeff[slot] = PairCoeff{st.pair_c[i], st.pair_s[i]};
    st.slot_valid[slot] = 1;
  }
  st.pairs_dirty = dirty_idx.size();
  st.pairs_carried = n - dirty_idx.size();

  // Leave-one-out aggregates for this shard's active raters, rebuilt only
  // where invalidated — the identical add() sequence (history order) a
  // centralized rebuild replays.
  st.raters_rebuilt = 0;
  st.raters_carried = 0;
  if (config_.baseline != core::BaselineSource::kSystemWide) {
    NodeId prev = 0;
    bool first = true;
    for (const PairKey& key : st.keys) {
      if (!first && key.rater == prev) continue;
      first = false;
      prev = key.rater;
      const std::uint32_t local = part_->local_index[key.rater];
      RaterAggregates& agg = st.rater_agg[local];
      if (agg.valid) {
        ++st.raters_carried;
        continue;
      }
      agg.closeness = LooAggregate{};
      agg.similarity = LooAggregate{};
      for (NodeId j : st.rated_history[local]) {
        agg.closeness.add(
            st.cache.closeness(closeness_model_, graph_, key.rater, j));
      }
      for (NodeId j : st.rated_history[local]) {
        agg.similarity.add(st.cache.similarity(profiles_, key.rater, j,
                                               config_.weighted_interests));
      }
      agg.valid = true;
      ++st.raters_rebuilt;
    }
  }

  build_summary(s);
}

void ShardedAggregator::build_summary(std::size_t s) {
  ShardState& st = *shards_[s];
  ShardSummary& sum = st.summary;
  sum = ShardSummary{};
  sum.pair_count = st.keys.size();
  for (std::size_t i = 0; i < st.keys.size(); ++i) {
    sum.rating_count += st.tally_pos[i] + st.tally_neg[i];
  }
  const std::size_t max_points =
      std::max<std::size_t>(2, config_.gossip_summary_points);
  build_sketch(sum.closeness, st.pair_c, max_points);
  build_sketch(sum.similarity, st.pair_s, max_points);

  // Modelled wire size. The synchronous all-gather must move the full
  // coefficient arrays (bit-exact replay needs every value); gossip moves
  // the fixed-size sketch. Both carry the 16-byte count header and the
  // shard's reputation digest (8 bytes per member).
  const std::uint64_t digest =
      8ULL * static_cast<std::uint64_t>(part_->members[s].size());
  if (config_.exchange == core::ExchangeSchedule::kSynchronous) {
    sum.payload_bytes = 16 + 16ULL * sum.pair_count + digest;
  } else {
    sum.payload_bytes = 16 +
                        2 * (40 + 8ULL * sum.closeness.points.size()) + digest;
  }
}

ShardedAggregator::ShardView ShardedAggregator::merge_known(
    std::uint64_t known) const {
  ShardView view;
  double pair_count = 0.0;
  double rating_count = 0.0;
  std::vector<std::pair<double, double>> c_vw, s_vw;
  double c_sum = 0.0, c_sum_sq = 0.0, s_sum = 0.0, s_sum_sq = 0.0;
  std::uint64_t c_n = 0, s_n = 0;
  double c_min = 0.0, c_max = 0.0, s_min = 0.0, s_max = 0.0;
  bool c_any = false, s_any = false;
  // Ascending shard order — one fixed merge order regardless of which
  // gossip round delivered which summary.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if ((known & (std::uint64_t{1} << s)) == 0) continue;
    const ShardSummary& sum = shards_[s]->summary;
    pair_count += static_cast<double>(sum.pair_count);
    rating_count += sum.rating_count;
    const auto fold = [](const BaselineSketch& sk, bool& any, double& mn,
                         double& mx, double& acc_sum, double& acc_sq,
                         std::uint64_t& acc_n,
                         std::vector<std::pair<double, double>>& vw) {
      if (sk.count == 0) return;
      if (!any || sk.min < mn) mn = sk.min;
      if (!any || sk.max > mx) mx = sk.max;
      any = true;
      acc_sum += sk.sum;
      acc_sq += sk.sum_sq;
      acc_n += sk.count;
      const double w =
          static_cast<double>(sk.count) / static_cast<double>(sk.points.size());
      for (double v : sk.points) vw.emplace_back(v, w);
    };
    fold(sum.closeness, c_any, c_min, c_max, c_sum, c_sum_sq, c_n, c_vw);
    fold(sum.similarity, s_any, s_min, s_max, s_sum, s_sum_sq, s_n, s_vw);
  }
  view.avg_freq = pair_count > 0.0 ? rating_count / pair_count : 0.0;
  view.c = robust_from_points(c_vw, c_sum, c_sum_sq, c_n, c_min, c_max);
  view.s = robust_from_points(s_vw, s_sum, s_sum_sq, s_n, s_min, s_max);
  return view;
}

void ShardedAggregator::run_blocks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (pool_) {
    pool_->parallel_for(n, kPairBlock, fn);
    return;
  }
  for (std::size_t begin = 0; begin < n; begin += kPairBlock) {
    fn(begin, std::min(begin + kPairBlock, n));
  }
}

void ShardedAggregator::update(
    std::vector<Rating>& adjusted, core::AdjustmentReport& report,
    core::SocialTrustPlugin::DirtyStats& dirty_stats) {
  ensure_partition();
  const std::size_t S = part_->shards;
  // The interval's stats accumulate in a local and publish once at the
  // end, so stats_ itself is only ever touched under stats_mutex_.
  ShardStats stats;
  stats.shards = S;
  stats.boundary_edges = part_->cut_edges;
  const bool sync = config_.exchange == core::ExchangeSchedule::kSynchronous;

  // --- Phases A + B: shard-local work --------------------------------------
  obs::ScopedTimer local_timer(*obs_.local_us);

  // Route each rating to its rater's owner shard (stream order preserved
  // within each bucket). Validity mirrors the centralized pass 1 filter.
  for (auto& st : shards_) st->bucket.clear();
  for (std::size_t idx = 0; idx < adjusted.size(); ++idx) {
    const Rating& r = adjusted[idx];
    if (r.rater >= n_ || r.ratee >= n_ || r.rater == r.ratee) continue;
    shards_[part_->owner[r.rater]]->bucket.push_back(
        static_cast<std::uint32_t>(idx));
  }

  const auto for_each_shard = [&](auto&& fn) {
    if (pool_ && S > 1) {
      pool_->parallel_for(S, fn);
    } else {
      for (std::size_t s = 0; s < S; ++s) fn(s);
    }
  };
  for_each_shard([&](std::size_t s) { shard_phase_a(s, adjusted); });

  // Dirty collection: one revision scan shared by all S caches, then each
  // shard drains its own cache and applies the kill rules to the slots
  // and aggregates it owns (cross-shard halves of a similarity key are
  // handled by the other endpoint's owner draining its own cache).
  {
    obs::ScopedTimer scan_timer(*obs_.scan_us);
    const auto& delta = tracker_.collect(graph_, profiles_);
    for (std::size_t s = 0; s < S; ++s) {
      ShardState& st = *shards_[s];
      const auto owned = [&](NodeId node) {
        return node < part_->owner.size() && part_->owner[node] == s;
      };
      const auto kill_slot = [&](NodeId rater, NodeId ratee) {
        if (!owned(rater)) return;
        const std::uint32_t slot =
            slot_of(st, part_->local_index[rater], ratee);
        if (slot != kNoSlot) st.slot_valid[slot] = 0;
      };
      const auto kill_agg = [&](NodeId rater) {
        if (owned(rater)) {
          st.rater_agg[part_->local_index[rater]].valid = false;
        }
      };
      const core::SocialStateCache::DirtyKeys dirty =
          st.cache.collect_dirty(graph_, profiles_, delta);
      for (std::uint64_t key : dirty.closeness) {
        const NodeId rater = core::SocialStateCache::key_first(key);
        kill_slot(rater, core::SocialStateCache::key_second(key));
        kill_agg(rater);
      }
      for (std::uint64_t key : dirty.similarity) {
        const NodeId lo = core::SocialStateCache::key_first(key);
        const NodeId hi = core::SocialStateCache::key_second(key);
        kill_slot(lo, hi);
        kill_slot(hi, lo);
        kill_agg(lo);
        kill_agg(hi);
      }
    }
    dirty_stats.scan_us = scan_timer.stop();
  }

  for_each_shard([&](std::size_t s) { shard_phase_b(s); });
  stats.local_us = local_timer.stop();

  // --- Phase C: merge + boundary exchange ----------------------------------
  obs::ScopedTimer exchange_timer(*obs_.exchange_us);

  // k-way merge of the per-shard canonical lists. Raters are disjoint
  // across shards and each list is (rater, ratee)-ascending, so the merge
  // IS the global canonical order the centralized sort produces.
  std::size_t total = 0;
  stats.shard_pairs.resize(S);
  for (std::size_t s = 0; s < S; ++s) {
    stats.shard_pairs[s] = shards_[s]->keys.size();
    total += shards_[s]->keys.size();
  }
  m_keys_.clear();
  m_shard_.clear();
  m_c_.clear();
  m_s_.clear();
  m_pos_.clear();
  m_neg_.clear();
  m_ridx_off_.clear();
  m_ridx_.clear();
  m_keys_.reserve(total);
  m_shard_.reserve(total);
  m_c_.reserve(total);
  m_s_.reserve(total);
  m_pos_.reserve(total);
  m_neg_.reserve(total);
  m_ridx_off_.reserve(total + 1);
  m_ridx_off_.push_back(0);
  {
    std::vector<std::size_t> pos(S, 0);
    for (std::size_t g = 0; g < total; ++g) {
      std::size_t best = S;
      for (std::size_t s = 0; s < S; ++s) {
        if (pos[s] >= shards_[s]->keys.size()) continue;
        if (best == S) {
          best = s;
          continue;
        }
        const PairKey& a = shards_[s]->keys[pos[s]];
        const PairKey& b = shards_[best]->keys[pos[best]];
        if (a.rater < b.rater ||
            (a.rater == b.rater && a.ratee < b.ratee)) {
          best = s;
        }
      }
      ShardState& st = *shards_[best];
      const std::size_t i = pos[best]++;
      const PairKey key = st.keys[i];
      m_keys_.push_back(key);
      m_shard_.push_back(static_cast<std::uint32_t>(best));
      m_c_.push_back(st.pair_c[i]);
      m_s_.push_back(st.pair_s[i]);
      m_pos_.push_back(st.tally_pos[i]);
      m_neg_.push_back(st.tally_neg[i]);
      for (std::uint32_t k = st.ridx_off[i]; k < st.ridx_off[i + 1]; ++k) {
        m_ridx_.push_back(st.ridx[k]);
      }
      m_ridx_off_.push_back(static_cast<std::uint32_t>(m_ridx_.size()));
      if (part_->owner[key.ratee] == best) {
        ++stats.pairs_local;
      } else {
        ++stats.pairs_remote;
      }
    }
  }

  // System-average per-pair frequency F, replayed over the merged order
  // (the centralized pass 2 accumulation).
  double exact_avg = 0.0;
  {
    double total_count = 0.0;
    for (std::size_t g = 0; g < total; ++g)
      total_count += m_pos_[g] + m_neg_[g];
    exact_avg = total == 0 ? 0.0 : total_count / static_cast<double>(total);
  }

  // The exact system baselines: robust statistics over the identically
  // ordered merged coefficient vectors — the centralized pass 3b, replayed.
  std::vector<double> sys_c_values = m_c_;
  std::vector<double> sys_s_values = m_s_;
  ShardView exact_view;
  exact_view.c = core::robust_stats(sys_c_values);
  exact_view.s = core::robust_stats(sys_s_values);
  exact_view.avg_freq = exact_avg;

  // Run the exchange schedule and rebuild each shard's view.
  std::vector<std::uint64_t> payload(S);
  for (std::size_t s = 0; s < S; ++s) {
    payload[s] = shards_[s]->summary.payload_bytes;
  }
  const GossipExchange exchange(S, config_.shard_seed, config_.gossip_rounds);
  std::vector<std::uint64_t> known;
  std::vector<ShardView> views(S);
  if (sync) {
    stats.exchange = exchange.run_synchronous(payload, known);
    for (auto& v : views) v = exact_view;
  } else {
    stats.exchange = exchange.run_gossip(payload, known);
    for (std::size_t s = 0; s < S; ++s) views[s] = merge_known(known[s]);

    // Reputation digests: refresh owned entries from the wrapped system,
    // then adopt the digest of every shard whose summary was learned this
    // interval; unlearned shards' entries stay at their last-known values.
    std::vector<double> current(n_);
    for (NodeId v = 0; v < n_; ++v) current[v] = inner_.reputation(v);
    if (!rep_views_initialized_) {
      for (auto& st : shards_) st->rep_view = current;
      rep_views_initialized_ = true;
    }
    for (std::size_t s = 0; s < S; ++s) {
      ShardState& st = *shards_[s];
      for (std::size_t o = 0; o < S; ++o) {
        if ((known[s] & (std::uint64_t{1} << o)) == 0) continue;
        for (NodeId node : part_->members[o]) {
          if (node < n_) st.rep_view[node] = current[node];
        }
      }
    }

    // Residual: worst normalised deviation of any shard's rebuilt
    // baseline from the exact one.
    const double quantities[] = {exact_view.avg_freq, exact_view.c.mean,
                                 exact_view.c.stddev, exact_view.c.min,
                                 exact_view.c.max,    exact_view.s.mean,
                                 exact_view.s.stddev, exact_view.s.min,
                                 exact_view.s.max};
    double scale = 1e-12;
    for (double q : quantities) scale = std::max(scale, std::fabs(q));
    for (const ShardView& v : views) {
      const double approx[] = {v.avg_freq, v.c.mean, v.c.stddev,
                               v.c.min,    v.c.max,  v.s.mean,
                               v.s.stddev, v.s.min,  v.s.max};
      for (std::size_t q = 0; q < std::size(quantities); ++q) {
        stats.baseline_residual =
            std::max(stats.baseline_residual,
                     std::fabs(approx[q] - quantities[q]) / scale);
      }
    }
  }
  stats.exchange_us = exchange_timer.stop();

  // --- Phase D: detect and adjust over the merged order --------------------
  obs::ScopedTimer reduce_timer(*obs_.reduce_us);
  report.pairs_total = total;
  const bool use_per_rater =
      config_.baseline != core::BaselineSource::kSystemWide;
  const std::size_t n_blocks = (total + kPairBlock - 1) / kPairBlock;
  std::vector<BlockPartial> partials(n_blocks);
  run_blocks(total, [&](std::size_t begin, std::size_t end) {
    BlockPartial& part = partials[begin / kPairBlock];
    for (std::size_t g = begin; g < end; ++g) {
      const PairKey key = m_keys_[g];
      const std::uint32_t s = m_shard_[g];
      const ShardView& v = views[s];

      CoefficientStats c_stats = v.c;
      CoefficientStats s_stats = v.s;
      if (use_per_rater) {
        const RaterAggregates& agg =
            shards_[s]->rater_agg[part_->local_index[key.rater]];
        agg.closeness.without(m_c_[g], c_stats);
        agg.similarity.without(m_s_[g], s_stats);
      }

      core::PairEvidence evidence;
      evidence.positive_count = m_pos_[g];
      evidence.negative_count = m_neg_[g];
      evidence.closeness = m_c_[g];
      evidence.similarity = m_s_[g];
      evidence.ratee_reputation =
          sync ? inner_.reputation(key.ratee) : shards_[s]->rep_view[key.ratee];
      evidence.rater_closeness = c_stats;

      const core::Behavior behavior = detector_.classify(evidence, v.avg_freq);
      if (core::any(behavior & core::Behavior::kB1)) ++part.b1;
      if (core::any(behavior & core::Behavior::kB2)) ++part.b2;
      if (core::any(behavior & core::Behavior::kB3)) ++part.b3;
      if (core::any(behavior & core::Behavior::kB4)) ++part.b4;

      const bool adjust =
          config_.gate_on_detector ? core::any(behavior) : true;
      if (!adjust) continue;
      if (core::any(behavior)) ++part.pairs_flagged;

      double weight = core::adjustment_weight(config_.components, m_c_[g],
                                              c_stats, m_s_[g], s_stats,
                                              config_.alpha, config_.width);
      if (config_.baseline == core::BaselineSource::kHybrid) {
        weight = std::min(
            weight,
            core::adjustment_weight(config_.components, m_c_[g], v.c, m_s_[g],
                                    v.s, config_.alpha, config_.width));
      }
      if (core::any(behavior)) {
        part.flagged.push_back(
            core::FlaggedPair{key.rater, key.ratee, behavior, weight});
      }
      for (std::uint32_t k = m_ridx_off_[g]; k < m_ridx_off_[g + 1]; ++k) {
        adjusted[m_ridx_[k]].value *= weight;
        ++part.ratings_adjusted;
        part.weight_sum += weight;
      }
    }
  });

  // Block-index-order reduction — the centralized pipeline's reduce,
  // bit-for-bit (blocks are contiguous ranges of the same merged order).
  double weight_sum = 0.0;
  for (const BlockPartial& part : partials) {
    report.pairs_flagged += part.pairs_flagged;
    report.ratings_adjusted += part.ratings_adjusted;
    report.b1 += part.b1;
    report.b2 += part.b2;
    report.b3 += part.b3;
    report.b4 += part.b4;
    weight_sum += part.weight_sum;
    report.flagged.insert(report.flagged.end(), part.flagged.begin(),
                          part.flagged.end());
  }
  report.mean_weight =
      report.ratings_adjusted > 0
          ? weight_sum / static_cast<double>(report.ratings_adjusted)
          : 1.0;
  stats.reduce_us = reduce_timer.stop();

  for (const auto& st : shards_) {
    dirty_stats.pairs_dirty += st->pairs_dirty;
    dirty_stats.pairs_carried += st->pairs_carried;
    dirty_stats.raters_rebuilt += st->raters_rebuilt;
    dirty_stats.raters_carried += st->raters_carried;
  }

  {
    util::MutexLock lock(stats_mutex_);
    stats_ = stats;
  }

  if (obs::enabled()) {
    obs_.intervals->add(1);
    obs_.exchange_rounds->add(stats.exchange.rounds);
    obs_.boundary_bytes->add(stats.exchange.boundary_bytes);
    obs_.messages->add(stats.exchange.messages);
    obs_.pairs_local->add(stats.pairs_local);
    obs_.pairs_remote->add(stats.pairs_remote);
    obs_.rounds_last->set(static_cast<std::int64_t>(stats.exchange.rounds));
    obs_.residual_ppm->set(
        static_cast<std::int64_t>(stats.baseline_residual * 1e6));
    obs_.boundary_edges->set(
        static_cast<std::int64_t>(stats.boundary_edges));
    const obs::ExtraField extras[] = {
        {"shards", static_cast<double>(S)},
        {"exchange_rounds", static_cast<double>(stats.exchange.rounds)},
        {"converged", stats.exchange.converged ? 1.0 : 0.0},
        {"boundary_bytes",
         static_cast<double>(stats.exchange.boundary_bytes)},
        {"messages", static_cast<double>(stats.exchange.messages)},
        {"boundary_edges", static_cast<double>(stats.boundary_edges)},
        {"pairs_local", static_cast<double>(stats.pairs_local)},
        {"pairs_remote", static_cast<double>(stats.pairs_remote)},
        {"baseline_residual_ppm", stats.baseline_residual * 1e6},
        {"local_us", stats.local_us},
        {"exchange_us", stats.exchange_us},
        {"reduce_us", stats.reduce_us},
    };
    obs::Obs::instance().emit_interval("shard.update", name_, extras);
  }
}

void ShardedAggregator::forget_node(NodeId node) {
  if (!part_) return;  // no carried state yet
  if (node < part_->owner.size()) {
    ShardState& st = *shards_[part_->owner[node]];
    const std::uint32_t local = part_->local_index[node];
    if (local < st.rated_history.size()) {
      for (std::uint32_t slot : st.hist_slots[local]) st.slot_valid[slot] = 0;
      st.hist_slots[local].clear();
      st.rated_history[local].clear();
      st.rater_agg[local] = RaterAggregates{};
    }
  }
  // The discarded identity disappears from every rater's history in every
  // shard; a shrunken history invalidates that rater's carried aggregates.
  for (auto& st_ptr : shards_) {
    ShardState& st = *st_ptr;
    for (std::size_t local = 0; local < st.rated_history.size(); ++local) {
      auto& hist = st.rated_history[local];
      auto it = std::lower_bound(hist.begin(), hist.end(), node);
      if (it != hist.end() && *it == node) {
        const std::size_t pos = static_cast<std::size_t>(it - hist.begin());
        hist.erase(it);
        auto& slots = st.hist_slots[local];
        st.slot_valid[slots[pos]] = 0;
        slots.erase(slots.begin() + static_cast<std::ptrdiff_t>(pos));
        st.rater_agg[local].valid = false;
      }
    }
    st.cache.invalidate_node(node);
  }
}

void ShardedAggregator::reset() {
  for (auto& st_ptr : shards_) {
    ShardState& st = *st_ptr;
    for (auto& hist : st.rated_history) hist.clear();
    for (auto& slots : st.hist_slots) slots.clear();
    st.slot_coeff.clear();
    st.slot_valid.clear();
    st.slot_stamp.clear();
    st.slot_pos.clear();
    st.slot_neg.clear();
    st.slot_ratings.clear();
    st.slot_active_idx.clear();
    st.interval_seq = 0;
    for (auto& agg : st.rater_agg) agg = RaterAggregates{};
    st.cache.clear();
    st.summary = ShardSummary{};
    st.rep_view.clear();
  }
  rep_views_initialized_ = false;
  util::MutexLock lock(stats_mutex_);
  stats_ = ShardStats{};
}

core::SocialStateCache::StatsSnapshot ShardedAggregator::cache_stats() const {
  core::SocialStateCache::StatsSnapshot out;
  for (const auto& st : shards_) {
    const auto s = st->cache.stats();
    out.hits += s.hits;
    out.misses += s.misses;
    out.invalidations += s.invalidations;
    out.structure_hits += s.structure_hits;
    out.structure_misses += s.structure_misses;
    out.evictions += s.evictions;
  }
  return out;
}

}  // namespace st::shard
