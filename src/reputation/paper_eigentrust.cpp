#include "reputation/paper_eigentrust.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "reputation/ledger.hpp"

namespace st::reputation {

PaperEigenTrust::PaperEigenTrust(std::size_t node_count,
                                 const std::vector<NodeId>& pretrusted,
                                 PaperEigenTrustConfig config)
    : config_(config),
      is_pretrusted_(node_count, false),
      raw_(node_count, 0.0),
      normalized_(node_count, 0.0) {
  if (config_.weight_prior_mass < 0.0) {
    config_.weight_prior_mass = 10.0 * static_cast<double>(node_count);
  }
  if (node_count == 0)
    throw std::invalid_argument("PaperEigenTrust: node_count must be > 0");
  for (NodeId id : pretrusted) {
    if (id >= node_count)
      throw std::out_of_range("PaperEigenTrust: pretrusted id out of range");
    is_pretrusted_[id] = true;
  }
}

double PaperEigenTrust::rater_weight(NodeId i) const {
  if (i >= raw_.size())
    throw std::out_of_range("PaperEigenTrust: node out of range");
  if (is_pretrusted_[i]) return config_.pretrusted_weight;
  double positive_total = 0.0;
  for (double r : raw_) positive_total += std::max(r, 0.0);
  double denominator = positive_total + config_.weight_prior_mass;
  double earned =
      denominator > 0.0 ? std::max(raw_[i], 0.0) / denominator : 0.0;
  return std::max(earned, config_.rater_weight_floor);
}

void PaperEigenTrust::update(std::span<const Rating> cycle_ratings) {
  // Weights are the reputations *entering* the cycle; buffer them so the
  // update is simultaneous, not order-dependent. Non-pretrusted raters'
  // weights are damped by the evidence prior (see config): weight grows
  // toward the reputation share as the system accumulates real evidence.
  double positive_total = 0.0;
  for (double r : raw_) positive_total += std::max(r, 0.0);
  const double weight_denominator =
      positive_total + config_.weight_prior_mass;
  std::vector<double> weight(raw_.size());
  for (std::size_t i = 0; i < raw_.size(); ++i) {
    if (is_pretrusted_[i]) {
      weight[i] = config_.pretrusted_weight;
    } else {
      double earned = weight_denominator > 0.0
                          ? std::max(raw_[i], 0.0) / weight_denominator
                          : 0.0;
      weight[i] = std::max(earned, config_.rater_weight_floor);
    }
  }
  // Sum each directed pair's rating values over the interval, saturate at
  // +/- pair_contribution_cap (about one effective rating per query
  // cycle), then apply the rater's weight. Frequency toward one ratee
  // matters up to the cap — enough for MMM's multi-rater 80-ratings-per-
  // query-cycle boost to beat PCM's 20 (Section 5.6), but not enough for
  // a two-node pair to amplify without earned reputation (Fig. 9(a)).
  std::unordered_map<PairKey, double, PairKeyHash> pair_sums;
  pair_sums.reserve(cycle_ratings.size());
  for (const Rating& r : cycle_ratings) {
    if (r.rater >= raw_.size() || r.ratee >= raw_.size() ||
        r.rater == r.ratee) {
      continue;
    }
    pair_sums[PairKey{r.rater, r.ratee}] += r.value;
  }
  const double cap = config_.pair_contribution_cap;
  // Reduce in canonical (rater, ratee) order, not hash order: each
  // ratee's raw score is a floating-point sum over its raters, and
  // iterating the unordered_map would tie the result bits to the
  // standard library's bucket layout (DET-2, DESIGN.md §11).
  std::vector<std::pair<PairKey, double>> ordered(pair_sums.begin(),
                                                  pair_sums.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) {
              return a.first.rater != b.first.rater
                         ? a.first.rater < b.first.rater
                         : a.first.ratee < b.first.ratee;
            });
  for (const auto& [key, sum] : ordered) {
    raw_[key.ratee] += weight[key.rater] * std::clamp(sum, -cap, cap);
  }
  renormalize();
}

void PaperEigenTrust::renormalize() {
  double total = 0.0;
  for (double r : raw_) total += std::max(r, 0.0);
  if (total <= 0.0) {
    std::fill(normalized_.begin(), normalized_.end(), 0.0);
    return;
  }
  for (std::size_t i = 0; i < raw_.size(); ++i) {
    normalized_[i] = std::max(raw_[i], 0.0) / total;
  }
}

double PaperEigenTrust::reputation(NodeId node) const {
  if (node >= normalized_.size())
    throw std::out_of_range("PaperEigenTrust: node out of range");
  return normalized_[node];
}

void PaperEigenTrust::forget_node(NodeId node) {
  if (node >= raw_.size())
    throw std::out_of_range("PaperEigenTrust: node out of range");
  raw_[node] = 0.0;
  renormalize();
}

double PaperEigenTrust::raw_score(NodeId node) const {
  if (node >= raw_.size())
    throw std::out_of_range("PaperEigenTrust: node out of range");
  return raw_[node];
}

void PaperEigenTrust::reset() {
  std::fill(raw_.begin(), raw_.end(), 0.0);
  std::fill(normalized_.begin(), normalized_.end(), 0.0);
}

}  // namespace st::reputation
