#pragma once
// EigenTrust (Kamvar, Schlosser, Garcia-Molina, WWW 2003) — the paper's
// primary baseline (Section 5, [10]).
//
// Local trust: s_ij accumulates rating values from i about j across all
// cycles; c_ij = max(s_ij, 0) / sum_k max(s_ik, 0). Global trust is the
// stationary vector of
//     t <- (1 - a) * C^T t + a * p
// where p is uniform over the pretrusted peers and `a` is the pretrusted
// weight (the paper sets a = 0.5). Power iteration runs to a configurable
// L1 tolerance.

#include <cstdint>
#include <string_view>
#include <vector>

#include "reputation/reputation_system.hpp"

namespace st::reputation {

struct EigenTrustConfig {
  /// Weight `a` of the pretrusted distribution in the update rule.
  /// Paper Section 5.1: "we set the weight of reputations from pretrusted
  /// nodes in EigenTrust to 0.5".
  double pretrusted_weight = 0.5;
  /// Power-iteration stop: ||t_k+1 - t_k||_1 < epsilon.
  double epsilon = 1e-10;
  std::uint32_t max_iterations = 1000;
};

class EigenTrust final : public ReputationSystem {
 public:
  /// `pretrusted` lists the pretrusted peer ids (may be empty, in which
  /// case p falls back to the uniform distribution over all nodes, as in
  /// the original EigenTrust paper).
  EigenTrust(std::size_t node_count, std::vector<NodeId> pretrusted,
             EigenTrustConfig config = {});

  std::string_view name() const noexcept override { return "EigenTrust"; }
  std::size_t size() const noexcept override { return n_; }
  void update(std::span<const Rating> cycle_ratings) override;
  double reputation(NodeId node) const override;
  std::span<const double> reputations() const noexcept override {
    return global_;
  }
  void reset() override;
  void forget_node(NodeId node) override;

  /// Normalised local-trust entry c_ij (for tests/diagnostics).
  double local_trust(NodeId i, NodeId j) const;

  /// Raw accumulated s_ij before clamping/normalisation.
  double raw_trust(NodeId i, NodeId j) const;

  /// Iterations the last update() needed to converge.
  std::uint32_t last_iterations() const noexcept { return last_iterations_; }

  const EigenTrustConfig& config() const noexcept { return config_; }

 private:
  void recompute_global();

  std::size_t n_;
  std::vector<NodeId> pretrusted_;
  EigenTrustConfig config_;
  std::vector<double> s_;           // n x n accumulated local trust
  std::vector<double> p_;           // teleport distribution
  std::vector<double> global_;      // current global trust vector
  std::uint32_t last_iterations_ = 0;
};

}  // namespace st::reputation
