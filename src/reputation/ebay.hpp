#pragma once
// eBay-style accumulative reputation — the paper's second baseline.
//
// Semantics reproduced from Section 5 of the paper:
//   * "no matter how frequently a node rates the other node in a simulation
//     cycle, eBay only counts all the ratings as one rating" — per
//     (rater, ratee) pair the cycle's ratings collapse to the sign of their
//     sum (+1 / 0 / -1);
//   * "a node's reputation increase is only determined by whether the node
//     offers more authentic files than inauthentic files in each simulation
//     cycle" — slow, coarse updates;
//   * "After each simulation cycle, we scale the reputation of each node to
//     [0,1] by R_i / sum_k R_k" — published values are normalised; the raw
//     accumulator R_i is clamped at zero for normalisation so the published
//     vector is a distribution (raw values remain queryable).

#include <string_view>
#include <vector>

#include "reputation/reputation_system.hpp"

namespace st::reputation {

class EbayReputation final : public ReputationSystem {
 public:
  explicit EbayReputation(std::size_t node_count);

  std::string_view name() const noexcept override { return "eBay"; }
  std::size_t size() const noexcept override { return raw_.size(); }
  void update(std::span<const Rating> cycle_ratings) override;
  double reputation(NodeId node) const override;
  std::span<const double> reputations() const noexcept override {
    return normalized_;
  }
  void reset() override;
  void forget_node(NodeId node) override;

  /// Raw accumulated score R_i before clamping/normalisation (may be
  /// negative for persistently misbehaving nodes).
  double raw_score(NodeId node) const;

 private:
  void renormalize();

  std::vector<double> raw_;
  std::vector<double> normalized_;
};

}  // namespace st::reputation
