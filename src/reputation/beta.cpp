#include "reputation/beta.hpp"

#include <algorithm>
#include <stdexcept>

namespace st::reputation {

BetaReputation::BetaReputation(std::size_t node_count,
                               BetaReputationConfig config)
    : config_(config),
      positive_(node_count, 0.0),
      negative_(node_count, 0.0),
      normalized_(node_count, 0.0) {
  if (node_count == 0)
    throw std::invalid_argument("BetaReputation: node_count must be > 0");
  if (config_.forgetting <= 0.0 || config_.forgetting > 1.0)
    throw std::invalid_argument("BetaReputation: forgetting must be (0, 1]");
}

void BetaReputation::update(std::span<const Rating> cycle_ratings) {
  if (config_.forgetting < 1.0) {
    for (double& p : positive_) p *= config_.forgetting;
    for (double& n : negative_) n *= config_.forgetting;
  }
  for (const Rating& r : cycle_ratings) {
    if (r.rater >= positive_.size() || r.ratee >= positive_.size() ||
        r.rater == r.ratee) {
      continue;
    }
    if (r.value > 0.0) {
      positive_[r.ratee] += r.value;
    } else if (r.value < 0.0) {
      negative_[r.ratee] -= r.value;
    }
  }
  renormalize();
}

void BetaReputation::renormalize() {
  double total = 0.0;
  for (std::size_t v = 0; v < positive_.size(); ++v) {
    total += (positive_[v] + 1.0) / (positive_[v] + negative_[v] + 2.0);
  }
  for (std::size_t v = 0; v < positive_.size(); ++v) {
    double e = (positive_[v] + 1.0) / (positive_[v] + negative_[v] + 2.0);
    normalized_[v] = total > 0.0 ? e / total : 0.0;
  }
}

double BetaReputation::reputation(NodeId node) const {
  if (node >= normalized_.size())
    throw std::out_of_range("BetaReputation: node out of range");
  return normalized_[node];
}

void BetaReputation::forget_node(NodeId node) {
  if (node >= positive_.size())
    throw std::out_of_range("BetaReputation: node out of range");
  positive_[node] = 0.0;
  negative_[node] = 0.0;
  renormalize();
}

double BetaReputation::beta_expectation(NodeId node) const {
  if (node >= positive_.size())
    throw std::out_of_range("BetaReputation: node out of range");
  return (positive_[node] + 1.0) /
         (positive_[node] + negative_[node] + 2.0);
}

double BetaReputation::positive_mass(NodeId node) const {
  if (node >= positive_.size())
    throw std::out_of_range("BetaReputation: node out of range");
  return positive_[node];
}

double BetaReputation::negative_mass(NodeId node) const {
  if (node >= negative_.size())
    throw std::out_of_range("BetaReputation: node out of range");
  return negative_[node];
}

void BetaReputation::reset() {
  std::fill(positive_.begin(), positive_.end(), 0.0);
  std::fill(negative_.begin(), negative_.end(), 0.0);
  std::fill(normalized_.begin(), normalized_.end(), 0.0);
}

}  // namespace st::reputation
