#include "reputation/ledger.hpp"

namespace st::reputation {

void RatingLedger::record(const Rating& rating) {
  Rating r = rating;
  r.cycle = cycle_;
  open_.push_back(r);
  ++total_;
}

std::uint32_t RatingLedger::close_cycle() {
  last_ = std::move(open_);
  open_.clear();
  last_counts_.clear();
  for (const Rating& r : last_) {
    PairCounts& pc = last_counts_[PairKey{r.rater, r.ratee}];
    if (r.value > 0.0) {
      ++pc.positive;
    } else if (r.value < 0.0) {
      ++pc.negative;
    }
    pc.value_sum += r.value;
  }
  return cycle_++;
}

double RatingLedger::average_pair_frequency() const noexcept {
  if (last_counts_.empty()) return 0.0;
  double total = 0.0;
  // st-lint: allow(DET-2 sums exact integer counts - every order yields the same double)
  for (const auto& [key, counts] : last_counts_) {
    total += counts.positive + counts.negative;
  }
  return total / static_cast<double>(last_counts_.size());
}

void RatingLedger::clear() {
  open_.clear();
  last_.clear();
  last_counts_.clear();
  cycle_ = 0;
  total_ = 0;
}

}  // namespace st::reputation
