#pragma once
// Rating event model shared by all reputation systems.

#include <cstdint>

#include "graph/social_graph.hpp"

namespace st::reputation {

using graph::NodeId;

/// Product/resource category index ("interest" in the paper's vocabulary).
using InterestId = std::uint16_t;

/// No-interest sentinel for ratings not tied to a category.
inline constexpr InterestId kNoInterest = static_cast<InterestId>(-1);

/// One rating event: `rater` scores `ratee` after a transaction.
///
/// In the P2P simulation values are +1 (authentic service) / -1
/// (inauthentic), as in Section 5.1; the Overstock trace uses [-2, +2].
/// SocialTrust's Gaussian filter rescales `value` fractionally, so the
/// field is a double rather than an integer score.
struct Rating {
  NodeId rater = 0;
  NodeId ratee = 0;
  double value = 0.0;
  std::uint32_t cycle = 0;        ///< simulation cycle of the rating
  std::uint32_t query_cycle = 0;  ///< query cycle within the simulation cycle
  InterestId interest = kNoInterest;
};

}  // namespace st::reputation
