#include "reputation/eigentrust.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace st::reputation {

EigenTrust::EigenTrust(std::size_t node_count, std::vector<NodeId> pretrusted,
                       EigenTrustConfig config)
    : n_(node_count),
      pretrusted_(std::move(pretrusted)),
      config_(config),
      s_(node_count * node_count, 0.0),
      p_(node_count, 0.0),
      global_(node_count, 0.0) {
  if (node_count == 0)
    throw std::invalid_argument("EigenTrust: node_count must be > 0");
  for (NodeId id : pretrusted_) {
    if (id >= n_)
      throw std::out_of_range("EigenTrust: pretrusted id out of range");
  }
  if (pretrusted_.empty()) {
    std::fill(p_.begin(), p_.end(), 1.0 / static_cast<double>(n_));
  } else {
    for (NodeId id : pretrusted_)
      p_[id] = 1.0 / static_cast<double>(pretrusted_.size());
  }
  // Before any ratings exist, global trust is the teleport distribution —
  // equivalently the fixed point with an all-zero trust matrix.
  global_ = p_;
}

void EigenTrust::update(std::span<const Rating> cycle_ratings) {
  for (const Rating& r : cycle_ratings) {
    if (r.rater >= n_ || r.ratee >= n_ || r.rater == r.ratee) continue;
    s_[static_cast<std::size_t>(r.rater) * n_ + r.ratee] += r.value;
  }
  recompute_global();
}

void EigenTrust::recompute_global() {
  // Row-normalise clamped local trust. Rows with no positive outgoing
  // trust fall back to the teleport distribution p (the standard
  // EigenTrust treatment of "peer trusts nobody").
  std::vector<double> c(n_ * n_, 0.0);
  std::vector<bool> empty_row(n_, false);
  for (std::size_t i = 0; i < n_; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n_; ++j) {
      double v = std::max(s_[i * n_ + j], 0.0);
      c[i * n_ + j] = v;
      row_sum += v;
    }
    if (row_sum > 0.0) {
      for (std::size_t j = 0; j < n_; ++j) c[i * n_ + j] /= row_sum;
    } else {
      empty_row[i] = true;
    }
  }

  std::vector<double> t = global_;
  std::vector<double> next(n_, 0.0);
  const double a = config_.pretrusted_weight;
  last_iterations_ = 0;
  for (std::uint32_t iter = 0; iter < config_.max_iterations; ++iter) {
    // next = (1-a) * C^T t + a * p, with empty rows redistributed via p.
    double empty_mass = 0.0;
    for (std::size_t i = 0; i < n_; ++i) {
      if (empty_row[i]) empty_mass += t[i];
    }
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t i = 0; i < n_; ++i) {
      double ti = t[i];
      if (ti == 0.0 || empty_row[i]) continue;
      const double* row = &c[i * n_];
      for (std::size_t j = 0; j < n_; ++j) {
        next[j] += row[j] * ti;
      }
    }
    for (std::size_t j = 0; j < n_; ++j) {
      next[j] = (1.0 - a) * (next[j] + empty_mass * p_[j]) + a * p_[j];
    }
    double delta = 0.0;
    for (std::size_t j = 0; j < n_; ++j) delta += std::fabs(next[j] - t[j]);
    t.swap(next);
    ++last_iterations_;
    if (delta < config_.epsilon) break;
  }
  global_ = std::move(t);
}

double EigenTrust::reputation(NodeId node) const {
  if (node >= n_) throw std::out_of_range("EigenTrust: node out of range");
  return global_[node];
}

void EigenTrust::reset() {
  std::fill(s_.begin(), s_.end(), 0.0);
  global_ = p_;
  last_iterations_ = 0;
}

void EigenTrust::forget_node(NodeId node) {
  if (node >= n_) throw std::out_of_range("EigenTrust: node out of range");
  // Both the node's opinions (row) and the opinions about it (column)
  // vanish with the identity.
  for (std::size_t k = 0; k < n_; ++k) {
    s_[static_cast<std::size_t>(node) * n_ + k] = 0.0;
    s_[k * n_ + node] = 0.0;
  }
  recompute_global();
}

double EigenTrust::local_trust(NodeId i, NodeId j) const {
  if (i >= n_ || j >= n_)
    throw std::out_of_range("EigenTrust: node out of range");
  double row_sum = 0.0;
  for (std::size_t k = 0; k < n_; ++k)
    row_sum += std::max(s_[static_cast<std::size_t>(i) * n_ + k], 0.0);
  if (row_sum <= 0.0) return 0.0;
  return std::max(s_[static_cast<std::size_t>(i) * n_ + j], 0.0) / row_sum;
}

double EigenTrust::raw_trust(NodeId i, NodeId j) const {
  if (i >= n_ || j >= n_)
    throw std::out_of_range("EigenTrust: node out of range");
  return s_[static_cast<std::size_t>(i) * n_ + j];
}

}  // namespace st::reputation
