#include "reputation/ebay.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "reputation/ledger.hpp"

namespace st::reputation {

EbayReputation::EbayReputation(std::size_t node_count)
    : raw_(node_count, 0.0), normalized_(node_count, 0.0) {
  if (node_count == 0)
    throw std::invalid_argument("EbayReputation: node_count must be > 0");
}

void EbayReputation::update(std::span<const Rating> cycle_ratings) {
  // Collapse each (rater, ratee) pair's ratings to one signed vote.
  std::unordered_map<PairKey, double, PairKeyHash> pair_sums;
  pair_sums.reserve(cycle_ratings.size());
  for (const Rating& r : cycle_ratings) {
    if (r.rater >= raw_.size() || r.ratee >= raw_.size() ||
        r.rater == r.ratee) {
      continue;
    }
    pair_sums[PairKey{r.rater, r.ratee}] += r.value;
  }
  // Reduce in canonical (rater, ratee) order, not hash order: the
  // per-ratee accumulation is a floating-point sum, and iterating the
  // unordered_map would tie the result bits to the standard library's
  // bucket layout (DET-2 — the determinism contract of DESIGN.md §11).
  std::vector<std::pair<PairKey, double>> ordered(pair_sums.begin(),
                                                  pair_sums.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) {
              return a.first.rater != b.first.rater
                         ? a.first.rater < b.first.rater
                         : a.first.ratee < b.first.ratee;
            });
  for (const auto& [key, sum] : ordered) {
    // "Counts as one rating": the pair's cycle contribution saturates at
    // +/-1. For raw +/-1 ratings this is the sign; when a plugin has
    // rescaled the values, the fractional magnitude survives — otherwise a
    // down-weighted colluder pair (e.g. 600 ratings x 1e-4) would still
    // round back up to a full +1 vote.
    raw_[key.ratee] += std::clamp(sum, -1.0, 1.0);
  }
  renormalize();
}

void EbayReputation::renormalize() {
  double total = 0.0;
  for (double r : raw_) total += std::max(r, 0.0);
  if (total <= 0.0) {
    std::fill(normalized_.begin(), normalized_.end(), 0.0);
    return;
  }
  for (std::size_t i = 0; i < raw_.size(); ++i) {
    normalized_[i] = std::max(raw_[i], 0.0) / total;
  }
}

double EbayReputation::reputation(NodeId node) const {
  if (node >= normalized_.size())
    throw std::out_of_range("EbayReputation: node out of range");
  return normalized_[node];
}

void EbayReputation::reset() {
  std::fill(raw_.begin(), raw_.end(), 0.0);
  std::fill(normalized_.begin(), normalized_.end(), 0.0);
}

void EbayReputation::forget_node(NodeId node) {
  if (node >= raw_.size())
    throw std::out_of_range("EbayReputation: node out of range");
  raw_[node] = 0.0;
  renormalize();
}

double EbayReputation::raw_score(NodeId node) const {
  if (node >= raw_.size())
    throw std::out_of_range("EbayReputation: node out of range");
  return raw_[node];
}

}  // namespace st::reputation
