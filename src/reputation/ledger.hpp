#pragma once
// Rating ledger: the per-cycle event store feeding reputation updates.
//
// The paper's resource managers "keep track of the rating frequencies and
// values of other nodes for the nodes [they] manage" (Section 4.3); the
// ledger is that record, centralised here and sliced per manager by
// st::core::ResourceManager. It answers the two queries SocialTrust's
// detector needs: per-pair positive/negative counts within the current
// update interval (t+ / t-), and the system-wide average rating frequency F.

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "reputation/rating.hpp"

namespace st::reputation {

/// Directed rater->ratee pair key.
struct PairKey {
  NodeId rater;
  NodeId ratee;
  bool operator==(const PairKey&) const = default;
};

struct PairKeyHash {
  std::size_t operator()(const PairKey& k) const noexcept {
    return (static_cast<std::size_t>(k.rater) << 32U) ^ k.ratee;
  }
};

/// Per-pair tallies within one update interval.
struct PairCounts {
  std::uint32_t positive = 0;  ///< t+(i,j): ratings with value > 0
  std::uint32_t negative = 0;  ///< t-(i,j): ratings with value < 0
  double value_sum = 0.0;      ///< sum of raw values
};

class RatingLedger {
 public:
  /// Appends a rating to the current (open) cycle.
  void record(const Rating& rating);

  /// Closes the current cycle: the buffered ratings become the last
  /// completed cycle, retrievable via last_cycle(), and a new empty cycle
  /// opens. Returns the index of the cycle just closed.
  std::uint32_t close_cycle();

  /// Ratings of the most recently closed cycle (empty before first close).
  std::span<const Rating> last_cycle() const noexcept { return last_; }

  /// Ratings buffered in the currently open cycle.
  std::span<const Rating> open_cycle() const noexcept { return open_; }

  std::uint32_t current_cycle() const noexcept { return cycle_; }

  /// Per-pair tallies over the most recently closed cycle.
  const std::unordered_map<PairKey, PairCounts, PairKeyHash>& last_counts()
      const noexcept {
    return last_counts_;
  }

  /// Mean number of ratings per *active* directed pair in the last closed
  /// cycle — the empirical F of Section 4.1 that the frequency threshold
  /// theta*F scales. Zero when the cycle had no ratings.
  double average_pair_frequency() const noexcept;

  /// Lifetime number of ratings recorded.
  std::uint64_t total_ratings() const noexcept { return total_; }

  void clear();

 private:
  std::vector<Rating> open_;
  std::vector<Rating> last_;
  std::unordered_map<PairKey, PairCounts, PairKeyHash> last_counts_;
  std::uint32_t cycle_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace st::reputation
