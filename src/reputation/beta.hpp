#pragma once
// Beta reputation (Jøsang & Ismail, 2002) — a third baseline beyond the
// paper's two. Each node's reputation is the expected value of a Beta
// distribution over its positive/negative feedback:
//     E = (p + 1) / (p + n + 2)
// with p/n the accumulated positive/negative rating mass. Included because
// it is the other canonical P2P reputation aggregate; the SocialTrust
// plugin wraps it like any other system, which demonstrates the plugin's
// system-agnosticism beyond the paper's own baselines.
//
// To stay comparable with the rest of the library, reputations() publishes
// the Beta expectations normalised to sum to 1; beta_expectation() exposes
// the raw [0, 1] value.

#include <string_view>
#include <vector>

#include "reputation/reputation_system.hpp"

namespace st::reputation {

struct BetaReputationConfig {
  /// Exponential forgetting applied to the accumulated evidence at each
  /// update interval (1 = never forget; the original paper suggests
  /// discounting stale feedback).
  double forgetting = 1.0;
};

class BetaReputation final : public ReputationSystem {
 public:
  explicit BetaReputation(std::size_t node_count,
                          BetaReputationConfig config = {});

  std::string_view name() const noexcept override { return "Beta"; }
  std::size_t size() const noexcept override { return positive_.size(); }
  void update(std::span<const Rating> cycle_ratings) override;
  double reputation(NodeId node) const override;
  std::span<const double> reputations() const noexcept override {
    return normalized_;
  }
  void reset() override;
  void forget_node(NodeId node) override;

  /// Raw Beta expectation E = (p+1)/(p+n+2) in [0, 1].
  double beta_expectation(NodeId node) const;
  double positive_mass(NodeId node) const;
  double negative_mass(NodeId node) const;

 private:
  void renormalize();

  BetaReputationConfig config_;
  std::vector<double> positive_;
  std::vector<double> negative_;
  std::vector<double> normalized_;
};

}  // namespace st::reputation
