#pragma once
// The "EigenTrust" baseline *as evaluated in the SocialTrust paper*.
//
// The paper cites Kamvar et al.'s EigenTrust but the dynamics its figures
// exhibit are not those of the row-normalised power iteration:
//   * colluders rise far above the pretrusted floor (Figs. 8, 14), which
//     the teleport term a*p of standard EigenTrust makes impossible for
//     a = 0.5;
//   * absolute rating *frequency* matters (MMM's 80 ratings/query-cycle
//     beat PCM's 20, Section 5.6), which row normalisation cancels;
//   * "the ratings from nodes are weighted based on the reputations of the
//     nodes" and compromised pretrusted raters inject weight 0.5 directly
//     (Fig. 10).
// Those dynamics correspond to reputation-weighted cumulative rating
// aggregation:
//     R_j <- R_j + sum_i w_i * (sum of i's ratings of j this cycle),
//     w_i = 0.5 for pretrusted i, else rep_i (previous cycle),
//     rep  = max(R, 0) / sum_k max(R_k, 0).
// This class implements that model; the faithful Kamvar et al. algorithm
// lives in reputation/eigentrust.hpp, and the ablation bench compares the
// two. `name()` reports "EigenTrust" so bench output matches the paper's
// labels; DESIGN.md documents the interpretation.

#include <limits>
#include <string_view>
#include <vector>

#include "reputation/reputation_system.hpp"

namespace st::reputation {

struct PaperEigenTrustConfig {
  /// Fixed rating weight of pretrusted raters ("we set the weight of
  /// reputations from pretrusted nodes in EigenTrust to 0.5").
  double pretrusted_weight = 0.5;
  /// Optional saturation of one directed pair's contribution per update
  /// interval, in rating units (infinity = no cap, the paper's behaviour:
  /// its collusion arithmetic counts raw ratings per query cycle, e.g.
  /// "a boosted node receives 80 ratings per query cycle ... their
  /// reputations can still be increased", Section 5.6). A finite cap
  /// tames frequency amplification and is explored in the ablation bench.
  double pair_contribution_cap = 400.0;

  /// Evidence prior added to the normalisation mass when deriving *rater
  /// weights* (w_i = R_i+ / (sum_k R_k+ + prior)). In the first few cycles
  /// the total accumulated score is tiny, so a single lucky positive
  /// rating from a pretrusted peer (value 0.5) would hand a brand-new node
  /// a large weight — enough for a colluding pair to bootstrap its
  /// frequency amplification even at B=0.2, contradicting Fig. 9(a). The
  /// prior keeps weights proportional to *earned* evidence: colluders with
  /// B=0.6 accumulate real positive score and still amplify to the top
  /// (Fig. 8(a)); at B=0.2 their score drifts negative before the
  /// amplification can lock in. Expressed in absolute score units; the
  /// sentinel -1 auto-scales to 10 * node_count (2000 at the paper's
  /// 200-node scale), which is robust across simulation sizes.
  double weight_prior_mass = -1.0;

  /// Minimum weight of any non-pretrusted rater. A strictly zero weight
  /// for zero-reputation raters makes high-frequency ratings from fresh
  /// identities completely inert, which would also make MMM's
  /// boosting-then-rate-back loop unable to ignite at B=0.2 — the paper's
  /// Fig. 14(a) shows it does ("a boosted node receives 80 ratings per
  /// query cycle ... their reputations can still be increased"). The floor
  /// is small enough that PCM's 20 ratings/query-cycle pair stays below
  /// the negative service drift (Fig. 9(a)) while MMM's ~80 clears it.
  double rater_weight_floor = 5e-5;
};

class PaperEigenTrust final : public ReputationSystem {
 public:
  PaperEigenTrust(std::size_t node_count,
                  const std::vector<NodeId>& pretrusted,
                  PaperEigenTrustConfig config = {});

  std::string_view name() const noexcept override { return "EigenTrust"; }
  std::size_t size() const noexcept override { return raw_.size(); }
  void update(std::span<const Rating> cycle_ratings) override;
  double reputation(NodeId node) const override;
  std::span<const double> reputations() const noexcept override {
    return normalized_;
  }
  void reset() override;
  void forget_node(NodeId node) override;

  /// Raw accumulated weighted score (may be negative).
  double raw_score(NodeId node) const;

  /// The rating weight node `i` currently carries as a rater.
  double rater_weight(NodeId i) const;

  const PaperEigenTrustConfig& config() const noexcept { return config_; }

 private:
  void renormalize();

  PaperEigenTrustConfig config_;
  std::vector<bool> is_pretrusted_;
  std::vector<double> raw_;
  std::vector<double> normalized_;
};

}  // namespace st::reputation
