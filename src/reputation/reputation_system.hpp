#pragma once
// Abstract reputation system interface.
//
// SocialTrust "can be used in any reputation system for P2P networks"
// (Section 4): it rescales rating values and hands the adjusted stream to
// the underlying system. This interface is that seam — EigenTrust, the
// eBay-style accumulator, and any user-supplied system implement it, and
// st::core::SocialTrustPlugin wraps one.

#include <span>
#include <string_view>
#include <vector>

#include "reputation/rating.hpp"

namespace st::reputation {

class ReputationSystem {
 public:
  virtual ~ReputationSystem() = default;

  virtual std::string_view name() const noexcept = 0;

  /// Number of nodes this system scores.
  virtual std::size_t size() const noexcept = 0;

  /// Consumes the ratings of one completed update interval (one simulation
  /// cycle in the paper's experiments) and recomputes global reputations.
  /// Rating values may already be fractional if a plugin adjusted them.
  virtual void update(std::span<const Rating> cycle_ratings) = 0;

  /// Global reputation of `node`, normalised so that the vector sums to 1
  /// (both paper baselines report normalised values; see Section 5.1).
  virtual double reputation(NodeId node) const = 0;

  /// Full normalised reputation vector, indexed by node id.
  virtual std::span<const double> reputations() const noexcept = 0;

  /// Restores the initial all-zeros state.
  virtual void reset() = 0;

  /// Erases one node's accumulated reputation evidence — the system-side
  /// effect of a peer discarding its identity and rejoining fresh
  /// (whitewashing). Both the node's received evidence and, where the
  /// system tracks it, its standing as a rater are forgotten. Reputations
  /// are renormalised afterwards.
  virtual void forget_node(NodeId node) = 0;
};

}  // namespace st::reputation
