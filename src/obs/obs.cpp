#include "obs/obs.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <limits>
#include <sstream>

namespace st::obs {

namespace {

/// Default latency buckets (microseconds): decade-ish resolution from
/// 1 us to 10 s. Chosen so one set of bounds serves both the per-task
/// pool timings (~us) and whole update intervals (~ms-s).
const std::vector<double>& default_latency_bounds_us() {
  static const std::vector<double> bounds = {
      1.0,     2.5,     5.0,     10.0,     25.0,     50.0,      100.0,
      250.0,   500.0,   1e3,     2.5e3,    5e3,      1e4,       2.5e4,
      5e4,     1e5,     2.5e5,   5e5,      1e6,      1e7};
  return bounds;
}

/// fetch_add for atomic<double> via CAS (portable across libstdc++
/// versions that lack the C++20 floating-point fetch_add).
void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// --- JSON line building -----------------------------------------------------

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// JSON has no inf/nan; non-finite values become null. Whole numbers are
/// printed without a fractional part so counters read naturally.
void append_json_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  std::ostringstream ss;
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    ss << static_cast<long long>(v);
  } else {
    ss.precision(17);
    ss << v;
  }
  out += ss.str();
}

std::string to_jsonl(const Snapshot& snap) {
  std::string out;
  out.reserve(512);
  out += "{\"seq\":";
  append_json_number(out, static_cast<double>(snap.sequence));
  out += ",\"scope\":";
  append_json_string(out, snap.scope);
  out += ",\"label\":";
  append_json_string(out, snap.label);

  out += ",\"extra\":{";
  for (std::size_t i = 0; i < snap.extras.size(); ++i) {
    if (i) out += ',';
    append_json_string(out, snap.extras[i].first);
    out += ':';
    append_json_number(out, snap.extras[i].second);
  }
  out += "},\"counters\":{";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (i) out += ',';
    append_json_string(out, snap.counters[i].first);
    out += ':';
    append_json_number(out, static_cast<double>(snap.counters[i].second));
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i) out += ',';
    append_json_string(out, snap.gauges[i].first);
    out += ':';
    append_json_number(out, static_cast<double>(snap.gauges[i].second));
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    if (i) out += ',';
    const auto& [name, hist] = snap.histograms[i];
    append_json_string(out, name);
    out += ":{\"count\":";
    append_json_number(out, static_cast<double>(hist.count));
    out += ",\"sum\":";
    append_json_number(out, hist.sum);
    out += ",\"min\":";
    append_json_number(out, hist.count ? hist.min : 0.0);
    out += ",\"max\":";
    append_json_number(out, hist.count ? hist.max : 0.0);
    // Buckets as [upper_bound, count] pairs; the +inf bound is null.
    out += ",\"buckets\":[";
    for (std::size_t b = 0; b < hist.buckets.size(); ++b) {
      if (b) out += ',';
      out += '[';
      if (std::isinf(hist.buckets[b].upper)) {
        out += "null";
      } else {
        append_json_number(out, hist.buckets[b].upper);
      }
      out += ',';
      append_json_number(out, static_cast<double>(hist.buckets[b].count));
      out += ']';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace

// --- Histogram --------------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(upper_bounds.empty() ? default_latency_bounds_us()
                                   : std::move(upper_bounds)),
      buckets_(std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() +
                                                              1)) {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::record(double value) noexcept {
  if (!enabled()) return;
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  auto idx = static_cast<std::size_t>(it - bounds_.begin());  // +inf = last
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
  std::uint64_t prev = count_.fetch_add(1, std::memory_order_relaxed);
  if (prev == 0) {
    // First sample seeds min/max; racing first samples both publish and
    // then converge through the CAS loops below.
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  }
  atomic_min(min_, value);
  atomic_max(max_, value);
}

HistogramValue Histogram::value() const {
  HistogramValue out;
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  out.min = min_.load(std::memory_order_relaxed);
  out.max = max_.load(std::memory_order_relaxed);
  out.buckets.reserve(bounds_.size() + 1);
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    out.buckets.push_back(HistogramBucket{
        bounds_[i], buckets_[i].load(std::memory_order_relaxed)});
  }
  out.buckets.push_back(HistogramBucket{
      std::numeric_limits<double>::infinity(),
      buckets_[bounds_.size()].load(std::memory_order_relaxed)});
  return out;
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

// --- Registry ---------------------------------------------------------------

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> upper_bounds) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(upper_bounds)))
             .first;
  }
  return *it->second;
}

Snapshot Registry::snapshot() const {
  // The three copy loops below must run under the registry mutex: the
  // snapshot's point-in-time coherence against concurrent registration
  // is the whole contract, each loop is bounded by the metric count
  // (dozens), and the vectors are reserved first. Cold path — once per
  // update interval.
  std::lock_guard lock(mutex_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  // st-lint: allow(LOCK-3 snapshot coherence requires the registry lock; bounded by metric count)
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  // st-lint: allow(LOCK-3 snapshot coherence requires the registry lock; bounded by metric count)
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  // st-lint: allow(LOCK-3 snapshot coherence requires the registry lock; bounded by metric count)
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->value());
  }
  return snap;
}

void Registry::reset_values() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

// --- Obs --------------------------------------------------------------------

Obs& Obs::instance() {
  static Obs obs;
  return obs;
}

void Obs::configure(StObsConfig config) {
  std::lock_guard lock(mutex_);
  // Close the gate first so no site accumulates into the values being
  // reset (configure is documented quiescent-only; this is belt and
  // braces, not a synchronisation guarantee).
  detail::g_enabled.store(false, std::memory_order_relaxed);
  sink_.reset();
  snapshots_.clear();
  sequence_ = 0;
  registry_.reset_values();
  config_ = std::move(config);
  if (config_.enabled && !config_.jsonl_path.empty()) {
    auto sink = std::make_unique<std::ofstream>(config_.jsonl_path,
                                                std::ios::trunc);
    if (*sink) {
      sink_ = std::move(sink);
    } else {
      std::cerr << "obs: cannot open " << config_.jsonl_path
                << " for writing; continuing registry-only\n";
    }
  }
  detail::g_enabled.store(config_.enabled, std::memory_order_relaxed);
}

std::uint64_t Obs::emit_interval(std::string_view scope,
                                 std::string_view label,
                                 std::span<const ExtraField> extras) {
  if (!enabled()) return 0;
  Snapshot snap = registry_.snapshot();
  snap.scope = scope;
  snap.label = label;
  snap.extras.reserve(extras.size());
  for (const ExtraField& e : extras) {
    snap.extras.emplace_back(std::string(e.name), e.value);
  }
  std::lock_guard lock(mutex_);
  snap.sequence = ++sequence_;
  if (sink_) {
    *sink_ << to_jsonl(snap) << '\n';
    sink_->flush();  // one interval per line; keep the file tail-able
  }
  snapshots_.push_back(std::move(snap));
  return sequence_;
}

std::vector<Snapshot> Obs::snapshots() const {
  std::lock_guard lock(mutex_);
  return snapshots_;
}

std::size_t Obs::snapshot_count() const {
  std::lock_guard lock(mutex_);
  return snapshots_.size();
}

void Obs::flush() {
  std::lock_guard lock(mutex_);
  if (sink_) sink_->flush();
}

}  // namespace st::obs
