#pragma once
// st::obs — low-overhead metrics & tracing for the SocialTrust pipeline.
//
// The layer has three parts:
//
//   * Metric primitives — thread-safe named Counters, Gauges, fixed-bucket
//     Histograms, and an RAII ScopedTimer that records elapsed wall-clock
//     into a Histogram.
//   * A process-wide Registry mapping metric names to primitives. Handles
//     are resolved once (typically in a constructor) and are stable for
//     the life of the process; increments never take the registry lock.
//   * A per-update-interval event sink: emit_interval() snapshots the
//     registry, appends caller-supplied per-interval fields, keeps the
//     snapshot in memory, and (when configured) writes it as one JSON
//     object per line to a JSONL file.
//
// Cost contract. Every instrumentation site is gated on a single
// process-global `std::atomic<bool>` loaded with memory_order_relaxed:
// when `StObsConfig::enabled == false` a site costs one relaxed atomic
// load and one predictable branch — no clock reads, no locks, no
// allocation. Metric mutation uses relaxed atomics only, which is
// sufficient because metrics are monotonic tallies read at quiescent
// points (interval boundaries, after thread-pool joins), never signals
// other threads synchronise on.
//
// Determinism contract. Instrumentation is observation-only: nothing the
// adjustment algorithm reads is ever written by this layer, so enabling
// it cannot change adjusted ratings, flagged sets, or reputations (the
// PR-1 bit-identity guarantee; enforced by tests/parallel_update_test.cpp
// and the bench_parallel_update --obs cross-check). See
// docs/OBSERVABILITY.md for the full metric reference and JSONL schema.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace st::obs {

/// Process-wide observability configuration, applied via
/// Obs::instance().configure(). Reconfiguring resets all metric values,
/// drops retained snapshots, and reopens (truncates) the JSONL sink; call
/// it only at quiescent points (no instrumented code running).
struct StObsConfig {
  /// Master switch. When false every instrumentation site reduces to one
  /// relaxed atomic load + branch, emit_interval() is a no-op, and no
  /// output file is created.
  bool enabled = false;
  /// Path of the JSONL event file. Empty = no file; interval snapshots
  /// are still retained in memory (tests / embedding applications).
  std::string jsonl_path;
};

namespace detail {
/// The global gate. Inline so the enabled() check compiles to a direct
/// relaxed load at every site with no function-call overhead.
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

/// True when instrumentation is globally enabled. The single
/// relaxed-atomic branch every site pays when observability is off.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

// --- metric primitives ------------------------------------------------------

/// Monotonic event tally. add() is wait-free (one relaxed fetch_add).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed level (e.g. queue depth). set() overwrites,
/// add() moves the level by a delta (possibly negative).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    if (!enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    if (!enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }
  std::atomic<std::int64_t> value_{0};
};

/// One bucket row of a histogram snapshot. `upper` is the inclusive upper
/// bound; the final bucket has upper = +infinity.
struct HistogramBucket {
  double upper = 0.0;
  std::uint64_t count = 0;
};

/// Value-independent histogram snapshot (count/sum/min/max + buckets).
struct HistogramValue {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< meaningful only when count > 0
  double max = 0.0;  ///< meaningful only when count > 0
  std::vector<HistogramBucket> buckets;
};

/// Fixed-bucket histogram. Bucket upper bounds are set at construction
/// and never change; record() finds the bucket by binary search and
/// updates count/sum/min/max with relaxed atomics (CAS loops for the
/// doubles), so concurrent record() calls are safe and lock-free.
class Histogram {
 public:
  /// `upper_bounds` must be strictly ascending; an implicit +infinity
  /// bucket is appended. An empty list yields the default latency buckets
  /// (microsecond scale, 1 us .. 10 s).
  explicit Histogram(std::vector<double> upper_bounds = {});

  void record(double value) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  /// Consistent-enough snapshot for quiescent readers (see class comment).
  HistogramValue value() const;
  std::span<const double> upper_bounds() const noexcept { return bounds_; }

 private:
  friend class Registry;
  void reset() noexcept;

  std::vector<double> bounds_;  // ascending, excludes the +inf bucket
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds+1 slots
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// RAII wall-clock timer: records the elapsed time (microseconds) into a
/// Histogram at scope exit, or earlier via stop(). When instrumentation
/// is disabled at construction the clock is never read.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist) noexcept : hist_(&hist) {
    if (enabled()) {
      armed_ = true;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedTimer() { stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Records now instead of at scope exit; returns the elapsed
  /// microseconds (0.0 when disarmed). Idempotent.
  double stop() noexcept {
    if (!armed_) return 0.0;
    armed_ = false;
    double us = std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
    hist_->record(us);
    return us;
  }

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_{};
  bool armed_ = false;
};

// --- registry ---------------------------------------------------------------

/// One caller-supplied per-interval field for emit_interval(). The
/// string_view is copied into the snapshot, so temporaries are fine.
struct ExtraField {
  std::string_view name;
  double value = 0.0;
};

/// A full registry snapshot plus the per-interval fields of one event.
/// Counters/gauges are cumulative process-wide values at snapshot time,
/// sorted by name (the registry iterates a std::map).
struct Snapshot {
  std::uint64_t sequence = 0;  ///< 1-based emission index since configure()
  std::string scope;           ///< event kind, e.g. "socialtrust.update"
  std::string label;           ///< free-form qualifier, e.g. the system name
  std::vector<std::pair<std::string, double>> extras;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramValue>> histograms;
};

/// Name → metric map. Creation takes a mutex; returned references are
/// stable for the registry's lifetime, so call sites resolve once and
/// increment lock-free thereafter. Metrics exist independently of the
/// enabled flag (a disabled registry simply never accumulates).
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Returns the histogram registered under `name`, creating it with
  /// `upper_bounds` (empty = default latency buckets) on first use.
  /// Bounds of an existing histogram are never altered.
  Histogram& histogram(std::string_view name,
                       std::vector<double> upper_bounds = {});

  /// Point-in-time copy of every metric, sorted by name.
  Snapshot snapshot() const;

  /// Zeroes every metric value (handles stay valid).
  void reset_values();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// --- process-wide surface ---------------------------------------------------

/// The process-wide observability instance: the registry, the enabled
/// gate, and the interval event sink. A singleton because the
/// instrumented layers (thread pool, closeness cache, detector) have no
/// natural configuration path of their own — mirroring the default-
/// registry convention of production metrics libraries.
class Obs {
 public:
  static Obs& instance();

  /// Applies `config`: flips the global gate, resets all metric values,
  /// clears retained snapshots, and (when enabled with a non-empty
  /// jsonl_path) truncates/opens the sink file. Must be called at a
  /// quiescent point. A disabled config never creates or touches a file.
  void configure(StObsConfig config);
  const StObsConfig& config() const noexcept { return config_; }

  Registry& registry() noexcept { return registry_; }

  /// Emits one interval event: snapshots the registry, attaches
  /// scope/label/extras, retains the snapshot, and writes one JSONL line
  /// when a sink is open. Returns the event's sequence number, or 0 when
  /// disabled (no snapshot, no write).
  std::uint64_t emit_interval(std::string_view scope,
                              std::string_view label = {},
                              std::span<const ExtraField> extras = {});

  /// Retained snapshots since the last configure(), in emission order.
  std::vector<Snapshot> snapshots() const;
  std::size_t snapshot_count() const;

  /// Flushes the JSONL sink (each line is already written unbuffered at
  /// emit time; this is for embedders that want a hard sync point).
  void flush();

 private:
  Obs() = default;

  mutable std::mutex mutex_;  // guards config_, sink_, snapshots_, sequence_
  StObsConfig config_;
  Registry registry_;
  std::unique_ptr<std::ofstream> sink_;
  std::vector<Snapshot> snapshots_;
  std::uint64_t sequence_ = 0;
};

}  // namespace st::obs
