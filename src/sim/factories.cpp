#include "sim/factories.hpp"

#include "core/resource_manager.hpp"
#include "core/socialtrust.hpp"
#include "reputation/ebay.hpp"

namespace st::sim {

obs::StObsConfig apply_observability_flags(const util::CliArgs& args) {
  obs::StObsConfig config;
  if (auto out = args.get("obs-out"); out && !out->empty()) {
    config.enabled = true;
    config.jsonl_path = *out;
  } else if (args.has("obs")) {
    config.enabled = true;
  }
  obs::Obs::instance().configure(config);
  return config;
}

SystemFactory make_eigentrust_factory(reputation::EigenTrustConfig config) {
  return [config](const graph::SocialGraph&, const core::InterestProfiles&,
                  const std::vector<NodeId>& pretrusted, std::size_t n) {
    return std::make_unique<reputation::EigenTrust>(n, pretrusted, config);
  };
}

SystemFactory make_paper_eigentrust_factory(
    reputation::PaperEigenTrustConfig config) {
  return [config](const graph::SocialGraph&, const core::InterestProfiles&,
                  const std::vector<NodeId>& pretrusted, std::size_t n) {
    return std::make_unique<reputation::PaperEigenTrust>(n, pretrusted,
                                                         config);
  };
}

SystemFactory make_ebay_factory() {
  return [](const graph::SocialGraph&, const core::InterestProfiles&,
            const std::vector<NodeId>&, std::size_t n) {
    return std::make_unique<reputation::EbayReputation>(n);
  };
}

SystemFactory make_socialtrust_factory(SystemFactory inner,
                                       core::SocialTrustConfig config) {
  return [inner = std::move(inner), config](
             const graph::SocialGraph& graph,
             const core::InterestProfiles& profiles,
             const std::vector<NodeId>& pretrusted, std::size_t n) {
    auto wrapped = inner(graph, profiles, pretrusted, n);
    return std::make_unique<core::SocialTrustPlugin>(std::move(wrapped),
                                                     graph, profiles, config);
  };
}

SystemFactory make_socialtrust_factory(SystemFactory inner,
                                       core::SocialTrustConfig config,
                                       std::size_t threads) {
  config.threads = threads;
  return make_socialtrust_factory(std::move(inner), config);
}

SystemFactory make_distributed_socialtrust_factory(
    SystemFactory inner, core::SocialTrustConfig config,
    std::size_t manager_count) {
  return [inner = std::move(inner), config, manager_count](
             const graph::SocialGraph& graph,
             const core::InterestProfiles& profiles,
             const std::vector<NodeId>& pretrusted, std::size_t n) {
    auto wrapped = inner(graph, profiles, pretrusted, n);
    return std::make_unique<core::ResourceManagerNetwork>(
        std::move(wrapped), graph, profiles, config, manager_count);
  };
}

}  // namespace st::sim
