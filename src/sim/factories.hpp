#pragma once
// Convenience SystemFactory builders for the systems the paper compares:
// eBay, EigenTrust, and either wrapped in SocialTrust (centralised or
// distributed). Benches compose these by name.

#include <cstddef>

#include "core/config.hpp"
#include "reputation/eigentrust.hpp"
#include "reputation/paper_eigentrust.hpp"
#include "sim/simulator.hpp"

namespace st::sim {

/// Faithful Kamvar et al. EigenTrust (row-normalised power iteration).
SystemFactory make_eigentrust_factory(
    reputation::EigenTrustConfig config = {});

/// The paper's EigenTrust variant (reputation-weighted cumulative rating
/// aggregation; see reputation/paper_eigentrust.hpp). The figure benches
/// use this one.
SystemFactory make_paper_eigentrust_factory(
    reputation::PaperEigenTrustConfig config = {});

/// Plain eBay-style accumulative reputation.
SystemFactory make_ebay_factory();

/// Wraps the system produced by `inner` in a SocialTrustPlugin.
SystemFactory make_socialtrust_factory(SystemFactory inner,
                                       core::SocialTrustConfig config = {});

/// As above with the update-interval worker count overridden — the hook
/// bench binaries use to plumb --threads without respelling the whole
/// config (1 = serial, 0 = hardware concurrency; results are identical
/// either way, only wall-clock changes).
SystemFactory make_socialtrust_factory(SystemFactory inner,
                                       core::SocialTrustConfig config,
                                       std::size_t threads);

/// Wraps the system produced by `inner` in the distributed
/// resource-manager execution of SocialTrust.
SystemFactory make_distributed_socialtrust_factory(
    SystemFactory inner, core::SocialTrustConfig config,
    std::size_t manager_count);

}  // namespace st::sim
