#pragma once
// Convenience SystemFactory builders for the systems the paper compares:
// eBay, EigenTrust, and either wrapped in SocialTrust (centralised or
// distributed). Benches compose these by name.

#include <cstddef>

#include "core/config.hpp"
#include "obs/obs.hpp"
#include "reputation/eigentrust.hpp"
#include "reputation/paper_eigentrust.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"

namespace st::sim {

/// Parses the shared observability flags and configures the process-global
/// obs layer (src/obs/) accordingly:
///   --obs                 enable in-memory metrics + interval snapshots
///   --obs-out <path.jsonl> as --obs, additionally streaming one JSON
///                          object per interval event to <path.jsonl>
/// `--obs-out` implies `--obs`. Without either flag the obs layer is left
/// (re)configured as disabled — a true no-op. Returns the applied config.
/// Call once at startup, before any Simulator runs; instrumentation is
/// observation-only, so results are bit-identical either way (see
/// docs/OBSERVABILITY.md).
obs::StObsConfig apply_observability_flags(const util::CliArgs& args);

/// Faithful Kamvar et al. EigenTrust (row-normalised power iteration).
SystemFactory make_eigentrust_factory(
    reputation::EigenTrustConfig config = {});

/// The paper's EigenTrust variant (reputation-weighted cumulative rating
/// aggregation; see reputation/paper_eigentrust.hpp). The figure benches
/// use this one.
SystemFactory make_paper_eigentrust_factory(
    reputation::PaperEigenTrustConfig config = {});

/// Plain eBay-style accumulative reputation.
SystemFactory make_ebay_factory();

/// Wraps the system produced by `inner` in a SocialTrustPlugin.
SystemFactory make_socialtrust_factory(SystemFactory inner,
                                       core::SocialTrustConfig config = {});

/// As above with the update-interval worker count overridden — the hook
/// bench binaries use to plumb --threads without respelling the whole
/// config (1 = serial, 0 = hardware concurrency; results are identical
/// either way, only wall-clock changes).
SystemFactory make_socialtrust_factory(SystemFactory inner,
                                       core::SocialTrustConfig config,
                                       std::size_t threads);

/// Wraps the system produced by `inner` in the distributed
/// resource-manager execution of SocialTrust.
SystemFactory make_distributed_socialtrust_factory(
    SystemFactory inner, core::SocialTrustConfig config,
    std::size_t manager_count);

}  // namespace st::sim
