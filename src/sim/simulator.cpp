#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>

namespace st::sim {

Simulator::Simulator(SimConfig config, SystemFactory factory,
                     std::unique_ptr<CollusionStrategy> strategy,
                     std::uint64_t seed)
    : config_(config),
      rng_(seed),
      graph_(config.node_count),
      profiles_(config.node_count, config.interest_count),
      interest_members_(config.interest_count),
      types_(config.node_count, NodeType::kNormal),
      roles_(config.node_count, CollusionRole::kNone),
      compromised_(config.node_count, false),
      active_prob_(config.node_count, 1.0),
      whitewash_counts_(config.node_count, 0),
      capacity_left_(config.node_count, 0),
      strategy_(std::move(strategy)) {
  if (config_.node_count == 0)
    throw std::invalid_argument("Simulator: node_count must be > 0");
  if (config_.pretrusted_count + config_.colluder_count > config_.node_count)
    throw std::invalid_argument(
        "Simulator: pretrusted + colluders exceed node count");
  if (!factory) throw std::invalid_argument("Simulator: null SystemFactory");

  auto& registry = obs::Obs::instance().registry();
  obs_.requests = &registry.counter("sim.requests");
  obs_.requests_to_colluders = &registry.counter("sim.requests_to_colluders");
  obs_.requests_to_pretrusted =
      &registry.counter("sim.requests_to_pretrusted");
  obs_.authentic_services = &registry.counter("sim.authentic_services");
  obs_.inauthentic_services = &registry.counter("sim.inauthentic_services");
  obs_.ratings = &registry.counter("sim.ratings");
  obs_.fake_ratings = &registry.counter("sim.fake_ratings");

  assign_interests();
  assign_roles();
  build_social_graph();
  preferred_provider_.assign(
      config_.node_count,
      std::vector<NodeId>(config_.interest_count, static_cast<NodeId>(-1)));
  for (NodeId v = 0; v < config_.node_count; ++v) {
    active_prob_[v] =
        rng_.uniform(config_.active_prob_min, config_.active_prob_max);
  }
  system_ = factory(graph_, profiles_, pretrusted_, config_.node_count);
  if (!system_ || system_->size() != config_.node_count)
    throw std::invalid_argument(
        "Simulator: factory returned null or wrongly sized system");
  if (strategy_) strategy_->setup(*this, rng_);
}

void Simulator::assign_interests() {
  interest_rank_.resize(config_.node_count);
  request_dist_.reserve(config_.node_count);
  for (NodeId v = 0; v < config_.node_count; ++v) {
    auto count = static_cast<std::size_t>(rng_.uniform_u64(
        config_.min_interests,
        std::min(config_.max_interests, config_.interest_count)));
    auto picks = rng_.sample_without_replacement(config_.interest_count,
                                                 count);
    // The sample order is already random; treat it as the node's interest
    // ranking (rank 0 = favourite category) and declare the set.
    std::vector<InterestId> ranked;
    ranked.reserve(picks.size());
    for (std::size_t p : picks) ranked.push_back(static_cast<InterestId>(p));
    interest_rank_[v] = ranked;
    profiles_.set_interests(v, ranked);
    for (InterestId cat : ranked) interest_members_[cat].push_back(v);
    request_dist_.emplace_back(ranked.size(), config_.request_zipf_exponent);
  }
}

void Simulator::assign_roles() {
  // Paper id convention (1-based ids 1-9 and 10-39) maps to indices
  // [0, pretrusted_count) and [pretrusted_count, +colluder_count).
  pretrusted_.clear();
  colluders_.clear();
  for (std::size_t i = 0; i < config_.pretrusted_count; ++i) {
    auto id = static_cast<NodeId>(i);
    types_[id] = NodeType::kPretrusted;
    pretrusted_.push_back(id);
  }
  for (std::size_t i = 0; i < config_.colluder_count; ++i) {
    auto id = static_cast<NodeId>(config_.pretrusted_count + i);
    types_[id] = NodeType::kColluder;
    colluders_.push_back(id);
  }
}

void Simulator::build_social_graph() {
  // Background friendship graph: social_degree random friends per node, so
  // pairwise distances concentrate on 1-3 hops (cf. Section 5.1). Each
  // edge carries [normal_relationships_min, max] relationship types;
  // colluder-colluder edges carry [colluder_relationships_min, max] and are
  // wired by the collusion strategy (which also fixes their distance to 1).
  const std::size_t n = config_.node_count;
  const std::size_t target_edges = n * config_.social_degree / 2;
  std::size_t made = 0;
  std::size_t guard = 0;
  while (made < target_edges && guard++ < target_edges * 50) {
    auto a = static_cast<NodeId>(rng_.index(n));
    auto b = static_cast<NodeId>(rng_.index(n));
    if (a == b || graph_.adjacent(a, b)) continue;
    auto rel_count = static_cast<std::size_t>(
        rng_.uniform_u64(config_.normal_relationships_min,
                         config_.normal_relationships_max));
    auto rels = rng_.sample_without_replacement(graph::kRelationshipCount,
                                                rel_count);
    for (std::size_t r : rels) {
      graph_.add_relationship(a, b, static_cast<graph::Relationship>(r));
    }
    ++made;
  }
}

std::uint32_t Simulator::whitewash(NodeId node) {
  system_->forget_node(node);
  graph_.clear_node(node);
  profiles_.clear_requests(node);
  // Clients attached to the vanished identity must re-select.
  for (auto& per_interest : preferred_provider_) {
    for (NodeId& provider : per_interest) {
      if (provider == node) provider = static_cast<NodeId>(-1);
    }
  }
  current_bar_ = selection_bar();
  return ++whitewash_counts_[node];
}

double Simulator::authentic_probability(NodeId node) const {
  switch (types_.at(node)) {
    case NodeType::kPretrusted:
      return config_.pretrusted_authentic;
    case NodeType::kNormal:
      return config_.normal_authentic;
    case NodeType::kColluder:
      return config_.colluder_authentic;
  }
  return config_.normal_authentic;
}

void Simulator::submit_rating(NodeId rater, NodeId ratee, double value,
                              InterestId interest, bool is_transaction) {
  reputation::Rating r;
  r.rater = rater;
  r.ratee = ratee;
  r.value = value;
  r.interest = interest;
  ledger_.record(r);
  obs_.ratings->add(1);
  // Rating frequency doubles as social interaction frequency f(i,j)
  // (Section 5.1: "The social interaction frequency f(i,j) equals the
  // rating frequency of n_i to n_j").
  graph_.record_interaction(rater, ratee);
  if (is_transaction) {
    profiles_.record_request(rater, interest);
  } else {
    ++fake_ratings_;
    obs_.fake_ratings->add(1);
  }
}

namespace {
constexpr NodeId kNoProvider = static_cast<NodeId>(-1);
}  // namespace

double Simulator::selection_bar() const {
  if (!config_.relative_reputation_threshold) {
    return config_.reputation_threshold;
  }
  auto reps = system_->reputations();
  double max_rep = 0.0;
  for (double r : reps) max_rep = std::max(max_rep, r);
  return config_.reputation_threshold * max_rep;
}

NodeId Simulator::select_server(NodeId client, InterestId interest) {
  // Reputations only change at simulation-cycle boundaries, so the bar is
  // refreshed there (run loop) and reused across the cycle's requests.
  const double bar = current_bar_;
  // Repeat patronage: stay with the current provider while it has spare
  // capacity and still satisfies the selection rule's reputation bar (it
  // is dropped on inauthentic service in issue_request).
  if (config_.sticky_selection) {
    NodeId pref = preferred_provider_[client][interest];
    if (pref != kNoProvider && pref != client && capacity_left_[pref] > 0 &&
        system_->reputation(pref) > bar) {
      return pref;
    }
  }
  const auto& members = interest_members_.at(interest);
  if (members.empty()) return client;
  // Bounded-patience draw: sample random capacitated interest neighbours,
  // accept the first above the reputation bar, settle for the last
  // otherwise. (A few extra draws absorb self/full-capacity hits.)
  NodeId fallback = client;
  std::size_t eligible_draws = 0;
  for (std::size_t attempt = 0;
       attempt < (config_.selection_patience + 1) * 4; ++attempt) {
    NodeId cand = members[rng_.index(members.size())];
    if (cand == client || capacity_left_[cand] == 0) continue;
    fallback = cand;
    if (system_->reputation(cand) > bar) break;
    if (++eligible_draws > config_.selection_patience) break;
  }
  if (fallback == client) return client;  // sentinel: no server available
  if (config_.sticky_selection) {
    preferred_provider_[client][interest] = fallback;
  }
  return fallback;
}

void Simulator::issue_request(NodeId client) {
  const auto& ranked = interest_rank_[client];
  if (ranked.empty()) return;
  InterestId interest = ranked[request_dist_[client](rng_)];
  NodeId server = select_server(client, interest);
  if (server == client) return;  // nobody can serve this cycle

  --capacity_left_[server];
  ++total_requests_;
  obs_.requests->add(1);
  if (types_[server] == NodeType::kColluder) {
    ++requests_to_colluders_;
    obs_.requests_to_colluders->add(1);
  }
  if (types_[server] == NodeType::kPretrusted) {
    ++requests_to_pretrusted_;
    obs_.requests_to_pretrusted->add(1);
  }

  bool authentic = rng_.bernoulli(authentic_probability(server));
  if (authentic) {
    ++authentic_services_;
    obs_.authentic_services->add(1);
  } else {
    ++inauthentic_services_;
    obs_.inauthentic_services->add(1);
    // Dissatisfied clients abandon the provider (inference I1: a buyer is
    // "unlikely to repeatedly choose a seller with low QoS").
    if (config_.sticky_selection) {
      preferred_provider_[client][interest] = kNoProvider;
    }
  }
  submit_rating(client, server, authentic ? 1.0 : -1.0, interest,
                /*is_transaction=*/true);
}

void Simulator::record_cycle_metrics(RunResult& result) {
  auto group_mean = [&](const std::vector<NodeId>& group) {
    if (group.empty()) return 0.0;
    double sum = 0.0;
    for (NodeId v : group) sum += system_->reputation(v);
    return sum / static_cast<double>(group.size());
  };
  result.pretrusted_mean_by_cycle.push_back(group_mean(pretrusted_));
  result.colluder_mean_by_cycle.push_back(group_mean(colluders_));

  double normal_sum = 0.0;
  std::size_t normal_count = 0;
  for (NodeId v = 0; v < config_.node_count; ++v) {
    if (types_[v] == NodeType::kNormal) {
      normal_sum += system_->reputation(v);
      ++normal_count;
    }
  }
  result.normal_mean_by_cycle.push_back(
      normal_count ? normal_sum / static_cast<double>(normal_count) : 0.0);

  for (std::size_t c = 0; c < colluders_.size(); ++c) {
    result.colluder_history[c].push_back(
        system_->reputation(colluders_[c]));
  }
}

void Simulator::finalize_metrics(RunResult& result) const {
  result.final_reputation.assign(system_->reputations().begin(),
                                 system_->reputations().end());

  double boosted_sum = 0.0, boosting_sum = 0.0;
  std::size_t boosted_n = 0, boosting_n = 0;
  for (NodeId c : colluders_) {
    CollusionRole role = roles_[c];
    double rep = result.final_reputation[c];
    if (role == CollusionRole::kBoosted || role == CollusionRole::kBoth) {
      boosted_sum += rep;
      ++boosted_n;
    }
    if (role == CollusionRole::kBoosting || role == CollusionRole::kBoth) {
      boosting_sum += rep;
      ++boosting_n;
    }
  }
  result.boosted_final_mean =
      boosted_n ? boosted_sum / static_cast<double>(boosted_n) : 0.0;
  result.boosting_final_mean =
      boosting_n ? boosting_sum / static_cast<double>(boosting_n) : 0.0;

  std::vector<double> normal_reps;
  for (NodeId v = 0; v < config_.node_count; ++v) {
    if (types_[v] == NodeType::kNormal) {
      normal_reps.push_back(result.final_reputation[v]);
    }
  }
  if (!normal_reps.empty()) {
    auto mid = normal_reps.begin() +
               static_cast<long>(normal_reps.size() / 2);
    std::nth_element(normal_reps.begin(), mid, normal_reps.end());
    result.normal_final_median = *mid;
  }
  result.total_requests = total_requests_;
  result.requests_to_colluders = requests_to_colluders_;
  result.requests_to_pretrusted = requests_to_pretrusted_;
  result.authentic_services = authentic_services_;
  result.inauthentic_services = inauthentic_services_;
  result.fake_ratings = fake_ratings_;

  // Convergence: last cycle after which the colluder's reputation stayed
  // below epsilon until the end of the run.
  result.colluder_convergence_cycle.resize(colluders_.size());
  const auto cycles =
      static_cast<std::uint32_t>(config_.simulation_cycles);
  for (std::size_t c = 0; c < colluders_.size(); ++c) {
    const auto& history = result.colluder_history[c];
    std::uint32_t converged_at = cycles + 1;
    for (std::uint32_t t = static_cast<std::uint32_t>(history.size()); t > 0;
         --t) {
      if (history[t - 1] < config_.convergence_epsilon) {
        converged_at = t - 1;
      } else {
        break;
      }
    }
    result.colluder_convergence_cycle[c] = converged_at;
  }
}

RunResult Simulator::run() {
  if (ran_) throw std::logic_error("Simulator::run may be called once");
  ran_ = true;

  RunResult result;
  result.colluder_history.resize(colluders_.size());

  current_bar_ = selection_bar();
  for (std::size_t cycle = 0; cycle < config_.simulation_cycles; ++cycle) {
    for (std::size_t qc = 0; qc < config_.query_cycles_per_cycle; ++qc) {
      // Capacity renews every query cycle ("each node can handle 50
      // requests simultaneously per query cycle").
      std::fill(capacity_left_.begin(), capacity_left_.end(),
                static_cast<std::uint32_t>(config_.capacity_per_query_cycle));
      for (NodeId v = 0; v < config_.node_count; ++v) {
        if (rng_.bernoulli(active_prob_[v])) issue_request(v);
      }
      if (strategy_) {
        strategy_->on_query_cycle(*this, static_cast<std::uint32_t>(qc),
                                  rng_);
      }
    }
    ledger_.close_cycle();
    // Compact any pending CSR deltas before the parallel reputation
    // update so every closeness BFS and dirty-pair scan this interval
    // walks pure flat rows. Representation-only: no revision moves, so
    // the update pass sees bit-identical social state either way.
    graph_.begin_interval();
    profiles_.begin_interval();
    system_->update(ledger_.last_cycle());
    current_bar_ = selection_bar();
    record_cycle_metrics(result);
    // Observation only — the extras are this run's cumulative tallies at
    // the end of each simulation cycle (rates fall out by differencing
    // consecutive events); nothing here affects the simulation.
    if (obs::enabled()) {
      const obs::ExtraField extras[] = {
          {"cycle", static_cast<double>(cycle)},
          {"requests", static_cast<double>(total_requests_)},
          {"requests_to_colluders",
           static_cast<double>(requests_to_colluders_)},
          {"requests_to_pretrusted",
           static_cast<double>(requests_to_pretrusted_)},
          {"authentic_services", static_cast<double>(authentic_services_)},
          {"inauthentic_services",
           static_cast<double>(inauthentic_services_)},
          {"fake_ratings", static_cast<double>(fake_ratings_)},
          // How fast the social substrate churns: the graph's full epoch
          // counts every relationship/interaction mutation, the structure
          // epoch only edge changes. The gap between their growth rates is
          // what the incremental SocialStateCache exploits (DESIGN.md §13).
          {"graph_epoch", static_cast<double>(graph_.epoch())},
          {"graph_structure_epoch",
           static_cast<double>(graph_.structure_epoch())},
      };
      obs::Obs::instance().emit_interval("sim.cycle", system_->name(),
                                         extras);
    }
  }

  finalize_metrics(result);
  return result;
}

}  // namespace st::sim
