#include "sim/experiment.hpp"

#include <stdexcept>

#include "stats/rng.hpp"

namespace st::sim {

namespace {

RunResult run_one(const ExperimentConfig& config,
                  const SystemFactory& system_factory,
                  const StrategyFactory& strategy_factory,
                  std::size_t run_index) {
  // Derive a run-unique seed stream from the base seed.
  stats::Rng seeder(config.base_seed);
  stats::Rng run_rng = seeder.split(run_index);
  std::uint64_t run_seed = run_rng.next_u64();

  std::unique_ptr<CollusionStrategy> strategy;
  if (strategy_factory) strategy = strategy_factory();
  Simulator sim(config.sim, system_factory, std::move(strategy), run_seed);
  return sim.run();
}

}  // namespace

AggregateResult run_experiment(const ExperimentConfig& config,
                               const SystemFactory& system_factory,
                               const StrategyFactory& strategy_factory,
                               util::ThreadPool* pool) {
  if (config.runs == 0)
    throw std::invalid_argument("run_experiment: runs must be > 0");

  std::vector<RunResult> results(config.runs);
  if (pool && pool->thread_count() > 1) {
    pool->parallel_for(config.runs, [&](std::size_t i) {
      results[i] = run_one(config, system_factory, strategy_factory, i);
    });
  } else {
    for (std::size_t i = 0; i < config.runs; ++i) {
      results[i] = run_one(config, system_factory, strategy_factory, i);
    }
  }

  AggregateResult agg;
  const std::size_t n = config.sim.node_count;
  std::vector<stats::Accumulator> per_node(n);

  for (const RunResult& r : results) {
    for (std::size_t v = 0; v < n && v < r.final_reputation.size(); ++v) {
      per_node[v].add(r.final_reputation[v]);
    }
    agg.colluder_share.add(r.colluder_request_share());
    agg.inauthentic_share.add(r.inauthentic_share());
    for (std::uint32_t c : r.colluder_convergence_cycle) {
      agg.pooled_convergence_cycles.push_back(static_cast<double>(c));
    }
    if (!r.pretrusted_mean_by_cycle.empty())
      agg.pretrusted_mean.add(r.pretrusted_mean_by_cycle.back());
    if (!r.normal_mean_by_cycle.empty())
      agg.normal_mean.add(r.normal_mean_by_cycle.back());
    if (!r.colluder_mean_by_cycle.empty())
      agg.colluder_mean.add(r.colluder_mean_by_cycle.back());
  }

  agg.mean_final_reputation.resize(n);
  agg.ci_final_reputation.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    agg.mean_final_reputation[v] = per_node[v].mean();
    agg.ci_final_reputation[v] = stats::confidence_interval95(per_node[v]);
  }
  agg.per_run = std::move(results);
  return agg;
}

}  // namespace st::sim
