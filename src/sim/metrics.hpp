#pragma once
// Per-run measurement results — everything the evaluation figures and
// Table 1 read off a simulation.

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace st::sim {

/// Outcome of one simulated run.
struct RunResult {
  /// Final normalised reputation per node (the y-axis of Figs. 7-18).
  std::vector<double> final_reputation;

  /// Per-cycle mean reputation of each population (pretrusted / normal /
  /// colluder), indexed [cycle].
  std::vector<double> pretrusted_mean_by_cycle;
  std::vector<double> normal_mean_by_cycle;
  std::vector<double> colluder_mean_by_cycle;

  /// Final mean reputation of the boosted / boosting colluder subsets
  /// (equal to the colluder mean under PCM, where every colluder is both).
  double boosted_final_mean = 0.0;
  double boosting_final_mean = 0.0;
  /// Median final reputation of the normal population (the "typical"
  /// normal node, robust to the reputation elite).
  double normal_final_median = 0.0;

  /// Per-colluder reputation trajectory, indexed [colluder][cycle]; feeds
  /// the convergence percentiles of Fig. 19.
  std::vector<std::vector<double>> colluder_history;

  /// First simulation cycle at which each colluder's reputation dropped
  /// (and stayed, for the remainder of the run) below the convergence
  /// epsilon; simulation_cycles + 1 when it never did.
  std::vector<std::uint32_t> colluder_convergence_cycle;

  std::uint64_t total_requests = 0;
  std::uint64_t requests_to_colluders = 0;    ///< served by colluder nodes
  std::uint64_t requests_to_pretrusted = 0;
  std::uint64_t authentic_services = 0;
  std::uint64_t inauthentic_services = 0;
  std::uint64_t fake_ratings = 0;             ///< ratings injected by attack

  /// Fraction of requests served by colluders (Table 1's metric).
  double colluder_request_share() const noexcept {
    return total_requests == 0
               ? 0.0
               : static_cast<double>(requests_to_colluders) /
                     static_cast<double>(total_requests);
  }

  /// Fraction of services that were inauthentic (service-quality view).
  double inauthentic_share() const noexcept {
    auto total = authentic_services + inauthentic_services;
    return total == 0 ? 0.0
                      : static_cast<double>(inauthentic_services) /
                            static_cast<double>(total);
  }
};

}  // namespace st::sim
