#pragma once
// Simulation node model and configuration — Section 5.1 of the paper,
// parameter for parameter.

#include <cstddef>
#include <cstdint>

#include "reputation/rating.hpp"

namespace st::sim {

using reputation::InterestId;
using reputation::NodeId;

/// The three node populations of the experiments (Section 5.1 "Node
/// model"): pretrusted nodes always serve authentically, normal nodes with
/// probability 0.8, colluders with probability B (0.2 or 0.6).
enum class NodeType : std::uint8_t {
  kPretrusted,
  kNormal,
  kColluder,
};

/// Within a colluding collective, boosting nodes emit the fake ratings and
/// boosted nodes receive them (Section 5.1 "Simulation execution"). In
/// pair-wise collusion every colluder is both.
enum class CollusionRole : std::uint8_t {
  kNone,
  kBoosting,
  kBoosted,
  kBoth,
};

/// Experiment parameters. Defaults reproduce Section 5.1 exactly.
struct SimConfig {
  std::size_t node_count = 200;
  std::size_t interest_count = 20;   ///< total interest categories
  std::size_t min_interests = 1;     ///< per-node interest set size range
  std::size_t max_interests = 10;

  std::size_t pretrusted_count = 9;  ///< node ids [0, 9)
  std::size_t colluder_count = 30;   ///< node ids [9, 39)

  /// Relationship-type counts on social edges: normal pairs carry [1,2],
  /// colluder-colluder edges carry [3,5] (Section 5.1 "Network model").
  std::size_t normal_relationships_min = 1;
  std::size_t normal_relationships_max = 2;
  std::size_t colluder_relationships_min = 3;
  std::size_t colluder_relationships_max = 5;

  /// Mean social degree of the background friendship graph. Chosen so that
  /// pairwise distances concentrate on 1-3 hops, matching "we set the
  /// social distances between all other nodes to values randomly chosen
  /// from [1,3]".
  std::size_t social_degree = 10;

  std::size_t capacity_per_query_cycle = 50;
  double reputation_threshold = 0.01;  ///< T_R for server selection

  /// Interpret T_R relative to the current maximum reputation (selection
  /// bar = T_R * max_k rep_k) instead of as an absolute share. With 200
  /// nodes, normalised shares average 1/200 = 0.005 < 0.01, so an absolute
  /// bar starves nearly the whole population and funnels all traffic to a
  /// tiny elite — irreconcilable with the paper's Table 1, where colluders
  /// receive ~17% of requests even while their reputations are suppressed
  /// (Fig. 9(a)). The relative bar keeps requests circulating and excludes
  /// exactly the nodes whose reputation has collapsed.
  bool relative_reputation_threshold = true;

  /// Selection patience: the client draws up to this many random
  /// capacitated interest neighbours, takes the first whose reputation
  /// clears the bar, and settles for the last draw otherwise. Bounded
  /// patience keeps requests circulating through the whole population
  /// (low-reputed nodes still see traffic at roughly their population
  /// share divided by 2^patience — the regime Table 1's request
  /// percentages imply) while preferring reputable providers. Patience 0
  /// means selection ignores reputation entirely.
  std::size_t selection_patience = 2;

  /// Repeat patronage: a client keeps requesting from its current provider
  /// for a category while that provider serves authentically and has
  /// capacity, re-selecting only after a failure. This is the behaviour
  /// the paper's own trace analysis assumes (inference I1: a buyer
  /// "repeatedly choose[s]" satisfying sellers; Fig. 3(b) counts repeat
  /// ratings per pair) and it is what lets eBay's per-cycle rating dedup
  /// bite. Disable for the ablation bench.
  bool sticky_selection = true;

  std::size_t query_cycles_per_cycle = 30;
  std::size_t simulation_cycles = 50;

  double active_prob_min = 0.5;
  double active_prob_max = 1.0;

  double pretrusted_authentic = 1.0;
  double normal_authentic = 0.8;
  /// B: probability a colluder provides authentic service.
  double colluder_authentic = 0.2;

  /// Zipf exponent of per-node interest request popularity ("the frequency
  /// at which a node requests resources in its interests conforms to a
  /// power law distribution").
  double request_zipf_exponent = 1.0;

  /// Reputation below which a colluder counts as "suppressed"
  /// (convergence metric of Fig. 19).
  double convergence_epsilon = 0.001;
};

}  // namespace st::sim
