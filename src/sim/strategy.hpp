#pragma once
// Collusion strategy interface.
//
// The three attack models of Section 5.1 (PCM, MCM, MMM), their
// compromised-pretrusted variants, and the falsified-social-information
// counterattack all plug into the simulator through this interface; the
// simulator itself stays attack-agnostic.

#include <cstdint>
#include <string_view>

#include "stats/rng.hpp"

namespace st::sim {

class Simulator;

class CollusionStrategy {
 public:
  virtual ~CollusionStrategy() = default;

  virtual std::string_view name() const noexcept = 0;

  /// Invoked once after the simulator has built the network and assigned
  /// roles. Strategies use this to wire social edges between conspirators
  /// (the paper fixes colluder-colluder social distance to 1), assign
  /// boosting/boosted roles, and falsify profiles.
  virtual void setup(Simulator& sim, stats::Rng& rng) = 0;

  /// Invoked at the end of every query cycle; strategies emit their fake
  /// ratings here through Simulator::submit_rating.
  virtual void on_query_cycle(Simulator& sim, std::uint32_t query_cycle,
                              stats::Rng& rng) = 0;
};

}  // namespace st::sim
