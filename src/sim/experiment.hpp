#pragma once
// Multi-run experiment harness.
//
// "Each experiment is run 5 times, and the average of the results is the
// final result. The 95% of the confidential interval is reported."
// (Section 5.1). run_experiment fans the repetitions out over a thread
// pool with independent RNG streams and aggregates.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "stats/summary.hpp"
#include "util/thread_pool.hpp"

namespace st::sim {

/// Produces a fresh strategy per run (strategies are stateful). A null
/// factory — or one returning nullptr — means "no collusion".
using StrategyFactory = std::function<std::unique_ptr<CollusionStrategy>()>;

struct ExperimentConfig {
  SimConfig sim;
  std::size_t runs = 5;
  std::uint64_t base_seed = 42;
};

/// Aggregated results across runs.
struct AggregateResult {
  /// Per-node final reputation, averaged over runs, plus its 95% CI.
  std::vector<double> mean_final_reputation;
  std::vector<double> ci_final_reputation;

  /// Fraction of requests served by colluders, across runs (Table 1).
  stats::Accumulator colluder_share;
  /// Fraction of services that were inauthentic.
  stats::Accumulator inauthentic_share;

  /// All colluder convergence cycles pooled over colluders x runs
  /// (Fig. 19 reports 1st/99th percentile and median of these).
  std::vector<double> pooled_convergence_cycles;

  /// Final-cycle group means across runs.
  stats::Accumulator pretrusted_mean;
  stats::Accumulator normal_mean;
  stats::Accumulator colluder_mean;

  /// Raw per-run results (small; kept for figure-specific post-processing).
  std::vector<RunResult> per_run;

  /// Mean reputation of node `v` over runs.
  double node_mean(std::size_t v) const { return mean_final_reputation.at(v); }
};

/// Runs `config.runs` independent simulations (seeds derived from
/// base_seed) and aggregates. When `pool` is null the runs execute
/// sequentially.
AggregateResult run_experiment(const ExperimentConfig& config,
                               const SystemFactory& system_factory,
                               const StrategyFactory& strategy_factory,
                               util::ThreadPool* pool = nullptr);

}  // namespace st::sim
