#pragma once
// Discrete-cycle unstructured-P2P simulator — Section 5.1 of the paper.
//
// Time is organised as simulation cycles of `query_cycles_per_cycle` query
// cycles. In each query cycle every active peer issues one resource request
// in one of its interest categories (Zipf-popular), a server is selected
// among interest neighbours with spare capacity and reputation above T_R
// (falling back to a uniformly random capacitated neighbour when none
// qualifies — the paper's "initial stage" behaviour), service authenticity
// is Bernoulli per the server's node type, and the client rates +1/-1.
// At the end of each simulation cycle the reputation system consumes the
// cycle's ratings and republishes global reputations.

#include <functional>
#include <memory>
#include <vector>

#include "core/similarity.hpp"
#include "graph/social_graph.hpp"
#include "obs/obs.hpp"
#include "reputation/ledger.hpp"
#include "reputation/reputation_system.hpp"
#include "sim/metrics.hpp"
#include "sim/strategy.hpp"
#include "sim/types.hpp"
#include "stats/distributions.hpp"
#include "stats/rng.hpp"

namespace st::sim {

/// Builds the reputation system under test once the network exists. The
/// returned system may capture the graph/profiles references (SocialTrust
/// plugins do); the simulator guarantees they outlive it.
using SystemFactory =
    std::function<std::unique_ptr<reputation::ReputationSystem>(
        const graph::SocialGraph& graph,
        const core::InterestProfiles& profiles,
        const std::vector<NodeId>& pretrusted, std::size_t node_count)>;

class Simulator {
 public:
  /// Constructs the network (interests, overlay, social graph, roles) from
  /// `seed`, instantiates the reputation system via `factory`, and runs
  /// `strategy->setup` if a strategy is given (nullptr = no collusion).
  Simulator(SimConfig config, SystemFactory factory,
            std::unique_ptr<CollusionStrategy> strategy, std::uint64_t seed);

  /// Runs the configured number of simulation cycles and returns the
  /// collected metrics. May be called once per Simulator instance.
  RunResult run();

  // --- accessors used by collusion strategies and tests ---
  const SimConfig& config() const noexcept { return config_; }
  graph::SocialGraph& social_graph() noexcept { return graph_; }
  const graph::SocialGraph& social_graph() const noexcept { return graph_; }
  core::InterestProfiles& profiles() noexcept { return profiles_; }
  const core::InterestProfiles& profiles() const noexcept {
    return profiles_;
  }
  reputation::ReputationSystem& system() noexcept { return *system_; }
  const reputation::ReputationSystem& system() const noexcept {
    return *system_;
  }

  const std::vector<NodeId>& pretrusted() const noexcept {
    return pretrusted_;
  }
  const std::vector<NodeId>& colluders() const noexcept { return colluders_; }

  NodeType node_type(NodeId node) const { return types_.at(node); }
  CollusionRole collusion_role(NodeId node) const { return roles_.at(node); }
  void set_collusion_role(NodeId node, CollusionRole role) {
    roles_.at(node) = role;
  }

  /// Marks a pretrusted node as compromised (it joins the collusion); used
  /// by the Figs. 10/15 variants. Affects bookkeeping only — the
  /// reputation system still treats the node as pretrusted, which is
  /// exactly the attack.
  void set_compromised(NodeId node) { compromised_.at(node) = true; }
  bool compromised(NodeId node) const { return compromised_.at(node); }

  /// Service authenticity probability of `node` per its type.
  double authentic_probability(NodeId node) const;

  /// Submits a rating. `is_transaction` distinguishes ratings that follow
  /// a real resource transfer (recorded as a request in the rater's
  /// interest profile) from attack-injected ratings (which still count as
  /// social interactions — the paper equates interaction frequency with
  /// rating frequency — but cannot manufacture request history).
  void submit_rating(NodeId rater, NodeId ratee, double value,
                     InterestId interest, bool is_transaction);

  /// Declared interests of `node` in rank order (most requested first).
  std::span<const InterestId> interest_ranking(NodeId node) const {
    return interest_rank_.at(node);
  }

  /// Whitewashing: the node discards its identity and rejoins fresh —
  /// the reputation system forgets it (forget_node), its social edges and
  /// interactions vanish, its request history clears, and any clients
  /// stuck to it are detached. Its declared interests persist (the human
  /// behind the identity keeps their tastes). Returns the number of times
  /// this node has now whitewashed.
  std::uint32_t whitewash(NodeId node);

  /// How many times `node` has whitewashed so far.
  std::uint32_t whitewash_count(NodeId node) const {
    return whitewash_counts_.at(node);
  }

  stats::Rng& rng() noexcept { return rng_; }

 private:
  void assign_interests();
  void build_social_graph();
  void assign_roles();
  double selection_bar() const;
  NodeId select_server(NodeId client, InterestId interest);
  void issue_request(NodeId client);
  void record_cycle_metrics(RunResult& result);
  void finalize_metrics(RunResult& result) const;

  SimConfig config_;
  stats::Rng rng_;

  // Network state. Declaration order matters: system_ may reference
  // graph_/profiles_ and must be destroyed first (declared last).
  graph::SocialGraph graph_;
  core::InterestProfiles profiles_;
  std::vector<std::vector<NodeId>> interest_members_;  // per category
  std::vector<std::vector<InterestId>> interest_rank_; // per node, by rank
  std::vector<stats::ZipfDistribution> request_dist_;  // per node
  std::vector<NodeType> types_;
  std::vector<CollusionRole> roles_;
  std::vector<bool> compromised_;
  std::vector<double> active_prob_;
  std::vector<NodeId> pretrusted_;
  std::vector<NodeId> colluders_;
  std::vector<std::uint32_t> whitewash_counts_;
  std::vector<std::uint32_t> capacity_left_;  // per query cycle
  /// Sticky provider per (client, category); kNoProvider when unset.
  std::vector<std::vector<NodeId>> preferred_provider_;

  reputation::RatingLedger ledger_;
  std::unique_ptr<CollusionStrategy> strategy_;
  std::unique_ptr<reputation::ReputationSystem> system_;

  // Run-scope tallies.
  std::uint64_t total_requests_ = 0;
  std::uint64_t requests_to_colluders_ = 0;
  std::uint64_t requests_to_pretrusted_ = 0;
  std::uint64_t authentic_services_ = 0;
  std::uint64_t inauthentic_services_ = 0;
  std::uint64_t fake_ratings_ = 0;

  /// Observability handles (process-wide `sim.*` counters, resolved once
  /// at construction; no-ops while the obs layer is disabled). They mirror
  /// the run-scope tallies above but accumulate across every Simulator in
  /// the process, and run() emits one "sim.cycle" event per simulation
  /// cycle. See docs/OBSERVABILITY.md.
  struct ObsHandles {
    obs::Counter* requests = nullptr;
    obs::Counter* requests_to_colluders = nullptr;
    obs::Counter* requests_to_pretrusted = nullptr;
    obs::Counter* authentic_services = nullptr;
    obs::Counter* inauthentic_services = nullptr;
    obs::Counter* ratings = nullptr;
    obs::Counter* fake_ratings = nullptr;
  };
  ObsHandles obs_;
  double current_bar_ = 0.0;  // cached selection bar for the current cycle
  bool ran_ = false;
};

}  // namespace st::sim
