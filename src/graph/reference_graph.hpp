#pragma once
// Faithful port of the pre-CSR SocialGraph: sorted vector-of-vectors
// adjacency (one EdgeRecord vector plus a duplicate neighbour-id vector
// per node) and per-node sorted (target, count) interaction vectors.
//
// Kept for two consumers only:
//   * the CSR equivalence suite (tests/csr_graph_test.cpp) replays
//     randomized mutation sequences against both representations and
//     asserts every public accessor and revision counter agrees;
//   * bench_csr_graph measures the before/after closeness throughput and
//     memory footprint that BENCH_csr_graph.json commits.
// It is NOT a production surface — simulation code links SocialGraph.
//
// The port is behaviour-exact, including the parts a cleaner rewrite
// would change: the duplicated neighbour-id arrays (the old layout paid
// that memory to give neighbors() a span), the lower_bound probe pattern,
// and the queue-free BFS. Only memory_footprint() is new, so the bench
// can report bytes per node/edge for the old layout.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/social_graph.hpp"

namespace st::graph {

/// Pre-CSR SocialGraph layout; same public contract as SocialGraph minus
/// the CSR maintenance hooks (begin_interval() etc. are accepted as
/// no-ops so generic test drivers can template over both).
class ReferenceSocialGraph {
 public:
  using Revision = std::uint64_t;

  explicit ReferenceSocialGraph(std::size_t node_count);

  std::size_t size() const noexcept { return adjacency_.size(); }

  bool add_relationship(NodeId a, NodeId b, Relationship r);
  bool remove_relationship(NodeId a, NodeId b, Relationship r);

  bool adjacent(NodeId a, NodeId b) const noexcept;
  std::size_t relationship_count(NodeId a, NodeId b) const noexcept;
  std::vector<Relationship> relationships(NodeId a, NodeId b) const;
  std::uint8_t relationship_mask(NodeId a, NodeId b) const noexcept;
  std::span<const NodeId> neighbors(NodeId a) const noexcept;
  std::size_t degree(NodeId a) const noexcept;

  void record_interaction(NodeId from, NodeId to, double count = 1.0);
  double interaction(NodeId from, NodeId to) const noexcept;
  double total_interactions(NodeId from) const noexcept;

  std::vector<NodeId> common_friends(NodeId a, NodeId b) const;
  std::optional<std::size_t> distance(NodeId a, NodeId b,
                                      std::size_t max_hops = 6) const;
  std::optional<std::vector<NodeId>> shortest_path(
      NodeId a, NodeId b, std::size_t max_hops = 6) const;

  std::size_t edge_count() const noexcept;
  void clear_node(NodeId node);

  /// No-op: the reference layout has no deferred representation work.
  void begin_interval() {}

  Revision revision(NodeId node) const noexcept {
    return node < revisions_.size() ? revisions_[node] : 0;
  }
  Revision structure_revision(NodeId node) const noexcept {
    return node < structure_revisions_.size() ? structure_revisions_[node] : 0;
  }
  Revision epoch() const noexcept { return epoch_; }
  Revision structure_epoch() const noexcept { return structure_epoch_; }
  Revision edge_addition_epoch() const noexcept { return addition_epoch_; }

  /// Heap bytes of the old layout, on the same axes as
  /// SocialGraph::MemoryFootprint (overlay_bytes counts the per-node
  /// vector headers the flat layout does not pay).
  SocialGraph::MemoryFootprint memory_footprint() const noexcept;

 private:
  struct EdgeRecord {
    NodeId to;
    std::uint8_t relationship_mask;  // bit i set <=> Relationship(i) present
  };

  void check_node(NodeId a) const;
  void bump_structure(NodeId a, NodeId b);
  void bump_value(NodeId a);
  const EdgeRecord* find_edge(NodeId a, NodeId b) const noexcept;
  EdgeRecord* find_edge(NodeId a, NodeId b) noexcept;

  std::vector<std::vector<EdgeRecord>> adjacency_;
  std::vector<std::vector<NodeId>> neighbor_ids_;
  std::vector<std::vector<std::pair<NodeId, double>>> interactions_;
  std::vector<double> interaction_totals_;

  std::vector<Revision> revisions_;
  std::vector<Revision> structure_revisions_;
  Revision epoch_ = 0;
  Revision structure_epoch_ = 0;
  Revision addition_epoch_ = 0;
};

}  // namespace st::graph
