#include "graph/generators.hpp"

#include <stdexcept>
#include <vector>

namespace st::graph {

SocialGraph erdos_renyi(std::size_t n, double p, stats::Rng& rng) {
  SocialGraph g(n);
  if (p <= 0.0 || n < 2) return g;
  for (std::size_t a = 0; a + 1 < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      if (rng.bernoulli(p)) {
        g.add_relationship(static_cast<NodeId>(a), static_cast<NodeId>(b),
                           Relationship::kFriendship);
      }
    }
  }
  g.begin_interval();  // hand out pure CSR rows, no overlay
  return g;
}

SocialGraph watts_strogatz(std::size_t n, std::size_t k, double beta,
                           stats::Rng& rng) {
  if (k % 2 != 0) throw std::invalid_argument("watts_strogatz: k must be even");
  if (k >= n) throw std::invalid_argument("watts_strogatz: k must be < n");
  SocialGraph g(n);
  // Ring lattice.
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t j = 1; j <= k / 2; ++j) {
      auto b = static_cast<NodeId>((a + j) % n);
      g.add_relationship(static_cast<NodeId>(a), b,
                         Relationship::kFriendship);
    }
  }
  // Rewire each lattice edge (a, a+j) with probability beta.
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t j = 1; j <= k / 2; ++j) {
      if (!rng.bernoulli(beta)) continue;
      auto old = static_cast<NodeId>((a + j) % n);
      auto self = static_cast<NodeId>(a);
      // Pick a fresh endpoint, avoiding self-loops and duplicates.
      for (int attempt = 0; attempt < 32; ++attempt) {
        auto candidate = static_cast<NodeId>(rng.index(n));
        if (candidate == self || g.adjacent(self, candidate)) continue;
        g.remove_relationship(self, old, Relationship::kFriendship);
        g.add_relationship(self, candidate, Relationship::kFriendship);
        break;
      }
    }
  }
  g.begin_interval();  // hand out pure CSR rows, no overlay
  return g;
}

SocialGraph barabasi_albert(std::size_t n, std::size_t m, stats::Rng& rng) {
  if (m == 0 || n <= m)
    throw std::invalid_argument("barabasi_albert: require n > m >= 1");
  SocialGraph g(n);
  // `targets` holds one entry per half-edge so uniform sampling from it is
  // degree-proportional sampling.
  std::vector<NodeId> targets;
  targets.reserve(2 * n * m);
  // Seed clique over the first m+1 nodes.
  for (std::size_t a = 0; a <= m; ++a) {
    for (std::size_t b = a + 1; b <= m; ++b) {
      g.add_relationship(static_cast<NodeId>(a), static_cast<NodeId>(b),
                         Relationship::kFriendship);
      targets.push_back(static_cast<NodeId>(a));
      targets.push_back(static_cast<NodeId>(b));
    }
  }
  for (std::size_t node = m + 1; node < n; ++node) {
    auto self = static_cast<NodeId>(node);
    std::size_t attached = 0;
    std::size_t guard = 0;
    while (attached < m && guard++ < 64 * m) {
      NodeId pick = targets[rng.index(targets.size())];
      if (pick == self || g.adjacent(self, pick)) continue;
      g.add_relationship(self, pick, Relationship::kFriendship);
      targets.push_back(self);
      targets.push_back(pick);
      ++attached;
    }
  }
  g.begin_interval();  // hand out pure CSR rows, no overlay
  return g;
}

}  // namespace st::graph
