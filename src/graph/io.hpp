#pragma once
// Social-graph serialisation: Graphviz DOT for visual inspection and a
// line-based edge-list format (with relationship types and interaction
// counts) for round-tripping graphs through files.

#include <iosfwd>
#include <string>

#include "graph/social_graph.hpp"

namespace st::graph {

/// Writes the graph as Graphviz DOT (undirected edges labelled with their
/// relationship-type count). `highlight` nodes are filled red — handy for
/// marking colluders in attack visualisations.
void write_dot(std::ostream& out, const SocialGraph& graph,
               std::span<const NodeId> highlight = {});

/// Writes the graph as a plain-text edge list:
///   header:       socialgraph <node_count>
///   edge lines:   e <a> <b> <relationship-mask>
///   interactions: i <from> <to> <count>
void write_edge_list(std::ostream& out, const SocialGraph& graph);

/// Parses the write_edge_list format. Throws std::runtime_error on
/// malformed input.
SocialGraph read_edge_list(std::istream& in);

/// Human-readable relationship name ("friendship", "kinship", ...).
std::string relationship_name(Relationship r);

}  // namespace st::graph
