#include "graph/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace st::graph {

std::string relationship_name(Relationship r) {
  switch (r) {
    case Relationship::kFriendship:
      return "friendship";
    case Relationship::kColleague:
      return "colleague";
    case Relationship::kClassmate:
      return "classmate";
    case Relationship::kNeighbor:
      return "neighbor";
    case Relationship::kKinship:
      return "kinship";
    case Relationship::kBusiness:
      return "business";
  }
  return "unknown";
}

void write_dot(std::ostream& out, const SocialGraph& graph,
               std::span<const NodeId> highlight) {
  std::unordered_set<NodeId> marked(highlight.begin(), highlight.end());
  out << "graph social {\n  node [shape=circle, fontsize=9];\n";
  for (NodeId v = 0; v < graph.size(); ++v) {
    out << "  n" << v;
    if (marked.count(v)) {
      out << " [style=filled, fillcolor=red]";
    }
    out << ";\n";
  }
  for (NodeId a = 0; a < graph.size(); ++a) {
    for (NodeId b : graph.neighbors(a)) {
      if (b <= a) continue;  // each undirected edge once
      out << "  n" << a << " -- n" << b << " [label=\""
          << graph.relationship_count(a, b) << "\"];\n";
    }
  }
  out << "}\n";
}

void write_edge_list(std::ostream& out, const SocialGraph& graph) {
  out << "socialgraph " << graph.size() << "\n";
  for (NodeId a = 0; a < graph.size(); ++a) {
    for (NodeId b : graph.neighbors(a)) {
      if (b <= a) continue;
      unsigned mask = 0;
      for (Relationship r : graph.relationships(a, b)) {
        mask |= 1U << static_cast<unsigned>(r);
      }
      out << "e " << a << " " << b << " " << mask << "\n";
    }
  }
  for (NodeId from = 0; from < graph.size(); ++from) {
    // One CSR row walk per node (targets are ascending, matching the old
    // O(n^2) probe loop's output order); zero-count tombstones skipped.
    const auto row = graph.interactions(from);
    for (std::size_t k = 0; k < row.targets.size(); ++k) {
      if (row.counts[k] > 0.0) {
        out << "i " << from << " " << row.targets[k] << " " << row.counts[k]
            << "\n";
      }
    }
  }
}

SocialGraph read_edge_list(std::istream& in) {
  std::string tag;
  std::size_t node_count = 0;
  if (!(in >> tag >> node_count) || tag != "socialgraph") {
    throw std::runtime_error("read_edge_list: missing socialgraph header");
  }
  SocialGraph graph(node_count);
  std::string kind;
  while (in >> kind) {
    if (kind == "e") {
      NodeId a = 0, b = 0;
      unsigned mask = 0;
      if (!(in >> a >> b >> mask)) {
        throw std::runtime_error("read_edge_list: malformed edge line");
      }
      for (std::size_t r = 0; r < kRelationshipCount; ++r) {
        if (mask & (1U << r)) {
          graph.add_relationship(a, b, static_cast<Relationship>(r));
        }
      }
    } else if (kind == "i") {
      NodeId from = 0, to = 0;
      double count = 0.0;
      if (!(in >> from >> to >> count)) {
        throw std::runtime_error(
            "read_edge_list: malformed interaction line");
      }
      graph.record_interaction(from, to, count);
    } else {
      throw std::runtime_error("read_edge_list: unknown record '" + kind +
                               "'");
    }
  }
  return graph;
}

}  // namespace st::graph
